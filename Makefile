GO ?= go

.PHONY: all build test race vet bench fmt ci golden

all: build vet test

# ci is the full merge gate: compile, static checks, the race-detector
# test run, and the experiment-output golden check (byte-identical paper
# figures modulo timing strings).
ci: build vet race golden

golden:
	./scripts/golden-check.sh

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race target is CI's concurrency gate: the engine worker pool, the
# orchestrator, and the telemetry/monitor path all run under the detector.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -run=NONE -bench=BenchmarkEngine -benchmem .

fmt:
	gofmt -l -w .
