GO ?= go

.PHONY: all build test race vet bench bench-smoke fmt ci golden

all: build vet test

# ci is the full merge gate: compile, static checks, the race-detector
# test run, the experiment-output golden check (byte-identical paper
# figures modulo timing strings), and a one-iteration benchmark smoke
# pass so benchmark code cannot rot.
ci: build vet race golden bench-smoke

golden:
	./scripts/golden-check.sh

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race target is CI's concurrency gate: the engine worker pool, the
# orchestrator, and the telemetry/monitor path all run under the detector.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -run=NONE -bench=BenchmarkEngine -benchmem .

# bench-smoke compiles and runs every benchmark for exactly one iteration;
# it catches benchmarks broken by API changes without paying timing runs.
bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

fmt:
	gofmt -l -w .
