GO ?= go

.PHONY: all build test race vet staticcheck bench bench-smoke bench-parallel fmt ci golden test-faults test-crash test-failover fuzz-smoke watchers-smoke test-parallel test-mobility bench-mobility

all: build vet test

# ci is the full merge gate: compile, static checks, the race-detector
# test run, the experiment-output golden check (byte-identical paper
# figures modulo timing strings), a one-iteration benchmark smoke pass
# so benchmark code cannot rot, the seeded fault-injection suite, the
# crash-recovery boundary replay, the replication/failover suite, a
# short fuzz pass over the shared wire codec, one quick run of the
# northbound watchers fan-out, and the parallel-optimizer parity suite
# repeated at GOMAXPROCS=1,2,4.
ci: build vet staticcheck race golden bench-smoke test-faults test-crash test-failover test-mobility fuzz-smoke watchers-smoke test-parallel

# fuzz-smoke runs the wire-frame fuzzer briefly on top of its checked-in
# seed corpus: enough to catch codec regressions without a fuzz farm.
fuzz-smoke:
	$(GO) test -run=NONE -fuzz=FuzzFrame -fuzztime=10s ./internal/wire/

# watchers-smoke runs the northbound stream fan-out experiment once at
# the quick profile; its shape check (exact delivery, zero drops,
# bounded p99) is the pass criterion. BENCH_northbound.json is made by
# the full profile: surfos-bench -exp watchers -profile full -json ...
watchers-smoke:
	$(GO) run ./cmd/surfos-bench -exp watchers -profile quick

# staticcheck runs honnef.co/go/tools when the binary is available (the
# GitHub workflow installs the pinned version; offline dev containers
# without it skip the step rather than failing the whole gate). The
# codebase carries zero findings — new ones are merge blockers.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it pinned)"; \
	fi

# test-faults replays the fault-injection and self-healing suite under
# the race detector at three fixed seeds. SURFOS_FAULT_SEED reroutes
# every seeded fault model/wire script in the tests; the assertions are
# seed-robust by construction, so a failure at any seed is a real bug.
FAULT_SEEDS ?= 1 7 1337
FAULT_RUN := 'Fault|Wire|Retry|Timeout|Backoff|Health|Probe|SelfHeal|Stuck|Dead|Recover|Replan|Chaos|Pin'
FAULT_PKGS := ./internal/driver ./internal/ctrlproto ./internal/hwmgr \
	./internal/orchestrator ./internal/monitor ./internal/rfsim \
	./internal/experiments ./cmd/...
test-faults:
	@for seed in $(FAULT_SEEDS); do \
		echo "== fault suite, seed $$seed =="; \
		SURFOS_FAULT_SEED=$$seed $(GO) test -race -count=1 \
			-run $(FAULT_RUN) $(FAULT_PKGS) || exit 1; \
	done

# test-crash replays journal recovery with the WAL truncated at every
# record boundary — clean and torn — under the race detector. Any prefix
# of the journal must recover to exactly the state its surviving records
# describe.
test-crash:
	$(GO) test -race -count=1 -run 'Crash|TruncatedTail|Corrupt|SequenceGap|Snapshot' ./internal/store

# test-failover exercises the replicated control plane under the race
# detector at the fault seeds: the follower crash-replay boundary matrix,
# epoch fencing, lease promotion, the surfctl failover rotation, and the
# end-to-end failover chaos experiment (promotion within the lease, zero
# live tasks lost, plans byte-identical to a primary reboot).
test-failover:
	@for seed in $(FAULT_SEEDS); do \
		echo "== failover suite, seed $$seed =="; \
		SURFOS_FAULT_SEED=$$seed $(GO) test -race -count=1 \
			-run 'Follower|Repl|StaleEpoch|Failover|FailsOver|Lease|Promot|Rotates|Standby' \
			./internal/store ./internal/ctrlproto ./internal/experiments ./cmd/... || exit 1; \
	done

# test-mobility replays the churn-hardening suite under the race detector
# at the fault seeds: the discrete-event scenario engine, per-region
# TxContext invalidation (wall thrash in one room leaves other rooms'
# traces hot), governed re-plan coalescing with bounded staleness, and
# cross-domain handoff with zero task loss. The mobility experiment's
# per-seed golden (byte-identical replay) runs inside the same pass.
test-mobility:
	@for seed in $(FAULT_SEEDS); do \
		echo "== mobility suite, seed $$seed =="; \
		SURFOS_FAULT_SEED=$$seed $(GO) test -race -count=1 \
			-run 'Mobility|Governor|MoveTask|Carry|Thrash|Edit|Handoff|Warm|Poisson|Orders|Clamps|StopsOnFirstError' \
			./internal/scenario ./internal/scene ./internal/engine \
			./internal/orchestrator ./internal/ctrlproto ./internal/monitor \
			./internal/experiments ./cmd/... || exit 1; \
	done

# bench-mobility records the churn benchmark (full profile, seed 1) into
# BENCH_mobility.json: re-plan counts, suppression/forcing, staleness
# bound, cache carry rates, and wall-clock replan cost.
bench-mobility:
	$(GO) run ./cmd/surfos-bench -exp mobility -profile full -json BENCH_mobility.json

golden:
	./scripts/golden-check.sh

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race target is CI's concurrency gate: the engine worker pool, the
# orchestrator, and the telemetry/monitor path all run under the detector.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -run=NONE -bench=BenchmarkEngine -benchmem .

# bench-smoke compiles and runs every benchmark for exactly one iteration;
# it catches benchmarks broken by API changes without paying timing runs.
bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# bench-parallel records the sweep-scaling curve (one delta CD sweep at
# pool widths 1/2/4/8) with host CPU metadata into BENCH_parallel.json.
# Scaling is only visible on multi-core hosts; the record carries
# num_cpu/gomaxprocs so a 1-CPU capture is not misread as a regression.
bench-parallel:
	./scripts/record-bench.sh 'BenchmarkParallelSweep' ./internal/optimize/ BENCH_parallel.json

# test-parallel reruns the optimizer and sensing suites at several
# GOMAXPROCS values (-cpu multiplies each test): the parallel sweeps must
# stay bit-identical to serial whether the runtime has 1, 2, or 4 procs.
test-parallel:
	$(GO) test -count=1 -cpu=1,2,4 ./internal/optimize/ ./internal/sensing/ ./internal/engine/

fmt:
	gofmt -l -w .
