GO ?= go

.PHONY: all build test race vet bench fmt

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race target is CI's concurrency gate: the engine worker pool, the
# orchestrator, and the telemetry/monitor path all run under the detector.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -run=NONE -bench=BenchmarkEngine -benchmem .

fmt:
	gofmt -l -w .
