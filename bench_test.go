// Benchmarks regenerating every table and figure of the paper's evaluation
// (one Benchmark per artifact), plus the ablation benches for the design
// choices called out in DESIGN.md and microbenchmarks of the hot paths.
//
// The figure benches run the Quick experiment profile per iteration and
// report the experiment's headline metrics via b.ReportMetric, so the
// bench output doubles as a regression record of the reproduced shapes.
package surfos_test

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"testing"

	"surfos"
	"surfos/internal/ctrlproto"
	"surfos/internal/em"
	"surfos/internal/engine"
	"surfos/internal/experiments"
	"surfos/internal/geom"
	"surfos/internal/optimize"
	"surfos/internal/rfsim"
	"surfos/internal/scene"
	"surfos/internal/sensing"
	"surfos/internal/surface"
)

// --- Table 1 ---

func BenchmarkTable1DriverCatalog(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunTable1()
		if len(r.Specs) != 13 {
			b.Fatal("catalog incomplete")
		}
		_ = r.Render()
	}
}

// --- Figure 2 ---

func BenchmarkFig2Heatmaps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig2(context.Background(), experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		_, covMed, _ := r.LocErr.Stats()
		_, locMed, _ := r.LocErrSensingOpt.Stats()
		b.ReportMetric(covMed, "covcfg-locerr-m")
		b.ReportMetric(locMed, "loccfg-locerr-m")
		if s := r.ShapeCheck(); s != "" {
			b.Fatalf("shape: %s", s)
		}
	}
}

// --- Figure 4 ---

func BenchmarkFig4Hybrid(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig4(context.Background(), experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.BaselineSNR, "baseline-snr-db")
		best := math.Inf(-1)
		for _, p := range r.Hybrid {
			if p.MedianSNRdB > best {
				best = p.MedianSNRdB
			}
		}
		b.ReportMetric(best, "hybrid-best-snr-db")
		if s := r.ShapeCheck(); s != "" {
			b.Fatalf("shape: %s", s)
		}
	}
}

// --- Figure 5 ---

func BenchmarkFig5Multitask(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig5(context.Background(), experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.LocErr[experiments.CfgMultitask].Quantile(0.5), "multi-locerr-m")
		b.ReportMetric(r.SNR[experiments.CfgMultitask].Quantile(0.5), "multi-snr-db")
		if s := r.ShapeCheck(); s != "" {
			b.Fatalf("shape: %s", s)
		}
	}
}

// --- Figure 6 ---

func BenchmarkFig6Intent(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig6()
		if d := r.PaperParity(); d != "" {
			b.Fatalf("parity: %s", d)
		}
	}
}

// --- Ablation D1: analytic-gradient optimizer vs derivative-free search ---

func ablationObjective(b *testing.B) optimize.Objective {
	b.Helper()
	apt := scene.NewApartment()
	pitch := em.Wavelength(em.Band24G) / 2
	mount := apt.Mounts[scene.MountEastWall]
	s, err := surface.New("abl", mount.Panel(24*pitch+0.02, 24*pitch+0.02),
		surface.Layout{Rows: 24, Cols: 24, PitchU: pitch, PitchV: pitch}, surface.Reflective, nil)
	if err != nil {
		b.Fatal(err)
	}
	sim, err := rfsim.New(apt.Scene, em.Band24G, s)
	if err != nil {
		b.Fatal(err)
	}
	tc := sim.NewTx(apt.AP)
	var chans []*rfsim.Channel
	for _, pt := range apt.TargetGrid(1.2) {
		chans = append(chans, tc.Channel(pt))
	}
	obj, err := optimize.NewCoverageObjective(chans, rfsim.DefaultBudget())
	if err != nil {
		b.Fatal(err)
	}
	return obj
}

func BenchmarkAblationGradientAdam(b *testing.B) {
	obj := ablationObjective(b)
	b.ResetTimer()
	var loss float64
	for i := 0; i < b.N; i++ {
		res := optimize.Adam(context.Background(), obj, optimize.ZeroPhases(obj.Shape()), optimize.Options{MaxIters: 100})
		loss = res.Loss
	}
	b.ReportMetric(-loss, "sum-spectral-eff")
}

func BenchmarkAblationGradientRandomSearch(b *testing.B) {
	obj := ablationObjective(b)
	b.ResetTimer()
	var loss float64
	for i := 0; i < b.N; i++ {
		res := optimize.RandomSearch(context.Background(), obj, optimize.Options{MaxIters: 100, Seed: int64(i)})
		loss = res.Loss
	}
	b.ReportMetric(-loss, "sum-spectral-eff")
}

func BenchmarkAblationGradientAnneal(b *testing.B) {
	obj := ablationObjective(b)
	b.ResetTimer()
	var loss float64
	for i := 0; i < b.N; i++ {
		res := optimize.Anneal(context.Background(), obj, optimize.ZeroPhases(obj.Shape()), optimize.Options{MaxIters: 100, Seed: int64(i)})
		loss = res.Loss
	}
	b.ReportMetric(-loss, "sum-spectral-eff")
}

// --- Ablation D2: control granularity vs steering quality ---

func granularitySNR(b *testing.B, g surface.Granularity, bits int) float64 {
	b.Helper()
	apt := scene.NewApartment()
	pitch := em.Wavelength(em.Band24G) / 2
	mount := apt.Mounts[scene.MountEastWall]
	s, err := surface.New("abl", mount.Panel(24*pitch+0.02, 24*pitch+0.02),
		surface.Layout{Rows: 24, Cols: 24, PitchU: pitch, PitchV: pitch}, surface.Reflective, nil)
	if err != nil {
		b.Fatal(err)
	}
	sim, err := rfsim.New(apt.Scene, em.Band24G, s)
	if err != nil {
		b.Fatal(err)
	}
	rx := geom.V(2.5, 5.5, 1.2)
	ch := sim.NewTx(apt.AP).Channel(rx)
	cfg := s.SteeringConfig(apt.AP, rx, em.Band24G).
		ProjectGranularity(g, s.Layout).
		Quantize(bits)
	h, err := ch.Eval([]surface.Config{cfg})
	if err != nil {
		b.Fatal(err)
	}
	return rfsim.DefaultBudget().SNRdB(h)
}

func BenchmarkAblationGranularityElementWise(b *testing.B) {
	var snr float64
	for i := 0; i < b.N; i++ {
		snr = granularitySNR(b, surface.ElementWise, 0)
	}
	b.ReportMetric(snr, "steer-snr-db")
}

func BenchmarkAblationGranularityElement2Bit(b *testing.B) {
	var snr float64
	for i := 0; i < b.N; i++ {
		snr = granularitySNR(b, surface.ElementWise, 2)
	}
	b.ReportMetric(snr, "steer-snr-db")
}

func BenchmarkAblationGranularityColumnWise(b *testing.B) {
	var snr float64
	for i := 0; i < b.N; i++ {
		snr = granularitySNR(b, surface.ColumnWise, 2)
	}
	b.ReportMetric(snr, "steer-snr-db")
}

// --- Ablation D3: codebook size vs SNR under endpoint mobility ---

func BenchmarkAblationCodebook(b *testing.B) {
	for _, k := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("entries-%02d", k), func(b *testing.B) {
			apt := scene.NewApartment()
			pitch := em.Wavelength(em.Band24G) / 2
			mount := apt.Mounts[scene.MountEastWall]
			s, err := surface.New("cb", mount.Panel(24*pitch+0.02, 24*pitch+0.02),
				surface.Layout{Rows: 24, Cols: 24, PitchU: pitch, PitchV: pitch}, surface.Reflective, nil)
			if err != nil {
				b.Fatal(err)
			}
			sim, err := rfsim.New(apt.Scene, em.Band24G, s)
			if err != nil {
				b.Fatal(err)
			}
			tc := sim.NewTx(apt.AP)
			budget := rfsim.DefaultBudget()

			// Codebook: k beams spread across the room.
			var entries []surface.Config
			for i := 0; i < k; i++ {
				x := 0.8 + 5.4*float64(i)/float64(maxInt(k-1, 1))
				entries = append(entries, s.SteeringConfig(apt.AP, geom.V(x, 5.5, 1.2), em.Band24G).Quantize(2))
			}
			// Mobility trace: the endpoint walks across the room; the device
			// locally selects its best stored entry per position.
			var trace []geom.Vec3
			for i := 0; i < 20; i++ {
				trace = append(trace, geom.V(0.8+5.4*float64(i)/19, 5.2+0.8*float64(i%3)/2, 1.2))
			}
			b.ResetTimer()
			var mean float64
			for n := 0; n < b.N; n++ {
				var sum float64
				for _, pos := range trace {
					ch := tc.Channel(pos)
					best := math.Inf(-1)
					for _, cfg := range entries {
						h, _ := ch.Eval([]surface.Config{cfg})
						if snr := budget.SNRdB(h); snr > best {
							best = snr
						}
					}
					sum += best
				}
				mean = sum / float64(len(trace))
			}
			b.ReportMetric(mean, "mobile-mean-snr-db")
		})
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// --- Ablation: surface-to-surface interaction modeling (cascade) ---

func BenchmarkAblationCascade(b *testing.B) {
	for _, cascade := range []bool{false, true} {
		name := "off"
		if cascade {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			apt := scene.NewApartment()
			pitch := em.Wavelength(em.Band24G) / 2
			sA, err := surface.New("a", apt.Mounts[scene.MountEastWall].Panel(32*pitch+0.02, 32*pitch+0.02),
				surface.Layout{Rows: 32, Cols: 32, PitchU: pitch, PitchV: pitch}, surface.Reflective, nil)
			if err != nil {
				b.Fatal(err)
			}
			sB, err := surface.New("b", apt.Mounts[scene.MountNorthWall].Panel(16*pitch+0.02, 16*pitch+0.02),
				surface.Layout{Rows: 16, Cols: 16, PitchU: pitch, PitchV: pitch}, surface.Reflective, nil)
			if err != nil {
				b.Fatal(err)
			}
			sim, err := rfsim.New(apt.Scene, em.Band24G, sA, sB)
			if err != nil {
				b.Fatal(err)
			}
			sim.Cascade = cascade
			rx := geom.V(2.0, 6.0, 1.2)
			cfgA := sA.SteeringConfig(apt.AP, sB.Panel.Center(), em.Band24G)
			b.ResetTimer()
			var snr float64
			for i := 0; i < b.N; i++ {
				tc := sim.NewTx(apt.AP)
				ch := tc.Channel(rx)
				cfgB := sB.SteeringConfig(sA.Panel.Center(), rx, em.Band24G)
				h, _ := ch.Eval([]surface.Config{cfgA, cfgB})
				snr = rfsim.DefaultBudget().SNRdB(h)
			}
			b.ReportMetric(snr, "relay-snr-db")
		})
	}
}

// --- Microbenchmarks of the hot paths ---

func microChannel(b *testing.B) (*rfsim.TxContext, *surface.Surface, geom.Vec3) {
	b.Helper()
	apt := scene.NewApartment()
	pitch := em.Wavelength(em.Band24G) / 2
	s, err := surface.New("m", apt.Mounts[scene.MountEastWall].Panel(32*pitch+0.02, 32*pitch+0.02),
		surface.Layout{Rows: 32, Cols: 32, PitchU: pitch, PitchV: pitch}, surface.Reflective, nil)
	if err != nil {
		b.Fatal(err)
	}
	sim, err := rfsim.New(apt.Scene, em.Band24G, s)
	if err != nil {
		b.Fatal(err)
	}
	return sim.NewTx(apt.AP), s, geom.V(2.5, 5.5, 1.2)
}

func BenchmarkRayTraceChannel(b *testing.B) {
	tc, _, rx := microChannel(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tc.Channel(rx)
	}
}

func BenchmarkChannelEval(b *testing.B) {
	tc, s, rx := microChannel(b)
	ch := tc.Channel(rx)
	x, err := ch.Phasors([]surface.Config{s.Off()})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ch.EvalPhasors(x)
	}
}

func BenchmarkChannelPartials(b *testing.B) {
	tc, s, rx := microChannel(b)
	ch := tc.Channel(rx)
	x, err := ch.Phasors([]surface.Config{s.Off()})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ch.Partials(x)
	}
}

func BenchmarkAdamIteration(b *testing.B) {
	obj := ablationObjective(b)
	init := optimize.ZeroPhases(obj.Shape())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		optimize.Adam(context.Background(), obj, init, optimize.Options{MaxIters: 1})
	}
}

func BenchmarkSensingSpectrum(b *testing.B) {
	apt := scene.NewApartment()
	pitch := 2 * em.Wavelength(em.Band60G)
	s, err := surface.New("sp", apt.Mounts[scene.MountEastWall].Panel(24*pitch+0.02, 8*pitch+0.02),
		surface.Layout{Rows: 8, Cols: 24, PitchU: pitch, PitchV: pitch}, surface.Reflective, em.CosinePattern{Q: 0.5})
	if err != nil {
		b.Fatal(err)
	}
	sim, err := rfsim.New(apt.Scene, em.Band60G, s)
	if err != nil {
		b.Fatal(err)
	}
	ants := sensing.ULA(apt.AP, geom.V(1, 0, 0), 6, em.Wavelength(em.Band60G)/2)
	est, err := sensing.NewEstimator(sim, 0, ants,
		sensing.DefaultBins(41, math.Pi/3), sensing.DefaultSubcarriers(em.Band60G, 1.8e9, 6))
	if err != nil {
		b.Fatal(err)
	}
	m := est.Measure(geom.V(3.5, 5.5, 1.2))
	phases := optimize.ZeroPhases([]int{s.NumElements()})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = est.Estimate(m, phases, 0, nil)
	}
}

func BenchmarkProtocolCodebookRoundTrip(b *testing.B) {
	entries := make([][]float64, 8)
	for i := range entries {
		entries[i] = make([]float64, 1024)
	}
	m := ctrlproto.CodebookMsg{
		Property: surface.Phase,
		Labels:   []string{"a", "b", "c", "d", "e", "f", "g", "h"},
		Entries:  entries,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := ctrlproto.WriteFrame(&buf, ctrlproto.Frame{Type: ctrlproto.MsgStoreCodebook, Corr: 1, Payload: m.Encode()}); err != nil {
			b.Fatal(err)
		}
		f, err := ctrlproto.ReadFrame(&buf)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ctrlproto.DecodeCodebookMsg(f.Payload); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(8 * 1024 * 8))
}

func BenchmarkOrchestratorReconcile(b *testing.B) {
	apt := surfos.NewApartment()
	hw := surfos.NewHardware()
	if _, err := surfos.Deploy(hw, "e0", surfos.ModelNRSurface, apt.Mounts[surfos.MountEastWall], 16, 16); err != nil {
		b.Fatal(err)
	}
	if err := hw.AddAP(&surfos.AccessPoint{ID: "ap0", Pos: apt.AP, FreqHz: 24e9, Budget: surfos.DefaultBudget(), Antennas: 8}); err != nil {
		b.Fatal(err)
	}
	orch, err := surfos.NewOrchestrator(apt.Scene, hw, surfos.Options{OptIters: 40, GridStep: 1.5})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := orch.EnhanceLink(context.Background(), surfos.LinkGoal{Endpoint: "l", Pos: surfos.V(2.5, 5.5, 1.2)}, 1); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := orch.Reconcile(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation: per-element vs panel-center occlusion ---

func BenchmarkAblationOcclusion(b *testing.B) {
	for _, perElement := range []bool{false, true} {
		name := "center"
		if perElement {
			name = "per-element"
		}
		b.Run(name, func(b *testing.B) {
			apt := scene.NewApartment()
			pitch := em.Wavelength(em.Band24G) / 2
			s, err := surface.New("occ", apt.Mounts[scene.MountEastWall].Panel(32*pitch+0.02, 32*pitch+0.02),
				surface.Layout{Rows: 32, Cols: 32, PitchU: pitch, PitchV: pitch}, surface.Reflective, nil)
			if err != nil {
				b.Fatal(err)
			}
			sim, err := rfsim.New(apt.Scene, em.Band24G, s)
			if err != nil {
				b.Fatal(err)
			}
			sim.PerElementOcclusion = perElement
			// A receiver near the doorway edge, where element visibility
			// genuinely varies across the panel.
			rx := geom.V(4.1, 3.8, 1.2)
			b.ResetTimer()
			var snr float64
			for i := 0; i < b.N; i++ {
				tc := sim.NewTx(apt.AP)
				ch := tc.Channel(rx)
				cfg := s.SteeringConfig(apt.AP, rx, em.Band24G)
				h, _ := ch.Eval([]surface.Config{cfg})
				snr = rfsim.DefaultBudget().SNRdB(h)
			}
			b.ReportMetric(snr, "edge-snr-db")
		})
	}
}

// --- Ablation D4: multiplexing strategy for two same-band link tasks ---
//
// Measures per-task effective rate share·log2(1+SNR): TDM gives each task
// its ideal configuration for half the airtime; joint configuration
// multiplexing serves both at full share from one compromise config.

func multiplexRig(b *testing.B, policy surfos.MultiplexPolicy) (task1, task2 float64) {
	b.Helper()
	apt := surfos.NewApartment()
	hw := surfos.NewHardware()
	if _, err := surfos.Deploy(hw, "e0", surfos.ModelNRSurface, apt.Mounts[surfos.MountEastWall], 24, 24); err != nil {
		b.Fatal(err)
	}
	if err := hw.AddAP(&surfos.AccessPoint{ID: "ap0", Pos: apt.AP, FreqHz: 24e9,
		Budget: surfos.DefaultBudget(), Antennas: 8}); err != nil {
		b.Fatal(err)
	}
	orch, err := surfos.NewOrchestrator(apt.Scene, hw, surfos.Options{
		Policy: policy, OptIters: 60, GridStep: 1.5,
	})
	if err != nil {
		b.Fatal(err)
	}
	t1, _ := orch.EnhanceLink(context.Background(), surfos.LinkGoal{Endpoint: "a", Pos: surfos.V(1.5, 5.0, 1.2)}, 1)
	t2, _ := orch.EnhanceLink(context.Background(), surfos.LinkGoal{Endpoint: "b", Pos: surfos.V(5.5, 6.0, 1.2)}, 1)
	if err := orch.Reconcile(context.Background()); err != nil {
		b.Fatal(err)
	}
	rate := func(id int) float64 {
		task, _ := orch.Task(id)
		if task.Result == nil {
			b.Fatalf("task %d unscheduled", id)
		}
		return task.Result.Share * math.Log2(1+math.Pow(10, task.Result.Metric/10))
	}
	return rate(t1.ID), rate(t2.ID)
}

func BenchmarkAblationMultiplexing(b *testing.B) {
	for _, p := range []struct {
		name   string
		policy surfos.MultiplexPolicy
	}{
		{"tdm", surfos.PolicyTDM},
		{"joint", surfos.PolicyJoint},
	} {
		b.Run(p.name, func(b *testing.B) {
			var r1, r2 float64
			for i := 0; i < b.N; i++ {
				r1, r2 = multiplexRig(b, p.policy)
			}
			b.ReportMetric(r1, "task1-eff-bits-hz")
			b.ReportMetric(r2, "task2-eff-bits-hz")
			b.ReportMetric(math.Min(r1, r2), "min-task-eff-bits-hz")
		})
	}
}

// --- engine: cached ray-trace contexts + parallel evaluation ---

// engineHeatmapFixture builds the shared workload: a 24x24 panel on the
// east wall and a dense evaluation grid in the target room.
type engineBenchFixture struct {
	serial, parallel *surfos.Engine
	spec             engine.Spec
	tx               geom.Vec3
	pts              []geom.Vec3
	budget           rfsim.LinkBudget
	cfg              surface.Config
}

func engineHeatmapFixture(b *testing.B) engineBenchFixture {
	b.Helper()
	apt := scene.NewApartment()
	pitch := em.Wavelength(em.Band24G) / 2
	s, err := surface.New("bench-eng", apt.Mounts[scene.MountEastWall].Panel(24*pitch+0.02, 24*pitch+0.02),
		surface.Layout{Rows: 24, Cols: 24, PitchU: pitch, PitchV: pitch}, surface.Reflective, em.CosinePattern{Q: 0.5})
	if err != nil {
		b.Fatal(err)
	}
	spec := engine.Spec{Scene: apt.Scene, FreqHz: em.Band24G, Surfaces: []*surface.Surface{s}}
	pts := apt.Regions[scene.RegionTargetRoom].GridPoints(0.25, scene.EvalHeight)
	budget := rfsim.LinkBudget{TxPowerDBm: 10, AntennaGainDB: 5, NoiseFigureDB: 7, BandwidthHz: 400e6}
	n := s.Layout.Rows * s.Layout.Cols
	cfg := surface.Config{Property: surface.Phase, Values: make([]float64, n)}
	for i := range cfg.Values {
		cfg.Values[i] = float64(i%5) * math.Pi / 4
	}
	return engineBenchFixture{
		serial:   surfos.NewEngine(surfos.EngineOptions{Workers: 1}),
		parallel: surfos.NewEngine(surfos.EngineOptions{}),
		spec:     spec,
		tx:       apt.AP,
		pts:      pts,
		budget:   budget,
		cfg:      cfg,
	}
}

// engineHeatmap traces once (cache-warm, matching steady-state use) and
// evaluates the full grid per iteration.
func engineHeatmap(b *testing.B, eng *surfos.Engine, fx engineBenchFixture) float64 {
	b.Helper()
	ctx := context.Background()
	chans, err := eng.Channels(ctx, fx.spec, fx.tx, fx.pts)
	if err != nil {
		b.Fatal(err)
	}
	snrs := make([]float64, len(chans))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eng.ForEach(ctx, len(chans), func(j int) {
			h, err := chans[j].Eval([]surface.Config{fx.cfg})
			if err == nil {
				snrs[j] = fx.budget.SNRdB(h)
			}
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	return rfsim.Median(snrs)
}

func BenchmarkEngineHeatmapSerial(b *testing.B) {
	fx := engineHeatmapFixture(b)
	med := engineHeatmap(b, fx.serial, fx)
	b.ReportMetric(med, "medianSNRdB")
	b.ReportMetric(float64(len(fx.pts)), "gridpts")
}

func BenchmarkEngineHeatmapParallel(b *testing.B) {
	fx := engineHeatmapFixture(b)
	med := engineHeatmap(b, fx.parallel, fx)
	b.ReportMetric(med, "medianSNRdB")
	b.ReportMetric(float64(len(fx.pts)), "gridpts")
	b.ReportMetric(float64(fx.parallel.Workers()), "workers")
}

// BenchmarkEngineTxTrace prices the uncached image-method trace the cache
// elides; BenchmarkEngineTxCacheHit is the steady-state lookup.
func BenchmarkEngineTxTrace(b *testing.B) {
	fx := engineHeatmapFixture(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fx.parallel.Invalidate()
		if _, err := fx.parallel.Tx(ctx, fx.spec, fx.tx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineTxCacheHit(b *testing.B) {
	fx := engineHeatmapFixture(b)
	ctx := context.Background()
	if _, err := fx.parallel.Tx(ctx, fx.spec, fx.tx); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fx.parallel.Tx(ctx, fx.spec, fx.tx); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := fx.parallel.CacheStats()
	b.ReportMetric(float64(st.TxHits), "hits")
}

// --- orchestrator scheduler ---

// benchmarkReconcile prices one full scheduler pass (group, pick strategy,
// optimize, commit) over n link tasks sharing one band. A private engine
// isolates the trace cache; the warm-up pass fills it, so steady-state
// iterations measure scheduling + optimization, not ray tracing.
func benchmarkReconcile(b *testing.B, n int) {
	apt := surfos.NewApartment()
	hw := surfos.NewHardware()
	for i, mount := range []string{surfos.MountEastWall, surfos.MountNorthWall} {
		if _, err := surfos.Deploy(hw, fmt.Sprintf("s%d", i), surfos.ModelNRSurface, apt.Mounts[mount], 24, 24); err != nil {
			b.Fatal(err)
		}
	}
	if err := hw.AddAP(&surfos.AccessPoint{ID: "ap0", Pos: apt.AP, FreqHz: 24e9, Budget: surfos.DefaultBudget(), Antennas: 4}); err != nil {
		b.Fatal(err)
	}
	orch, err := surfos.NewOrchestrator(apt.Scene, hw, surfos.Options{
		OptIters: 40,
		Engine:   surfos.NewEngine(surfos.EngineOptions{}),
	})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < n; i++ {
		pos := surfos.V(1.2+float64(i%4)*1.3, 4.6+float64(i/4%4)*0.6, 1.2)
		if _, err := orch.EnhanceLink(ctx, surfos.LinkGoal{Endpoint: fmt.Sprintf("ep%d", i), Pos: pos}, 1+i%3); err != nil {
			b.Fatal(err)
		}
	}
	if err := orch.Reconcile(ctx); err != nil {
		b.Fatal(err)
	}
	running := 0
	for _, t := range orch.Tasks() {
		if t.State == surfos.TaskStateRunning {
			running++
		}
	}
	b.ReportMetric(float64(running), "running-tasks")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := orch.Reconcile(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReconcile(b *testing.B) {
	for _, n := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("tasks=%d", n), func(b *testing.B) { benchmarkReconcile(b, n) })
	}
	// Multi-room scale matrix: the same pass over an 8-panel 4-room strip,
	// monolithic (pre-sharding single scene-wide group) vs sharded
	// (per-room interference domains).
	for _, n := range []int{64, 256} {
		for _, mode := range []string{"monolithic", "sharded"} {
			b.Run(fmt.Sprintf("rooms=4/tasks=%d/%s", n, mode), func(b *testing.B) {
				benchmarkReconcileRooms(b, 4, n, mode == "monolithic")
			})
		}
	}
}

// benchmarkReconcileRooms prices one scheduler pass over n link tasks
// spread evenly across a rooms-room strip with two 16x16 panels per room.
// The rooms are separated by doorless concrete dividers, so each is its
// own interference domain. With sharding disabled every task optimizes
// against all 2*rooms surfaces in one group; with sharding on, each
// room's group sees only its own two panels, making per-task cost
// independent of how many rooms the building has.
func benchmarkReconcileRooms(b *testing.B, rooms, n int, monolithic bool) {
	strip := scene.NewRoomStrip(rooms)
	hw := surfos.NewHardware()
	for i := 0; i < rooms; i++ {
		for j, mnt := range []string{scene.RoomMountEast(i), scene.RoomMountNorth(i)} {
			id := fmt.Sprintf("r%d-%d", i, j)
			if _, err := surfos.Deploy(hw, id, surfos.ModelNRSurface, strip.Mounts[mnt], 16, 16); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := hw.AddAP(&surfos.AccessPoint{ID: "ap0", Pos: strip.AP, FreqHz: 24e9, Budget: surfos.DefaultBudget(), Antennas: 4}); err != nil {
		b.Fatal(err)
	}
	orch, err := surfos.NewOrchestrator(strip.Scene, hw, surfos.Options{
		OptIters:        40,
		GridStep:        1.5,
		Engine:          surfos.NewEngine(surfos.EngineOptions{}),
		DisableSharding: monolithic,
	})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < n; i++ {
		room := i % rooms
		pos := surfos.V(
			scene.RoomW*float64(room)+1.2+0.5*float64((i/rooms)%6),
			1.4+0.4*float64((i/(rooms*6))%6),
			1.2)
		if _, err := orch.EnhanceLink(ctx, surfos.LinkGoal{Endpoint: fmt.Sprintf("ep%d", i), Pos: pos}, 1+i%3); err != nil {
			b.Fatal(err)
		}
	}
	if err := orch.Reconcile(ctx); err != nil {
		b.Fatal(err)
	}
	running := 0
	for _, t := range orch.Tasks() {
		if t.State == surfos.TaskStateRunning {
			running++
		}
	}
	b.ReportMetric(float64(running), "running-tasks")
	b.ReportMetric(float64(len(orch.ShardStats())), "shards")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := orch.Reconcile(ctx); err != nil {
			b.Fatal(err)
		}
	}
}
