package main

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"surfos/internal/ctrlproto"
	"surfos/internal/driver"
)

// TestCLIServerListRotatesPastDeadServer points the client at a failover
// list whose first address refuses connections: the command must rotate
// to the live second server and succeed.
func TestCLIServerListRotatesPastDeadServer(t *testing.T) {
	addr, _ := startCtrlAgent(t)
	var out strings.Builder
	if err := run(context.Background(), "127.0.0.1:1,"+addr, []string{"tasks"}, &out); err != nil {
		t.Fatalf("rotation past dead server failed: %v", err)
	}
	if !strings.Contains(out.String(), "no tasks") {
		t.Errorf("tasks output = %q, want 'no tasks' from the live server", out.String())
	}
}

// TestCLIServerListRotatesPastStandby lists a standby daemon first: its
// clean "not the leader" rejection must rotate the mutation to the
// leader. A list of only standbys maps to exit code 8.
func TestCLIServerListRotatesPastStandby(t *testing.T) {
	orch, _, events := newCtrlStack(t)
	standby, standbyAddr := serveCtrl(t, orch, events, "127.0.0.1:0")
	standby.Standby = func() bool { return true }
	t.Cleanup(func() { standby.Close() })
	leaderAddr, _ := startCtrlAgent(t)

	ctx := context.Background()
	submit := []string{"submit", "-kind", "link", "-endpoint", "laptop", "-pos", "2.5,5.5,1.2"}
	var out strings.Builder
	if err := run(ctx, standbyAddr+","+leaderAddr, submit, &out); err != nil {
		t.Fatalf("rotation past standby failed: %v", err)
	}
	if !strings.Contains(out.String(), "task 1") {
		t.Errorf("submit output = %q, want a task row from the leader", out.String())
	}

	err := run(ctx, standbyAddr, submit, &out)
	if !errors.Is(err, ctrlproto.ErrNotLeader) {
		t.Fatalf("standby-only submit err = %v, want ErrNotLeader", err)
	}
	if got := exitCode(err); got != exitNotLeader {
		t.Errorf("exit code = %d, want %d", got, exitNotLeader)
	}
}

// TestCLIWatchFailsOverToSecondServer kills the watched daemon while a
// second one serves the same stack on another address: the watch redial
// must rotate to the survivor and keep streaming its events — the client
// half of a control-plane failover.
func TestCLIWatchFailsOverToSecondServer(t *testing.T) {
	orch, hw, events := newCtrlStack(t)
	a1, addr1 := serveCtrl(t, orch, events, "127.0.0.1:0")
	a2, addr2 := serveCtrl(t, orch, events, "127.0.0.1:0")
	t.Cleanup(func() { a2.Close() })

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var mu sync.Mutex
	var out strings.Builder
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, addr1+","+addr2, []string{"tasks", "--watch"}, syncWriter{mu: &mu, w: &out})
	}()

	await := func(marker string) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for {
			mu.Lock()
			s := out.String()
			mu.Unlock()
			if strings.Contains(s, marker) {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("never saw %q in: %q", marker, s)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	await("watching task events")

	a1.Close()
	await("connection lost; reconnecting")
	await("reconnected to " + addr2)

	hw.RecordFailure("s0", driver.ErrDeviceDead)
	await("device s0 device_dead")

	cancel()
	if err := <-done; err != nil {
		t.Errorf("watch exit err = %v, want nil on cancel", err)
	}
}
