// Command surfctl is a diagnostic client for SurfOS control-protocol
// agents. Pointed at a device agent, it speaks the southbound protocol
// the way an operator debugs a single surface; pointed at a daemon's task
// control port, it drives the orchestrator's northbound task API.
//
// Device commands:
//
//	surfctl -addr HOST:PORT hello
//	surfctl -addr HOST:PORT spec
//	surfctl -addr HOST:PORT active
//	surfctl -addr HOST:PORT select N
//	surfctl -addr HOST:PORT zero         (program the all-zero mirror config)
//
// Task commands (against surfosd's -ctrl port):
//
//	surfctl -addr HOST:PORT tasks [--watch]
//	surfctl -addr HOST:PORT submit -kind link -endpoint laptop -pos 2.5,5.5,1.2 [-tenant NAME]
//	surfctl -addr HOST:PORT end ID | idle ID | resume ID
//	surfctl -addr HOST:PORT move ID X,Y,Z   (re-target a walking user's task)
//	surfctl -addr HOST:PORT demand "text"
//	surfctl -addr HOST:PORT health
//
// Against a replicated daemon pair, -server takes a comma-separated
// failover list tried in order; refused/timed-out dials and standby
// "not the leader" rejections rotate to the next address, and a --watch
// redial rotates through the whole list each backoff round:
//
//	surfctl -server 127.0.0.1:7101,127.0.0.1:7201 tasks --watch
//
// Exit codes map the orchestrator's error taxonomy so scripts can branch
// without parsing text:
//
//	0  ok
//	1  generic failure
//	2  usage
//	3  invalid goal
//	4  unknown task
//	5  cancelled
//	6  control-channel timeout
//	7  admission rejected (tenant quota or global cap)
//	8  not the leader (every listed server is a standby)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"surfos/internal/ctrlproto"
	"surfos/internal/orchestrator"
	"surfos/internal/surface"
)

// Exit codes. Typed errors survive the wire hop (ctrlproto status codes
// unwrap back to orchestrator sentinels), so these hold whether the
// failure happened locally or on the daemon.
const (
	exitOK          = 0
	exitFailure     = 1
	exitUsage       = 2
	exitGoalInvalid = 3
	exitUnknownTask = 4
	exitCancelled   = 5
	exitTimeout     = 6
	exitAdmission   = 7
	exitNotLeader   = 8
)

// exitCode maps an error to the documented process exit code.
func exitCode(err error) int {
	switch {
	case err == nil:
		return exitOK
	case errors.Is(err, errUsage):
		return exitUsage
	case errors.Is(err, orchestrator.ErrGoalInvalid):
		return exitGoalInvalid
	case errors.Is(err, orchestrator.ErrUnknownTask):
		return exitUnknownTask
	case errors.Is(err, orchestrator.ErrAdmissionRejected):
		return exitAdmission
	case errors.Is(err, ctrlproto.ErrNotLeader):
		// Every server in the -server list is a standby (or the lone
		// -addr target is): the mutation was cleanly rejected everywhere.
		return exitNotLeader
	case errors.Is(err, ctrlproto.ErrTimeout):
		// Checked before the generic cancellation cases: a request that
		// died awaiting its reply is a control-channel health signal, not
		// an operator ^C.
		return exitTimeout
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return exitCancelled
	}
	return exitFailure
}

var errUsage = errors.New("usage: surfctl -addr HOST:PORT hello|spec|active|select N|zero|tasks [--watch]|submit ...|end ID|idle ID|resume ID|move ID X,Y,Z|demand TEXT|health")

// printTask renders one wire task row. Tenant and domain print only when
// non-default, keeping single-tenant single-domain output byte-identical
// to older releases.
func printTask(out io.Writer, t ctrlproto.TaskInfo) {
	fmt.Fprintf(out, "task %d kind=%s prio=%d state=%s", t.ID, t.Kind, t.Priority, t.State)
	if t.Tenant != "" && t.Tenant != orchestrator.DefaultTenant {
		fmt.Fprintf(out, " tenant=%s", t.Tenant)
	}
	if t.Domain != 0 {
		fmt.Fprintf(out, " domain=%d", t.Domain)
	}
	if t.HasResult {
		fmt.Fprintf(out, " %s=%.2f share=%.2f strategy=%s surfaces=%v",
			t.MetricName, t.Metric, t.Share, t.Strategy, t.Surfaces)
	}
	if t.Err != "" {
		fmt.Fprintf(out, " err=%q", t.Err)
	}
	fmt.Fprintln(out)
}

// parseVec parses "x,y,z" into a wire position.
func parseVec(s string) ([3]float64, error) {
	var v [3]float64
	if s == "" {
		return v, nil
	}
	parts := strings.Split(s, ",")
	if len(parts) != 3 {
		return v, fmt.Errorf("surfctl: position %q: want x,y,z", s)
	}
	for i, p := range parts {
		f, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return v, fmt.Errorf("surfctl: position %q: %w", s, err)
		}
		v[i] = f
	}
	return v, nil
}

// submitMsg parses the submit subcommand's flags into a wire goal.
func submitMsg(args []string) (ctrlproto.SubmitMsg, error) {
	fs := flag.NewFlagSet("submit", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	kind := fs.String("kind", "link", "service kind (registry name)")
	endpoint := fs.String("endpoint", "", "endpoint/device name")
	region := fs.String("region", "", "target region")
	typ := fs.String("type", "", "sensing type")
	pos := fs.String("pos", "", "position x,y,z")
	pos2 := fs.String("pos2", "", "second position x,y,z (security eavesdropper)")
	minSNR := fs.Float64("min-snr", 0, "minimum SNR dB (link)")
	median := fs.Float64("median-snr", 0, "median SNR dB (coverage)")
	freq := fs.Float64("freq", 0, "carrier frequency Hz (0 = AP default)")
	grid := fs.Float64("grid", 0, "grid step m (0 = orchestrator default)")
	dur := fs.Duration("dur", 0, "duration (sensing/powering)")
	prio := fs.Int("prio", 1, "priority")
	tenant := fs.String("tenant", "", "submitting tenant (default: the shared default tenant)")
	if err := fs.Parse(args); err != nil {
		return ctrlproto.SubmitMsg{}, fmt.Errorf("%w: %v", errUsage, err)
	}
	m := ctrlproto.SubmitMsg{
		Kind: *kind, Endpoint: *endpoint, Region: *region, Type: *typ,
		MinSNRdB: *minSNR, MediandB: *median, FreqHz: *freq, GridStep: *grid,
		DurNanos: uint64(*dur), Priority: uint32(*prio), Tenant: *tenant,
	}
	var err error
	if m.Pos, err = parseVec(*pos); err != nil {
		return m, err
	}
	if m.Pos2, err = parseVec(*pos2); err != nil {
		return m, err
	}
	return m, nil
}

// run executes one surfctl command, writing human-readable output to
// out. addrList is one address or a comma-separated failover list (the
// -server flag): addresses are tried in order, rotating past servers
// that refuse the connection, time out at dial, or answer "not the
// leader" — which is how a replicated control-plane pair looks to a
// client during failover. ctx bounds every protocol round trip (^C
// during a hung agent aborts cleanly).
func run(ctx context.Context, addrList string, args []string, out io.Writer) error {
	if len(args) == 0 {
		return errUsage
	}
	addrs := splitAddrs(addrList)
	if len(addrs) == 0 {
		return fmt.Errorf("%w (no server address)", errUsage)
	}
	var lastErr error
	for i, addr := range addrs {
		rotate, err := runOn(ctx, addr, addrs, args, out)
		if err == nil {
			return nil
		}
		lastErr = err
		if !rotate || i == len(addrs)-1 {
			return err
		}
		log.Printf("surfctl: %s: %v; trying next server", addr, err)
	}
	return lastErr
}

// splitAddrs parses a comma-separated address list, dropping empties.
func splitAddrs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

// runOn executes the command against one server. rotate reports whether
// the failure is one the next server in the list might not share: the
// dial failed (refused, unreachable, timed out — nothing was executed)
// or a standby cleanly rejected the mutation with "not the leader".
// Errors from a command that reached a live leader never rotate — the
// request may have been applied, and a retry could double-submit.
func runOn(ctx context.Context, addr string, addrs []string, args []string, out io.Writer) (rotate bool, err error) {
	c, err := ctrlproto.Dial(addr)
	if err != nil {
		return true, err
	}
	defer c.Close()
	err = runCmd(ctx, c, addrs, args, out)
	return errors.Is(err, ctrlproto.ErrNotLeader), err
}

// runCmd dispatches one command on an established connection.
func runCmd(ctx context.Context, c *ctrlproto.Client, addrs []string, args []string, out io.Writer) error {
	switch args[0] {
	case "hello":
		h, err := c.Hello(ctx)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "device=%s model=%s mount=%s\n", h.DeviceID, h.Model, h.Mount)
		return nil

	case "spec":
		s, err := c.GetSpec(ctx)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "model=%s band=%.2f-%.2f GHz control=%v mode=%v granularity=%v\n",
			s.Model, s.FreqLowHz/1e9, s.FreqHighHz/1e9, s.Control, s.OpMode, s.Granularity)
		fmt.Fprintf(out, "reconfigurable=%v phase-bits=%d control-delay=%dns elements=%dx%d cost=$%.2f\n",
			s.Reconfigurable, s.PhaseBits, s.ControlDelayNanos, s.Rows, s.Cols, s.CostUSD)
		return nil

	case "active":
		a, err := c.Active(ctx)
		if err != nil {
			return err
		}
		if !a.HasActive {
			fmt.Fprintln(out, "no active configuration")
			return nil
		}
		fmt.Fprintf(out, "label=%s property=%v elements=%d\n", a.Label, a.Property, len(a.Values))
		return nil

	case "select":
		if len(args) < 2 {
			return fmt.Errorf("%w (select needs an index)", errUsage)
		}
		n, err := strconv.Atoi(args[1])
		if err != nil {
			return err
		}
		if err := c.Select(ctx, n); err != nil {
			return err
		}
		fmt.Fprintln(out, "ok")
		return nil

	case "zero":
		spec, err := c.GetSpec(ctx)
		if err != nil {
			return err
		}
		n := int(spec.Rows * spec.Cols)
		if err := c.ShiftPhase(ctx, surface.Config{Property: surface.Phase, Values: make([]float64, n)}); err != nil {
			return err
		}
		fmt.Fprintln(out, "ok")
		return nil

	case "tasks":
		watch := len(args) > 1 && (args[1] == "--watch" || args[1] == "-watch")
		tasks, err := c.ListTasks(ctx)
		if err != nil {
			return err
		}
		if len(tasks) == 0 {
			fmt.Fprintln(out, "no tasks")
		}
		for _, t := range tasks {
			printTask(out, t)
		}
		if !watch {
			return nil
		}
		return watchTasks(ctx, addrs, c, out)

	case "submit":
		m, err := submitMsg(args[1:])
		if err != nil {
			return err
		}
		t, err := c.SubmitTask(ctx, m)
		if err != nil {
			return err
		}
		printTask(out, t)
		return nil

	case "end", "idle", "resume":
		if len(args) < 2 {
			return fmt.Errorf("%w (%s needs a task id)", errUsage, args[0])
		}
		id, err := strconv.Atoi(args[1])
		if err != nil {
			return fmt.Errorf("%w (%s needs a numeric task id)", errUsage, args[0])
		}
		switch args[0] {
		case "end":
			err = c.EndTask(ctx, id)
		case "idle":
			err = c.SetTaskIdle(ctx, id, true)
		case "resume":
			err = c.SetTaskIdle(ctx, id, false)
		}
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "ok")
		return nil

	case "move":
		if len(args) < 3 {
			return fmt.Errorf("%w (move needs a task id and x,y,z)", errUsage)
		}
		id, err := strconv.Atoi(args[1])
		if err != nil {
			return fmt.Errorf("%w (move needs a numeric task id)", errUsage)
		}
		pos, err := parseVec(args[2])
		if err != nil {
			return fmt.Errorf("%w: %v", errUsage, err)
		}
		if err := c.MoveTask(ctx, id, pos[0], pos[1], pos[2]); err != nil {
			return err
		}
		fmt.Fprintln(out, "ok")
		return nil

	case "health":
		reply, err := c.HealthFull(ctx)
		if err != nil {
			return err
		}
		if len(reply.Devices) == 0 {
			fmt.Fprintln(out, "no devices")
		}
		ctrlproto.RenderDeviceHealth(out, reply.Devices, healthStyle)
		if reply.HasControl {
			ctrlproto.RenderControlHealth(out, reply.Control, healthStyle)
		}
		return nil

	case "demand":
		if len(args) < 2 {
			return fmt.Errorf("%w (demand needs an utterance)", errUsage)
		}
		r, err := c.Demand(ctx, strings.Join(args[1:], " "))
		if err != nil {
			return err
		}
		for _, call := range r.Calls {
			fmt.Fprintf(out, "call: %s\n", call)
		}
		for _, t := range r.Tasks {
			printTask(out, t)
		}
		return nil
	}
	return fmt.Errorf("%w (unknown command %q)", errUsage, args[0])
}

// healthStyle is surfctl's rendering of the shared health formatter:
// device lines carry the "device " prefix and stuck-element indices, and
// the journal line (shown only when it has content) includes the error.
var healthStyle = ctrlproto.HealthRenderOptions{
	DevicePrefix: "device ",
	StuckIndices: true,
	JournalErr:   true,
}

// Watch reconnect backoff: the stream survives daemon restarts, retrying
// the dial at capped exponential intervals.
const (
	watchBackoffBase = 200 * time.Millisecond
	watchBackoffMax  = 5 * time.Second
)

// watchTasks streams lifecycle events until ctx is cancelled (^C is the
// operator's clean stop, so it exits 0). Events arrive on a multiplexed
// stream (a drop-oldest ring on the daemon side, so a slow terminal sees
// the freshest window instead of stalling the daemon). When the daemon
// drops the connection — crash, restart, drain — the watch does not die
// with it: it redials with capped exponential backoff and resumes the
// stream, printing a `reconnected` marker so operators can tell the
// epochs apart. With a multi-address -server list the redial rotates
// through every address per backoff round, so a watch pointed at a
// replicated pair follows the surviving daemon through a failover.
func watchTasks(ctx context.Context, addrs []string, c *ctrlproto.Client, out io.Writer) error {
	s, err := c.OpenStream(ctx, ctrlproto.StreamTasks, "")
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "watching task events (^C to stop)")
	for {
		ctxDone := streamTaskEvents(ctx, s, out)
		c.Close()
		if ctxDone {
			return nil
		}
		fmt.Fprintln(out, "connection lost; reconnecting")
		nc, ns, to, err := redialWatch(ctx, addrs)
		if err != nil {
			// Cancellation while waiting out a dead daemon is the
			// operator's clean stop, like ^C mid-stream.
			if errors.Is(err, context.Canceled) {
				return nil
			}
			return err
		}
		c, s = nc, ns
		if len(addrs) > 1 {
			fmt.Fprintf(out, "reconnected to %s\n", to)
		} else {
			fmt.Fprintln(out, "reconnected")
		}
	}
}

// redialWatch dials the address list until some server accepts and the
// event stream is re-established, backing off exponentially (capped)
// between rounds. Every address is tried each round — refused and
// timed-out dials rotate to the next server immediately. Only ctx
// cancellation makes it give up.
func redialWatch(ctx context.Context, addrs []string) (*ctrlproto.Client, *ctrlproto.Stream, string, error) {
	delay := watchBackoffBase
	for {
		if err := ctx.Err(); err != nil {
			return nil, nil, "", err
		}
		for _, addr := range addrs {
			c, err := ctrlproto.Dial(addr)
			if err != nil {
				continue
			}
			if s, serr := c.OpenStream(ctx, ctrlproto.StreamTasks, ""); serr == nil {
				return c, s, addr, nil
			}
			// Daemon reachable but not serving watches yet (still booting
			// or already draining): close and keep trying.
			c.Close()
		}
		timer := time.NewTimer(delay)
		select {
		case <-ctx.Done():
			timer.Stop()
			return nil, nil, "", ctx.Err()
		case <-timer.C:
		}
		if delay *= 2; delay > watchBackoffMax {
			delay = watchBackoffMax
		}
	}
}

// streamTaskEvents renders events until ctx is cancelled (returns true)
// or the connection is lost and the stream channel closes (returns
// false).
func streamTaskEvents(ctx context.Context, s *ctrlproto.Stream, out io.Writer) bool {
	for {
		select {
		case <-ctx.Done():
			return true
		case ev, ok := <-s.C:
			if !ok {
				return false
			}
			ts := time.Unix(0, ev.UnixNanos).Format(time.TimeOnly)
			if ev.DeviceID != "" {
				// Health transitions and healing markers are device-scoped.
				fmt.Fprintf(out, "%s device %s %s", ts, ev.DeviceID, ev.State)
				if ev.Err != "" {
					fmt.Fprintf(out, " err=%q", ev.Err)
				}
				fmt.Fprintln(out)
				continue
			}
			fmt.Fprintf(out, "%s task %d %s %s", ts, ev.TaskID, ev.Kind, ev.State)
			if ev.Endpoint != "" {
				fmt.Fprintf(out, " endpoint=%s", ev.Endpoint)
			}
			if ev.Strategy != "" {
				fmt.Fprintf(out, " strategy=%s surfaces=%v share=%.2f", ev.Strategy, ev.Surfaces, ev.Share)
			}
			if ev.MetricName != "" {
				fmt.Fprintf(out, " %s=%.2f", ev.MetricName, ev.Metric)
			}
			if ev.Err != "" {
				fmt.Fprintf(out, " err=%q", ev.Err)
			}
			fmt.Fprintln(out)
		}
	}
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7100", "agent address (device or surfosd -ctrl port)")
	server := flag.String("server", "", "comma-separated failover list of control addresses, tried in order (overrides -addr)")
	flag.Parse()
	target := *addr
	if *server != "" {
		target = *server
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, target, flag.Args(), os.Stdout); err != nil {
		log.Printf("surfctl: %v", err)
		os.Exit(exitCode(err))
	}
}
