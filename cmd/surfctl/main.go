// Command surfctl is a diagnostic client for SurfOS surface controller
// agents: it speaks the southbound control protocol directly to one
// device, the way an operator debugs a single surface.
//
// Usage:
//
//	surfctl -addr HOST:PORT hello
//	surfctl -addr HOST:PORT spec
//	surfctl -addr HOST:PORT active
//	surfctl -addr HOST:PORT select N
//	surfctl -addr HOST:PORT zero         (program the all-zero mirror config)
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"strconv"

	"surfos/internal/ctrlproto"
	"surfos/internal/surface"
)

// run executes one surfctl command against the agent at addr, writing
// human-readable output to out. ctx bounds every protocol round trip
// (^C during a hung agent aborts cleanly).
func run(ctx context.Context, addr string, args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: surfctl -addr HOST:PORT hello|spec|active|select N|zero")
	}
	c, err := ctrlproto.Dial(addr)
	if err != nil {
		return err
	}
	defer c.Close()

	switch args[0] {
	case "hello":
		h, err := c.Hello(ctx)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "device=%s model=%s mount=%s\n", h.DeviceID, h.Model, h.Mount)
		return nil

	case "spec":
		s, err := c.GetSpec(ctx)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "model=%s band=%.2f-%.2f GHz control=%v mode=%v granularity=%v\n",
			s.Model, s.FreqLowHz/1e9, s.FreqHighHz/1e9, s.Control, s.OpMode, s.Granularity)
		fmt.Fprintf(out, "reconfigurable=%v phase-bits=%d control-delay=%dns elements=%dx%d cost=$%.2f\n",
			s.Reconfigurable, s.PhaseBits, s.ControlDelayNanos, s.Rows, s.Cols, s.CostUSD)
		return nil

	case "active":
		a, err := c.Active(ctx)
		if err != nil {
			return err
		}
		if !a.HasActive {
			fmt.Fprintln(out, "no active configuration")
			return nil
		}
		fmt.Fprintf(out, "label=%s property=%v elements=%d\n", a.Label, a.Property, len(a.Values))
		return nil

	case "select":
		if len(args) < 2 {
			return fmt.Errorf("surfctl: select needs an index")
		}
		n, err := strconv.Atoi(args[1])
		if err != nil {
			return err
		}
		if err := c.Select(ctx, n); err != nil {
			return err
		}
		fmt.Fprintln(out, "ok")
		return nil

	case "zero":
		spec, err := c.GetSpec(ctx)
		if err != nil {
			return err
		}
		n := int(spec.Rows * spec.Cols)
		if err := c.ShiftPhase(ctx, surface.Config{Property: surface.Phase, Values: make([]float64, n)}); err != nil {
			return err
		}
		fmt.Fprintln(out, "ok")
		return nil
	}
	return fmt.Errorf("surfctl: unknown command %q", args[0])
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7100", "surface agent address")
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, *addr, flag.Args(), os.Stdout); err != nil {
		log.Fatalf("surfctl: %v", err)
	}
}
