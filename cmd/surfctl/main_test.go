package main

import (
	"context"
	"strings"
	"testing"

	"surfos/internal/ctrlproto"
	"surfos/internal/driver"
	"surfos/internal/em"
	"surfos/internal/geom"
	"surfos/internal/surface"
)

// startAgent serves a real agent for the CLI to talk to.
func startAgent(t *testing.T) string {
	t.Helper()
	spec, err := driver.Lookup(driver.ModelNRSurface)
	if err != nil {
		t.Fatal(err)
	}
	pitch := em.Wavelength(24e9) / 2
	panel := geom.RectXY(geom.V(0, 0, 1), geom.V(-1, 0, 0), geom.V(0, 0, 1), 0.2, 0.2)
	s, err := surface.New("p", panel, surface.Layout{Rows: 2, Cols: 2, PitchU: pitch, PitchV: pitch}, surface.Reflective, nil)
	if err != nil {
		t.Fatal(err)
	}
	d, err := driver.New(spec, s)
	if err != nil {
		t.Fatal(err)
	}
	a, err := ctrlproto.NewAgent("cli-dev", "east_wall", d)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := a.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	return addr.String()
}

func TestCLICommands(t *testing.T) {
	addr := startAgent(t)

	var out strings.Builder
	if err := run(context.Background(), addr, []string{"hello"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "device=cli-dev") {
		t.Errorf("hello: %q", out.String())
	}

	out.Reset()
	if err := run(context.Background(), addr, []string{"spec"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "model=NR-Surface") || !strings.Contains(out.String(), "granularity=column-wise") {
		t.Errorf("spec: %q", out.String())
	}

	out.Reset()
	if err := run(context.Background(), addr, []string{"active"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "no active configuration") {
		t.Errorf("active before zero: %q", out.String())
	}

	out.Reset()
	if err := run(context.Background(), addr, []string{"zero"}, &out); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run(context.Background(), addr, []string{"active"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "label=active") {
		t.Errorf("active after zero: %q", out.String())
	}

	out.Reset()
	if err := run(context.Background(), addr, []string{"select", "0"}, &out); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), addr, []string{"select", "9"}, &out); err == nil {
		t.Error("out-of-range select accepted")
	}
	if err := run(context.Background(), addr, []string{"select"}, &out); err == nil {
		t.Error("select without index accepted")
	}
	if err := run(context.Background(), addr, []string{"select", "x"}, &out); err == nil {
		t.Error("non-numeric select accepted")
	}
	if err := run(context.Background(), addr, []string{"warp"}, &out); err == nil {
		t.Error("unknown command accepted")
	}
	if err := run(context.Background(), addr, nil, &out); err == nil {
		t.Error("missing command accepted")
	}
	if err := run(context.Background(), "127.0.0.1:1", []string{"hello"}, &out); err == nil {
		t.Error("dead agent address accepted")
	}
}
