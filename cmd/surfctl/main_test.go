package main

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"surfos/internal/ctrlproto"
	"surfos/internal/driver"
	"surfos/internal/em"
	"surfos/internal/geom"
	"surfos/internal/hwmgr"
	"surfos/internal/orchestrator"
	"surfos/internal/rfsim"
	"surfos/internal/scene"
	"surfos/internal/surface"
	"surfos/internal/telemetry"
)

// startAgent serves a real agent for the CLI to talk to.
func startAgent(t *testing.T) string {
	t.Helper()
	spec, err := driver.Lookup(driver.ModelNRSurface)
	if err != nil {
		t.Fatal(err)
	}
	pitch := em.Wavelength(24e9) / 2
	panel := geom.RectXY(geom.V(0, 0, 1), geom.V(-1, 0, 0), geom.V(0, 0, 1), 0.2, 0.2)
	s, err := surface.New("p", panel, surface.Layout{Rows: 2, Cols: 2, PitchU: pitch, PitchV: pitch}, surface.Reflective, nil)
	if err != nil {
		t.Fatal(err)
	}
	d, err := driver.New(spec, s)
	if err != nil {
		t.Fatal(err)
	}
	a, err := ctrlproto.NewAgent("cli-dev", "east_wall", d)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := a.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	return addr.String()
}

func TestCLICommands(t *testing.T) {
	addr := startAgent(t)

	var out strings.Builder
	if err := run(context.Background(), addr, []string{"hello"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "device=cli-dev") {
		t.Errorf("hello: %q", out.String())
	}

	out.Reset()
	if err := run(context.Background(), addr, []string{"spec"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "model=NR-Surface") || !strings.Contains(out.String(), "granularity=column-wise") {
		t.Errorf("spec: %q", out.String())
	}

	out.Reset()
	if err := run(context.Background(), addr, []string{"active"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "no active configuration") {
		t.Errorf("active before zero: %q", out.String())
	}

	out.Reset()
	if err := run(context.Background(), addr, []string{"zero"}, &out); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run(context.Background(), addr, []string{"active"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "label=active") {
		t.Errorf("active after zero: %q", out.String())
	}

	out.Reset()
	if err := run(context.Background(), addr, []string{"select", "0"}, &out); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), addr, []string{"select", "9"}, &out); err == nil {
		t.Error("out-of-range select accepted")
	}
	if err := run(context.Background(), addr, []string{"select"}, &out); err == nil {
		t.Error("select without index accepted")
	}
	if err := run(context.Background(), addr, []string{"select", "x"}, &out); err == nil {
		t.Error("non-numeric select accepted")
	}
	if err := run(context.Background(), addr, []string{"warp"}, &out); err == nil {
		t.Error("unknown command accepted")
	}
	if err := run(context.Background(), addr, nil, &out); err == nil {
		t.Error("missing command accepted")
	}
	if err := run(context.Background(), "127.0.0.1:1", []string{"hello"}, &out); err == nil {
		t.Error("dead agent address accepted")
	}
}

// startCtrlAgent serves an orchestrator-backed control agent for the task
// commands. The hardware manager is returned so tests can inject device
// health transitions.
func startCtrlAgent(t *testing.T) (string, *hwmgr.Manager) {
	t.Helper()
	orch, hw, events := newCtrlStack(t)
	a, addr := serveCtrl(t, orch, events, "127.0.0.1:0")
	t.Cleanup(func() { a.Close() })
	return addr, hw
}

// newCtrlStack builds the orchestrator/hardware/event-bus trio a control
// agent fronts; split from the agent so restart tests can serve the same
// stack through successive agents.
func newCtrlStack(t *testing.T) (*orchestrator.Orchestrator, *hwmgr.Manager, *telemetry.EventBus) {
	t.Helper()
	apt := scene.NewApartment()
	hw := hwmgr.New()
	spec, err := driver.Lookup(driver.ModelNRSurface)
	if err != nil {
		t.Fatal(err)
	}
	pitch := em.Wavelength(spec.FreqLowHz+(spec.FreqHighHz-spec.FreqLowHz)/2) / 2
	m := apt.Mounts[scene.MountEastWall]
	panel := m.Panel(24*pitch+0.02, 24*pitch+0.02)
	s, err := surface.New("s0", panel, surface.Layout{Rows: 24, Cols: 24, PitchU: pitch, PitchV: pitch}, spec.OpMode, nil)
	if err != nil {
		t.Fatal(err)
	}
	d, err := driver.New(spec, s)
	if err != nil {
		t.Fatal(err)
	}
	if err := hw.AddSurface("s0", scene.MountEastWall, d); err != nil {
		t.Fatal(err)
	}
	if err := hw.AddAP(&hwmgr.AccessPoint{ID: "ap0", Pos: apt.AP, FreqHz: 24e9, Budget: rfsim.DefaultBudget(), Antennas: 4}); err != nil {
		t.Fatal(err)
	}
	orch, err := orchestrator.New(apt.Scene, hw, orchestrator.Options{
		OptIters: 30, GridStep: 1.2, SensingGridStep: 2.0, SensingBins: 15, SensingSubcarriers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	events := telemetry.NewEventBus()
	orch.SetEventBus(events)
	hw.SetEventBus(events)
	return orch, hw, events
}

// serveCtrl fronts the stack with a fresh control agent on listen (pass a
// previous agent's address to simulate a daemon restart on the same port).
func serveCtrl(t *testing.T, orch *orchestrator.Orchestrator, events *telemetry.EventBus, listen string) (*ctrlproto.CtrlAgent, string) {
	t.Helper()
	a, err := ctrlproto.NewCtrlAgent(orch)
	if err != nil {
		t.Fatal(err)
	}
	a.Events = events
	a.Reconcile = orch.Reconcile
	addr, err := a.Listen(listen)
	if err != nil {
		t.Fatal(err)
	}
	return a, addr.String()
}

func TestCLITaskCommandsAndExitCodes(t *testing.T) {
	addr, _ := startCtrlAgent(t)
	ctx := context.Background()

	var out strings.Builder
	if err := run(ctx, addr, []string{"tasks"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "no tasks") {
		t.Errorf("tasks on empty table: %q", out.String())
	}

	out.Reset()
	if err := run(ctx, addr, []string{"submit", "-kind", "link", "-endpoint", "laptop", "-pos", "2.5,5.5,1.2"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "state=running") || !strings.Contains(out.String(), "snr_db=") {
		t.Errorf("submit output: %q", out.String())
	}

	out.Reset()
	if err := run(ctx, addr, []string{"idle", "1"}, &out); err != nil {
		t.Fatal(err)
	}
	if err := run(ctx, addr, []string{"resume", "1"}, &out); err != nil {
		t.Fatal(err)
	}
	if err := run(ctx, addr, []string{"end", "1"}, &out); err != nil {
		t.Fatal(err)
	}

	// The acceptance criterion: a sentinel raised inside the orchestrator
	// survives the wire hop into the CLI as the same errors.Is identity,
	// and each failure class maps to its own exit code.
	err := run(ctx, addr, []string{"end", "999"}, &out)
	if !errors.Is(err, orchestrator.ErrUnknownTask) {
		t.Errorf("end 999 err = %v, want errors.Is ErrUnknownTask", err)
	}
	if code := exitCode(err); code != exitUnknownTask {
		t.Errorf("end 999 exit code = %d, want %d", code, exitUnknownTask)
	}

	err = run(ctx, addr, []string{"submit", "-kind", "link"}, &out) // no endpoint
	if !errors.Is(err, orchestrator.ErrGoalInvalid) {
		t.Errorf("bad submit err = %v, want errors.Is ErrGoalInvalid", err)
	}
	if code := exitCode(err); code != exitGoalInvalid {
		t.Errorf("bad submit exit code = %d, want %d", code, exitGoalInvalid)
	}

	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	err = run(cancelled, addr, []string{"tasks"}, &out)
	if code := exitCode(err); code != exitCancelled {
		t.Errorf("cancelled exit code = %d (err %v), want %d", code, err, exitCancelled)
	}

	// Usage errors: their own code, distinct from all of the above.
	if code := exitCode(run(ctx, addr, []string{"end", "x"}, &out)); code != exitUsage {
		t.Errorf("non-numeric id exit code = %d, want %d", code, exitUsage)
	}
	if code := exitCode(run(ctx, addr, nil, &out)); code != exitUsage {
		t.Errorf("no-command exit code = %d, want %d", code, exitUsage)
	}
	if code := exitCode(nil); code != exitOK {
		t.Errorf("nil error exit code = %d", code)
	}
	if code := exitCode(run(ctx, "127.0.0.1:1", []string{"tasks"}, &out)); code != exitFailure {
		t.Error("dead address should map to the generic failure code")
	}
}

func TestCLIWatchStreamsAndStops(t *testing.T) {
	addr, hw := startCtrlAgent(t)
	ctx, cancel := context.WithCancel(context.Background())

	var mu sync.Mutex
	var out strings.Builder
	sync1 := make(chan error, 1)
	go func() {
		sync1 <- run(ctx, addr, []string{"tasks", "--watch"}, syncWriter{mu: &mu, w: &out})
	}()

	// Wait for the watch subscription to be live before driving events.
	deadline := time.Now().Add(10 * time.Second)
	for {
		mu.Lock()
		s := out.String()
		mu.Unlock()
		if strings.Contains(s, "watching task events") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("watch never started: %q", s)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Drive a lifecycle through a second connection while watching.
	var other strings.Builder
	if err := run(context.Background(), addr, []string{"submit", "-kind", "link", "-endpoint", "laptop", "-pos", "2.5,5.5,1.2"}, &other); err != nil {
		t.Fatal(err)
	}
	for {
		mu.Lock()
		s := out.String()
		mu.Unlock()
		if strings.Contains(s, "submitted") && strings.Contains(s, "running") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("watch output missing lifecycle: %q", s)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Device health transitions ride the same stream: killing the surface
	// shows up as a device-scoped line, so operators watch healing live.
	hw.RecordFailure("s0", driver.ErrDeviceDead)
	for {
		mu.Lock()
		s := out.String()
		mu.Unlock()
		if strings.Contains(s, "device s0 device_dead") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("watch output missing device event: %q", s)
		}
		time.Sleep(10 * time.Millisecond)
	}
	cancel()
	if err := <-sync1; err != nil {
		t.Errorf("watch exit err = %v, want nil on cancel", err)
	}
}

func TestCLIHealthCommand(t *testing.T) {
	addr, hw := startCtrlAgent(t)
	ctx := context.Background()

	var out strings.Builder
	if err := run(ctx, addr, []string{"health"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "device s0 state=healthy") {
		t.Errorf("health on fresh device: %q", out.String())
	}

	// A dead device surfaces with its failure counters and last error.
	hw.RecordFailure("s0", driver.ErrDeviceDead)
	out.Reset()
	if err := run(ctx, addr, []string{"health"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "state=dead") || !strings.Contains(s, "failures=1/1") || !strings.Contains(s, "err=") {
		t.Errorf("health on dead device: %q", s)
	}
}

// A southbound request that dies awaiting its reply must exit with the
// dedicated control-channel timeout code, distinct from operator ^C.
func TestCLITimeoutExitCode(t *testing.T) {
	if code := exitCode(fmt.Errorf("tasks: %w", ctrlproto.ErrTimeout)); code != exitTimeout {
		t.Errorf("wrapped ErrTimeout exit code = %d, want %d", code, exitTimeout)
	}
	if exitTimeout == exitCancelled {
		t.Fatal("timeout and cancel codes must differ")
	}
}

// syncWriter serializes concurrent writes from the watch goroutine against
// the test's readers.
type syncWriter struct {
	mu *sync.Mutex
	w  *strings.Builder
}

func (s syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}
