package main

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"surfos/internal/driver"
)

// TestCLIWatchReconnectsAcrossRestart kills the daemon's control agent
// mid-watch and restarts it on the same port: the watch must notice the
// drop, redial with backoff, print the `reconnected` marker, and keep
// streaming events from the new epoch.
func TestCLIWatchReconnectsAcrossRestart(t *testing.T) {
	orch, hw, events := newCtrlStack(t)
	a1, addr := serveCtrl(t, orch, events, "127.0.0.1:0")

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var mu sync.Mutex
	var out strings.Builder
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, addr, []string{"tasks", "--watch"}, syncWriter{mu: &mu, w: &out})
	}()

	await := func(marker string) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for {
			mu.Lock()
			s := out.String()
			mu.Unlock()
			if strings.Contains(s, marker) {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("never saw %q in: %q", marker, s)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	await("watching task events")

	// Hard-stop the first epoch: every watch connection drops.
	a1.Close()
	await("connection lost; reconnecting")

	// Restart on the same address; the watcher's backoff loop finds it.
	a2, _ := serveCtrl(t, orch, events, addr)
	t.Cleanup(func() { a2.Close() })
	await("reconnected")

	// The resumed stream carries the new epoch's events.
	hw.RecordFailure("s0", driver.ErrDeviceDead)
	await("device s0 device_dead")

	cancel()
	if err := <-done; err != nil {
		t.Errorf("watch exit err = %v, want nil on cancel", err)
	}
}
