// Command surfos-bench regenerates the tables and figures of the SurfOS
// paper's evaluation section (§4) and prints them to stdout.
//
// Usage:
//
//	surfos-bench [-exp table1|fig2|fig4|fig5|fig6|chaos|restart|failover|mobility|watchers|all] [-profile quick|full]
//	             [-json FILE]
//
// The quick profile (default) shrinks grids and surfaces so the whole
// suite runs in seconds while preserving the shapes the paper reports;
// the full profile runs at paper-like fidelity and takes minutes.
//
// The watchers experiment (northbound stream fan-out under restart) is
// timing-sensitive, so `all` — the golden-checked suite — excludes it;
// run it explicitly with -exp watchers. With -json FILE its result
// record is also written as JSON (how BENCH_northbound.json is made).
//
// The mobility experiment (churn scenario: walking users, Poisson task
// arrivals, wall toggles, governed re-plans) renders a deterministic
// per-seed timeline, so `all` includes it; -json FILE additionally
// records its churn benchmark (how BENCH_mobility.json is made).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"surfos/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: table1, fig2, fig4, fig5, fig6, chaos, restart, failover, mobility, watchers, or all")
	profileName := flag.String("profile", "quick", "workload profile: quick or full")
	jsonPath := flag.String("json", "", "also write the experiment's result record as JSON to FILE (mobility, watchers)")
	flag.Parse()

	var profile experiments.Profile
	switch strings.ToLower(*profileName) {
	case "quick":
		profile = experiments.Quick
	case "full":
		profile = experiments.Full
	default:
		fmt.Fprintf(os.Stderr, "surfos-bench: unknown profile %q\n", *profileName)
		os.Exit(2)
	}

	// ^C cancels the running experiment; optimizers stop at their best
	// configuration so far and the suite reports the ctx error.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	runners := map[string]func() (string, error){
		"table1": func() (string, error) { return experiments.RunTable1().Render(), nil },
		"fig6":   func() (string, error) { return experiments.RunFig6().Render(), nil },
		"fig2": func() (string, error) {
			r, err := experiments.RunFig2(ctx, profile)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		},
		"fig4": func() (string, error) {
			r, err := experiments.RunFig4(ctx, profile)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		},
		"fig5": func() (string, error) {
			r, err := experiments.RunFig5(ctx, profile)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		},
		"chaos": func() (string, error) {
			r, err := experiments.RunChaos(ctx, profile)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		},
		"restart": func() (string, error) {
			r, err := experiments.RunRestart(ctx, profile)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		},
		"failover": func() (string, error) {
			r, err := experiments.RunFailover(ctx, profile)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		},
		"mobility": func() (string, error) {
			r, err := experiments.RunMobility(ctx, profile, 1)
			if err != nil {
				return "", err
			}
			if *jsonPath != "" {
				data, err := json.MarshalIndent(r, "", "  ")
				if err != nil {
					return "", err
				}
				if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
					return "", err
				}
			}
			if s := r.ShapeCheck(); s != "" {
				return "", fmt.Errorf("shape check failed: %s", s)
			}
			return r.Render(), nil
		},
		"watchers": func() (string, error) {
			r, err := experiments.RunWatchers(ctx, profile)
			if err != nil {
				return "", err
			}
			if *jsonPath != "" {
				data, err := json.MarshalIndent(r, "", "  ")
				if err != nil {
					return "", err
				}
				if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
					return "", err
				}
			}
			if s := r.ShapeCheck(); s != "" {
				return "", fmt.Errorf("shape check failed: %s", s)
			}
			return r.Render(), nil
		},
	}
	// watchers is deliberately absent: `all` feeds the golden check, and
	// the fan-out benchmark's numbers vary run to run.
	order := []string{"table1", "fig2", "fig4", "fig5", "fig6", "chaos", "restart", "failover", "mobility"}

	var selected []string
	if *exp == "all" {
		selected = order
	} else {
		if _, ok := runners[*exp]; !ok {
			fmt.Fprintf(os.Stderr, "surfos-bench: unknown experiment %q\n", *exp)
			os.Exit(2)
		}
		selected = []string{*exp}
	}

	failed := false
	for _, name := range selected {
		start := time.Now()
		out, err := runners[name]()
		if err != nil {
			fmt.Fprintf(os.Stderr, "surfos-bench: %s: %v\n", name, err)
			failed = true
			continue
		}
		fmt.Printf("==== %s (%s profile, %v) ====\n\n%s\n", name, profile, time.Since(start).Round(time.Millisecond), out)
	}
	if failed {
		os.Exit(1)
	}
}
