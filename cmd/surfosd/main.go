// Command surfosd runs a SurfOS control-plane daemon over the reference
// two-room apartment: it deploys surfaces from the hardware catalog,
// exposes each device through a southbound control-protocol agent (as a
// remote surface controller would), and serves a northbound line protocol
// for operators and applications.
//
// Usage:
//
//	surfosd [-listen 127.0.0.1:7090] [-surfaces NR-Surface@east_wall,NR-Surface@north_wall]
//	        [-state-dir DIR] [-drain-timeout 5s] [-metrics ADDR]
//	        [-max-conns N] [-idle-timeout 5m]
//	        [-admit-max N] [-tenant-quota NAME=MAX[:WEIGHT],...]
//	        [-health-interval 2s] [-fault-seed N] [-fault-fail P] [-fault-stuck N] [-fault-latency D]
//
// The -listen port is dual-protocol: a first byte equal to the wire magic
// selects a framed task-control session (what surfctl speaks); anything
// else — including silence — gets the interactive text protocol below.
// The dedicated -ctrl port keeps serving framed clients unchanged.
// With -metrics set, Prometheus text metrics (reconcile latency, journal
// progress and lag, device health, admission rejections, event-bus
// backpressure) are served at http://ADDR/metrics.
//
// With -state-dir set, the daemon journals every task spec and lifecycle
// transition to an append-only write-ahead log in DIR and, at boot,
// recovers: every task that was submitted and not ended when the previous
// daemon died is re-admitted under its original ID and re-planned against
// the current surface and health state. Empty (the default) disables
// durability entirely, preserving the in-memory-only behavior.
//
// On SIGINT/SIGTERM the daemon shuts down gracefully: it stops accepting,
// drains in-flight northbound connections up to -drain-timeout, finishes
// the current reconcile, snapshots and fsyncs the journal, and exits.
//
// The -fault-* flags attach a deterministic fault injector to every deployed
// driver (seeded fault-seed+i for device i): -fault-fail sets the transient
// control-failure probability, -fault-stuck freezes every Nth element at π,
// and -fault-latency delays every control write. The health heartbeat loop
// (-health-interval; 0 disables) probes devices, feeds the health tracker,
// and the orchestrator re-plans around devices that die.
//
// Northbound protocol (one command per line):
//
//	demand <utterance>   translate a user demand and schedule its services
//	tasks                list tasks
//	plans                list active scheduling plans
//	devices              list devices (read back over the southbound protocol)
//	health               list per-device health (state, stuck mask, failures)
//	catalog              print the hardware design catalog
//	end <id>             terminate a task
//	idle <id> | resume <id>
//	move <id> <x> <y> <z>  re-target a walking user's task (handoff across domains)
//	tick <duration>      advance the virtual clock (e.g. tick 500ms)
//	quit
//
// The -replan-* flags enable the churn governor: task-scoped mutations
// mark their interference domain dirty instead of re-planning inline, a
// per-domain token bucket (-replan-burst, -replan-refill) coalesces
// bursts, and -replan-staleness bounds how stale a dirty domain's plan
// may get before a re-plan is forced. -warm-replan seeds each re-plan
// from the previous committed plan. Governor counters are exported on
// -metrics (surfos_replans_total, surfos_replans_suppressed_total,
// surfos_replan_duration_seconds).
package main

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"surfos"
	"surfos/internal/ctrlproto"
	"surfos/internal/hwmgr"
	"surfos/internal/metrics"
	"surfos/internal/orchestrator"
	"surfos/internal/store"
	"surfos/internal/telemetry"
	"surfos/internal/wire"
)

// Northbound connection hardening: a stuck or hostile client cannot pin
// goroutines forever. The idle deadline re-arms before every read; the
// connection cap rejects (with a diagnostic line) rather than queues, so
// operators get an immediate signal instead of a hang. The cap and idle
// timeout are tunable (-max-conns, -idle-timeout); these are the defaults.
const (
	defaultMaxNorthboundConns    = 64
	defaultNorthboundIdleTimeout = 5 * time.Minute
	northboundLineMax            = 64 * 1024
	// northboundSniffTimeout bounds the framed-vs-text protocol detection:
	// framed clients lead with the wire magic byte immediately, text
	// operators stay silent until they see the banner.
	northboundSniffTimeout = 250 * time.Millisecond
)

// daemonOptions is the fault-injection and health-loop configuration; the
// zero value injects nothing and runs no heartbeat (tests probe manually).
type daemonOptions struct {
	// faultSeed seeds device i's injector with faultSeed+i, so runs replay.
	faultSeed int64
	// faultProb is the per-control-write transient failure probability.
	faultProb float64
	// faultStuck freezes every Nth element at π (0 disables).
	faultStuck int
	// faultLatency delays every control write.
	faultLatency time.Duration
	// healthEvery is the heartbeat probe interval (0 disables the loop).
	healthEvery time.Duration
	// admitMax caps live tasks across all tenants (0 disables).
	admitMax int
	// quotas holds per-tenant admission quotas from -tenant-quota.
	quotas map[string]surfos.TenantQuota
	// maxConns caps concurrent northbound connections (0 = default).
	maxConns int
	// idleTimeout disconnects silent text-mode peers (0 = default).
	idleTimeout time.Duration
	// optWorkers caps engine workers per optimizer run (0 = engine
	// width, 1 = serial); results are identical either way.
	optWorkers int
	// replanBurst enables the replan governor when > 0: each interference
	// domain may re-plan this many times back-to-back before churn is
	// coalesced (0 keeps the legacy immediate re-plan path).
	replanBurst int
	// replanRefill is the governor's token refill interval (0 = default).
	replanRefill time.Duration
	// replanStaleness bounds how long a dirty domain may serve a stale
	// plan before a re-plan is forced (0 = default).
	replanStaleness time.Duration
	// warmReplan seeds each re-plan from the previous committed plan.
	warmReplan bool
	// replicateTo lists follower control addresses to ship the WAL to
	// (comma-separated; empty disables replication).
	replicateTo string
	// follow runs the daemon as a warm standby: it receives replication
	// on its -ctrl port, rejects mutations, and promotes on lease expiry.
	follow bool
	// leaseTTL is the leadership lease duration (0 = default 3s).
	leaseTTL time.Duration
}

func (o daemonOptions) injecting() bool {
	return o.faultProb > 0 || o.faultStuck > 0 || o.faultLatency > 0
}

type daemon struct {
	// ctx is the daemon's lifetime context: canceled at the very end of
	// shutdown (after the drain), it aborts in-flight reconciliation
	// (returning the best-so-far configurations) and southbound round
	// trips.
	ctx    context.Context
	apt    *surfos.Apartment
	hw     *surfos.Hardware
	orch   *surfos.Orchestrator
	broker *surfos.Broker
	agents []*ctrlproto.Agent
	// southbound clients, keyed by device id
	clients map[string]*ctrlproto.Client
	// monitoring/diagnosis service fed by endpoint telemetry
	mon     *surfos.Monitor
	bus     *surfos.TelemetryBus
	monStop func()
	// task lifecycle events: the orchestrator publishes, the monitor and
	// northbound watchers consume
	events    *surfos.TaskEventBus
	eventStop func()
	// healStop unsubscribes the self-healing consumer from the event bus
	healStop func()
	ctrl     *ctrlproto.CtrlAgent
	// gov coalesces churn-driven re-plans per interference domain (nil
	// unless -replan-burst enabled it).
	gov *surfos.Governor

	// Durability (nil without -state-dir): the journal consumes the task
	// event bus and persists specs and transitions to the state dir.
	// stateMu guards these fields: promotion installs a journal at
	// runtime, racing health/metrics readers.
	stateMu     sync.Mutex
	journal     *store.Journal
	journalCh   <-chan telemetry.TaskEvent
	journalStop func()
	journalDone chan struct{}

	// Replication: standby gates mutations (true on a follower until it
	// promotes, and on a fenced ex-primary); follower is the warm replica
	// in -follow mode; replAcked tracks each follower's acked sequence on
	// the primary.
	standby     atomic.Bool
	follower    *store.Follower
	followDir   string
	holder      string
	replicating bool
	promotions  atomic.Uint64
	fenced      atomic.Bool
	lastRenew   atomic.Int64 // unix nanos of the last acked renewal's send (primary lease)
	replMu      sync.Mutex
	replAcked   map[string]uint64

	// Northbound connection tracking for the graceful drain: the semaphore
	// caps concurrency, the map enables the post-deadline force-close, and
	// the WaitGroup is the drain barrier.
	connMu      sync.Mutex
	conns       map[net.Conn]struct{}
	connWG      sync.WaitGroup
	connSem     chan struct{}
	maxConns    int
	idleTimeout time.Duration
}

func newDaemon(ctx context.Context, surfaceList string, opts daemonOptions) (*daemon, error) {
	maxConns := opts.maxConns
	if maxConns <= 0 {
		maxConns = defaultMaxNorthboundConns
	}
	idleTimeout := opts.idleTimeout
	if idleTimeout <= 0 {
		idleTimeout = defaultNorthboundIdleTimeout
	}
	d := &daemon{
		ctx:         ctx,
		apt:         surfos.NewApartment(),
		hw:          surfos.NewHardware(),
		clients:     map[string]*ctrlproto.Client{},
		mon:         surfos.NewMonitor(),
		bus:         surfos.NewTelemetryBus(),
		events:      surfos.NewTaskEventBus(),
		conns:       map[net.Conn]struct{}{},
		replAcked:   map[string]uint64{},
		connSem:     make(chan struct{}, maxConns),
		maxConns:    maxConns,
		idleTimeout: idleTimeout,
	}
	// Health transitions (device_degraded/device_dead/device_recovered) are
	// published on the task-event bus: the monitor folds them into diagnosis
	// and northbound watchers see healing alongside scheduling.
	d.hw.SetEventBus(d.events)
	d.monStop = d.mon.Run(ctx, d.bus)
	// Link-task predictions become monitoring expectations the moment the
	// scheduler marks the task running — no per-command wiring needed.
	d.eventStop = d.mon.RunTaskEvents(ctx, d.events)
	for i, item := range strings.Split(surfaceList, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		model, mountName, ok := strings.Cut(item, "@")
		if !ok {
			return nil, fmt.Errorf("surface %q: want MODEL@MOUNT", item)
		}
		mount, exists := d.apt.Mounts[mountName]
		if !exists {
			return nil, fmt.Errorf("unknown mount %q", mountName)
		}
		id := fmt.Sprintf("s%d-%s", i, model)
		drv, err := surfos.Deploy(d.hw, id, model, mount, 24, 24)
		if err != nil {
			return nil, err
		}
		if opts.injecting() {
			fm := surfos.NewFaultModel(opts.faultSeed + int64(i))
			fm.SetFailProb(opts.faultProb)
			fm.SetLatency(opts.faultLatency)
			if opts.faultStuck > 0 {
				for e := 0; e < drv.Surface().NumElements(); e += opts.faultStuck {
					fm.StickElement(e, math.Pi)
				}
			}
			drv.SetFaults(fm)
			log.Printf("fault injector on %s: seed=%d fail=%g stuck-every=%d latency=%s",
				id, opts.faultSeed+int64(i), opts.faultProb, opts.faultStuck, opts.faultLatency)
		}
		// Expose the device through the southbound protocol, the way a
		// physically remote surface controller would be managed.
		agent, err := ctrlproto.NewAgent(id, mountName, drv)
		if err != nil {
			return nil, err
		}
		addr, err := agent.Listen("127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		client, err := ctrlproto.Dial(addr.String())
		if err != nil {
			return nil, err
		}
		// Injected transient failures and latency make timeouts realistic;
		// bounded retries with idempotent request IDs absorb them without
		// ever double-applying a configuration.
		client.Retry = ctrlproto.RetryPolicy{Attempts: 3}
		d.agents = append(d.agents, agent)
		d.clients[id] = client
		log.Printf("deployed %s at %s (southbound agent %s)", id, mountName, addr)
	}

	if err := d.hw.AddAP(&surfos.AccessPoint{
		ID: "ap0", Pos: d.apt.AP, FreqHz: 24e9,
		Budget: surfos.DefaultBudget(), Antennas: 16,
	}); err != nil {
		return nil, err
	}

	orch, err := surfos.NewOrchestrator(d.apt.Scene, d.hw, surfos.Options{
		OptWorkers: opts.optWorkers,
		WarmStart:  opts.warmReplan,
	})
	if err != nil {
		return nil, err
	}
	orch.SetEventBus(d.events)
	d.orch = orch
	if opts.replanBurst > 0 {
		d.gov = surfos.NewGovernor(orch, surfos.GovernorOptions{
			Burst:        opts.replanBurst,
			Refill:       opts.replanRefill,
			MaxStaleness: opts.replanStaleness,
		})
		g := d.gov.Options()
		log.Printf("replan governor: burst=%d refill=%s max-staleness=%s warm=%v",
			g.Burst, g.Refill, g.MaxStaleness, opts.warmReplan)
		// Deadline enforcement: a dirty domain whose tokens never refill in
		// time still re-plans within MaxStaleness. Polling at a quarter of
		// the bound keeps the observed staleness close to it.
		every := g.MaxStaleness / 4
		if every < 50*time.Millisecond {
			every = 50 * time.Millisecond
		}
		go func() {
			t := time.NewTicker(every)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case now := <-t.C:
					if _, err := d.gov.Poll(ctx, now); err != nil && ctx.Err() == nil {
						log.Printf("replan governor: %v", err)
					}
				}
			}
		}()
	}
	if opts.admitMax > 0 {
		orch.SetAdmissionLimit(opts.admitMax)
		log.Printf("admission: global live-task cap %d", opts.admitMax)
	}
	for name, q := range opts.quotas {
		orch.SetTenantQuota(name, q)
		log.Printf("admission: tenant %q max-active=%d weight=%g", name, q.MaxActive, q.Weight)
	}

	// Self-healing: device health transitions trigger a re-plan, migrating
	// tasks off dead surfaces and back when they recover. Named so bus
	// drop attribution (health output, metrics) can point at the consumer.
	healCh, healUnsub := d.events.SubscribeOpts(telemetry.SubOptions[telemetry.TaskEvent]{
		Name: "selfheal", Buffer: 256,
	})
	d.healStop = healUnsub
	go orch.RunDeviceEvents(ctx, healCh)
	if opts.healthEvery > 0 {
		go d.hw.RunHealth(ctx, opts.healthEvery)
	}

	tr := surfos.NewTranslator()
	tr.Rooms["bedroom"] = "room_id"
	br, err := surfos.NewBroker(tr, orch, surfos.Inventory{
		Devices: map[string]surfos.Vec3{
			"VR_headset": surfos.V(2.5, 5.5, 1.2),
			"laptop":     surfos.V(3.0, 5.0, 1.0),
			"phone":      surfos.V(5.0, 6.0, 1.0),
			"tv":         surfos.V(1.5, 6.5, 1.5),
			"sensor":     surfos.V(6.2, 6.2, 0.8),
			"console":    surfos.V(2.0, 6.0, 0.6),
		},
		RoomRegions: map[string]string{
			"room_id":      surfos.RegionTargetRoom,
			"meeting_room": surfos.RegionTargetRoom,
		},
		EvePos: surfos.V(6.0, 4.5, 1.2),
	})
	if err != nil {
		return nil, err
	}
	d.broker = br

	// Northbound binary control plane: the task API surfctl speaks.
	ctrl, err := ctrlproto.NewCtrlAgent(orch)
	if err != nil {
		return nil, err
	}
	ctrl.Broker = br
	ctrl.Events = d.events
	ctrl.Reconcile = orch.Reconcile
	// Task-scoped mutations re-plan only the task's interference domain —
	// through the governor when enabled, so northbound churn coalesces.
	ctrl.ReconcileTask = d.replanTask
	ctrl.ControlHealth = d.controlHealth
	// Standby daemons (followers, fenced ex-primaries) reject mutations
	// with StatusNotLeader so clients rotate to the promoted primary.
	ctrl.Standby = d.standby.Load
	ctrl.Ctx = ctx
	ctrl.Logf = log.Printf
	d.ctrl = ctrl
	return d, nil
}

// replanTask re-plans after a task-scoped mutation: through the governor
// when -replan-burst enabled it (marking the task's domain dirty and
// letting the token bucket decide), directly otherwise.
func (d *daemon) replanTask(ctx context.Context, taskID int) error {
	if d.gov == nil {
		return d.orch.ReconcileTask(ctx, taskID)
	}
	now := time.Now()
	d.gov.MarkTask(taskID, now)
	_, err := d.gov.Poll(ctx, now)
	return err
}

// controlHealth assembles the control plane's own health snapshot for the
// binary health reply: telemetry bus backpressure, journal progress, and
// the orchestrator's shard and tenant state.
func (d *daemon) controlHealth() ctrlproto.ControlHealthInfo {
	info := ctrlproto.ControlHealthInfo{BusDropped: d.events.Dropped()}
	if j := d.getJournal(); j != nil {
		info.JournalSeq = j.Seq()
		// Lag is the journal subscription backlog: events published but
		// not yet persisted.
		info.JournalLag = uint32(d.journalBacklog())
		if err := j.Err(); err != nil {
			info.JournalErr = err.Error()
		}
	}
	for _, s := range d.orch.ShardStats() {
		info.Shards = append(info.Shards, ctrlproto.ShardHealthInfo{
			Domain:             uint32(s.Domain),
			Surfaces:           s.Surfaces,
			Tasks:              uint32(s.Tasks),
			Running:            uint32(s.Running),
			Reconciles:         s.Reconciles,
			LastReconcileNanos: uint64(s.LastReconcile),
		})
	}
	for _, t := range d.orch.TenantStats() {
		info.Tenants = append(info.Tenants, ctrlproto.TenantHealthInfo{
			Tenant:    t.Tenant,
			Active:    uint32(t.Active),
			Rejected:  t.Rejected,
			MaxActive: uint32(t.Quota.MaxActive),
			Weight:    t.Quota.Weight,
		})
	}
	return info
}

// registerMetrics wires every subsystem's exporter into one registry:
// reconcile latency and shard/tenant admission state from the
// orchestrator, device health from the hardware manager, per-subscriber
// fan-out accounting from the event bus, journal progress from the store,
// plus the two daemon-local gauges (journal subscription lag and open
// northbound connections). Call after openState so the journal exporters
// attach.
func (d *daemon) registerMetrics(reg *metrics.Registry) {
	d.orch.RegisterMetrics(reg)
	if d.gov != nil {
		d.gov.RegisterMetrics(reg)
	}
	d.hw.RegisterMetrics(reg)
	d.events.RegisterMetrics(reg)
	if d.getJournal() != nil || d.follower != nil {
		// A follower has no journal yet, but will the moment it promotes;
		// register through the accessor so the exporters follow the swap.
		store.RegisterJournalMetrics(reg, d.getJournal)
		reg.GaugeFunc("surfos_journal_lag",
			"Journal subscription backlog: events published but not yet persisted.",
			func() float64 { return float64(d.journalBacklog()) })
	}
	d.registerReplMetrics(reg)
	reg.GaugeFunc("surfos_northbound_connections",
		"Open northbound connections, text and framed.",
		func() float64 {
			d.connMu.Lock()
			defer d.connMu.Unlock()
			return float64(len(d.conns))
		})
}

// healthStateFor maps a journaled health transition back to the tracker's
// state.
func healthStateFor(transition string) hwmgr.HealthState {
	switch transition {
	case telemetry.DeviceDead:
		return hwmgr.Dead
	case telemetry.DeviceDegraded:
		return hwmgr.Degraded
	}
	return hwmgr.Healthy
}

// openState recovers the journal from dir and attaches a live journal to
// the event bus: device health is rehydrated first (so the recovery
// re-plan sees the world as it was), then every submitted-but-not-ended
// task is re-admitted under its original ID, re-planned from scratch
// against the current surfaces, and the recovered state is immediately
// snapshotted so the WAL restarts compact.
func (d *daemon) openState(dir string) error {
	st, recovered, err := store.Open(dir)
	if err != nil {
		return fmt.Errorf("state %s: %w", dir, err)
	}
	return d.attachState(st, recovered, dir)
}

// attachState turns a recovered (or promoted) store into the daemon's
// live journal: re-admit via the shared orchestrator hook, attach the
// journal to the event bus, reconcile, snapshot. Boot recovery and
// standby promotion both land here, which is what makes failover
// reproduce exactly the plans a rebooted primary would compute.
func (d *daemon) attachState(st *store.Store, recovered *store.State, dir string) error {
	for _, dr := range recovered.DeviceHealth() {
		d.hw.RehydrateHealth(dr.DeviceID, healthStateFor(dr.State), dr.Err)
		if dr.State != telemetry.DeviceRecovered {
			log.Printf("state: rehydrated %s as %s", dr.DeviceID, healthStateFor(dr.State))
		}
	}
	var specs []orchestrator.RestoreSpec
	for _, tr := range recovered.Live() {
		specs = append(specs, orchestrator.RestoreSpec{ID: tr.ID, Spec: tr.Spec, LastState: tr.State})
	}
	res := d.orch.Readmit(specs, recovered.MaxTaskID, log.Printf)
	// A spec that no longer validates (renamed region, changed scene)
	// must not block the rest of the recovery; drop it from the journal
	// state so it is not retried forever.
	for _, id := range res.Dropped {
		delete(recovered.Tasks, id)
	}
	// The journal's state mirror is seeded with the recovered state (the
	// restoration events above predate the subscription), so the upcoming
	// snapshot is exactly "live tasks at recovery".
	journal := store.NewJournal(st, recovered)
	// Announce the first journaling failure immediately — durability loss
	// must not wait for the shutdown snapshot to surface — and mirror it
	// as a journal_failed bus event so it reaches /metrics and watchers.
	journal.SetLogf(log.Printf)
	journal.SetEventBus(d.events)
	// The journal must keep the synchronous drop-newest policy: a published
	// event is either in the channel (and will be persisted) or counted
	// dropped at publish time — a ring would defer that decision.
	ch, unsub := d.events.SubscribeOpts(telemetry.SubOptions[telemetry.TaskEvent]{
		Name: "journal", Buffer: store.JournalBuffer,
	})
	done := make(chan struct{})
	d.stateMu.Lock()
	d.journal = journal
	d.journalCh = ch
	d.journalStop = unsub
	d.journalDone = done
	d.stateMu.Unlock()
	go func() {
		defer close(done)
		journal.Run(d.ctx, ch)
	}()
	if res.Restored > 0 {
		if err := d.orch.Reconcile(d.ctx); err != nil {
			log.Printf("state: recovery reconcile: %v", err)
		}
	}
	if err := journal.Snapshot(); err != nil {
		return fmt.Errorf("state %s: snapshot: %w", dir, err)
	}
	// Read the sequence through the journal's lock: the pump goroutine
	// above may already be appending events that raced in during recovery.
	log.Printf("state: recovered %d task(s) from %s (journal seq %d)", res.Restored, dir, journal.Seq())
	return nil
}

// getJournal returns the live journal (nil before state attaches).
func (d *daemon) getJournal() *store.Journal {
	d.stateMu.Lock()
	defer d.stateMu.Unlock()
	return d.journal
}

// journalBacklog reports the journal subscription's buffered event count.
func (d *daemon) journalBacklog() int {
	d.stateMu.Lock()
	defer d.stateMu.Unlock()
	if d.journalCh == nil {
		return 0
	}
	return len(d.journalCh)
}

// closeState performs the journal's clean shutdown: stop consuming, drain
// buffered events, compact into a final snapshot, and fsync everything.
func (d *daemon) closeState() {
	d.stateMu.Lock()
	journal, stop, done := d.journal, d.journalStop, d.journalDone
	d.journal, d.journalStop, d.journalDone = nil, nil, nil
	d.stateMu.Unlock()
	if journal == nil {
		if d.follower != nil {
			if err := d.follower.Close(); err != nil {
				log.Printf("state: follower close: %v", err)
			}
		}
		return
	}
	// Unsubscribing closes the channel; Run drains what is buffered and
	// exits, so every event published before this point is journaled.
	stop()
	<-done
	if err := journal.Snapshot(); err != nil {
		log.Printf("state: final snapshot: %v", err)
	}
	if err := journal.Close(); err != nil {
		log.Printf("state: close: %v", err)
	}
	if n := d.events.Dropped(); n > 0 {
		log.Printf("state: warning: %d task event(s) dropped on full subscriber buffers", n)
	}
}

func (d *daemon) close() {
	d.closeState()
	if d.ctrl != nil {
		d.ctrl.Close()
	}
	if d.healStop != nil {
		d.healStop()
	}
	if d.eventStop != nil {
		d.eventStop()
	}
	if d.monStop != nil {
		d.monStop()
	}
	for _, c := range d.clients {
		c.Close()
	}
	for _, a := range d.agents {
		a.Close()
	}
}

// handle executes one northbound command and returns the reply text.
func (d *daemon) handle(line string) (string, bool) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return "", true
	}
	cmd, rest := fields[0], strings.TrimSpace(strings.TrimPrefix(line, fields[0]))
	switch cmd {
	case "quit", "exit":
		return "bye", false

	case "help":
		return "commands: demand <text> | tasks | plans | devices | health | catalog | hazards <GHz> | report <dev> <endpoint> <snr> | diagnose | end <id> | idle <id> | resume <id> | move <id> <x> <y> <z> | tick <dur> | quit", true

	case "health":
		var b strings.Builder
		// Durability loss is a control-plane health fact: a journal that
		// stopped writing means new tasks will not survive a restart.
		journal := d.getJournal()
		if journal != nil {
			if err := journal.Err(); err != nil {
				fmt.Fprintf(&b, "journal: FAILED, new tasks are not durable: %v\n", err)
			}
		}
		// Device and control-plane sections share their renderer with
		// surfctl (healthrender.go); the zero options are this text style.
		ctrlproto.RenderDeviceHealth(&b, ctrlproto.HealthInfos(d.hw.HealthAll()), ctrlproto.HealthRenderOptions{})
		if b.Len() == 0 {
			return "no devices", true
		}
		ctrlproto.RenderControlHealth(&b, d.controlHealth(),
			ctrlproto.HealthRenderOptions{JournalAlways: journal != nil})
		return strings.TrimRight(b.String(), "\n"), true

	case "hazards":
		// Cross-band interference check (§2.1: a 2.4 GHz panel can block
		// 5 GHz Wi-Fi). Lists deployed panels that significantly attenuate
		// the given out-of-band frequency.
		ghz, err := strconv.ParseFloat(rest, 64)
		if err != nil {
			return "error: want a frequency in GHz", true
		}
		blockers := d.hw.CrossBandBlockers(ghz*1e9, 3)
		if len(blockers) == 0 {
			return fmt.Sprintf("no deployed panel significantly blocks %.1f GHz", ghz), true
		}
		var b strings.Builder
		for _, dev := range blockers {
			spec := dev.Drv.Spec()
			fmt.Fprintf(&b, "%s (%s, %.1f-%.1f GHz panel) attenuates %.1f GHz by %.1f dB\n",
				dev.ID, spec.Model, spec.FreqLowHz/1e9, spec.FreqHighHz/1e9, ghz,
				spec.Response.PenetrationLossDB(ghz*1e9))
		}
		return strings.TrimRight(b.String(), "\n"), true

	case "report":
		f := strings.Fields(rest)
		if len(f) != 3 {
			return "error: want report <device> <endpoint> <snr-db>", true
		}
		snr, err := strconv.ParseFloat(f[2], 64)
		if err != nil {
			return "error: " + err.Error(), true
		}
		d.bus.Publish(surfos.Report{DeviceID: f[0], EndpointID: f[1], ConfigIdx: 0, SNRdB: snr, Time: time.Now()})
		return "ok", true

	case "diagnose":
		var b strings.Builder
		for _, f := range d.mon.Diagnose(time.Now()) {
			fmt.Fprintf(&b, "%s/%s: %v (expected %.1f dB, observed %.1f dB, %d reports)\n",
				f.DeviceID, f.EndpointID, f.Verdict, f.ExpectedSNRdB, f.ObservedSNRdB, f.Samples)
		}
		if b.Len() == 0 {
			return "no expectations installed (schedule a link task first)", true
		}
		return strings.TrimRight(b.String(), "\n"), true

	case "demand":
		// Same standby gate the framed plane applies: a follower or fenced
		// ex-primary must not mutate state the real primary owns.
		if d.standby.Load() {
			return "error: not the leader (standby); retry against the primary", true
		}
		calls, tasks, err := d.broker.HandleDemand(d.ctx, rest)
		if err != nil {
			return "error: " + err.Error(), true
		}
		var b strings.Builder
		for _, c := range calls {
			fmt.Fprintf(&b, "call: %s\n", c)
		}
		if err := d.orch.Reconcile(d.ctx); err != nil {
			fmt.Fprintf(&b, "reconcile warning: %v\n", err)
		}
		// Link predictions become monitoring expectations via the task
		// lifecycle bus (see RunTaskEvents in newDaemon) — no manual
		// Expect calls here.
		for _, t := range tasks {
			got, _ := d.orch.Task(t.ID)
			if got.Result != nil {
				fmt.Fprintf(&b, "task %d %s: %s, %s=%.2f (share %.2f)\n",
					got.ID, got.Kind, got.State, got.Result.MetricName, got.Result.Metric, got.Result.Share)
			} else {
				fmt.Fprintf(&b, "task %d %s: %s\n", got.ID, got.Kind, got.State)
			}
		}
		return strings.TrimRight(b.String(), "\n"), true

	case "tasks":
		var b strings.Builder
		for _, t := range d.orch.Tasks() {
			fmt.Fprintf(&b, "task %d kind=%s prio=%d state=%s", t.ID, t.Kind, t.Priority, t.State)
			if t.Result != nil {
				fmt.Fprintf(&b, " %s=%.2f strategy=%s", t.Result.MetricName, t.Result.Metric, t.Result.Strategy)
			}
			if t.Err != nil {
				fmt.Fprintf(&b, " err=%v", t.Err)
			}
			b.WriteByte('\n')
		}
		if b.Len() == 0 {
			return "no tasks", true
		}
		return strings.TrimRight(b.String(), "\n"), true

	case "plans":
		var b strings.Builder
		for _, p := range d.orch.Plans() {
			fmt.Fprintf(&b, "plan %s @ %.1f GHz strategy=%s surfaces=%v entries=%d\n",
				p.APID, p.FreqHz/1e9, p.Strategy, p.Surfaces, len(p.Entries))
		}
		if b.Len() == 0 {
			return "no plans", true
		}
		return strings.TrimRight(b.String(), "\n"), true

	case "devices":
		var b strings.Builder
		for _, dev := range d.hw.Surfaces() {
			client, ok := d.clients[dev.ID]
			if !ok {
				fmt.Fprintf(&b, "%s (no southbound agent)\n", dev.ID)
				continue
			}
			spec, err := client.GetSpec(d.ctx)
			if err != nil {
				fmt.Fprintf(&b, "%s southbound error: %v\n", dev.ID, err)
				continue
			}
			act, _ := client.Active(d.ctx)
			state := "unconfigured"
			if act.HasActive {
				state = "active=" + act.Label
			}
			fmt.Fprintf(&b, "%s model=%s %dx%d band=%.1f-%.1fGHz gran=%v cost=$%.0f %s\n",
				dev.ID, spec.Model, spec.Rows, spec.Cols,
				spec.FreqLowHz/1e9, spec.FreqHighHz/1e9, spec.Granularity, spec.CostUSD, state)
		}
		if b.Len() == 0 {
			return "no devices", true
		}
		return strings.TrimRight(b.String(), "\n"), true

	case "catalog":
		var b strings.Builder
		for _, s := range surfos.Catalog() {
			fmt.Fprintf(&b, "%-12s %6.1f-%-6.1fGHz %-13s %-3s reconfigurable=%v\n",
				s.Model, s.FreqLowHz/1e9, s.FreqHighHz/1e9, s.Control, s.OpMode, s.Reconfigurable)
		}
		return strings.TrimRight(b.String(), "\n"), true

	case "end", "idle", "resume":
		if d.standby.Load() {
			return "error: not the leader (standby); retry against the primary", true
		}
		id, err := strconv.Atoi(rest)
		if err != nil {
			return "error: want a task id", true
		}
		switch cmd {
		case "end":
			err = d.orch.EndTask(id)
		case "idle":
			err = d.orch.SetIdle(id, true)
		case "resume":
			err = d.orch.SetIdle(id, false)
		}
		if err != nil {
			return "error: " + err.Error(), true
		}
		if err := d.orch.Reconcile(d.ctx); err != nil {
			return "reconcile warning: " + err.Error(), true
		}
		return "ok", true

	case "move":
		if d.standby.Load() {
			return "error: not the leader (standby); retry against the primary", true
		}
		f := strings.Fields(rest)
		if len(f) != 4 {
			return "error: want move <id> <x> <y> <z>", true
		}
		id, err := strconv.Atoi(f[0])
		if err != nil {
			return "error: want a task id", true
		}
		var pos [3]float64
		for i, s := range f[1:] {
			if pos[i], err = strconv.ParseFloat(s, 64); err != nil {
				return "error: " + err.Error(), true
			}
		}
		res, err := d.orch.MoveTask(id, surfos.V(pos[0], pos[1], pos[2]))
		if err != nil {
			return "error: " + err.Error(), true
		}
		if err := d.replanTask(d.ctx, id); err != nil {
			return "reconcile warning: " + err.Error(), true
		}
		if res.HandedOff {
			return fmt.Sprintf("ok (handoff domain %d -> %d)", res.From, res.To), true
		}
		return "ok", true

	case "tick":
		dur, err := time.ParseDuration(rest)
		if err != nil {
			return "error: " + err.Error(), true
		}
		if err := d.orch.Tick(d.ctx, dur); err != nil {
			return "tick warning: " + err.Error(), true
		}
		return fmt.Sprintf("now %s", d.orch.Now().Format(time.TimeOnly)), true
	}
	return fmt.Sprintf("unknown command %q (try help)", cmd), true
}

// prefixedConn replays the protocol-sniff bytes ahead of the live
// connection so the chosen handler sees an untouched byte stream.
type prefixedConn struct {
	net.Conn
	r io.Reader
}

func (c prefixedConn) Read(p []byte) (int, error) { return c.r.Read(p) }

// sniffNorthbound reads at most one byte under a short deadline to pick
// the session protocol: the wire magic byte means a framed task-control
// client, anything else (or silence) means a text operator. It returns
// the consumed bytes for replay.
func sniffNorthbound(conn net.Conn) (prefix []byte, framed bool, err error) {
	_ = conn.SetReadDeadline(time.Now().Add(northboundSniffTimeout))
	var b [1]byte
	n, err := conn.Read(b[:])
	_ = conn.SetReadDeadline(time.Time{})
	if err != nil {
		if ne, ok := err.(net.Error); ok && ne.Timeout() {
			// A silent peer is a text operator waiting for the banner.
			return nil, false, nil
		}
		return nil, false, err
	}
	return b[:n], n == 1 && b[0] == wire.MagicByte, nil
}

// serveConn handles one northbound session. The first byte selects the
// protocol: framed task-control sessions (the surfctl client) are handed
// to the control agent, everything else speaks the text line protocol.
// Hardening: concurrency is capped (excess connections get a diagnostic
// line and an immediate close), an idle read deadline re-arms before
// every text line, scanner errors — oversized lines, resets, timeouts —
// are logged and answered with a diagnostic when the connection can
// still carry one.
func (d *daemon) serveConn(conn net.Conn) {
	defer conn.Close()
	select {
	case d.connSem <- struct{}{}:
		defer func() { <-d.connSem }()
	default:
		log.Printf("northbound %v: rejected: connection limit (%d) reached", conn.RemoteAddr(), d.maxConns)
		fmt.Fprintf(conn, "error: busy: %d northbound connections already open, retry later\n", d.maxConns)
		return
	}
	d.connMu.Lock()
	d.conns[conn] = struct{}{}
	d.connMu.Unlock()
	defer func() {
		d.connMu.Lock()
		delete(d.conns, conn)
		d.connMu.Unlock()
	}()

	prefix, framed, err := sniffNorthbound(conn)
	if err != nil {
		log.Printf("northbound %v: sniff: %v", conn.RemoteAddr(), err)
		return
	}
	if framed {
		// Framed sessions carry their own liveness (watch streams are
		// long-lived and legitimately silent), so no idle deadline.
		d.ctrl.ServeConn(prefixedConn{Conn: conn, r: io.MultiReader(bytes.NewReader(prefix), conn)})
		return
	}

	fmt.Fprintf(conn, "surfos daemon ready; type help\n")
	sc := bufio.NewScanner(io.MultiReader(bytes.NewReader(prefix), conn))
	sc.Buffer(make([]byte, northboundLineMax), northboundLineMax)
	for {
		// Idle deadline: a silent peer is disconnected rather than pinning
		// this goroutine (and a semaphore slot) forever.
		_ = conn.SetReadDeadline(time.Now().Add(d.idleTimeout))
		if !sc.Scan() {
			break
		}
		reply, cont := d.handle(sc.Text())
		if reply != "" {
			fmt.Fprintln(conn, reply)
		}
		if !cont {
			return
		}
	}
	if err := sc.Err(); err != nil {
		log.Printf("northbound %v: read: %v", conn.RemoteAddr(), err)
		// Best-effort diagnostic: the write side often still works when
		// the failure was ours (line cap) or a timeout, not a peer reset.
		_ = conn.SetWriteDeadline(time.Now().Add(time.Second))
		if errors.Is(err, bufio.ErrTooLong) {
			fmt.Fprintf(conn, "error: line exceeds %d bytes, closing\n", northboundLineMax)
		} else if ne, ok := err.(net.Error); ok && ne.Timeout() {
			fmt.Fprintf(conn, "error: idle for %s, closing\n", d.idleTimeout)
		}
	}
}

// acceptLoop serves northbound connections until the listener closes.
func (d *daemon) acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			if !errors.Is(err, net.ErrClosed) {
				log.Printf("accept: %v", err)
			}
			return
		}
		d.connWG.Add(1)
		go func() {
			defer d.connWG.Done()
			d.serveConn(conn)
		}()
	}
}

// drainConns waits for in-flight northbound sessions to finish, up to
// timeout; stragglers are then force-closed and awaited.
func (d *daemon) drainConns(timeout time.Duration) {
	done := make(chan struct{})
	go func() {
		d.connWG.Wait()
		close(done)
	}()
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case <-done:
		log.Printf("northbound drained cleanly")
	case <-timer.C:
		d.connMu.Lock()
		n := len(d.conns)
		for c := range d.conns {
			c.Close()
		}
		d.connMu.Unlock()
		log.Printf("drain deadline reached: force-closed %d connection(s)", n)
		<-done
	}
}

// run is the daemon's whole lifecycle. Every failure after newDaemon
// returns through normal error handling, so the deferred close releases
// agents, listeners and the journal even on a late listen error — the
// log.Fatalf in main fires only after cleanup has run.
func run(listen, ctrlAddr, metricsAddr, surfaceList, stateDir string, drainTimeout time.Duration, opts daemonOptions) error {
	// Lifetime context: canceled last, after the drain, so an in-flight
	// reconcile finishes rather than aborting mid-commit.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	d, err := newDaemon(ctx, surfaceList, opts)
	if err != nil {
		return err
	}
	defer d.close()

	leaseTTL := opts.leaseTTL
	if leaseTTL <= 0 {
		leaseTTL = defaultLeaseTTL
	}
	if (opts.follow || opts.replicateTo != "") && stateDir == "" {
		return errors.New("-follow and -replicate-to require -state-dir")
	}
	if opts.follow && opts.replicateTo != "" {
		return errors.New("-follow and -replicate-to are mutually exclusive")
	}
	// The lease holder identity travels in heartbeats and the journaled
	// epoch record; the control address is the most useful name for it.
	d.holder = ctrlAddr
	d.replicating = opts.replicateTo != ""

	if stateDir != "" {
		if opts.follow {
			if err := d.openFollower(stateDir, leaseTTL); err != nil {
				return err
			}
		} else if err := d.openState(stateDir); err != nil {
			return err
		}
	}

	if ctrlAddr != "" {
		addr, err := d.ctrl.Listen(ctrlAddr)
		if err != nil {
			return fmt.Errorf("ctrl: %w", err)
		}
		log.Printf("task control listening on %s", addr)
	}

	if opts.replicateTo != "" {
		if err := d.startReplication(splitList(opts.replicateTo), leaseTTL); err != nil {
			return err
		}
	}

	if metricsAddr != "" {
		reg := metrics.NewRegistry()
		d.registerMetrics(reg)
		mux := http.NewServeMux()
		mux.Handle("/metrics", reg.Handler())
		mln, err := net.Listen("tcp", metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics: %w", err)
		}
		srv := &http.Server{Handler: mux}
		go func() { _ = srv.Serve(mln) }()
		defer srv.Close()
		log.Printf("metrics listening on http://%s/metrics", mln.Addr())
	}

	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	log.Printf("northbound listening on %s", ln.Addr())
	acceptDone := make(chan struct{})
	go func() {
		defer close(acceptDone)
		d.acceptLoop(ln)
	}()

	select {
	case <-sigCtx.Done():
		log.Printf("signal received: stopping accept, draining (timeout %s)", drainTimeout)
	case <-acceptDone:
		// Listener died without a signal — shut down the same way.
		log.Printf("northbound listener closed: shutting down")
	}
	// Graceful shutdown: stop accepting, drain in-flight sessions (they
	// may still reconcile under the live ctx), then drop task-control
	// watchers, journal the tail, and only then cancel the lifetime ctx.
	ln.Close()
	<-acceptDone
	d.drainConns(drainTimeout)
	d.ctrl.Close()
	d.closeState() // final snapshot + fsync while ctx is still live
	return nil
}

func main() {
	listen := flag.String("listen", "127.0.0.1:7090", "northbound listen address")
	ctrlAddr := flag.String("ctrl", "127.0.0.1:7091", "binary task-control listen address (surfctl; empty disables)")
	metricsAddr := flag.String("metrics", "", "Prometheus metrics listen address (serves /metrics; empty disables)")
	surfaceList := flag.String("surfaces",
		"NR-Surface@east_wall,NR-Surface@north_wall",
		"comma-separated MODEL@MOUNT deployments")
	stateDir := flag.String("state-dir", "", "journal directory for durable task state (empty disables)")
	drainTimeout := flag.Duration("drain-timeout", 5*time.Second, "graceful-shutdown drain deadline for northbound connections")
	healthEvery := flag.Duration("health-interval", 2*time.Second, "device heartbeat probe interval (0 disables)")
	faultSeed := flag.Int64("fault-seed", 1, "fault injector seed (device i uses seed+i)")
	faultProb := flag.Float64("fault-fail", 0, "probability each control write fails transiently")
	faultStuck := flag.Int("fault-stuck", 0, "freeze every Nth element at pi (0 disables)")
	faultLatency := flag.Duration("fault-latency", 0, "added latency per control write")
	admitMax := flag.Int("admit-max", 0, "global live-task admission cap (0 disables)")
	tenantQuotas := flag.String("tenant-quota", "", "per-tenant admission quotas, NAME=MAX[:WEIGHT],...")
	maxConns := flag.Int("max-conns", defaultMaxNorthboundConns, "northbound concurrent-connection cap")
	idleTimeout := flag.Duration("idle-timeout", defaultNorthboundIdleTimeout, "northbound text-session idle disconnect timeout")
	optWorkers := flag.Int("opt-workers", 0, "engine workers per optimizer run (0 = all, 1 = serial; results identical)")
	replanBurst := flag.Int("replan-burst", 0, "replan governor token-bucket burst per domain (0 disables the governor)")
	replanRefill := flag.Duration("replan-refill", 0, "replan governor token refill interval (0 = default 500ms)")
	replanStaleness := flag.Duration("replan-staleness", 0, "bound on how long a dirty domain may serve a stale plan (0 = default 2s)")
	warmReplan := flag.Bool("warm-replan", false, "seed re-plans from the previous committed plan (faster convergence under churn)")
	replicateTo := flag.String("replicate-to", "", "comma-separated follower ctrl addresses to ship the journal to (empty disables)")
	follow := flag.Bool("follow", false, "run as a warm standby: replay replication on -ctrl, promote on lease expiry")
	leaseTTL := flag.Duration("lease-ttl", defaultLeaseTTL, "leadership lease duration (standby promotes this long after the last heartbeat)")
	flag.Parse()

	quotas, err := parseTenantQuotas(*tenantQuotas)
	if err != nil {
		log.Fatalf("surfosd: -tenant-quota: %v", err)
	}
	if err := run(*listen, *ctrlAddr, *metricsAddr, *surfaceList, *stateDir, *drainTimeout, daemonOptions{
		faultSeed:       *faultSeed,
		faultProb:       *faultProb,
		faultStuck:      *faultStuck,
		faultLatency:    *faultLatency,
		healthEvery:     *healthEvery,
		admitMax:        *admitMax,
		quotas:          quotas,
		maxConns:        *maxConns,
		idleTimeout:     *idleTimeout,
		optWorkers:      *optWorkers,
		replanBurst:     *replanBurst,
		replanRefill:    *replanRefill,
		replanStaleness: *replanStaleness,
		warmReplan:      *warmReplan,
		replicateTo:     *replicateTo,
		follow:          *follow,
		leaseTTL:        *leaseTTL,
	}); err != nil {
		log.Fatalf("surfosd: %v", err)
	}
}

// parseTenantQuotas parses the -tenant-quota flag: a comma-separated list
// of NAME=MAX or NAME=MAX:WEIGHT entries ("" yields no quotas).
func parseTenantQuotas(spec string) (map[string]surfos.TenantQuota, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	quotas := map[string]surfos.TenantQuota{}
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		name, val, ok := strings.Cut(item, "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("entry %q: want NAME=MAX[:WEIGHT]", item)
		}
		maxStr, weightStr, hasWeight := strings.Cut(val, ":")
		max, err := strconv.Atoi(maxStr)
		if err != nil || max < 0 {
			return nil, fmt.Errorf("entry %q: bad max %q", item, maxStr)
		}
		q := surfos.TenantQuota{MaxActive: max}
		if hasWeight {
			w, err := strconv.ParseFloat(weightStr, 64)
			if err != nil || w < 0 {
				return nil, fmt.Errorf("entry %q: bad weight %q", item, weightStr)
			}
			q.Weight = w
		}
		quotas[name] = q
	}
	return quotas, nil
}
