package main

import (
	"bufio"
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"surfos"
	"surfos/internal/ctrlproto"
	"surfos/internal/metrics"
)

func testDaemon(t *testing.T) *daemon {
	t.Helper()
	d, err := newDaemon(context.Background(), "NR-Surface@east_wall,NR-Surface@north_wall", daemonOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Shrink the optimizer for test speed.
	d.orch.Opts.OptIters = 30
	d.orch.Opts.GridStep = 1.5
	d.orch.Opts.SensingGridStep = 2.5
	d.orch.Opts.SensingBins = 11
	d.orch.Opts.SensingSubcarriers = 3
	t.Cleanup(d.close)
	return d
}

func TestDaemonRejectsBadSurfaceSpec(t *testing.T) {
	if _, err := newDaemon(context.Background(), "garbage", daemonOptions{}); err == nil {
		t.Error("malformed surface list accepted")
	}
	if _, err := newDaemon(context.Background(), "NR-Surface@nowhere", daemonOptions{}); err == nil {
		t.Error("unknown mount accepted")
	}
}

func TestDaemonCommands(t *testing.T) {
	d := testDaemon(t)

	reply, cont := d.handle("help")
	if !cont || !strings.Contains(reply, "demand") {
		t.Errorf("help: %q", reply)
	}

	reply, _ = d.handle("catalog")
	if !strings.Contains(reply, "mmWall") || !strings.Contains(reply, "AutoMS") {
		t.Errorf("catalog missing models: %q", reply)
	}

	reply, _ = d.handle("devices")
	if !strings.Contains(reply, "NR-Surface") || !strings.Contains(reply, "column-wise") {
		t.Errorf("devices (southbound readback): %q", reply)
	}
	if !strings.Contains(reply, "unconfigured") {
		t.Errorf("fresh devices should be unconfigured: %q", reply)
	}

	reply, _ = d.handle("tasks")
	if reply != "no tasks" {
		t.Errorf("tasks: %q", reply)
	}

	reply, _ = d.handle("demand please stream a movie on the tv tonight")
	if !strings.Contains(reply, "enhance_link") || !strings.Contains(reply, "running") {
		t.Errorf("demand: %q", reply)
	}

	reply, _ = d.handle("plans")
	if !strings.Contains(reply, "strategy=") {
		t.Errorf("plans: %q", reply)
	}

	// The surface now holds a configuration, visible over the southbound
	// protocol.
	reply, _ = d.handle("devices")
	if !strings.Contains(reply, "active=") {
		t.Errorf("devices after scheduling: %q", reply)
	}

	reply, _ = d.handle("end 1")
	if reply != "ok" {
		t.Errorf("end: %q", reply)
	}
	reply, _ = d.handle("plans")
	if reply != "no plans" {
		t.Errorf("plans after end: %q", reply)
	}

	reply, _ = d.handle("tick 250ms")
	if !strings.Contains(reply, "now ") {
		t.Errorf("tick: %q", reply)
	}

	reply, _ = d.handle("demand gibberish nobody understands")
	if !strings.Contains(reply, "error") {
		t.Errorf("bad demand: %q", reply)
	}
	reply, _ = d.handle("end notanumber")
	if !strings.Contains(reply, "error") {
		t.Errorf("bad end: %q", reply)
	}
	reply, _ = d.handle("frobnicate")
	if !strings.Contains(reply, "unknown command") {
		t.Errorf("unknown: %q", reply)
	}
	if _, cont := d.handle("quit"); cont {
		t.Error("quit should end the session")
	}
}

func TestDaemonIdleResume(t *testing.T) {
	d := testDaemon(t)
	if reply, _ := d.handle("demand charge my phone please"); !strings.Contains(reply, "init_powering") {
		t.Fatalf("demand: %q", reply)
	}
	if reply, _ := d.handle("idle 1"); reply != "ok" {
		t.Fatalf("idle: %q", reply)
	}
	if reply, _ := d.handle("plans"); reply != "no plans" {
		t.Errorf("plans while idle: %q", reply)
	}
	if reply, _ := d.handle("resume 1"); reply != "ok" {
		t.Fatalf("resume: %q", reply)
	}
	if reply, _ := d.handle("plans"); reply == "no plans" {
		t.Error("no plans after resume")
	}
}

func TestDaemonNorthboundOverTCP(t *testing.T) {
	d := testDaemon(t)
	client, server := net.Pipe()
	go d.serveConn(server)
	defer client.Close()

	rd := bufio.NewReader(client)
	banner, err := rd.ReadString('\n')
	if err != nil || !strings.Contains(banner, "surfos daemon ready") {
		t.Fatalf("banner: %q %v", banner, err)
	}
	if _, err := client.Write([]byte("catalog\n")); err != nil {
		t.Fatal(err)
	}
	line, err := rd.ReadString('\n')
	if err != nil || !strings.Contains(line, "GHz") {
		t.Fatalf("catalog line: %q %v", line, err)
	}
	if _, err := client.Write([]byte("quit\n")); err != nil {
		t.Fatal(err)
	}
}

// TestDaemonNorthboundFramedClient drives a framed task-control session
// over the same port the text protocol uses: the first byte (the wire
// magic) routes the connection to the control agent instead of the line
// scanner.
func TestDaemonNorthboundFramedClient(t *testing.T) {
	d := testDaemon(t)
	client, server := net.Pipe()
	go d.serveConn(server)

	c := ctrlproto.NewClient(client)
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	tasks, err := c.ListTasks(ctx)
	if err != nil {
		t.Fatalf("framed ListTasks over northbound port: %v", err)
	}
	if len(tasks) != 0 {
		t.Fatalf("fresh daemon has tasks: %v", tasks)
	}
	// Multiplexed streams work on the shared port too.
	s, err := c.OpenStream(ctx, ctrlproto.StreamTasks, "")
	if err != nil {
		t.Fatalf("open stream: %v", err)
	}
	if err := s.Close(ctx); err != nil {
		t.Fatalf("close stream: %v", err)
	}
}

// TestDaemonNorthboundSniffKeepsTextFirstByte checks that a text client
// whose first command arrives before the banner (so its first byte is
// consumed by the protocol sniff) still gets that byte replayed into the
// line scanner.
func TestDaemonNorthboundSniffKeepsTextFirstByte(t *testing.T) {
	d := testDaemon(t)
	client, server := net.Pipe()
	go d.serveConn(server)
	defer client.Close()

	// net.Pipe writes are synchronous: the server sniffs one byte, then
	// writes the banner before draining the rest of the line, so the write
	// must not block this goroutine (TCP buffering hides this in practice).
	go func() { _, _ = client.Write([]byte("help\n")) }()
	rd := bufio.NewReader(client)
	banner, err := rd.ReadString('\n')
	if err != nil || !strings.Contains(banner, "surfos daemon ready") {
		t.Fatalf("banner: %q %v", banner, err)
	}
	line, err := rd.ReadString('\n')
	if err != nil || !strings.Contains(line, "commands:") {
		t.Fatalf("help reply with sniffed first byte: %q %v", line, err)
	}
}

func TestDaemonHazardsAndDiagnosis(t *testing.T) {
	d := testDaemon(t)

	// The deployed 24 GHz panels do not block their own band...
	reply, _ := d.handle("hazards 24")
	if !strings.Contains(reply, "no deployed panel") {
		t.Errorf("in-band hazards: %q", reply)
	}
	// ...but they attenuate an out-of-band 28 GHz link (panel response).
	reply, _ = d.handle("hazards 28")
	if !strings.Contains(reply, "attenuates 28.0 GHz") {
		t.Errorf("out-of-band hazards: %q", reply)
	}
	reply, _ = d.handle("hazards lots")
	if !strings.Contains(reply, "error") {
		t.Errorf("bad hazards arg: %q", reply)
	}

	// No expectations yet.
	reply, _ = d.handle("diagnose")
	if !strings.Contains(reply, "no expectations") {
		t.Errorf("diagnose empty: %q", reply)
	}

	// Schedule a link demand: its prediction becomes an expectation.
	reply, _ = d.handle("demand please stream a movie on the tv tonight")
	if !strings.Contains(reply, "running") {
		t.Fatalf("demand: %q", reply)
	}
	// Feed matching reports and diagnose healthy.
	for i := 0; i < 5; i++ {
		if reply, _ := d.handle("report s0-NR-Surface tv 99"); reply != "ok" {
			t.Fatalf("report: %q", reply)
		}
	}
	waitFor(t, func() bool {
		reply, _ := d.handle("diagnose")
		return strings.Contains(reply, "healthy")
	})

	// Crater the reports: blockage shows up.
	for i := 0; i < 10; i++ {
		d.handle("report s0-NR-Surface tv -40")
	}
	waitFor(t, func() bool {
		reply, _ := d.handle("diagnose")
		return strings.Contains(reply, "endpoint-blocked")
	})

	if reply, _ := d.handle("report onlytwo args"); !strings.Contains(reply, "error") {
		t.Errorf("bad report: %q", reply)
	}
}

func TestDaemonFaultInjectionAndHealth(t *testing.T) {
	d, err := newDaemon(context.Background(), "NR-Surface@east_wall,NR-Surface@north_wall",
		daemonOptions{faultSeed: 7, faultStuck: 101})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.close)

	// Before any probe the tracker has no records: everything is healthy.
	reply, _ := d.handle("health")
	if !strings.Contains(reply, "state=healthy") {
		t.Errorf("health before probe: %q", reply)
	}
	// One heartbeat pass picks up the injected stuck-element masks.
	d.hw.ProbeAll()
	reply, _ = d.handle("health")
	if !strings.Contains(reply, "state=degraded") || !strings.Contains(reply, "stuck=6") {
		t.Errorf("health after probe: %q", reply)
	}
}

func TestDaemonSelfHealsDeadDevice(t *testing.T) {
	d := testDaemon(t)
	if reply, _ := d.handle("demand please stream a movie on the tv tonight"); !strings.Contains(reply, "running") {
		t.Fatalf("demand: %q", reply)
	}
	devs := d.hw.Surfaces()
	if len(devs) != 2 {
		t.Fatalf("want 2 surfaces, got %d", len(devs))
	}
	fm := surfos.NewFaultModel(1)
	fm.SetDead(true)
	devs[0].Drv.SetFaults(fm)

	// The heartbeat marks the device dead, the event bus carries the
	// transition, and the self-healing consumer re-plans around it.
	d.hw.ProbeAll()
	waitFor(t, func() bool {
		reply, _ := d.handle("plans")
		return strings.Contains(reply, "strategy=") && !strings.Contains(reply, devs[0].ID)
	})
	reply, _ := d.handle("health")
	if !strings.Contains(reply, devs[0].ID+" state=dead") {
		t.Errorf("health after death: %q", reply)
	}
}

// TestDaemonMetricsExposition wires the full registry and checks the
// Prometheus text output carries every subsystem's families: reconcile
// latency, device health, bus fan-out accounting, and the daemon gauges.
func TestDaemonMetricsExposition(t *testing.T) {
	d := testDaemon(t)
	reg := metrics.NewRegistry()
	d.registerMetrics(reg)

	if reply, _ := d.handle("demand please stream a movie on the tv tonight"); !strings.Contains(reply, "running") {
		t.Fatalf("demand: %q", reply)
	}

	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		"surfos_reconcile_duration_seconds_bucket",
		"surfos_shard_tasks{domain=",
		"surfos_admission_rejected_total{tenant=",
		"surfos_device_health_state{device=",
		"surfos_bus_subscribers",
		"surfos_bus_subscriber_delivered_total{subscriber=\"selfheal\"",
		"surfos_northbound_connections 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
	if strings.Contains(text, "surfos_reconcile_duration_seconds_count 0") {
		t.Error("reconcile histogram saw no observations after a demand")
	}
}

// waitFor polls a condition (telemetry flows through an async bus).
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never satisfied")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
