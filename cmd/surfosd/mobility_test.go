package main

import (
	"context"
	"strings"
	"testing"

	"surfos/internal/metrics"
)

// governedDaemon is testDaemon with the replan governor and warm starts
// enabled, the way an operator would run -replan-burst 2 -warm-replan.
func governedDaemon(t *testing.T) *daemon {
	t.Helper()
	d, err := newDaemon(context.Background(), "NR-Surface@east_wall,NR-Surface@north_wall", daemonOptions{
		replanBurst: 2,
		warmReplan:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	d.orch.Opts.OptIters = 30
	d.orch.Opts.GridStep = 1.5
	d.orch.Opts.SensingGridStep = 2.5
	d.orch.Opts.SensingBins = 11
	d.orch.Opts.SensingSubcarriers = 3
	t.Cleanup(d.close)
	return d
}

// TestDaemonMoveCommand drives the text-protocol move command: a walking
// user's task is re-targeted and re-planned through the governor.
func TestDaemonMoveCommand(t *testing.T) {
	d := governedDaemon(t)

	if reply, _ := d.handle("demand please stream a movie on the tv tonight"); !strings.Contains(reply, "running") {
		t.Fatalf("demand: %q", reply)
	}

	reply, cont := d.handle("move 1 1.8 6.2 1.5")
	if !cont || reply != "ok" {
		t.Fatalf("move: %q", reply)
	}
	if reply, _ := d.handle("tasks"); !strings.Contains(reply, "running") {
		t.Errorf("tasks after move: %q", reply)
	}

	// The governor observed the re-plan.
	if s := d.gov.Stats(); s.Replans == 0 {
		t.Errorf("governor stats after move: %+v, want Replans > 0", s)
	}

	for _, bad := range []string{"move", "move 1 2 3", "move x 1 2 3", "move 1 a b c", "move 99 1 2 3"} {
		if reply, _ := d.handle(bad); !strings.Contains(reply, "error") {
			t.Errorf("%q accepted: %q", bad, reply)
		}
	}
}

// TestDaemonGovernorMetrics checks the -replan-* counters reach the
// metrics registry alongside the rest of the control plane.
func TestDaemonGovernorMetrics(t *testing.T) {
	d := governedDaemon(t)
	reg := metrics.NewRegistry()
	d.registerMetrics(reg)

	if reply, _ := d.handle("demand please stream a movie on the tv tonight"); !strings.Contains(reply, "running") {
		t.Fatalf("demand: %q", reply)
	}
	if reply, _ := d.handle("move 1 1.8 6.2 1.5"); reply != "ok" {
		t.Fatalf("move: %q", reply)
	}

	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		"surfos_replans_total",
		"surfos_replans_suppressed_total",
		"surfos_replans_forced_total",
		"surfos_replan_duration_seconds_bucket",
		"surfos_replan_dirty_domains",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
	if strings.Contains(text, "surfos_replans_total 0") {
		t.Error("governed move left surfos_replans_total at 0")
	}
}
