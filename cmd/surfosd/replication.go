// Control-plane replication (DESIGN.md §14): a primary daemon ships its
// durability journal to standby followers over the ctrlproto replication
// channel, heartbeats a lease, and a follower promotes itself — re-using
// boot recovery's exact re-admission path — when the lease expires.
//
//	primary:  surfosd -state-dir p/ -replicate-to 127.0.0.1:7201 -lease-ttl 3s
//	standby:  surfosd -state-dir s/ -follow -ctrl 127.0.0.1:7201 -lease-ttl 3s
//
// Epoch fencing: the primary takes leadership by journaling a KindEpoch
// record; every shipped batch and heartbeat carries that epoch. A
// promoted follower bumps it, so an old primary that pauses and resumes
// gets StatusStaleEpoch on its next send, steps down to standby, and can
// never split the brain.
package main

import (
	"errors"
	"log"
	"strings"
	"time"

	"surfos/internal/ctrlproto"
	"surfos/internal/metrics"
	"surfos/internal/store"
	"surfos/internal/telemetry"
)

// defaultLeaseTTL is the leadership lease: a standby promotes itself this
// long after the primary's last heartbeat (or boot, whichever is later).
const defaultLeaseTTL = 3 * time.Second

// shipBatchMax bounds records per MsgReplAppend frame.
const shipBatchMax = 256

// splitList parses a comma-separated address list, dropping empties.
func splitList(s string) []string {
	var out []string
	for _, item := range strings.Split(s, ",") {
		if item = strings.TrimSpace(item); item != "" {
			out = append(out, item)
		}
	}
	return out
}

// heartbeatEvery derives the renewal cadence from the TTL: three beats
// per lease, so two may be lost before a false promotion.
func heartbeatEvery(ttl time.Duration) time.Duration {
	every := ttl / 3
	if every < 10*time.Millisecond {
		every = 10 * time.Millisecond
	}
	return every
}

// --- primary side: WAL shipping ---

// startReplication takes leadership (journaling the epoch record) and
// starts one shipping loop per follower address. Call after openState.
func (d *daemon) startReplication(addrs []string, ttl time.Duration) error {
	j := d.getJournal()
	if j == nil {
		return errors.New("-replicate-to requires -state-dir")
	}
	epoch, err := j.BecomeLeader(d.holder, ttl)
	if err != nil {
		return err
	}
	log.Printf("replication: leading as %q at epoch %d (lease ttl %s, %d follower(s))",
		d.holder, epoch, ttl, len(addrs))
	for _, addr := range addrs {
		go d.shipTo(addr, ttl)
	}
	return nil
}

// shipTo maintains one follower's replication session, reconnecting with
// a short pause on any failure. A stale-epoch rejection is terminal: this
// daemon has been deposed, so it fences itself into standby instead of
// fighting the new primary.
func (d *daemon) shipTo(addr string, ttl time.Duration) {
	for d.ctx.Err() == nil {
		err := d.shipSession(addr, ttl)
		if err == nil {
			return // daemon shutting down
		}
		if errors.Is(err, store.ErrStaleEpoch) {
			d.fence(addr, err)
			return
		}
		log.Printf("replication: %s: %v (reconnecting)", addr, err)
		select {
		case <-d.ctx.Done():
			return
		case <-time.After(heartbeatEvery(ttl)):
		}
	}
}

// shipSession runs one connected session: attach to the journal (a
// consistent snapshot plus an observer for every later record, captured
// atomically under the journal lock), transfer the snapshot, then stream
// append batches and heartbeats until something breaks.
func (d *daemon) shipSession(addr string, ttl time.Duration) error {
	sender, err := ctrlproto.DialRepl(addr)
	if err != nil {
		return err
	}
	defer sender.Close()
	j := d.getJournal()
	// The observer runs under the journal lock: hand off to a buffered
	// channel and never block. An overflow shows up as a sequence gap,
	// which tears the session down and resyncs via a fresh snapshot.
	recCh := make(chan store.Record, store.JournalBuffer)
	epoch, seq, snap, detach, err := j.AttachReplica(func(rec store.Record) {
		select {
		case recCh <- rec:
		default:
		}
	})
	if err != nil {
		return err
	}
	defer detach()
	ack, err := sender.Snapshot(epoch, seq, snap)
	if err != nil {
		return err
	}
	d.setAcked(addr, ack.Applied)
	log.Printf("replication: %s attached at seq %d (epoch %d)", addr, seq, epoch)
	last := seq
	hb := time.NewTicker(heartbeatEvery(ttl))
	defer hb.Stop()
	for {
		select {
		case <-d.ctx.Done():
			return nil
		case rec := <-recCh:
			batch := append(make([]store.Record, 0, shipBatchMax), rec)
		fill:
			for len(batch) < shipBatchMax {
				select {
				case r := <-recCh:
					batch = append(batch, r)
				default:
					break fill
				}
			}
			if batch[0].Seq > last+1 {
				return errors.New("shipper buffer overflowed; resyncing from snapshot")
			}
			ack, err := sender.Append(epoch, batch)
			if err != nil {
				return err
			}
			last = batch[len(batch)-1].Seq
			d.setAcked(addr, ack.Applied)
		case <-hb.C:
			ack, err := sender.Heartbeat(epoch, d.holder, ttl, j.Seq())
			if err != nil {
				return err
			}
			d.setAcked(addr, ack.Applied)
			d.lastBeat.Store(time.Now().UnixNano())
		}
	}
}

// fence steps a deposed primary down: mutations are rejected with
// StatusNotLeader from here on, so clients rotate to the new primary.
// Journaling continues locally (reads stay warm) but nothing ships.
func (d *daemon) fence(addr string, err error) {
	if d.fenced.Swap(true) {
		return
	}
	d.standby.Store(true)
	log.Printf("replication: FENCED by %s (%v): a standby promoted past this epoch; entering standby, mutations rejected", addr, err)
}

func (d *daemon) setAcked(addr string, applied uint64) {
	d.replMu.Lock()
	d.replAcked[addr] = applied
	d.replMu.Unlock()
}

// minAcked returns the slowest follower's acked sequence (0 if none).
func (d *daemon) minAcked() uint64 {
	d.replMu.Lock()
	defer d.replMu.Unlock()
	var min uint64
	first := true
	for _, v := range d.replAcked {
		if first || v < min {
			min, first = v, false
		}
	}
	return min
}

// --- follower side: warm replay and promotion ---

// openFollower opens the standby's warm store, arms the lease, and routes
// incoming MsgRepl* frames to it. The daemon serves reads from the
// replica but rejects mutations until promotion.
func (d *daemon) openFollower(dir string, ttl time.Duration) error {
	fol, err := store.OpenFollower(dir)
	if err != nil {
		return err
	}
	d.follower = fol
	d.followDir = dir
	d.standby.Store(true)
	d.ctrl.Repl = &ctrlproto.ReplReceiver{F: fol, Logf: log.Printf}
	// Arm the lease from boot: a primary that never connects is as dead
	// as one that stops heartbeating.
	fol.StartLease(ttl)
	go d.followLoop(ttl)
	log.Printf("replication: following at epoch %d, applied seq %d (lease ttl %s)",
		fol.Epoch(), fol.Applied(), ttl)
	return nil
}

// followLoop watches the lease and promotes when it expires.
func (d *daemon) followLoop(ttl time.Duration) {
	tick := time.NewTicker(heartbeatEvery(ttl))
	defer tick.Stop()
	for {
		select {
		case <-d.ctx.Done():
			return
		case <-tick.C:
			if d.follower.LeaseExpired() {
				d.promote()
				return
			}
		}
	}
}

// promote is the takeover: durably bump the epoch (fencing the old
// primary), then run the exact boot-recovery sequence — rehydrate health,
// re-admit live tasks, reconcile, snapshot — against the replica store,
// and start accepting mutations. Recovery is deterministic, so the plans
// this daemon computes are byte-identical to what the dead primary's own
// reboot would have produced.
func (d *daemon) promote() {
	holder := d.holder
	if holder == "" {
		holder = "standby"
	}
	deadHolder := d.follower.Holder() // before Promote overwrites it
	_, epoch, err := d.follower.Promote(holder)
	if err != nil {
		log.Printf("replication: promote: %v", err)
		return
	}
	lag := d.follower.Lag()
	st, state := d.follower.Handoff()
	log.Printf("replication: lease expired (last holder %q); promoting to epoch %d (applied seq %d, lag %d)",
		deadHolder, epoch, st.Seq(), lag)
	if err := d.attachState(st, state, d.followDir); err != nil {
		log.Printf("replication: promote: attach state: %v", err)
		return
	}
	d.standby.Store(false)
	d.promotions.Add(1)
	d.events.Publish(telemetry.TaskEvent{
		Time: time.Now(), State: telemetry.Promoted, Metric: float64(epoch), MetricName: "epoch",
	})
	log.Printf("replication: promoted; serving as primary at epoch %d", epoch)
}

// --- metrics: one role-aware family set, valid before and after the
// daemon's role flips (fencing, promotion) ---

func (d *daemon) registerReplMetrics(reg *metrics.Registry) {
	if d.follower == nil && !d.replicating {
		return
	}
	reg.GaugeFunc("surfos_repl_epoch", "Current leadership term seen by this daemon.",
		func() float64 {
			if j := d.getJournal(); j != nil {
				return float64(j.Epoch())
			}
			if d.follower != nil {
				return float64(d.follower.Epoch())
			}
			return 0
		})
	reg.GaugeFunc("surfos_repl_lag_records", "Replication lag in records: behind the primary (follower) or the slowest follower's deficit (primary).",
		func() float64 {
			if d.follower != nil && !d.follower.Promoted() {
				return float64(d.follower.Lag())
			}
			if j := d.getJournal(); j != nil {
				if acked := d.minAcked(); acked > 0 && j.Seq() > acked {
					return float64(j.Seq() - acked)
				}
			}
			return 0
		})
	reg.GaugeFunc("surfos_repl_lease_age_seconds", "Seconds since the last lease heartbeat (received or sent; -1: none yet).",
		func() float64 {
			if d.follower != nil && !d.follower.Promoted() {
				age := d.follower.LeaseAge()
				if age < 0 {
					return -1
				}
				return age.Seconds()
			}
			if ns := d.lastBeat.Load(); ns > 0 {
				return time.Since(time.Unix(0, ns)).Seconds()
			}
			return -1
		})
	reg.CounterFunc("surfos_repl_promotions_total", "Standby-to-primary promotions performed by this daemon.",
		func() float64 { return float64(d.promotions.Load()) })
	reg.GaugeFunc("surfos_repl_standby", "1 while this daemon rejects mutations (follower before promotion, fenced ex-primary).",
		func() float64 {
			if d.standby.Load() {
				return 1
			}
			return 0
		})
}
