// Control-plane replication (DESIGN.md §14): a primary daemon ships its
// durability journal to standby followers over the ctrlproto replication
// channel, heartbeats a lease, and a follower promotes itself — re-using
// boot recovery's exact re-admission path — when the lease expires.
//
//	primary:  surfosd -state-dir p/ -replicate-to 127.0.0.1:7201 -lease-ttl 3s
//	standby:  surfosd -state-dir s/ -follow -ctrl 127.0.0.1:7201 -lease-ttl 3s
//
// Epoch fencing: the primary takes leadership by journaling a KindEpoch
// record; every shipped batch and heartbeat carries that epoch. A
// promoted follower bumps it, so an old primary that pauses and resumes
// gets StatusStaleEpoch on its next send and steps down to standby.
//
// The lease cuts both ways. A follower promotes after ttl of silence,
// so a primary that has not gotten a single follower ack within the
// same ttl can no longer know it is alone: leaseWatch steps it into
// standby (mutations rejected) before the follower's takeover, not
// after — renewal is timed from the request send, so the primary's
// deadline always lapses first. The step-down reverses only if a
// follower acks again without having promoted; a promoted follower's
// next contact fences this daemon permanently instead.
package main

import (
	"errors"
	"fmt"
	"log"
	"strings"
	"time"

	"surfos/internal/ctrlproto"
	"surfos/internal/metrics"
	"surfos/internal/store"
	"surfos/internal/telemetry"
)

// defaultLeaseTTL is the leadership lease: a standby promotes itself this
// long after the primary's last heartbeat (or boot, whichever is later).
const defaultLeaseTTL = 3 * time.Second

// shipBatchMax bounds records per MsgReplAppend frame.
const shipBatchMax = 256

// splitList parses a comma-separated address list, dropping empties.
func splitList(s string) []string {
	var out []string
	for _, item := range strings.Split(s, ",") {
		if item = strings.TrimSpace(item); item != "" {
			out = append(out, item)
		}
	}
	return out
}

// heartbeatEvery derives the renewal cadence from the TTL: three beats
// per lease, so two may be lost before a false promotion.
func heartbeatEvery(ttl time.Duration) time.Duration {
	every := ttl / 3
	if every < 10*time.Millisecond {
		every = 10 * time.Millisecond
	}
	return every
}

// --- primary side: WAL shipping ---

// startReplication takes leadership (journaling the epoch record),
// starts one shipping loop per follower address, and arms the primary's
// own lease watch. Call after openState.
func (d *daemon) startReplication(addrs []string, ttl time.Duration) error {
	j := d.getJournal()
	if j == nil {
		return errors.New("-replicate-to requires -state-dir")
	}
	epoch, err := j.BecomeLeader(d.holder, ttl)
	if err != nil {
		return err
	}
	log.Printf("replication: leading as %q at epoch %d (lease ttl %s, %d follower(s))",
		d.holder, epoch, ttl, len(addrs))
	// Arm the lease from boot, mirroring the follower's StartLease: a
	// follower that never acks is as gone as one that stops acking, and
	// this grace period is all the time the shippers get to reach one.
	d.lastRenew.Store(time.Now().UnixNano())
	for _, addr := range addrs {
		go d.shipTo(addr, ttl)
	}
	go d.leaseWatch(ttl)
	return nil
}

// shipTo maintains one follower's replication session, reconnecting with
// a short pause on any failure. A stale-epoch rejection is terminal: this
// daemon has been deposed, so it fences itself into standby instead of
// fighting the new primary.
func (d *daemon) shipTo(addr string, ttl time.Duration) {
	for d.ctx.Err() == nil {
		err := d.shipSession(addr, ttl)
		if err == nil {
			return // daemon shutting down
		}
		if errors.Is(err, store.ErrStaleEpoch) {
			d.fence(addr, err)
			return
		}
		log.Printf("replication: %s: %v (reconnecting)", addr, err)
		select {
		case <-d.ctx.Done():
			return
		case <-time.After(heartbeatEvery(ttl)):
		}
	}
}

// shipSession runs one connected session: attach to the journal (a
// consistent snapshot plus an observer for every later record, captured
// atomically under the journal lock), transfer the snapshot, then stream
// append batches and heartbeats until something breaks.
func (d *daemon) shipSession(addr string, ttl time.Duration) error {
	sender, err := ctrlproto.DialRepl(addr)
	if err != nil {
		return err
	}
	defer sender.Close()
	j := d.getJournal()
	// The observer runs under the journal lock: hand off to a buffered
	// channel and never block. An overflow shows up as a sequence gap,
	// which tears the session down and resyncs via a fresh snapshot.
	recCh := make(chan store.Record, store.JournalBuffer)
	epoch, seq, snap, detach, err := j.AttachReplica(func(rec store.Record) {
		select {
		case recCh <- rec:
		default:
		}
	})
	if err != nil {
		return err
	}
	defer detach()
	sent := time.Now()
	ack, err := sender.Snapshot(epoch, seq, snap)
	if err != nil {
		return err
	}
	if err := d.ackRenew(addr, ack, epoch, sent); err != nil {
		return err
	}
	log.Printf("replication: %s attached at seq %d (epoch %d)", addr, seq, epoch)
	last := seq
	hb := time.NewTicker(heartbeatEvery(ttl))
	defer hb.Stop()
	for {
		select {
		case <-d.ctx.Done():
			return nil
		case rec := <-recCh:
			batch := append(make([]store.Record, 0, shipBatchMax), rec)
		fill:
			for len(batch) < shipBatchMax {
				select {
				case r := <-recCh:
					batch = append(batch, r)
				default:
					break fill
				}
			}
			if batch[0].Seq > last+1 {
				return errors.New("shipper buffer overflowed; resyncing from snapshot")
			}
			sent := time.Now()
			ack, err := sender.Append(epoch, batch)
			if err != nil {
				return err
			}
			last = batch[len(batch)-1].Seq
			if err := d.ackRenew(addr, ack, epoch, sent); err != nil {
				return err
			}
		case <-hb.C:
			sent := time.Now()
			ack, err := sender.Heartbeat(epoch, d.holder, ttl, j.Seq())
			if err != nil {
				return err
			}
			if err := d.ackRenew(addr, ack, epoch, sent); err != nil {
				return err
			}
		}
	}
}

// ackRenew folds one follower ack into the primary's books: the acked
// sequence (lag accounting) and the lease renewal, timed from the
// request's send so the primary's view of its lease is strictly more
// conservative than the follower's. An ack reporting a higher epoch is
// the fencing signal the status code alone cannot carry — a standby
// promoted past this daemon — so it surfaces as ErrStaleEpoch.
func (d *daemon) ackRenew(addr string, ack ctrlproto.ReplAckMsg, epoch uint64, sent time.Time) error {
	if ack.Epoch > epoch {
		return fmt.Errorf("follower acked at epoch %d, ours is %d: %w", ack.Epoch, epoch, store.ErrStaleEpoch)
	}
	d.setAcked(addr, ack.Applied)
	d.renewedAt(sent)
	return nil
}

// renewedAt advances the last-successful-renewal clock to the given
// send time. Monotonic: concurrent sessions only ever move it forward.
func (d *daemon) renewedAt(sent time.Time) {
	ns := sent.UnixNano()
	for {
		cur := d.lastRenew.Load()
		if cur >= ns || d.lastRenew.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// leaseWatch enforces the lease on the primary itself: once no follower
// has acked within the ttl, some follower's lease may already have
// lapsed — and promotion needs no permission from a primary it cannot
// reach — so this daemon must stop accepting mutations rather than run
// split-brained through a partition. The step-down is provisional: a
// follower that acks again without having promoted (it renewed in time)
// restores leadership; contact with a promoted follower instead fences
// this daemon for good (shipTo calls fence, which is sticky).
func (d *daemon) leaseWatch(ttl time.Duration) {
	tick := time.NewTicker(heartbeatEvery(ttl))
	defer tick.Stop()
	for {
		select {
		case <-d.ctx.Done():
			return
		case <-tick.C:
			if d.fenced.Load() {
				return // fence() already holds the daemon in standby
			}
			if time.Since(time.Unix(0, d.lastRenew.Load())) > ttl {
				if !d.standby.Swap(true) {
					log.Printf("replication: lease LOST: no follower ack within %s; suspending mutations (a standby may be promoting)", ttl)
				}
				continue
			}
			if d.standby.Load() && !d.fenced.Load() {
				d.standby.Store(false)
				if d.fenced.Load() {
					// fence() raced the resume between the two checks:
					// it has precedence, so re-assert standby and stop.
					d.standby.Store(true)
					return
				}
				log.Printf("replication: lease renewed by a follower that never promoted; resuming leadership")
			}
		}
	}
}

// fence steps a deposed primary down: mutations are rejected with
// StatusNotLeader from here on, so clients rotate to the new primary.
// Journaling continues locally (reads stay warm) but nothing ships.
func (d *daemon) fence(addr string, err error) {
	if d.fenced.Swap(true) {
		return
	}
	d.standby.Store(true)
	log.Printf("replication: FENCED by %s (%v): a standby promoted past this epoch; entering standby, mutations rejected", addr, err)
}

func (d *daemon) setAcked(addr string, applied uint64) {
	d.replMu.Lock()
	d.replAcked[addr] = applied
	d.replMu.Unlock()
}

// minAcked returns the slowest follower's acked sequence (0 if none).
func (d *daemon) minAcked() uint64 {
	d.replMu.Lock()
	defer d.replMu.Unlock()
	var min uint64
	first := true
	for _, v := range d.replAcked {
		if first || v < min {
			min, first = v, false
		}
	}
	return min
}

// --- follower side: warm replay and promotion ---

// openFollower opens the standby's warm store, arms the lease, and routes
// incoming MsgRepl* frames to it. The daemon rejects mutations until
// promotion; reads answer from its own (empty) task table, since the
// replica only feeds the orchestrator when a promotion re-admits it.
func (d *daemon) openFollower(dir string, ttl time.Duration) error {
	fol, err := store.OpenFollower(dir)
	if err != nil {
		return err
	}
	d.follower = fol
	d.followDir = dir
	d.standby.Store(true)
	d.ctrl.Repl = &ctrlproto.ReplReceiver{F: fol, Logf: log.Printf}
	// Arm the lease from boot: a primary that never connects is as dead
	// as one that stops heartbeating.
	fol.StartLease(ttl)
	go d.followLoop(ttl)
	log.Printf("replication: following at epoch %d, applied seq %d (lease ttl %s)",
		fol.Epoch(), fol.Applied(), ttl)
	return nil
}

// followLoop watches the lease and promotes when it expires. A failed
// promotion attempt is retried on later ticks rather than abandoning the
// loop — otherwise one transient journal error would leave the pair with
// a permanent standby and no primary. ErrLeaseLive is not a failure: the
// primary renewed between the expiry observation and the epoch bump, so
// the daemon simply keeps following.
func (d *daemon) followLoop(ttl time.Duration) {
	tick := time.NewTicker(heartbeatEvery(ttl))
	defer tick.Stop()
	for {
		select {
		case <-d.ctx.Done():
			return
		case <-tick.C:
			if !d.follower.LeaseExpired() {
				continue
			}
			switch err := d.promote(); {
			case err == nil:
				return
			case errors.Is(err, store.ErrLeaseLive):
				// Lost the race to a heartbeat; still a follower.
			default:
				log.Printf("replication: promote: %v (retrying)", err)
			}
		}
	}
}

// promote is the takeover: durably bump the epoch (fencing the old
// primary), then run the exact boot-recovery sequence — rehydrate health,
// re-admit live tasks, reconcile, snapshot — against the replica store,
// and start accepting mutations. Recovery is deterministic, so the plans
// this daemon computes are byte-identical to what the dead primary's own
// reboot would have produced.
//
// Handoff is deliberately last: once the epoch record is durable every
// replication message is fenced, so the store is quiescent while
// attachState rebuilds on top of it, and a failure there cannot strand a
// released-but-unattached store. attachState's only failure mode is the
// initial snapshot not persisting; that leaves the daemon exactly as
// durable as a primary whose disk died mid-flight — journal_failed is
// raised and it serves anyway — so it does not block the takeover.
func (d *daemon) promote() error {
	holder := d.holder
	if holder == "" {
		holder = "standby"
	}
	deadHolder := d.follower.Holder() // before Promote overwrites it
	state, epoch, err := d.follower.Promote(holder)
	if err != nil {
		return err
	}
	log.Printf("replication: lease expired (last holder %q); promoting to epoch %d (applied seq %d, lag %d)",
		deadHolder, epoch, d.follower.Applied(), d.follower.Lag())
	if err := d.attachState(d.follower.Store(), state, d.followDir); err != nil {
		log.Printf("replication: promote: attach state: %v (serving anyway; durability degraded)", err)
	}
	d.follower.Handoff()
	d.standby.Store(false)
	d.promotions.Add(1)
	d.events.Publish(telemetry.TaskEvent{
		Time: time.Now(), State: telemetry.Promoted, Metric: float64(epoch), MetricName: "epoch",
	})
	log.Printf("replication: promoted; serving as primary at epoch %d", epoch)
	return nil
}

// --- metrics: one role-aware family set, valid before and after the
// daemon's role flips (fencing, promotion) ---

func (d *daemon) registerReplMetrics(reg *metrics.Registry) {
	if d.follower == nil && !d.replicating {
		return
	}
	reg.GaugeFunc("surfos_repl_epoch", "Current leadership term seen by this daemon.",
		func() float64 {
			if j := d.getJournal(); j != nil {
				return float64(j.Epoch())
			}
			if d.follower != nil {
				return float64(d.follower.Epoch())
			}
			return 0
		})
	reg.GaugeFunc("surfos_repl_lag_records", "Replication lag in records: behind the primary (follower) or the slowest follower's deficit (primary).",
		func() float64 {
			if d.follower != nil && !d.follower.Promoted() {
				return float64(d.follower.Lag())
			}
			if j := d.getJournal(); j != nil {
				if acked := d.minAcked(); acked > 0 && j.Seq() > acked {
					return float64(j.Seq() - acked)
				}
			}
			return 0
		})
	reg.GaugeFunc("surfos_repl_lease_age_seconds", "Seconds since the last lease renewal (follower: received; primary: acked by a follower; -1: none yet).",
		func() float64 {
			if d.follower != nil && !d.follower.Promoted() {
				age := d.follower.LeaseAge()
				if age < 0 {
					return -1
				}
				return age.Seconds()
			}
			if ns := d.lastRenew.Load(); ns > 0 {
				return time.Since(time.Unix(0, ns)).Seconds()
			}
			return -1
		})
	reg.CounterFunc("surfos_repl_promotions_total", "Standby-to-primary promotions performed by this daemon.",
		func() float64 { return float64(d.promotions.Load()) })
	reg.GaugeFunc("surfos_repl_standby", "1 while this daemon rejects mutations (follower before promotion, fenced ex-primary).",
		func() float64 {
			if d.standby.Load() {
				return 1
			}
			return 0
		})
}
