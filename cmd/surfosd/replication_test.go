package main

import (
	"context"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// replTestDaemon is testDaemon with a caller-owned context, so a test can
// hard-kill one daemon of a replicated pair (stopping its shippers and
// heartbeats mid-lease) while the other keeps running.
func replTestDaemon(t *testing.T, ctx context.Context) *daemon {
	t.Helper()
	d, err := newDaemon(ctx, "NR-Surface@east_wall,NR-Surface@north_wall", daemonOptions{})
	if err != nil {
		t.Fatal(err)
	}
	d.orch.Opts.OptIters = 30
	d.orch.Opts.GridStep = 1.5
	d.orch.Opts.SensingGridStep = 2.5
	d.orch.Opts.SensingBins = 11
	d.orch.Opts.SensingSubcarriers = 3
	t.Cleanup(d.close)
	return d
}

// TestDaemonFailoverPromotesStandby is the failover invariant at daemon
// level, over a real TCP replication session: a primary ships its journal
// to a warm standby; when the primary dies mid-lease the standby promotes
// itself, re-admits every live task, and starts accepting mutations.
func TestDaemonFailoverPromotesStandby(t *testing.T) {
	ttl := time.Second
	// Dirs before daemons: cleanups run LIFO, so each daemon's close (and
	// its final snapshot) happens before its state directory is removed.
	pdir, sdir := t.TempDir(), t.TempDir()

	// Primary: journaled state dir.
	ctx1, kill := context.WithCancel(context.Background())
	defer kill()
	d1 := replTestDaemon(t, ctx1)
	if err := d1.openState(pdir); err != nil {
		t.Fatal(err)
	}
	d1.holder = "primary"
	d1.replicating = true

	// Standby: warm replica receiving on its own ctrl port. Start shipping
	// right away so the armed boot lease sees heartbeats before it lapses.
	d2 := replTestDaemon(t, context.Background())
	if err := d2.openFollower(sdir, ttl); err != nil {
		t.Fatal(err)
	}
	addr, err := d2.ctrl.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := d1.startReplication([]string{addr.String()}, ttl); err != nil {
		t.Fatal(err)
	}

	if reply, _ := d1.handle("demand please stream a movie on the tv tonight"); !strings.Contains(reply, "running") {
		t.Fatalf("demand: %q", reply)
	}
	if reply, _ := d1.handle("demand charge my phone please"); !strings.Contains(reply, "task 2") {
		t.Fatalf("second demand: %q", reply)
	}

	// The journal drains the bus asynchronously; wait for it to settle and
	// for the follower's ack to reach the primary's sequence.
	j := d1.getJournal()
	waitFor(t, func() bool {
		seq := j.Seq()
		return d1.journalBacklog() == 0 && seq > 0 && d2.follower.Applied() == seq
	})
	if !d2.standby.Load() {
		t.Fatal("follower serving mutations before promotion")
	}

	// Hard-kill the primary: shippers and heartbeats stop mid-lease. The
	// standby's followLoop notices the lapsed lease and promotes.
	kill()
	waitFor(t, func() bool { return !d2.standby.Load() })
	if got := d2.promotions.Load(); got != 1 {
		t.Errorf("promotions = %d, want 1", got)
	}

	// Zero live tasks lost: both survive the failover, re-planned.
	reply, _ := d2.handle("tasks")
	if !strings.Contains(reply, "task 1 kind=link") || !strings.Contains(reply, "state=running") {
		t.Errorf("task 1 not re-admitted on promotion: %q", reply)
	}
	if !strings.Contains(reply, "task 2 kind=power") {
		t.Errorf("task 2 lost in failover: %q", reply)
	}
	// The promoted daemon is the leader now: mutations are accepted and
	// the ID allocator continues past the primary's high-water mark.
	if reply, _ := d2.handle("demand please stream a movie on the tv tonight"); !strings.Contains(reply, "task 3") {
		t.Errorf("post-promotion demand: %q", reply)
	}
}

// replProxy sits between a primary and its follower so a test can cut the
// replication path without killing either daemon: with drop set, live
// connections are severed and new ones closed on accept — a network
// partition, as the shippers see it.
type replProxy struct {
	ln      net.Listener
	backend string
	mu      sync.Mutex
	drop    bool
	conns   map[net.Conn]struct{}
}

func newReplProxy(t *testing.T, backend string) *replProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &replProxy{ln: ln, backend: backend, conns: map[net.Conn]struct{}{}}
	t.Cleanup(func() { ln.Close() })
	go p.run()
	return p
}

func (p *replProxy) run() {
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		if p.drop {
			p.mu.Unlock()
			conn.Close()
			continue
		}
		back, err := net.Dial("tcp", p.backend)
		if err != nil {
			p.mu.Unlock()
			conn.Close()
			continue
		}
		p.conns[conn] = struct{}{}
		p.conns[back] = struct{}{}
		p.mu.Unlock()
		pipe := func(dst, src net.Conn) {
			io.Copy(dst, src)
			dst.Close()
			src.Close()
			p.mu.Lock()
			delete(p.conns, dst)
			delete(p.conns, src)
			p.mu.Unlock()
		}
		go pipe(back, conn)
		go pipe(conn, back)
	}
}

// setDrop flips the partition: dropping also severs live connections.
func (p *replProxy) setDrop(drop bool) {
	p.mu.Lock()
	p.drop = drop
	if drop {
		for c := range p.conns {
			c.Close()
		}
	}
	p.mu.Unlock()
}

// TestPrimaryLeaseLossStepsDownAndResumes pins the primary's own half of
// the lease: partitioned from every follower, it must stop accepting
// mutations within its TTL — before a standby could promote — and, when
// the partition heals against a follower that never promoted, resume
// leadership without fencing itself.
func TestPrimaryLeaseLossStepsDownAndResumes(t *testing.T) {
	ttl := 500 * time.Millisecond
	pdir, sdir := t.TempDir(), t.TempDir()

	d1 := replTestDaemon(t, context.Background())
	if err := d1.openState(pdir); err != nil {
		t.Fatal(err)
	}
	d1.holder = "primary"
	d1.replicating = true

	// Follower with an effectively infinite lease: it will never promote,
	// so any step-down observed on the primary is the primary's own doing.
	d2 := replTestDaemon(t, context.Background())
	if err := d2.openFollower(sdir, time.Hour); err != nil {
		t.Fatal(err)
	}
	addr, err := d2.ctrl.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	proxy := newReplProxy(t, addr.String())
	if err := d1.startReplication([]string{proxy.ln.Addr().String()}, ttl); err != nil {
		t.Fatal(err)
	}

	if reply, _ := d1.handle("demand please stream a movie on the tv tonight"); !strings.Contains(reply, "running") {
		t.Fatalf("demand: %q", reply)
	}
	j := d1.getJournal()
	waitFor(t, func() bool {
		seq := j.Seq()
		return d1.journalBacklog() == 0 && seq > 0 && d2.follower.Applied() == seq
	})

	// Partition. With no acks for a ttl the primary steps into standby.
	proxy.setDrop(true)
	waitFor(t, func() bool { return d1.standby.Load() })
	if reply, _ := d1.handle("demand charge my phone please"); !strings.Contains(reply, "not the leader") {
		t.Errorf("partitioned-primary demand = %q, want a standby rejection", reply)
	}
	if d2.follower.Promoted() {
		t.Fatal("follower promoted despite its armed hour-long lease")
	}

	// Heal. The follower never promoted, so its next ack restores the
	// lease and the primary resumes — no fencing, no epoch change.
	proxy.setDrop(false)
	waitFor(t, func() bool { return !d1.standby.Load() })
	if d1.fenced.Load() {
		t.Error("resumed primary reports fenced")
	}
	if reply, _ := d1.handle("demand charge my phone please"); !strings.Contains(reply, "task 2") {
		t.Errorf("post-heal demand = %q, want task 2 accepted", reply)
	}
	waitFor(t, func() bool { return d2.follower.Applied() == j.Seq() })
	if d2.follower.Promoted() || !d2.standby.Load() {
		t.Error("follower role changed across the partition")
	}
}
