package main

import (
	"bufio"
	"context"
	"net"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"surfos"
)

// stateDaemon builds a daemon attached to a state directory.
func stateDaemon(t *testing.T, dir string) *daemon {
	t.Helper()
	d := testDaemon(t)
	if err := d.openState(dir); err != nil {
		t.Fatal(err)
	}
	return d
}

// TestDaemonStateRecoveryAcrossRestart is the tentpole invariant at daemon
// level: tasks journaled by one epoch are re-admitted and re-planned by
// the next, idle stays idle, ended stays ended, the ID allocator never
// collides, and journaled device deaths shape the recovery plan.
func TestDaemonStateRecoveryAcrossRestart(t *testing.T) {
	dir := t.TempDir()

	// --- epoch 1 ---
	d1 := stateDaemon(t, dir)
	if reply, _ := d1.handle("demand please stream a movie on the tv tonight"); !strings.Contains(reply, "running") {
		t.Fatalf("demand: %q", reply)
	}
	if reply, _ := d1.handle("demand charge my phone please"); !strings.Contains(reply, "task 2") {
		t.Fatalf("second demand: %q", reply)
	}
	if reply, _ := d1.handle("idle 2"); reply != "ok" {
		t.Fatalf("idle: %q", reply)
	}
	if reply, _ := d1.handle("demand please stream a movie on the tv tonight"); !strings.Contains(reply, "task 3") {
		t.Fatalf("third demand: %q", reply)
	}
	if reply, _ := d1.handle("end 3"); reply != "ok" {
		t.Fatalf("end: %q", reply)
	}
	// Kill a surface so its death is journaled: the next epoch must start
	// planning around it without ever probing.
	devs := d1.hw.Surfaces()
	fm := surfos.NewFaultModel(1)
	fm.SetDead(true)
	devs[0].Drv.SetFaults(fm)
	d1.hw.ProbeAll()
	waitFor(t, func() bool {
		reply, _ := d1.handle("plans")
		return strings.Contains(reply, "strategy=") && !strings.Contains(reply, devs[0].ID)
	})
	d1.close() // graceful: drains the journal, snapshots, fsyncs

	// --- epoch 2 ---
	d2 := stateDaemon(t, dir)
	reply, _ := d2.handle("tasks")
	if !strings.Contains(reply, "task 1 kind=link") || !strings.Contains(reply, "state=running") {
		t.Errorf("task 1 not re-planned after restart: %q", reply)
	}
	if !strings.Contains(reply, "task 2 kind=power") || !strings.Contains(reply, "state=idle") {
		t.Errorf("task 2 not restored idle: %q", reply)
	}
	if strings.Contains(reply, "task 3") {
		t.Errorf("ended task 3 resurrected: %q", reply)
	}
	// Health was rehydrated, not re-probed: the dead device is already
	// excluded from the recovery plan.
	reply, _ = d2.handle("health")
	if !strings.Contains(reply, devs[0].ID+" state=dead") {
		t.Errorf("device death not rehydrated: %q", reply)
	}
	reply, _ = d2.handle("plans")
	if strings.Contains(reply, devs[0].ID) {
		t.Errorf("recovery plan uses the journaled-dead device: %q", reply)
	}
	// The allocator was bumped past every journaled ID.
	if reply, _ := d2.handle("demand charge my phone please"); !strings.Contains(reply, "task 4") {
		t.Errorf("post-restart submission collided: %q", reply)
	}
}

// TestDaemonStateDisabledByDefault: without -state-dir nothing is written
// anywhere, preserving the in-memory-only behavior.
func TestDaemonStateDisabledByDefault(t *testing.T) {
	d := testDaemon(t)
	if d.journal != nil {
		t.Fatal("journal attached without a state dir")
	}
	if reply, _ := d.handle("demand please stream a movie on the tv tonight"); !strings.Contains(reply, "running") {
		t.Fatalf("demand: %q", reply)
	}
	d.closeState() // must be a no-op, not a panic
}

// TestDaemonStateRefusesCorruption: a damaged WAL must abort the boot
// loudly instead of silently dropping tasks.
func TestDaemonStateRefusesCorruption(t *testing.T) {
	dir := t.TempDir()
	d1 := stateDaemon(t, dir)
	if reply, _ := d1.handle("demand please stream a movie on the tv tonight"); !strings.Contains(reply, "running") {
		t.Fatalf("demand: %q", reply)
	}
	d1.closeState()
	// Re-open the dir raw and vandalize the snapshot.
	snap := filepath.Join(dir, "snapshot.json")
	data, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(snap, append([]byte("x"), data...), 0o644); err != nil {
		t.Fatal(err)
	}
	d2 := testDaemon(t)
	if err := d2.openState(dir); err == nil {
		t.Fatal("corrupt state dir accepted")
	}
}

// TestServeConnRejectsOverCap: the northbound connection cap answers with
// a diagnostic line instead of hanging the excess client.
func TestServeConnRejectsOverCap(t *testing.T) {
	d := testDaemon(t)
	// Saturate the semaphore so the next connection is over cap.
	d.connSem = make(chan struct{}, 1)
	d.connSem <- struct{}{}

	client, server := net.Pipe()
	defer client.Close()
	go d.serveConn(server)
	line, err := bufio.NewReader(client).ReadString('\n')
	if err != nil || !strings.Contains(line, "error: busy") {
		t.Fatalf("over-cap reply = %q, %v", line, err)
	}
	// The server closes the rejected connection.
	client.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := bufio.NewReader(client).ReadString('\n'); err == nil {
		t.Error("rejected connection left open")
	}
}

// TestServeConnRejectsOversizedLine: a line beyond the scanner cap is a
// logged, diagnosed close — not a silent drop.
func TestServeConnRejectsOversizedLine(t *testing.T) {
	d := testDaemon(t)
	client, server := net.Pipe()
	defer client.Close()
	go d.serveConn(server)

	rd := bufio.NewReader(client)
	if _, err := rd.ReadString('\n'); err != nil {
		t.Fatal(err)
	}
	go client.Write(append(make([]byte, northboundLineMax+1), '\n'))
	client.SetReadDeadline(time.Now().Add(5 * time.Second))
	line, err := rd.ReadString('\n')
	if err != nil || !strings.Contains(line, "line exceeds") {
		t.Fatalf("oversized-line reply = %q, %v", line, err)
	}
}

// TestDrainForceClosesStragglers: the drain waits for in-flight sessions,
// then force-closes whatever outlives the deadline.
func TestDrainForceClosesStragglers(t *testing.T) {
	d := testDaemon(t)
	// No connections: the drain returns immediately.
	start := time.Now()
	d.drainConns(5 * time.Second)
	if time.Since(start) > time.Second {
		t.Fatal("empty drain waited for the deadline")
	}

	// A client that never sends anything pins its session until the drain
	// deadline force-closes it.
	client, server := net.Pipe()
	defer client.Close()
	d.connWG.Add(1)
	go func() {
		defer d.connWG.Done()
		d.serveConn(server)
	}()
	if _, err := bufio.NewReader(client).ReadString('\n'); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		d.drainConns(50 * time.Millisecond)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("drain never finished")
	}
}

// TestRunGracefulShutdown drives the whole lifecycle: boot with a state
// dir, SIGTERM, and a clean exit that leaves a final snapshot behind.
func TestRunGracefulShutdown(t *testing.T) {
	dir := t.TempDir()
	done := make(chan error, 1)
	go func() {
		done <- run("127.0.0.1:0", "", "", "NR-Surface@east_wall", dir, 500*time.Millisecond, daemonOptions{})
	}()
	// Give the daemon a moment to boot; the signal is handled either way —
	// before the accept loop it short-circuits straight into shutdown.
	time.Sleep(300 * time.Millisecond)
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not shut down on SIGTERM")
	}
	if _, err := os.Stat(filepath.Join(dir, "snapshot.json")); err != nil {
		t.Errorf("no final snapshot after graceful shutdown: %v", err)
	}
}

// TestRunReportsListenErrors: a bad listen address must return through
// run's normal error path (so deferred cleanup executes), not kill the
// process before the daemon is released.
func TestRunReportsListenErrors(t *testing.T) {
	if err := run("500.0.0.1:0", "", "", "NR-Surface@east_wall", "", time.Second, daemonOptions{}); err == nil {
		t.Error("bad northbound listen address accepted")
	}
	if err := run("127.0.0.1:0", "500.0.0.1:0", "", "NR-Surface@east_wall", "", time.Second, daemonOptions{}); err == nil {
		t.Error("bad ctrl listen address accepted")
	}
	_ = context.Background()
}
