package surfos_test

import (
	"context"
	"fmt"
	"time"

	"surfos"
)

// Example shows the minimal SurfOS flow: deploy a surface, register an AP,
// request the connectivity service, reconcile.
func Example() {
	apt := surfos.NewApartment()
	hw := surfos.NewHardware()
	surfos.Deploy(hw, "east0", surfos.ModelNRSurface,
		apt.Mounts[surfos.MountEastWall], 24, 24)
	hw.AddAP(&surfos.AccessPoint{ID: "ap0", Pos: apt.AP, FreqHz: 24e9,
		Budget: surfos.DefaultBudget(), Antennas: 16})

	orch, _ := surfos.NewOrchestrator(apt.Scene, hw, surfos.Options{})
	task, _ := orch.EnhanceLink(context.Background(), surfos.LinkGoal{
		Endpoint: "laptop", Pos: surfos.V(2.5, 5.5, 1.2), MinSNRdB: 10}, 1)
	orch.Reconcile(context.Background())
	// Accessors return snapshots; re-fetch to observe post-Reconcile state.
	task, _ = orch.Task(task.ID)
	fmt.Println(task.Result.MetricName, task.Result.Strategy)
	// Output: snr_db solo
}

// ExampleBroker_HandleDemand translates a natural-language demand into
// service calls (the paper's Figure 6 path) and schedules them.
func ExampleBroker_HandleDemand() {
	apt := surfos.NewApartment()
	hw := surfos.NewHardware()
	surfos.Deploy(hw, "east0", surfos.ModelNRSurface,
		apt.Mounts[surfos.MountEastWall], 16, 16)
	hw.AddAP(&surfos.AccessPoint{ID: "ap0", Pos: apt.AP, FreqHz: 24e9,
		Budget: surfos.DefaultBudget(), Antennas: 8})
	orch, _ := surfos.NewOrchestrator(apt.Scene, hw, surfos.Options{OptIters: 30, GridStep: 1.5})

	tr := surfos.NewTranslator()
	br, _ := surfos.NewBroker(tr, orch, surfos.Inventory{
		Devices:     map[string]surfos.Vec3{"tv": surfos.V(1.5, 6.5, 1.5)},
		RoomRegions: map[string]string{"room_id": surfos.RegionTargetRoom},
	})
	calls, _, _ := br.HandleDemand(context.Background(), "please stream a movie on the tv")
	for _, c := range calls {
		fmt.Println(c)
	}
	// Output: enhance_link("tv", snr=25.0, latency=100.0)
}

// ExampleGenerateSpec turns a vendor datasheet extract into a registered
// hardware specification (the §3.4 driver-generation path).
func ExampleGenerateSpec() {
	spec, _ := surfos.GenerateSpec(`
model: Acme X1
band: 23-25 GHz
control: phase
mode: reflective
granularity: column
bits: 2
cost_per_element: 2.5
`)
	fmt.Println(spec.Model, spec.Granularity, spec.PhaseBits)
	// Output: Acme X1 column-wise 2
}

// ExampleMonitor diagnoses an endpoint whose reports fall far below the
// simulator's prediction.
func ExampleMonitor() {
	mon := surfos.NewMonitor()
	mon.Expect(surfos.Expectation{DeviceID: "panel0", EndpointID: "phone", SNRdB: 20})
	now := time.Unix(0, 0)
	for i := 0; i < 5; i++ {
		mon.Observe(surfos.Report{DeviceID: "panel0", EndpointID: "phone", ConfigIdx: 0, SNRdB: 3, Time: now})
	}
	for _, f := range mon.Problems(now) {
		fmt.Println(f.DeviceID, f.EndpointID, f.Verdict)
	}
	// Output: panel0 phone endpoint-blocked
}
