// Hybrid deployment (the paper's Figure 4 scenario): a large, cheap
// passive panel relays the AP's beam as a narrow backhaul to a small
// programmable panel, which dynamically re-steers it to users around the
// room. The example compares per-user SNR for the bare room, the passive
// panel alone, and the hybrid.
package main

import (
	"context"
	"fmt"
	"log"

	"surfos"
)

// passiveSheet defines the passive design through the driver-generation
// path (a datasheet in, a registered driver out).
const passiveSheet = `
model: PassiveMirror24-demo
reference: AutoMS-class passive reflector
band: 23-25 GHz
control: phase
mode: reflective
granularity: fixed
bits: 2
cost_per_element: 0.01
fixed_cost: 15
efficiency: 0.7
`

func main() {
	ctx := context.Background()
	apt := surfos.NewApartment()
	hw := surfos.NewHardware()

	passiveSpec, err := surfos.GenerateSpec(passiveSheet)
	if err != nil {
		log.Fatal(err)
	}

	// Large passive backhaul panel on the east wall, small programmable
	// panel deeper in the room.
	if _, err := surfos.DeploySpec(hw, "backhaul", passiveSpec,
		apt.Mounts[surfos.MountEastWall], 48, 48); err != nil {
		log.Fatal(err)
	}
	if _, err := surfos.Deploy(hw, "steer", surfos.ModelNRSurface,
		apt.Mounts[surfos.MountNorthWall], 8, 32); err != nil {
		log.Fatal(err)
	}
	if err := hw.AddAP(&surfos.AccessPoint{
		ID: "ap0", Pos: apt.AP, FreqHz: 24e9,
		Budget: surfos.DefaultBudget(), Antennas: 16,
	}); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("deployment: %d surfaces, total cost $%.0f, total area %.3f m²\n",
		len(hw.Surfaces()), hw.TotalCostUSD(), hw.TotalAreaM2())

	// The orchestrator models surface-to-surface interaction (Cascade) so
	// the two panels collaborate through the shared medium.
	orch, err := surfos.NewOrchestrator(apt.Scene, hw, surfos.Options{Cascade: true})
	if err != nil {
		log.Fatal(err)
	}

	// Three users spread across the bedroom.
	users := map[string]surfos.Vec3{
		"tablet":  surfos.V(1.2, 6.2, 1.2),
		"laptop":  surfos.V(3.5, 5.0, 1.2),
		"headset": surfos.V(6.0, 6.4, 1.2),
	}
	for name, pos := range users {
		task, err := orch.EnhanceLink(ctx, surfos.LinkGoal{Endpoint: name, Pos: pos, MinSNRdB: 10}, 1)
		if err != nil {
			log.Fatal(err)
		}
		if err := orch.Reconcile(ctx); err != nil {
			log.Fatal(err)
		}
		got, _ := orch.Task(task.ID)
		fmt.Printf("user %-8s SNR %.1f dB via %v (%s)\n",
			name, got.Result.Metric, got.Result.Surfaces, got.Result.Strategy)
		if err := orch.EndTask(task.ID); err != nil {
			log.Fatal(err)
		}
	}

	// Hardware heterogeneity summary, Table 1 style.
	fmt.Println("\nhardware inventory:")
	for _, dev := range hw.Surfaces() {
		spec := dev.Drv.Spec()
		fmt.Printf("  %-9s %-22s reconfigurable=%-5v granularity=%-12v $%.0f\n",
			dev.ID, spec.Model, spec.Reconfigurable, spec.Granularity, dev.Drv.CostUSD())
	}
}
