// Intent broker (the paper's Figure 6 scenario): natural-language user
// demands flow through the service broker, which renders them to SurfOS
// service calls and dispatches them to the orchestrator. Pass utterances
// as arguments, or run without arguments for the paper's two examples.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"surfos"
)

func main() {
	ctx := context.Background()
	apt := surfos.NewApartment()
	hw := surfos.NewHardware()
	if _, err := surfos.Deploy(hw, "east0", surfos.ModelNRSurface,
		apt.Mounts[surfos.MountEastWall], 24, 24); err != nil {
		log.Fatal(err)
	}
	if _, err := surfos.Deploy(hw, "north0", surfos.ModelNRSurface,
		apt.Mounts[surfos.MountNorthWall], 16, 16); err != nil {
		log.Fatal(err)
	}
	if err := hw.AddAP(&surfos.AccessPoint{
		ID: "ap0", Pos: apt.AP, FreqHz: 24e9,
		Budget: surfos.DefaultBudget(), Antennas: 12,
	}); err != nil {
		log.Fatal(err)
	}
	orch, err := surfos.NewOrchestrator(apt.Scene, hw, surfos.Options{
		OptIters: 60, GridStep: 1.0, SensingGridStep: 1.8,
		SensingBins: 31, SensingSubcarriers: 6,
	})
	if err != nil {
		log.Fatal(err)
	}

	tr := surfos.NewTranslator()
	tr.Rooms["bedroom"] = "room_id"
	br, err := surfos.NewBroker(tr, orch, surfos.Inventory{
		Devices: map[string]surfos.Vec3{
			"VR_headset": surfos.V(2.5, 5.5, 1.2),
			"laptop":     surfos.V(3.0, 5.0, 1.0),
			"phone":      surfos.V(5.0, 6.0, 1.0),
			"tv":         surfos.V(1.5, 6.5, 1.5),
			"sensor":     surfos.V(6.2, 6.2, 0.8),
			"console":    surfos.V(2.0, 6.0, 0.6),
		},
		RoomRegions: map[string]string{
			"room_id":      surfos.RegionTargetRoom,
			"meeting_room": surfos.RegionTargetRoom,
		},
		EvePos: surfos.V(6.0, 4.5, 1.2),
	})
	if err != nil {
		log.Fatal(err)
	}

	utterances := os.Args[1:]
	if len(utterances) == 0 {
		utterances = []string{
			"I want to start VR gaming in this room.",
			"I want to have an online meeting while charging my phone.",
		}
	}

	for _, u := range utterances {
		fmt.Printf("User Input: %s\n", u)
		calls, tasks, err := br.HandleDemand(ctx, u)
		if err != nil {
			fmt.Printf("  error: %v\n\n", err)
			continue
		}
		for _, c := range calls {
			fmt.Printf("  %s\n", c)
		}
		if err := orch.Reconcile(ctx); err != nil {
			fmt.Printf("  reconcile warning: %v\n", err)
		}
		for _, t := range tasks {
			got, _ := orch.Task(t.ID)
			if got.Result != nil {
				fmt.Printf("  -> task %d %s: %s, %s=%.2f via %v\n",
					got.ID, got.Kind, got.State, got.Result.MetricName, got.Result.Metric, got.Result.Strategy)
			} else {
				fmt.Printf("  -> task %d %s: %s (%v)\n", got.ID, got.Kind, got.State, got.Err)
			}
			// Keep the demo independent per utterance.
			if err := orch.EndTask(got.ID); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Println()
	}
}
