// Joint sensing and coverage (the paper's Figure 5 scenario): one shared
// surface configuration serves both a coverage task and a localization
// task at the same time, scheduled by the orchestrator's joint multitask
// optimizer. Compare the result with time-division multiplexing of the
// same two tasks.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"surfos"
)

func buildSystem(policy surfos.Options) (*surfos.Orchestrator, error) {
	apt := surfos.NewApartment()
	hw := surfos.NewHardware()
	if _, err := surfos.Deploy(hw, "east0", surfos.ModelNRSurface,
		apt.Mounts[surfos.MountEastWall], 24, 24); err != nil {
		return nil, err
	}
	if err := hw.AddAP(&surfos.AccessPoint{
		ID: "ap0", Pos: apt.AP, FreqHz: 24e9,
		Budget: surfos.DefaultBudget(), Antennas: 12,
	}); err != nil {
		return nil, err
	}
	return surfos.NewOrchestrator(apt.Scene, hw, policy)
}

func runPolicy(ctx context.Context, name string, opts surfos.Options) {
	orch, err := buildSystem(opts)
	if err != nil {
		log.Fatal(err)
	}
	cov, err := orch.OptimizeCoverage(ctx, surfos.CoverageGoal{
		Region: surfos.RegionTargetRoom, MedianSNRdB: 10,
	}, 1)
	if err != nil {
		log.Fatal(err)
	}
	sen, err := orch.EnableSensing(ctx, surfos.SensingGoal{
		Region: surfos.RegionTargetRoom, Type: "tracking", Duration: time.Hour,
	}, 1)
	if err != nil {
		log.Fatal(err)
	}
	if err := orch.Reconcile(ctx); err != nil {
		log.Fatal(err)
	}
	c, _ := orch.Task(cov.ID)
	s, _ := orch.Task(sen.ID)
	fmt.Printf("%-6s coverage: median SNR %.1f dB (share %.2f)  sensing: mean loc err %.2f m (share %.2f)\n",
		name, c.Result.Metric, c.Result.Share, s.Result.Metric, s.Result.Share)
	for _, p := range orch.Plans() {
		fmt.Printf("       plan strategy=%s entries=%d surfaces=%v\n", p.Strategy, len(p.Entries), p.Surfaces)
	}
}

func main() {
	ctx := context.Background()
	fast := surfos.Options{
		OptIters: 80, GridStep: 1.0, SensingGridStep: 1.5,
		SensingBins: 31, SensingSubcarriers: 6,
	}

	// Joint configuration multiplexing: one shared config, both tasks at
	// full time share — the paper's §4 multitasking.
	joint := fast
	joint.Policy = surfos.PolicyJoint
	runPolicy(ctx, "joint", joint)

	// Time-division multiplexing: each task gets its own config during its
	// slice (half the airtime each).
	tdm := fast
	tdm.Policy = surfos.PolicyTDM
	runPolicy(ctx, "tdm", tdm)

	fmt.Println("\njoint multiplexing serves both tasks at share 1.0 with one configuration;")
	fmt.Println("TDM gives each task its ideal config but only a fraction of the time.")
}
