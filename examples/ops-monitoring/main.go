// Operations example: the lifecycle a building operator sees.
//
//  1. Deployment automation (paper §5): SurfOS evaluates candidate mounts
//     for a new panel and ranks them through the channel simulator.
//  2. Service scheduling: the best placement serves a link task.
//  3. Monitoring and diagnosis (paper Figure 1): endpoint telemetry is
//     checked against the simulator's predictions; a blockage event shows
//     up as a diagnosis finding.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"surfos"
)

func main() {
	ctx := context.Background()
	apt := surfos.NewApartment()
	spec, err := surfos.LookupModel(surfos.ModelNRSurface)
	if err != nil {
		log.Fatal(err)
	}

	// --- 1. plan the deployment ---
	candidates, err := surfos.PlanDeployment(ctx, surfos.PlacementRequest{
		Scene: apt.Scene,
		AP:    apt.AP,
		// BeamAP carries the AP array gain; the budget holds only the
		// client-side antenna gain.
		Budget: surfos.LinkBudget{TxPowerDBm: 10, AntennaGainDB: 5, NoiseFigureDB: 7, BandwidthHz: 400e6},
		Region: surfos.RegionTargetRoom,
		Spec:   spec,
		Rows:   16, Cols: 16,
		Mounts: []surfos.MountSpot{
			apt.Mounts[surfos.MountEastWall],
			apt.Mounts[surfos.MountNorthWall],
		},
		GridStep: 1.0,
		OptIters: 60,
		BeamAP:   true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("deployment plan (best first):")
	for _, c := range candidates {
		fmt.Printf("  %-11s median SNR %.1f dB, AP visibility %.2f, cost $%.0f\n",
			c.Mount.Name, c.MedianSNRdB, c.APVisibility, c.CostUSD)
	}
	best := candidates[0].Mount

	// --- 2. deploy and schedule ---
	hw := surfos.NewHardware()
	if _, err := surfos.Deploy(hw, "panel0", surfos.ModelNRSurface, best, 16, 16); err != nil {
		log.Fatal(err)
	}
	if err := hw.AddAP(&surfos.AccessPoint{
		ID: "ap0", Pos: apt.AP, FreqHz: 24e9,
		Budget: surfos.DefaultBudget(), Antennas: 8,
	}); err != nil {
		log.Fatal(err)
	}
	orch, err := surfos.NewOrchestrator(apt.Scene, hw, surfos.Options{OptIters: 60, GridStep: 1.2})
	if err != nil {
		log.Fatal(err)
	}
	phonePos := surfos.V(2.5, 5.5, 1.2)
	task, err := orch.EnhanceLink(ctx, surfos.LinkGoal{Endpoint: "phone", Pos: phonePos}, 1)
	if err != nil {
		log.Fatal(err)
	}
	if err := orch.Reconcile(ctx); err != nil {
		log.Fatal(err)
	}
	got, _ := orch.Task(task.ID)
	predicted := got.Result.Metric
	fmt.Printf("\nscheduled %v on %s: predicted SNR %.1f dB\n", got.Kind, best.Name, predicted)

	// --- 3. monitor the deployment ---
	mon := surfos.NewMonitor()
	mon.Expect(surfos.Expectation{DeviceID: "panel0", EndpointID: "phone", SNRdB: predicted})

	bus := surfos.NewTelemetryBus()
	stop := mon.Run(ctx, bus)
	defer stop()

	now := time.Now()
	// Phase 1: the phone reports what the simulator predicted.
	for i := 0; i < 5; i++ {
		bus.Publish(surfos.Report{DeviceID: "panel0", EndpointID: "phone",
			ConfigIdx: 0, SNRdB: predicted - 1, Time: now})
	}
	waitForSamples(mon, now, 5)
	fmt.Println("\nwhile the room is clear:")
	printFindings(mon, now)

	// Phase 2: someone parks a cabinet in the beam — reports crater.
	for i := 0; i < 8; i++ {
		bus.Publish(surfos.Report{DeviceID: "panel0", EndpointID: "phone",
			ConfigIdx: 0, SNRdB: predicted - 20, Time: now.Add(time.Second)})
	}
	waitForSamples(mon, now.Add(time.Second), 13)
	fmt.Println("\nafter a blockage event:")
	printFindings(mon, now.Add(2*time.Second))
	fmt.Println("\n→ the orchestrator would now re-reconcile or the device would switch codebook entries")
}

// waitForSamples spins until the bus consumer has folded in n reports.
func waitForSamples(mon *surfos.Monitor, at time.Time, n int) {
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		fs := mon.Diagnose(at)
		if len(fs) > 0 && fs[len(fs)-1].Samples >= n {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func printFindings(mon *surfos.Monitor, at time.Time) {
	for _, f := range mon.Diagnose(at) {
		fmt.Printf("  %s/%s: %v (expected %.1f dB, observed %.1f dB over %d reports)\n",
			f.DeviceID, f.EndpointID, f.Verdict, f.ExpectedSNRdB, f.ObservedSNRdB, f.Samples)
	}
}
