// Quickstart: deploy one programmable surface in the reference apartment,
// ask SurfOS to enhance a laptop's link in the blocked bedroom, and print
// the achieved SNR against the bare-environment baseline.
package main

import (
	"context"
	"fmt"
	"log"

	"surfos"
)

func main() {
	ctx := context.Background()
	// The paper's two-room apartment: an AP in the living room, a bedroom
	// behind a concrete wall with a doorway.
	apt := surfos.NewApartment()
	hw := surfos.NewHardware()

	// Deploy an NR-Surface-class programmable panel (24 GHz, column-wise,
	// 2-bit) on the bedroom's east wall — visible to the AP through the
	// doorway.
	if _, err := surfos.Deploy(hw, "east0", surfos.ModelNRSurface,
		apt.Mounts[surfos.MountEastWall], 24, 24); err != nil {
		log.Fatal(err)
	}

	// Register the AP: SurfOS manages non-surface hardware too.
	if err := hw.AddAP(&surfos.AccessPoint{
		ID: "ap0", Pos: apt.AP, FreqHz: 24e9,
		Budget: surfos.DefaultBudget(), Antennas: 16,
	}); err != nil {
		log.Fatal(err)
	}

	// The orchestrator is the central control plane.
	orch, err := surfos.NewOrchestrator(apt.Scene, hw, surfos.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// Request the connectivity service: enhance_link, the paper's first
	// service API.
	laptop := surfos.V(2.5, 5.5, 1.2)
	task, err := orch.EnhanceLink(ctx, surfos.LinkGoal{
		Endpoint: "laptop", Pos: laptop, MinSNRdB: 10,
	}, 1)
	if err != nil {
		log.Fatal(err)
	}

	// Reconcile schedules hardware, optimizes the surface configuration,
	// and pushes it to the device.
	if err := orch.Reconcile(ctx); err != nil {
		log.Fatal(err)
	}

	got, _ := orch.Task(task.ID)
	fmt.Printf("task %d (%s) state=%s\n", got.ID, got.Kind, got.State)
	fmt.Printf("achieved SNR at the laptop: %.1f dB (goal %.0f dB, satisfied=%v)\n",
		got.Result.Metric, 10.0, got.Result.Satisfied)
	fmt.Printf("strategy=%s surfaces=%v\n", got.Result.Strategy, got.Result.Surfaces)

	// Inventory view: what the hardware manager knows.
	for _, dev := range hw.Surfaces() {
		spec := dev.Drv.Spec()
		fmt.Printf("device %s: %s at %s, %d elements, $%.0f\n",
			dev.ID, spec.Model, dev.Mount, dev.Drv.Surface().NumElements(), dev.Drv.CostUSD())
	}
}
