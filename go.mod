module surfos

go 1.22
