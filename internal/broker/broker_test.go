package broker

import (
	"context"
	"go/parser"
	"go/token"
	"strings"
	"testing"
	"time"

	"surfos/internal/driver"
	"surfos/internal/em"
	"surfos/internal/geom"
	"surfos/internal/hwmgr"
	"surfos/internal/orchestrator"
	"surfos/internal/rfsim"
	"surfos/internal/scene"
	"surfos/internal/surface"
)

// --- translation (Figure 6 parity) ---

func TestFigure6VRGaming(t *testing.T) {
	tr := NewTranslator()
	calls, err := tr.Translate("I want to start VR gaming in this room.")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		`enhance_link("VR_headset", snr=30.0, latency=10.0)`,
		`enable_sensing("room_id", type="tracking", duration=3600)`,
		`optimize_coverage("room_id", median_snr=25)`,
	}
	if len(calls) != len(want) {
		t.Fatalf("got %d calls: %v", len(calls), calls)
	}
	for i, c := range calls {
		if c.String() != want[i] {
			t.Errorf("call %d = %s, want %s", i, c, want[i])
		}
	}
}

func TestFigure6MeetingWhileCharging(t *testing.T) {
	tr := NewTranslator()
	calls, err := tr.Translate("I want to have an online meeting while charging my phone.")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		`enhance_link("laptop", snr=20.0, latency=50.0)`,
		`enable_sensing("meeting_room", type="tracking", duration=3600)`,
		`init_powering("phone", duration=3600)`,
	}
	got := make([]string, len(calls))
	for i, c := range calls {
		got[i] = c.String()
	}
	for _, w := range want {
		found := false
		for _, g := range got {
			if g == w {
				found = true
			}
		}
		if !found {
			t.Errorf("missing call %s in %v", w, got)
		}
	}
	if len(calls) != len(want) {
		t.Errorf("got %d calls %v, want %d", len(calls), got, len(want))
	}
}

func TestTranslateRoomAlias(t *testing.T) {
	tr := NewTranslator()
	tr.Rooms["bedroom"] = "target_room"
	calls, err := tr.Translate("the wifi is a dead zone in the bedroom")
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != 1 || calls[0].Function != FuncOptimizeCoverage {
		t.Fatalf("calls = %v", calls)
	}
	if room, _ := calls[0].Positional(0); room != "target_room" {
		t.Errorf("room = %v, want target_room", room)
	}
}

func TestTranslateNoMatch(t *testing.T) {
	tr := NewTranslator()
	if _, err := tr.Translate("what is the meaning of life"); err == nil {
		t.Error("nonsense demand matched")
	}
}

func TestTranslateCompoundAndDedupe(t *testing.T) {
	tr := NewTranslator()
	calls, err := tr.Translate("charge my phone and also charging the other phone")
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != 1 {
		t.Errorf("duplicate powering calls not deduped: %v", calls)
	}
}

func TestTranslateSecurity(t *testing.T) {
	tr := NewTranslator()
	calls, err := tr.Translate("I need to send sensitive documents")
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != 1 || calls[0].Function != FuncSecureLink {
		t.Fatalf("calls = %v", calls)
	}
}

func TestCallRendering(t *testing.T) {
	c := Call{Function: "f", Args: []Arg{
		{Value: "x"}, {Name: "a", Value: 1.5}, {Name: "b", Value: 7}, {Name: "c", Value: true},
	}}
	if got := c.String(); got != `f("x", a=1.5, b=7, c=true)` {
		t.Errorf("render = %s", got)
	}
	if v, ok := c.Positional(0); !ok || v != "x" {
		t.Error("positional lookup broken")
	}
	if _, ok := c.Positional(1); ok {
		t.Error("phantom positional")
	}
	if v, ok := c.Named("b"); !ok || v != 7 {
		t.Error("named lookup broken")
	}
	if _, ok := c.Named("zz"); ok {
		t.Error("phantom named arg")
	}
}

func TestProfilesListed(t *testing.T) {
	tr := NewTranslator()
	names := tr.Profiles()
	if len(names) < 6 {
		t.Errorf("only %d profiles", len(names))
	}
	tr.AddProfile(Profile{Name: "custom", Keywords: []string{"zzz"}, Build: func(*Context) []Call {
		return []Call{{Function: "noop"}}
	}})
	if len(tr.Profiles()) != len(names)+1 {
		t.Error("AddProfile did not register")
	}
}

// --- dispatch ---

func dispatchRig(t *testing.T) *Broker {
	t.Helper()
	apt := scene.NewApartment()
	hw := hwmgr.New()

	spec, err := driver.Lookup(driver.ModelNRSurface)
	if err != nil {
		t.Fatal(err)
	}
	pitch := em.Wavelength(24e9) / 2
	m := apt.Mounts[scene.MountEastWall]
	s, err := surface.New("s0", m.Panel(16*pitch+0.02, 16*pitch+0.02),
		surface.Layout{Rows: 16, Cols: 16, PitchU: pitch, PitchV: pitch}, surface.Reflective, nil)
	if err != nil {
		t.Fatal(err)
	}
	d, err := driver.New(spec, s)
	if err != nil {
		t.Fatal(err)
	}
	if err := hw.AddSurface("s0", scene.MountEastWall, d); err != nil {
		t.Fatal(err)
	}
	if err := hw.AddAP(&hwmgr.AccessPoint{ID: "ap0", Pos: apt.AP, FreqHz: 24e9, Budget: rfsim.DefaultBudget(), Antennas: 4}); err != nil {
		t.Fatal(err)
	}
	o, err := orchestrator.New(apt.Scene, hw, orchestrator.Options{
		OptIters: 30, GridStep: 1.5, SensingGridStep: 2.5, SensingBins: 11, SensingSubcarriers: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTranslator()
	tr.DefaultRoom = "room_id"
	b, err := New(tr, o, Inventory{
		Devices: map[string]geom.Vec3{
			"VR_headset": geom.V(2.5, 5.5, 1.2),
			"laptop":     geom.V(3.0, 5.0, 1.0),
			"phone":      geom.V(5.0, 6.0, 1.0),
			"tv":         geom.V(1.5, 6.5, 1.5),
		},
		RoomRegions: map[string]string{
			"room_id":      scene.RegionTargetRoom,
			"meeting_room": scene.RegionTargetRoom,
		},
		EvePos: geom.V(6.0, 4.5, 1.2),
	})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestHandleDemandCreatesTasks(t *testing.T) {
	b := dispatchRig(t)
	calls, tasks, err := b.HandleDemand(context.Background(), "time for some VR gaming here")
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != 3 || len(tasks) != 3 {
		t.Fatalf("calls=%d tasks=%d", len(calls), len(tasks))
	}
	kinds := map[orchestrator.ServiceKind]bool{}
	for _, task := range tasks {
		kinds[task.Kind] = true
	}
	if !kinds[orchestrator.ServiceLink] || !kinds[orchestrator.ServiceSensing] || !kinds[orchestrator.ServiceCoverage] {
		t.Errorf("task kinds: %v", kinds)
	}
	// The link goal carried the translated thresholds.
	for _, task := range tasks {
		if g, ok := task.Goal.(orchestrator.LinkGoal); ok {
			if g.MinSNRdB != 30 || g.MaxLatency != 10*time.Millisecond {
				t.Errorf("link goal: %+v", g)
			}
		}
		if g, ok := task.Goal.(orchestrator.SensingGoal); ok {
			if g.Duration != time.Hour || g.Region != scene.RegionTargetRoom {
				t.Errorf("sensing goal: %+v", g)
			}
		}
	}
	// The created tasks schedule successfully end to end.
	if err := b.O.Reconcile(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, task := range tasks {
		got, _ := b.O.Task(task.ID)
		if got.State != orchestrator.TaskRunning {
			t.Errorf("task %d (%v) state %v err=%v", got.ID, got.Kind, got.State, got.Err)
		}
	}
}

func TestDispatchUnknownDevice(t *testing.T) {
	b := dispatchRig(t)
	_, err := b.Dispatch(context.Background(), Call{Function: FuncEnhanceLink, Args: []Arg{{Value: "toaster"}}})
	if err == nil {
		t.Error("unknown device accepted")
	}
	_, err = b.Dispatch(context.Background(), Call{Function: "fly_to_moon"})
	if err == nil {
		t.Error("unknown function accepted")
	}
	_, err = b.Dispatch(context.Background(), Call{Function: FuncEnableSensing})
	if err == nil {
		t.Error("sensing without a room accepted")
	}
}

func TestSecureLinkDispatch(t *testing.T) {
	b := dispatchRig(t)
	task, err := b.Dispatch(context.Background(), Call{Function: FuncSecureLink, Args: []Arg{{Value: "laptop"}}})
	if err != nil {
		t.Fatal(err)
	}
	g := task.Goal.(orchestrator.SecurityGoal)
	if g.EvePos != b.Inv.EvePos {
		t.Errorf("eve pos = %v", g.EvePos)
	}
}

// --- driver generation ---

const sampleSheet = `
# Acme vendor datasheet extract
model: Acme Surface X1
reference: datasheet v2
band: 23-25 GHz
control: phase
mode: reflective
granularity: column
bits: 2
control_delay: 100us
cost_per_element: 2.5
fixed_cost: 100
efficiency: 0.8
`

func TestGenerateSpec(t *testing.T) {
	spec, err := GenerateSpec(sampleSheet)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Model != "Acme Surface X1" || spec.FreqLowHz != 23e9 || spec.FreqHighHz != 25e9 {
		t.Errorf("spec: %+v", spec)
	}
	if spec.Granularity != surface.ColumnWise || spec.PhaseBits != 2 {
		t.Errorf("constraints: %+v", spec)
	}
	if spec.ControlDelay != 100*time.Microsecond {
		t.Errorf("delay: %v", spec.ControlDelay)
	}
	if spec.Response == nil {
		t.Error("no default response synthesized")
	}
}

func TestGenerateSpecPassive(t *testing.T) {
	spec, err := GenerateSpec("model: Cheapo\nband: 60GHz\ngranularity: fixed\ncost_per_element: 0.001")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Reconfigurable {
		t.Error("fixed granularity should imply passive")
	}
	if spec.FreqLowHz >= spec.FreqHighHz {
		t.Errorf("single-frequency band: %g-%g", spec.FreqLowHz, spec.FreqHighHz)
	}
}

func TestGenerateSpecMixedUnits(t *testing.T) {
	spec, err := GenerateSpec("model: Wide\nband: 900 MHz - 6 GHz")
	if err != nil {
		t.Fatal(err)
	}
	if spec.FreqLowHz != 900e6 || spec.FreqHighHz != 6e9 {
		t.Errorf("band: %g-%g", spec.FreqLowHz, spec.FreqHighHz)
	}
}

func TestGenerateSpecErrors(t *testing.T) {
	cases := []string{
		"model: X\nband: 25-23 GHz",            // inverted band
		"model: X\nband: 24 GHz\nwarp: 9",      // unknown key
		"model: X\nband: 24GHz\nmodel: Y",      // duplicate key
		"model: X\nband: 24 GHz\nbits: many",   // bad number
		"model: X\nband: 24 GHz\ncontrol: uhf", // unknown control
		"just some words",                      // no key
		"model: X",                             // missing band → invalid spec
	}
	for i, c := range cases {
		if _, err := GenerateSpec(c); err == nil {
			t.Errorf("case %d accepted: %q", i, c)
		}
	}
}

func TestGenerateDriverSourceCompiles(t *testing.T) {
	spec, err := GenerateSpec(sampleSheet)
	if err != nil {
		t.Fatal(err)
	}
	src, err := GenerateDriverSource(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(src, `"Acme Surface X1"`) || !strings.Contains(src, "RegisterAcmeSurfaceX1") {
		t.Errorf("source missing identifiers:\n%s", src)
	}
	if !strings.Contains(src, "surface.ColumnWise") {
		t.Error("granularity not rendered")
	}
	// The generated file must parse as valid Go.
	fset := token.NewFileSet()
	if _, err := parser.ParseFile(fset, "gen.go", src, 0); err != nil {
		t.Errorf("generated source does not parse: %v\n%s", err, src)
	}
}

func TestGenerateDriverSourceRejectsInvalid(t *testing.T) {
	if _, err := GenerateDriverSource(driver.Spec{}); err == nil {
		t.Error("invalid spec rendered")
	}
}

func TestIdentFor(t *testing.T) {
	cases := map[string]string{
		"NR-Surface":  "NRSurface",
		"mmWall":      "MmWall",
		"acme x1 pro": "AcmeX1Pro",
	}
	for in, want := range cases {
		if got := identFor(in); got != want {
			t.Errorf("identFor(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestAdditionalProfiles(t *testing.T) {
	tr := NewTranslator()
	cases := map[string]string{
		"invite friends for game night on the console": FuncEnhanceLink,
		"please backup my photos overnight":            FuncEnhanceLink,
		"keep the tags alive with energy harvesting":   FuncInitPowering,
	}
	for utterance, wantFn := range cases {
		calls, err := tr.Translate(utterance)
		if err != nil {
			t.Errorf("%q: %v", utterance, err)
			continue
		}
		found := false
		for _, c := range calls {
			if c.Function == wantFn {
				found = true
			}
		}
		if !found {
			t.Errorf("%q produced %v, want a %s call", utterance, calls, wantFn)
		}
	}
}
