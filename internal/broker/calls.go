// Package broker implements the SurfOS service broker (paper §3.3): the
// base daemon that translates application-level end-user demands into
// surface service invocations, serving existing applications that are not
// surface-aware.
//
// The paper proposes LLMs for the translation step (§3.4, Figure 6). This
// environment is offline, so the broker ships a deterministic intent
// translator: a tokenizer plus a slot-filling grammar over demand
// profiles, producing exactly the service calls of the paper's Figure 6
// for its example utterances. The translator exercises the same
// integration seam an LLM would — SurfOS's typed service API as the
// compilation target — which is the property the paper demonstrates.
package broker

import (
	"fmt"
	"strings"
)

// Arg is one named argument of a service call.
type Arg struct {
	Name  string // empty for positional arguments
	Value any
}

// Call is a rendered service invocation, e.g.
// enhance_link("VR_headset", snr=30.0, latency=10.0).
type Call struct {
	Function string
	Args     []Arg
}

// String renders the call in the paper's Figure 6 syntax.
func (c Call) String() string {
	var b strings.Builder
	b.WriteString(c.Function)
	b.WriteByte('(')
	for i, a := range c.Args {
		if i > 0 {
			b.WriteString(", ")
		}
		if a.Name != "" {
			b.WriteString(a.Name)
			b.WriteByte('=')
		}
		switch v := a.Value.(type) {
		case string:
			fmt.Fprintf(&b, "%q", v)
		case float64:
			fmt.Fprintf(&b, "%.1f", v)
		case int:
			fmt.Fprintf(&b, "%d", v)
		default:
			fmt.Fprintf(&b, "%v", v)
		}
	}
	b.WriteByte(')')
	return b.String()
}

// Arg lookup helpers used by the dispatcher.

// Positional returns the i-th unnamed argument.
func (c Call) Positional(i int) (any, bool) {
	n := 0
	for _, a := range c.Args {
		if a.Name == "" {
			if n == i {
				return a.Value, true
			}
			n++
		}
	}
	return nil, false
}

// Named returns the named argument's value.
func (c Call) Named(name string) (any, bool) {
	for _, a := range c.Args {
		if a.Name == name {
			return a.Value, true
		}
	}
	return nil, false
}

// Service call function names (the paper's service interface).
const (
	FuncEnhanceLink      = "enhance_link"
	FuncEnableSensing    = "enable_sensing"
	FuncOptimizeCoverage = "optimize_coverage"
	FuncInitPowering     = "init_powering"
	FuncSecureLink       = "secure_link"
)
