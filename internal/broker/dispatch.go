package broker

import (
	"context"
	"fmt"
	"time"

	"surfos/internal/geom"
	"surfos/internal/orchestrator"
)

// Inventory resolves endpoint names mentioned in demands ("VR_headset",
// "phone") to positions in the environment, and room identifiers to scene
// regions. A real deployment would feed this from device registration and
// localization; here it is the broker's static knowledge base.
type Inventory struct {
	// Devices maps endpoint names to positions.
	Devices map[string]geom.Vec3
	// RoomRegions maps the translator's room identifiers to scene region
	// names.
	RoomRegions map[string]string
	// EvePos is the assumed eavesdropper location for secure_link calls.
	EvePos geom.Vec3
}

// Broker connects the translator to the orchestrator: it accepts user
// demands, renders them to service calls, and dispatches each call through
// the orchestrator's service API.
type Broker struct {
	T   *Translator
	O   *orchestrator.Orchestrator
	Inv Inventory
}

// New builds a broker.
func New(t *Translator, o *orchestrator.Orchestrator, inv Inventory) (*Broker, error) {
	if t == nil || o == nil {
		return nil, fmt.Errorf("broker: needs a translator and an orchestrator")
	}
	if inv.Devices == nil {
		inv.Devices = map[string]geom.Vec3{}
	}
	if inv.RoomRegions == nil {
		inv.RoomRegions = map[string]string{}
	}
	return &Broker{T: t, O: o, Inv: inv}, nil
}

// HandleDemand translates an utterance and dispatches the resulting calls,
// returning both the calls (for display, as in the paper's Figure 6) and
// the created tasks.
func (b *Broker) HandleDemand(ctx context.Context, utterance string) ([]Call, []*orchestrator.Task, error) {
	calls, err := b.T.Translate(utterance)
	if err != nil {
		return nil, nil, err
	}
	var tasks []*orchestrator.Task
	for _, c := range calls {
		t, err := b.Dispatch(ctx, c)
		if err != nil {
			return calls, tasks, fmt.Errorf("broker: dispatching %s: %w", c, err)
		}
		tasks = append(tasks, t)
	}
	return calls, tasks, nil
}

// Dispatch invokes one service call on the orchestrator.
func (b *Broker) Dispatch(ctx context.Context, c Call) (*orchestrator.Task, error) {
	switch c.Function {
	case FuncEnhanceLink:
		dev, _ := c.Positional(0)
		name, _ := dev.(string)
		pos, err := b.devicePos(name)
		if err != nil {
			return nil, err
		}
		goal := orchestrator.LinkGoal{Endpoint: name, Pos: pos}
		if v, ok := c.Named("snr"); ok {
			goal.MinSNRdB = toF(v)
		}
		if v, ok := c.Named("latency"); ok {
			goal.MaxLatency = time.Duration(toF(v) * float64(time.Millisecond))
		}
		return b.O.EnhanceLink(ctx, goal, 1)

	case FuncEnableSensing:
		room, _ := c.Positional(0)
		region, err := b.region(room)
		if err != nil {
			return nil, err
		}
		goal := orchestrator.SensingGoal{Region: region, Type: "tracking"}
		if v, ok := c.Named("type"); ok {
			goal.Type, _ = v.(string)
		}
		if v, ok := c.Named("duration"); ok {
			goal.Duration = time.Duration(toF(v) * float64(time.Second))
		}
		return b.O.EnableSensing(ctx, goal, 1)

	case FuncOptimizeCoverage:
		room, _ := c.Positional(0)
		region, err := b.region(room)
		if err != nil {
			return nil, err
		}
		goal := orchestrator.CoverageGoal{Region: region}
		if v, ok := c.Named("median_snr"); ok {
			goal.MedianSNRdB = toF(v)
		}
		return b.O.OptimizeCoverage(ctx, goal, 1)

	case FuncInitPowering:
		dev, _ := c.Positional(0)
		name, _ := dev.(string)
		pos, err := b.devicePos(name)
		if err != nil {
			return nil, err
		}
		goal := orchestrator.PowerGoal{Device: name, Pos: pos}
		if v, ok := c.Named("duration"); ok {
			goal.Duration = time.Duration(toF(v) * float64(time.Second))
		}
		return b.O.InitPowering(ctx, goal, 1)

	case FuncSecureLink:
		dev, _ := c.Positional(0)
		name, _ := dev.(string)
		pos, err := b.devicePos(name)
		if err != nil {
			return nil, err
		}
		goal := orchestrator.SecurityGoal{Endpoint: name, UserPos: pos, EvePos: b.Inv.EvePos}
		return b.O.SecureLink(ctx, goal, 1)
	}
	return nil, fmt.Errorf("%w %q", ErrUnknownFunction, c.Function)
}

func (b *Broker) devicePos(name string) (geom.Vec3, error) {
	if name == "" {
		return geom.Vec3{}, fmt.Errorf("%w: missing a device name", ErrBadCall)
	}
	pos, ok := b.Inv.Devices[name]
	if !ok {
		return geom.Vec3{}, fmt.Errorf("%w %q", ErrUnknownDevice, name)
	}
	return pos, nil
}

func (b *Broker) region(room any) (string, error) {
	name, _ := room.(string)
	if name == "" {
		return "", fmt.Errorf("%w: missing a room", ErrBadCall)
	}
	if r, ok := b.Inv.RoomRegions[name]; ok {
		return r, nil
	}
	return name, nil
}

func toF(v any) float64 {
	switch x := v.(type) {
	case float64:
		return x
	case int:
		return float64(x)
	}
	return 0
}
