package broker

import (
	"fmt"
	"strconv"
	"strings"
	"text/template"
	"time"

	"surfos/internal/driver"
	"surfos/internal/em"
	"surfos/internal/surface"
)

// GenerateSpec parses a datasheet-style specification sheet into a driver
// spec — the paper's §3.4 "hardware driver generation" path, where a model
// (an LLM in the paper, a deterministic parser here) extracts a
// machine-readable specification from vendor documentation. The sheet is a
// sequence of "key: value" lines:
//
//	model: AcmeSurface
//	reference: datasheet v2
//	band: 23-25 GHz
//	control: phase
//	mode: reflective
//	granularity: column
//	bits: 2
//	control_delay: 100us
//	cost_per_element: 2.5
//	fixed_cost: 100
//	efficiency: 0.8
//
// Unknown keys are rejected so typos surface immediately.
func GenerateSpec(sheet string) (driver.Spec, error) {
	spec := driver.Spec{
		Reconfigurable:    true,
		Granularity:       surface.ElementWise,
		Control:           surface.Phase,
		OpMode:            surface.Reflective,
		ElementEfficiency: 0.8,
	}
	seen := map[string]bool{}
	for ln, raw := range strings.Split(sheet, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		key, val, ok := strings.Cut(line, ":")
		if !ok {
			return driver.Spec{}, fmt.Errorf("broker: spec sheet line %d: no key: %q", ln+1, line)
		}
		key = strings.ToLower(strings.TrimSpace(key))
		val = strings.TrimSpace(val)
		if seen[key] {
			return driver.Spec{}, fmt.Errorf("broker: spec sheet line %d: duplicate key %q", ln+1, key)
		}
		seen[key] = true
		if err := applySpecField(&spec, key, val); err != nil {
			return driver.Spec{}, fmt.Errorf("broker: spec sheet line %d: %w", ln+1, err)
		}
	}
	if spec.Response == nil && spec.FreqLowHz > 0 {
		// Default in-band response when the sheet doesn't give one.
		spec.Response = em.MustMaterial(spec.Model+"-response",
			em.MaterialPoint{FreqHz: spec.FreqLowHz / 4, Reflection: 0.05, Transmission: 0.95},
			em.MaterialPoint{FreqHz: spec.FreqLowHz, Reflection: 0.6, Transmission: 0.3},
			em.MaterialPoint{FreqHz: spec.FreqHighHz, Reflection: 0.6, Transmission: 0.3},
		)
	}
	if err := spec.Validate(); err != nil {
		return driver.Spec{}, err
	}
	return spec, nil
}

func applySpecField(spec *driver.Spec, key, val string) error {
	switch key {
	case "model":
		spec.Model = val
	case "reference":
		spec.Reference = val
	case "band":
		lo, hi, err := parseBand(val)
		if err != nil {
			return err
		}
		spec.FreqLowHz, spec.FreqHighHz = lo, hi
	case "control":
		switch strings.ToLower(val) {
		case "phase":
			spec.Control = surface.Phase
		case "amplitude":
			spec.Control = surface.Amplitude
		case "polarization":
			spec.Control = surface.Polarization
		case "frequency":
			spec.Control = surface.Frequency
		default:
			return fmt.Errorf("unknown control property %q", val)
		}
	case "mode":
		switch strings.ToLower(val) {
		case "reflective", "r":
			spec.OpMode = surface.Reflective
		case "transmissive", "t":
			spec.OpMode = surface.Transmissive
		case "transflective", "t&r", "tr":
			spec.OpMode = surface.Transflective
		default:
			return fmt.Errorf("unknown mode %q", val)
		}
	case "granularity":
		switch strings.ToLower(val) {
		case "element", "element-wise":
			spec.Granularity = surface.ElementWise
		case "column", "column-wise":
			spec.Granularity = surface.ColumnWise
		case "row", "row-wise":
			spec.Granularity = surface.RowWise
		case "fixed", "passive":
			spec.Granularity = surface.FixedPattern
			spec.Reconfigurable = false
		default:
			return fmt.Errorf("unknown granularity %q", val)
		}
	case "bits":
		n, err := strconv.Atoi(val)
		if err != nil {
			return fmt.Errorf("bits: %w", err)
		}
		spec.PhaseBits = n
	case "control_delay":
		d, err := time.ParseDuration(val)
		if err != nil {
			return fmt.Errorf("control_delay: %w", err)
		}
		spec.ControlDelay = d
	case "cost_per_element":
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return fmt.Errorf("cost_per_element: %w", err)
		}
		spec.CostPerElementUSD = f
	case "fixed_cost":
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return fmt.Errorf("fixed_cost: %w", err)
		}
		spec.FixedCostUSD = f
	case "efficiency":
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return fmt.Errorf("efficiency: %w", err)
		}
		spec.ElementEfficiency = f
	default:
		return fmt.Errorf("unknown key %q", key)
	}
	return nil
}

// parseBand parses "23-25 GHz", "2.4GHz", "900 MHz - 6 GHz".
func parseBand(s string) (lo, hi float64, err error) {
	parts := strings.Split(s, "-")
	if len(parts) == 1 {
		f, err := parseFreq(parts[0])
		if err != nil {
			return 0, 0, err
		}
		// Single-frequency sheets get a ±2% band.
		return f * 0.98, f * 1.02, nil
	}
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("band %q: want LOW-HIGH", s)
	}
	lo, err = parseFreq(parts[0])
	if err != nil {
		return 0, 0, err
	}
	hi, err = parseFreq(parts[1])
	if err != nil {
		return 0, 0, err
	}
	// "23-25 GHz": the low part may have no unit; inherit the high part's
	// scale when the bare number would be below 1 kHz.
	if lo < 1e3 && hi >= 1e6 {
		lo *= hi / func() float64 {
			v, _ := strconv.ParseFloat(strings.TrimSpace(trimUnit(parts[1])), 64)
			return v
		}()
	}
	if lo > hi {
		return 0, 0, fmt.Errorf("band %q: low above high", s)
	}
	return lo, hi, nil
}

func trimUnit(s string) string {
	s = strings.TrimSpace(strings.ToLower(s))
	for _, u := range []string{"ghz", "mhz", "khz", "hz"} {
		s = strings.TrimSuffix(s, u)
	}
	return strings.TrimSpace(s)
}

func parseFreq(s string) (float64, error) {
	t := strings.TrimSpace(strings.ToLower(s))
	mult := 1.0
	switch {
	case strings.HasSuffix(t, "ghz"):
		mult = 1e9
	case strings.HasSuffix(t, "mhz"):
		mult = 1e6
	case strings.HasSuffix(t, "khz"):
		mult = 1e3
	case strings.HasSuffix(t, "hz"):
		mult = 1
	default:
		// bare number: caller may rescale
		v, err := strconv.ParseFloat(t, 64)
		return v, err
	}
	v, err := strconv.ParseFloat(trimUnit(t), 64)
	if err != nil {
		return 0, fmt.Errorf("frequency %q: %w", s, err)
	}
	return v * mult, nil
}

// driverTemplate renders a registration source file for a generated spec.
var driverTemplate = template.Must(template.New("driver").Parse(`// Code generated by the SurfOS driver generator; edit the spec sheet instead.

package drivers

import (
	"time"

	"surfos/internal/driver"
	"surfos/internal/surface"
)

// Register{{.Ident}} adds the {{.Model}} design to the driver catalog.
func Register{{.Ident}}() {
	driver.Register(driver.Spec{
		Model:             {{printf "%q" .Model}},
		Reference:         {{printf "%q" .Reference}},
		FreqLowHz:         {{.FreqLowHz}},
		FreqHighHz:        {{.FreqHighHz}},
		Control:           surface.{{.ControlIdent}},
		OpMode:            {{.OpModeExpr}},
		Granularity:       surface.{{.GranularityIdent}},
		Reconfigurable:    {{.Reconfigurable}},
		PhaseBits:         {{.PhaseBits}},
		ControlDelay:      {{.ControlDelayNs}} * time.Nanosecond,
		CostPerElementUSD: {{.CostPerElementUSD}},
		FixedCostUSD:      {{.FixedCostUSD}},
		ElementEfficiency: {{.ElementEfficiency}},
	})
}
`))

// GenerateDriverSource renders Go source registering the spec — the second
// half of the paper's automation story ("LLMs may further synthesize the
// driver code based on the specifications generated").
func GenerateDriverSource(spec driver.Spec) (string, error) {
	if err := spec.Validate(); err != nil {
		return "", err
	}
	ident := identFor(spec.Model)
	data := map[string]any{
		"Ident":             ident,
		"Model":             spec.Model,
		"Reference":         spec.Reference,
		"FreqLowHz":         fmt.Sprintf("%g", spec.FreqLowHz),
		"FreqHighHz":        fmt.Sprintf("%g", spec.FreqHighHz),
		"ControlIdent":      controlIdent(spec.Control),
		"OpModeExpr":        opModeExpr(spec.OpMode),
		"GranularityIdent":  granularityIdent(spec.Granularity),
		"Reconfigurable":    spec.Reconfigurable,
		"PhaseBits":         spec.PhaseBits,
		"ControlDelayNs":    spec.ControlDelay.Nanoseconds(),
		"CostPerElementUSD": spec.CostPerElementUSD,
		"FixedCostUSD":      spec.FixedCostUSD,
		"ElementEfficiency": spec.ElementEfficiency,
	}
	var b strings.Builder
	if err := driverTemplate.Execute(&b, data); err != nil {
		return "", err
	}
	return b.String(), nil
}

func identFor(model string) string {
	var b strings.Builder
	up := true
	for _, r := range model {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			if up {
				b.WriteString(strings.ToUpper(string(r)))
				up = false
			} else {
				b.WriteRune(r)
			}
		default:
			up = true
		}
	}
	return b.String()
}

func controlIdent(c surface.ControlProperty) string {
	switch c {
	case surface.Amplitude:
		return "Amplitude"
	case surface.Polarization:
		return "Polarization"
	case surface.Frequency:
		return "Frequency"
	case surface.Impedance:
		return "Impedance"
	case surface.Diffraction:
		return "Diffraction"
	}
	return "Phase"
}

func opModeExpr(m surface.OpMode) string {
	switch m {
	case surface.Transmissive:
		return "surface.Transmissive"
	case surface.Transflective:
		return "surface.Transflective"
	}
	return "surface.Reflective"
}

func granularityIdent(g surface.Granularity) string {
	switch g {
	case surface.ColumnWise:
		return "ColumnWise"
	case surface.RowWise:
		return "RowWise"
	case surface.FixedPattern:
		return "FixedPattern"
	}
	return "ElementWise"
}
