package broker

import "errors"

// Sentinel errors for the service broker, wrapped with detail at call
// sites so callers categorize failures with errors.Is.
var (
	// ErrNoProfileMatch reports a demand utterance no profile understood.
	ErrNoProfileMatch = errors.New("broker: no demand profile matches")
	// ErrUnknownFunction reports a call naming no registered service
	// function.
	ErrUnknownFunction = errors.New("broker: unknown service function")
	// ErrUnknownDevice reports a call referencing an unregistered device.
	ErrUnknownDevice = errors.New("broker: unknown device")
	// ErrBadCall reports a call missing a required argument.
	ErrBadCall = errors.New("broker: malformed call")
)
