package broker

import (
	"fmt"
	"sort"
	"strings"
)

// Profile is one demand template: when an utterance matches its keywords,
// the profile emits service calls. Profiles encode the application
// knowledge the paper assigns to the demand-translation layer (VR needs
// high throughput and low latency, smart home needs sensing, sensitive
// transfers need security — §2.1 "User applications").
type Profile struct {
	Name string
	// Keywords that trigger this profile; an utterance matches when any
	// keyword appears (after folding). Multi-word keywords match as
	// substrings of the folded utterance.
	Keywords []string
	// Build emits the profile's calls for a resolved context.
	Build func(ctx *Context) []Call
}

// Context carries resolved slots for call construction.
type Context struct {
	// Room is the location the demand applies to.
	Room string
	// Matched collects the profile names that fired (for explanations).
	Matched []string
}

// Translator converts natural-language demands into service calls.
type Translator struct {
	// DefaultRoom is used when the utterance doesn't name a room
	// ("this room" and friends resolve here).
	DefaultRoom string
	// Rooms maps room aliases ("meeting room") to region identifiers.
	Rooms map[string]string

	profiles []Profile
}

// NewTranslator builds a translator with the default profile library.
func NewTranslator() *Translator {
	t := &Translator{
		DefaultRoom: "room_id",
		Rooms:       map[string]string{},
	}
	t.profiles = defaultProfiles()
	return t
}

// AddProfile registers an additional demand profile.
func (t *Translator) AddProfile(p Profile) { t.profiles = append(t.profiles, p) }

// Profiles returns the registered profile names, sorted.
func (t *Translator) Profiles() []string {
	out := make([]string, len(t.profiles))
	for i, p := range t.profiles {
		out[i] = p.Name
	}
	sort.Strings(out)
	return out
}

// fold normalizes an utterance for matching.
func fold(s string) string {
	s = strings.ToLower(s)
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == ' ':
			b.WriteRune(r)
		default:
			b.WriteByte(' ')
		}
	}
	return " " + strings.Join(strings.Fields(b.String()), " ") + " "
}

// Translate maps an utterance to service calls. Multiple profiles can fire
// for compound demands ("online meeting while charging my phone");
// duplicate calls are removed, first occurrence wins.
func (t *Translator) Translate(utterance string) ([]Call, error) {
	folded := fold(utterance)
	ctx := &Context{Room: t.resolveRoom(folded)}

	var calls []Call
	for _, p := range t.profiles {
		if !matches(folded, p.Keywords) {
			continue
		}
		ctx.Matched = append(ctx.Matched, p.Name)
		calls = append(calls, p.Build(ctx)...)
	}
	if len(calls) == 0 {
		return nil, fmt.Errorf("%w: %q", ErrNoProfileMatch, utterance)
	}
	return dedupe(calls), nil
}

func matches(folded string, keywords []string) bool {
	for _, k := range keywords {
		if strings.Contains(folded, " "+k+" ") {
			return true
		}
	}
	return false
}

// resolveRoom finds a named room alias in the utterance, falling back to
// the default.
func (t *Translator) resolveRoom(folded string) string {
	// Longest alias first so "meeting room" beats "room".
	aliases := make([]string, 0, len(t.Rooms))
	for a := range t.Rooms {
		aliases = append(aliases, a)
	}
	sort.Slice(aliases, func(i, j int) bool { return len(aliases[i]) > len(aliases[j]) })
	for _, a := range aliases {
		if strings.Contains(folded, " "+fold(a)[1:len(fold(a))-1]+" ") {
			return t.Rooms[a]
		}
	}
	// "meeting" implies the meeting room when one is registered, matching
	// the paper's second example.
	if strings.Contains(folded, " meeting ") {
		if r, ok := t.Rooms["meeting room"]; ok {
			return r
		}
		return "meeting_room"
	}
	return t.DefaultRoom
}

func dedupe(calls []Call) []Call {
	seen := make(map[string]bool, len(calls))
	out := calls[:0]
	for _, c := range calls {
		key := c.String()
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, c)
	}
	return out
}

// defaultProfiles is the demand library; the first two reproduce the
// paper's Figure 6 examples verbatim.
func defaultProfiles() []Profile {
	return []Profile{
		{
			Name:     "vr-gaming",
			Keywords: []string{"vr", "virtual reality", "vr gaming"},
			Build: func(ctx *Context) []Call {
				return []Call{
					{Function: FuncEnhanceLink, Args: []Arg{
						{Value: "VR_headset"}, {Name: "snr", Value: 30.0}, {Name: "latency", Value: 10.0},
					}},
					{Function: FuncEnableSensing, Args: []Arg{
						{Value: ctx.Room}, {Name: "type", Value: "tracking"}, {Name: "duration", Value: 3600},
					}},
					{Function: FuncOptimizeCoverage, Args: []Arg{
						{Value: ctx.Room}, {Name: "median_snr", Value: 25},
					}},
				}
			},
		},
		{
			Name:     "online-meeting",
			Keywords: []string{"meeting", "video call", "conference"},
			Build: func(ctx *Context) []Call {
				return []Call{
					{Function: FuncEnhanceLink, Args: []Arg{
						{Value: "laptop"}, {Name: "snr", Value: 20.0}, {Name: "latency", Value: 50.0},
					}},
					{Function: FuncEnableSensing, Args: []Arg{
						{Value: ctx.Room}, {Name: "type", Value: "tracking"}, {Name: "duration", Value: 3600},
					}},
				}
			},
		},
		{
			Name:     "charging",
			Keywords: []string{"charge", "charging", "battery", "power my"},
			Build: func(ctx *Context) []Call {
				return []Call{
					{Function: FuncInitPowering, Args: []Arg{
						{Value: "phone"}, {Name: "duration", Value: 3600},
					}},
				}
			},
		},
		{
			Name:     "video-streaming",
			Keywords: []string{"stream", "streaming", "movie", "watch a film"},
			Build: func(ctx *Context) []Call {
				return []Call{
					{Function: FuncEnhanceLink, Args: []Arg{
						{Value: "tv"}, {Name: "snr", Value: 25.0}, {Name: "latency", Value: 100.0},
					}},
				}
			},
		},
		{
			Name:     "coverage-complaint",
			Keywords: []string{"slow wifi", "bad signal", "dead zone", "no coverage", "poor connection"},
			Build: func(ctx *Context) []Call {
				return []Call{
					{Function: FuncOptimizeCoverage, Args: []Arg{
						{Value: ctx.Room}, {Name: "median_snr", Value: 25},
					}},
				}
			},
		},
		{
			Name:     "motion-sensing",
			Keywords: []string{"motion", "intruder", "fall detection", "track people", "occupancy"},
			Build: func(ctx *Context) []Call {
				return []Call{
					{Function: FuncEnableSensing, Args: []Arg{
						{Value: ctx.Room}, {Name: "type", Value: "motion"}, {Name: "duration", Value: 3600},
					}},
				}
			},
		},
		{
			Name:     "console-gaming",
			Keywords: []string{"gaming session", "game night", "play games", "console"},
			Build: func(ctx *Context) []Call {
				return []Call{
					{Function: FuncEnhanceLink, Args: []Arg{
						{Value: "console"}, {Name: "snr", Value: 25.0}, {Name: "latency", Value: 20.0},
					}},
				}
			},
		},
		{
			Name:     "bulk-transfer",
			Keywords: []string{"backup", "file transfer", "sync my", "upload everything"},
			Build: func(ctx *Context) []Call {
				return []Call{
					{Function: FuncEnhanceLink, Args: []Arg{
						{Value: "laptop"}, {Name: "snr", Value: 28.0}, {Name: "latency", Value: 500.0},
					}},
				}
			},
		},
		{
			Name:     "iot-powering",
			Keywords: []string{"sensor battery", "power the sensors", "keep the tags alive", "energy harvesting"},
			Build: func(ctx *Context) []Call {
				return []Call{
					{Function: FuncInitPowering, Args: []Arg{
						{Value: "sensor"}, {Name: "duration", Value: 86400},
					}},
				}
			},
		},
		{
			Name:     "secure-transfer",
			Keywords: []string{"secure", "sensitive", "private", "confidential"},
			Build: func(ctx *Context) []Call {
				return []Call{
					{Function: FuncSecureLink, Args: []Arg{
						{Value: "laptop"}, {Name: "room", Value: ctx.Room},
					}},
				}
			},
		},
	}
}
