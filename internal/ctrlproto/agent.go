package ctrlproto

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"surfos/internal/driver"
	"surfos/internal/surface"
)

// Agent is the device-side endpoint of the control protocol: it exposes
// one surface driver to the control plane over TCP, the metasurface
// analogue of a switch agent. An Agent can serve multiple controller
// connections (e.g. a live controller plus a diagnostic CLI).
type Agent struct {
	DeviceID string
	Mount    string
	Drv      *driver.Driver
	// Logf receives diagnostic messages; nil silences them.
	Logf func(format string, args ...any)

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]*sync.Mutex // per-connection write locks
	closed   bool

	// dedup caches replies by idempotency token so a retried or
	// wire-duplicated mutating request applies exactly once: the duplicate
	// gets the original reply (re-correlated), the driver is not touched
	// again. Bounded FIFO; see dedupCap.
	dmu        sync.Mutex
	dedup      map[uint64]Frame
	dedupOrder []uint64
}

// dedupCap bounds the reply cache; retries arrive close to the original,
// so a small window suffices.
const dedupCap = 256

// dedupGet returns the cached reply for a request ID, if any.
func (a *Agent) dedupGet(reqID uint64) (Frame, bool) {
	if reqID == 0 {
		return Frame{}, false
	}
	a.dmu.Lock()
	defer a.dmu.Unlock()
	f, ok := a.dedup[reqID]
	return f, ok
}

// dedupPut records the reply for a request ID, evicting oldest-first.
func (a *Agent) dedupPut(reqID uint64, reply Frame) {
	if reqID == 0 {
		return
	}
	a.dmu.Lock()
	defer a.dmu.Unlock()
	if a.dedup == nil {
		a.dedup = make(map[uint64]Frame)
	}
	if _, exists := a.dedup[reqID]; !exists {
		a.dedupOrder = append(a.dedupOrder, reqID)
		if len(a.dedupOrder) > dedupCap {
			delete(a.dedup, a.dedupOrder[0])
			a.dedupOrder = a.dedupOrder[1:]
		}
	}
	a.dedup[reqID] = reply
}

// NewAgent wraps a driver for serving.
func NewAgent(deviceID, mount string, drv *driver.Driver) (*Agent, error) {
	if deviceID == "" || drv == nil {
		return nil, fmt.Errorf("ctrlproto: agent needs a device id and driver")
	}
	return &Agent{DeviceID: deviceID, Mount: mount, Drv: drv, conns: make(map[net.Conn]*sync.Mutex)}, nil
}

func (a *Agent) logf(format string, args ...any) {
	if a.Logf != nil {
		a.Logf(format, args...)
	}
}

// Listen starts serving on addr (e.g. "127.0.0.1:0") and returns the bound
// address. Serving continues until Close.
func (a *Agent) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		ln.Close()
		return nil, errors.New("ctrlproto: agent closed")
	}
	a.listener = ln
	a.mu.Unlock()
	go a.acceptLoop(ln)
	return ln.Addr(), nil
}

func (a *Agent) acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		a.mu.Lock()
		if a.closed {
			a.mu.Unlock()
			conn.Close()
			return
		}
		a.conns[conn] = &sync.Mutex{}
		a.mu.Unlock()
		go a.serveConn(conn)
	}
}

// Close stops the agent and drops all connections.
func (a *Agent) Close() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return nil
	}
	a.closed = true
	if a.listener != nil {
		a.listener.Close()
	}
	for c := range a.conns {
		c.Close()
	}
	return nil
}

// ServeConn handles one already-established connection synchronously until
// it fails or the peer disconnects; useful for tests over net.Pipe.
func (a *Agent) ServeConn(conn net.Conn) {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		conn.Close()
		return
	}
	a.conns[conn] = &sync.Mutex{}
	a.mu.Unlock()
	a.serveConn(conn)
}

func (a *Agent) serveConn(conn net.Conn) {
	defer func() {
		conn.Close()
		a.mu.Lock()
		delete(a.conns, conn)
		a.mu.Unlock()
	}()
	a.mu.Lock()
	wmu := a.conns[conn]
	a.mu.Unlock()
	if wmu == nil {
		return
	}
	for {
		f, err := ReadFrame(conn)
		if err != nil {
			if err != io.EOF && !errors.Is(err, net.ErrClosed) {
				a.logf("agent %s: read: %v", a.DeviceID, err)
			}
			return
		}
		reply := a.handle(f)
		wmu.Lock()
		err = WriteFrame(conn, reply)
		wmu.Unlock()
		if err != nil {
			a.logf("agent %s: write: %v", a.DeviceID, err)
			return
		}
	}
}

// PushFeedback broadcasts an unsolicited endpoint report (correlation 0)
// to every connected controller — the agent-side feedback path of the
// paper's control/data decoupling.
func (a *Agent) PushFeedback(m FeedbackMsg) error {
	f := Frame{Type: MsgFeedback, Corr: 0, Payload: m.Encode()}
	a.mu.Lock()
	conns := make(map[net.Conn]*sync.Mutex, len(a.conns))
	for c, l := range a.conns {
		conns[c] = l
	}
	closed := a.closed
	a.mu.Unlock()
	if closed {
		return errors.New("ctrlproto: agent closed")
	}
	if len(conns) == 0 {
		return errors.New("ctrlproto: no controller connected")
	}
	var firstErr error
	for c, l := range conns {
		l.Lock()
		err := WriteFrame(c, f)
		l.Unlock()
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// handle dispatches one request frame and builds the reply.
func (a *Agent) handle(f Frame) Frame {
	fail := func(err error) Frame { return errorFrame(f.Corr, err) }
	ack := Frame{Type: MsgAck, Corr: f.Corr}

	switch f.Type {
	case MsgHello:
		return Frame{Type: MsgHelloReply, Corr: f.Corr, Payload: Hello{
			DeviceID: a.DeviceID, Model: a.Drv.Spec().Model, Mount: a.Mount,
		}.Encode()}

	case MsgGetSpec:
		spec := a.Drv.Spec()
		layout := a.Drv.Surface().Layout
		return Frame{Type: MsgSpecReply, Corr: f.Corr, Payload: SpecReply{
			Model:             spec.Model,
			FreqLowHz:         spec.FreqLowHz,
			FreqHighHz:        spec.FreqHighHz,
			Control:           spec.Control,
			OpMode:            spec.OpMode,
			Granularity:       spec.Granularity,
			Reconfigurable:    spec.Reconfigurable,
			PhaseBits:         uint8(spec.PhaseBits),
			ControlDelayNanos: uint64(spec.ControlDelay.Nanoseconds()),
			Rows:              uint32(layout.Rows),
			Cols:              uint32(layout.Cols),
			CostUSD:           a.Drv.CostUSD(),
		}.Encode()}

	case MsgShiftPhase:
		m, err := DecodeConfigMsg(f.Payload)
		if err != nil {
			return fail(err)
		}
		if r, ok := a.dedupGet(m.ReqID); ok {
			r.Corr = f.Corr
			return r
		}
		reply := ack
		if err := a.Drv.ShiftPhase(m.Config()); err != nil {
			reply = fail(err)
		}
		a.dedupPut(m.ReqID, reply)
		return reply

	case MsgSetAmplitude:
		m, err := DecodeConfigMsg(f.Payload)
		if err != nil {
			return fail(err)
		}
		if r, ok := a.dedupGet(m.ReqID); ok {
			r.Corr = f.Corr
			return r
		}
		reply := ack
		if err := a.Drv.SetAmplitude(m.Config()); err != nil {
			reply = fail(err)
		}
		a.dedupPut(m.ReqID, reply)
		return reply

	case MsgStoreCodebook:
		m, err := DecodeCodebookMsg(f.Payload)
		if err != nil {
			return fail(err)
		}
		if r, ok := a.dedupGet(m.ReqID); ok {
			r.Corr = f.Corr
			return r
		}
		cfgs := make([]surface.Config, len(m.Entries))
		for i, vals := range m.Entries {
			cfgs[i] = surface.Config{Property: m.Property, Values: vals}
		}
		reply := ack
		if err := a.Drv.StoreCodebook(m.Labels, cfgs); err != nil {
			reply = fail(err)
		}
		a.dedupPut(m.ReqID, reply)
		return reply

	case MsgSelect:
		m, err := DecodeSelectMsg(f.Payload)
		if err != nil {
			return fail(err)
		}
		if r, ok := a.dedupGet(m.ReqID); ok {
			r.Corr = f.Corr
			return r
		}
		reply := ack
		if err := a.Drv.Select(int(m.Index)); err != nil {
			reply = fail(err)
		}
		a.dedupPut(m.ReqID, reply)
		return reply

	case MsgActiveQuery:
		cfg, label, ok := a.Drv.Active()
		return Frame{Type: MsgActiveReply, Corr: f.Corr, Payload: ActiveReply{
			HasActive: ok, Label: label, Property: cfg.Property, Values: cfg.Values,
		}.Encode()}

	default:
		return fail(fmt.Errorf("ctrlproto: agent cannot handle %v", f.Type))
	}
}
