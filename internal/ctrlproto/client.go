package ctrlproto

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"surfos/internal/surface"
)

// Client is the controller-side endpoint: one connection to a surface
// agent with pipelined request/reply correlation and an optional feedback
// stream. Safe for concurrent use.
type Client struct {
	conn net.Conn

	mu      sync.Mutex
	nextID  uint32
	pending map[uint32]chan Frame
	closed  bool
	readErr error

	// Feedback receives unsolicited agent pushes (correlation 0). Buffered;
	// overflow drops.
	Feedback chan FeedbackMsg
	// Timeout bounds each request round trip (default 5s).
	Timeout time.Duration
}

// Dial connects to an agent at addr.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection (e.g. one side of net.Pipe).
func NewClient(conn net.Conn) *Client {
	c := &Client{
		conn:     conn,
		nextID:   1,
		pending:  make(map[uint32]chan Frame),
		Feedback: make(chan FeedbackMsg, 64),
		Timeout:  5 * time.Second,
	}
	go c.readLoop()
	return c
}

// Close tears down the connection; in-flight requests fail.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	return c.conn.Close()
}

func (c *Client) readLoop() {
	for {
		f, err := ReadFrame(c.conn)
		if err != nil {
			c.mu.Lock()
			c.readErr = err
			for id, ch := range c.pending {
				close(ch)
				delete(c.pending, id)
			}
			c.closed = true
			c.mu.Unlock()
			c.conn.Close()
			return
		}
		if f.Corr == 0 && f.Type == MsgFeedback {
			if m, err := DecodeFeedbackMsg(f.Payload); err == nil {
				select {
				case c.Feedback <- m:
				default: // drop stale feedback
				}
			}
			continue
		}
		c.mu.Lock()
		ch, ok := c.pending[f.Corr]
		if ok {
			delete(c.pending, f.Corr)
		}
		c.mu.Unlock()
		if ok {
			ch <- f
			close(ch)
		}
	}
}

// roundTrip sends a request and waits for the correlated reply, the
// client's Timeout, ctx cancellation, or the ctx deadline — whichever is
// earliest. The wait timer is a stopped time.NewTimer rather than
// time.After, so a reply arriving first reclaims the timer immediately
// instead of leaking it until expiry (one leaked timer per request adds
// up fast on a pipelined connection).
func (c *Client) roundTrip(ctx context.Context, t MsgType, payload []byte) (Frame, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return Frame{}, err
	}
	c.mu.Lock()
	if c.closed {
		err := c.readErr
		c.mu.Unlock()
		if err == nil {
			err = errors.New("ctrlproto: client closed")
		}
		return Frame{}, err
	}
	id := c.nextID
	c.nextID++
	if c.nextID == 0 { // correlation 0 is reserved for pushes
		c.nextID = 1
	}
	ch := make(chan Frame, 1)
	c.pending[id] = ch
	c.mu.Unlock()

	if err := WriteFrame(c.conn, Frame{Type: t, Corr: id, Payload: payload}); err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return Frame{}, err
	}

	timeout := c.Timeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	// Honor the ctx deadline when it lands before the client timeout.
	if dl, ok := ctx.Deadline(); ok {
		if until := time.Until(dl); until < timeout {
			timeout = until
		}
	}
	if timeout <= 0 {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return Frame{}, fmt.Errorf("ctrlproto: deadline expired awaiting reply to %v: %w", t, context.DeadlineExceeded)
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case f, ok := <-ch:
		if !ok {
			return Frame{}, fmt.Errorf("ctrlproto: connection lost awaiting %v", t)
		}
		if f.Type == MsgError {
			m, err := DecodeErrorMsg(f.Payload)
			if err != nil {
				return Frame{}, err
			}
			return Frame{}, fmt.Errorf("ctrlproto: agent error: %s", m.Text)
		}
		return f, nil
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return Frame{}, ctx.Err()
	case <-timer.C:
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return Frame{}, fmt.Errorf("ctrlproto: timeout awaiting reply to %v", t)
	}
}

// Hello identifies the remote device.
func (c *Client) Hello(ctx context.Context) (Hello, error) {
	f, err := c.roundTrip(ctx, MsgHello, nil)
	if err != nil {
		return Hello{}, err
	}
	if f.Type != MsgHelloReply {
		return Hello{}, fmt.Errorf("ctrlproto: unexpected %v to hello", f.Type)
	}
	return DecodeHello(f.Payload)
}

// GetSpec fetches the remote device's hardware specification.
func (c *Client) GetSpec(ctx context.Context) (SpecReply, error) {
	f, err := c.roundTrip(ctx, MsgGetSpec, nil)
	if err != nil {
		return SpecReply{}, err
	}
	if f.Type != MsgSpecReply {
		return SpecReply{}, fmt.Errorf("ctrlproto: unexpected %v to get-spec", f.Type)
	}
	return DecodeSpecReply(f.Payload)
}

// ShiftPhase programs a phase configuration on the remote device.
func (c *Client) ShiftPhase(ctx context.Context, cfg surface.Config) error {
	_, err := c.roundTrip(ctx, MsgShiftPhase, ConfigMsg{Property: cfg.Property, Values: cfg.Values}.Encode())
	return err
}

// SetAmplitude programs an amplitude configuration on the remote device.
func (c *Client) SetAmplitude(ctx context.Context, cfg surface.Config) error {
	_, err := c.roundTrip(ctx, MsgSetAmplitude, ConfigMsg{Property: cfg.Property, Values: cfg.Values}.Encode())
	return err
}

// StoreCodebook pushes a configuration codebook.
func (c *Client) StoreCodebook(ctx context.Context, labels []string, cfgs []surface.Config) error {
	if len(cfgs) == 0 {
		return errors.New("ctrlproto: empty codebook")
	}
	m := CodebookMsg{Property: cfgs[0].Property, Labels: labels}
	for _, cfg := range cfgs {
		m.Entries = append(m.Entries, cfg.Values)
	}
	_, err := c.roundTrip(ctx, MsgStoreCodebook, m.Encode())
	return err
}

// Select activates a stored codebook entry.
func (c *Client) Select(ctx context.Context, i int) error {
	_, err := c.roundTrip(ctx, MsgSelect, SelectMsg{Index: uint32(i)}.Encode())
	return err
}

// Active fetches the remote device's live configuration.
func (c *Client) Active(ctx context.Context) (ActiveReply, error) {
	f, err := c.roundTrip(ctx, MsgActiveQuery, nil)
	if err != nil {
		return ActiveReply{}, err
	}
	if f.Type != MsgActiveReply {
		return ActiveReply{}, fmt.Errorf("ctrlproto: unexpected %v to active-query", f.Type)
	}
	return DecodeActiveReply(f.Payload)
}
