package ctrlproto

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"surfos/internal/surface"
)

// ErrTimeout is returned when a request's reply does not arrive within the
// client timeout. It is a typed sentinel (wired through StatusTimeout) so
// callers can distinguish a lost reply — retryable, possibly applied —
// from a semantic rejection, and surfctl can exit with a dedicated code.
var ErrTimeout = errors.New("ctrlproto: request timed out")

// RetryPolicy is the southbound retry configuration: capped exponential
// backoff with jitter, applied only to timeouts on a live connection.
// Mutating requests carry an idempotent request ID reused across retries,
// so a retry whose predecessor actually reached the agent never
// double-applies.
type RetryPolicy struct {
	// Attempts is the total number of tries (min 1; 1 = no retry).
	Attempts int
	// BaseDelay is the backoff before the first retry (default 10ms);
	// it doubles per retry up to MaxDelay (default 1s).
	BaseDelay time.Duration
	MaxDelay  time.Duration
}

// Client is the controller-side endpoint: one connection to a surface
// agent with pipelined request/reply correlation and an optional feedback
// stream. Safe for concurrent use.
type Client struct {
	conn net.Conn

	mu      sync.Mutex
	nextID  uint32
	pending map[uint32]chan Frame
	streams map[uint32]*Stream
	closed  bool
	readErr error

	// Feedback receives unsolicited agent pushes (correlation 0). Buffered;
	// overflow drops. Closed when the connection is lost, so range-style
	// consumers observe the disconnect.
	Feedback chan FeedbackMsg
	// TaskEvents receives task lifecycle pushes after WatchTasks.
	// Buffered; overflow drops. Closed when the connection is lost — a
	// `tasks --watch` consumer uses the close to trigger its reconnect.
	TaskEvents chan TaskEventMsg
	// Timeout bounds each request round trip (default 5s).
	Timeout time.Duration
	// Retry configures timeout retries for mutating requests (zero value =
	// single attempt).
	Retry RetryPolicy

	jmu     sync.Mutex
	jitter  *rand.Rand
	nextReq uint64
}

// Dial connects to an agent at addr.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection (e.g. one side of net.Pipe).
func NewClient(conn net.Conn) *Client {
	c := &Client{
		conn:       conn,
		nextID:     1,
		pending:    make(map[uint32]chan Frame),
		Feedback:   make(chan FeedbackMsg, 64),
		TaskEvents: make(chan TaskEventMsg, 64),
		Timeout:    5 * time.Second,
		jitter:     rand.New(rand.NewSource(rand.Int63())),
		// Request IDs must not collide across client sessions sharing an
		// agent: start from a random 32-bit prefix and count up.
		nextReq: uint64(rand.Uint32()) << 32,
	}
	go c.readLoop()
	return c
}

// SeedJitter reseeds the retry backoff jitter so fault tests replay
// identical retry timelines.
func (c *Client) SeedJitter(seed int64) {
	c.jmu.Lock()
	c.jitter = rand.New(rand.NewSource(seed))
	c.jmu.Unlock()
}

// newReqID mints an idempotency token for one logical mutating request;
// every retry of that request reuses it.
func (c *Client) newReqID() uint64 {
	c.jmu.Lock()
	defer c.jmu.Unlock()
	c.nextReq++
	if c.nextReq == 0 { // 0 means "no idempotency token" on the wire
		c.nextReq = 1
	}
	return c.nextReq
}

// backoffDelay returns the capped exponential backoff before retry n
// (n=1 is the first retry), jittered to 50–100% of nominal.
func (c *Client) backoffDelay(n int) time.Duration {
	base := c.Retry.BaseDelay
	if base <= 0 {
		base = 10 * time.Millisecond
	}
	max := c.Retry.MaxDelay
	if max <= 0 {
		max = time.Second
	}
	d := base << (n - 1)
	if d > max || d <= 0 { // <= 0: shift overflow
		d = max
	}
	c.jmu.Lock()
	f := 0.5 + 0.5*c.jitter.Float64()
	c.jmu.Unlock()
	return time.Duration(float64(d) * f)
}

// invoke runs one mutating request with retry-on-timeout semantics: the
// payload carries reqID so the agent deduplicates deliveries, and only
// ErrTimeout on a still-live connection is retried — semantic rejections
// and transport failures surface immediately.
func (c *Client) invoke(ctx context.Context, t MsgType, payload []byte) (Frame, error) {
	attempts := c.Retry.Attempts
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	for n := 0; n < attempts; n++ {
		if n > 0 {
			delay := c.backoffDelay(n)
			timer := time.NewTimer(delay)
			select {
			case <-ctx.Done():
				timer.Stop()
				return Frame{}, ctx.Err()
			case <-timer.C:
			}
		}
		f, err := c.roundTrip(ctx, t, payload)
		if err == nil || !errors.Is(err, ErrTimeout) {
			return f, err
		}
		lastErr = err
		c.mu.Lock()
		dead := c.closed
		c.mu.Unlock()
		if dead {
			break
		}
	}
	return Frame{}, lastErr
}

// Close tears down the connection; in-flight requests fail.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	return c.conn.Close()
}

func (c *Client) readLoop() {
	for {
		f, err := ReadFrame(c.conn)
		if err != nil {
			c.mu.Lock()
			c.readErr = err
			for id, ch := range c.pending {
				close(ch)
				delete(c.pending, id)
			}
			c.closed = true
			streams := c.streams
			c.streams = nil
			// Closing the push channels is the disconnect signal for
			// stream consumers; sends happen under c.mu or only from this
			// goroutine, so the closes cannot race a send.
			for _, s := range streams {
				close(s.c)
			}
			c.mu.Unlock()
			c.conn.Close()
			close(c.Feedback)
			close(c.TaskEvents)
			return
		}
		if f.Corr == 0 && f.Type == MsgFeedback {
			if m, err := DecodeFeedbackMsg(f.Payload); err == nil {
				select {
				case c.Feedback <- m:
				default: // drop stale feedback
				}
			}
			continue
		}
		if f.Corr == 0 && f.Type == MsgTaskEvent {
			if m, err := DecodeTaskEventMsg(f.Payload); err == nil {
				select {
				case c.TaskEvents <- m:
				default: // drop: the task table remains authoritative
				}
			}
			continue
		}
		if f.Type == MsgTaskEvent {
			// Multiplexed stream push: Corr carries the stream ID. The send
			// happens under c.mu so Stream.Close can safely close the
			// channel once it is out of the map.
			if m, err := DecodeTaskEventMsg(f.Payload); err == nil {
				c.mu.Lock()
				if s, ok := c.streams[f.Corr]; ok {
					select {
					case s.c <- m:
					default: // drop: the server-side ring already sheds per policy
					}
				}
				c.mu.Unlock()
			}
			continue
		}
		c.mu.Lock()
		ch, ok := c.pending[f.Corr]
		if ok {
			delete(c.pending, f.Corr)
		}
		c.mu.Unlock()
		if ok {
			ch <- f
			close(ch)
		}
	}
}

// roundTrip sends a request and waits for the correlated reply, the
// client's Timeout, ctx cancellation, or the ctx deadline — whichever is
// earliest. The wait timer is a stopped time.NewTimer rather than
// time.After, so a reply arriving first reclaims the timer immediately
// instead of leaking it until expiry (one leaked timer per request adds
// up fast on a pipelined connection).
func (c *Client) roundTrip(ctx context.Context, t MsgType, payload []byte) (Frame, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return Frame{}, err
	}
	c.mu.Lock()
	if c.closed {
		err := c.readErr
		c.mu.Unlock()
		if err == nil {
			err = errors.New("ctrlproto: client closed")
		}
		return Frame{}, err
	}
	id := c.nextID
	c.nextID++
	if c.nextID == 0 { // correlation 0 is reserved for pushes
		c.nextID = 1
	}
	ch := make(chan Frame, 1)
	c.pending[id] = ch
	c.mu.Unlock()

	if err := WriteFrame(c.conn, Frame{Type: t, Corr: id, Payload: payload}); err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return Frame{}, err
	}

	timeout := c.Timeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	// Honor the ctx deadline when it lands before the client timeout.
	if dl, ok := ctx.Deadline(); ok {
		if until := time.Until(dl); until < timeout {
			timeout = until
		}
	}
	if timeout <= 0 {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return Frame{}, fmt.Errorf("ctrlproto: deadline expired awaiting reply to %v: %w", t, context.DeadlineExceeded)
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case f, ok := <-ch:
		if !ok {
			return Frame{}, fmt.Errorf("ctrlproto: connection lost awaiting %v", t)
		}
		if f.Type == MsgError {
			m, err := DecodeErrorMsg(f.Payload)
			if err != nil {
				return Frame{}, err
			}
			// Reconstruct the typed error: WireError unwraps to the
			// sentinel for the status code, so errors.Is works as if the
			// call had been local.
			return Frame{}, &WireError{Status: m.Code, Text: m.Text}
		}
		return f, nil
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return Frame{}, ctx.Err()
	case <-timer.C:
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return Frame{}, fmt.Errorf("%w awaiting reply to %v", ErrTimeout, t)
	}
}

// Hello identifies the remote device.
func (c *Client) Hello(ctx context.Context) (Hello, error) {
	f, err := c.roundTrip(ctx, MsgHello, nil)
	if err != nil {
		return Hello{}, err
	}
	if f.Type != MsgHelloReply {
		return Hello{}, fmt.Errorf("ctrlproto: unexpected %v to hello", f.Type)
	}
	return DecodeHello(f.Payload)
}

// GetSpec fetches the remote device's hardware specification.
func (c *Client) GetSpec(ctx context.Context) (SpecReply, error) {
	f, err := c.roundTrip(ctx, MsgGetSpec, nil)
	if err != nil {
		return SpecReply{}, err
	}
	if f.Type != MsgSpecReply {
		return SpecReply{}, fmt.Errorf("ctrlproto: unexpected %v to get-spec", f.Type)
	}
	return DecodeSpecReply(f.Payload)
}

// ShiftPhase programs a phase configuration on the remote device. Timeouts
// are retried per c.Retry; the embedded request ID guarantees at most one
// application.
func (c *Client) ShiftPhase(ctx context.Context, cfg surface.Config) error {
	m := ConfigMsg{Property: cfg.Property, Values: cfg.Values, ReqID: c.newReqID()}
	_, err := c.invoke(ctx, MsgShiftPhase, m.Encode())
	return err
}

// SetAmplitude programs an amplitude configuration on the remote device.
func (c *Client) SetAmplitude(ctx context.Context, cfg surface.Config) error {
	m := ConfigMsg{Property: cfg.Property, Values: cfg.Values, ReqID: c.newReqID()}
	_, err := c.invoke(ctx, MsgSetAmplitude, m.Encode())
	return err
}

// StoreCodebook pushes a configuration codebook.
func (c *Client) StoreCodebook(ctx context.Context, labels []string, cfgs []surface.Config) error {
	if len(cfgs) == 0 {
		return errors.New("ctrlproto: empty codebook")
	}
	m := CodebookMsg{Property: cfgs[0].Property, Labels: labels, ReqID: c.newReqID()}
	for _, cfg := range cfgs {
		m.Entries = append(m.Entries, cfg.Values)
	}
	_, err := c.invoke(ctx, MsgStoreCodebook, m.Encode())
	return err
}

// Select activates a stored codebook entry. Retries reuse the request ID,
// so a duplicated select applies exactly once.
func (c *Client) Select(ctx context.Context, i int) error {
	m := SelectMsg{Index: uint32(i), ReqID: c.newReqID()}
	_, err := c.invoke(ctx, MsgSelect, m.Encode())
	return err
}

// Active fetches the remote device's live configuration.
func (c *Client) Active(ctx context.Context) (ActiveReply, error) {
	f, err := c.roundTrip(ctx, MsgActiveQuery, nil)
	if err != nil {
		return ActiveReply{}, err
	}
	if f.Type != MsgActiveReply {
		return ActiveReply{}, fmt.Errorf("ctrlproto: unexpected %v to active-query", f.Type)
	}
	return DecodeActiveReply(f.Payload)
}

// --- task-control requests (served by CtrlAgent) ---

// ListTasks fetches the orchestrator's task table.
func (c *Client) ListTasks(ctx context.Context) ([]TaskInfo, error) {
	f, err := c.roundTrip(ctx, MsgListTasks, nil)
	if err != nil {
		return nil, err
	}
	if f.Type != MsgTasksReply {
		return nil, fmt.Errorf("ctrlproto: unexpected %v to list-tasks", f.Type)
	}
	m, err := DecodeTasksReply(f.Payload)
	return m.Tasks, err
}

// EndTask terminates a task by ID.
func (c *Client) EndTask(ctx context.Context, id int) error {
	_, err := c.roundTrip(ctx, MsgEndTask, TaskIDMsg{ID: uint32(id)}.Encode())
	return err
}

// SetTaskIdle parks (idle=true) or resumes (idle=false) a task.
func (c *Client) SetTaskIdle(ctx context.Context, id int, idle bool) error {
	_, err := c.roundTrip(ctx, MsgSetIdle, TaskIDMsg{ID: uint32(id), Idle: idle}.Encode())
	return err
}

// MoveTask re-targets a live task at a new position (the task's user
// walked); the daemon hands it off between shards as needed.
func (c *Client) MoveTask(ctx context.Context, id int, x, y, z float64) error {
	_, err := c.roundTrip(ctx, MsgMoveTask, MoveTaskMsg{ID: uint32(id), Pos: [3]float64{x, y, z}}.Encode())
	return err
}

// SubmitTask files a service goal and returns the scheduled task.
func (c *Client) SubmitTask(ctx context.Context, m SubmitMsg) (TaskInfo, error) {
	f, err := c.roundTrip(ctx, MsgSubmitTask, m.Encode())
	if err != nil {
		return TaskInfo{}, err
	}
	if f.Type != MsgTaskReply {
		return TaskInfo{}, fmt.Errorf("ctrlproto: unexpected %v to submit-task", f.Type)
	}
	r, err := DecodeTaskReply(f.Payload)
	return r.Task, err
}

// WatchTasks subscribes this connection to the task lifecycle stream;
// events arrive on c.TaskEvents.
func (c *Client) WatchTasks(ctx context.Context) error {
	_, err := c.roundTrip(ctx, MsgWatchTasks, nil)
	return err
}

// Stream is one multiplexed event stream over a shared connection. Events
// arrive on C, which closes when the stream is closed or the connection
// is lost.
type Stream struct {
	// ID is the stream's wire identifier, unique on its connection.
	ID uint32
	// C delivers the stream's events. Buffered; overflow drops (the
	// server-side ring is the real backpressure boundary).
	C <-chan TaskEventMsg

	c  chan TaskEventMsg
	cl *Client
}

// OpenStream opens a logical event stream multiplexed over this
// connection. Kind is StreamTasks or StreamHealth; filter scopes delivery
// (tenant for tasks, device ID for health; "" = all). Any number of
// streams share the connection with RPCs and each other.
func (c *Client) OpenStream(ctx context.Context, kind, filter string) (*Stream, error) {
	c.mu.Lock()
	if c.closed {
		err := c.readErr
		c.mu.Unlock()
		if err == nil {
			err = errors.New("ctrlproto: client closed")
		}
		return nil, err
	}
	// Stream IDs draw from the correlation counter, so they never collide
	// with in-flight RPCs on the same connection. Registered before the
	// open round-trip: the first events can arrive ahead of the ack.
	id := c.nextID
	c.nextID++
	if c.nextID == 0 {
		c.nextID = 1
	}
	s := &Stream{ID: id, cl: c, c: make(chan TaskEventMsg, 256)}
	s.C = s.c
	if c.streams == nil {
		c.streams = make(map[uint32]*Stream)
	}
	c.streams[id] = s
	c.mu.Unlock()

	_, err := c.roundTrip(ctx, MsgOpenStream, OpenStreamMsg{Stream: id, Kind: kind, Filter: filter}.Encode())
	if err != nil {
		c.mu.Lock()
		if cur, ok := c.streams[id]; ok && cur == s {
			delete(c.streams, id)
			close(s.c)
		}
		c.mu.Unlock()
		return nil, err
	}
	return s, nil
}

// Close tears down the stream on the server and closes C. The connection
// and its other streams stay up.
func (s *Stream) Close(ctx context.Context) error {
	_, err := s.cl.roundTrip(ctx, MsgCloseStream, CloseStreamMsg{Stream: s.ID}.Encode())
	s.cl.mu.Lock()
	if cur, ok := s.cl.streams[s.ID]; ok && cur == s {
		delete(s.cl.streams, s.ID)
		close(s.c)
	}
	s.cl.mu.Unlock()
	return err
}

// Health fetches every managed device's health snapshot.
func (c *Client) Health(ctx context.Context) ([]HealthInfo, error) {
	f, err := c.roundTrip(ctx, MsgHealth, nil)
	if err != nil {
		return nil, err
	}
	if f.Type != MsgHealthReply {
		return nil, fmt.Errorf("ctrlproto: unexpected %v to health", f.Type)
	}
	m, err := DecodeHealthReply(f.Payload)
	return m.Devices, err
}

// HealthFull fetches the complete health reply, including the control
// plane's own section when the agent exposes it (HasControl).
func (c *Client) HealthFull(ctx context.Context) (HealthReply, error) {
	f, err := c.roundTrip(ctx, MsgHealth, nil)
	if err != nil {
		return HealthReply{}, err
	}
	if f.Type != MsgHealthReply {
		return HealthReply{}, fmt.Errorf("ctrlproto: unexpected %v to health", f.Type)
	}
	return DecodeHealthReply(f.Payload)
}

// Demand dispatches a natural-language demand through the control plane's
// broker.
func (c *Client) Demand(ctx context.Context, utterance string) (DemandReply, error) {
	f, err := c.roundTrip(ctx, MsgDemand, DemandMsg{Utterance: utterance}.Encode())
	if err != nil {
		return DemandReply{}, err
	}
	if f.Type != MsgDemandReply {
		return DemandReply{}, fmt.Errorf("ctrlproto: unexpected %v to demand", f.Type)
	}
	return DecodeDemandReply(f.Payload)
}
