package ctrlproto

import (
	"context"
	"net"
	"testing"
	"time"
)

// TestPushChannelsCloseOnDisconnect pins the disconnect contract watch
// consumers rely on: when the peer goes away, the client's Feedback and
// TaskEvents channels close (instead of silently going quiet forever),
// and pending round trips fail fast.
func TestPushChannelsCloseOnDisconnect(t *testing.T) {
	cli, srv := net.Pipe()
	c := NewClient(cli)
	defer c.Close()

	srv.Close() // daemon dies

	deadline := time.After(5 * time.Second)
	select {
	case _, ok := <-c.TaskEvents:
		if ok {
			t.Error("TaskEvents delivered an event from a dead peer")
		}
	case <-deadline:
		t.Fatal("TaskEvents not closed after disconnect")
	}
	select {
	case _, ok := <-c.Feedback:
		if ok {
			t.Error("Feedback delivered a message from a dead peer")
		}
	case <-deadline:
		t.Fatal("Feedback not closed after disconnect")
	}
	if _, err := c.Hello(context.Background()); err == nil {
		t.Error("round trip on a dead client succeeded")
	}
}
