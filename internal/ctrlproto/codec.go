// Package ctrlproto is the SurfOS southbound control protocol: the wire
// format and endpoints connecting the central control plane (surface
// orchestrator) to surface controller agents, mirroring how SDN decouples
// the control plane from forwarding hardware (paper §3.1).
//
// The protocol is a length-prefixed binary TLV over TCP:
//
//	frame  := magic(2) version(1) type(1) corr(4) len(4) payload(len)
//
// All integers are big-endian. Strings are u16 length + UTF-8 bytes;
// float64 slices are u32 count + IEEE-754 bits. Requests carry a
// correlation ID echoed by the matching reply, so a client can pipeline
// concurrent requests over one connection; agents may also push unsolicited
// Feedback frames (correlation 0).
//
// The framing layer itself (magic, version, length prefix) lives in the
// shared internal/wire package — the framed northbound and any future
// control-plane transport speak the same frames. This package layers the
// message-type vocabulary and payload codecs on top.
package ctrlproto

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"surfos/internal/surface"
	"surfos/internal/wire"
)

// Protocol constants, re-exported from the shared framing layer so
// existing callers keep compiling against ctrlproto alone.
const (
	Magic      = wire.Magic
	Version    = wire.Version
	MaxPayload = wire.MaxPayload
)

// MsgType identifies a frame's meaning.
type MsgType byte

// Message types.
const (
	MsgHello MsgType = iota + 1
	MsgHelloReply
	MsgGetSpec
	MsgSpecReply
	MsgShiftPhase
	MsgSetAmplitude
	MsgStoreCodebook
	MsgSelect
	MsgActiveQuery
	MsgActiveReply
	MsgAck
	MsgError
	MsgFeedback
)

// String implements fmt.Stringer.
func (t MsgType) String() string {
	names := map[MsgType]string{
		MsgHello: "hello", MsgHelloReply: "hello-reply",
		MsgGetSpec: "get-spec", MsgSpecReply: "spec-reply",
		MsgShiftPhase: "shift-phase", MsgSetAmplitude: "set-amplitude",
		MsgStoreCodebook: "store-codebook", MsgSelect: "select",
		MsgActiveQuery: "active-query", MsgActiveReply: "active-reply",
		MsgAck: "ack", MsgError: "error", MsgFeedback: "feedback",
		MsgListTasks: "list-tasks", MsgTasksReply: "tasks-reply",
		MsgEndTask: "end-task", MsgSetIdle: "set-idle",
		MsgSubmitTask: "submit-task", MsgTaskReply: "task-reply",
		MsgWatchTasks: "watch-tasks", MsgTaskEvent: "task-event",
		MsgDemand: "demand", MsgDemandReply: "demand-reply",
		MsgHealth: "health", MsgHealthReply: "health-reply",
		MsgOpenStream: "open-stream", MsgCloseStream: "close-stream",
		MsgReplSnapshot: "repl-snapshot", MsgReplAppend: "repl-append",
		MsgReplHeartbeat: "repl-heartbeat", MsgReplAck: "repl-ack",
		MsgMoveTask: "move-task",
	}
	if s, ok := names[t]; ok {
		return s
	}
	return fmt.Sprintf("msg(%d)", byte(t))
}

// Protocol errors. The framing errors are the shared wire sentinels, so
// errors.Is works the same whether a caller checked against ctrlproto or
// wire; ErrTruncated is this package's payload-decode error.
var (
	ErrBadMagic   = wire.ErrBadMagic
	ErrBadVersion = wire.ErrBadVersion
	ErrTooLarge   = wire.ErrTooLarge
	ErrTruncated  = fmt.Errorf("ctrlproto: truncated payload")
)

// Frame is one protocol unit: a wire frame whose stream field carries this
// protocol's request correlation ID (or stream ID for multiplexed event
// streams) and whose type is a ctrlproto MsgType.
type Frame struct {
	Type    MsgType
	Corr    uint32
	Payload []byte
}

const headerLen = wire.HeaderLen

// WriteFrame serializes a frame to w.
func WriteFrame(w io.Writer, f Frame) error {
	return wire.WriteFrame(w, wire.Frame{Type: byte(f.Type), Stream: f.Corr, Payload: f.Payload})
}

// ReadFrame reads one frame from r.
func ReadFrame(r io.Reader) (Frame, error) {
	wf, err := wire.ReadFrame(r)
	if err != nil {
		return Frame{}, err
	}
	return Frame{Type: MsgType(wf.Type), Corr: wf.Stream, Payload: wf.Payload}, nil
}

// --- payload primitives ---

type encoder struct{ buf []byte }

func (e *encoder) u8(v byte)     { e.buf = append(e.buf, v) }
func (e *encoder) u16(v uint16)  { e.buf = binary.BigEndian.AppendUint16(e.buf, v) }
func (e *encoder) u32(v uint32)  { e.buf = binary.BigEndian.AppendUint32(e.buf, v) }
func (e *encoder) u64(v uint64)  { e.buf = binary.BigEndian.AppendUint64(e.buf, v) }
func (e *encoder) f64(v float64) { e.u64(math.Float64bits(v)) }

func (e *encoder) str(s string) {
	if len(s) > math.MaxUint16 {
		s = s[:math.MaxUint16]
	}
	e.u16(uint16(len(s)))
	e.buf = append(e.buf, s...)
}

// bytes writes a u32-length-prefixed byte blob (snapshot payloads and WAL
// record data can exceed the u16 str limit).
func (e *encoder) bytes(b []byte) {
	e.u32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

func (e *encoder) bool(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}

func (e *encoder) strs(v []string) {
	if len(v) > math.MaxUint16 {
		v = v[:math.MaxUint16]
	}
	e.u16(uint16(len(v)))
	for _, s := range v {
		e.str(s)
	}
}

func (e *encoder) floats(v []float64) {
	e.u32(uint32(len(v)))
	for _, x := range v {
		e.f64(x)
	}
}

type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) need(n int) bool {
	if d.err != nil {
		return false
	}
	if d.off+n > len(d.buf) {
		d.err = ErrTruncated
		return false
	}
	return true
}

func (d *decoder) u8() byte {
	if !d.need(1) {
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

func (d *decoder) u16() uint16 {
	if !d.need(2) {
		return 0
	}
	v := binary.BigEndian.Uint16(d.buf[d.off:])
	d.off += 2
	return v
}

func (d *decoder) u32() uint32 {
	if !d.need(4) {
		return 0
	}
	v := binary.BigEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

func (d *decoder) u64() uint64 {
	if !d.need(8) {
		return 0
	}
	v := binary.BigEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

func (d *decoder) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *decoder) str() string {
	n := int(d.u16())
	if !d.need(n) {
		return ""
	}
	s := string(d.buf[d.off : d.off+n])
	d.off += n
	return s
}

func (d *decoder) bytes() []byte {
	n := int(d.u32())
	if d.err != nil || !d.need(n) {
		return nil
	}
	out := make([]byte, n)
	copy(out, d.buf[d.off:d.off+n])
	d.off += n
	return out
}

func (d *decoder) bool() bool { return d.u8() == 1 }

func (d *decoder) strs() []string {
	n := int(d.u16())
	var out []string
	for i := 0; i < n && d.err == nil; i++ {
		out = append(out, d.str())
	}
	return out
}

func (d *decoder) floats() []float64 {
	n := int(d.u32())
	if d.err != nil || n < 0 {
		return nil
	}
	// Guard against absurd counts before allocating.
	if d.off+8*n > len(d.buf) {
		d.err = ErrTruncated
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = d.f64()
	}
	return out
}

// optU64 reads a trailing optional u64 field: present iff exactly 8 bytes
// remain, 0 otherwise. Appended-on-encode optional fields use this so
// payloads from older peers (without the field) still decode.
func (d *decoder) optU64() uint64 {
	if d.err != nil || d.off+8 != len(d.buf) {
		return 0
	}
	return d.u64()
}

func (d *decoder) finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("ctrlproto: %d trailing bytes", len(d.buf)-d.off)
	}
	return nil
}

// --- message payloads ---

// Hello announces an agent's device.
type Hello struct {
	DeviceID string
	Model    string
	Mount    string
}

// Encode serializes the message.
func (m Hello) Encode() []byte {
	var e encoder
	e.str(m.DeviceID)
	e.str(m.Model)
	e.str(m.Mount)
	return e.buf
}

// DecodeHello parses a Hello payload.
func DecodeHello(b []byte) (Hello, error) {
	d := decoder{buf: b}
	m := Hello{DeviceID: d.str(), Model: d.str(), Mount: d.str()}
	return m, d.finish()
}

// ConfigMsg carries one configuration (ShiftPhase / SetAmplitude).
type ConfigMsg struct {
	Property surface.ControlProperty
	Values   []float64
	// ReqID is the optional idempotency token (trailing field, 0 = none):
	// the agent deduplicates deliveries sharing one, so client retries
	// never double-apply.
	ReqID uint64
}

// Encode serializes the message.
func (m ConfigMsg) Encode() []byte {
	var e encoder
	e.u8(byte(m.Property))
	e.floats(m.Values)
	if m.ReqID != 0 {
		e.u64(m.ReqID)
	}
	return e.buf
}

// DecodeConfigMsg parses a ConfigMsg payload.
func DecodeConfigMsg(b []byte) (ConfigMsg, error) {
	d := decoder{buf: b}
	m := ConfigMsg{Property: surface.ControlProperty(d.u8()), Values: d.floats()}
	m.ReqID = d.optU64()
	return m, d.finish()
}

// Config converts to a surface configuration.
func (m ConfigMsg) Config() surface.Config {
	return surface.Config{Property: m.Property, Values: m.Values}
}

// CodebookMsg replaces a device's stored configurations.
type CodebookMsg struct {
	Property surface.ControlProperty
	Labels   []string
	Entries  [][]float64
	// ReqID is the optional idempotency token (trailing field, 0 = none).
	ReqID uint64
}

// Encode serializes the message.
func (m CodebookMsg) Encode() []byte {
	var e encoder
	e.u8(byte(m.Property))
	e.u32(uint32(len(m.Entries)))
	for i := range m.Entries {
		label := ""
		if i < len(m.Labels) {
			label = m.Labels[i]
		}
		e.str(label)
		e.floats(m.Entries[i])
	}
	if m.ReqID != 0 {
		e.u64(m.ReqID)
	}
	return e.buf
}

// DecodeCodebookMsg parses a CodebookMsg payload.
func DecodeCodebookMsg(b []byte) (CodebookMsg, error) {
	d := decoder{buf: b}
	m := CodebookMsg{Property: surface.ControlProperty(d.u8())}
	n := int(d.u32())
	for i := 0; i < n && d.err == nil; i++ {
		m.Labels = append(m.Labels, d.str())
		m.Entries = append(m.Entries, d.floats())
	}
	m.ReqID = d.optU64()
	return m, d.finish()
}

// SelectMsg activates a stored codebook entry.
type SelectMsg struct {
	Index uint32
	// ReqID is the optional idempotency token (trailing field, 0 = none).
	ReqID uint64
}

// Encode serializes the message.
func (m SelectMsg) Encode() []byte {
	var e encoder
	e.u32(m.Index)
	if m.ReqID != 0 {
		e.u64(m.ReqID)
	}
	return e.buf
}

// DecodeSelectMsg parses a SelectMsg payload.
func DecodeSelectMsg(b []byte) (SelectMsg, error) {
	d := decoder{buf: b}
	m := SelectMsg{Index: d.u32()}
	m.ReqID = d.optU64()
	return m, d.finish()
}

// SpecReply carries the device's hardware specification.
type SpecReply struct {
	Model             string
	FreqLowHz         float64
	FreqHighHz        float64
	Control           surface.ControlProperty
	OpMode            surface.OpMode
	Granularity       surface.Granularity
	Reconfigurable    bool
	PhaseBits         uint8
	ControlDelayNanos uint64
	Rows, Cols        uint32
	CostUSD           float64
}

// Encode serializes the message.
func (m SpecReply) Encode() []byte {
	var e encoder
	e.str(m.Model)
	e.f64(m.FreqLowHz)
	e.f64(m.FreqHighHz)
	e.u8(byte(m.Control))
	e.u8(byte(m.OpMode))
	e.u8(byte(m.Granularity))
	if m.Reconfigurable {
		e.u8(1)
	} else {
		e.u8(0)
	}
	e.u8(m.PhaseBits)
	e.u64(m.ControlDelayNanos)
	e.u32(m.Rows)
	e.u32(m.Cols)
	e.f64(m.CostUSD)
	return e.buf
}

// DecodeSpecReply parses a SpecReply payload.
func DecodeSpecReply(b []byte) (SpecReply, error) {
	d := decoder{buf: b}
	m := SpecReply{
		Model:      d.str(),
		FreqLowHz:  d.f64(),
		FreqHighHz: d.f64(),
	}
	m.Control = surface.ControlProperty(d.u8())
	m.OpMode = surface.OpMode(d.u8())
	m.Granularity = surface.Granularity(d.u8())
	m.Reconfigurable = d.u8() == 1
	m.PhaseBits = d.u8()
	m.ControlDelayNanos = d.u64()
	m.Rows = d.u32()
	m.Cols = d.u32()
	m.CostUSD = d.f64()
	return m, d.finish()
}

// ActiveReply reports the device's live configuration.
type ActiveReply struct {
	HasActive bool
	Label     string
	Property  surface.ControlProperty
	Values    []float64
}

// Encode serializes the message.
func (m ActiveReply) Encode() []byte {
	var e encoder
	if m.HasActive {
		e.u8(1)
	} else {
		e.u8(0)
	}
	e.str(m.Label)
	e.u8(byte(m.Property))
	e.floats(m.Values)
	return e.buf
}

// DecodeActiveReply parses an ActiveReply payload.
func DecodeActiveReply(b []byte) (ActiveReply, error) {
	d := decoder{buf: b}
	m := ActiveReply{HasActive: d.u8() == 1, Label: d.str()}
	m.Property = surface.ControlProperty(d.u8())
	m.Values = d.floats()
	return m, d.finish()
}

// ErrorMsg reports a failed request. Code carries the typed error
// category (see status.go) so clients can reconstruct sentinel errors
// across the wire; Text preserves the remote error detail.
type ErrorMsg struct {
	Code Status
	Text string
}

// Encode serializes the message.
func (m ErrorMsg) Encode() []byte {
	var e encoder
	e.u16(uint16(m.Code))
	e.str(m.Text)
	return e.buf
}

// DecodeErrorMsg parses an ErrorMsg payload.
func DecodeErrorMsg(b []byte) (ErrorMsg, error) {
	d := decoder{buf: b}
	m := ErrorMsg{Code: Status(d.u16()), Text: d.str()}
	return m, d.finish()
}

// FeedbackMsg pushes an endpoint report from the agent.
type FeedbackMsg struct {
	EndpointID string
	ConfigIdx  int32
	SNRdB      float64
	UnixNanos  int64
}

// Encode serializes the message.
func (m FeedbackMsg) Encode() []byte {
	var e encoder
	e.str(m.EndpointID)
	e.u32(uint32(m.ConfigIdx))
	e.f64(m.SNRdB)
	e.u64(uint64(m.UnixNanos))
	return e.buf
}

// DecodeFeedbackMsg parses a FeedbackMsg payload.
func DecodeFeedbackMsg(b []byte) (FeedbackMsg, error) {
	d := decoder{buf: b}
	m := FeedbackMsg{EndpointID: d.str()}
	m.ConfigIdx = int32(d.u32())
	m.SNRdB = d.f64()
	m.UnixNanos = int64(d.u64())
	return m, d.finish()
}
