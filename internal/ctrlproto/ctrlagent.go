package ctrlproto

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"surfos/internal/broker"
	"surfos/internal/geom"
	"surfos/internal/orchestrator"
	"surfos/internal/telemetry"
)

// CtrlAgent is the control-plane (northbound) endpoint of the protocol: it
// exposes the orchestrator's task API — list, submit, end, idle, demand —
// and streams task lifecycle events to watchers, over the same frame
// format the device agents speak. Where the device Agent fronts one
// driver, the CtrlAgent fronts the whole task table.
type CtrlAgent struct {
	// Orch is the served orchestrator (required).
	Orch *orchestrator.Orchestrator
	// Broker enables MsgDemand dispatch when set.
	Broker *broker.Broker
	// Events enables MsgWatchTasks streaming when set.
	Events *telemetry.EventBus
	// Reconcile, when set, runs after every mutating request (submit,
	// end, idle) so replies reflect post-scheduling task state. Errors
	// are logged, not fatal: the mutation itself already succeeded.
	Reconcile func(ctx context.Context) error
	// ReconcileTask, when set, is preferred over Reconcile for mutations
	// that touch one known task: it re-plans only the task's interference
	// domain instead of the whole scene.
	ReconcileTask func(ctx context.Context, taskID int) error
	// ControlHealth, when set, contributes the control plane's own health
	// (shards, tenants, bus drops, journal lag) to MsgHealth replies.
	ControlHealth func() ControlHealthInfo
	// Repl, when set, receives MsgRepl* frames: this daemon is (or was) a
	// replication follower and the primary ships its WAL here.
	Repl *ReplReceiver
	// Standby, when set and true, rejects mutating requests (submit, end,
	// idle, demand) with ErrNotLeader so clients fail over to the
	// primary. Reads and watches stay connected but answer from this
	// daemon's local orchestrator and event bus — empty on a
	// never-promoted follower (the warm replica is folded in only when
	// promotion re-admits it), current again on a fenced ex-primary.
	Standby func() bool
	// Ctx bounds request handling (nil = background).
	Ctx context.Context
	// Logf receives diagnostic messages; nil silences them.
	Logf func(format string, args ...any)

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]*connState
	closed   bool
}

// connState tracks one controller connection's write lock, its legacy
// correlation-0 watch subscription, and its multiplexed streams. The
// write lock doubles as the guard for the subscription fields: handle()
// runs on the single read goroutine, so contention is only with teardown
// and in-flight event writes.
type connState struct {
	w       sync.Mutex
	unwatch func()
	streams map[uint32]func() // stream ID -> subscription cancel
}

// NewCtrlAgent wraps an orchestrator for serving.
func NewCtrlAgent(orch *orchestrator.Orchestrator) (*CtrlAgent, error) {
	if orch == nil {
		return nil, errors.New("ctrlproto: ctrl agent needs an orchestrator")
	}
	return &CtrlAgent{Orch: orch, conns: make(map[net.Conn]*connState)}, nil
}

func (a *CtrlAgent) logf(format string, args ...any) {
	if a.Logf != nil {
		a.Logf(format, args...)
	}
}

func (a *CtrlAgent) ctx() context.Context {
	if a.Ctx != nil {
		return a.Ctx
	}
	return context.Background()
}

// Listen starts serving on addr and returns the bound address.
func (a *CtrlAgent) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		ln.Close()
		return nil, errors.New("ctrlproto: ctrl agent closed")
	}
	a.listener = ln
	a.mu.Unlock()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go a.ServeConn(conn)
		}
	}()
	return ln.Addr(), nil
}

// Close stops the agent and drops all connections.
func (a *CtrlAgent) Close() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return nil
	}
	a.closed = true
	if a.listener != nil {
		a.listener.Close()
	}
	for c, st := range a.conns {
		st.cancelSubscriptions()
		c.Close()
	}
	return nil
}

// cancelSubscriptions tears down the connection's watch and every open
// stream. Safe to call more than once.
func (st *connState) cancelSubscriptions() {
	st.w.Lock()
	unwatch := st.unwatch
	st.unwatch = nil
	streams := st.streams
	st.streams = nil
	st.w.Unlock()
	if unwatch != nil {
		unwatch()
	}
	for _, cancel := range streams {
		cancel()
	}
}

// ServeConn handles one established connection until it fails or the peer
// disconnects; useful for tests over net.Pipe.
func (a *CtrlAgent) ServeConn(conn net.Conn) {
	st := &connState{}
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		conn.Close()
		return
	}
	a.conns[conn] = st
	a.mu.Unlock()
	defer func() {
		conn.Close()
		a.mu.Lock()
		delete(a.conns, conn)
		a.mu.Unlock()
		st.w.Lock() // wait for any in-flight event write
		st.w.Unlock()
		st.cancelSubscriptions()
	}()
	for {
		f, err := ReadFrame(conn)
		if err != nil {
			// A closed pipe/socket is a normal disconnect (peer hangup or
			// our own Close racing this read), not a diagnostic. Logging
			// it would also crash tests whose Logf died with the test.
			if err != io.EOF && !errors.Is(err, net.ErrClosed) && !errors.Is(err, io.ErrClosedPipe) {
				a.logf("ctrl agent: read: %v", err)
			}
			return
		}
		reply := a.handle(conn, st, f)
		st.w.Lock()
		err = WriteFrame(conn, reply)
		st.w.Unlock()
		if err != nil {
			if !errors.Is(err, net.ErrClosed) && !errors.Is(err, io.ErrClosedPipe) {
				a.logf("ctrl agent: write: %v", err)
			}
			return
		}
	}
}

// reconcile runs the post-mutation hook.
func (a *CtrlAgent) reconcile() {
	if a.Reconcile == nil {
		return
	}
	if err := a.Reconcile(a.ctx()); err != nil {
		a.logf("ctrl agent: reconcile: %v", err)
	}
}

// reconcileTask runs the task-scoped post-mutation hook when wired,
// falling back to the full reconcile.
func (a *CtrlAgent) reconcileTask(taskID int) {
	if a.ReconcileTask != nil {
		if err := a.ReconcileTask(a.ctx(), taskID); err != nil {
			a.logf("ctrl agent: reconcile task %d: %v", taskID, err)
		}
		return
	}
	a.reconcile()
}

// taskInfo converts an orchestrator task snapshot to its wire view.
func taskInfo(t *orchestrator.Task) TaskInfo {
	m := TaskInfo{
		ID:       uint32(t.ID),
		Kind:     t.Kind.String(),
		State:    t.State.String(),
		Priority: uint32(t.Priority),
		FreqHz:   t.FreqHz,
	}
	if r := t.Result; r != nil {
		m.HasResult = true
		m.Metric = r.Metric
		m.MetricName = r.MetricName
		m.Share = r.Share
		m.Satisfied = r.Satisfied
		m.Strategy = r.Strategy
		m.Surfaces = append([]string(nil), r.Surfaces...)
	}
	if t.Err != nil {
		m.Err = t.Err.Error()
	}
	m.Tenant = t.Tenant
	m.Domain = uint32(t.Domain)
	return m
}

// handle dispatches one request frame and builds the reply.
func (a *CtrlAgent) handle(conn net.Conn, st *connState, f Frame) Frame {
	fail := func(err error) Frame { return errorFrame(f.Corr, err) }
	ack := Frame{Type: MsgAck, Corr: f.Corr}

	switch f.Type {
	case MsgReplSnapshot, MsgReplAppend, MsgReplHeartbeat:
		if a.Repl == nil {
			return fail(errors.New("ctrlproto: replication not enabled"))
		}
		return a.Repl.Handle(f)
	}
	if a.Standby != nil && a.Standby() {
		switch f.Type {
		case MsgEndTask, MsgSetIdle, MsgSubmitTask, MsgDemand, MsgMoveTask:
			return fail(ErrNotLeader)
		}
	}

	switch f.Type {
	case MsgListTasks:
		var reply TasksReply
		for _, t := range a.Orch.Tasks() {
			reply.Tasks = append(reply.Tasks, taskInfo(t))
		}
		return Frame{Type: MsgTasksReply, Corr: f.Corr, Payload: reply.Encode()}

	case MsgEndTask:
		m, err := DecodeTaskIDMsg(f.Payload)
		if err != nil {
			return fail(err)
		}
		if err := a.Orch.EndTask(int(m.ID)); err != nil {
			return fail(err)
		}
		a.reconcileTask(int(m.ID))
		return ack

	case MsgSetIdle:
		m, err := DecodeTaskIDMsg(f.Payload)
		if err != nil {
			return fail(err)
		}
		if err := a.Orch.SetIdle(int(m.ID), m.Idle); err != nil {
			return fail(err)
		}
		a.reconcileTask(int(m.ID))
		return ack

	case MsgMoveTask:
		m, err := DecodeMoveTaskMsg(f.Payload)
		if err != nil {
			return fail(err)
		}
		if _, err := a.Orch.MoveTask(int(m.ID), geom.V(m.Pos[0], m.Pos[1], m.Pos[2])); err != nil {
			return fail(err)
		}
		a.reconcileTask(int(m.ID))
		return ack

	case MsgSubmitTask:
		m, err := DecodeSubmitMsg(f.Payload)
		if err != nil {
			return fail(err)
		}
		kind, goal, err := m.goal()
		if err != nil {
			return fail(err)
		}
		t, err := a.Orch.SubmitFor(a.ctx(), m.Tenant, kind, goal, int(m.Priority))
		if err != nil {
			return fail(err)
		}
		a.reconcileTask(t.ID)
		if cur, err := a.Orch.Task(t.ID); err == nil {
			t = cur // reflect post-scheduling state
		}
		return Frame{Type: MsgTaskReply, Corr: f.Corr, Payload: TaskReply{Task: taskInfo(t)}.Encode()}

	case MsgWatchTasks:
		if a.Events == nil {
			return fail(errors.New("ctrlproto: no event bus attached"))
		}
		st.w.Lock()
		already := st.unwatch != nil
		if !already {
			ch, cancel := a.Events.SubscribeOpts(telemetry.SubOptions[telemetry.TaskEvent]{
				Name: "watch-legacy", Buffer: 256, Policy: telemetry.DropOldest,
			})
			st.unwatch = cancel
			go a.streamEvents(conn, st, 0, ch)
		}
		st.w.Unlock()
		return ack

	case MsgOpenStream:
		if a.Events == nil {
			return fail(errors.New("ctrlproto: no event bus attached"))
		}
		m, err := DecodeOpenStreamMsg(f.Payload)
		if err != nil {
			return fail(err)
		}
		if m.Stream == 0 {
			return fail(errors.New("ctrlproto: stream ID 0 is reserved"))
		}
		opts, err := streamSubOptions(m)
		if err != nil {
			return fail(err)
		}
		st.w.Lock()
		if _, dup := st.streams[m.Stream]; dup {
			st.w.Unlock()
			return fail(fmt.Errorf("ctrlproto: stream %d already open", m.Stream))
		}
		ch, cancel := a.Events.SubscribeOpts(opts)
		if st.streams == nil {
			st.streams = make(map[uint32]func())
		}
		st.streams[m.Stream] = cancel
		st.w.Unlock()
		go a.streamEvents(conn, st, m.Stream, ch)
		return ack

	case MsgCloseStream:
		m, err := DecodeCloseStreamMsg(f.Payload)
		if err != nil {
			return fail(err)
		}
		st.w.Lock()
		cancel, ok := st.streams[m.Stream]
		delete(st.streams, m.Stream)
		st.w.Unlock()
		if !ok {
			return fail(fmt.Errorf("ctrlproto: stream %d not open", m.Stream))
		}
		cancel()
		return ack

	case MsgHealth:
		reply := HealthReply{Devices: HealthInfos(a.Orch.HW.HealthAll())}
		if a.ControlHealth != nil {
			reply.HasControl = true
			reply.Control = a.ControlHealth()
		}
		return Frame{Type: MsgHealthReply, Corr: f.Corr, Payload: reply.Encode()}

	case MsgDemand:
		if a.Broker == nil {
			return fail(errors.New("ctrlproto: no broker attached"))
		}
		m, err := DecodeDemandMsg(f.Payload)
		if err != nil {
			return fail(err)
		}
		calls, tasks, err := a.Broker.HandleDemand(a.ctx(), m.Utterance)
		if err != nil {
			return fail(err)
		}
		a.reconcile()
		var reply DemandReply
		for _, c := range calls {
			reply.Calls = append(reply.Calls, c.String())
		}
		for _, t := range tasks {
			if cur, err := a.Orch.Task(t.ID); err == nil {
				t = cur
			}
			reply.Tasks = append(reply.Tasks, taskInfo(t))
		}
		return Frame{Type: MsgDemandReply, Corr: f.Corr, Payload: reply.Encode()}

	default:
		return fail(fmt.Errorf("ctrlproto: ctrl agent cannot handle %v", f.Type))
	}
}

// streamSubOptions maps a stream-open request to its bus subscription:
// the kind picks the backpressure policy, the filter scopes delivery.
func streamSubOptions(m OpenStreamMsg) (telemetry.SubOptions[telemetry.TaskEvent], error) {
	switch m.Kind {
	case StreamTasks:
		o := telemetry.SubOptions[telemetry.TaskEvent]{
			Name: "watch-tasks", Buffer: 256, Policy: telemetry.DropOldest,
		}
		if tenant := m.Filter; tenant != "" {
			o.Filter = func(ev telemetry.TaskEvent) bool { return ev.Tenant == tenant }
		}
		return o, nil
	case StreamHealth:
		o := telemetry.SubOptions[telemetry.TaskEvent]{
			Name: "watch-health", Buffer: 64, Policy: telemetry.Coalesce,
			Key: func(ev telemetry.TaskEvent) string { return ev.DeviceID },
		}
		device := m.Filter
		o.Filter = func(ev telemetry.TaskEvent) bool {
			return ev.DeviceID != "" && (device == "" || ev.DeviceID == device)
		}
		return o, nil
	}
	return telemetry.SubOptions[telemetry.TaskEvent]{}, fmt.Errorf("ctrlproto: unknown stream kind %q", m.Kind)
}

// eventMsg converts a bus event to its wire form.
func eventMsg(ev telemetry.TaskEvent) TaskEventMsg {
	return TaskEventMsg{
		UnixNanos:  ev.Time.UnixNano(),
		TaskID:     uint32(ev.TaskID),
		Kind:       ev.Kind,
		State:      ev.State,
		FreqHz:     ev.FreqHz,
		Endpoint:   ev.Endpoint,
		Strategy:   ev.Strategy,
		Surfaces:   ev.Surfaces,
		Share:      ev.Share,
		Metric:     ev.Metric,
		MetricName: ev.MetricName,
		Err:        ev.Err,
		DeviceID:   ev.DeviceID,
		Tenant:     ev.Tenant,
		Domain:     uint32(ev.Domain),
	}
}

// streamEvents forwards bus events to one watcher — as correlation-0
// pushes for the legacy whole-table watch (stream 0), or tagged with the
// stream ID for a multiplexed stream — until the subscription is
// cancelled (stream close or connection teardown).
func (a *CtrlAgent) streamEvents(conn net.Conn, st *connState, stream uint32, ch <-chan telemetry.TaskEvent) {
	for ev := range ch {
		m := eventMsg(ev)
		st.w.Lock()
		err := WriteFrame(conn, Frame{Type: MsgTaskEvent, Corr: stream, Payload: m.Encode()})
		st.w.Unlock()
		if err != nil {
			return // reader side tears the connection down
		}
	}
}

// goal reconstructs the service goal from the wire union.
func (m SubmitMsg) goal() (orchestrator.ServiceKind, any, error) {
	kind, err := orchestrator.KindByName(m.Kind)
	if err != nil {
		return 0, nil, err
	}
	pos := geom.V(m.Pos[0], m.Pos[1], m.Pos[2])
	pos2 := geom.V(m.Pos2[0], m.Pos2[1], m.Pos2[2])
	switch kind {
	case orchestrator.ServiceLink:
		return kind, orchestrator.LinkGoal{
			Endpoint: m.Endpoint, Pos: pos, MinSNRdB: m.MinSNRdB, FreqHz: m.FreqHz,
		}, nil
	case orchestrator.ServiceCoverage:
		return kind, orchestrator.CoverageGoal{
			Region: m.Region, MedianSNRdB: m.MediandB, FreqHz: m.FreqHz, GridStep: m.GridStep,
		}, nil
	case orchestrator.ServiceSensing:
		return kind, orchestrator.SensingGoal{
			Region: m.Region, Type: m.Type, Duration: time.Duration(m.DurNanos),
			FreqHz: m.FreqHz, GridStep: m.GridStep,
		}, nil
	case orchestrator.ServicePowering:
		return kind, orchestrator.PowerGoal{
			Device: m.Endpoint, Pos: pos, Duration: time.Duration(m.DurNanos), FreqHz: m.FreqHz,
		}, nil
	case orchestrator.ServiceSecurity:
		return kind, orchestrator.SecurityGoal{
			Endpoint: m.Endpoint, UserPos: pos, EvePos: pos2, FreqHz: m.FreqHz,
		}, nil
	}
	// A registered extension service has no wire goal mapping yet.
	return 0, nil, fmt.Errorf("%w: no wire goal for %q", orchestrator.ErrUnknownService, m.Kind)
}
