package ctrlproto

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"surfos/internal/driver"
	"surfos/internal/em"
	"surfos/internal/hwmgr"
	"surfos/internal/orchestrator"
	"surfos/internal/rfsim"
	"surfos/internal/scene"
	"surfos/internal/surface"
	"surfos/internal/telemetry"
)

// ctrlRig builds an orchestrator with one surface + AP and serves it
// through a CtrlAgent over an in-process pipe.
type ctrlRig struct {
	orch   *orchestrator.Orchestrator
	events *telemetry.EventBus
	agent  *CtrlAgent
	client *Client
}

func newCtrlRig(t *testing.T) *ctrlRig {
	t.Helper()
	return newCtrlRigFaults(t, nil, nil)
}

// newCtrlRigFaults is newCtrlRig with a wire-fault script attached to the
// client and/or agent side of the northbound connection (nil = clean).
func newCtrlRigFaults(t *testing.T, clientFaults, agentFaults *WireFaults) *ctrlRig {
	t.Helper()
	apt := scene.NewApartment()
	hw := hwmgr.New()
	spec, err := driver.Lookup(driver.ModelNRSurface)
	if err != nil {
		t.Fatal(err)
	}
	pitch := em.Wavelength(spec.FreqLowHz+(spec.FreqHighHz-spec.FreqLowHz)/2) / 2
	m := apt.Mounts[scene.MountEastWall]
	panel := m.Panel(24*pitch+0.02, 24*pitch+0.02)
	s, err := surface.New("s0", panel, surface.Layout{Rows: 24, Cols: 24, PitchU: pitch, PitchV: pitch}, spec.OpMode, nil)
	if err != nil {
		t.Fatal(err)
	}
	drv, err := driver.New(spec, s)
	if err != nil {
		t.Fatal(err)
	}
	if err := hw.AddSurface("s0", scene.MountEastWall, drv); err != nil {
		t.Fatal(err)
	}
	if err := hw.AddAP(&hwmgr.AccessPoint{ID: "ap0", Pos: apt.AP, FreqHz: 24e9, Budget: rfsim.DefaultBudget(), Antennas: 4}); err != nil {
		t.Fatal(err)
	}
	orch, err := orchestrator.New(apt.Scene, hw, orchestrator.Options{
		OptIters: 30, GridStep: 1.2, SensingGridStep: 2.0, SensingBins: 15, SensingSubcarriers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	events := telemetry.NewEventBus()
	orch.SetEventBus(events)

	agent, err := NewCtrlAgent(orch)
	if err != nil {
		t.Fatal(err)
	}
	agent.Events = events
	agent.Reconcile = orch.Reconcile
	agent.Logf = t.Logf

	server, clientConn := net.Pipe()
	var agentConn net.Conn = server
	if agentFaults != nil {
		agentConn = NewFaultyConn(server, agentFaults)
	}
	go agent.ServeConn(agentConn)
	var cc net.Conn = clientConn
	if clientFaults != nil {
		cc = NewFaultyConn(clientConn, clientFaults)
	}
	client := NewClient(cc)
	t.Cleanup(func() {
		client.Close()
		agent.Close()
	})
	return &ctrlRig{orch: orch, events: events, agent: agent, client: client}
}

func TestSentinelsSurviveWireHop(t *testing.T) {
	r := newCtrlRig(t)
	ctx := context.Background()

	// Unknown task: the orchestrator's sentinel must round-trip through
	// status codes and come back errors.Is-able.
	err := r.client.EndTask(ctx, 999)
	if !errors.Is(err, orchestrator.ErrUnknownTask) {
		t.Errorf("EndTask(999) err = %v, want errors.Is ErrUnknownTask", err)
	}
	var we *WireError
	if !errors.As(err, &we) || we.Status != StatusUnknownTask {
		t.Errorf("EndTask(999) wire error = %+v, want StatusUnknownTask", err)
	}
	if err := r.client.SetTaskIdle(ctx, 999, true); !errors.Is(err, orchestrator.ErrUnknownTask) {
		t.Errorf("SetTaskIdle(999) err = %v, want ErrUnknownTask", err)
	}

	// Invalid goal: distinct sentinel, distinct status.
	_, err = r.client.SubmitTask(ctx, SubmitMsg{Kind: "link", Priority: 1}) // no endpoint
	if !errors.Is(err, orchestrator.ErrGoalInvalid) {
		t.Errorf("bad submit err = %v, want errors.Is ErrGoalInvalid", err)
	}
	if errors.Is(err, orchestrator.ErrUnknownTask) {
		t.Error("ErrGoalInvalid aliased to ErrUnknownTask across the wire")
	}

	// Unknown service name.
	_, err = r.client.SubmitTask(ctx, SubmitMsg{Kind: "warp-drive", Priority: 1})
	if !errors.Is(err, orchestrator.ErrUnknownService) {
		t.Errorf("unknown kind err = %v, want ErrUnknownService", err)
	}
}

func TestSubmitListEndOverWire(t *testing.T) {
	r := newCtrlRig(t)
	ctx := context.Background()
	r.client.Timeout = 30 * time.Second // reconcile runs inside the request

	task, err := r.client.SubmitTask(ctx, SubmitMsg{
		Kind: "link", Endpoint: "laptop", Pos: [3]float64{2.5, 5.5, 1.2}, Priority: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if task.Kind != "link" || task.Priority != 2 {
		t.Errorf("task = %+v", task)
	}
	// The agent reconciles post-submit, so the reply reflects scheduling.
	if task.State != "running" || !task.HasResult || task.MetricName != "snr_db" {
		t.Errorf("post-reconcile task = %+v", task)
	}
	if len(task.Surfaces) != 1 || task.Surfaces[0] != "s0" {
		t.Errorf("task surfaces = %v", task.Surfaces)
	}

	tasks, err := r.client.ListTasks(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 1 || tasks[0].ID != task.ID {
		t.Fatalf("tasks = %+v", tasks)
	}

	if err := r.client.EndTask(ctx, int(task.ID)); err != nil {
		t.Fatal(err)
	}
	tasks, err = r.client.ListTasks(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 1 || tasks[0].State != "done" {
		t.Errorf("tasks after end = %+v", tasks)
	}
}

func TestWatchTasksStreamsEvents(t *testing.T) {
	r := newCtrlRig(t)
	ctx := context.Background()
	r.client.Timeout = 30 * time.Second

	if err := r.client.WatchTasks(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := r.client.SubmitTask(ctx, SubmitMsg{
		Kind: "link", Endpoint: "laptop", Pos: [3]float64{2.5, 5.5, 1.2}, Priority: 1,
	}); err != nil {
		t.Fatal(err)
	}

	want := map[string]bool{
		telemetry.TaskSubmitted: false,
		telemetry.TaskScheduled: false,
		telemetry.TaskRunning:   false,
	}
	deadline := time.After(10 * time.Second)
	for {
		missing := false
		for _, seen := range want {
			if !seen {
				missing = true
			}
		}
		if !missing {
			break
		}
		select {
		case ev := <-r.client.TaskEvents:
			if _, ok := want[ev.State]; ok {
				want[ev.State] = true
			}
			if ev.State == telemetry.TaskRunning {
				if ev.Kind != "link" || ev.Endpoint != "laptop" || ev.MetricName != "snr_db" {
					t.Errorf("running event = %+v", ev)
				}
			}
		case <-deadline:
			t.Fatalf("timed out; seen = %v", want)
		}
	}
}

func TestHealthQueryOverWire(t *testing.T) {
	r := newCtrlRig(t)
	ctx := context.Background()

	infos, err := r.client.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].DeviceID != "s0" || infos[0].State != "healthy" {
		t.Fatalf("initial health = %+v", infos)
	}

	// Inject faults on the served device; the wire view must follow.
	dev, err := r.orch.HW.Surface("s0")
	if err != nil {
		t.Fatal(err)
	}
	fm := driver.NewFaultModel(1)
	dev.Drv.SetFaults(fm)
	fm.StickElement(5, 1.0)
	r.orch.HW.ProbeAll()

	infos, err = r.client.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if infos[0].State != "degraded" || len(infos[0].StuckElements) != 1 || infos[0].StuckElements[0] != 5 {
		t.Fatalf("degraded health = %+v", infos[0])
	}

	fm.SetDead(true)
	r.orch.HW.ProbeAll()
	infos, err = r.client.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if infos[0].State != "dead" || infos[0].LastErr == "" {
		t.Fatalf("dead health = %+v", infos[0])
	}
}

func TestDeviceEventsReachWatchers(t *testing.T) {
	r := newCtrlRig(t)
	if err := r.client.WatchTasks(context.Background()); err != nil {
		t.Fatal(err)
	}
	r.orch.HW.SetEventBus(r.events)
	dev, _ := r.orch.HW.Surface("s0")
	fm := driver.NewFaultModel(1)
	dev.Drv.SetFaults(fm)
	fm.SetDead(true)
	r.orch.HW.ProbeAll()

	select {
	case ev := <-r.client.TaskEvents:
		if ev.State != telemetry.DeviceDead || ev.DeviceID != "s0" {
			t.Fatalf("event = %+v, want device_dead for s0", ev)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no device event reached the watcher")
	}
}
