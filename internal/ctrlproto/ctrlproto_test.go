package ctrlproto

import (
	"bytes"
	"context"
	"errors"
	"math"
	"net"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"surfos/internal/driver"
	"surfos/internal/geom"
	"surfos/internal/surface"
)

func testDriver(t *testing.T, model string, mode surface.OpMode) *driver.Driver {
	t.Helper()
	panel := geom.RectXY(geom.V(0, 0, 1), geom.V(-1, 0, 0), geom.V(0, 0, 1), 0.3, 0.3)
	s, err := surface.New("p", panel, surface.Layout{Rows: 2, Cols: 3, PitchU: 0.00625, PitchV: 0.00625}, mode, nil)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := driver.Lookup(model)
	if err != nil {
		t.Fatal(err)
	}
	d, err := driver.New(spec, s)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// startAgent serves a real TCP agent and returns a connected client.
func startAgent(t *testing.T, model string, mode surface.OpMode) (*Agent, *Client) {
	t.Helper()
	drv := testDriver(t, model, mode)
	a, err := NewAgent("dev0", "east_wall", drv)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := a.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	c, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return a, c
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	f := Frame{Type: MsgShiftPhase, Corr: 42, Payload: []byte{1, 2, 3}}
	if err := WriteFrame(&buf, f); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != f.Type || got.Corr != f.Corr || !bytes.Equal(got.Payload, f.Payload) {
		t.Errorf("round trip mismatch: %+v vs %+v", got, f)
	}
}

func TestFrameBadMagic(t *testing.T) {
	raw := make([]byte, headerLen)
	raw[0] = 0xde
	raw[1] = 0xad
	if _, err := ReadFrame(bytes.NewReader(raw)); !errors.Is(err, ErrBadMagic) {
		t.Errorf("got %v, want ErrBadMagic", err)
	}
}

func TestFrameBadVersion(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, Frame{Type: MsgAck}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[2] = 99
	if _, err := ReadFrame(bytes.NewReader(raw)); !errors.Is(err, ErrBadVersion) {
		t.Errorf("got %v, want ErrBadVersion", err)
	}
}

func TestFrameOversized(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, Frame{Type: MsgAck}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[8], raw[9], raw[10], raw[11] = 0xff, 0xff, 0xff, 0xff
	if _, err := ReadFrame(bytes.NewReader(raw)); !errors.Is(err, ErrTooLarge) {
		t.Errorf("got %v, want ErrTooLarge", err)
	}
	big := Frame{Type: MsgAck, Payload: make([]byte, MaxPayload+1)}
	if err := WriteFrame(&buf, big); !errors.Is(err, ErrTooLarge) {
		t.Errorf("write oversized: got %v", err)
	}
}

func TestFrameTruncatedPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, Frame{Type: MsgAck, Payload: []byte{1, 2, 3, 4}}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()[:buf.Len()-2] // drop last two bytes
	if _, err := ReadFrame(bytes.NewReader(raw)); err == nil {
		t.Error("truncated frame accepted")
	}
}

func TestPayloadRoundTrips(t *testing.T) {
	hello := Hello{DeviceID: "d1", Model: "mmWall", Mount: "north"}
	h2, err := DecodeHello(hello.Encode())
	if err != nil || h2 != hello {
		t.Errorf("hello: %+v %v", h2, err)
	}

	cfg := ConfigMsg{Property: surface.Phase, Values: []float64{0, 1.5, math.Pi}}
	c2, err := DecodeConfigMsg(cfg.Encode())
	if err != nil || c2.Property != cfg.Property || len(c2.Values) != 3 || c2.Values[2] != math.Pi {
		t.Errorf("config: %+v %v", c2, err)
	}

	cb := CodebookMsg{
		Property: surface.Phase,
		Labels:   []string{"a", "b"},
		Entries:  [][]float64{{1, 2}, {3, 4}},
	}
	cb2, err := DecodeCodebookMsg(cb.Encode())
	if err != nil || len(cb2.Entries) != 2 || cb2.Labels[1] != "b" || cb2.Entries[1][0] != 3 {
		t.Errorf("codebook: %+v %v", cb2, err)
	}

	sel := SelectMsg{Index: 7}
	s2, err := DecodeSelectMsg(sel.Encode())
	if err != nil || s2 != sel {
		t.Errorf("select: %+v %v", s2, err)
	}

	spec := SpecReply{
		Model: "NR-Surface", FreqLowHz: 23e9, FreqHighHz: 25e9,
		Control: surface.Phase, OpMode: surface.Reflective,
		Granularity: surface.ColumnWise, Reconfigurable: true,
		PhaseBits: 2, ControlDelayNanos: 100000, Rows: 8, Cols: 16, CostUSD: 441.6,
	}
	sp2, err := DecodeSpecReply(spec.Encode())
	if err != nil || sp2 != spec {
		t.Errorf("spec: %+v %v", sp2, err)
	}

	ar := ActiveReply{HasActive: true, Label: "beam3", Property: surface.Phase, Values: []float64{0.5}}
	ar2, err := DecodeActiveReply(ar.Encode())
	if err != nil || ar2.Label != "beam3" || !ar2.HasActive || ar2.Values[0] != 0.5 {
		t.Errorf("active: %+v %v", ar2, err)
	}

	em := ErrorMsg{Text: "boom"}
	em2, err := DecodeErrorMsg(em.Encode())
	if err != nil || em2 != em {
		t.Errorf("error: %+v %v", em2, err)
	}

	fb := FeedbackMsg{EndpointID: "phone", ConfigIdx: 3, SNRdB: 22.5, UnixNanos: 12345}
	fb2, err := DecodeFeedbackMsg(fb.Encode())
	if err != nil || fb2 != fb {
		t.Errorf("feedback: %+v %v", fb2, err)
	}
}

func TestDecodeRejectsTrailingGarbage(t *testing.T) {
	b := append(Hello{DeviceID: "d"}.Encode(), 0xff)
	if _, err := DecodeHello(b); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestDecodeTruncatedPayloads(t *testing.T) {
	msgs := [][]byte{
		Hello{DeviceID: "device", Model: "m", Mount: "w"}.Encode(),
		ConfigMsg{Property: surface.Phase, Values: []float64{1, 2, 3}}.Encode(),
		CodebookMsg{Property: surface.Phase, Labels: []string{"x"}, Entries: [][]float64{{1}}}.Encode(),
		SpecReply{Model: "m"}.Encode(),
		FeedbackMsg{EndpointID: "e"}.Encode(),
	}
	decoders := []func([]byte) error{
		func(b []byte) error { _, err := DecodeHello(b); return err },
		func(b []byte) error { _, err := DecodeConfigMsg(b); return err },
		func(b []byte) error { _, err := DecodeCodebookMsg(b); return err },
		func(b []byte) error { _, err := DecodeSpecReply(b); return err },
		func(b []byte) error { _, err := DecodeFeedbackMsg(b); return err },
	}
	for i, full := range msgs {
		for cut := 1; cut < len(full); cut++ {
			if err := decoders[i](full[:cut]); err == nil {
				t.Errorf("decoder %d accepted %d/%d bytes", i, cut, len(full))
			}
		}
	}
}

func TestConfigMsgQuickRoundTrip(t *testing.T) {
	f := func(vals []float64, prop uint8) bool {
		for i, v := range vals {
			if math.IsNaN(v) {
				vals[i] = 0
			}
		}
		m := ConfigMsg{Property: surface.ControlProperty(prop), Values: vals}
		got, err := DecodeConfigMsg(m.Encode())
		if err != nil || got.Property != m.Property || len(got.Values) != len(vals) {
			return false
		}
		for i := range vals {
			if got.Values[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEndToEndOverTCP(t *testing.T) {
	_, c := startAgent(t, driver.ModelNRSurface, surface.Reflective)

	h, err := c.Hello(context.Background())
	if err != nil || h.DeviceID != "dev0" || h.Model != driver.ModelNRSurface || h.Mount != "east_wall" {
		t.Fatalf("hello: %+v %v", h, err)
	}

	spec, err := c.GetSpec(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if spec.Model != driver.ModelNRSurface || spec.Granularity != surface.ColumnWise || spec.Rows != 2 || spec.Cols != 3 {
		t.Errorf("spec: %+v", spec)
	}

	cfg := surface.Config{Property: surface.Phase, Values: []float64{0, 1, 2, 0, 1, 2}}
	if err := c.ShiftPhase(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	act, err := c.Active(context.Background())
	if err != nil || !act.HasActive {
		t.Fatalf("active: %+v %v", act, err)
	}
	if len(act.Values) != 6 {
		t.Errorf("active values: %v", act.Values)
	}

	// Codebook + select.
	mk := func(v float64) surface.Config {
		vals := make([]float64, 6)
		for i := range vals {
			vals[i] = v
		}
		return surface.Config{Property: surface.Phase, Values: vals}
	}
	if err := c.StoreCodebook(context.Background(), []string{"b0", "b1"}, []surface.Config{mk(0), mk(math.Pi)}); err != nil {
		t.Fatal(err)
	}
	if err := c.Select(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	act, _ = c.Active(context.Background())
	if act.Label != "b1" {
		t.Errorf("active label after select: %q", act.Label)
	}
	if err := c.Select(context.Background(), 9); err == nil || !strings.Contains(err.Error(), "agent error") {
		t.Errorf("bad select: %v", err)
	}
}

func TestAgentRejectsWrongProperty(t *testing.T) {
	_, c := startAgent(t, driver.ModelNRSurface, surface.Reflective)
	err := c.SetAmplitude(context.Background(), surface.Config{Property: surface.Amplitude, Values: make([]float64, 6)})
	if err == nil || !strings.Contains(err.Error(), "agent error") {
		t.Errorf("amplitude on phase hardware: %v", err)
	}
}

func TestClientPipelinedRequests(t *testing.T) {
	_, c := startAgent(t, driver.ModelNRSurface, surface.Reflective)
	done := make(chan error, 16)
	for i := 0; i < 16; i++ {
		go func() {
			_, err := c.GetSpec(context.Background())
			done <- err
		}()
	}
	for i := 0; i < 16; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestClientSurvivesAgentError(t *testing.T) {
	_, c := startAgent(t, driver.ModelAutoMS, surface.Reflective)
	cfg := surface.Config{Property: surface.Phase, Values: make([]float64, 6)}
	if err := c.ShiftPhase(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	// Passive: second write fails but the connection stays usable.
	if err := c.ShiftPhase(context.Background(), cfg); err == nil {
		t.Fatal("second passive write accepted")
	}
	if _, err := c.GetSpec(context.Background()); err != nil {
		t.Errorf("connection unusable after agent error: %v", err)
	}
}

func TestClientDisconnectFailsPending(t *testing.T) {
	a, c := startAgent(t, driver.ModelNRSurface, surface.Reflective)
	a.Close()
	c.Timeout = 500 * time.Millisecond
	if _, err := c.GetSpec(context.Background()); err == nil {
		t.Error("request succeeded after agent close")
	}
	// Subsequent requests fail fast.
	if _, err := c.GetSpec(context.Background()); err == nil {
		t.Error("request succeeded on closed client")
	}
}

func TestClientFeedbackPush(t *testing.T) {
	// Hand-rolled agent push: connect a raw listener that sends feedback.
	drv := testDriver(t, driver.ModelNRSurface, surface.Reflective)
	a, err := NewAgent("dev0", "w", drv)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := a.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	c, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Feedback flows agent→client over the same TCP stream. The agent's
	// accept loop registers the connection asynchronously after Dial
	// returns, so poll briefly.
	deadline := time.Now().Add(2 * time.Second)
	for {
		err := a.PushFeedback(FeedbackMsg{EndpointID: "e1", ConfigIdx: 2, SNRdB: 17})
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal(err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	select {
	case fb := <-c.Feedback:
		if fb.EndpointID != "e1" || fb.ConfigIdx != 2 || fb.SNRdB != 17 {
			t.Errorf("feedback: %+v", fb)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no feedback received")
	}
}

func TestNewAgentValidation(t *testing.T) {
	if _, err := NewAgent("", "w", testDriver(t, driver.ModelNRSurface, surface.Reflective)); err == nil {
		t.Error("empty device id accepted")
	}
	if _, err := NewAgent("x", "w", nil); err == nil {
		t.Error("nil driver accepted")
	}
}

func TestMsgTypeString(t *testing.T) {
	if MsgHello.String() != "hello" || MsgFeedback.String() != "feedback" {
		t.Error("known names wrong")
	}
	if MsgType(200).String() == "" {
		t.Error("unknown type should still stringify")
	}
}

// silentClient returns a client whose peer reads requests but never
// replies — the shape of a hung agent.
func silentClient(t *testing.T) *Client {
	t.Helper()
	cc, sc := net.Pipe()
	go func() {
		for {
			if _, err := ReadFrame(sc); err != nil {
				return
			}
		}
	}()
	c := NewClient(cc)
	t.Cleanup(func() { c.Close(); sc.Close() })
	return c
}

func TestClientHonorsContextCancel(t *testing.T) {
	c := silentClient(t)
	c.Timeout = time.Minute // the ctx, not the client timeout, must win

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := c.GetSpec(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancel took %v; client timeout won instead", elapsed)
	}
	// The pending slot must be reclaimed, not leaked.
	c.mu.Lock()
	n := len(c.pending)
	c.mu.Unlock()
	if n != 0 {
		t.Errorf("%d pending requests leaked after cancel", n)
	}
}

func TestClientHonorsEarlierContextDeadline(t *testing.T) {
	c := silentClient(t)
	c.Timeout = time.Minute

	ctx, cancel := context.WithTimeout(context.Background(), 40*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.GetSpec(ctx)
	if err == nil {
		t.Fatal("request against a hung agent succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline honored after %v; want ~40ms", elapsed)
	}

	// An already-expired deadline fails before any I/O.
	expired, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel2()
	if _, err := c.GetSpec(expired); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
}

func TestClientNilContextUsesTimeout(t *testing.T) {
	c := silentClient(t)
	c.Timeout = 50 * time.Millisecond
	start := time.Now()
	//lint:ignore SA1012 nil ctx tolerance is part of the API contract
	if _, err := c.GetSpec(nil); err == nil {
		t.Fatal("hung agent round trip succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout took %v", elapsed)
	}
}
