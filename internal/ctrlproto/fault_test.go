package ctrlproto

import (
	"context"
	"errors"
	"math"
	"net"
	"os"
	"strconv"
	"testing"
	"time"

	"surfos/internal/driver"
	"surfos/internal/surface"
	"surfos/internal/telemetry"
)

// faultSeed returns the suite's wire-fault/jitter seed: SURFOS_FAULT_SEED
// when set (`make test-faults` replays the suite at several), else def.
// Assertions here rely on scripted faults (DropNext, SetDupProb 1), never
// on a particular random draw, so any seed passes.
func faultSeed(def int64) int64 {
	if s := os.Getenv("SURFOS_FAULT_SEED"); s != "" {
		if n, err := strconv.ParseInt(s, 10, 64); err == nil {
			return n
		}
	}
	return def
}

// pipePair connects a client and a device agent over net.Pipe, with the
// given fault script on the chosen side's writes (nil = no faults).
func pipePair(t *testing.T, clientFaults, agentFaults *WireFaults) (*Agent, *Client) {
	t.Helper()
	drv := testDriver(t, driver.ModelNRSurface, surface.Reflective)
	a, err := NewAgent("dev0", "east_wall", drv)
	if err != nil {
		t.Fatal(err)
	}
	cc, sc := net.Pipe()
	var agentConn net.Conn = sc
	if agentFaults != nil {
		agentConn = NewFaultyConn(sc, agentFaults)
	}
	go a.ServeConn(agentConn)
	var clientConn net.Conn = cc
	if clientFaults != nil {
		clientConn = NewFaultyConn(cc, clientFaults)
	}
	c := NewClient(clientConn)
	t.Cleanup(func() {
		c.Close()
		a.Close()
	})
	return a, c
}

func phases(n int, v float64) surface.Config {
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = v
	}
	return surface.Config{Property: surface.Phase, Values: vals}
}

// A wire-duplicated mutating request must apply exactly once: the agent's
// idempotency cache answers the duplicate from the original reply.
func TestWireDuplicateAppliesOnce(t *testing.T) {
	wf := NewWireFaults(faultSeed(3))
	wf.SetDupProb(1) // every request frame delivered twice
	a, c := pipePair(t, wf, nil)

	ctx := context.Background()
	if err := c.ShiftPhase(ctx, phases(6, math.Pi)); err != nil {
		t.Fatal(err)
	}
	if err := c.StoreCodebook(ctx, []string{"a", "b"},
		[]surface.Config{phases(6, 0), phases(6, math.Pi)}); err != nil {
		t.Fatal(err)
	}
	if err := c.Select(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if wf.Duplicated() < 3 {
		t.Fatalf("expected every frame duplicated, got %d", wf.Duplicated())
	}
	// Each logical write was applied once despite double delivery.
	if got := a.Drv.Updates(); got != 2 {
		t.Fatalf("driver accepted %d writes, want 2 (shift + codebook)", got)
	}
	if _, label, ok := a.Drv.Active(); !ok || label != "b" {
		t.Fatalf("active = %q, ok=%v; want entry b", label, ok)
	}
}

// When the agent's reply is lost, the client retries with the same request
// ID; the agent must answer from its cache without re-applying.
func TestRetryAfterLostReplyAppliesOnce(t *testing.T) {
	wf := NewWireFaults(faultSeed(5))
	a, c := pipePair(t, nil, wf)
	c.Timeout = 100 * time.Millisecond
	c.Retry = RetryPolicy{Attempts: 3, BaseDelay: 5 * time.Millisecond}
	c.SeedJitter(faultSeed(1))

	wf.DropNext(1) // the first reply vanishes; the write already applied
	if err := c.ShiftPhase(context.Background(), phases(6, math.Pi)); err != nil {
		t.Fatal(err)
	}
	if wf.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", wf.Dropped())
	}
	if got := a.Drv.Updates(); got != 1 {
		t.Fatalf("driver accepted %d writes, want exactly 1", got)
	}
}

// When the request itself is lost, the retry applies the write (first
// delivery never reached the agent) — and still exactly once.
func TestRetryAfterLostRequestApplies(t *testing.T) {
	wf := NewWireFaults(faultSeed(5))
	a, c := pipePair(t, wf, nil)
	c.Timeout = 100 * time.Millisecond
	c.Retry = RetryPolicy{Attempts: 3, BaseDelay: 5 * time.Millisecond}
	c.SeedJitter(faultSeed(1))

	wf.DropNext(1)
	if err := c.ShiftPhase(context.Background(), phases(6, math.Pi)); err != nil {
		t.Fatal(err)
	}
	if got := a.Drv.Updates(); got != 1 {
		t.Fatalf("driver accepted %d writes, want exactly 1", got)
	}
}

// Without retries, a lost reply surfaces as the typed timeout sentinel.
func TestTimeoutSentinel(t *testing.T) {
	c := silentClient(t)
	c.Timeout = 30 * time.Millisecond
	err := c.ShiftPhase(context.Background(), phases(6, 0))
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("got %v, want ErrTimeout", err)
	}
	// The sentinel is wired through the status table like the PR-2 ones.
	if StatusFor(err) != StatusTimeout {
		t.Fatalf("StatusFor(timeout) = %v", StatusFor(err))
	}
	we := &WireError{Status: StatusTimeout, Text: "remote timeout"}
	if !errors.Is(we, ErrTimeout) {
		t.Fatal("WireError(StatusTimeout) must unwrap to ErrTimeout")
	}
}

// Retries stop on semantic (non-timeout) errors: the agent's rejection is
// final, not retried into the same rejection N times.
func TestNoRetryOnSemanticError(t *testing.T) {
	a, c := pipePair(t, nil, nil)
	c.Timeout = time.Second
	c.Retry = RetryPolicy{Attempts: 5, BaseDelay: time.Millisecond}

	start := time.Now()
	err := c.Select(context.Background(), 7) // no codebook stored
	if err == nil {
		t.Fatal("select of missing entry should fail")
	}
	if errors.Is(err, ErrTimeout) {
		t.Fatalf("semantic failure misclassified as timeout: %v", err)
	}
	if time.Since(start) > 500*time.Millisecond {
		t.Fatal("semantic error appears to have been retried with backoff")
	}
	if a.Drv.Updates() != 0 {
		t.Fatal("failed select must not count as a write")
	}
}

// Retry timelines replay deterministically from a jitter seed.
func TestBackoffDeterministicFromSeed(t *testing.T) {
	delays := func(seed int64) []time.Duration {
		c := &Client{Retry: RetryPolicy{BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond}}
		c.SeedJitter(seed)
		var out []time.Duration
		for n := 1; n <= 6; n++ {
			out = append(out, c.backoffDelay(n))
		}
		return out
	}
	a, b := delays(42), delays(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("retry %d: %v != %v with same seed", i+1, a[i], b[i])
		}
		// Capped exponential with 50–100% jitter.
		nominal := 10 * time.Millisecond << i
		if nominal > 80*time.Millisecond {
			nominal = 80 * time.Millisecond
		}
		if a[i] < nominal/2 || a[i] > nominal {
			t.Fatalf("retry %d delay %v outside [%v, %v]", i+1, a[i], nominal/2, nominal)
		}
	}
	if d1, d2 := delays(1), delays(2); d1[0] == d2[0] && d1[1] == d2[1] && d1[2] == d2[2] {
		t.Fatal("different seeds should jitter differently")
	}
}

// The trailing optional ReqID survives the codec in both presence and
// absence.
func TestReqIDCodec(t *testing.T) {
	withID := ConfigMsg{Property: surface.Phase, Values: []float64{1, 2}, ReqID: 99}
	got, err := DecodeConfigMsg(withID.Encode())
	if err != nil || got.ReqID != 99 || len(got.Values) != 2 {
		t.Fatalf("config with id: %+v %v", got, err)
	}
	noID := ConfigMsg{Property: surface.Phase, Values: []float64{1, 2}}
	got, err = DecodeConfigMsg(noID.Encode())
	if err != nil || got.ReqID != 0 {
		t.Fatalf("config without id: %+v %v", got, err)
	}

	sel := SelectMsg{Index: 3, ReqID: 7}
	gs, err := DecodeSelectMsg(sel.Encode())
	if err != nil || gs.Index != 3 || gs.ReqID != 7 {
		t.Fatalf("select: %+v %v", gs, err)
	}

	cb := CodebookMsg{Property: surface.Phase, Labels: []string{"a"}, Entries: [][]float64{{1}}, ReqID: 11}
	gc, err := DecodeCodebookMsg(cb.Encode())
	if err != nil || gc.ReqID != 11 || len(gc.Entries) != 1 {
		t.Fatalf("codebook: %+v %v", gc, err)
	}
}

// Frame-level drop/dup dice replay deterministically from the seed.
func TestWireFaultsDeterministic(t *testing.T) {
	run := func() (int, int) {
		wf := NewWireFaults(9)
		wf.SetDropProb(0.3)
		wf.SetDupProb(0.3)
		for i := 0; i < 100; i++ {
			wf.decide()
		}
		return wf.Dropped(), wf.Duplicated()
	}
	d1, u1 := run()
	d2, u2 := run()
	if d1 != d2 || u1 != u2 {
		t.Fatalf("seeded wire faults diverged: (%d,%d) vs (%d,%d)", d1, u1, d2, u2)
	}
	if d1 == 0 || u1 == 0 {
		t.Fatalf("expected both fault kinds to fire: drops=%d dups=%d", d1, u1)
	}
}

// The seeded wire-fault suite extends to framed northbound connections:
// multiplexed stream events ride the same codec as southbound RPCs, so
// faults operate on whole frames — a dropped or duplicated event never
// corrupts the byte stream, and the connection's RPCs and sibling streams
// survive the script.
func TestWireFaultsOnNorthboundStream(t *testing.T) {
	clientWF := NewWireFaults(faultSeed(11))
	agentWF := NewWireFaults(faultSeed(12))
	r := newCtrlRigFaults(t, clientWF, agentWF)
	ctx := context.Background()

	s, err := r.client.OpenStream(ctx, StreamTasks, "")
	if err != nil {
		t.Fatal(err)
	}

	// A dropped event frame vanishes whole; the next one decodes cleanly.
	agentWF.DropNext(1)
	r.events.Publish(telemetry.TaskEvent{TaskID: 1, Kind: "link", State: telemetry.TaskRunning, Tenant: "default"})
	r.events.Publish(telemetry.TaskEvent{TaskID: 2, Kind: "link", State: telemetry.TaskRunning, Tenant: "default"})
	if ev := recvStream(t, s); ev.TaskID != 2 {
		t.Fatalf("after dropped frame got task %d, want 2", ev.TaskID)
	}
	if agentWF.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", agentWF.Dropped())
	}

	// A duplicated event frame delivers twice — streams are at-least-once
	// under wire faults, and each copy is a complete frame.
	agentWF.SetDupProb(1)
	r.events.Publish(telemetry.TaskEvent{TaskID: 3, Kind: "link", State: telemetry.TaskRunning, Tenant: "default"})
	if ev := recvStream(t, s); ev.TaskID != 3 {
		t.Fatalf("dup first copy = task %d", ev.TaskID)
	}
	if ev := recvStream(t, s); ev.TaskID != 3 {
		t.Fatalf("dup second copy = task %d", ev.TaskID)
	}
	agentWF.SetDupProb(0)

	// A lost open request surfaces as the timeout sentinel without leaking
	// a client-side stream registration, and the connection stays usable.
	r.client.Timeout = 100 * time.Millisecond
	clientWF.DropNext(1)
	if _, err := r.client.OpenStream(ctx, StreamTasks, ""); !errors.Is(err, ErrTimeout) {
		t.Fatalf("dropped open err = %v, want ErrTimeout", err)
	}
	r.client.mu.Lock()
	n := len(r.client.streams)
	r.client.mu.Unlock()
	if n != 1 {
		t.Fatalf("client streams after failed open = %d, want 1", n)
	}
	r.client.Timeout = 5 * time.Second
	s2, err := r.client.OpenStream(ctx, StreamTasks, "")
	if err != nil {
		t.Fatalf("open after wire fault: %v", err)
	}

	// Delay is latency, not loss: both streams still see the next event,
	// and an RPC shares the faulted connection unharmed.
	agentWF.SetDelay(2 * time.Millisecond)
	r.events.Publish(telemetry.TaskEvent{TaskID: 4, Kind: "link", State: telemetry.TaskRunning, Tenant: "default"})
	if ev := recvStream(t, s); ev.TaskID != 4 {
		t.Fatalf("delayed event on s = task %d", ev.TaskID)
	}
	if ev := recvStream(t, s2); ev.TaskID != 4 {
		t.Fatalf("delayed event on s2 = task %d", ev.TaskID)
	}
	if _, err := r.client.ListTasks(ctx); err != nil {
		t.Fatalf("RPC alongside faulted streams: %v", err)
	}
}
