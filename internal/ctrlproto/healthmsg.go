package ctrlproto

// Device-health payloads: the northbound health query surfctl uses. Message
// type values continue the task-control range — append only.

const (
	MsgHealth MsgType = iota + 24
	MsgHealthReply
)

// HealthInfo is the wire view of one device's health snapshot.
type HealthInfo struct {
	DeviceID string
	State    string // "healthy" / "degraded" / "dead"
	// StuckElements is the device's frozen-element mask, ascending.
	StuckElements       []uint32
	ConsecutiveFailures uint32
	TotalFailures       uint32
	LastErr             string
}

func (m HealthInfo) encode(e *encoder) {
	e.str(m.DeviceID)
	e.str(m.State)
	e.u32(uint32(len(m.StuckElements)))
	for _, v := range m.StuckElements {
		e.u32(v)
	}
	e.u32(m.ConsecutiveFailures)
	e.u32(m.TotalFailures)
	e.str(m.LastErr)
}

func decodeHealthInfo(d *decoder) HealthInfo {
	m := HealthInfo{DeviceID: d.str(), State: d.str()}
	n := int(d.u32())
	for i := 0; i < n && d.err == nil; i++ {
		m.StuckElements = append(m.StuckElements, d.u32())
	}
	m.ConsecutiveFailures = d.u32()
	m.TotalFailures = d.u32()
	m.LastErr = d.str()
	return m
}

// HealthReply lists every managed device's health.
type HealthReply struct{ Devices []HealthInfo }

// Encode serializes the message.
func (m HealthReply) Encode() []byte {
	var e encoder
	e.u32(uint32(len(m.Devices)))
	for _, h := range m.Devices {
		h.encode(&e)
	}
	return e.buf
}

// DecodeHealthReply parses a HealthReply payload.
func DecodeHealthReply(b []byte) (HealthReply, error) {
	d := decoder{buf: b}
	n := int(d.u32())
	m := HealthReply{}
	for i := 0; i < n && d.err == nil; i++ {
		m.Devices = append(m.Devices, decodeHealthInfo(&d))
	}
	return m, d.finish()
}
