package ctrlproto

// Device-health payloads: the northbound health query surfctl uses. Message
// type values continue the task-control range — append only.

const (
	MsgHealth MsgType = iota + 24
	MsgHealthReply
)

// HealthInfo is the wire view of one device's health snapshot.
type HealthInfo struct {
	DeviceID string
	State    string // "healthy" / "degraded" / "dead"
	// StuckElements is the device's frozen-element mask, ascending.
	StuckElements       []uint32
	ConsecutiveFailures uint32
	TotalFailures       uint32
	LastErr             string
}

func (m HealthInfo) encode(e *encoder) {
	e.str(m.DeviceID)
	e.str(m.State)
	e.u32(uint32(len(m.StuckElements)))
	for _, v := range m.StuckElements {
		e.u32(v)
	}
	e.u32(m.ConsecutiveFailures)
	e.u32(m.TotalFailures)
	e.str(m.LastErr)
}

func decodeHealthInfo(d *decoder) HealthInfo {
	m := HealthInfo{DeviceID: d.str(), State: d.str()}
	n := int(d.u32())
	for i := 0; i < n && d.err == nil; i++ {
		m.StuckElements = append(m.StuckElements, d.u32())
	}
	m.ConsecutiveFailures = d.u32()
	m.TotalFailures = d.u32()
	m.LastErr = d.str()
	return m
}

// ShardHealthInfo is the wire view of one interference-domain shard of the
// orchestrator: its surfaces, live task load, and reconcile statistics.
type ShardHealthInfo struct {
	Domain     uint32
	Surfaces   []string
	Tasks      uint32 // live (non-terminal) tasks routed to the shard
	Running    uint32
	Reconciles uint64
	// LastReconcileNanos is the wall time of the shard's latest reconcile.
	LastReconcileNanos uint64
}

func (m ShardHealthInfo) encode(e *encoder) {
	e.u32(m.Domain)
	e.strs(m.Surfaces)
	e.u32(m.Tasks)
	e.u32(m.Running)
	e.u64(m.Reconciles)
	e.u64(m.LastReconcileNanos)
}

func decodeShardHealthInfo(d *decoder) ShardHealthInfo {
	m := ShardHealthInfo{Domain: d.u32(), Surfaces: d.strs()}
	m.Tasks = d.u32()
	m.Running = d.u32()
	m.Reconciles = d.u64()
	m.LastReconcileNanos = d.u64()
	return m
}

// TenantHealthInfo is the wire view of one tenant's admission accounting.
type TenantHealthInfo struct {
	Tenant   string
	Active   uint32
	Rejected uint64
	// MaxActive is the tenant's hard task cap (0 = none).
	MaxActive uint32
	Weight    float64
}

func (m TenantHealthInfo) encode(e *encoder) {
	e.str(m.Tenant)
	e.u32(m.Active)
	e.u64(m.Rejected)
	e.u32(m.MaxActive)
	e.f64(m.Weight)
}

func decodeTenantHealthInfo(d *decoder) TenantHealthInfo {
	m := TenantHealthInfo{Tenant: d.str(), Active: d.u32()}
	m.Rejected = d.u64()
	m.MaxActive = d.u32()
	m.Weight = d.f64()
	return m
}

// ControlHealthInfo is the control plane's own health snapshot: telemetry
// bus backpressure, journal progress, and the orchestrator's shard and
// tenant state.
type ControlHealthInfo struct {
	// BusDropped counts telemetry events dropped on bus overflow.
	BusDropped uint64
	// JournalSeq is the journal's last appended record sequence; JournalLag
	// is the depth of the daemon's journal subscription backlog.
	JournalSeq uint64
	JournalLag uint32
	// JournalErr is the last journal write failure ("" when healthy).
	JournalErr string
	Shards     []ShardHealthInfo
	Tenants    []TenantHealthInfo
}

func (m ControlHealthInfo) encode(e *encoder) {
	e.u64(m.BusDropped)
	e.u64(m.JournalSeq)
	e.u32(m.JournalLag)
	e.str(m.JournalErr)
	e.u32(uint32(len(m.Shards)))
	for _, s := range m.Shards {
		s.encode(e)
	}
	e.u32(uint32(len(m.Tenants)))
	for _, t := range m.Tenants {
		t.encode(e)
	}
}

func decodeControlHealthInfo(d *decoder) ControlHealthInfo {
	m := ControlHealthInfo{BusDropped: d.u64(), JournalSeq: d.u64()}
	m.JournalLag = d.u32()
	m.JournalErr = d.str()
	n := int(d.u32())
	for i := 0; i < n && d.err == nil; i++ {
		m.Shards = append(m.Shards, decodeShardHealthInfo(d))
	}
	n = int(d.u32())
	for i := 0; i < n && d.err == nil; i++ {
		m.Tenants = append(m.Tenants, decodeTenantHealthInfo(d))
	}
	return m
}

// HealthReply lists every managed device's health, plus — when the agent
// exposes it — the control plane's own health (appended section; absent
// payloads from older peers decode with HasControl=false).
type HealthReply struct {
	Devices    []HealthInfo
	HasControl bool
	Control    ControlHealthInfo
}

// Encode serializes the message.
func (m HealthReply) Encode() []byte {
	var e encoder
	e.u32(uint32(len(m.Devices)))
	for _, h := range m.Devices {
		h.encode(&e)
	}
	if m.HasControl {
		m.Control.encode(&e)
	}
	return e.buf
}

// DecodeHealthReply parses a HealthReply payload.
func DecodeHealthReply(b []byte) (HealthReply, error) {
	d := decoder{buf: b}
	n := int(d.u32())
	m := HealthReply{}
	for i := 0; i < n && d.err == nil; i++ {
		m.Devices = append(m.Devices, decodeHealthInfo(&d))
	}
	// Trailing-optional control section: present iff bytes remain after
	// the device list (same append-only convention as optU64).
	if d.err == nil && d.off < len(d.buf) {
		m.Control = decodeControlHealthInfo(&d)
		m.HasControl = d.err == nil
	}
	return m, d.finish()
}
