package ctrlproto

import (
	"fmt"
	"io"
	"time"

	"surfos/internal/hwmgr"
)

// Health rendering shared by every operator-facing surface: the daemon's
// text-mode `health` command and surfctl's `health` subcommand emit the
// same facts with small cosmetic differences (line prefix, stuck-element
// detail, journal verbosity). One renderer plus an options struct keeps
// the two from drifting apart.

// HealthRenderOptions selects between the operator-facing health formats.
// The zero value is the daemon text-mode style.
type HealthRenderOptions struct {
	// DevicePrefix is prepended to every device line ("device " in
	// surfctl; empty in the daemon's text mode).
	DevicePrefix string
	// StuckIndices appends the frozen-element indices after the count.
	StuckIndices bool
	// JournalAlways prints the journal line even when all fields are zero
	// (the daemon prints it whenever a journal is attached).
	JournalAlways bool
	// JournalErr appends err=... to the journal line when non-empty.
	JournalErr bool
}

// HealthInfos converts hardware-manager health snapshots to their wire
// form, shared by the control agent's MsgHealth reply and the daemon's
// text health command.
func HealthInfos(hs []hwmgr.DeviceHealth) []HealthInfo {
	var out []HealthInfo
	for _, h := range hs {
		info := HealthInfo{
			DeviceID:            h.ID,
			State:               h.State.String(),
			ConsecutiveFailures: uint32(h.ConsecutiveFailures),
			TotalFailures:       uint32(h.TotalFailures),
			LastErr:             h.LastErr,
		}
		for _, idx := range h.StuckElements {
			info.StuckElements = append(info.StuckElements, uint32(idx))
		}
		out = append(out, info)
	}
	return out
}

// RenderDeviceHealth writes one line per device. Callers handle the
// empty-set message themselves (the two surfaces disagree on what follows
// it).
func RenderDeviceHealth(w io.Writer, devs []HealthInfo, o HealthRenderOptions) {
	for _, d := range devs {
		fmt.Fprintf(w, "%s%s state=%s", o.DevicePrefix, d.DeviceID, d.State)
		if len(d.StuckElements) > 0 {
			fmt.Fprintf(w, " stuck=%d", len(d.StuckElements))
			if o.StuckIndices {
				fmt.Fprintf(w, "%v", d.StuckElements)
			}
		}
		if d.ConsecutiveFailures > 0 || d.TotalFailures > 0 {
			fmt.Fprintf(w, " failures=%d/%d", d.ConsecutiveFailures, d.TotalFailures)
		}
		if d.LastErr != "" {
			fmt.Fprintf(w, " err=%q", d.LastErr)
		}
		fmt.Fprintln(w)
	}
}

// RenderControlHealth writes the control plane's own health section:
// per-shard load and latency, tenant admission accounting, telemetry
// backpressure, and journal progress.
func RenderControlHealth(w io.Writer, ch ControlHealthInfo, o HealthRenderOptions) {
	for _, s := range ch.Shards {
		fmt.Fprintf(w, "shard %d surfaces=%d tasks=%d running=%d reconciles=%d last=%s\n",
			s.Domain, len(s.Surfaces), s.Tasks, s.Running, s.Reconciles,
			time.Duration(s.LastReconcileNanos))
	}
	for _, t := range ch.Tenants {
		fmt.Fprintf(w, "tenant %s active=%d rejected=%d", t.Tenant, t.Active, t.Rejected)
		if t.MaxActive > 0 {
			fmt.Fprintf(w, " max=%d", t.MaxActive)
		}
		fmt.Fprintln(w)
	}
	if ch.BusDropped > 0 {
		fmt.Fprintf(w, "bus dropped=%d\n", ch.BusDropped)
	}
	if o.JournalAlways || ch.JournalSeq > 0 || ch.JournalLag > 0 || ch.JournalErr != "" {
		fmt.Fprintf(w, "journal seq=%d lag=%d", ch.JournalSeq, ch.JournalLag)
		if o.JournalErr && ch.JournalErr != "" {
			fmt.Fprintf(w, " err=%q", ch.JournalErr)
		}
		fmt.Fprintln(w)
	}
}
