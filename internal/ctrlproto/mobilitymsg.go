package ctrlproto

// Mobility payload: re-target a live task's spatial goal (a user walking
// with their device). The orchestrator hands the task off between
// interference-domain shards when the new position is best served
// elsewhere.

// MsgMoveTask continues the wire numbering (replmsg.go ends at 31) —
// append only.
const MsgMoveTask MsgType = 32

// MoveTaskMsg re-targets one task at a new position.
type MoveTaskMsg struct {
	ID  uint32
	Pos [3]float64
}

// Encode serializes the message.
func (m MoveTaskMsg) Encode() []byte {
	var e encoder
	e.u32(m.ID)
	for _, v := range m.Pos {
		e.f64(v)
	}
	return e.buf
}

// DecodeMoveTaskMsg parses a MoveTaskMsg payload.
func DecodeMoveTaskMsg(b []byte) (MoveTaskMsg, error) {
	d := decoder{buf: b}
	m := MoveTaskMsg{ID: d.u32()}
	for i := range m.Pos {
		m.Pos[i] = d.f64()
	}
	return m, d.finish()
}
