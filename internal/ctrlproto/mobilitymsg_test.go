package ctrlproto

import (
	"context"
	"errors"
	"testing"
	"time"

	"surfos/internal/orchestrator"
)

func TestMoveTaskMsgRoundTrip(t *testing.T) {
	m := MoveTaskMsg{ID: 42, Pos: [3]float64{2.5, -1.25, 1.2}}
	m2, err := DecodeMoveTaskMsg(m.Encode())
	if err != nil || m2 != m {
		t.Fatalf("round trip: %+v %v", m2, err)
	}
	if _, err := DecodeMoveTaskMsg(m.Encode()[:10]); err == nil {
		t.Error("truncated payload decoded without error")
	}
	if _, err := DecodeMoveTaskMsg(append(m.Encode(), 0)); err == nil {
		t.Error("trailing garbage decoded without error")
	}
}

// TestMoveTaskOverWire drives a live task to a new position through the
// northbound protocol and checks the re-targeted goal is re-scheduled.
func TestMoveTaskOverWire(t *testing.T) {
	r := newCtrlRig(t)
	ctx := context.Background()
	r.client.Timeout = 30 * time.Second // reconcile runs inside the request

	task, err := r.client.SubmitTask(ctx, SubmitMsg{
		Kind: "link", Endpoint: "laptop", Pos: [3]float64{2.5, 5.5, 1.2}, Priority: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if task.State != "running" {
		t.Fatalf("post-submit task = %+v", task)
	}

	if err := r.client.MoveTask(ctx, int(task.ID), 3.0, 5.0, 1.2); err != nil {
		t.Fatal(err)
	}
	tasks, err := r.client.ListTasks(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 1 || tasks[0].State != "running" {
		t.Fatalf("tasks after move = %+v", tasks)
	}
	if got := r.orch.Tasks()[0]; got.Goal.(orchestrator.LinkGoal).Pos.X != 3.0 {
		t.Errorf("goal after move = %+v, want Pos.X = 3.0", got.Goal)
	}

	// Sentinels must survive the hop with their own status codes.
	err = r.client.MoveTask(ctx, 999, 0, 0, 0)
	if !errors.Is(err, orchestrator.ErrUnknownTask) {
		t.Errorf("MoveTask(999) err = %v, want ErrUnknownTask", err)
	}
	if err := r.client.EndTask(ctx, int(task.ID)); err != nil {
		t.Fatal(err)
	}
	err = r.client.MoveTask(ctx, int(task.ID), 0, 0, 0)
	if !errors.Is(err, orchestrator.ErrNotMovable) {
		t.Errorf("MoveTask(ended) err = %v, want ErrNotMovable", err)
	}
	var we *WireError
	if !errors.As(err, &we) || we.Status != StatusNotMovable {
		t.Errorf("MoveTask(ended) wire error = %+v, want StatusNotMovable", err)
	}

	// Standby daemons fence moves like every other mutation.
	standby := true
	r.agent.Standby = func() bool { return standby }
	if err := r.client.MoveTask(ctx, int(task.ID), 0, 0, 0); !errors.Is(err, ErrNotLeader) {
		t.Errorf("standby move err = %v, want ErrNotLeader", err)
	}
}
