package ctrlproto

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"surfos/internal/store"
)

// ReplReceiver is the follower-side endpoint of the replication channel:
// the CtrlAgent routes MsgRepl* frames here, and the receiver applies
// them to the warm Follower store. Every accepted message is answered
// with MsgReplAck carrying the follower's applied sequence; fenced or
// failed messages get a typed MsgError (StatusStaleEpoch and
// StatusReleased survive the hop as store.ErrStaleEpoch and
// store.ErrReleased).
type ReplReceiver struct {
	F *store.Follower
	// Logf receives diagnostic messages; nil silences them.
	Logf func(format string, args ...any)
}

func (r *ReplReceiver) logf(format string, args ...any) {
	if r.Logf != nil {
		r.Logf(format, args...)
	}
}

// Handle applies one replication frame and builds the reply.
func (r *ReplReceiver) Handle(f Frame) Frame {
	if r.F == nil {
		return errorFrame(f.Corr, errors.New("ctrlproto: no follower store attached"))
	}
	ackFrame := func() Frame {
		return Frame{Type: MsgReplAck, Corr: f.Corr, Payload: ReplAckMsg{
			Epoch: r.F.Epoch(), Applied: r.F.Applied(),
		}.Encode()}
	}
	switch f.Type {
	case MsgReplSnapshot:
		m, err := DecodeReplSnapshotMsg(f.Payload)
		if err != nil {
			return errorFrame(f.Corr, err)
		}
		if err := r.F.InstallSnapshot(m.Epoch, m.Data); err != nil {
			r.logf("repl: snapshot install (epoch %d, seq %d): %v", m.Epoch, m.Seq, err)
			return errorFrame(f.Corr, err)
		}
		r.logf("repl: installed snapshot at seq %d (epoch %d)", m.Seq, m.Epoch)
		return ackFrame()
	case MsgReplAppend:
		m, err := DecodeReplAppendMsg(f.Payload)
		if err != nil {
			return errorFrame(f.Corr, err)
		}
		if _, err := r.F.AppendBatch(m.Epoch, m.Recs); err != nil {
			r.logf("repl: append batch (epoch %d, %d recs): %v", m.Epoch, len(m.Recs), err)
			return errorFrame(f.Corr, err)
		}
		return ackFrame()
	case MsgReplHeartbeat:
		m, err := DecodeReplHeartbeatMsg(f.Payload)
		if err != nil {
			return errorFrame(f.Corr, err)
		}
		if err := r.F.Heartbeat(m.Epoch, m.Holder, time.Duration(m.TTLNanos), m.Seq); err != nil {
			return errorFrame(f.Corr, err)
		}
		return ackFrame()
	default:
		return errorFrame(f.Corr, fmt.Errorf("ctrlproto: repl receiver cannot handle %v", f.Type))
	}
}

// ReplSender is the primary-side endpoint: one long-lived connection to a
// follower's control port, driven synchronously — the replication channel
// carries only this traffic, so a write-then-read round trip per message
// is simpler and sufficient (no pipelining, no correlation map). Safe for
// concurrent use; round trips serialize on an internal lock.
type ReplSender struct {
	mu   sync.Mutex
	conn net.Conn
	corr uint32
	// Timeout bounds each round trip (default 5s).
	Timeout time.Duration
}

// DialRepl connects a replication session to a follower's control port.
func DialRepl(addr string) (*ReplSender, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewReplSender(conn), nil
}

// NewReplSender wraps an established connection (tests use net.Pipe).
func NewReplSender(conn net.Conn) *ReplSender {
	return &ReplSender{conn: conn, Timeout: 5 * time.Second}
}

// Close tears down the session.
func (s *ReplSender) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.conn == nil {
		return nil
	}
	err := s.conn.Close()
	s.conn = nil
	return err
}

// Snapshot transfers a full snapshot (attach bootstrap or gap resync).
func (s *ReplSender) Snapshot(epoch, seq uint64, data []byte) (ReplAckMsg, error) {
	return s.roundTrip(MsgReplSnapshot, ReplSnapshotMsg{Epoch: epoch, Seq: seq, Data: data}.Encode())
}

// Append ships one batch of WAL records.
func (s *ReplSender) Append(epoch uint64, recs []store.Record) (ReplAckMsg, error) {
	return s.roundTrip(MsgReplAppend, ReplAppendMsg{Epoch: epoch, Recs: recs}.Encode())
}

// Heartbeat renews the lease and reports the primary's WAL sequence.
func (s *ReplSender) Heartbeat(epoch uint64, holder string, ttl time.Duration, seq uint64) (ReplAckMsg, error) {
	return s.roundTrip(MsgReplHeartbeat, ReplHeartbeatMsg{
		Epoch: epoch, Holder: holder, TTLNanos: uint64(ttl.Nanoseconds()), Seq: seq,
	}.Encode())
}

func (s *ReplSender) roundTrip(t MsgType, payload []byte) (ReplAckMsg, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.conn == nil {
		return ReplAckMsg{}, errors.New("ctrlproto: repl sender closed")
	}
	timeout := s.Timeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	s.conn.SetDeadline(time.Now().Add(timeout))
	defer s.conn.SetDeadline(time.Time{})
	s.corr++
	corr := s.corr
	if err := WriteFrame(s.conn, Frame{Type: t, Corr: corr, Payload: payload}); err != nil {
		return ReplAckMsg{}, err
	}
	reply, err := ReadFrame(s.conn)
	if err != nil {
		return ReplAckMsg{}, err
	}
	switch reply.Type {
	case MsgReplAck:
		return DecodeReplAckMsg(reply.Payload)
	case MsgError:
		m, derr := DecodeErrorMsg(reply.Payload)
		if derr != nil {
			return ReplAckMsg{}, derr
		}
		return ReplAckMsg{}, &WireError{Status: m.Code, Text: m.Text}
	default:
		return ReplAckMsg{}, fmt.Errorf("ctrlproto: unexpected repl reply %v", reply.Type)
	}
}
