package ctrlproto

import (
	"context"
	"errors"
	"net"
	"reflect"
	"testing"
	"time"

	"surfos/internal/store"
	"surfos/internal/telemetry"
)

// Replication wire tests: codec round trips for the four MsgRepl*
// payloads, the sender/receiver session over a real pipe, and the
// status mapping that lets epoch fencing and standby rejection survive
// the TCP hop as typed sentinels.

func TestReplMsgNumbersArePinned(t *testing.T) {
	// The replication block is append-only wire surface: renumbering any
	// of these breaks mixed-version pairs mid-failover.
	for _, tc := range []struct {
		got  MsgType
		want uint16
	}{
		{MsgReplSnapshot, 28},
		{MsgReplAppend, 29},
		{MsgReplHeartbeat, 30},
		{MsgReplAck, 31},
	} {
		if uint16(tc.got) != tc.want {
			t.Errorf("%v = %d, want %d", tc.got, uint16(tc.got), tc.want)
		}
	}
}

func TestReplMsgRoundTrips(t *testing.T) {
	snap := ReplSnapshotMsg{Epoch: 3, Seq: 41, Data: []byte(`{"snapshot":true}`)}
	if out, err := DecodeReplSnapshotMsg(snap.Encode()); err != nil || !reflect.DeepEqual(snap, out) {
		t.Errorf("snapshot round trip = %+v, %v; want %+v", out, err, snap)
	}
	app := ReplAppendMsg{Epoch: 3, Recs: []store.Record{
		{Seq: 42, Kind: store.KindTaskState, Data: []byte(`{"id":1}`), CRC: 0x1234},
		{Seq: 43, Kind: store.KindDevice, Data: []byte(`{}`), CRC: 0xffff},
	}}
	if out, err := DecodeReplAppendMsg(app.Encode()); err != nil || !reflect.DeepEqual(app, out) {
		t.Errorf("append round trip = %+v, %v; want %+v", out, err, app)
	}
	hb := ReplHeartbeatMsg{Epoch: 3, Holder: "127.0.0.1:7101", TTLNanos: uint64(3 * time.Second), Seq: 43}
	if out, err := DecodeReplHeartbeatMsg(hb.Encode()); err != nil || !reflect.DeepEqual(hb, out) {
		t.Errorf("heartbeat round trip = %+v, %v; want %+v", out, err, hb)
	}
	ack := ReplAckMsg{Epoch: 3, Applied: 43}
	if out, err := DecodeReplAckMsg(ack.Encode()); err != nil || !reflect.DeepEqual(ack, out) {
		t.Errorf("ack round trip = %+v, %v; want %+v", out, err, ack)
	}
}

// pipeReplSession serves a ReplReceiver for fol on one end of a pipe and
// returns a sender dialed into it.
func pipeReplSession(t *testing.T, fol *store.Follower) *ReplSender {
	t.Helper()
	srv, cli := net.Pipe()
	t.Cleanup(func() { srv.Close() })
	recv := &ReplReceiver{F: fol}
	go func() {
		for {
			f, err := ReadFrame(srv)
			if err != nil {
				return
			}
			if err := WriteFrame(srv, recv.Handle(f)); err != nil {
				return
			}
		}
	}()
	sender := NewReplSender(cli)
	t.Cleanup(func() { sender.Close() })
	return sender
}

// TestReplSessionShipsAndFencesOverWire drives a full session over the
// pipe: snapshot bootstrap, an append batch, a heartbeat — then a
// promotion on the follower, after which the stale sender's traffic
// must come back as store.ErrStaleEpoch through the typed error frame.
func TestReplSessionShipsAndFencesOverWire(t *testing.T) {
	pdir := t.TempDir()
	st, state, err := store.Open(pdir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	j := store.NewJournal(st, state)
	if _, err := j.BecomeLeader("primary", 3*time.Second); err != nil {
		t.Fatal(err)
	}

	fol, err := store.OpenFollower(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer fol.Close()
	// Virtual clock: the heartbeat below arms the lease, and Promote
	// refuses to depose a live leader, so the test must age the lease
	// past its TTL before the takeover.
	now := time.Unix(1_700_000_000, 0)
	fol.SetClock(func() time.Time { return now })
	sender := pipeReplSession(t, fol)

	var recs []store.Record
	epoch, seq, snap, detach, err := j.AttachReplica(func(r store.Record) { recs = append(recs, r) })
	if err != nil {
		t.Fatal(err)
	}
	defer detach()
	ack, err := sender.Snapshot(epoch, seq, snap)
	if err != nil {
		t.Fatal(err)
	}
	if ack.Applied != seq || ack.Epoch != epoch {
		t.Errorf("snapshot ack = %+v, want applied %d epoch %d", ack, seq, epoch)
	}

	// Journal some post-attach traffic; the observer hands the shipper
	// every record.
	if err := j.Consume(telemetry.TaskEvent{
		Time: time.Unix(0, 1), TaskID: 1, State: telemetry.TaskSubmitted,
		Spec: []byte(`{"kind":"link","endpoint":"laptop"}`),
	}); err != nil {
		t.Fatal(err)
	}
	if err := j.Consume(telemetry.TaskEvent{
		Time: time.Unix(0, 2), DeviceID: "east", State: telemetry.DeviceDead, Err: "heartbeat lost",
	}); err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("observer saw no records")
	}
	ack, err = sender.Append(epoch, recs)
	if err != nil {
		t.Fatal(err)
	}
	if ack.Applied != j.Seq() {
		t.Errorf("append ack applied = %d, want %d", ack.Applied, j.Seq())
	}
	if fol.Applied() != j.Seq() {
		t.Errorf("follower applied = %d, want %d", fol.Applied(), j.Seq())
	}
	if _, err := sender.Heartbeat(epoch, "primary", 3*time.Second, j.Seq()); err != nil {
		t.Fatal(err)
	}
	if got := fol.Holder(); got != "primary" {
		t.Errorf("follower holder = %q, want primary", got)
	}

	// The primary goes silent past the TTL; the follower promotes; the
	// stale sender's next messages are fenced with the typed sentinel
	// across the wire.
	now = now.Add(4 * time.Second)
	if _, _, err := fol.Promote("standby"); err != nil {
		t.Fatal(err)
	}
	if _, err := sender.Append(epoch, recs); !errors.Is(err, store.ErrStaleEpoch) {
		t.Errorf("stale append err = %v, want store.ErrStaleEpoch", err)
	}
	if _, err := sender.Heartbeat(epoch, "primary", 3*time.Second, j.Seq()); !errors.Is(err, store.ErrStaleEpoch) {
		t.Errorf("stale heartbeat err = %v, want store.ErrStaleEpoch", err)
	}

	// After handoff the fence must still hold over the wire for the tied
	// term (a rebooted primary minting the same epoch), and a genuinely
	// newer term must come back as the released sentinel — not a generic
	// internal error a sender would treat as retryable.
	promotedEpoch := fol.Epoch()
	fol.Handoff()
	if _, err := sender.Append(promotedEpoch, recs); !errors.Is(err, store.ErrStaleEpoch) {
		t.Errorf("post-handoff tied-epoch append err = %v, want store.ErrStaleEpoch", err)
	}
	if _, err := sender.Append(promotedEpoch+1, recs); !errors.Is(err, store.ErrReleased) {
		t.Errorf("post-handoff newer-epoch append err = %v, want store.ErrReleased", err)
	}
}

// TestStandbyGateRejectsMutations pins the client-visible half of
// fencing: a standby control agent answers mutations with ErrNotLeader
// (surfctl exit code 8) while reads keep working, and the sentinel
// survives the wire hop. Flipping the gate — promotion — takes effect
// on live connections without a reconnect.
func TestStandbyGateRejectsMutations(t *testing.T) {
	r := newCtrlRig(t)
	standby := true
	r.agent.Standby = func() bool { return standby }

	ctx := context.Background()
	if _, err := r.client.SubmitTask(ctx, SubmitMsg{Kind: "link", Endpoint: "laptop", Pos: [3]float64{2.5, 5.5, 1.2}}); !errors.Is(err, ErrNotLeader) {
		t.Errorf("standby submit err = %v, want ErrNotLeader", err)
	}
	if err := r.client.EndTask(ctx, 1); !errors.Is(err, ErrNotLeader) {
		t.Errorf("standby end err = %v, want ErrNotLeader", err)
	}
	if _, err := r.client.Demand(ctx, "better wifi"); !errors.Is(err, ErrNotLeader) {
		t.Errorf("standby demand err = %v, want ErrNotLeader", err)
	}
	if _, err := r.client.ListTasks(ctx); err != nil {
		t.Errorf("standby list err = %v, want nil (reads stay live)", err)
	}

	// Promotion flips the gate without reconnecting.
	standby = false
	if _, err := r.client.SubmitTask(ctx, SubmitMsg{Kind: "link", Endpoint: "laptop", Pos: [3]float64{2.5, 5.5, 1.2}}); err != nil {
		t.Errorf("post-promotion submit err = %v, want nil", err)
	}
}
