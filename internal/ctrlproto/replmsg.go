package ctrlproto

import "surfos/internal/store"

// Replication channel: the primary daemon ships its durability journal to
// standby followers over the same wire framing as the rest of ctrlproto.
// A replication session is one long-lived connection the primary dials to
// each follower's control port: a MsgReplSnapshot bootstrap (or resync),
// then MsgReplAppend batches as records are journaled, with
// MsgReplHeartbeat lease renewals in between. Every message carries the
// sender's leadership epoch; a follower rejects epochs below its own with
// StatusStaleEpoch — the fence that keeps a paused-and-resumed old
// primary from splitting the brain.
//
// The follower replies to every message with MsgReplAck carrying its last
// durably applied sequence, which is both the primary's lag measurement
// and the resume point after a follower restart (the primary re-sends
// from the ack; duplicates below it are skipped idempotently).

// Replication message types, continuing the northbound block
// (streammsg.go ends at 27).
const (
	MsgReplSnapshot  MsgType = iota + 28 // snapshot transfer (bootstrap/resync)
	MsgReplAppend                        // WAL append batch
	MsgReplHeartbeat                     // lease renewal + primary seq
	MsgReplAck                           // follower's applied seq
)

// ReplSnapshotMsg transfers a complete encoded snapshot. Seq is the WAL
// sequence the snapshot covers through — the follower's resume point.
type ReplSnapshotMsg struct {
	Epoch uint64
	Seq   uint64
	Data  []byte // store snapshot file bytes (CRC-verified on install)
}

// Encode serializes the message.
func (m ReplSnapshotMsg) Encode() []byte {
	var e encoder
	e.u64(m.Epoch)
	e.u64(m.Seq)
	e.bytes(m.Data)
	return e.buf
}

// DecodeReplSnapshotMsg parses a ReplSnapshotMsg payload.
func DecodeReplSnapshotMsg(b []byte) (ReplSnapshotMsg, error) {
	d := decoder{buf: b}
	m := ReplSnapshotMsg{Epoch: d.u64(), Seq: d.u64(), Data: d.bytes()}
	return m, d.finish()
}

// ReplAppendMsg ships a batch of WAL records in sequence order. Records
// carry their original seq, kind, payload and CRC; the follower verifies
// and writes them verbatim, keeping its WAL byte-identical.
type ReplAppendMsg struct {
	Epoch uint64
	Recs  []store.Record
}

// Encode serializes the message.
func (m ReplAppendMsg) Encode() []byte {
	var e encoder
	e.u64(m.Epoch)
	e.u32(uint32(len(m.Recs)))
	for _, r := range m.Recs {
		e.u64(r.Seq)
		e.str(r.Kind)
		e.bytes(r.Data)
		e.u32(r.CRC)
	}
	return e.buf
}

// DecodeReplAppendMsg parses a ReplAppendMsg payload.
func DecodeReplAppendMsg(b []byte) (ReplAppendMsg, error) {
	d := decoder{buf: b}
	m := ReplAppendMsg{Epoch: d.u64()}
	n := int(d.u32())
	for i := 0; i < n && d.err == nil; i++ {
		m.Recs = append(m.Recs, store.Record{
			Seq: d.u64(), Kind: d.str(), Data: d.bytes(), CRC: d.u32(),
		})
	}
	return m, d.finish()
}

// ReplHeartbeatMsg renews the primary's lease: holder identity, lease
// TTL, and the primary's current WAL sequence for lag accounting.
type ReplHeartbeatMsg struct {
	Epoch    uint64
	Holder   string
	TTLNanos uint64
	Seq      uint64
}

// Encode serializes the message.
func (m ReplHeartbeatMsg) Encode() []byte {
	var e encoder
	e.u64(m.Epoch)
	e.str(m.Holder)
	e.u64(m.TTLNanos)
	e.u64(m.Seq)
	return e.buf
}

// DecodeReplHeartbeatMsg parses a ReplHeartbeatMsg payload.
func DecodeReplHeartbeatMsg(b []byte) (ReplHeartbeatMsg, error) {
	d := decoder{buf: b}
	m := ReplHeartbeatMsg{Epoch: d.u64(), Holder: d.str(), TTLNanos: d.u64(), Seq: d.u64()}
	return m, d.finish()
}

// ReplAckMsg is the follower's reply to every replication message: its
// epoch and the last sequence it has durably applied.
type ReplAckMsg struct {
	Epoch   uint64
	Applied uint64
}

// Encode serializes the message.
func (m ReplAckMsg) Encode() []byte {
	var e encoder
	e.u64(m.Epoch)
	e.u64(m.Applied)
	return e.buf
}

// DecodeReplAckMsg parses a ReplAckMsg payload.
func DecodeReplAckMsg(b []byte) (ReplAckMsg, error) {
	d := decoder{buf: b}
	m := ReplAckMsg{Epoch: d.u64(), Applied: d.u64()}
	return m, d.finish()
}
