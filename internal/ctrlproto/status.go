package ctrlproto

import (
	"context"
	"errors"
	"fmt"

	"surfos/internal/broker"
	"surfos/internal/driver"
	"surfos/internal/hwmgr"
	"surfos/internal/orchestrator"
	"surfos/internal/store"
)

// ErrNotLeader rejects a mutating request sent to a standby daemon: the
// caller should retry against another server in its list — the promoted
// primary accepts it. Reads (list, watch, health) stay connected but
// answer from the standby's own task table, which is empty until a
// promotion re-admits the replicated state; rotate to the leader for an
// authoritative view.
var ErrNotLeader = errors.New("ctrlproto: not the leader (standby)")

// Status is a wire error category. The agent maps sentinel errors from the
// orchestrator/hwmgr/broker/driver layers onto these codes; the client
// decodes them back into the same sentinels, so errors.Is holds across a
// wire hop and surfctl can emit distinct exit codes per category.
type Status uint16

// Wire error categories. Values are part of the protocol — append only.
const (
	StatusOK Status = iota
	StatusInternal
	StatusUnknownTask
	StatusUnknownService
	StatusGoalInvalid
	StatusNoAccessPoint
	StatusNoActiveSurfaces
	StatusNoSchedulableTasks
	StatusOptimizeStopped
	StatusCancelled
	StatusDeadlineExceeded
	StatusUnknownDevice
	StatusDuplicateDevice
	StatusNoCodebook
	StatusFixedSurface
	StatusUnsupportedProperty
	StatusCodebookFull
	StatusNoProfileMatch
	StatusUnknownFunction
	StatusBadCall
	StatusTimeout
	StatusAdmissionRejected
	StatusStaleEpoch
	StatusNotLeader
	StatusReleased
	StatusNotMovable
)

// statusTable pairs each code with its canonical sentinel. Mapping is by
// errors.Is in declaration order, so put more specific sentinels first if
// chains ever overlap.
var statusTable = []struct {
	code Status
	err  error
}{
	{StatusUnknownTask, orchestrator.ErrUnknownTask},
	{StatusUnknownService, orchestrator.ErrUnknownService},
	{StatusGoalInvalid, orchestrator.ErrGoalInvalid},
	{StatusNoAccessPoint, orchestrator.ErrNoAccessPoint},
	{StatusNoActiveSurfaces, orchestrator.ErrNoActiveSurfaces},
	{StatusNoSchedulableTasks, orchestrator.ErrNoSchedulableTasks},
	{StatusOptimizeStopped, orchestrator.ErrOptimizeStopped},
	{StatusCancelled, context.Canceled},
	{StatusDeadlineExceeded, context.DeadlineExceeded},
	{StatusUnknownDevice, hwmgr.ErrUnknownDevice},
	{StatusDuplicateDevice, hwmgr.ErrDuplicateDevice},
	{StatusNoCodebook, hwmgr.ErrNoCodebook},
	{StatusFixedSurface, driver.ErrFixed},
	{StatusUnsupportedProperty, driver.ErrUnsupportedProperty},
	{StatusCodebookFull, driver.ErrCodebookFull},
	{StatusNoProfileMatch, broker.ErrNoProfileMatch},
	{StatusUnknownFunction, broker.ErrUnknownFunction},
	{StatusUnknownDevice, broker.ErrUnknownDevice},
	{StatusBadCall, broker.ErrBadCall},
	{StatusTimeout, ErrTimeout},
	{StatusAdmissionRejected, orchestrator.ErrAdmissionRejected},
	{StatusStaleEpoch, store.ErrStaleEpoch},
	{StatusNotLeader, ErrNotLeader},
	{StatusReleased, store.ErrReleased},
	{StatusNotMovable, orchestrator.ErrNotMovable},
}

// StatusFor classifies an error into its wire code (StatusInternal when no
// sentinel matches, StatusOK for nil).
func StatusFor(err error) Status {
	if err == nil {
		return StatusOK
	}
	for _, row := range statusTable {
		if errors.Is(err, row.err) {
			return row.code
		}
	}
	return StatusInternal
}

// Err returns the canonical sentinel for a status (nil for OK and for
// codes without one, e.g. StatusInternal).
func (s Status) Err() error {
	for _, row := range statusTable {
		if row.code == s {
			return row.err
		}
	}
	return nil
}

// WireError is an agent-reported failure reconstructed client-side: it
// preserves the remote error text and unwraps to the canonical sentinel
// for its status code, so errors.Is survives the wire hop.
type WireError struct {
	Status Status
	Text   string
}

// Error implements error.
func (e *WireError) Error() string {
	return fmt.Sprintf("ctrlproto: agent error: %s", e.Text)
}

// Unwrap exposes the canonical sentinel (nil for StatusInternal).
func (e *WireError) Unwrap() error { return e.Status.Err() }

// errorFrame builds an agent-side MsgError reply carrying the typed code.
func errorFrame(corr uint32, err error) Frame {
	return Frame{Type: MsgError, Corr: corr, Payload: ErrorMsg{
		Code: StatusFor(err),
		Text: err.Error(),
	}.Encode()}
}
