package ctrlproto

import (
	"context"
	"testing"
	"time"

	"surfos/internal/telemetry"
)

func recvStream(t *testing.T, s *Stream) TaskEventMsg {
	t.Helper()
	select {
	case m, ok := <-s.C:
		if !ok {
			t.Fatalf("stream %d closed unexpectedly", s.ID)
		}
		return m
	case <-time.After(5 * time.Second):
		t.Fatalf("stream %d: timed out waiting for event", s.ID)
	}
	panic("unreachable")
}

func TestMultiplexedStreamsShareOneConnection(t *testing.T) {
	r := newCtrlRig(t)
	ctx := context.Background()

	a, err := r.client.OpenStream(ctx, StreamTasks, "")
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.client.OpenStream(ctx, StreamTasks, "")
	if err != nil {
		t.Fatal(err)
	}
	h, err := r.client.OpenStream(ctx, StreamHealth, "")
	if err != nil {
		t.Fatal(err)
	}
	if a.ID == b.ID || a.ID == h.ID {
		t.Fatalf("stream IDs collide: %d %d %d", a.ID, b.ID, h.ID)
	}

	// A task event fans out to both task streams; the health stream stays
	// silent. An RPC on the same connection works concurrently.
	r.events.Publish(telemetry.TaskEvent{TaskID: 7, Kind: "link", State: telemetry.TaskRunning, Tenant: "default"})
	if ev := recvStream(t, a); ev.TaskID != 7 || ev.State != telemetry.TaskRunning {
		t.Fatalf("stream a event = %+v", ev)
	}
	if ev := recvStream(t, b); ev.TaskID != 7 {
		t.Fatalf("stream b event = %+v", ev)
	}
	if _, err := r.client.ListTasks(ctx); err != nil {
		t.Fatalf("RPC alongside streams: %v", err)
	}

	// A device event reaches the health stream but not as a task event
	// duplicate on it.
	r.events.Publish(telemetry.TaskEvent{DeviceID: "s0", State: telemetry.DeviceDegraded})
	if ev := recvStream(t, h); ev.DeviceID != "s0" || ev.State != telemetry.DeviceDegraded {
		t.Fatalf("health event = %+v", ev)
	}

	// Closing one stream leaves the others (and the connection) live.
	if err := b.Close(ctx); err != nil {
		t.Fatal(err)
	}
	// Drain anything buffered (task streams also carry device events, like
	// the legacy watch); the channel must then be closed.
	for {
		_, ok := <-b.C
		if !ok {
			break
		}
	}
	r.events.Publish(telemetry.TaskEvent{TaskID: 8, Kind: "link", State: telemetry.TaskDone})
	for {
		// Task streams also carry device events; skip the degraded push.
		if ev := recvStream(t, a); ev.TaskID == 8 {
			break
		}
	}
	if _, err := r.client.ListTasks(ctx); err != nil {
		t.Fatalf("RPC after stream close: %v", err)
	}
}

func TestStreamFiltersScopeDelivery(t *testing.T) {
	r := newCtrlRig(t)
	ctx := context.Background()

	alice, err := r.client.OpenStream(ctx, StreamTasks, "alice")
	if err != nil {
		t.Fatal(err)
	}
	dev, err := r.client.OpenStream(ctx, StreamHealth, "s1")
	if err != nil {
		t.Fatal(err)
	}

	r.events.Publish(telemetry.TaskEvent{TaskID: 1, State: telemetry.TaskRunning, Tenant: "bob"})
	r.events.Publish(telemetry.TaskEvent{TaskID: 2, State: telemetry.TaskRunning, Tenant: "alice"})
	if ev := recvStream(t, alice); ev.TaskID != 2 || ev.Tenant != "alice" {
		t.Fatalf("tenant filter leaked: %+v", ev)
	}

	r.events.Publish(telemetry.TaskEvent{DeviceID: "s0", State: telemetry.DeviceDead})
	r.events.Publish(telemetry.TaskEvent{DeviceID: "s1", State: telemetry.DeviceDegraded})
	if ev := recvStream(t, dev); ev.DeviceID != "s1" {
		t.Fatalf("device filter leaked: %+v", ev)
	}
}

func TestOpenStreamRejectsUnknownKind(t *testing.T) {
	r := newCtrlRig(t)
	if _, err := r.client.OpenStream(context.Background(), "weather", ""); err == nil {
		t.Fatal("unknown stream kind accepted")
	}
	// The failed open must not leak a client-side stream registration.
	r.client.mu.Lock()
	n := len(r.client.streams)
	r.client.mu.Unlock()
	if n != 0 {
		t.Fatalf("leaked %d client streams after failed open", n)
	}
}

func TestStreamsCloseOnDisconnect(t *testing.T) {
	r := newCtrlRig(t)
	s, err := r.client.OpenStream(context.Background(), StreamTasks, "")
	if err != nil {
		t.Fatal(err)
	}
	r.client.Close()
	select {
	case _, ok := <-s.C:
		if ok {
			return // drain until close
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stream channel not closed on disconnect")
	}
}
