package ctrlproto

// Stream multiplexing (northbound): a client opens any number of logical
// event streams over one connection, each identified by a client-chosen
// 32-bit stream ID drawn from the same space as request correlation IDs.
// Events for a stream are pushed as MsgTaskEvent frames whose Corr field
// carries the stream ID, so one connection interleaves RPC replies,
// legacy correlation-0 watch pushes, and any number of scoped streams.
//
// Each open stream is its own bus subscriber with a kind-appropriate
// backpressure policy: task streams ride a drop-oldest ring (a lagging
// watcher sees the freshest window), health streams coalesce per device
// (only the latest state matters).

// Stream message types, continuing the task-API block (healthmsg.go ends
// at 25).
const (
	MsgOpenStream  MsgType = iota + 26 // open a logical event stream
	MsgCloseStream                     // close one stream, leaving the connection up
)

// Stream kinds for OpenStreamMsg.
const (
	// StreamTasks delivers every task lifecycle event; Filter, when
	// non-empty, restricts to one tenant.
	StreamTasks = "tasks"
	// StreamHealth delivers device health transitions only (coalesced to
	// the latest state per device); Filter, when non-empty, restricts to
	// one device ID.
	StreamHealth = "health"
)

// OpenStreamMsg asks the control agent to start pushing events on a
// client-chosen stream ID.
type OpenStreamMsg struct {
	Stream uint32
	Kind   string
	Filter string
}

// Encode serializes the message.
func (m OpenStreamMsg) Encode() []byte {
	var e encoder
	e.u32(m.Stream)
	e.str(m.Kind)
	e.str(m.Filter)
	return e.buf
}

// DecodeOpenStreamMsg parses an OpenStreamMsg payload.
func DecodeOpenStreamMsg(b []byte) (OpenStreamMsg, error) {
	d := decoder{buf: b}
	m := OpenStreamMsg{Stream: d.u32(), Kind: d.str(), Filter: d.str()}
	return m, d.finish()
}

// CloseStreamMsg tears down one logical stream.
type CloseStreamMsg struct {
	Stream uint32
}

// Encode serializes the message.
func (m CloseStreamMsg) Encode() []byte {
	var e encoder
	e.u32(m.Stream)
	return e.buf
}

// DecodeCloseStreamMsg parses a CloseStreamMsg payload.
func DecodeCloseStreamMsg(b []byte) (CloseStreamMsg, error) {
	d := decoder{buf: b}
	m := CloseStreamMsg{Stream: d.u32()}
	return m, d.finish()
}
