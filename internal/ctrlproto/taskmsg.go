package ctrlproto

// Task-control payloads: the northbound task API of the control plane
// (list/submit/end/idle, demand dispatch, and the lifecycle event stream),
// sharing the frame format and codec primitives with the device-control
// messages.

// Task-control message types. Values continue the device-control range —
// append only.
const (
	MsgListTasks MsgType = iota + 14
	MsgTasksReply
	MsgEndTask
	MsgSetIdle
	MsgSubmitTask
	MsgTaskReply
	MsgWatchTasks
	MsgTaskEvent
	MsgDemand
	MsgDemandReply
)

// TaskInfo is the wire view of one orchestrator task.
type TaskInfo struct {
	ID        uint32
	Kind      string
	State     string
	Priority  uint32
	FreqHz    float64
	HasResult bool
	// Result fields, meaningful when HasResult.
	Metric     float64
	MetricName string
	Share      float64
	Satisfied  bool
	Strategy   string
	Surfaces   []string
	// Err is the failure reason text ("" unless failed).
	Err string
	// Tenant/Domain are the task's admission tenant and owning
	// interference-domain shard (appended fields).
	Tenant string
	Domain uint32
}

func (m TaskInfo) encode(e *encoder) {
	e.u32(m.ID)
	e.str(m.Kind)
	e.str(m.State)
	e.u32(m.Priority)
	e.f64(m.FreqHz)
	e.bool(m.HasResult)
	e.f64(m.Metric)
	e.str(m.MetricName)
	e.f64(m.Share)
	e.bool(m.Satisfied)
	e.str(m.Strategy)
	e.strs(m.Surfaces)
	e.str(m.Err)
	e.str(m.Tenant)
	e.u32(m.Domain)
}

func decodeTaskInfo(d *decoder) TaskInfo {
	return TaskInfo{
		ID:         d.u32(),
		Kind:       d.str(),
		State:      d.str(),
		Priority:   d.u32(),
		FreqHz:     d.f64(),
		HasResult:  d.bool(),
		Metric:     d.f64(),
		MetricName: d.str(),
		Share:      d.f64(),
		Satisfied:  d.bool(),
		Strategy:   d.str(),
		Surfaces:   d.strs(),
		Err:        d.str(),
		Tenant:     d.str(),
		Domain:     d.u32(),
	}
}

// TasksReply lists the orchestrator's tasks.
type TasksReply struct{ Tasks []TaskInfo }

// Encode serializes the message.
func (m TasksReply) Encode() []byte {
	var e encoder
	e.u32(uint32(len(m.Tasks)))
	for _, t := range m.Tasks {
		t.encode(&e)
	}
	return e.buf
}

// DecodeTasksReply parses a TasksReply payload.
func DecodeTasksReply(b []byte) (TasksReply, error) {
	d := decoder{buf: b}
	n := int(d.u32())
	m := TasksReply{}
	for i := 0; i < n && d.err == nil; i++ {
		m.Tasks = append(m.Tasks, decodeTaskInfo(&d))
	}
	return m, d.finish()
}

// TaskReply carries one task (submit result).
type TaskReply struct{ Task TaskInfo }

// Encode serializes the message.
func (m TaskReply) Encode() []byte {
	var e encoder
	m.Task.encode(&e)
	return e.buf
}

// DecodeTaskReply parses a TaskReply payload.
func DecodeTaskReply(b []byte) (TaskReply, error) {
	d := decoder{buf: b}
	m := TaskReply{Task: decodeTaskInfo(&d)}
	return m, d.finish()
}

// TaskIDMsg addresses one task (end / idle / resume).
type TaskIDMsg struct {
	ID   uint32
	Idle bool // MsgSetIdle: park (true) or resume (false)
}

// Encode serializes the message.
func (m TaskIDMsg) Encode() []byte {
	var e encoder
	e.u32(m.ID)
	e.bool(m.Idle)
	return e.buf
}

// DecodeTaskIDMsg parses a TaskIDMsg payload.
func DecodeTaskIDMsg(b []byte) (TaskIDMsg, error) {
	d := decoder{buf: b}
	m := TaskIDMsg{ID: d.u32(), Idle: d.bool()}
	return m, d.finish()
}

// SubmitMsg files a service goal. Kind selects the service by registry
// name; the remaining fields are a union over the built-in goal types —
// unused fields stay zero.
type SubmitMsg struct {
	Kind     string     // "link", "coverage", "sensing", "powering", "security"
	Endpoint string     // link/security endpoint, powering device
	Region   string     // coverage/sensing region
	Type     string     // sensing type
	Pos      [3]float64 // link/powering position, security user position
	Pos2     [3]float64 // security eavesdropper position
	MinSNRdB float64
	MediandB float64
	FreqHz   float64
	GridStep float64
	DurNanos uint64 // sensing/powering duration
	Priority uint32
	// Tenant is the submitting tenant for admission accounting (appended
	// field; "" means the default tenant).
	Tenant string
}

// Encode serializes the message.
func (m SubmitMsg) Encode() []byte {
	var e encoder
	e.str(m.Kind)
	e.str(m.Endpoint)
	e.str(m.Region)
	e.str(m.Type)
	for _, v := range m.Pos {
		e.f64(v)
	}
	for _, v := range m.Pos2 {
		e.f64(v)
	}
	e.f64(m.MinSNRdB)
	e.f64(m.MediandB)
	e.f64(m.FreqHz)
	e.f64(m.GridStep)
	e.u64(m.DurNanos)
	e.u32(m.Priority)
	e.str(m.Tenant)
	return e.buf
}

// DecodeSubmitMsg parses a SubmitMsg payload.
func DecodeSubmitMsg(b []byte) (SubmitMsg, error) {
	d := decoder{buf: b}
	m := SubmitMsg{Kind: d.str(), Endpoint: d.str(), Region: d.str(), Type: d.str()}
	for i := range m.Pos {
		m.Pos[i] = d.f64()
	}
	for i := range m.Pos2 {
		m.Pos2[i] = d.f64()
	}
	m.MinSNRdB = d.f64()
	m.MediandB = d.f64()
	m.FreqHz = d.f64()
	m.GridStep = d.f64()
	m.DurNanos = d.u64()
	m.Priority = d.u32()
	m.Tenant = d.str()
	return m, d.finish()
}

// TaskEventMsg streams one lifecycle transition (correlation 0 push).
type TaskEventMsg struct {
	UnixNanos  int64
	TaskID     uint32
	Kind       string
	State      string
	FreqHz     float64
	Endpoint   string
	Strategy   string
	Surfaces   []string
	Share      float64
	Metric     float64
	MetricName string
	Err        string
	// DeviceID names the surface for device health events (appended
	// field; "" for plain task lifecycle events).
	DeviceID string
	// Tenant/Domain mirror the orchestrator event's admission tenant and
	// interference-domain shard (appended fields).
	Tenant string
	Domain uint32
}

// Encode serializes the message.
func (m TaskEventMsg) Encode() []byte {
	var e encoder
	e.u64(uint64(m.UnixNanos))
	e.u32(m.TaskID)
	e.str(m.Kind)
	e.str(m.State)
	e.f64(m.FreqHz)
	e.str(m.Endpoint)
	e.str(m.Strategy)
	e.strs(m.Surfaces)
	e.f64(m.Share)
	e.f64(m.Metric)
	e.str(m.MetricName)
	e.str(m.Err)
	e.str(m.DeviceID)
	e.str(m.Tenant)
	e.u32(m.Domain)
	return e.buf
}

// DecodeTaskEventMsg parses a TaskEventMsg payload.
func DecodeTaskEventMsg(b []byte) (TaskEventMsg, error) {
	d := decoder{buf: b}
	m := TaskEventMsg{UnixNanos: int64(d.u64()), TaskID: d.u32(), Kind: d.str(), State: d.str()}
	m.FreqHz = d.f64()
	m.Endpoint = d.str()
	m.Strategy = d.str()
	m.Surfaces = d.strs()
	m.Share = d.f64()
	m.Metric = d.f64()
	m.MetricName = d.str()
	m.Err = d.str()
	m.DeviceID = d.str()
	m.Tenant = d.str()
	m.Domain = d.u32()
	return m, d.finish()
}

// DemandMsg dispatches a natural-language demand through the broker.
type DemandMsg struct{ Utterance string }

// Encode serializes the message.
func (m DemandMsg) Encode() []byte {
	var e encoder
	e.str(m.Utterance)
	return e.buf
}

// DecodeDemandMsg parses a DemandMsg payload.
func DecodeDemandMsg(b []byte) (DemandMsg, error) {
	d := decoder{buf: b}
	m := DemandMsg{Utterance: d.str()}
	return m, d.finish()
}

// DemandReply reports the dispatched calls and resulting tasks.
type DemandReply struct {
	Calls []string
	Tasks []TaskInfo
}

// Encode serializes the message.
func (m DemandReply) Encode() []byte {
	var e encoder
	e.strs(m.Calls)
	e.u32(uint32(len(m.Tasks)))
	for _, t := range m.Tasks {
		t.encode(&e)
	}
	return e.buf
}

// DecodeDemandReply parses a DemandReply payload.
func DecodeDemandReply(b []byte) (DemandReply, error) {
	d := decoder{buf: b}
	m := DemandReply{Calls: d.strs()}
	n := int(d.u32())
	for i := 0; i < n && d.err == nil; i++ {
		m.Tasks = append(m.Tasks, decodeTaskInfo(&d))
	}
	return m, d.finish()
}
