package ctrlproto

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"surfos/internal/orchestrator"
)

// Wire-compatibility tests for the appended multi-tenant/sharding fields:
// tenant and domain ride along on task payloads, and the health reply
// grew a trailing control-plane section. Both ends of the protocol live
// in this repo, so appended fields are decoded unconditionally; the one
// invariant to pin is that old-style payloads (without the appendix)
// still decode.

func TestTaskInfoTenantDomainRoundTrip(t *testing.T) {
	in := TasksReply{Tasks: []TaskInfo{
		{
			ID: 7, Kind: "link", State: "running", Priority: 2, FreqHz: 24e9,
			HasResult: true, Metric: 11.5, MetricName: "snr_db", Share: 0.5,
			Satisfied: true, Strategy: "tdm", Surfaces: []string{"s0", "s1"},
			Tenant: "acme", Domain: 3,
		},
		{ID: 8, Kind: "coverage", State: "pending", Priority: 1},
	}}
	out, err := DecodeTasksReply(in.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", in, out)
	}
}

func TestSubmitMsgTenantRoundTrip(t *testing.T) {
	in := SubmitMsg{
		Kind: "link", Endpoint: "laptop", Pos: [3]float64{2.5, 5.5, 1.2},
		MinSNRdB: 3, Priority: 2, Tenant: "acme",
	}
	out, err := DecodeSubmitMsg(in.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", in, out)
	}
}

func TestTaskEventMsgTenantDomainRoundTrip(t *testing.T) {
	in := TaskEventMsg{
		UnixNanos: 12345, TaskID: 9, Kind: "link", State: "migrated",
		FreqHz: 24e9, Endpoint: "laptop", Surfaces: []string{"room1_north"},
		Tenant: "acme", Domain: 1,
	}
	out, err := DecodeTaskEventMsg(in.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", in, out)
	}
}

func TestHealthReplyControlSectionRoundTrip(t *testing.T) {
	in := HealthReply{
		Devices: []HealthInfo{{
			DeviceID: "s0", State: "healthy", StuckElements: []uint32{1, 4},
			ConsecutiveFailures: 0, TotalFailures: 2, LastErr: "tx fail",
		}},
		HasControl: true,
		Control: ControlHealthInfo{
			BusDropped: 3, JournalSeq: 42, JournalLag: 2, JournalErr: "disk full",
			Shards: []ShardHealthInfo{
				{Domain: 0, Surfaces: []string{"room0_north"}, Tasks: 2, Running: 1, Reconciles: 9, LastReconcileNanos: 1500000},
				{Domain: 1, Surfaces: []string{"room1_north"}, Tasks: 1, Running: 1, Reconciles: 9, LastReconcileNanos: 900000},
			},
			Tenants: []TenantHealthInfo{
				{Tenant: "acme", Active: 2, Rejected: 5, MaxActive: 2, Weight: 1.5},
				{Tenant: "default", Active: 1},
			},
		},
	}
	out, err := DecodeHealthReply(in.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", in, out)
	}
}

// TestHealthReplyLegacyPayloadDecodes pins backward compatibility: a
// devices-only payload — what an agent without the control-plane hook
// emits, byte-identical to the pre-sharding encoding — must decode with
// HasControl=false and a zero Control.
func TestHealthReplyLegacyPayloadDecodes(t *testing.T) {
	legacy := HealthReply{Devices: []HealthInfo{
		{DeviceID: "s0", State: "healthy"},
		{DeviceID: "s1", State: "dead", LastErr: "boom"},
	}}
	out, err := DecodeHealthReply(legacy.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if out.HasControl {
		t.Fatal("devices-only payload decoded with HasControl=true")
	}
	if !reflect.DeepEqual(out.Control, (ControlHealthInfo{})) {
		t.Fatalf("devices-only payload produced control state: %+v", out.Control)
	}
	if !reflect.DeepEqual(legacy.Devices, out.Devices) {
		t.Fatalf("device list mismatch:\n in: %+v\nout: %+v", legacy.Devices, out.Devices)
	}
}

// TestAdmissionRejectedSurvivesWireHop submits over a real agent pipe
// against a quota'd orchestrator: the typed rejection must come back
// errors.Is-able with its own status code, so surfctl can map it to a
// distinct exit code.
func TestAdmissionRejectedSurvivesWireHop(t *testing.T) {
	r := newCtrlRig(t)
	r.orch.SetTenantQuota("acme", orchestrator.TenantQuota{MaxActive: 1})
	ctx := context.Background()

	submit := SubmitMsg{Kind: "link", Endpoint: "laptop", Pos: [3]float64{2.5, 5.5, 1.2}, Priority: 1, Tenant: "acme"}
	info, err := r.client.SubmitTask(ctx, submit)
	if err != nil {
		t.Fatal(err)
	}
	if info.Tenant != "acme" {
		t.Fatalf("submitted task tenant = %q, want acme", info.Tenant)
	}

	_, err = r.client.SubmitTask(ctx, submit)
	if !errors.Is(err, orchestrator.ErrAdmissionRejected) {
		t.Fatalf("over-quota submit err = %v, want errors.Is ErrAdmissionRejected", err)
	}
	var we *WireError
	if !errors.As(err, &we) || we.Status != StatusAdmissionRejected {
		t.Fatalf("wire error = %+v, want StatusAdmissionRejected", err)
	}
	if errors.Is(err, orchestrator.ErrUnknownTask) {
		t.Error("admission rejection aliased to ErrUnknownTask across the wire")
	}

	// The untenanted legacy submit path is unaffected by the quota.
	if _, err := r.client.SubmitTask(ctx, SubmitMsg{Kind: "link", Endpoint: "pc", Pos: [3]float64{2.0, 5.0, 1.2}, Priority: 1}); err != nil {
		t.Fatalf("default-tenant submit: %v", err)
	}
}

// TestHealthFullControlSection drives the control-plane health hook over
// the pipe: with the hook set the client sees shard and tenant state;
// without it the reply is devices-only, exactly as before.
func TestHealthFullControlSection(t *testing.T) {
	r := newCtrlRig(t)
	ctx := context.Background()

	reply, err := r.client.HealthFull(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if reply.HasControl {
		t.Fatal("agent without ControlHealth hook reported a control section")
	}
	if len(reply.Devices) != 1 || reply.Devices[0].DeviceID != "s0" {
		t.Fatalf("devices = %+v, want [s0]", reply.Devices)
	}

	r.agent.ControlHealth = func() ControlHealthInfo {
		var info ControlHealthInfo
		for _, s := range r.orch.ShardStats() {
			info.Shards = append(info.Shards, ShardHealthInfo{
				Domain:   uint32(s.Domain),
				Surfaces: s.Surfaces,
				Tasks:    uint32(s.Tasks),
			})
		}
		for _, ts := range r.orch.TenantStats() {
			info.Tenants = append(info.Tenants, TenantHealthInfo{
				Tenant: ts.Tenant, Active: uint32(ts.Active), Rejected: ts.Rejected,
			})
		}
		return info
	}
	if _, err := r.client.SubmitTask(ctx, SubmitMsg{Kind: "link", Endpoint: "laptop", Pos: [3]float64{2.5, 5.5, 1.2}, Priority: 1, Tenant: "acme"}); err != nil {
		t.Fatal(err)
	}
	reply, err = r.client.HealthFull(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !reply.HasControl {
		t.Fatal("agent with ControlHealth hook reported no control section")
	}
	if len(reply.Control.Shards) != 1 || reply.Control.Shards[0].Tasks != 1 {
		t.Fatalf("shards = %+v, want one shard with one task", reply.Control.Shards)
	}
	found := false
	for _, ts := range reply.Control.Tenants {
		if ts.Tenant == "acme" && ts.Active == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("tenants = %+v, want acme active=1", reply.Control.Tenants)
	}
}

// TestStreamMsgRoundTrip pins the multiplexed-stream control payloads
// introduced with the framed northbound: open carries (stream, kind,
// filter), close carries the stream ID alone.
func TestStreamMsgRoundTrip(t *testing.T) {
	in := OpenStreamMsg{Stream: 9, Kind: StreamTasks, Filter: "acme"}
	out, err := DecodeOpenStreamMsg(in.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("open round trip mismatch:\n in: %+v\nout: %+v", in, out)
	}
	cin := CloseStreamMsg{Stream: 9}
	cout, err := DecodeCloseStreamMsg(cin.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cin, cout) {
		t.Fatalf("close round trip mismatch:\n in: %+v\nout: %+v", cin, cout)
	}
}
