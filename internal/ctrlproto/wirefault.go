package ctrlproto

import (
	"math/rand"
	"net"
	"sync"
	"time"

	"surfos/internal/wire"
)

// WireFaults scripts frame-level control-channel faults — drop, delay,
// duplicate — deterministically from a seed. Attach it to one direction of
// a connection with NewFaultyConn; each complete protocol frame written
// through the wrapped conn rolls the dice independently. Safe for
// concurrent use.
type WireFaults struct {
	mu  sync.Mutex
	rng *rand.Rand
	// dropProb is the probability a frame is silently discarded.
	dropProb float64
	// dupProb is the probability a frame is delivered twice.
	dupProb float64
	// delay is added before each delivered frame.
	delay time.Duration

	// dropNext scripts a deterministic fault: the next n frames are
	// discarded regardless of probability.
	dropNext int

	dropped    int
	duplicated int
}

// NewWireFaults creates a fault script whose dice replay from seed.
func NewWireFaults(seed int64) *WireFaults {
	return &WireFaults{rng: rand.New(rand.NewSource(seed))}
}

// SetDropProb makes each frame vanish with probability p.
func (w *WireFaults) SetDropProb(p float64) {
	w.mu.Lock()
	w.dropProb = p
	w.mu.Unlock()
}

// SetDupProb makes each frame deliver twice with probability p.
func (w *WireFaults) SetDupProb(p float64) {
	w.mu.Lock()
	w.dupProb = p
	w.mu.Unlock()
}

// SetDelay adds a fixed latency before each delivered frame.
func (w *WireFaults) SetDelay(d time.Duration) {
	w.mu.Lock()
	w.delay = d
	w.mu.Unlock()
}

// DropNext unconditionally discards the next n frames — a scripted
// outage, independent of the probability dice.
func (w *WireFaults) DropNext(n int) {
	w.mu.Lock()
	w.dropNext += n
	w.mu.Unlock()
}

// Dropped returns how many frames have been discarded.
func (w *WireFaults) Dropped() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.dropped
}

// Duplicated returns how many frames have been delivered twice.
func (w *WireFaults) Duplicated() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.duplicated
}

// decide rolls the dice for one frame: drop wins over duplicate.
func (w *WireFaults) decide() (drop, dup bool, delay time.Duration) {
	w.mu.Lock()
	defer w.mu.Unlock()
	delay = w.delay
	if w.dropNext > 0 {
		w.dropNext--
		w.dropped++
		return true, false, delay
	}
	if w.dropProb > 0 && w.rng.Float64() < w.dropProb {
		w.dropped++
		return true, false, delay
	}
	if w.dupProb > 0 && w.rng.Float64() < w.dupProb {
		w.duplicated++
		return false, true, delay
	}
	return false, false, delay
}

// FaultyConn wraps one side of a connection and applies WireFaults to the
// frames written through it. It reassembles the outgoing byte stream into
// protocol frames (WriteFrame issues header and payload as separate
// writes), so faults operate on whole frames — a dropped frame disappears
// cleanly instead of corrupting the stream. Reads pass through untouched:
// wrap the side whose requests should suffer.
type FaultyConn struct {
	net.Conn
	faults *WireFaults

	wmu  sync.Mutex
	wbuf []byte
}

// NewFaultyConn wraps conn so its writes pass through the fault script.
func NewFaultyConn(conn net.Conn, faults *WireFaults) *FaultyConn {
	return &FaultyConn{Conn: conn, faults: faults}
}

// Write buffers p, extracts complete frames, and forwards each through the
// fault dice. It always reports len(p) consumed: a dropped frame is an
// injected network fault, not a caller error.
func (c *FaultyConn) Write(p []byte) (int, error) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.wbuf = append(c.wbuf, p...)
	for {
		frame, rest, ok := wire.SplitFrame(c.wbuf)
		if !ok {
			return len(p), nil
		}
		c.wbuf = rest
		drop, dup, delay := c.faults.decide()
		if delay > 0 {
			time.Sleep(delay)
		}
		if drop {
			continue
		}
		copies := 1
		if dup {
			copies = 2
		}
		for i := 0; i < copies; i++ {
			if _, err := c.Conn.Write(frame); err != nil {
				return len(p), err
			}
		}
	}
}
