// Package deploy implements SurfOS's deployment automation (paper §5,
// "New hardware design and deployment"): given candidate mounting
// locations, a hardware design, and a service goal, it evaluates placements
// through the channel simulator and ranks them — the clean-slate stage
// AutoMS automates for passive mmWave surfaces, generalized over the
// driver catalog.
package deploy

import (
	"context"
	"fmt"
	"math"
	"sort"

	"surfos/internal/driver"
	"surfos/internal/em"
	"surfos/internal/engine"
	"surfos/internal/geom"
	"surfos/internal/optimize"
	"surfos/internal/rfsim"
	"surfos/internal/scene"
	"surfos/internal/surface"
)

// Request describes a placement planning problem.
type Request struct {
	// Scene is the deployment environment.
	Scene *scene.Scene
	// AP is the serving access point position.
	AP geom.Vec3
	// Budget is the link budget for scoring.
	Budget rfsim.LinkBudget
	// Region is the coverage target region name.
	Region string
	// Spec is the hardware design to place.
	Spec driver.Spec
	// Rows, Cols size the panel.
	Rows, Cols int
	// Mounts are the candidate locations.
	Mounts []scene.MountSpot
	// GridStep is the coverage evaluation spacing (default 0.8 m).
	GridStep float64
	// OptIters bounds the per-candidate configuration optimization
	// (default 80).
	OptIters int
	// FreqHz overrides the operating frequency (default: band center).
	FreqHz float64
	// BeamAP aims the AP's 20 dB beamforming pattern at each candidate
	// surface (mmWave deployments). When set, Budget.AntennaGainDB should
	// carry only the client-side gain — the AP array gain is in the
	// pattern, and counting it twice inflates every candidate.
	BeamAP bool
	// Engine overrides the channel-evaluation engine (nil selects the
	// process-wide engine.Default()). Candidates are evaluated in parallel
	// across the engine's worker pool.
	Engine *engine.Engine
}

// Candidate is one evaluated placement.
type Candidate struct {
	Mount scene.MountSpot
	// MedianSNRdB is the achieved coverage with an optimized configuration.
	MedianSNRdB float64
	// APVisibility is the AP→panel-center amplitude gain through the
	// environment (0 = fully blocked).
	APVisibility float64
	// CostUSD is the panel hardware cost.
	CostUSD float64
	// Err records why a candidate could not be evaluated.
	Err error
}

// Plan evaluates every candidate mount in parallel and returns them ranked
// by achieved median SNR (best first). Candidates that fail to evaluate
// rank last with Err set. The ranking is deterministic: candidates are
// scored by index and sorted stably, so parallel evaluation returns
// exactly the serial ordering. Canceling ctx aborts unstarted candidates
// and returns the ctx error.
func Plan(ctx context.Context, req Request) ([]Candidate, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if req.Scene == nil {
		return nil, fmt.Errorf("deploy: nil scene")
	}
	if len(req.Mounts) == 0 {
		return nil, fmt.Errorf("deploy: no candidate mounts")
	}
	if err := req.Spec.Validate(); err != nil {
		return nil, err
	}
	if req.Rows <= 0 || req.Cols <= 0 {
		return nil, fmt.Errorf("deploy: panel size %dx%d", req.Rows, req.Cols)
	}
	reg, err := req.Scene.Region(req.Region)
	if err != nil {
		return nil, err
	}
	step := req.GridStep
	if step == 0 {
		step = 0.8
	}
	iters := req.OptIters
	if iters == 0 {
		iters = 80
	}
	freq := req.FreqHz
	if freq == 0 {
		freq = req.Spec.FreqLowHz + (req.Spec.FreqHighHz-req.Spec.FreqLowHz)/2
	}
	if !req.Spec.SupportsFreq(freq) {
		return nil, fmt.Errorf("deploy: %s does not support %g Hz", req.Spec.Model, freq)
	}
	pts := reg.GridPoints(step, scene.EvalHeight)
	if len(pts) == 0 {
		return nil, fmt.Errorf("deploy: region %q has no grid points", req.Region)
	}

	eng := req.Engine
	if eng == nil {
		eng = engine.Default()
	}
	out := make([]Candidate, len(req.Mounts))
	if err := eng.ForEach(ctx, len(req.Mounts), func(i int) {
		out[i] = evaluate(ctx, req, req.Mounts[i], freq, pts, iters)
	}); err != nil {
		return nil, err
	}
	sort.SliceStable(out, func(i, j int) bool {
		if (out[i].Err == nil) != (out[j].Err == nil) {
			return out[i].Err == nil
		}
		return out[i].MedianSNRdB > out[j].MedianSNRdB
	})
	return out, nil
}

// evaluate scores one mount. It runs inside the engine's worker pool, so
// everything it touches is either local or read-only.
func evaluate(ctx context.Context, req Request, mount scene.MountSpot, freq float64, pts []geom.Vec3, iters int) Candidate {
	cand := Candidate{Mount: mount, MedianSNRdB: math.Inf(-1)}
	pitch := em.Wavelength(freq) / 2
	panel := mount.Panel(float64(req.Cols)*pitch+0.02, float64(req.Rows)*pitch+0.02)
	mode := req.Spec.OpMode
	if mode == surface.Transflective {
		mode = surface.Reflective
	}
	s, err := surface.New("cand-"+mount.Name, panel, surface.Layout{
		Rows: req.Rows, Cols: req.Cols, PitchU: pitch, PitchV: pitch,
	}, mode, em.CosinePattern{Q: 0.5})
	if err != nil {
		cand.Err = err
		return cand
	}
	d, err := driver.New(req.Spec, s)
	if err != nil {
		cand.Err = err
		return cand
	}
	cand.CostUSD = d.CostUSD()

	sim, err := rfsim.New(req.Scene, freq, s)
	if err != nil {
		cand.Err = err
		return cand
	}
	if e := req.Spec.ElementEfficiency; e > 0 {
		sim.ElementEfficiency = e
	}
	if req.BeamAP {
		sim.TxPattern = rfsim.ConeBeam(panel.Center().Sub(req.AP), 12*math.Pi/180, 20, -5)
	}
	cand.APVisibility = req.Scene.SegmentGain(req.AP, panel.Center(), freq)

	tc := sim.NewTx(req.AP)
	chans := make([]*rfsim.Channel, len(pts))
	for i, p := range pts {
		chans[i] = tc.Channel(p)
	}
	obj, err := optimize.NewCoverageObjective(chans, req.Budget)
	if err != nil {
		cand.Err = err
		return cand
	}
	res := optimize.Adam(ctx, obj, optimize.ZeroPhases(obj.Shape()), optimize.Options{MaxIters: iters})
	cfg := d.Project(surface.Config{Property: surface.Phase, Values: res.Phases[0]})

	snrs := make([]float64, len(chans))
	for i, ch := range chans {
		h, err := ch.Eval([]surface.Config{cfg})
		if err != nil {
			cand.Err = err
			return cand
		}
		snrs[i] = req.Budget.SNRdB(h)
	}
	cand.MedianSNRdB = rfsim.Median(snrs)
	return cand
}
