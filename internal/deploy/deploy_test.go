package deploy

import (
	"context"
	"math"
	"testing"

	"surfos/internal/driver"
	"surfos/internal/geom"
	"surfos/internal/rfsim"
	"surfos/internal/scene"
)

func request(t *testing.T) Request {
	t.Helper()
	apt := scene.NewApartment()
	spec, err := driver.Lookup(driver.ModelNRSurface)
	if err != nil {
		t.Fatal(err)
	}
	return Request{
		Scene:    apt.Scene,
		AP:       apt.AP,
		Budget:   rfsim.LinkBudget{TxPowerDBm: 10, AntennaGainDB: 5, NoiseFigureDB: 7, BandwidthHz: 400e6},
		Region:   scene.RegionTargetRoom,
		Spec:     spec,
		Rows:     16,
		Cols:     16,
		GridStep: 1.2,
		OptIters: 40,
		Mounts: []scene.MountSpot{
			apt.Mounts[scene.MountEastWall],
			apt.Mounts[scene.MountNorthWall],
			// A hopeless candidate: a living-room wall spot whose panel
			// faces away from the target room (normal +y into the living
			// room is impossible here; use a south-wall mount whose
			// reflections cannot reach the bedroom).
			{
				Name:   "south_wall",
				Center: geom.V(3.5, 0, 1.8),
				U:      geom.V(1, 0, 0),
				V:      geom.V(0, 0, 1),
				Normal: geom.V(0, 1, 0),
			},
		},
	}
}

func TestPlanRanksVisibleMountsFirst(t *testing.T) {
	req := request(t)
	req.BeamAP = true
	cands, err := Plan(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 3 {
		t.Fatalf("got %d candidates", len(cands))
	}
	// Ranked best-first.
	for i := 1; i < len(cands); i++ {
		if cands[i-1].Err == nil && cands[i].Err == nil &&
			cands[i-1].MedianSNRdB < cands[i].MedianSNRdB {
			t.Errorf("not ranked: %v before %v", cands[i-1].MedianSNRdB, cands[i].MedianSNRdB)
		}
	}
	// The south-wall candidate serves the bedroom far worse than the
	// in-room mounts: it can only relay energy through the doorway, while
	// the east mount has direct room visibility.
	bySpot := map[string]Candidate{}
	for _, c := range cands {
		bySpot[c.Mount.Name] = c
	}
	south := bySpot["south_wall"]
	east := bySpot[scene.MountEastWall]
	if east.MedianSNRdB < south.MedianSNRdB+5 {
		t.Errorf("east mount %.1f dB should dominate south wall %.1f dB",
			east.MedianSNRdB, south.MedianSNRdB)
	}
	// The winner is one of the bedroom mounts.
	if cands[0].Mount.Name == "south_wall" {
		t.Error("blocked mount ranked first")
	}
	// AP visibility recorded: the east mount has clear line of sight.
	if east.APVisibility < 0.9 {
		t.Errorf("east mount AP visibility %v, want ≈1", east.APVisibility)
	}
	// Cost model populated.
	if east.CostUSD <= 0 {
		t.Error("candidate cost missing")
	}
}

func TestPlanValidation(t *testing.T) {
	req := request(t)

	bad := req
	bad.Scene = nil
	if _, err := Plan(context.Background(), bad); err == nil {
		t.Error("nil scene accepted")
	}

	bad = req
	bad.Mounts = nil
	if _, err := Plan(context.Background(), bad); err == nil {
		t.Error("no mounts accepted")
	}

	bad = req
	bad.Region = "nope"
	if _, err := Plan(context.Background(), bad); err == nil {
		t.Error("unknown region accepted")
	}

	bad = req
	bad.Rows = 0
	if _, err := Plan(context.Background(), bad); err == nil {
		t.Error("zero rows accepted")
	}

	bad = req
	bad.FreqHz = 60e9 // outside NR-Surface band
	if _, err := Plan(context.Background(), bad); err == nil {
		t.Error("out-of-band frequency accepted")
	}

	bad = req
	bad.Spec = driver.Spec{}
	if _, err := Plan(context.Background(), bad); err == nil {
		t.Error("invalid spec accepted")
	}
}

func TestPlanBeamAPImprovesServedMount(t *testing.T) {
	req := request(t)
	req.Mounts = req.Mounts[:1] // east wall only
	plain, err := Plan(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	req.BeamAP = true
	beamed, err := Plan(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if beamed[0].MedianSNRdB < plain[0].MedianSNRdB+10 {
		t.Errorf("AP beamforming gain missing: %.1f vs %.1f dB",
			beamed[0].MedianSNRdB, plain[0].MedianSNRdB)
	}
	if math.IsInf(beamed[0].MedianSNRdB, 0) {
		t.Error("non-finite SNR")
	}
}
