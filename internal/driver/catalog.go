package driver

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"surfos/internal/em"
	"surfos/internal/surface"
)

// registry holds registered hardware designs by model name, following the
// integer/name-keyed registry pattern of layered packet libraries: register
// once at init, read-only afterwards.
var registry = struct {
	sync.RWMutex
	specs map[string]Spec
}{specs: make(map[string]Spec)}

// Register adds a design spec to the global catalog. It panics on invalid
// or duplicate registrations, which only happen at init time.
func Register(s Spec) {
	if err := s.Validate(); err != nil {
		panic(err)
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.specs[s.Model]; dup {
		panic(fmt.Sprintf("driver: duplicate registration of %q", s.Model))
	}
	registry.specs[s.Model] = s
}

// Lookup returns the spec registered under a model name.
func Lookup(model string) (Spec, error) {
	registry.RLock()
	defer registry.RUnlock()
	s, ok := registry.specs[model]
	if !ok {
		return Spec{}, fmt.Errorf("driver: unknown model %q", model)
	}
	return s, nil
}

// Catalog returns all registered specs sorted by operating band, then
// re-configurability, then model name — the ordering of the paper's
// Table 1.
func Catalog() []Spec {
	registry.RLock()
	defer registry.RUnlock()
	out := make([]Spec, 0, len(registry.specs))
	for _, s := range registry.specs {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].FreqLowHz != out[j].FreqLowHz {
			return out[i].FreqLowHz < out[j].FreqLowHz
		}
		if out[i].Reconfigurable != out[j].Reconfigurable {
			return out[i].Reconfigurable
		}
		return out[i].Model < out[j].Model
	})
	return out
}

// surfaceResponse is the generic in-band response of a metasurface panel:
// strongly interactive in its design band, increasingly transparent far
// below it (sub-wavelength structures vanish electrically), partially
// blocking above. Encodes the paper's warning that "surfaces designed for
// 2.4 GHz may block 3 GHz cellular and 5 GHz Wi-Fi signals".
func surfaceResponse(designLow, designHigh float64, inBandRefl float64) *em.Material {
	return em.MustMaterial(fmt.Sprintf("panel-%.1fGHz", designLow/1e9),
		em.MaterialPoint{FreqHz: designLow / 4, Reflection: 0.05, Transmission: 0.95},
		em.MaterialPoint{FreqHz: designLow, Reflection: inBandRefl, Transmission: 0.3},
		em.MaterialPoint{FreqHz: designHigh, Reflection: inBandRefl, Transmission: 0.3},
		em.MaterialPoint{FreqHz: designHigh * 2, Reflection: 0.5, Transmission: 0.5},
	)
}

// Model names for the paper's Table 1 designs.
const (
	ModelLAIA        = "LAIA"
	ModelRFocus      = "RFocus"
	ModelLLAMA       = "LLAMA"
	ModelLAVA        = "LAVA"
	ModelScatterMIMO = "ScatterMIMO"
	ModelRFlens      = "RFlens"
	ModelDiffract    = "Diffract"
	ModelScrolls     = "Scrolls"
	ModelMMWall      = "mmWall"
	ModelNRSurface   = "NR-Surface"
	ModelPMSat       = "PMSat"
	ModelMilliMirror = "MilliMirror"
	ModelAutoMS      = "AutoMS"
)

// init registers the paper's Table 1: thirteen published surface designs
// spanning 0.9–60 GHz, phase/amplitude/polarization/frequency/diffraction
// control, transmissive and reflective operation, element-, column-,
// row-wise and fixed granularity, and four orders of magnitude in cost.
// Cost models approximate the published prototype costs (Table 1's Cost
// column) split into a fixed controller part and a per-element part; "/"
// entries in the paper carry representative estimates.
func init() {
	for _, s := range []Spec{
		{
			Model: ModelLAIA, Reference: "NSDI'19",
			FreqLowHz: 2.3e9, FreqHighHz: 2.5e9,
			Control: surface.Phase, OpMode: surface.Transmissive,
			Granularity: surface.ElementWise, Reconfigurable: true,
			PhaseBits: 2, ControlDelay: 2 * time.Millisecond,
			CostPerElementUSD: 8, FixedCostUSD: 120,
			ElementEfficiency: 0.8, Response: surfaceResponse(2.3e9, 2.5e9, 0.5),
		},
		{
			Model: ModelRFocus, Reference: "NSDI'20",
			FreqLowHz: 2.3e9, FreqHighHz: 2.5e9,
			Control: surface.Amplitude, OpMode: surface.Transflective,
			Granularity: surface.ElementWise, Reconfigurable: true,
			PhaseBits: 1, ControlDelay: 5 * time.Millisecond,
			CostPerElementUSD: 0.8, FixedCostUSD: 150,
			ElementEfficiency: 0.6, Response: surfaceResponse(2.3e9, 2.5e9, 0.5),
		},
		{
			Model: ModelLLAMA, Reference: "NSDI'21",
			FreqLowHz: 2.3e9, FreqHighHz: 2.5e9,
			Control: surface.Polarization, OpMode: surface.Transflective,
			Granularity: surface.ElementWise, Reconfigurable: true,
			PhaseBits: 0, ControlDelay: 3 * time.Millisecond,
			CostPerElementUSD: 12, FixedCostUSD: 180,
			ElementEfficiency: 0.75, Response: surfaceResponse(2.3e9, 2.5e9, 0.55),
		},
		{
			Model: ModelLAVA, Reference: "SIGCOMM'21",
			FreqLowHz: 2.3e9, FreqHighHz: 2.5e9,
			Control: surface.Amplitude, OpMode: surface.Transmissive,
			Granularity: surface.ElementWise, Reconfigurable: true,
			PhaseBits: 1, ControlDelay: 4 * time.Millisecond,
			CostPerElementUSD: 3, FixedCostUSD: 140,
			ElementEfficiency: 0.7, Response: surfaceResponse(2.3e9, 2.5e9, 0.5),
		},
		{
			Model: ModelScatterMIMO, Reference: "MobiCom'20",
			FreqLowHz: 5.0e9, FreqHighHz: 5.9e9,
			Control: surface.Phase, OpMode: surface.Reflective,
			Granularity: surface.ElementWise, Reconfigurable: true,
			PhaseBits: 2, ControlDelay: 1 * time.Millisecond,
			CostPerElementUSD: 9, FixedCostUSD: 90,
			ElementEfficiency: 0.8, Response: surfaceResponse(5.0e9, 5.9e9, 0.6),
		},
		{
			Model: ModelRFlens, Reference: "MobiCom'21",
			FreqLowHz: 5.0e9, FreqHighHz: 5.9e9,
			Control: surface.Phase, OpMode: surface.Transmissive,
			Granularity: surface.ElementWise, Reconfigurable: true,
			PhaseBits: 1, ControlDelay: 2 * time.Millisecond,
			CostPerElementUSD: 4, FixedCostUSD: 60,
			ElementEfficiency: 0.75, Response: surfaceResponse(5.0e9, 5.9e9, 0.55),
		},
		{
			Model: ModelDiffract, Reference: "MobiCom'23",
			FreqLowHz: 5.0e9, FreqHighHz: 5.9e9,
			Control: surface.Diffraction, OpMode: surface.Transmissive,
			Granularity: surface.FixedPattern, Reconfigurable: false,
			PhaseBits:         0,
			CostPerElementUSD: 0.2, FixedCostUSD: 25,
			ElementEfficiency: 0.6, Response: surfaceResponse(5.0e9, 5.9e9, 0.4),
		},
		{
			Model: ModelScrolls, Reference: "MobiCom'23",
			FreqLowHz: 0.9e9, FreqHighHz: 6.0e9,
			Control: surface.Frequency, OpMode: surface.Reflective,
			Granularity: surface.RowWise, Reconfigurable: true,
			PhaseBits: 1, ControlDelay: 10 * time.Millisecond,
			CostPerElementUSD: 1.2, FixedCostUSD: 80,
			ElementEfficiency: 0.7, Response: surfaceResponse(0.9e9, 6.0e9, 0.6),
		},
		{
			Model: ModelMMWall, Reference: "NSDI'23",
			FreqLowHz: 23e9, FreqHighHz: 25e9,
			Control: surface.Phase, OpMode: surface.Transflective,
			Granularity: surface.ColumnWise, Reconfigurable: true,
			PhaseBits: 3, ControlDelay: 50 * time.Microsecond,
			CostPerElementUSD: 6.5, FixedCostUSD: 400,
			ElementEfficiency: 0.85, Response: surfaceResponse(23e9, 25e9, 0.7),
		},
		{
			Model: ModelNRSurface, Reference: "NSDI'24",
			FreqLowHz: 23e9, FreqHighHz: 25e9,
			Control: surface.Phase, OpMode: surface.Reflective,
			Granularity: surface.ColumnWise, Reconfigurable: true,
			PhaseBits: 2, ControlDelay: 100 * time.Microsecond,
			CostPerElementUSD: 2.2, FixedCostUSD: 160,
			ElementEfficiency: 0.8, Response: surfaceResponse(23e9, 25e9, 0.7),
		},
		{
			Model: ModelPMSat, Reference: "MobiCom'23",
			FreqLowHz: 20e9, FreqHighHz: 30e9,
			Control: surface.Phase, OpMode: surface.Transmissive,
			Granularity: surface.FixedPattern, Reconfigurable: false,
			PhaseBits:         2,
			CostPerElementUSD: 0.008, FixedCostUSD: 18,
			ElementEfficiency: 0.7, Response: surfaceResponse(20e9, 30e9, 0.5),
		},
		{
			Model: ModelMilliMirror, Reference: "MobiCom'22",
			FreqLowHz: 57e9, FreqHighHz: 64e9,
			Control: surface.Phase, OpMode: surface.Reflective,
			Granularity: surface.FixedPattern, Reconfigurable: false,
			PhaseBits:         2,
			CostPerElementUSD: 0.002, FixedCostUSD: 12,
			ElementEfficiency: 0.75, Response: surfaceResponse(57e9, 64e9, 0.7),
		},
		{
			Model: ModelAutoMS, Reference: "MobiCom'24",
			FreqLowHz: 57e9, FreqHighHz: 64e9,
			Control: surface.Phase, OpMode: surface.Reflective,
			Granularity: surface.FixedPattern, Reconfigurable: false,
			PhaseBits:         2,
			CostPerElementUSD: 0.00002, FixedCostUSD: 1,
			ElementEfficiency: 0.7, Response: surfaceResponse(57e9, 64e9, 0.7),
		},
	} {
		Register(s)
	}
}
