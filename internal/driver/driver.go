// Package driver implements the SurfOS hardware manager's device layer:
// a unified driver interface that masks the heterogeneity of metasurface
// hardware designs (paper §3.1) behind signal-property primitives —
// ShiftPhase, SetAmplitude, … — plus machine-readable hardware
// specifications and a registry covering every design in the paper's
// Table 1.
//
// A Driver wraps a placed surface with its design's constraints: control
// granularity (element-, column-, row-wise or fixed), phase quantization,
// reconfiguration latency, and cost model. Upper layers always program at
// the finest granularity (element-wise arrays); the driver projects the
// request onto what the hardware can realize, mirroring how the paper's
// unified configuration interface treats passive and programmable surfaces
// alike.
package driver

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"surfos/internal/em"
	"surfos/internal/optimize"
	"surfos/internal/surface"
)

// Spec is a surface hardware design's machine-readable specification — the
// paper's "hardware specifications" a driver must "explicitly capture and
// expose ... to the upper layer" (§3.1).
type Spec struct {
	Model     string // design name, e.g. "mmWall"
	Reference string // publication venue/year, for the catalog

	// Operating band.
	FreqLowHz, FreqHighHz float64
	// Primary signal control property (Table 1 "Signal Control Mode").
	Control surface.ControlProperty
	// OpMode: transmissive, reflective, or both (Table 1 "T/R").
	OpMode surface.OpMode
	// Granularity of independent element control.
	Granularity surface.Granularity
	// Reconfigurable distinguishes programmable designs from passive
	// (fabrication-time, one-shot) ones.
	Reconfigurable bool
	// PhaseBits quantizes phase states (0 = continuous).
	PhaseBits int
	// ControlDelay is the latency to update a configuration on the device.
	// Meaningless for passive designs (Reconfigurable=false): the paper
	// likens those to ROM — "infinite control delay".
	ControlDelay time.Duration
	// CodebookSlots bounds how many configurations the device can store
	// locally (0 = unlimited). Passive designs hold exactly 1.
	CodebookSlots int
	// Cost model: CostUSD(n) = FixedCostUSD + n·CostPerElementUSD.
	CostPerElementUSD float64
	FixedCostUSD      float64
	// ElementEfficiency scales the per-element interaction amplitude.
	ElementEfficiency float64
	// Response is the wideband frequency response ("to avoid unintended
	// blocking", §3.1): how the panel treats out-of-band signals.
	Response *em.Material
}

// Validate checks internal consistency.
func (s Spec) Validate() error {
	if s.Model == "" {
		return errors.New("driver: spec needs a model name")
	}
	if s.FreqLowHz <= 0 || s.FreqHighHz < s.FreqLowHz {
		return fmt.Errorf("driver: %s has invalid band [%g, %g]", s.Model, s.FreqLowHz, s.FreqHighHz)
	}
	if s.PhaseBits < 0 || s.PhaseBits > 16 {
		return fmt.Errorf("driver: %s has invalid phase bits %d", s.Model, s.PhaseBits)
	}
	if s.ElementEfficiency < 0 || s.ElementEfficiency > 1 {
		return fmt.Errorf("driver: %s has invalid efficiency %g", s.Model, s.ElementEfficiency)
	}
	if !s.Reconfigurable && s.Granularity != surface.FixedPattern {
		return fmt.Errorf("driver: %s is passive but granularity is %v", s.Model, s.Granularity)
	}
	if s.CostPerElementUSD < 0 || s.FixedCostUSD < 0 {
		return fmt.Errorf("driver: %s has negative cost", s.Model)
	}
	return nil
}

// SupportsFreq reports whether f lies in the design's operating band.
func (s Spec) SupportsFreq(f float64) bool {
	return f >= s.FreqLowHz && f <= s.FreqHighHz
}

// CostUSD returns the hardware cost of an n-element panel.
func (s Spec) CostUSD(n int) float64 {
	return s.FixedCostUSD + float64(n)*s.CostPerElementUSD
}

// Errors returned by driver operations.
var (
	// ErrFixed is returned when reconfiguring a passive surface after
	// fabrication.
	ErrFixed = errors.New("driver: passive surface already fabricated")
	// ErrUnsupportedProperty is returned for a control property the design
	// does not implement.
	ErrUnsupportedProperty = errors.New("driver: control property not supported by this design")
	// ErrCodebookFull is returned when the device's local slots are
	// exhausted.
	ErrCodebookFull = errors.New("driver: codebook slots exhausted")
)

// Driver is one managed surface device. It is safe for concurrent use.
type Driver struct {
	spec Spec
	surf *surface.Surface

	mu         sync.Mutex
	codebook   surface.Codebook
	active     int  // index into codebook; -1 = off
	fabricated bool // passive: configuration burned in
	updates    int  // total accepted configuration writes
	// bias is a fixed element-wise phase profile built into the panel at
	// installation (mechanical tilt / element design), immutable once set.
	// Column- and row-wise designs realize elevation/azimuth focusing this
	// way: the shared per-column state rides on top of the fabricated
	// profile (mmWall's fixed vertical beam is the canonical example).
	bias []float64
	// faults is the optional injected fault model (nil = perfect hardware).
	faults *FaultModel
}

// New wraps a placed surface with a design spec. The surface's operating
// mode must match the spec.
func New(spec Spec, surf *surface.Surface) (*Driver, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if surf == nil {
		return nil, fmt.Errorf("driver: %s needs a surface", spec.Model)
	}
	if surf.Mode&spec.OpMode == 0 {
		return nil, fmt.Errorf("driver: %s is %v but surface %q is %v",
			spec.Model, spec.OpMode, surf.Name, surf.Mode)
	}
	return &Driver{spec: spec, surf: surf, active: -1}, nil
}

// Spec returns the hardware specification.
func (d *Driver) Spec() Spec { return d.spec }

// Surface returns the underlying placed surface model.
func (d *Driver) Surface() *surface.Surface { return d.surf }

// SetFaults attaches (or, with nil, detaches) an injected fault model.
// All control operations and Project consult it from then on.
func (d *Driver) SetFaults(f *FaultModel) {
	d.mu.Lock()
	d.faults = f
	d.mu.Unlock()
}

// Faults returns the attached fault model (nil for perfect hardware).
func (d *Driver) Faults() *FaultModel {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.faults
}

// gate runs the per-operation fault check (no-op without a fault model).
func (d *Driver) gate() error {
	if f := d.Faults(); f != nil {
		return f.gate()
	}
	return nil
}

// Probe is the health heartbeat: a cheap control-plane round trip that
// fails when the device's controller is unreachable (and, like any control
// operation, may fail transiently over a flaky injected link). The hardware
// manager's health loop drives this.
func (d *Driver) Probe() error { return d.gate() }

// StuckElements returns the indices of elements frozen by actuator faults,
// ascending (nil for healthy hardware). The hardware manager exposes this
// as the device's element mask, and Project pins these elements so
// optimizers search around them.
func (d *Driver) StuckElements() []int {
	if f := d.Faults(); f != nil {
		return f.StuckElements()
	}
	return nil
}

// pinStuck overwrites stuck elements with their frozen values — the
// configuration the panel physically realizes regardless of what was
// requested.
func (d *Driver) pinStuck(cfg surface.Config) surface.Config {
	f := d.Faults()
	if f == nil {
		return cfg
	}
	mask := f.stuckMask()
	if len(mask) == 0 {
		return cfg
	}
	out := cfg.Clone()
	for i, v := range mask {
		if i >= 0 && i < len(out.Values) {
			out.Values[i] = v
		}
	}
	return out
}

// EffectiveActive returns the configuration the panel physically presents
// to the channel right now: the active entry with stuck elements pinned.
// A dead device fails safe to its neutral all-zero profile (controller
// unreachable — the panel de-biases, contributing no programmed response),
// reported with ok=true so channel predictions can still evaluate it.
func (d *Driver) EffectiveActive() (cfg surface.Config, ok bool) {
	if f := d.Faults(); f != nil && f.Dead() {
		return surface.Config{
			Property: d.spec.Control,
			Values:   make([]float64, d.surf.NumElements()),
		}, true
	}
	active, _, ok := d.Active()
	if !ok {
		return surface.Config{}, false
	}
	return d.pinStuck(active), true
}

// SetBias installs the panel's fixed element-wise phase profile (see the
// bias field). It may be set once, before the first configuration write,
// and only for phase-control designs.
func (d *Driver) SetBias(vals []float64) error {
	if d.spec.Control != surface.Phase {
		return fmt.Errorf("driver: %s controls %v; bias applies to phase designs", d.spec.Model, d.spec.Control)
	}
	if len(vals) != d.surf.NumElements() {
		return fmt.Errorf("driver: bias has %d values, surface has %d elements", len(vals), d.surf.NumElements())
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.bias != nil {
		return fmt.Errorf("driver: %s bias already fabricated", d.spec.Model)
	}
	if d.fabricated {
		return fmt.Errorf("driver: %s already configured; bias must be set at installation", d.spec.Model)
	}
	d.bias = make([]float64, len(vals))
	copy(d.bias, vals)
	return nil
}

// Project returns the nearest configuration the hardware can realize:
// granularity sharing followed by phase quantization, computed relative to
// the fabricated bias profile when one is installed. It is idempotent and
// is exposed so optimizers can run projected gradient descent against the
// true hardware constraint set.
// Stuck elements (actuator faults) are pinned last: whatever the request,
// those elements realize their frozen value, so optimizers running projected
// descent against Project automatically search around the fault.
func (d *Driver) Project(cfg surface.Config) surface.Config {
	if cfg.Property != surface.Phase {
		return d.pinStuck(cfg.ProjectGranularity(d.spec.Granularity, d.surf.Layout))
	}
	d.mu.Lock()
	bias := d.bias
	d.mu.Unlock()
	work := cfg.Clone()
	if bias != nil {
		for i := range work.Values {
			work.Values[i] -= bias[i]
		}
	}
	out := work.ProjectGranularity(d.spec.Granularity, d.surf.Layout).Quantize(d.spec.PhaseBits)
	if bias != nil {
		for i := range out.Values {
			out.Values[i] += bias[i]
		}
		out = out.Normalize()
	}
	return d.pinStuck(out)
}

// Projector adapts Project to the optimizer's constraint-hook signature for
// a single-surface phase search.
func (d *Driver) Projector() optimize.Projector {
	return func(phases [][]float64) [][]float64 {
		out := make([][]float64, len(phases))
		for i, p := range phases {
			cfg := surface.Config{Property: surface.Phase, Values: p}
			out[i] = d.Project(cfg).Values
		}
		return out
	}
}

// ShiftPhase programs a phase configuration — the unified primitive the
// paper names shift_phase(). The config is validated, projected onto the
// hardware's granularity and quantization, stored as the device's single
// live entry, and activated. For passive designs this is the one-time
// fabrication write; later calls return ErrFixed.
func (d *Driver) ShiftPhase(cfg surface.Config) error {
	if cfg.Property != surface.Phase {
		return fmt.Errorf("driver: ShiftPhase got %v config", cfg.Property)
	}
	return d.apply(cfg)
}

// SetAmplitude programs an amplitude configuration (set_amplitude()), for
// amplitude-control designs such as RFocus and LAVA.
func (d *Driver) SetAmplitude(cfg surface.Config) error {
	if cfg.Property != surface.Amplitude {
		return fmt.Errorf("driver: SetAmplitude got %v config", cfg.Property)
	}
	return d.apply(cfg)
}

// apply validates and installs a configuration as the single active entry.
func (d *Driver) apply(cfg surface.Config) error {
	if err := d.gate(); err != nil {
		return err
	}
	if cfg.Property != d.spec.Control {
		return fmt.Errorf("%w: %s controls %v, got %v",
			ErrUnsupportedProperty, d.spec.Model, d.spec.Control, cfg.Property)
	}
	if err := cfg.Validate(d.surf.Layout); err != nil {
		return err
	}
	proj := d.Project(cfg)
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.spec.Reconfigurable && d.fabricated {
		return ErrFixed
	}
	d.codebook = surface.Codebook{}
	d.codebook.Add("active", proj)
	d.active = 0
	d.fabricated = true
	d.updates++
	return nil
}

// StoreCodebook asynchronously replaces the device's locally stored
// configurations (the paper's control/data decoupling: the control plane
// pushes codebooks; the device picks entries in real time from endpoint
// feedback). Entry 0 becomes active. Passive surfaces accept exactly one
// entry, once.
func (d *Driver) StoreCodebook(labels []string, cfgs []surface.Config) error {
	if err := d.gate(); err != nil {
		return err
	}
	if len(cfgs) == 0 || len(labels) != len(cfgs) {
		return fmt.Errorf("driver: codebook needs matching labels and configs")
	}
	if d.spec.CodebookSlots > 0 && len(cfgs) > d.spec.CodebookSlots {
		return fmt.Errorf("%w: %d entries for %d slots", ErrCodebookFull, len(cfgs), d.spec.CodebookSlots)
	}
	projected := make([]surface.Config, len(cfgs))
	for i, cfg := range cfgs {
		if cfg.Property != d.spec.Control {
			return fmt.Errorf("%w: %s controls %v, got %v",
				ErrUnsupportedProperty, d.spec.Model, d.spec.Control, cfg.Property)
		}
		if err := cfg.Validate(d.surf.Layout); err != nil {
			return fmt.Errorf("driver: codebook entry %d: %w", i, err)
		}
		projected[i] = d.Project(cfg)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.spec.Reconfigurable {
		if d.fabricated {
			return ErrFixed
		}
		if len(cfgs) > 1 {
			return fmt.Errorf("%w: passive design stores a single pattern", ErrCodebookFull)
		}
	}
	d.codebook = surface.Codebook{}
	for i := range projected {
		d.codebook.Add(labels[i], projected[i])
	}
	d.active = 0
	d.fabricated = true
	d.updates++
	return nil
}

// Select activates stored codebook entry i — the device-local real-time
// reaction to endpoint feedback. Selection does not count as a control
// plane update and is rejected for passive hardware only when changing
// entries (a passive device has one entry).
func (d *Driver) Select(i int) error {
	if err := d.gate(); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, err := d.codebook.At(i); err != nil {
		return err
	}
	d.active = i
	return nil
}

// Active returns the live configuration and its codebook label. ok is
// false when nothing is programmed yet.
func (d *Driver) Active() (cfg surface.Config, label string, ok bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.active < 0 || d.active >= d.codebook.Len() {
		return surface.Config{}, "", false
	}
	c, _ := d.codebook.At(d.active)
	return c, d.codebook.Labels[d.active], true
}

// CodebookLen returns the number of stored configurations.
func (d *Driver) CodebookLen() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.codebook.Len()
}

// Updates returns how many control-plane writes the device has accepted.
func (d *Driver) Updates() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.updates
}

// CostUSD returns this panel's hardware cost under the design's cost model.
func (d *Driver) CostUSD() float64 { return d.spec.CostUSD(d.surf.NumElements()) }
