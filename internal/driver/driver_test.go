package driver

import (
	"errors"
	"math"
	"testing"

	"surfos/internal/geom"
	"surfos/internal/surface"
)

func testSurface(t *testing.T, mode surface.OpMode, rows, cols int) *surface.Surface {
	t.Helper()
	panel := geom.RectXY(geom.V(0, 0, 1), geom.V(-1, 0, 0), geom.V(0, 0, 1), 0.5, 0.5)
	s, err := surface.New("panel", panel,
		surface.Layout{Rows: rows, Cols: cols, PitchU: 0.00625, PitchV: 0.00625}, mode, nil)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mustSpec(t *testing.T, model string) Spec {
	t.Helper()
	s, err := Lookup(model)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCatalogCoversTable1(t *testing.T) {
	cat := Catalog()
	if len(cat) != 13 {
		t.Fatalf("catalog has %d designs, want the 13 of Table 1", len(cat))
	}
	for _, s := range cat {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Model, err)
		}
		if s.Response == nil {
			t.Errorf("%s: missing wideband response", s.Model)
		}
	}
	// Sorted by band.
	for i := 1; i < len(cat); i++ {
		if cat[i].FreqLowHz < cat[i-1].FreqLowHz {
			t.Errorf("catalog not sorted: %s before %s", cat[i-1].Model, cat[i].Model)
		}
	}
}

func TestCatalogKeyProperties(t *testing.T) {
	checks := []struct {
		model  string
		reconf bool
		mode   surface.OpMode
		gran   surface.Granularity
		ctrl   surface.ControlProperty
	}{
		{ModelLAIA, true, surface.Transmissive, surface.ElementWise, surface.Phase},
		{ModelRFocus, true, surface.Transflective, surface.ElementWise, surface.Amplitude},
		{ModelLLAMA, true, surface.Transflective, surface.ElementWise, surface.Polarization},
		{ModelScrolls, true, surface.Reflective, surface.RowWise, surface.Frequency},
		{ModelMMWall, true, surface.Transflective, surface.ColumnWise, surface.Phase},
		{ModelNRSurface, true, surface.Reflective, surface.ColumnWise, surface.Phase},
		{ModelDiffract, false, surface.Transmissive, surface.FixedPattern, surface.Diffraction},
		{ModelMilliMirror, false, surface.Reflective, surface.FixedPattern, surface.Phase},
		{ModelAutoMS, false, surface.Reflective, surface.FixedPattern, surface.Phase},
	}
	for _, c := range checks {
		s := mustSpec(t, c.model)
		if s.Reconfigurable != c.reconf || s.OpMode != c.mode || s.Granularity != c.gran || s.Control != c.ctrl {
			t.Errorf("%s spec mismatch: %+v", c.model, s)
		}
	}
	// Cost ordering: programmable mmWave >> passive mmWave per element
	// (paper: >$2/element vs $1 for 60k elements).
	if mustSpec(t, ModelNRSurface).CostPerElementUSD <= 2 {
		t.Error("NR-Surface should cost > $2/element")
	}
	if mustSpec(t, ModelAutoMS).CostUSD(60000) > 3 {
		t.Errorf("AutoMS 60k elements cost %v, want ≈$1-2", mustSpec(t, ModelAutoMS).CostUSD(60000))
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("nope"); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestRegisterValidation(t *testing.T) {
	bad := Spec{Model: ""}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("invalid spec registration did not panic")
			}
		}()
		Register(bad)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("duplicate registration did not panic")
			}
		}()
		Register(mustSpec(t, ModelLAIA))
	}()
}

func TestSpecValidate(t *testing.T) {
	ok := mustSpec(t, ModelMMWall)
	cases := []func(*Spec){
		func(s *Spec) { s.FreqLowHz = -1 },
		func(s *Spec) { s.FreqHighHz = s.FreqLowHz / 2 },
		func(s *Spec) { s.PhaseBits = -1 },
		func(s *Spec) { s.ElementEfficiency = 2 },
		func(s *Spec) { s.Reconfigurable = false }, // granularity stays column-wise
		func(s *Spec) { s.CostPerElementUSD = -5 },
	}
	for i, mutate := range cases {
		s := ok
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: invalid spec accepted", i)
		}
	}
}

func TestSupportsFreqAndCost(t *testing.T) {
	s := mustSpec(t, ModelScrolls)
	if !s.SupportsFreq(2.4e9) || !s.SupportsFreq(0.9e9) || !s.SupportsFreq(6.0e9) {
		t.Error("Scrolls should span 0.9-6 GHz")
	}
	if s.SupportsFreq(24e9) {
		t.Error("Scrolls should not support 24 GHz")
	}
	if got := s.CostUSD(100); math.Abs(got-(s.FixedCostUSD+100*s.CostPerElementUSD)) > 1e-9 {
		t.Errorf("cost = %v", got)
	}
}

func TestNewDriverModeMismatch(t *testing.T) {
	spec := mustSpec(t, ModelNRSurface) // reflective
	surfT := testSurface(t, surface.Transmissive, 4, 4)
	if _, err := New(spec, surfT); err == nil {
		t.Error("mode mismatch accepted")
	}
	// Transflective designs accept either placement.
	wall := mustSpec(t, ModelMMWall)
	if _, err := New(wall, surfT); err != nil {
		t.Errorf("transflective design rejected transmissive surface: %v", err)
	}
	if _, err := New(spec, nil); err == nil {
		t.Error("nil surface accepted")
	}
}

func TestShiftPhaseQuantizesAndProjects(t *testing.T) {
	spec := mustSpec(t, ModelNRSurface) // column-wise, 2-bit
	s := testSurface(t, surface.Reflective, 2, 3)
	d, err := New(spec, s)
	if err != nil {
		t.Fatal(err)
	}
	cfg := surface.Config{Property: surface.Phase, Values: []float64{
		0.1, 1.7, 3.2,
		0.2, 1.5, 3.1,
	}}
	if err := d.ShiftPhase(cfg); err != nil {
		t.Fatal(err)
	}
	act, label, ok := d.Active()
	if !ok || label != "active" {
		t.Fatal("no active config after ShiftPhase")
	}
	step := math.Pi / 2 // 2-bit states
	for col := 0; col < 3; col++ {
		v0, v1 := act.Values[col], act.Values[3+col]
		if v0 != v1 {
			t.Errorf("column %d not shared: %v vs %v", col, v0, v1)
		}
		snapped := math.Round(v0/step) * step
		if math.Abs(v0-snapped) > 1e-9 && math.Abs(v0-snapped-2*math.Pi) > 1e-9 {
			t.Errorf("column %d value %v not on 2-bit grid", col, v0)
		}
	}
	if d.Updates() != 1 {
		t.Errorf("updates = %d", d.Updates())
	}
}

func TestShiftPhaseWrongProperty(t *testing.T) {
	d, _ := New(mustSpec(t, ModelNRSurface), testSurface(t, surface.Reflective, 2, 2))
	if err := d.ShiftPhase(surface.Config{Property: surface.Amplitude, Values: make([]float64, 4)}); err == nil {
		t.Error("amplitude config accepted by ShiftPhase")
	}
	// RFocus controls amplitude: phase rejected with ErrUnsupportedProperty.
	rf, _ := New(mustSpec(t, ModelRFocus), testSurface(t, surface.Reflective, 2, 2))
	err := rf.ShiftPhase(surface.Config{Property: surface.Phase, Values: make([]float64, 4)})
	if !errors.Is(err, ErrUnsupportedProperty) {
		t.Errorf("got %v, want ErrUnsupportedProperty", err)
	}
}

func TestSetAmplitude(t *testing.T) {
	rf, _ := New(mustSpec(t, ModelRFocus), testSurface(t, surface.Reflective, 2, 2))
	if err := rf.SetAmplitude(surface.Config{Property: surface.Amplitude, Values: []float64{0, 1, 0.5, 1}}); err != nil {
		t.Fatal(err)
	}
	if err := rf.SetAmplitude(surface.Config{Property: surface.Phase, Values: make([]float64, 4)}); err == nil {
		t.Error("phase config accepted by SetAmplitude")
	}
}

func TestPassiveOneTimeProgrammable(t *testing.T) {
	spec := mustSpec(t, ModelAutoMS)
	s := testSurface(t, surface.Reflective, 3, 3)
	d, err := New(spec, s)
	if err != nil {
		t.Fatal(err)
	}
	cfg := surface.Config{Property: surface.Phase, Values: make([]float64, 9)}
	if err := d.ShiftPhase(cfg); err != nil {
		t.Fatalf("fabrication write rejected: %v", err)
	}
	if err := d.ShiftPhase(cfg); !errors.Is(err, ErrFixed) {
		t.Errorf("second write: got %v, want ErrFixed", err)
	}
	if err := d.StoreCodebook([]string{"x"}, []surface.Config{cfg}); !errors.Is(err, ErrFixed) {
		t.Errorf("post-fabrication codebook: got %v, want ErrFixed", err)
	}
}

func TestPassiveSingleSlot(t *testing.T) {
	d, _ := New(mustSpec(t, ModelMilliMirror), testSurface(t, surface.Reflective, 2, 2))
	cfgs := []surface.Config{
		{Property: surface.Phase, Values: make([]float64, 4)},
		{Property: surface.Phase, Values: make([]float64, 4)},
	}
	if err := d.StoreCodebook([]string{"a", "b"}, cfgs); !errors.Is(err, ErrCodebookFull) {
		t.Errorf("passive multi-entry codebook: got %v, want ErrCodebookFull", err)
	}
}

func TestCodebookStoreAndSelect(t *testing.T) {
	d, _ := New(mustSpec(t, ModelNRSurface), testSurface(t, surface.Reflective, 2, 2))
	mk := func(v float64) surface.Config {
		return surface.Config{Property: surface.Phase, Values: []float64{v, v, v, v}}
	}
	if err := d.StoreCodebook([]string{"beam0", "beam1", "beam2"},
		[]surface.Config{mk(0), mk(math.Pi / 2), mk(math.Pi)}); err != nil {
		t.Fatal(err)
	}
	if d.CodebookLen() != 3 {
		t.Fatalf("codebook len = %d", d.CodebookLen())
	}
	_, label, _ := d.Active()
	if label != "beam0" {
		t.Errorf("initial active = %q, want beam0", label)
	}
	if err := d.Select(2); err != nil {
		t.Fatal(err)
	}
	cfg, label, _ := d.Active()
	if label != "beam2" || math.Abs(cfg.Values[0]-math.Pi) > 1e-9 {
		t.Errorf("after select: %q %v", label, cfg.Values)
	}
	if err := d.Select(9); err == nil {
		t.Error("out-of-range select accepted")
	}
	// Mismatched labels.
	if err := d.StoreCodebook([]string{"only-one"}, []surface.Config{mk(0), mk(1)}); err == nil {
		t.Error("label/config mismatch accepted")
	}
}

func TestProjectorIdempotent(t *testing.T) {
	d, _ := New(mustSpec(t, ModelMMWall), testSurface(t, surface.Transmissive, 3, 4))
	proj := d.Projector()
	in := [][]float64{{0.3, 1.1, 2.2, 3.3, 4.4, 5.5, 0.1, 0.9, 1.8, 2.7, 3.6, 4.5}}
	once := proj(in)
	twice := proj(once)
	for k := range once[0] {
		if math.Abs(once[0][k]-twice[0][k]) > 1e-9 {
			t.Fatalf("projector not idempotent at %d", k)
		}
	}
}

func TestActiveBeforeProgramming(t *testing.T) {
	d, _ := New(mustSpec(t, ModelNRSurface), testSurface(t, surface.Reflective, 2, 2))
	if _, _, ok := d.Active(); ok {
		t.Error("active config before any write")
	}
}

func TestWidebandResponseBlocksCrossBand(t *testing.T) {
	// The paper's §2.1 warning: a 2.4 GHz surface interferes with other
	// bands. Its panel response must show significant interaction at
	// 2.4 GHz and near-transparency far below the design band.
	s := mustSpec(t, ModelLAIA)
	if s.Response.Transmission(2.4e9) > 0.5 {
		t.Error("in-band panel should not be transparent")
	}
	if s.Response.Transmission(0.5e9) < 0.9 {
		t.Error("far-below-band panel should be nearly transparent")
	}
}

func TestDriverCost(t *testing.T) {
	s := testSurface(t, surface.Reflective, 10, 10)
	d, _ := New(mustSpec(t, ModelNRSurface), s)
	want := mustSpec(t, ModelNRSurface).CostUSD(100)
	if math.Abs(d.CostUSD()-want) > 1e-9 {
		t.Errorf("cost = %v, want %v", d.CostUSD(), want)
	}
}

func TestBiasProjection(t *testing.T) {
	d, _ := New(mustSpec(t, ModelNRSurface), testSurface(t, surface.Reflective, 2, 2))
	// Bias validation.
	if err := d.SetBias([]float64{1}); err == nil {
		t.Error("wrong-size bias accepted")
	}
	rf, _ := New(mustSpec(t, ModelRFocus), testSurface(t, surface.Reflective, 2, 2))
	if err := rf.SetBias(make([]float64, 4)); err == nil {
		t.Error("bias on amplitude design accepted")
	}
	// A vertical ramp bias: rows differ, columns identical.
	bias := []float64{0.3, 0.3, 1.7, 1.7}
	if err := d.SetBias(bias); err != nil {
		t.Fatal(err)
	}
	if err := d.SetBias(bias); err == nil {
		t.Error("double bias accepted")
	}
	// Projecting a config equal to the bias returns the bias itself
	// (the controllable part is zero → quantizes to zero).
	got := d.Project(surface.Config{Property: surface.Phase, Values: bias})
	for i := range bias {
		if math.Abs(got.Values[i]-bias[i]) > 1e-9 {
			t.Errorf("bias-aligned projection[%d] = %v, want %v", i, got.Values[i], bias[i])
		}
	}
	// Idempotence with bias.
	again := d.Project(got)
	for i := range again.Values {
		if math.Abs(again.Values[i]-got.Values[i]) > 1e-9 {
			t.Errorf("bias projection not idempotent at %d", i)
		}
	}
	// The realized config differs per row (bias preserved) even though the
	// design is column-wise: the row structure comes from fabrication.
	req := surface.Config{Property: surface.Phase, Values: []float64{0.3 + 1.0, 0.3 + 1.0, 1.7 + 1.0, 1.7 + 1.0}}
	proj := d.Project(req)
	if math.Abs(proj.Values[0]-proj.Values[2]) < 1e-9 {
		t.Error("bias rows collapsed by column projection")
	}
}

func TestBiasAfterFabricationRejected(t *testing.T) {
	d, _ := New(mustSpec(t, ModelNRSurface), testSurface(t, surface.Reflective, 2, 2))
	if err := d.ShiftPhase(surface.Config{Property: surface.Phase, Values: make([]float64, 4)}); err != nil {
		t.Fatal(err)
	}
	if err := d.SetBias(make([]float64, 4)); err == nil {
		t.Error("bias accepted after configuration")
	}
}
