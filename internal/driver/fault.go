package driver

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// ErrDeviceDead is returned by every control operation against a device
// whose controller is unreachable (fault-injected or observed). The paper's
// HyperSurface lineage treats tile-controller death as the normal case, not
// the exception; upper layers catch this sentinel, mark the device dead in
// the hardware manager, and re-plan around it.
var ErrDeviceDead = errors.New("driver: device dead")

// ErrInjectedFailure is the transient fault-injection failure: the control
// write was rejected as a (simulated) flaky control link would reject it.
// Unlike ErrDeviceDead it does not mean the device is gone — retrying may
// succeed, which is exactly what the southbound retry path exercises.
var ErrInjectedFailure = errors.New("driver: injected control failure")

// FaultModel injects hardware faults into one driver, deterministically
// from a seed: elements stuck at a fixed state (actuator failure), the
// whole device dead (controller unreachable), and probabilistic or slow
// Apply/Select control writes (flaky control link). The zero configuration
// injects nothing, so attaching a FaultModel is free until faults are
// scripted. Safe for concurrent use.
type FaultModel struct {
	mu sync.Mutex
	// rng drives probabilistic failures; seeded so test runs replay
	// identically.
	rng *rand.Rand
	// dead marks the controller unreachable: every operation fails with
	// ErrDeviceDead until revived.
	dead bool
	// stuck maps element index → the value the element is frozen at.
	stuck map[int]float64
	// failProb is the probability an Apply/Select call fails with
	// ErrInjectedFailure.
	failProb float64
	// latency is added to every control operation before it resolves.
	latency time.Duration
	// failures counts injected transient failures (for assertions).
	failures int
}

// NewFaultModel creates a fault model whose probabilistic failures replay
// deterministically from seed.
func NewFaultModel(seed int64) *FaultModel {
	return &FaultModel{rng: rand.New(rand.NewSource(seed)), stuck: make(map[int]float64)}
}

// SetDead kills or revives the device's controller.
func (f *FaultModel) SetDead(dead bool) {
	f.mu.Lock()
	f.dead = dead
	f.mu.Unlock()
}

// Dead reports whether the controller is currently unreachable.
func (f *FaultModel) Dead() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dead
}

// StickElement freezes element idx at value (an actuator stuck-at fault).
func (f *FaultModel) StickElement(idx int, value float64) {
	f.mu.Lock()
	f.stuck[idx] = value
	f.mu.Unlock()
}

// RepairElement clears a stuck-at fault.
func (f *FaultModel) RepairElement(idx int) {
	f.mu.Lock()
	delete(f.stuck, idx)
	f.mu.Unlock()
}

// StuckElements returns the stuck element indices in ascending order.
func (f *FaultModel) StuckElements() []int {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]int, 0, len(f.stuck))
	for i := range f.stuck {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

// stuckMask copies the stuck map (nil when no elements are stuck).
func (f *FaultModel) stuckMask() map[int]float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.stuck) == 0 {
		return nil
	}
	out := make(map[int]float64, len(f.stuck))
	for i, v := range f.stuck {
		out[i] = v
	}
	return out
}

// SetFailProb makes each Apply/Select call fail with probability p.
func (f *FaultModel) SetFailProb(p float64) {
	f.mu.Lock()
	f.failProb = p
	f.mu.Unlock()
}

// SetLatency adds a fixed delay to every control operation.
func (f *FaultModel) SetLatency(d time.Duration) {
	f.mu.Lock()
	f.latency = d
	f.mu.Unlock()
}

// InjectedFailures returns how many transient failures have fired.
func (f *FaultModel) InjectedFailures() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.failures
}

// gate is the per-operation fault check: injected latency first, then
// death, then the transient failure dice. Called by the driver at the top
// of every control operation.
func (f *FaultModel) gate() error {
	f.mu.Lock()
	latency := f.latency
	if f.dead {
		f.mu.Unlock()
		if latency > 0 {
			time.Sleep(latency)
		}
		return ErrDeviceDead
	}
	var err error
	if f.failProb > 0 && f.rng.Float64() < f.failProb {
		f.failures++
		err = fmt.Errorf("%w (p=%g)", ErrInjectedFailure, f.failProb)
	}
	f.mu.Unlock()
	if latency > 0 {
		time.Sleep(latency)
	}
	return err
}
