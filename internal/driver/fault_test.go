package driver

import (
	"errors"
	"math"
	"os"
	"strconv"
	"testing"

	"surfos/internal/surface"
)

// faultSeed returns the suite's fault-injection seed: SURFOS_FAULT_SEED
// when set (`make test-faults` replays the suite at several), else def.
// Every assertion in this file is seed-robust by construction.
func faultSeed(def int64) int64 {
	if s := os.Getenv("SURFOS_FAULT_SEED"); s != "" {
		if n, err := strconv.ParseInt(s, 10, 64); err == nil {
			return n
		}
	}
	return def
}

func faultyDriver(t *testing.T, seed int64) (*Driver, *FaultModel) {
	t.Helper()
	d, err := New(mustSpec(t, ModelLAIA), testSurface(t, surface.Transmissive, 4, 4))
	if err != nil {
		t.Fatal(err)
	}
	fm := NewFaultModel(seed)
	d.SetFaults(fm)
	return d, fm
}

func phaseConfig(n int, v float64) surface.Config {
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = v
	}
	return surface.Config{Property: surface.Phase, Values: vals}
}

func TestFaultStuckElementPinnedByProject(t *testing.T) {
	d, fm := faultyDriver(t, faultSeed(1))
	fm.StickElement(3, 1.25)
	fm.StickElement(7, 0)

	got := d.Project(phaseConfig(16, math.Pi/2))
	if got.Values[3] != 1.25 || got.Values[7] != 0 {
		t.Fatalf("stuck elements not pinned: got [3]=%g [7]=%g", got.Values[3], got.Values[7])
	}
	for i, v := range got.Values {
		if i != 3 && i != 7 && math.Abs(v-math.Pi/2) > 1e-9 {
			t.Fatalf("healthy element %d disturbed: %g", i, v)
		}
	}

	// The optimizer-facing projector pins too, so projected descent never
	// assigns a stuck element a non-stuck state.
	proj := d.Projector()([][]float64{phaseConfig(16, 2.0).Values})
	if proj[0][3] != 1.25 || proj[0][7] != 0 {
		t.Fatalf("Projector did not pin stuck elements: %v", proj[0])
	}

	// Pinning is idempotent through a second projection.
	again := d.Project(got)
	if again.Values[3] != 1.25 || again.Values[7] != 0 {
		t.Fatal("Project not idempotent over stuck elements")
	}

	// The applied (active) configuration realizes the pinned values.
	if err := d.ShiftPhase(phaseConfig(16, math.Pi/2)); err != nil {
		t.Fatal(err)
	}
	eff, ok := d.EffectiveActive()
	if !ok || eff.Values[3] != 1.25 {
		t.Fatalf("EffectiveActive ok=%v values=%v", ok, eff.Values)
	}

	fm.RepairElement(3)
	if got := d.Project(phaseConfig(16, math.Pi/2)); math.Abs(got.Values[3]-math.Pi/2) > 1e-9 {
		t.Fatalf("repaired element still pinned: %g", got.Values[3])
	}
	if se := d.StuckElements(); len(se) != 1 || se[0] != 7 {
		t.Fatalf("StuckElements = %v, want [7]", se)
	}
}

func TestFaultDeadDevice(t *testing.T) {
	d, fm := faultyDriver(t, faultSeed(1))
	if err := d.ShiftPhase(phaseConfig(16, math.Pi/2)); err != nil {
		t.Fatal(err)
	}
	fm.SetDead(true)

	if err := d.ShiftPhase(phaseConfig(16, 1)); !errors.Is(err, ErrDeviceDead) {
		t.Fatalf("ShiftPhase on dead device: %v", err)
	}
	if err := d.StoreCodebook([]string{"a"}, []surface.Config{phaseConfig(16, 1)}); !errors.Is(err, ErrDeviceDead) {
		t.Fatalf("StoreCodebook on dead device: %v", err)
	}
	if err := d.Select(0); !errors.Is(err, ErrDeviceDead) {
		t.Fatalf("Select on dead device: %v", err)
	}
	if err := d.Probe(); !errors.Is(err, ErrDeviceDead) {
		t.Fatalf("Probe on dead device: %v", err)
	}

	// Dead panel fails safe: neutral all-zero profile, still evaluable.
	eff, ok := d.EffectiveActive()
	if !ok {
		t.Fatal("EffectiveActive should report the fail-safe profile")
	}
	for i, v := range eff.Values {
		if v != 0 {
			t.Fatalf("dead panel element %d not neutral: %g", i, v)
		}
	}

	// Revival restores the last programmed configuration.
	fm.SetDead(false)
	eff, ok = d.EffectiveActive()
	if !ok || math.Abs(eff.Values[0]-math.Pi/2) > 1e-9 {
		t.Fatalf("after revival: ok=%v values[0]=%v", ok, eff.Values[0])
	}
	if err := d.Probe(); err != nil {
		t.Fatalf("Probe after revival: %v", err)
	}
}

func TestFaultTransientFailuresDeterministic(t *testing.T) {
	run := func(seed int64) []bool {
		d, fm := faultyDriver(t, seed)
		fm.SetFailProb(0.5)
		pattern := make([]bool, 40)
		for i := range pattern {
			err := d.ShiftPhase(phaseConfig(16, math.Pi/2))
			if err != nil && !errors.Is(err, ErrInjectedFailure) {
				t.Fatalf("call %d: unexpected error %v", i, err)
			}
			pattern[i] = err != nil
		}
		if fails := fm.InjectedFailures(); fails == 0 || fails == len(pattern) {
			t.Fatalf("fail count %d not in (0, %d): probability gate broken", fails, len(pattern))
		}
		return pattern
	}
	a, b := run(faultSeed(7)), run(faultSeed(7))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at call %d", i)
		}
	}
}

func TestFaultUnconfiguredEffectiveActive(t *testing.T) {
	d, _ := faultyDriver(t, faultSeed(1))
	if _, ok := d.EffectiveActive(); ok {
		t.Fatal("unconfigured live device should have no effective config")
	}
	// And a driver with no fault model behaves identically to before.
	plain, err := New(mustSpec(t, ModelLAIA), testSurface(t, surface.Transmissive, 4, 4))
	if err != nil {
		t.Fatal(err)
	}
	if err := plain.ShiftPhase(phaseConfig(16, math.Pi/2)); err != nil {
		t.Fatal(err)
	}
	if eff, ok := plain.EffectiveActive(); !ok || math.Abs(eff.Values[2]-math.Pi/2) > 1e-9 {
		t.Fatalf("plain driver EffectiveActive: ok=%v %v", ok, eff.Values)
	}
	if plain.StuckElements() != nil || plain.Probe() != nil {
		t.Fatal("plain driver should report no faults")
	}
}
