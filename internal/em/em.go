// Package em provides the electromagnetic primitives the SurfOS channel
// simulator is built from: wavelength and wavenumber math, free-space path
// loss, dB conversions, complex phasor propagation factors, antenna element
// patterns, and frequency-dependent building materials.
//
// All channel quantities in SurfOS are complex baseband gains ("phasors"):
// a channel h multiplies a transmitted unit-power tone so the received
// power is |h|². Powers are tracked in dBm, gains in dB.
package em

import (
	"fmt"
	"math"
	"math/cmplx"
)

// C is the speed of light in vacuum, m/s.
const C = 299_792_458.0

// Common carrier frequencies (Hz) used across the paper's experiments.
const (
	Band900MHz = 900e6  // Scrolls lower bound
	Band2G4    = 2.4e9  // Wi-Fi / LAIA / RFocus / LLAMA / LAVA
	Band5G     = 5.0e9  // ScatterMIMO / RFlens / Diffract
	Band24G    = 24.0e9 // mmWall / NR-Surface
	Band28G    = 28.0e9 // 5G mmWave n257
	Band60G    = 60.0e9 // MilliMirror / AutoMS / 802.11ad
)

// Wavelength returns λ = c/f in meters for carrier frequency f in Hz.
func Wavelength(freqHz float64) float64 { return C / freqHz }

// Wavenumber returns k = 2π/λ in rad/m.
func Wavenumber(freqHz float64) float64 { return 2 * math.Pi / Wavelength(freqHz) }

// DB converts a linear power ratio to decibels. Zero or negative ratios map
// to -Inf, matching the physics (no power).
func DB(ratio float64) float64 {
	if ratio <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(ratio)
}

// FromDB converts decibels to a linear power ratio.
func FromDB(db float64) float64 { return math.Pow(10, db/10) }

// DBm converts power in watts to dBm.
func DBm(watts float64) float64 { return DB(watts) + 30 }

// FromDBm converts dBm to watts.
func FromDBm(dbm float64) float64 { return FromDB(dbm - 30) }

// FSPLGain returns the free-space *amplitude* gain at distance d meters and
// wavelength λ: λ/(4πd). The corresponding power gain is its square, which
// matches the Friis equation with unit antenna gains. d must be > 0.
func FSPLGain(d, lambda float64) float64 {
	return lambda / (4 * math.Pi * d)
}

// FSPLdB returns the free-space path loss in positive dB at distance d and
// frequency f (the familiar 20log10(4πd/λ) form).
func FSPLdB(d, freqHz float64) float64 {
	return -DB(math.Pow(FSPLGain(d, Wavelength(freqHz)), 2))
}

// PropagationPhasor returns the complex amplitude factor for a free-space
// leg of length d at wavelength λ: (λ/(4πd))·e^{-jkd}. This is the atomic
// building block of every simulated path.
func PropagationPhasor(d, lambda float64) complex128 {
	k := 2 * math.Pi / lambda
	return cmplx.Rect(FSPLGain(d, lambda), -k*d)
}

// PhaseShift returns the unit phasor e^{jφ}.
func PhaseShift(phi float64) complex128 { return cmplx.Rect(1, phi) }

// ThermalNoiseDBm returns thermal noise power kTB in dBm for bandwidth B Hz
// at T=290 K: -174 dBm/Hz + 10log10(B).
func ThermalNoiseDBm(bandwidthHz float64) float64 {
	return -174 + DB(bandwidthHz)
}

// SNRdB computes the signal-to-noise ratio in dB from a complex channel
// gain, transmit power, noise figure, and bandwidth.
func SNRdB(h complex128, txPowerDBm, noiseFigureDB, bandwidthHz float64) float64 {
	p := cmplx.Abs(h)
	rx := txPowerDBm + DB(p*p)
	return rx - ThermalNoiseDBm(bandwidthHz) - noiseFigureDB
}

// ShannonCapacity returns the Shannon capacity in bits/s for an SNR in dB
// over bandwidth B Hz: B·log2(1+snr).
func ShannonCapacity(snrDB, bandwidthHz float64) float64 {
	return bandwidthHz * math.Log2(1+FromDB(snrDB))
}

// Pattern models a far-field amplitude pattern as a function of the angle θ
// from boresight, in [0, π]. Patterns are amplitude (not power) factors.
type Pattern interface {
	// AmplitudeAt returns the pattern amplitude at angle theta radians
	// from boresight. Must be in [0, 1] for passive apertures.
	AmplitudeAt(theta float64) float64
}

// Isotropic radiates equally in all directions.
type Isotropic struct{}

// AmplitudeAt implements Pattern.
func (Isotropic) AmplitudeAt(float64) float64 { return 1 }

// CosinePattern is the standard cos^q(θ) element pattern used for
// metasurface meta-atoms and patch antennas; q controls directivity
// (q=1 ≈ ideal aperture element). Behind the element (θ ≥ π/2) the
// amplitude is zero.
type CosinePattern struct {
	Q float64 // exponent; typical 0.5–2 for surface elements
}

// AmplitudeAt implements Pattern.
func (p CosinePattern) AmplitudeAt(theta float64) float64 {
	if theta >= math.Pi/2 {
		return 0
	}
	c := math.Cos(theta)
	if p.Q == 1 {
		return c
	}
	return math.Pow(c, p.Q)
}

// Validate checks that a pattern stays within the passive-aperture bound
// on a sample grid; used by driver self-checks.
func Validate(p Pattern) error {
	for i := 0; i <= 180; i++ {
		th := float64(i) * math.Pi / 180
		a := p.AmplitudeAt(th)
		if math.IsNaN(a) || a < 0 || a > 1+1e-9 {
			return fmt.Errorf("em: pattern amplitude %v at θ=%d° outside [0,1]", a, i)
		}
	}
	return nil
}
