package em

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"
)

func TestWavelength(t *testing.T) {
	// 60 GHz → 5 mm (approximately).
	if got := Wavelength(Band60G); math.Abs(got-0.005) > 1e-4 {
		t.Errorf("λ(60 GHz) = %v, want ≈0.005", got)
	}
	// 2.4 GHz → 12.5 cm.
	if got := Wavelength(Band2G4); math.Abs(got-0.125) > 1e-3 {
		t.Errorf("λ(2.4 GHz) = %v, want ≈0.125", got)
	}
}

func TestDBRoundTrip(t *testing.T) {
	f := func(db float64) bool {
		db = math.Mod(db, 100)
		back := DB(FromDB(db))
		return math.Abs(back-db) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if !math.IsInf(DB(0), -1) {
		t.Error("DB(0) should be -Inf")
	}
	if !math.IsInf(DB(-1), -1) {
		t.Error("DB(-1) should be -Inf")
	}
}

func TestDBmWatts(t *testing.T) {
	if got := DBm(1); math.Abs(got-30) > 1e-12 {
		t.Errorf("1 W = %v dBm, want 30", got)
	}
	if got := DBm(0.001); math.Abs(got-0) > 1e-12 {
		t.Errorf("1 mW = %v dBm, want 0", got)
	}
	if got := FromDBm(20); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("20 dBm = %v W, want 0.1", got)
	}
}

func TestFSPLKnownValues(t *testing.T) {
	// Classic check: FSPL at 1 m, 2.4 GHz ≈ 40.05 dB.
	if got := FSPLdB(1, Band2G4); math.Abs(got-40.05) > 0.1 {
		t.Errorf("FSPL(1m, 2.4GHz) = %v dB, want ≈40.05", got)
	}
	// FSPL at 10 m, 60 GHz ≈ 88.0 dB.
	if got := FSPLdB(10, Band60G); math.Abs(got-88.0) > 0.1 {
		t.Errorf("FSPL(10m, 60GHz) = %v dB, want ≈88.0", got)
	}
	// Doubling distance adds 6.02 dB regardless of frequency.
	d1 := FSPLdB(3, Band24G)
	d2 := FSPLdB(6, Band24G)
	if math.Abs(d2-d1-6.0206) > 1e-3 {
		t.Errorf("doubling distance added %v dB, want 6.02", d2-d1)
	}
}

func TestPropagationPhasor(t *testing.T) {
	lambda := Wavelength(Band2G4)
	h := PropagationPhasor(5, lambda)
	if got := cmplx.Abs(h); math.Abs(got-FSPLGain(5, lambda)) > 1e-15 {
		t.Errorf("|phasor| = %v", got)
	}
	// A whole number of wavelengths gives phase ≈ 0 (mod 2π).
	h2 := PropagationPhasor(100*lambda, lambda)
	ph := cmplx.Phase(h2)
	if math.Abs(math.Mod(ph+3*math.Pi, 2*math.Pi)-math.Pi) > 1e-6 {
		t.Errorf("phase at integer wavelengths = %v, want ≈0", ph)
	}
	// Half wavelength flips the sign (phase π).
	h3 := PropagationPhasor(100.5*lambda, lambda)
	if math.Cos(cmplx.Phase(h3)) > -0.999 {
		t.Errorf("phase at half-integer wavelengths = %v, want ≈π", cmplx.Phase(h3))
	}
}

func TestPhaseShiftUnit(t *testing.T) {
	f := func(phi float64) bool {
		phi = math.Mod(phi, 10)
		return math.Abs(cmplx.Abs(PhaseShift(phi))-1) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestThermalNoise(t *testing.T) {
	// 100 MHz bandwidth: -174 + 80 = -94 dBm.
	if got := ThermalNoiseDBm(100e6); math.Abs(got+94) > 1e-9 {
		t.Errorf("noise(100MHz) = %v, want -94", got)
	}
}

func TestSNRAndCapacity(t *testing.T) {
	// Direct construction: gain of -80 dB, 10 dBm tx, 0 dB NF, 100 MHz BW →
	// rx = -70 dBm, noise = -94 dBm → SNR = 24 dB.
	h := complex(1e-4, 0) // |h|² = 1e-8 → -80 dB
	snr := SNRdB(h, 10, 0, 100e6)
	if math.Abs(snr-24) > 1e-9 {
		t.Errorf("SNR = %v, want 24", snr)
	}
	// Capacity at 0 dB SNR over 1 Hz = 1 bit/s.
	if got := ShannonCapacity(0, 1); math.Abs(got-1) > 1e-12 {
		t.Errorf("capacity = %v, want 1", got)
	}
	// Capacity is monotone in SNR.
	if ShannonCapacity(10, 1e6) <= ShannonCapacity(5, 1e6) {
		t.Error("capacity not monotone in SNR")
	}
}

func TestPatterns(t *testing.T) {
	iso := Isotropic{}
	if iso.AmplitudeAt(1.0) != 1 {
		t.Error("isotropic should be 1 everywhere")
	}
	cp := CosinePattern{Q: 1}
	if got := cp.AmplitudeAt(0); got != 1 {
		t.Errorf("cos pattern at boresight = %v, want 1", got)
	}
	if got := cp.AmplitudeAt(math.Pi / 3); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("cos(60°) = %v, want 0.5", got)
	}
	if got := cp.AmplitudeAt(math.Pi / 2); got != 0 {
		t.Errorf("behind element = %v, want 0", got)
	}
	if got := cp.AmplitudeAt(3); got != 0 {
		t.Errorf("backside = %v, want 0", got)
	}
	if err := Validate(cp); err != nil {
		t.Errorf("cosine pattern failed validation: %v", err)
	}
	if err := Validate(CosinePattern{Q: 0.5}); err != nil {
		t.Errorf("q=0.5 pattern failed validation: %v", err)
	}
	if err := Validate(Isotropic{}); err != nil {
		t.Errorf("isotropic failed validation: %v", err)
	}
}

func TestMaterialInterpolation(t *testing.T) {
	// Drywall transmission decreases with frequency.
	t24 := Drywall.Transmission(2.4e9)
	t60 := Drywall.Transmission(60e9)
	if t24 <= t60 {
		t.Errorf("drywall transmission should fall with frequency: %v vs %v", t24, t60)
	}
	// Interpolation between anchors stays between anchor values.
	mid := Drywall.Transmission(12e9)
	if mid > Drywall.Transmission(5e9) || mid < Drywall.Transmission(24e9) {
		t.Errorf("interpolated value %v out of anchor range", mid)
	}
	// Clamping outside range.
	if got := Drywall.Transmission(1e9); got != Drywall.Transmission(2.4e9) {
		t.Errorf("below-range should clamp: %v", got)
	}
	if got := Drywall.Transmission(100e9); got != Drywall.Transmission(60e9) {
		t.Errorf("above-range should clamp: %v", got)
	}
}

func TestMaterialEnergyConservation(t *testing.T) {
	mats := []*Material{Drywall, Concrete, Glass, Metal, Wood, Absorber}
	freqs := []float64{0.9e9, 2.4e9, 5e9, 12e9, 24e9, 39e9, 60e9, 80e9}
	for _, m := range mats {
		for _, f := range freqs {
			r, tr := m.Reflection(f), m.Transmission(f)
			if e := r*r + tr*tr; e > 1+1e-9 {
				t.Errorf("%s at %g Hz: R²+T² = %v > 1", m.Name, f, e)
			}
		}
	}
}

func TestNewMaterialValidation(t *testing.T) {
	if _, err := NewMaterial("empty"); err == nil {
		t.Error("empty material accepted")
	}
	if _, err := NewMaterial("neg", MaterialPoint{FreqHz: 1e9, Reflection: -0.1}); err == nil {
		t.Error("negative coefficient accepted")
	}
	if _, err := NewMaterial("hot", MaterialPoint{FreqHz: 1e9, Reflection: 0.9, Transmission: 0.9}); err == nil {
		t.Error("energy-violating material accepted")
	}
	// Unsorted anchors get sorted.
	m, err := NewMaterial("ok",
		MaterialPoint{FreqHz: 5e9, Transmission: 0.5},
		MaterialPoint{FreqHz: 1e9, Transmission: 0.9},
	)
	if err != nil {
		t.Fatal(err)
	}
	if m.Transmission(1e9) != 0.9 || m.Transmission(5e9) != 0.5 {
		t.Error("anchors not sorted correctly")
	}
}

func TestPenetrationLoss(t *testing.T) {
	// Metal is infinite.
	if !math.IsInf(Metal.PenetrationLossDB(5e9), 1) {
		t.Error("metal penetration loss should be +Inf")
	}
	// Concrete at 60 GHz is enormous (>50 dB).
	if got := Concrete.PenetrationLossDB(60e9); got < 50 {
		t.Errorf("concrete mmWave loss = %v dB, want > 50", got)
	}
	// Drywall at 2.4 GHz is modest (<3 dB).
	if got := Drywall.PenetrationLossDB(2.4e9); got > 3 {
		t.Errorf("drywall 2.4 GHz loss = %v dB, want < 3", got)
	}
}

func TestWavelengthFrequencyInverse(t *testing.T) {
	// Property: λ·f = c for any positive frequency.
	f := func(ghz float64) bool {
		freq := (math.Mod(math.Abs(ghz), 100) + 0.1) * 1e9
		return math.Abs(Wavelength(freq)*freq-C) < 1e-3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
