package em

import (
	"fmt"
	"math"
	"sort"
)

// Material describes how a building surface interacts with an incident wave
// at a given frequency. Coefficients are amplitude factors in [0, 1];
// energy conservation requires R² + T² ≤ 1 (the remainder is absorbed).
//
// Real materials are strongly frequency dependent — drywall that is nearly
// transparent at 2.4 GHz blocks most of a 60 GHz wave. SurfOS models this
// with piecewise-linear interpolation over tabulated anchor frequencies,
// which is what the hardware manager's "wideband frequency response" spec
// (§3.1 of the paper) exposes for surfaces too.
type Material struct {
	Name string
	// anchors sorted by frequency.
	anchors []MaterialPoint
}

// MaterialPoint is one tabulated (frequency, reflection, transmission)
// sample of a material response.
type MaterialPoint struct {
	FreqHz       float64
	Reflection   float64 // amplitude reflection coefficient
	Transmission float64 // amplitude transmission coefficient
}

// NewMaterial builds a material from anchor points. At least one anchor is
// required; anchors are sorted by frequency and validated for energy
// conservation.
func NewMaterial(name string, pts ...MaterialPoint) (*Material, error) {
	if len(pts) == 0 {
		return nil, fmt.Errorf("em: material %q needs at least one anchor", name)
	}
	anchors := make([]MaterialPoint, len(pts))
	copy(anchors, pts)
	sort.Slice(anchors, func(i, j int) bool { return anchors[i].FreqHz < anchors[j].FreqHz })
	for _, p := range anchors {
		if p.Reflection < 0 || p.Transmission < 0 {
			return nil, fmt.Errorf("em: material %q has negative coefficient at %g Hz", name, p.FreqHz)
		}
		if e := p.Reflection*p.Reflection + p.Transmission*p.Transmission; e > 1+1e-9 {
			return nil, fmt.Errorf("em: material %q violates energy conservation at %g Hz (R²+T²=%.3f)", name, p.FreqHz, e)
		}
	}
	return &Material{Name: name, anchors: anchors}, nil
}

// MustMaterial is NewMaterial that panics on error, for static tables.
func MustMaterial(name string, pts ...MaterialPoint) *Material {
	m, err := NewMaterial(name, pts...)
	if err != nil {
		panic(err)
	}
	return m
}

// interp returns the anchor interpolation weights at f.
func (m *Material) interp(freqHz float64) (lo, hi int, t float64) {
	a := m.anchors
	if freqHz <= a[0].FreqHz {
		return 0, 0, 0
	}
	if freqHz >= a[len(a)-1].FreqHz {
		n := len(a) - 1
		return n, n, 0
	}
	hi = sort.Search(len(a), func(i int) bool { return a[i].FreqHz >= freqHz })
	lo = hi - 1
	t = (freqHz - a[lo].FreqHz) / (a[hi].FreqHz - a[lo].FreqHz)
	return lo, hi, t
}

// Reflection returns the amplitude reflection coefficient at freqHz.
func (m *Material) Reflection(freqHz float64) float64 {
	lo, hi, t := m.interp(freqHz)
	return m.anchors[lo].Reflection*(1-t) + m.anchors[hi].Reflection*t
}

// Transmission returns the amplitude transmission coefficient at freqHz.
func (m *Material) Transmission(freqHz float64) float64 {
	lo, hi, t := m.interp(freqHz)
	return m.anchors[lo].Transmission*(1-t) + m.anchors[hi].Transmission*t
}

// PenetrationLossDB returns the one-pass transmission loss in positive dB.
func (m *Material) PenetrationLossDB(freqHz float64) float64 {
	tr := m.Transmission(freqHz)
	if tr <= 0 {
		return math.Inf(1)
	}
	return -DB(tr * tr)
}

// Standard building materials with responses shaped after published indoor
// propagation measurements (ITU-R P.2040 class behaviour): loss grows with
// frequency, concrete blocks mmWave almost entirely, drywall stays
// moderately transparent, metal reflects at all bands.
var (
	// Drywall: light interior partition.
	Drywall = MustMaterial("drywall",
		MaterialPoint{FreqHz: 2.4e9, Reflection: 0.30, Transmission: 0.85},
		MaterialPoint{FreqHz: 5e9, Reflection: 0.35, Transmission: 0.75},
		MaterialPoint{FreqHz: 24e9, Reflection: 0.45, Transmission: 0.35},
		MaterialPoint{FreqHz: 60e9, Reflection: 0.50, Transmission: 0.15},
	)
	// Concrete: structural wall; effectively opaque at mmWave
	// (ITU-R P.2040-class walls exceed 45 dB penetration loss above
	// 20 GHz).
	Concrete = MustMaterial("concrete",
		MaterialPoint{FreqHz: 2.4e9, Reflection: 0.60, Transmission: 0.30},
		MaterialPoint{FreqHz: 5e9, Reflection: 0.62, Transmission: 0.18},
		MaterialPoint{FreqHz: 24e9, Reflection: 0.70, Transmission: 0.005},
		MaterialPoint{FreqHz: 60e9, Reflection: 0.72, Transmission: 0.0004},
	)
	// Glass: window pane.
	Glass = MustMaterial("glass",
		MaterialPoint{FreqHz: 2.4e9, Reflection: 0.25, Transmission: 0.90},
		MaterialPoint{FreqHz: 5e9, Reflection: 0.30, Transmission: 0.85},
		MaterialPoint{FreqHz: 24e9, Reflection: 0.40, Transmission: 0.60},
		MaterialPoint{FreqHz: 60e9, Reflection: 0.45, Transmission: 0.40},
	)
	// Metal: near-perfect reflector, no transmission.
	Metal = MustMaterial("metal",
		MaterialPoint{FreqHz: 2.4e9, Reflection: 0.98, Transmission: 0},
		MaterialPoint{FreqHz: 60e9, Reflection: 0.98, Transmission: 0},
	)
	// Wood: doors and furniture.
	Wood = MustMaterial("wood",
		MaterialPoint{FreqHz: 2.4e9, Reflection: 0.35, Transmission: 0.80},
		MaterialPoint{FreqHz: 5e9, Reflection: 0.38, Transmission: 0.70},
		MaterialPoint{FreqHz: 24e9, Reflection: 0.45, Transmission: 0.30},
		MaterialPoint{FreqHz: 60e9, Reflection: 0.48, Transmission: 0.10},
	)
	// Absorber: anechoic boundary used to terminate open scene edges.
	Absorber = MustMaterial("absorber",
		MaterialPoint{FreqHz: 1e9, Reflection: 0, Transmission: 0},
	)
)
