package em

import "math/cmplx"

// FillPhasors writes the unit phasors e^{jφ} of phases into dst, which must
// have the same length. It is the single phase→phasor conversion loop shared
// by the simulator, the optimizer losses, and the sensing estimator.
func FillPhasors(dst []complex128, phases []float64) {
	for k, phi := range phases {
		dst[k] = cmplx.Rect(1, phi)
	}
}

// Phasors converts a per-surface phase set to unit phasor vectors, allocating
// the result. Hot paths that convert repeatedly should hold a PhasorBuf and
// use its Phasors method instead.
func Phasors(phases [][]float64) [][]complex128 {
	var b PhasorBuf
	return b.Phasors(phases)
}

// PhasorBuf is reusable scratch for phase→phasor conversion. The zero value
// is ready to use. A buffer grows to the largest shape it has seen and then
// converts without allocating; results alias the buffer's storage and are
// valid until the next Reset/Phasors call. A PhasorBuf is not safe for
// concurrent use.
type PhasorBuf struct {
	flat []complex128
	rows [][]complex128
	used int
}

// Reset prepares the buffer for nRows Append calls, reusing prior storage.
func (b *PhasorBuf) Reset(nRows int) {
	if cap(b.rows) < nRows {
		b.rows = make([][]complex128, 0, nRows)
	}
	b.rows = b.rows[:0]
	b.used = 0
}

// Append converts one phase vector into the next row and returns it.
func (b *PhasorBuf) Append(phases []float64) []complex128 {
	row := b.alloc(len(phases))
	FillPhasors(row, phases)
	b.rows = append(b.rows, row)
	return row
}

// alloc carves an n-cell row out of the flat backing array, growing it when
// exhausted. Rows handed out before a growth keep pointing into the old
// array, so they stay valid for the rest of the cycle.
func (b *PhasorBuf) alloc(n int) []complex128 {
	if b.used+n > len(b.flat) {
		size := 2 * len(b.flat)
		if size < n {
			size = n
		}
		b.flat = make([]complex128, size)
		b.used = 0
	}
	row := b.flat[b.used : b.used+n : b.used+n]
	b.used += n
	return row
}

// Rows returns the rows appended since the last Reset.
func (b *PhasorBuf) Rows() [][]complex128 { return b.rows }

// Phasors converts a per-surface phase set in one call, reusing the buffer's
// storage. The result is valid until the next call on the same buffer.
func (b *PhasorBuf) Phasors(phases [][]float64) [][]complex128 {
	b.Reset(len(phases))
	for _, ps := range phases {
		b.Append(ps)
	}
	return b.rows
}
