package em

import (
	"math"
	"math/cmplx"
	"testing"
)

func TestFillPhasors(t *testing.T) {
	phases := []float64{0, math.Pi / 2, math.Pi, -math.Pi / 3, 7.5}
	dst := make([]complex128, len(phases))
	FillPhasors(dst, phases)
	for k, phi := range phases {
		want := cmplx.Rect(1, phi)
		if dst[k] != want {
			t.Errorf("phasor[%d] = %v, want %v", k, dst[k], want)
		}
	}
}

func TestPhasorsShape(t *testing.T) {
	phases := [][]float64{{0.1, 0.2, 0.3}, {}, {1.5}}
	x := Phasors(phases)
	if len(x) != len(phases) {
		t.Fatalf("got %d rows, want %d", len(x), len(phases))
	}
	for s := range phases {
		if len(x[s]) != len(phases[s]) {
			t.Fatalf("row %d has %d cells, want %d", s, len(x[s]), len(phases[s]))
		}
		for k, phi := range phases[s] {
			if x[s][k] != cmplx.Rect(1, phi) {
				t.Errorf("x[%d][%d] = %v", s, k, x[s][k])
			}
		}
	}
}

// TestPhasorBufGrowthKeepsOldRows exercises the mid-cycle growth path: rows
// appended before the flat backing array grows must keep their values.
func TestPhasorBufGrowthKeepsOldRows(t *testing.T) {
	var b PhasorBuf
	b.Reset(2)
	first := b.Append([]float64{0.25, 0.5})
	// Force a growth: much larger than the current backing array.
	big := make([]float64, 256)
	for i := range big {
		big[i] = float64(i) * 0.01
	}
	second := b.Append(big)
	if first[0] != cmplx.Rect(1, 0.25) || first[1] != cmplx.Rect(1, 0.5) {
		t.Errorf("first row corrupted after growth: %v", first)
	}
	for i := range big {
		if second[i] != cmplx.Rect(1, big[i]) {
			t.Fatalf("second row cell %d = %v", i, second[i])
		}
	}
	rows := b.Rows()
	if len(rows) != 2 || &rows[0][0] != &first[0] || &rows[1][0] != &second[0] {
		t.Error("Rows does not return the appended rows")
	}
}

// TestPhasorBufSteadyStateAllocFree verifies that repeated conversion of a
// fixed shape does not allocate once the buffer has warmed up.
func TestPhasorBufSteadyStateAllocFree(t *testing.T) {
	phases := [][]float64{make([]float64, 32), make([]float64, 48)}
	for s := range phases {
		for k := range phases[s] {
			phases[s][k] = float64(s+k) * 0.1
		}
	}
	var b PhasorBuf
	b.Phasors(phases) // warm up
	allocs := testing.AllocsPerRun(100, func() {
		b.Phasors(phases)
	})
	if allocs != 0 {
		t.Errorf("steady-state Phasors allocates %v times per call, want 0", allocs)
	}
}

func TestPhasorBufReuseAcrossShapes(t *testing.T) {
	var b PhasorBuf
	a := b.Phasors([][]float64{{0.1, 0.2}, {0.3}})
	if len(a) != 2 {
		t.Fatal("bad first conversion")
	}
	c := b.Phasors([][]float64{{1.1}})
	if len(c) != 1 || c[0][0] != cmplx.Rect(1, 1.1) {
		t.Fatalf("bad second conversion: %v", c)
	}
}
