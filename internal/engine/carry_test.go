package engine_test

import (
	"context"
	"testing"

	"surfos/internal/em"
	"surfos/internal/engine"
	"surfos/internal/geom"
	"surfos/internal/scene"
	"surfos/internal/surface"
)

// stripRig builds a 3-room concrete strip with one 8x8 panel per room
// (north mounts) — one interference domain per room, AP in room 0.
func stripRig(t *testing.T) (*scene.RoomStrip, []*surface.Surface) {
	t.Helper()
	strip := scene.NewRoomStrip(3)
	pitch := em.Wavelength(em.Band24G) / 2
	surfs := make([]*surface.Surface, 3)
	for i := 0; i < 3; i++ {
		mount := strip.Mounts[scene.RoomMountNorth(i)]
		panel := mount.Panel(8*pitch+0.02, 8*pitch+0.02)
		s, err := surface.New(scene.RoomMountNorth(i), panel, surface.Layout{
			Rows: 8, Cols: 8, PitchU: pitch, PitchV: pitch,
		}, surface.Reflective, em.CosinePattern{Q: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		surfs[i] = s
	}
	return strip, surfs
}

// screenQuad is a drywall screen standing in the middle of room i.
func screenQuad(room int, off float64) *geom.Quad {
	x := float64(room)*scene.RoomW + 1.5 + off
	return geom.RectXY(geom.V(x, 1.5, 0), geom.V(0, 1, 0), geom.V(0, 0, 1), 2, 2.2)
}

func roomSpec(strip *scene.RoomStrip, s *surface.Surface) engine.Spec {
	return engine.Spec{Scene: strip.Scene, FreqHz: em.Band24G, Surfaces: []*surface.Surface{s}}
}

// TestCarryAcrossDecoupledEdit pins per-region invalidation: a wall edit
// in room 1 must leave the cached traces of rooms 0 and 2 hot (carried to
// the new revision without re-tracing), while room 1's own trace misses.
func TestCarryAcrossDecoupledEdit(t *testing.T) {
	strip, surfs := stripRig(t)
	eng := engine.New(engine.Options{})
	ctx := context.Background()

	for _, s := range surfs {
		if _, err := eng.Tx(ctx, roomSpec(strip, s), strip.AP); err != nil {
			t.Fatal(err)
		}
	}
	base := eng.CacheStats()
	if base.TxMisses != 3 || base.TxCarried != 0 {
		t.Fatalf("baseline: %+v", base)
	}

	// Toggle a drywall screen in room 1: concrete dividers decouple it
	// from the AP (room 0) and from rooms 0/2's panels.
	strip.AddWall("screen_1", screenQuad(1, 0), em.Drywall)

	for _, s := range surfs {
		if _, err := eng.Tx(ctx, roomSpec(strip, s), strip.AP); err != nil {
			t.Fatal(err)
		}
	}
	st := eng.CacheStats()
	// Room 1's trace must re-trace (the screen shadows its panel); rooms
	// 0 and 2 must carry.
	if st.TxMisses != base.TxMisses+1 {
		t.Fatalf("want exactly one new miss (room 1), got %+v (base %+v)", st, base)
	}
	if st.TxCarried != 2 {
		t.Fatalf("want rooms 0 and 2 carried, got %+v", st)
	}

	// Carried entries are real cache entries: the next access is a plain
	// hit at the new revision.
	for _, s := range surfs {
		if _, err := eng.Tx(ctx, roomSpec(strip, s), strip.AP); err != nil {
			t.Fatal(err)
		}
	}
	st2 := eng.CacheStats()
	if st2.TxHits != st.TxHits+3 || st2.TxMisses != st.TxMisses || st2.TxCarried != st.TxCarried {
		t.Fatalf("re-access after carry: %+v (prev %+v)", st2, st)
	}
}

// TestCarryRefusesCoupledEdit: an edit radio-coupled to the transmitter
// invalidates every trace whose tx it can reach — no stale carries.
func TestCarryRefusesCoupledEdit(t *testing.T) {
	strip, surfs := stripRig(t)
	eng := engine.New(engine.Options{})
	ctx := context.Background()

	sp0 := roomSpec(strip, surfs[0])
	if _, err := eng.Tx(ctx, sp0, strip.AP); err != nil {
		t.Fatal(err)
	}
	// A screen in room 0 sits in the same domain as the AP and panel.
	strip.AddWall("screen_0", screenQuad(0, 0), em.Drywall)
	if _, err := eng.Tx(ctx, sp0, strip.AP); err != nil {
		t.Fatal(err)
	}
	st := eng.CacheStats()
	if st.TxCarried != 0 || st.TxMisses != 2 {
		t.Fatalf("coupled edit must force a re-trace: %+v", st)
	}
}

// TestCarryRespectsInvalidateAndWindow: Invalidate (unknown blast radius)
// and histories deeper than the journal window fall back to full misses.
func TestCarryRespectsInvalidateAndWindow(t *testing.T) {
	strip, surfs := stripRig(t)
	eng := engine.New(engine.Options{})
	ctx := context.Background()

	sp2 := roomSpec(strip, surfs[2])
	if _, err := eng.Tx(ctx, sp2, strip.AP); err != nil {
		t.Fatal(err)
	}
	strip.Invalidate()
	if _, err := eng.Tx(ctx, sp2, strip.AP); err != nil {
		t.Fatal(err)
	}
	if st := eng.CacheStats(); st.TxCarried != 0 || st.TxMisses != 2 {
		t.Fatalf("Invalidate must defeat the carry: %+v", st)
	}
}

// TestCarryBatchedEditSingleRevision: N wall toggles inside Scene.Edit
// cost one revision bump and at most one carry per cached trace.
func TestCarryBatchedEditSingleRevision(t *testing.T) {
	strip, surfs := stripRig(t)
	eng := engine.New(engine.Options{})
	ctx := context.Background()

	sp2 := roomSpec(strip, surfs[2])
	if _, err := eng.Tx(ctx, sp2, strip.AP); err != nil {
		t.Fatal(err)
	}
	rev := strip.Revision()
	err := strip.Edit(func(s *scene.Scene) error {
		s.AddWall("screen_1", screenQuad(1, 0), em.Drywall)
		if err := s.MoveWall("screen_1", screenQuad(1, 0.5)); err != nil {
			return err
		}
		s.AddWall("screen_1b", screenQuad(1, 1), em.Drywall)
		return s.RemoveWall("screen_1b")
	})
	if err != nil {
		t.Fatal(err)
	}
	if strip.Revision() != rev+1 {
		t.Fatalf("batch bumped revision %d times, want 1", strip.Revision()-rev)
	}
	if _, err := eng.Tx(ctx, sp2, strip.AP); err != nil {
		t.Fatal(err)
	}
	if st := eng.CacheStats(); st.TxCarried != 1 || st.TxMisses != 1 {
		t.Fatalf("batch of room-0/1 edits must carry room 2 once: %+v", st)
	}
}
