// Package engine is the shared channel-evaluation engine every SurfOS
// layer computes radio state through: a memoized ray-trace cache plus a
// worker-pool parallel evaluator for grid-shaped work.
//
// The expensive operation in the stack is the image-method ray trace that
// builds an rfsim.TxContext (transmitter-side incident legs and, with
// cascading, the cross-surface coupling matrices). The orchestrator,
// experiment rigs, deployment planner, and monitor all used to rebuild
// identical contexts independently; the engine memoizes them, keyed by
// (scene revision, frequency, tx position, surface set, sim flags), with
// explicit invalidation when the scene's geometry revision changes.
// Mutating a surface *configuration* (phases live in drivers, not in the
// traced geometry) does not — and must not — invalidate trace results;
// moving a wall does, because scene.Scene bumps its Revision.
//
// All parallel evaluation is deterministic: workers write results by
// index into pre-allocated slices, so parallel output is bit-identical to
// the serial path regardless of scheduling.
package engine

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"surfos/internal/geom"
	"surfos/internal/rfsim"
	"surfos/internal/scene"
	"surfos/internal/surface"
)

// Options tunes an Engine. Zero values select sane defaults.
type Options struct {
	// Workers bounds the fan-out of parallel evaluation. 0 means
	// runtime.GOMAXPROCS(0); 1 forces serial execution.
	Workers int
	// MaxTxContexts bounds the memoized trace cache (each TxContext holds
	// per-element incident legs for every surface). Default 128; the
	// least-recently-used entry is evicted on overflow.
	MaxTxContexts int
}

// Spec identifies one simulator configuration the engine can build and
// cache. It mirrors the tunable fields of rfsim.Simulator; identical Specs
// share a cached Simulator and its TxContexts.
type Spec struct {
	Scene  *scene.Scene
	FreqHz float64
	// Surfaces participate in the trace. Surface geometry is immutable
	// after surface.New, so pointer identity is a sound cache key.
	Surfaces []*surface.Surface

	ReflOrder           int // image-method order; 0 here means rfsim's default (1)
	Cascade             bool
	PerElementOcclusion bool
	ElementEfficiency   float64 // 0 means 1.0

	// TxPattern is the transmitter antenna pattern. Functions are not
	// comparable, so a non-nil pattern MUST be identified by a unique
	// TxPatternID for its results to be cached; with a non-nil pattern and
	// an empty ID the engine still works but bypasses the cache for this
	// spec.
	TxPattern   func(dir geom.Vec3) float64
	TxPatternID string
}

// cacheable reports whether the spec can be keyed.
func (sp Spec) cacheable() bool { return sp.TxPattern == nil || sp.TxPatternID != "" }

// simKey identifies a Simulator build. The scene pointer plus its geometry
// revision make stale traces unreachable the moment a wall moves.
type simKey struct {
	scene   *scene.Scene
	rev     uint64
	freq    float64
	surfs   string // "\x00"-joined surface pointer identities
	order   int
	cascade bool
	perElem bool
	eff     float64
	pattern string
	hasPatt bool
}

// txKey identifies a TxContext build under a given simulator.
type txKey struct {
	sim  simKey
	tx   geom.Vec3
	freq float64
}

// slot is the revision-less cache line of a key: every revision of the
// same (scene, freq, tx, surface set, flags) trace shares one slot, and
// the carry index maps each slot to its latest cached revision so a
// scene edit that cannot reach this trace re-keys it instead of
// re-tracing (per-region invalidation).
func (k txKey) slot() txKey { k.sim.rev = 0; return k }

// txEntry is a singleflight cache slot: the first goroutine to claim it
// runs the trace inside once; latecomers block on the same build instead
// of duplicating it.
type txEntry struct {
	once sync.Once
	tc   *rfsim.TxContext
	err  error
}

// Stats reports cache effectiveness, for tests and telemetry.
type Stats struct {
	TxHits     uint64
	TxMisses   uint64
	TxCarried  uint64 // traces carried across scene revisions without re-tracing
	SimHits    uint64
	SimMisses  uint64
	PartHits   uint64 // interference-domain partition cache hits
	PartMisses uint64
	TxContexts int // currently cached contexts
}

// Engine memoizes ray traces and fans grid work out over a worker pool.
// It is safe for concurrent use.
//
// The worker pool is a token budget, not a fixed goroutine set: every
// fan-out (ForEach, or a Scope held across many fan-outs) borrows spare
// tokens non-blockingly and always keeps the calling goroutine working
// inline, so nested fan-outs — an optimizer sweep inside an orchestrator
// shard reconcile — share one budget instead of multiplying it. An inner
// fan-out that finds no spare tokens degrades to serial on its caller's
// goroutine; it can never deadlock waiting for tokens the outer fan-out
// holds.
type Engine struct {
	workers int
	maxTx   int
	// spare holds the engine's workers-1 loanable concurrency tokens (the
	// caller of any fan-out is the implicit first worker).
	spare chan struct{}

	mu    sync.Mutex
	sims  map[simKey]*rfsim.Simulator
	txs   map[txKey]*txEntry
	txLRU []txKey         // oldest first; small (≤ maxTx), linear scans are fine
	carry map[txKey]txKey // slot (rev-less key) → latest cached revision's key
	parts map[partKey]*Partition

	txHits     atomic.Uint64
	txMisses   atomic.Uint64
	txCarried  atomic.Uint64
	simHits    atomic.Uint64
	simMisses  atomic.Uint64
	partHits   atomic.Uint64
	partMisses atomic.Uint64
}

// New creates an engine.
func New(opts Options) *Engine {
	w := opts.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	m := opts.MaxTxContexts
	if m <= 0 {
		m = 128
	}
	spare := make(chan struct{}, w-1)
	for i := 0; i < w-1; i++ {
		spare <- struct{}{}
	}
	return &Engine{
		workers: w,
		maxTx:   m,
		spare:   spare,
		sims:    make(map[simKey]*rfsim.Simulator),
		txs:     make(map[txKey]*txEntry),
		carry:   make(map[txKey]txKey),
		parts:   make(map[partKey]*Partition),
	}
}

// Default is the process-wide shared engine, used by layers that are not
// handed an explicit one. Sharing maximizes cache reuse across the
// orchestrator, experiments, and deployment planner.
var defaultEngine = New(Options{})

// Default returns the process-wide shared engine.
func Default() *Engine { return defaultEngine }

// Workers returns the configured fan-out width.
func (e *Engine) Workers() int { return e.workers }

func surfacesID(surfs []*surface.Surface) string {
	ids := make([]string, len(surfs))
	for i, s := range surfs {
		ids[i] = fmt.Sprintf("%p", s)
	}
	// Order-insensitive: the same surface set traced in a different order
	// yields different Single/Cross indexing, so do NOT sort for the sim
	// itself — but identical ordered sets must collide. Keep insertion
	// order; callers that want sharing should pass surfaces sorted by ID.
	return strings.Join(ids, "\x00")
}

func (sp Spec) key() simKey {
	return simKey{
		scene:   sp.Scene,
		rev:     sp.Scene.Revision(),
		freq:    sp.FreqHz,
		surfs:   surfacesID(sp.Surfaces),
		order:   sp.ReflOrder,
		cascade: sp.Cascade,
		perElem: sp.PerElementOcclusion,
		eff:     sp.ElementEfficiency,
		pattern: sp.TxPatternID,
		hasPatt: sp.TxPattern != nil,
	}
}

func (sp Spec) build() (*rfsim.Simulator, error) {
	sim, err := rfsim.New(sp.Scene, sp.FreqHz, sp.Surfaces...)
	if err != nil {
		return nil, err
	}
	if sp.ReflOrder != 0 {
		sim.ReflOrder = sp.ReflOrder
	}
	sim.Cascade = sp.Cascade
	sim.PerElementOcclusion = sp.PerElementOcclusion
	sim.ElementEfficiency = sp.ElementEfficiency
	sim.TxPattern = sp.TxPattern
	return sim, nil
}

// Simulator returns the memoized simulator for spec, building it on first
// use. Simulators are cheap (validation + field copies); they are cached
// so that TxContexts and estimator construction observe a stable identity.
func (e *Engine) Simulator(spec Spec) (*rfsim.Simulator, error) {
	if spec.Scene == nil {
		return nil, fmt.Errorf("engine: spec has nil scene")
	}
	if !spec.cacheable() {
		e.simMisses.Add(1)
		return spec.build()
	}
	k := spec.key()
	e.mu.Lock()
	if sim, ok := e.sims[k]; ok {
		e.mu.Unlock()
		e.simHits.Add(1)
		return sim, nil
	}
	e.mu.Unlock()
	e.simMisses.Add(1)
	sim, err := spec.build()
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	// Another goroutine may have raced the build; keep the first so all
	// callers share one identity.
	if prior, ok := e.sims[k]; ok {
		sim = prior
	} else {
		e.sims[k] = sim
	}
	e.mu.Unlock()
	return sim, nil
}

// Tx returns the memoized transmitter context for spec at the spec's
// carrier frequency. The first call per (scene revision, frequency, tx,
// surface set, flags) runs the image-method trace; subsequent calls are
// cache hits. Concurrent misses on the same key trace once.
func (e *Engine) Tx(ctx context.Context, spec Spec, tx geom.Vec3) (*rfsim.TxContext, error) {
	return e.TxAt(ctx, spec, tx, spec.FreqHz)
}

// TxAt is Tx at an explicit frequency (wideband sensing sweeps subcarriers).
func (e *Engine) TxAt(ctx context.Context, spec Spec, tx geom.Vec3, freqHz float64) (*rfsim.TxContext, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	if !spec.cacheable() {
		e.txMisses.Add(1)
		sim, err := spec.build()
		if err != nil {
			return nil, err
		}
		return sim.NewTxAt(tx, freqHz), nil
	}
	sim, err := e.Simulator(spec)
	if err != nil {
		return nil, err
	}
	k := txKey{sim: spec.key(), tx: tx, freq: freqHz}

	e.mu.Lock()
	ent, ok := e.txs[k]
	if ok {
		e.touchLocked(k)
		e.mu.Unlock()
		e.txHits.Add(1)
		ent.once.Do(func() { ent.tc = sim.NewTxAt(tx, freqHz) })
		return ent.tc, ent.err
	}
	prev, hasPrev := e.carry[k.slot()]
	e.mu.Unlock()

	// Per-region invalidation: a cached trace from an older scene
	// revision stays valid when every edit since then is radio-decoupled
	// from this trace's transmitter and surfaces — carry it to the new
	// revision instead of re-tracing. (The receiver side is computed live
	// by TxContext.Channel against the shared scene, so only the tx-side
	// legs and coupling matrices are frozen in the context.)
	if hasPrev && prev != k {
		if cent, carried := e.tryCarry(spec, tx, freqHz, k, prev); cent != nil {
			if carried {
				e.txCarried.Add(1)
			} else {
				e.txHits.Add(1)
			}
			cent.once.Do(func() { cent.tc = sim.NewTxAt(tx, freqHz) })
			return cent.tc, cent.err
		}
	}

	e.mu.Lock()
	ent, ok = e.txs[k]
	if ok {
		e.touchLocked(k)
	} else {
		ent = &txEntry{}
		e.txs[k] = ent
		e.txLRU = append(e.txLRU, k)
		e.carry[k.slot()] = k
		e.evictLocked()
	}
	e.mu.Unlock()

	if ok {
		e.txHits.Add(1)
	} else {
		e.txMisses.Add(1)
	}
	ent.once.Do(func() { ent.tc = sim.NewTxAt(tx, freqHz) })
	return ent.tc, ent.err
}

// tryCarry attempts to re-key the cached entry at prev (an older scene
// revision of k's slot) under k. It returns the entry and whether it was
// carried (false means a racing goroutine already filled k — a plain
// hit). nil means the carry is not possible: the edit history is
// unknowable, an edit could affect the trace, or the entry was evicted.
func (e *Engine) tryCarry(spec Spec, tx geom.Vec3, freqHz float64, k, prev txKey) (*txEntry, bool) {
	edits, known := spec.Scene.EditsSince(prev.sim.rev)
	if !known {
		return nil, false
	}
	for _, b := range edits {
		if editAffects(spec, tx, freqHz, b) {
			return nil, false
		}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if ent, ok := e.txs[k]; ok { // a racer built or carried it first
		e.touchLocked(k)
		return ent, false
	}
	ent, ok := e.txs[prev]
	if !ok { // evicted since the index lookup
		return nil, false
	}
	delete(e.txs, prev)
	e.removeLRULocked(prev)
	e.txs[k] = ent
	e.txLRU = append(e.txLRU, k)
	e.carry[k.slot()] = k
	return ent, true
}

// editAffects reports whether an edit with dirty bounds box could change
// the tx-side trace of spec at tx: true when the edited geometry is
// radio-coupled — above the interference-domain threshold, evaluated
// against the current walls — to the transmitter or any participating
// surface. An edit that only sub-threshold coupling connects to the
// trace (e.g. a partition toggled behind concrete) is definitionally
// unable to change it more than the domain model already ignores.
func editAffects(spec Spec, tx geom.Vec3, freqHz float64, box geom.AABB) bool {
	targets := make([]geom.Vec3, 0, len(spec.Surfaces)+1)
	targets = append(targets, tx)
	for _, s := range spec.Surfaces {
		targets = append(targets, s.Panel.Center())
	}
	for _, p := range probeAABB(box) {
		for _, t := range targets {
			g := spec.Scene.SegmentGain(p, t, freqHz)
			if g > 0 && 20*math.Log10(g) >= DefaultMinCouplingDB {
				return true
			}
		}
	}
	return false
}

// probeAABB returns the coupling probe points of a dirty box: its center
// and eight corners.
func probeAABB(b geom.AABB) []geom.Vec3 {
	return []geom.Vec3{
		b.Center(),
		b.Min,
		geom.V(b.Max.X, b.Min.Y, b.Min.Z),
		geom.V(b.Min.X, b.Max.Y, b.Min.Z),
		geom.V(b.Max.X, b.Max.Y, b.Min.Z),
		geom.V(b.Min.X, b.Min.Y, b.Max.Z),
		geom.V(b.Max.X, b.Min.Y, b.Max.Z),
		geom.V(b.Min.X, b.Max.Y, b.Max.Z),
		b.Max,
	}
}

// removeLRULocked deletes k from the LRU order. Caller holds e.mu.
func (e *Engine) removeLRULocked(k txKey) {
	for i := range e.txLRU {
		if e.txLRU[i] == k {
			e.txLRU = append(e.txLRU[:i], e.txLRU[i+1:]...)
			return
		}
	}
}

// touchLocked moves k to the most-recently-used end. Caller holds e.mu.
func (e *Engine) touchLocked(k txKey) {
	for i := range e.txLRU {
		if e.txLRU[i] == k {
			copy(e.txLRU[i:], e.txLRU[i+1:])
			e.txLRU[len(e.txLRU)-1] = k
			return
		}
	}
}

// evictLocked drops the least-recently-used entries beyond maxTx. Caller
// holds e.mu.
func (e *Engine) evictLocked() {
	for len(e.txLRU) > e.maxTx {
		old := e.txLRU[0]
		e.txLRU = e.txLRU[1:]
		delete(e.txs, old)
		if e.carry[old.slot()] == old {
			delete(e.carry, old.slot())
		}
	}
}

// Invalidate drops every cached simulator and trace. Scene geometry
// changes are keyed automatically via scene.Revision; Invalidate is the
// explicit hammer for out-of-band mutations (e.g. editing a surface's
// panel in place, which the engine cannot observe).
func (e *Engine) Invalidate() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.sims = make(map[simKey]*rfsim.Simulator)
	e.txs = make(map[txKey]*txEntry)
	e.txLRU = nil
	e.carry = make(map[txKey]txKey)
	e.parts = make(map[partKey]*Partition)
}

// CacheStats returns hit/miss counters and the live context count.
func (e *Engine) CacheStats() Stats {
	e.mu.Lock()
	n := len(e.txs)
	e.mu.Unlock()
	return Stats{
		TxHits:     e.txHits.Load(),
		TxMisses:   e.txMisses.Load(),
		TxCarried:  e.txCarried.Load(),
		SimHits:    e.simHits.Load(),
		SimMisses:  e.simMisses.Load(),
		PartHits:   e.partHits.Load(),
		PartMisses: e.partMisses.Load(),
		TxContexts: n,
	}
}

// ctxErr tolerates nil contexts (internal callers pass Background anyway).
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// Scope is a reserved slice of the engine's worker budget, held across
// many fan-outs. Callers that need stable per-worker state (the
// optimizer's per-worker evaluator clones) acquire a scope once, size
// their state to Workers(), and run every fan-out through it; the slot
// index passed to fn identifies which per-worker state the invocation may
// use. A Scope is not safe for concurrent use by multiple goroutines;
// Release returns the borrowed tokens and must be called exactly once.
type Scope struct {
	e      *Engine
	extra  int // loaned tokens: workers beyond the calling goroutine
	closed bool
}

// Acquire reserves up to max workers (including the caller; max <= 0 or
// max > the engine width means the engine width) from the engine's spare
// token budget without blocking: if other fan-outs hold the tokens, the
// scope is simply narrower — possibly just the caller. A scope therefore
// always makes progress and can never deadlock against its own outer
// fan-out.
func (e *Engine) Acquire(max int) *Scope {
	if max <= 0 || max > e.workers {
		max = e.workers
	}
	got := 0
	for got < max-1 {
		select {
		case <-e.spare:
			got++
		default:
			return &Scope{e: e, extra: got}
		}
	}
	return &Scope{e: e, extra: got}
}

// Workers returns the scope's width: the caller plus the loaned workers.
func (s *Scope) Workers() int { return s.extra + 1 }

// Release returns the scope's loaned tokens to the engine. Safe to call
// more than once; only the first call returns tokens.
func (s *Scope) Release() {
	if s.closed {
		return
	}
	s.closed = true
	for i := 0; i < s.extra; i++ {
		s.e.spare <- struct{}{}
	}
	s.extra = 0
}

// ForEach runs fn(slot, i) for every i in [0, n) across the scope's
// workers and blocks until all complete or ctx is canceled. slot is in
// [0, Workers()); invocations sharing a slot never overlap, and the
// calling goroutine itself runs slot 0, so per-slot state needs no
// locking. Iterations already started when cancellation lands run to
// completion; unstarted ones are skipped, and the ctx error is returned
// so callers know the result is partial. Writing out[i] from fn(slot, i)
// yields deterministic, serial-identical results.
func (s *Scope) ForEach(ctx context.Context, n int, fn func(slot, i int)) error {
	if n <= 0 {
		return ctxErr(ctx)
	}
	extra := s.extra
	if extra > n-1 {
		extra = n - 1
	}
	if extra <= 0 {
		for i := 0; i < n; i++ {
			if err := ctxErr(ctx); err != nil {
				return err
			}
			fn(0, i)
		}
		return nil
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	wg.Add(extra)
	for w := 1; w <= extra; w++ {
		go func(slot int) {
			defer wg.Done()
			for {
				if ctxErr(ctx) != nil {
					return
				}
				i := next.Add(1)
				if i >= int64(n) {
					return
				}
				fn(slot, int(i))
			}
		}(w)
	}
	for {
		if ctxErr(ctx) != nil {
			break
		}
		i := next.Add(1)
		if i >= int64(n) {
			break
		}
		fn(0, int(i))
	}
	wg.Wait()
	return ctxErr(ctx)
}

// ForEach runs fn(i) for every i in [0, n) across the worker pool and
// blocks until all complete or ctx is canceled — a one-shot Scope that
// borrows at most n workers for the duration of the call. Iterations
// already started when cancellation lands run to completion; unstarted
// ones are skipped, and the ctx error is returned so callers know the
// result is partial. fn must be safe for concurrent invocation with
// distinct indices; writing out[i] from fn(i) yields deterministic,
// serial-identical results.
func (e *Engine) ForEach(ctx context.Context, n int, fn func(i int)) error {
	if n <= 0 {
		return ctxErr(ctx)
	}
	sc := e.Acquire(n)
	defer sc.Release()
	return sc.ForEach(ctx, n, func(_, i int) { fn(i) })
}

// Channels evaluates the channel at every point in pts in parallel,
// returning them in input order (out[i] corresponds to pts[i]). The
// transmitter trace is served from the cache.
func (e *Engine) Channels(ctx context.Context, spec Spec, tx geom.Vec3, pts []geom.Vec3) ([]*rfsim.Channel, error) {
	return e.ChannelsAt(ctx, spec, tx, spec.FreqHz, pts)
}

// ChannelsAt is Channels at an explicit frequency.
func (e *Engine) ChannelsAt(ctx context.Context, spec Spec, tx geom.Vec3, freqHz float64, pts []geom.Vec3) ([]*rfsim.Channel, error) {
	tc, err := e.TxAt(ctx, spec, tx, freqHz)
	if err != nil {
		return nil, err
	}
	out := make([]*rfsim.Channel, len(pts))
	if err := e.ForEach(ctx, len(pts), func(i int) {
		out[i] = tc.Channel(pts[i])
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// SortedSurfaces returns surfs ordered by name — the canonical ordering
// callers should use when assembling Specs so that independently built
// specs over the same device set share cache entries.
func SortedSurfaces(surfs []*surface.Surface) []*surface.Surface {
	out := append([]*surface.Surface(nil), surfs...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
