package engine_test

import (
	"context"
	"math"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"surfos/internal/em"
	"surfos/internal/engine"
	"surfos/internal/geom"
	"surfos/internal/optimize"
	"surfos/internal/rfsim"
	"surfos/internal/scene"
	"surfos/internal/surface"
)

// rig builds the shared fixture: the reference apartment with one 8x8
// reflective panel on the east wall.
func rig(t *testing.T) (*scene.Apartment, *surface.Surface) {
	t.Helper()
	apt := scene.NewApartment()
	pitch := em.Wavelength(em.Band24G) / 2
	mount := apt.Mounts[scene.MountEastWall]
	panel := mount.Panel(8*pitch+0.02, 8*pitch+0.02)
	s, err := surface.New("eng-test", panel, surface.Layout{
		Rows: 8, Cols: 8, PitchU: pitch, PitchV: pitch,
	}, surface.Reflective, em.CosinePattern{Q: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	return apt, s
}

func spec(apt *scene.Apartment, s *surface.Surface) engine.Spec {
	return engine.Spec{Scene: apt.Scene, FreqHz: em.Band24G, Surfaces: []*surface.Surface{s}}
}

func TestTxCacheHitsAndConfigMutationDoesNotInvalidate(t *testing.T) {
	apt, s := rig(t)
	eng := engine.New(engine.Options{})
	ctx := context.Background()
	sp := spec(apt, s)

	tc1, err := eng.Tx(ctx, sp, apt.AP)
	if err != nil {
		t.Fatal(err)
	}
	if st := eng.CacheStats(); st.TxMisses != 1 || st.TxHits != 0 {
		t.Fatalf("after first trace: %+v", st)
	}

	// "Mutating" a surface configuration means evaluating channels under
	// different phase programs — configurations live in drivers and Eval
	// arguments, never in the traced geometry. The cache must keep hitting.
	rx := geom.V(3.5, 5.5, 1.2)
	ch := tc1.Channel(rx)
	n := s.Layout.Rows * s.Layout.Cols
	zero := surface.Config{Property: surface.Phase, Values: make([]float64, n)}
	alt := surface.Config{Property: surface.Phase, Values: make([]float64, n)}
	for i := range alt.Values {
		alt.Values[i] = math.Pi / 2
	}
	h0, err := ch.Eval([]surface.Config{zero})
	if err != nil {
		t.Fatal(err)
	}
	h1, err := ch.Eval([]surface.Config{alt})
	if err != nil {
		t.Fatal(err)
	}
	if h0 == h1 {
		t.Fatal("distinct configs produced identical channels; bad fixture")
	}

	tc2, err := eng.Tx(ctx, sp, apt.AP)
	if err != nil {
		t.Fatal(err)
	}
	if tc2 != tc1 {
		t.Error("config evaluation invalidated the trace cache")
	}
	if st := eng.CacheStats(); st.TxHits != 1 || st.TxMisses != 1 {
		t.Errorf("after config mutation + re-trace: %+v", st)
	}
}

func TestMovingWallInvalidatesTrace(t *testing.T) {
	apt, s := rig(t)
	eng := engine.New(engine.Options{})
	ctx := context.Background()
	sp := spec(apt, s)

	tc1, err := eng.Tx(ctx, sp, apt.AP)
	if err != nil {
		t.Fatal(err)
	}
	rx := geom.V(3.5, 5.5, 1.2)
	before := tc1.Channel(rx).Direct

	// Slide the wardrobe into the living room: same wall set, new geometry.
	up := geom.V(0, 0, 1)
	if err := apt.Scene.MoveWall("wardrobe",
		geom.RectXY(geom.V(2.0, 3.0, 0), geom.V(0, 1, 0), up, 1.4, 1.9)); err != nil {
		t.Fatal(err)
	}

	tc2, err := eng.Tx(ctx, sp, apt.AP)
	if err != nil {
		t.Fatal(err)
	}
	if tc2 == tc1 {
		t.Fatal("MoveWall did not invalidate the trace cache")
	}
	if st := eng.CacheStats(); st.TxMisses != 2 || st.TxHits != 0 {
		t.Errorf("after wall move: %+v", st)
	}
	after := tc2.Channel(rx).Direct
	if before == after {
		t.Error("moved wall left the direct channel bit-identical; stale trace suspected")
	}

	// Invalidate() is the explicit hammer: everything re-traces.
	eng.Invalidate()
	if st := eng.CacheStats(); st.TxContexts != 0 {
		t.Errorf("Invalidate left %d contexts", st.TxContexts)
	}
	tc3, err := eng.Tx(ctx, sp, apt.AP)
	if err != nil {
		t.Fatal(err)
	}
	if tc3 == tc2 {
		t.Error("Invalidate did not drop the cached trace")
	}
}

func TestUncacheablePatternBypassesCache(t *testing.T) {
	apt, s := rig(t)
	eng := engine.New(engine.Options{})
	ctx := context.Background()
	sp := spec(apt, s)
	sp.TxPattern = rfsim.ConeBeam(s.Panel.Center().Sub(apt.AP), 12*math.Pi/180, 20, -5)
	// No TxPatternID: functions are not comparable, so this spec must not
	// be keyed (a colliding key would silently serve another pattern's
	// trace).
	tc1, err := eng.Tx(ctx, sp, apt.AP)
	if err != nil {
		t.Fatal(err)
	}
	tc2, err := eng.Tx(ctx, sp, apt.AP)
	if err != nil {
		t.Fatal(err)
	}
	if tc1 == tc2 {
		t.Error("uncacheable spec was cached")
	}
	if st := eng.CacheStats(); st.TxContexts != 0 || st.TxHits != 0 {
		t.Errorf("uncacheable spec leaked into the cache: %+v", st)
	}

	// With an ID the same pattern caches normally.
	sp.TxPatternID = "test-beam"
	tc3, err := eng.Tx(ctx, sp, apt.AP)
	if err != nil {
		t.Fatal(err)
	}
	tc4, err := eng.Tx(ctx, sp, apt.AP)
	if err != nil {
		t.Fatal(err)
	}
	if tc3 != tc4 {
		t.Error("identified pattern did not cache")
	}
}

func TestTxLRUEviction(t *testing.T) {
	apt, s := rig(t)
	eng := engine.New(engine.Options{MaxTxContexts: 2})
	ctx := context.Background()
	sp := spec(apt, s)
	for i := 0; i < 4; i++ {
		if _, err := eng.Tx(ctx, sp, geom.V(1.0+float64(i), 2.0, 1.5)); err != nil {
			t.Fatal(err)
		}
	}
	if st := eng.CacheStats(); st.TxContexts != 2 {
		t.Errorf("LRU kept %d contexts, want 2", st.TxContexts)
	}
}

func TestParallelHeatmapMatchesSerial(t *testing.T) {
	apt, s := rig(t)
	ctx := context.Background()
	budget := rfsim.LinkBudget{TxPowerDBm: 10, AntennaGainDB: 5, NoiseFigureDB: 7, BandwidthHz: 400e6}
	reg := apt.Regions[scene.RegionTargetRoom]
	pts := reg.GridPoints(0.5, scene.EvalHeight)
	if len(pts) < 16 {
		t.Fatalf("grid too small: %d points", len(pts))
	}
	n := s.Layout.Rows * s.Layout.Cols
	cfg := surface.Config{Property: surface.Phase, Values: make([]float64, n)}
	for i := range cfg.Values {
		cfg.Values[i] = float64(i%7) * math.Pi / 3
	}

	heatmap := func(eng *engine.Engine) []float64 {
		t.Helper()
		chans, err := eng.Channels(ctx, spec(apt, s), apt.AP, pts)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]float64, len(chans))
		if err := eng.ForEach(ctx, len(chans), func(i int) {
			h, err := chans[i].Eval([]surface.Config{cfg})
			if err == nil {
				out[i] = budget.SNRdB(h)
			}
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}

	serial := heatmap(engine.New(engine.Options{Workers: 1}))
	parallel := heatmap(engine.New(engine.Options{Workers: 8}))
	for i := range serial {
		if d := math.Abs(serial[i] - parallel[i]); d > 1e-12 {
			t.Fatalf("point %d: serial %.17g vs parallel %.17g (Δ %g)", i, serial[i], parallel[i], d)
		}
	}
}

func TestForEachDeterministicOrderAndCancel(t *testing.T) {
	eng := engine.New(engine.Options{Workers: 4})
	out := make([]int, 100)
	if err := eng.ForEach(context.Background(), len(out), func(i int) { out[i] = i * i }); err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("slot %d holds %d", i, v)
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := eng.ForEach(ctx, 100, func(int) {}); err != context.Canceled {
		t.Errorf("canceled ForEach returned %v", err)
	}
	// nil fn over zero items must be a no-op either way.
	if err := eng.ForEach(context.Background(), 0, func(int) { t.Error("called") }); err != nil {
		t.Error(err)
	}
}

func TestForEachDoesNotLeakGoroutines(t *testing.T) {
	eng := engine.New(engine.Options{Workers: 8})
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int32
	_ = eng.ForEach(ctx, 1000, func(i int) {
		if started.Add(1) == 5 {
			cancel() // abort mid-flight; workers must drain, not park
		}
	})
	deadline := time.Now().Add(2 * time.Second)
	base := runtime.NumGoroutine()
	for time.Now().Before(deadline) {
		runtime.Gosched()
		if n := runtime.NumGoroutine(); n <= base {
			base = n
		}
	}
	// Re-run to prove the engine is still healthy after cancellation.
	out := make([]int, 10)
	if err := eng.ForEach(context.Background(), len(out), func(i int) { out[i] = 1 }); err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != 1 {
			t.Fatalf("slot %d not evaluated after cancel/reuse", i)
		}
	}
}

// cancelAfter wraps an Objective and cancels a context after n Evals.
type cancelAfter struct {
	obj    optimize.Objective
	n      int
	calls  int
	cancel context.CancelFunc
}

func (c *cancelAfter) Shape() []int { return c.obj.Shape() }

func (c *cancelAfter) Eval(phases [][]float64, wantGrad bool) (float64, [][]float64) {
	c.calls++
	if c.calls == c.n {
		c.cancel()
	}
	return c.obj.Eval(phases, wantGrad)
}

func TestAdamCancellationReturnsBestSoFar(t *testing.T) {
	apt, s := rig(t)
	eng := engine.New(engine.Options{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	budget := rfsim.LinkBudget{TxPowerDBm: 10, AntennaGainDB: 5, NoiseFigureDB: 7, BandwidthHz: 400e6}
	reg := apt.Regions[scene.RegionTargetRoom]
	pts := reg.GridPoints(1.0, scene.EvalHeight)
	chans, err := eng.Channels(ctx, spec(apt, s), apt.AP, pts)
	if err != nil {
		t.Fatal(err)
	}
	obj, err := optimize.NewCoverageObjective(chans, budget)
	if err != nil {
		t.Fatal(err)
	}

	const maxIters = 500
	wrapped := &cancelAfter{obj: obj, n: 25, cancel: cancel}
	res := optimize.Adam(ctx, wrapped, optimize.ZeroPhases(obj.Shape()), optimize.Options{MaxIters: maxIters})
	if !res.Stopped {
		t.Fatal("canceled run did not report Stopped")
	}
	if res.Iterations >= maxIters {
		t.Fatalf("Iterations = %d, want < %d", res.Iterations, maxIters)
	}
	if res.Iterations != 25 {
		t.Errorf("Iterations = %d, want 25 (the completed iterations)", res.Iterations)
	}
	shape := obj.Shape()
	if len(res.Phases) != len(shape) {
		t.Fatalf("best-so-far phases missing: %d surfaces", len(res.Phases))
	}
	for i, want := range shape {
		if len(res.Phases[i]) != want {
			t.Fatalf("surface %d: %d phases, want %d", i, len(res.Phases[i]), want)
		}
	}
	if math.IsInf(res.Loss, 0) || math.IsNaN(res.Loss) {
		t.Errorf("best-so-far loss %v", res.Loss)
	}
	// The reported loss is the minimum over the completed iterations.
	min := math.Inf(1)
	for _, l := range res.History {
		min = math.Min(min, l)
	}
	if res.Loss != min {
		t.Errorf("Loss %v != min(History) %v", res.Loss, min)
	}

	// A pre-canceled context returns immediately, still well-formed.
	res = optimize.Adam(ctx, obj, optimize.ZeroPhases(obj.Shape()), optimize.Options{MaxIters: maxIters})
	if !res.Stopped || res.Iterations != 0 {
		t.Errorf("pre-canceled Adam: Stopped=%v Iterations=%d", res.Stopped, res.Iterations)
	}
}

func TestSingleflightTrace(t *testing.T) {
	apt, s := rig(t)
	eng := engine.New(engine.Options{})
	ctx := context.Background()
	sp := spec(apt, s)

	const callers = 16
	results := make([]*rfsim.TxContext, callers)
	if err := eng.ForEach(ctx, callers, func(i int) {
		tc, err := eng.Tx(ctx, sp, apt.AP)
		if err != nil {
			t.Error(err)
			return
		}
		results[i] = tc
	}); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < callers; i++ {
		if results[i] != results[0] {
			t.Fatalf("caller %d traced independently", i)
		}
	}
	if st := eng.CacheStats(); st.TxMisses != 1 {
		t.Errorf("concurrent misses each traced: %+v", st)
	}
}

func TestSortedSurfaces(t *testing.T) {
	apt, _ := rig(t)
	pitch := em.Wavelength(em.Band24G) / 2
	mk := func(name string) *surface.Surface {
		s, err := surface.New(name, apt.Mounts[scene.MountEastWall].Panel(4*pitch+0.02, 4*pitch+0.02),
			surface.Layout{Rows: 4, Cols: 4, PitchU: pitch, PitchV: pitch}, surface.Reflective, nil)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	b, a := mk("b"), mk("a")
	in := []*surface.Surface{b, a}
	got := engine.SortedSurfaces(in)
	if got[0].Name != "a" || got[1].Name != "b" {
		t.Errorf("order: %s, %s", got[0].Name, got[1].Name)
	}
	if in[0].Name != "b" {
		t.Error("SortedSurfaces mutated its input")
	}
}

// TestParallelSweepWithHeatmapOnSharedPool hammers an optimizer sweep and
// heatmap evaluation jobs on the same engine pool concurrently: no data
// race, no deadlock from pool re-entrancy (the sweep borrows workers
// through a scope and degrades gracefully when heatmaps hold them), and
// the sweep result stays bit-identical to a serial run.
func TestParallelSweepWithHeatmapOnSharedPool(t *testing.T) {
	apt, s := rig(t)
	ctx := context.Background()
	budget := rfsim.LinkBudget{TxPowerDBm: 10, AntennaGainDB: 5, NoiseFigureDB: 7, BandwidthHz: 400e6}
	reg := apt.Regions[scene.RegionTargetRoom]
	pts := reg.GridPoints(0.7, scene.EvalHeight)

	eng := engine.New(engine.Options{Workers: 8})
	chans, err := eng.Channels(ctx, spec(apt, s), apt.AP, pts)
	if err != nil {
		t.Fatal(err)
	}
	obj, err := optimize.NewCoverageObjective(chans, budget)
	if err != nil {
		t.Fatal(err)
	}
	init := optimize.ZeroPhases(obj.Shape())
	serial := optimize.CoordinateDescent(ctx, obj, init, []float64{0, math.Pi}, optimize.Options{MaxIters: 2})

	n := s.Layout.Rows * s.Layout.Cols
	cfg := surface.Config{Property: surface.Phase, Values: make([]float64, n)}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		out := make([]float64, len(chans))
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = eng.ForEach(ctx, len(chans), func(i int) {
				h, err := chans[i].Eval([]surface.Config{cfg})
				if err == nil {
					out[i] = budget.SNRdB(h)
				}
			})
		}
	}()

	for i := 0; i < 6; i++ {
		par := optimize.CoordinateDescent(ctx, obj, init, []float64{0, math.Pi},
			optimize.Options{MaxIters: 2, Engine: eng, Workers: 0})
		if par.Loss != serial.Loss || par.Evals != serial.Evals {
			t.Fatalf("run %d: parallel (loss %.17g, evals %d) != serial (loss %.17g, evals %d)",
				i, par.Loss, par.Evals, serial.Loss, serial.Evals)
		}
		for sf := range serial.Phases {
			for k := range serial.Phases[sf] {
				if par.Phases[sf][k] != serial.Phases[sf][k] {
					t.Fatalf("run %d: phases diverge at s=%d k=%d", i, sf, k)
				}
			}
		}
	}
	close(stop)
	<-done
}
