package engine

import (
	"fmt"
	"math"
	"sort"

	"surfos/internal/geom"
	"surfos/internal/scene"
	"surfos/internal/surface"
)

// Interference-domain partitioning: surfaces whose signals cannot reach
// each other's service areas are independent scheduling problems. The
// partition is derived from the same wall-penetration model the ray
// tracer uses (scene.SegmentGain), so "cannot affect" means "attenuated
// below a power threshold by the walls between them" — a concrete wall
// at 24 GHz costs ~46 dB, drywall ~9 dB, so rooms behind concrete land
// in disjoint domains while drywall offices stay coupled.
//
// Partitions are memoized exactly like ray traces: keyed on the scene
// pointer plus its geometry revision, so moving a wall recomputes the
// domain structure and an unchanged scene never pays for it twice.

// DefaultMinCouplingDB is the power threshold (dB, relative to a clear
// path) below which two surfaces are considered mutually unreachable.
// -40 dB cleanly separates concrete-divided rooms at mmWave while
// keeping glass- and drywall-separated spaces in one domain.
const DefaultMinCouplingDB = -40.0

// DefaultProbeStep is the region probe-grid spacing (meters) used to
// detect surfaces that share a service area without seeing each other
// directly (e.g. two panels around a corner serving the same room).
const DefaultProbeStep = 1.0

// DomainSpec describes one partition computation.
type DomainSpec struct {
	Scene *scene.Scene
	// Surfaces are the partition nodes. Order defines the index space of
	// the resulting domains; callers should pass a stable order (the
	// hardware manager's sorted-by-ID device list).
	Surfaces []*surface.Surface
	// FreqsHz are the carrier frequencies coupling is evaluated at (the
	// registered AP bands); the most permissive band decides. Empty means
	// no band information — everything lands in one conservative domain.
	FreqsHz []float64
	// MinCouplingDB is the reachability threshold in power dB (0 selects
	// DefaultMinCouplingDB). Two surfaces share a domain when the wall
	// attenuation between them (directly, or via a shared probe point)
	// stays above it.
	MinCouplingDB float64
	// ProbeStep is the region probe-grid spacing in meters (0 selects
	// DefaultProbeStep).
	ProbeStep float64
}

// Partition is the interference-domain decomposition of a surface set:
// Domains holds disjoint index groups into the spec's Surfaces slice,
// each sorted ascending, ordered by smallest member — deterministic for
// a given spec.
type Partition struct {
	// Rev is the scene geometry revision the partition was computed at.
	Rev     uint64
	Domains [][]int
}

// DomainOf returns the domain index owning surface index i (-1 when out
// of range).
func (p *Partition) DomainOf(i int) int {
	for d, members := range p.Domains {
		for _, m := range members {
			if m == i {
				return d
			}
		}
	}
	return -1
}

// partKey identifies a partition computation, mirroring simKey: the
// scene pointer plus revision make stale partitions unreachable the
// moment a wall moves.
type partKey struct {
	scene *scene.Scene
	rev   uint64
	surfs string // "\x00"-joined surface pointer identities
	freqs string
	minDB float64
	step  float64
}

func (sp DomainSpec) key() partKey {
	fs := append([]float64(nil), sp.FreqsHz...)
	sort.Float64s(fs)
	fid := ""
	for _, f := range fs {
		fid += fmt.Sprintf("%g\x00", f)
	}
	return partKey{
		scene: sp.Scene,
		rev:   sp.Scene.Revision(),
		surfs: surfacesID(sp.Surfaces),
		freqs: fid,
		minDB: sp.MinCouplingDB,
		step:  sp.ProbeStep,
	}
}

// Partition returns the memoized interference-domain partition for spec,
// computing it on first use per scene revision.
func (e *Engine) Partition(spec DomainSpec) (*Partition, error) {
	if spec.Scene == nil {
		return nil, fmt.Errorf("engine: partition spec has nil scene")
	}
	if spec.MinCouplingDB == 0 {
		spec.MinCouplingDB = DefaultMinCouplingDB
	}
	if spec.ProbeStep <= 0 {
		spec.ProbeStep = DefaultProbeStep
	}
	k := spec.key()
	e.mu.Lock()
	if p, ok := e.parts[k]; ok {
		e.mu.Unlock()
		e.partHits.Add(1)
		return p, nil
	}
	e.mu.Unlock()
	e.partMisses.Add(1)
	p := spec.compute()
	e.mu.Lock()
	if prior, ok := e.parts[k]; ok {
		p = prior // keep the first build so all callers share one identity
	} else {
		if e.parts == nil {
			e.parts = make(map[partKey]*Partition)
		}
		e.parts[k] = p
	}
	e.mu.Unlock()
	return p, nil
}

// couplingDB is the best-case (max over bands) wall attenuation between
// two points in power dB; -Inf when every band is fully blocked.
func (sp DomainSpec) couplingDB(a, b geom.Vec3) float64 {
	best := math.Inf(-1)
	for _, f := range sp.FreqsHz {
		g := sp.Scene.SegmentGain(a, b, f)
		if g <= 0 {
			continue
		}
		if db := 20 * math.Log10(g); db > best {
			best = db
		}
	}
	return best
}

// probePoints returns the coarse service-area probe grid: every region's
// horizontal grid at receiver-ish height, in region-name order.
func (sp DomainSpec) probePoints() []geom.Vec3 {
	names := make([]string, 0, len(sp.Scene.Regions))
	for n := range sp.Scene.Regions {
		names = append(names, n)
	}
	sort.Strings(names)
	var pts []geom.Vec3
	for _, n := range names {
		r := sp.Scene.Regions[n]
		z := r.Box.Min.Z + 1.2
		if z >= r.Box.Max.Z {
			z = (r.Box.Min.Z + r.Box.Max.Z) / 2
		}
		pts = append(pts, r.GridPoints(sp.ProbeStep, z)...)
	}
	return pts
}

// compute runs the actual union-find over coupling edges.
func (sp DomainSpec) compute() *Partition {
	n := len(sp.Surfaces)
	p := &Partition{Rev: sp.Scene.Revision()}
	if n == 0 {
		return p
	}
	if len(sp.FreqsHz) == 0 {
		// No band information: conservatively one domain (a wrong merge
		// only costs performance; a wrong split costs correctness).
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		p.Domains = [][]int{all}
		return p
	}

	centers := make([]geom.Vec3, n)
	for i, s := range sp.Surfaces {
		centers[i] = s.Panel.Center()
	}
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		for parent[i] != i {
			parent[i] = parent[parent[i]]
			i = parent[i]
		}
		return i
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}

	// Direct edges: panel centers that can still hear each other through
	// the intervening walls.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if sp.couplingDB(centers[i], centers[j]) >= sp.MinCouplingDB {
				union(i, j)
			}
		}
	}
	// Shared-service-area edges: two surfaces that both reach the same
	// probe point interfere there even if they cannot see each other.
	for _, pt := range sp.probePoints() {
		first := -1
		for i := 0; i < n; i++ {
			if sp.couplingDB(centers[i], pt) < sp.MinCouplingDB {
				continue
			}
			if first < 0 {
				first = i
			} else {
				union(first, i)
			}
		}
	}

	byRoot := make(map[int][]int)
	for i := 0; i < n; i++ {
		r := find(i)
		byRoot[r] = append(byRoot[r], i)
	}
	for _, members := range byRoot {
		sort.Ints(members)
		p.Domains = append(p.Domains, members)
	}
	sort.Slice(p.Domains, func(a, b int) bool { return p.Domains[a][0] < p.Domains[b][0] })
	return p
}
