package engine

import (
	"testing"

	"surfos/internal/em"
	"surfos/internal/scene"
	"surfos/internal/surface"
)

// stripSurface deploys one small panel on room i's north mount of a strip.
func stripSurface(t *testing.T, strip *scene.RoomStrip, i int) *surface.Surface {
	t.Helper()
	pitch := em.Wavelength(em.Band24G) / 2
	mount := strip.Mounts[scene.RoomMountNorth(i)]
	s, err := surface.New(scene.RoomMountNorth(i), mount.Panel(8*pitch+0.02, 8*pitch+0.02),
		surface.Layout{Rows: 8, Cols: 8, PitchU: pitch, PitchV: pitch},
		surface.Reflective, em.CosinePattern{Q: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPartitionApartmentSingleDomain(t *testing.T) {
	apt := scene.NewApartment()
	pitch := em.Wavelength(em.Band24G) / 2
	var surfs []*surface.Surface
	for _, m := range []string{scene.MountEastWall, scene.MountNorthWall} {
		mount := apt.Mounts[m]
		s, err := surface.New(m, mount.Panel(8*pitch+0.02, 8*pitch+0.02),
			surface.Layout{Rows: 8, Cols: 8, PitchU: pitch, PitchV: pitch},
			surface.Reflective, em.CosinePattern{Q: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		surfs = append(surfs, s)
	}
	eng := New(Options{Workers: 1})
	p, err := eng.Partition(DomainSpec{Scene: apt.Scene, Surfaces: surfs, FreqsHz: []float64{em.Band24G}})
	if err != nil {
		t.Fatal(err)
	}
	// Both panels share the bedroom: drywall attenuation at 24 GHz is far
	// above the coupling threshold, so the apartment is one domain.
	if len(p.Domains) != 1 || len(p.Domains[0]) != 2 {
		t.Fatalf("apartment domains = %v, want one domain of 2", p.Domains)
	}
}

func TestPartitionRoomStripSplitsPerRoom(t *testing.T) {
	strip := scene.NewRoomStrip(3)
	surfs := []*surface.Surface{
		stripSurface(t, strip, 0), stripSurface(t, strip, 1), stripSurface(t, strip, 2),
	}
	eng := New(Options{Workers: 1})
	spec := DomainSpec{Scene: strip.Scene, Surfaces: surfs, FreqsHz: []float64{em.Band24G}}
	p, err := eng.Partition(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Domains) != 3 {
		t.Fatalf("strip domains = %v, want 3 singleton domains", p.Domains)
	}
	// Deterministic ordering: domain i holds surface i (sorted by smallest
	// member index).
	for i, d := range p.Domains {
		if len(d) != 1 || d[0] != i {
			t.Fatalf("domain %d = %v, want [%d]", i, d, i)
		}
	}
	for i := range surfs {
		if got := p.DomainOf(i); got != i {
			t.Fatalf("DomainOf(%d) = %d, want %d", i, got, i)
		}
	}

	// Second call with an identical spec is a cache hit, keyed on the
	// scene revision.
	if _, err := eng.Partition(spec); err != nil {
		t.Fatal(err)
	}
	if st := eng.CacheStats(); st.PartHits != 1 || st.PartMisses != 1 {
		t.Fatalf("partition cache hits=%d misses=%d, want 1/1", st.PartHits, st.PartMisses)
	}
}

func TestPartitionWallRemovalMergesDomains(t *testing.T) {
	strip := scene.NewRoomStrip(2)
	surfs := []*surface.Surface{stripSurface(t, strip, 0), stripSurface(t, strip, 1)}
	eng := New(Options{Workers: 1})
	spec := DomainSpec{Scene: strip.Scene, Surfaces: surfs, FreqsHz: []float64{em.Band24G}}

	p, err := eng.Partition(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Domains) != 2 {
		t.Fatalf("pre-removal domains = %v, want 2", p.Domains)
	}

	// Removing the divider bumps the scene revision; the stale partition
	// must not be served and the rooms must merge.
	if err := strip.RemoveWall(scene.RoomDivider(0)); err != nil {
		t.Fatal(err)
	}
	p2, err := eng.Partition(spec)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Rev == p.Rev {
		t.Fatal("partition revision did not advance after RemoveWall")
	}
	if len(p2.Domains) != 1 || len(p2.Domains[0]) != 2 {
		t.Fatalf("post-removal domains = %v, want one merged domain", p2.Domains)
	}
}

func TestPartitionEmptyFreqsIsConservative(t *testing.T) {
	strip := scene.NewRoomStrip(2)
	surfs := []*surface.Surface{stripSurface(t, strip, 0), stripSurface(t, strip, 1)}
	eng := New(Options{Workers: 1})
	// Without operating frequencies there is no coupling model to trust;
	// the partition must collapse to one conservative domain.
	p, err := eng.Partition(DomainSpec{Scene: strip.Scene, Surfaces: surfs})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Domains) != 1 {
		t.Fatalf("freq-less domains = %v, want one conservative domain", p.Domains)
	}
}

func TestPartitionNoSurfaces(t *testing.T) {
	apt := scene.NewApartment()
	eng := New(Options{Workers: 1})
	p, err := eng.Partition(DomainSpec{Scene: apt.Scene, FreqsHz: []float64{em.Band24G}})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Domains) != 0 {
		t.Fatalf("empty inventory domains = %v, want none", p.Domains)
	}
	if p.DomainOf(0) != -1 {
		t.Fatal("DomainOf of an unknown surface should be -1")
	}
}
