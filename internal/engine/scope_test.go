package engine

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
)

// TestScopeWidthAndRelease: a scope takes the engine's spare tokens and
// returns them on Release; while held, sibling scopes see only what's left.
func TestScopeWidthAndRelease(t *testing.T) {
	eng := New(Options{Workers: 4})
	a := eng.Acquire(0)
	if a.Workers() != 4 {
		t.Fatalf("first scope width %d, want 4", a.Workers())
	}
	b := eng.Acquire(0)
	if b.Workers() != 1 {
		t.Errorf("second scope width %d, want 1 (tokens all loaned)", b.Workers())
	}
	a.Release()
	a.Release() // idempotent: must not double-return tokens
	c := eng.Acquire(2)
	if c.Workers() != 2 {
		t.Errorf("capped scope width %d, want 2", c.Workers())
	}
	d := eng.Acquire(0)
	if d.Workers() != 3 {
		t.Errorf("remainder scope width %d, want 3", d.Workers())
	}
	b.Release()
	c.Release()
	d.Release()
	if e := eng.Acquire(0); e.Workers() != 4 {
		t.Errorf("post-release scope width %d, want 4", e.Workers())
	} else {
		e.Release()
	}
}

// TestScopeForEachSlotExclusive: invocations sharing a slot must never
// overlap, slot 0 runs on the calling goroutine, and every index runs
// exactly once.
func TestScopeForEachSlotExclusive(t *testing.T) {
	eng := New(Options{Workers: 8})
	sc := eng.Acquire(0)
	defer sc.Release()

	busy := make([]atomic.Int32, sc.Workers())
	var ran [512]atomic.Int32
	err := sc.ForEach(context.Background(), len(ran), func(slot, i int) {
		if slot < 0 || slot >= sc.Workers() {
			t.Errorf("slot %d out of range [0,%d)", slot, sc.Workers())
		}
		if busy[slot].Add(1) != 1 {
			t.Errorf("slot %d entered concurrently", slot)
		}
		ran[i].Add(1)
		busy[slot].Add(-1)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ran {
		if n := ran[i].Load(); n != 1 {
			t.Fatalf("index %d ran %d times", i, n)
		}
	}
}

// TestNestedForEachSharesBudget: an inner fan-out launched from inside an
// outer fan-out must not oversubscribe — total concurrently running
// workers stays within the engine width — and must complete (no deadlock
// from pool re-entrancy).
func TestNestedForEachSharesBudget(t *testing.T) {
	const width = 4
	eng := New(Options{Workers: width})
	var cur, peak atomic.Int32
	note := func() {
		n := cur.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
	}
	err := eng.ForEach(context.Background(), 8, func(i int) {
		inner := make([]int, 16)
		_ = eng.ForEach(context.Background(), len(inner), func(j int) {
			note()
			for k := 0; k < 1000; k++ { // widen the overlap window
				_ = k * k
			}
			inner[j] = j
			cur.Add(-1)
		})
		for j, v := range inner {
			if v != j {
				t.Errorf("outer %d inner %d: got %d", i, j, v)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > width {
		t.Errorf("peak concurrent workers %d exceeds engine width %d", p, width)
	}
}

// TestScopeSerialWhenTokensHeld: with every token loaned out, a sibling
// scope's ForEach degrades to serial inline execution and still completes.
func TestScopeSerialWhenTokensHeld(t *testing.T) {
	eng := New(Options{Workers: 4})
	hold := eng.Acquire(0)
	defer hold.Release()

	sc := eng.Acquire(0)
	defer sc.Release()
	if sc.Workers() != 1 {
		t.Fatalf("scope width %d, want 1", sc.Workers())
	}
	var mu sync.Mutex
	order := make([]int, 0, 10)
	if err := sc.ForEach(context.Background(), 10, func(slot, i int) {
		if slot != 0 {
			t.Errorf("serial scope used slot %d", slot)
		}
		mu.Lock()
		order = append(order, i)
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("serial scope ran out of order: %v", order)
		}
	}
}
