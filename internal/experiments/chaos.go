package experiments

import (
	"context"
	"fmt"
	"strings"

	"surfos/internal/driver"
	"surfos/internal/em"
	"surfos/internal/geom"
	"surfos/internal/hwmgr"
	"surfos/internal/orchestrator"
	"surfos/internal/rfsim"
	"surfos/internal/scene"
	"surfos/internal/surface"
	"surfos/internal/telemetry"
)

// ChaosPhase is one row of the chaos experiment's timeline: the link
// task's achieved SNR and placement at one point of the kill/revive cycle.
type ChaosPhase struct {
	Label    string
	SNRdB    float64
	Surfaces []string
	Strategy string
}

// ChaosResult is the control-plane robustness experiment: a link task
// served by two surfaces, one of which is killed mid-task and later
// revived. The health tracker notices the death on the next heartbeat,
// the event bus carries the transition, and the orchestrator re-plans —
// first onto the surviving surface alone, then back onto both. The
// timeline records the achieved SNR before the fault, during it (after
// self-healing), and after recovery.
type ChaosResult struct {
	Profile Profile
	Victim  string
	// Before/During/After are the healthy, post-death, and post-recovery
	// snapshots of the task.
	Before, During, After ChaosPhase
	// Events is the ordered device/replan event trail observed on the bus.
	Events []string
}

// chaosParams scales the experiment.
type chaosParams struct {
	rows, cols int
	iters      int
}

func chaosFor(p Profile) chaosParams {
	if p == Full {
		return chaosParams{rows: 24, cols: 24, iters: 150}
	}
	return chaosParams{rows: 16, cols: 16, iters: 60}
}

// chaosDeploy mounts one NR-Surface panel and returns its driver.
func chaosDeploy(apt *scene.Apartment, hw *hwmgr.Manager, id, mount string, rows, cols int) (*driver.Driver, error) {
	spec, err := driver.Lookup(driver.ModelNRSurface)
	if err != nil {
		return nil, err
	}
	pitch := em.Wavelength(spec.FreqLowHz+(spec.FreqHighHz-spec.FreqLowHz)/2) / 2
	m := apt.Mounts[mount]
	panel := m.Panel(float64(cols)*pitch+0.02, float64(rows)*pitch+0.02)
	s, err := surface.New(id, panel, surface.Layout{Rows: rows, Cols: cols, PitchU: pitch, PitchV: pitch}, spec.OpMode, nil)
	if err != nil {
		return nil, err
	}
	d, err := driver.New(spec, s)
	if err != nil {
		return nil, err
	}
	if err := hw.AddSurface(id, mount, d); err != nil {
		return nil, err
	}
	return d, nil
}

// RunChaos executes the kill/revive cycle. Everything is synchronous and
// seeded — heartbeats are driven by explicit ProbeAll calls and bus events
// are drained in order — so the timeline (and its rendering) is
// deterministic and golden-checkable.
func RunChaos(ctx context.Context, p Profile) (*ChaosResult, error) {
	par := chaosFor(p)
	apt := scene.NewApartment()
	hw := hwmgr.New()
	east, err := chaosDeploy(apt, hw, "east", scene.MountEastWall, par.rows, par.cols)
	if err != nil {
		return nil, err
	}
	if _, err := chaosDeploy(apt, hw, "north", scene.MountNorthWall, par.rows, par.cols); err != nil {
		return nil, err
	}
	if err := hw.AddAP(&hwmgr.AccessPoint{
		ID: "ap0", Pos: apt.AP, FreqHz: 24e9,
		Budget: rfsim.DefaultBudget(), Antennas: 4,
	}); err != nil {
		return nil, err
	}
	orch, err := orchestrator.New(apt.Scene, hw, orchestrator.Options{
		OptIters: par.iters, GridStep: 1.2,
	})
	if err != nil {
		return nil, err
	}

	bus := telemetry.NewEventBus()
	orch.SetEventBus(bus)
	hw.SetEventBus(bus)
	ch, unsub := bus.Subscribe(256)
	defer unsub()

	out := &ChaosResult{Profile: p, Victim: "east"}
	// heal drains the pending bus events in order, feeding device
	// transitions to the self-healing handler exactly as the daemon's
	// event loop would — but synchronously.
	heal := func() error {
		for {
			select {
			case ev := <-ch:
				switch ev.State {
				case telemetry.DeviceDead, telemetry.DeviceDegraded,
					telemetry.DeviceRecovered, telemetry.Replanned:
					out.Events = append(out.Events, ev.State)
				}
				if err := orch.HandleDeviceEvent(ctx, ev); err != nil {
					return err
				}
			default:
				return nil
			}
		}
	}

	task, err := orch.EnhanceLink(ctx, orchestrator.LinkGoal{
		Endpoint: "tv", Pos: geom.V(2.5, 5.5, scene.EvalHeight),
	}, 1)
	if err != nil {
		return nil, err
	}
	if err := orch.Reconcile(ctx); err != nil {
		return nil, err
	}
	snapshot := func(label string) (ChaosPhase, error) {
		got, err := orch.Task(task.ID)
		if err != nil {
			return ChaosPhase{}, err
		}
		if got.State != orchestrator.TaskRunning || got.Result == nil {
			return ChaosPhase{}, fmt.Errorf("experiments: task %s at %q (err %v)", got.State, label, got.Err)
		}
		return ChaosPhase{
			Label: label, SNRdB: got.Result.Metric,
			Surfaces: got.Result.Surfaces, Strategy: got.Result.Strategy,
		}, nil
	}
	if out.Before, err = snapshot("before fault"); err != nil {
		return nil, err
	}

	// Kill the east surface: the next heartbeat marks it dead, and the
	// event-driven re-plan migrates the task onto the survivor.
	fm := driver.NewFaultModel(1)
	fm.SetDead(true)
	east.SetFaults(fm)
	hw.ProbeAll()
	if err := heal(); err != nil {
		return nil, err
	}
	if out.During, err = snapshot("during fault"); err != nil {
		return nil, err
	}

	// Revive it: recovery re-includes the surface on the next re-plan.
	fm.SetDead(false)
	hw.ProbeAll()
	if err := heal(); err != nil {
		return nil, err
	}
	if out.After, err = snapshot("after recovery"); err != nil {
		return nil, err
	}
	return out, nil
}

// ShapeCheck verifies the robustness claims: the task survives the whole
// cycle, healing costs SNR (one surface cannot beat two), and recovery
// restores the pre-fault quality. Returns "" when all hold.
func (r *ChaosResult) ShapeCheck() string {
	var probs []string
	if len(r.Before.Surfaces) < 2 {
		probs = append(probs, fmt.Sprintf("pre-fault plan uses %d surface(s), want both", len(r.Before.Surfaces)))
	}
	for _, s := range r.During.Surfaces {
		if s == r.Victim {
			probs = append(probs, "dead surface still scheduled during the fault")
		}
	}
	if r.During.SNRdB > r.Before.SNRdB+0.1 {
		probs = append(probs, fmt.Sprintf("SNR during fault %.2f dB beats pre-fault %.2f dB", r.During.SNRdB, r.Before.SNRdB))
	}
	if r.After.SNRdB < r.Before.SNRdB-0.5 {
		probs = append(probs, fmt.Sprintf("post-recovery SNR %.2f dB below pre-fault %.2f dB", r.After.SNRdB, r.Before.SNRdB))
	}
	var dead, replanned, recovered bool
	for _, e := range r.Events {
		switch e {
		case telemetry.DeviceDead:
			dead = true
		case telemetry.Replanned:
			replanned = true
		case telemetry.DeviceRecovered:
			recovered = true
		}
	}
	if !dead || !replanned || !recovered {
		probs = append(probs, fmt.Sprintf("event trail incomplete: %v", r.Events))
	}
	return strings.Join(probs, "; ")
}

// Render prints the kill/revive timeline.
func (r *ChaosResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Chaos: link task survives the death and recovery of surface %q (%s profile)\n\n", r.Victim, r.Profile)
	t := &Table{Header: []string{"phase", "SNR", "strategy", "surfaces"}}
	for _, ph := range []ChaosPhase{r.Before, r.During, r.After} {
		t.Add(ph.Label, fmt.Sprintf("%.2f dB", ph.SNRdB), ph.Strategy, strings.Join(ph.Surfaces, "+"))
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "\nevent trail: %s\n", strings.Join(r.Events, " -> "))
	if s := r.ShapeCheck(); s != "" {
		fmt.Fprintf(&b, "\nSHAPE CHECK FAILED: %s\n", s)
	} else {
		b.WriteString("\nshape check: task ran throughout; healing costs SNR, recovery restores it\n")
	}
	return b.String()
}
