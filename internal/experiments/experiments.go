// Package experiments regenerates every table and figure of the paper's
// evaluation (§4): Table 1 (the hardware catalog), Figure 2 (the
// coverage/localization conflict heatmaps), Figure 4 (heterogeneous
// surface collaboration and its cost/size trade-offs), Figure 5 (joint
// multitask optimization CDFs), and Figure 6 (user demand translation).
//
// Each experiment has a constructor taking a Profile (Quick for CI-speed
// runs, Full for paper-scale fidelity) and returns a result struct with a
// Render method producing the rows/series the paper reports.
package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Profile scales an experiment's workload.
type Profile int

// Profiles.
const (
	// Quick shrinks grids and surfaces so the whole suite runs in seconds;
	// shapes (who wins, crossovers) are preserved.
	Quick Profile = iota
	// Full runs at paper-like fidelity (minutes).
	Full
)

// String implements fmt.Stringer.
func (p Profile) String() string {
	if p == Full {
		return "full"
	}
	return "quick"
}

// Table is a simple aligned-text table builder for experiment renderings.
type Table struct {
	Header []string
	Rows   [][]string
}

// Add appends a row.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders with aligned columns.
func (t *Table) String() string {
	width := make([]int, len(t.Header))
	for i, h := range t.Header {
		width[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

// Series is a named (x, y) sequence for figure reproduction.
type Series struct {
	Name string
	X, Y []float64
}

// CDFOf builds a CDF series from raw samples.
func CDFOf(name string, samples []float64) Series {
	xs := append([]float64(nil), samples...)
	sort.Float64s(xs)
	ys := make([]float64, len(xs))
	for i := range xs {
		ys[i] = float64(i+1) / float64(len(xs))
	}
	return Series{Name: name, X: xs, Y: ys}
}

// At returns the interpolated y at x (series must be sorted by X).
func (s Series) At(x float64) float64 {
	if len(s.X) == 0 {
		return math.NaN()
	}
	if x <= s.X[0] {
		return s.Y[0]
	}
	if x >= s.X[len(s.X)-1] {
		return s.Y[len(s.Y)-1]
	}
	i := sort.SearchFloat64s(s.X, x)
	t := (x - s.X[i-1]) / (s.X[i] - s.X[i-1])
	return s.Y[i-1] + t*(s.Y[i]-s.Y[i-1])
}

// Quantile returns the x at cumulative fraction q of a CDF series.
func (s Series) Quantile(q float64) float64 {
	if len(s.X) == 0 {
		return math.NaN()
	}
	for i, y := range s.Y {
		if y >= q {
			return s.X[i]
		}
	}
	return s.X[len(s.X)-1]
}

// renderSeries prints series side by side at representative quantiles.
func renderSeries(title string, series []Series, quantiles []float64, unit string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	t := &Table{Header: []string{"quantile"}}
	for _, s := range series {
		t.Header = append(t.Header, s.Name)
	}
	for _, q := range quantiles {
		row := []string{fmt.Sprintf("p%02.0f", q*100)}
		for _, s := range series {
			row = append(row, fmt.Sprintf("%.2f %s", s.Quantile(q), unit))
		}
		t.Add(row...)
	}
	b.WriteString(t.String())
	return b.String()
}

// Heatmap is a 2D scalar field over a horizontal grid.
type Heatmap struct {
	X0, Y0, Step float64
	Cols, Rows   int
	// Values in row-major order (y-major: v[r*Cols+c]).
	Values []float64
	Unit   string
}

// At returns the value at cell (r, c).
func (h *Heatmap) At(r, c int) float64 { return h.Values[r*h.Cols+c] }

// Stats returns min, median, max over finite values.
func (h *Heatmap) Stats() (min, med, max float64) {
	clean := make([]float64, 0, len(h.Values))
	for _, v := range h.Values {
		if !math.IsNaN(v) && !math.IsInf(v, 0) {
			clean = append(clean, v)
		}
	}
	if len(clean) == 0 {
		return math.NaN(), math.NaN(), math.NaN()
	}
	sort.Float64s(clean)
	return clean[0], clean[len(clean)/2], clean[len(clean)-1]
}

// Render draws the heatmap as ASCII art with a 10-glyph ramp, low to high.
func (h *Heatmap) Render() string {
	const ramp = " .:-=+*#%@"
	min, _, max := h.Stats()
	span := max - min
	if span == 0 {
		span = 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, "heatmap %dx%d (%s): min=%.1f max=%.1f\n", h.Cols, h.Rows, h.Unit, min, max)
	for r := h.Rows - 1; r >= 0; r-- { // north up
		for c := 0; c < h.Cols; c++ {
			v := h.At(r, c)
			if math.IsNaN(v) || math.IsInf(v, 0) {
				b.WriteByte('?')
				continue
			}
			idx := int((v - min) / span * float64(len(ramp)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(ramp) {
				idx = len(ramp) - 1
			}
			b.WriteByte(ramp[idx])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
