package experiments

import (
	"context"
	"math"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := &Table{Header: []string{"a", "long-header"}}
	tb.Add("x", "1")
	tb.Add("longer-cell", "2")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d", len(lines))
	}
	// All lines aligned to the same width.
	if len(lines[0]) != len(lines[2]) {
		t.Errorf("misaligned table:\n%s", out)
	}
}

func TestSeriesCDFAndQuantiles(t *testing.T) {
	s := CDFOf("x", []float64{3, 1, 2, 4})
	if s.X[0] != 1 || s.X[3] != 4 {
		t.Errorf("cdf not sorted: %v", s.X)
	}
	if s.Y[3] != 1 {
		t.Errorf("cdf must end at 1: %v", s.Y)
	}
	if got := s.Quantile(0.5); got != 2 {
		t.Errorf("q50 = %v", got)
	}
	if got := s.Quantile(1); got != 4 {
		t.Errorf("q100 = %v", got)
	}
	// At interpolates.
	if got := s.At(2.5); got <= s.At(2) || got >= s.At(3) {
		t.Errorf("At not monotone: %v", got)
	}
	if got := s.At(-10); got != s.Y[0] {
		t.Errorf("below-range At = %v", got)
	}
	if got := s.At(10); got != 1 {
		t.Errorf("above-range At = %v", got)
	}
	empty := Series{}
	if !math.IsNaN(empty.At(1)) || !math.IsNaN(empty.Quantile(0.5)) {
		t.Error("empty series should yield NaN")
	}
}

func TestHeatmapStatsAndRender(t *testing.T) {
	h := &Heatmap{Cols: 2, Rows: 2, Values: []float64{1, 2, 3, math.NaN()}, Unit: "x"}
	min, med, max := h.Stats()
	if min != 1 || max != 3 || med != 2 {
		t.Errorf("stats = %v %v %v", min, med, max)
	}
	out := h.Render()
	if !strings.Contains(out, "?") {
		t.Error("NaN cell should render as ?")
	}
	if h.At(1, 0) != 3 {
		t.Errorf("At(1,0) = %v", h.At(1, 0))
	}
	// Constant heatmap doesn't divide by zero.
	hc := &Heatmap{Cols: 1, Rows: 1, Values: []float64{5}}
	_ = hc.Render()
}

func TestTable1(t *testing.T) {
	r := RunTable1()
	if len(r.Specs) != 13 {
		t.Fatalf("table 1 has %d designs, want 13", len(r.Specs))
	}
	out := r.Render()
	for _, model := range []string{"LAIA", "RFocus", "LLAMA", "LAVA", "ScatterMIMO",
		"RFlens", "Diffract", "Scrolls", "mmWall", "NR-Surface", "PMSat", "MilliMirror", "AutoMS"} {
		if !strings.Contains(out, model) {
			t.Errorf("render missing %s", model)
		}
	}
	// The paper's notable cells.
	if !strings.Contains(out, "0.9-6 GHz") {
		t.Error("Scrolls band not rendered in paper notation")
	}
	if !strings.Contains(out, "column-wise") || !strings.Contains(out, "row-wise") {
		t.Error("granularity annotations missing")
	}
}

func TestFig6ReproducesPaper(t *testing.T) {
	r := RunFig6()
	if d := r.PaperParity(); d != "" {
		t.Fatalf("figure 6 parity: %s", d)
	}
	for _, c := range r.Cases {
		if c.Err != nil {
			t.Errorf("utterance %q failed: %v", c.Utterance, c.Err)
		}
	}
	if !strings.Contains(r.Render(), "paper parity: both Figure 6 examples reproduce exactly") {
		t.Error("render does not confirm parity")
	}
}

func TestFig2ConflictShape(t *testing.T) {
	r, err := RunFig2(context.Background(), Quick)
	if err != nil {
		t.Fatal(err)
	}
	if s := r.ShapeCheck(); s != "" {
		t.Errorf("fig2 shape: %s", s)
	}
	if r.Coverage.Cols*r.Coverage.Rows != len(r.Coverage.Values) {
		t.Error("coverage heatmap dims inconsistent")
	}
	if r.LocErr.Cols != r.Coverage.Cols || r.LocErr.Rows != r.Coverage.Rows {
		t.Error("heatmaps not aligned")
	}
	// Coverage must actually reach the room: max RSS well above the min.
	min, _, max := r.Coverage.Stats()
	if max-min < 10 {
		t.Errorf("coverage heatmap dynamic range only %.1f dB", max-min)
	}
}

func TestFig4HybridShape(t *testing.T) {
	r, err := RunFig4(context.Background(), Quick)
	if err != nil {
		t.Fatal(err)
	}
	if s := r.ShapeCheck(); s != "" {
		t.Errorf("fig4 shape: %s", s)
	}
	// Sweeps are monotone in cost and size.
	for _, pts := range [][]Fig4Point{r.Passive, r.Programmable, r.Hybrid} {
		for i := 1; i < len(pts); i++ {
			if pts[i].CostUSD <= pts[i-1].CostUSD || pts[i].AreaM2 <= pts[i-1].AreaM2 {
				t.Errorf("sweep not monotone: %+v -> %+v", pts[i-1], pts[i])
			}
		}
	}
	// Surfaces help: the best of every approach clearly beats baseline.
	for _, pts := range [][]Fig4Point{r.Passive, r.Programmable, r.Hybrid} {
		best := math.Inf(-1)
		for _, p := range pts {
			if p.MedianSNRdB > best {
				best = p.MedianSNRdB
			}
		}
		if best < r.BaselineSNR+8 {
			t.Errorf("approach best %.1f dB does not clearly beat baseline %.1f dB", best, r.BaselineSNR)
		}
	}
	if !strings.Contains(r.Render(), "shape check:") {
		t.Error("render missing shape check line")
	}
}

func TestChaosShape(t *testing.T) {
	r, err := RunChaos(context.Background(), Quick)
	if err != nil {
		t.Fatal(err)
	}
	if s := r.ShapeCheck(); s != "" {
		t.Errorf("chaos shape: %s", s)
	}
	// The victim leaves the plan during the fault and returns afterwards.
	if len(r.During.Surfaces) != 1 || r.During.Surfaces[0] == r.Victim {
		t.Errorf("during-fault surfaces = %v", r.During.Surfaces)
	}
	if len(r.After.Surfaces) != 2 {
		t.Errorf("post-recovery surfaces = %v", r.After.Surfaces)
	}
	if !strings.Contains(r.Render(), "event trail: ") {
		t.Error("render missing event trail")
	}
}

func TestFig5MultitaskShape(t *testing.T) {
	r, err := RunFig5(context.Background(), Quick)
	if err != nil {
		t.Fatal(err)
	}
	if s := r.ShapeCheck(); s != "" {
		t.Errorf("fig5 shape: %s", s)
	}
	for _, m := range []map[string]Series{r.LocErr, r.SNR} {
		for name, s := range m {
			if len(s.X) != r.Locations {
				t.Errorf("%s series has %d samples for %d locations", name, len(s.X), r.Locations)
			}
			if s.Y[len(s.Y)-1] != 1 {
				t.Errorf("%s CDF does not end at 1", name)
			}
		}
	}
	// The conflict: the coverage config localizes clearly worse than the
	// sensing config.
	if r.LocErr[CfgCoverageOpt].Quantile(0.5) < r.LocErr[CfgLocOpt].Quantile(0.5)*1.2 {
		t.Error("coverage-opt should localize worse than localization-opt")
	}
}

func TestRestartShape(t *testing.T) {
	r, err := RunRestart(context.Background(), Quick)
	if err != nil {
		t.Fatal(err)
	}
	if s := r.ShapeCheck(); s != "" {
		t.Errorf("restart shape: %s", s)
	}
	// The journal saw every durable record before the simulated crash.
	if r.WALSeq == 0 || r.RecoveredLive == 0 {
		t.Errorf("nothing journaled: seq=%d live=%d", r.WALSeq, r.RecoveredLive)
	}
	out := r.Render()
	if !strings.Contains(out, "torn half-record") {
		t.Error("render missing the hard-kill summary")
	}
	// Temp state-dir paths must never leak into the golden output.
	if strings.Contains(out, "/tmp") || strings.Contains(out, "surfos-restart-") {
		t.Errorf("render leaks a path:\n%s", out)
	}
}

func TestFailoverShape(t *testing.T) {
	r, err := RunFailover(context.Background(), Quick)
	if err != nil {
		t.Fatal(err)
	}
	if s := r.ShapeCheck(); s != "" {
		t.Errorf("failover shape: %s", s)
	}
	if r.WALSeq == 0 || r.FollowerApplied != r.WALSeq {
		t.Errorf("replication did not keep up: primary seq=%d follower=%d", r.WALSeq, r.FollowerApplied)
	}
	if !r.StaleRejected {
		t.Error("resumed stale primary was not fenced")
	}
	if !r.PlansIdentical {
		t.Error("promoted plans differ from the dead primary's reboot")
	}
	out := r.Render()
	if !strings.Contains(out, "promoted") || !strings.Contains(out, "fenced") {
		t.Error("render missing the promotion/fencing summary")
	}
	// Temp state-dir paths must never leak into the golden output.
	if strings.Contains(out, "/tmp") || strings.Contains(out, "surfos-failover-") {
		t.Errorf("render leaks a path:\n%s", out)
	}
}

func TestWatchersShape(t *testing.T) {
	r, err := RunWatchers(context.Background(), Quick)
	if err != nil {
		t.Fatal(err)
	}
	if s := r.ShapeCheck(); s != "" {
		t.Errorf("watchers shape: %s", s)
	}
	if r.Streams != r.Conns*r.StreamsPerConn {
		t.Errorf("stream accounting: %d != %d*%d", r.Streams, r.Conns, r.StreamsPerConn)
	}
	out := r.Render()
	if !strings.Contains(out, "multiplexed streams") || !strings.Contains(out, "shape check:") {
		t.Errorf("render incomplete:\n%s", out)
	}
}
