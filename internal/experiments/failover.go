package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"strings"
	"sync"
	"time"

	"surfos/internal/ctrlproto"
	"surfos/internal/geom"
	"surfos/internal/orchestrator"
	"surfos/internal/scene"
	"surfos/internal/store"
)

// failoverTTL is the experiment's lease. Time is virtual (the follower
// runs on an injected clock), so the value only shapes the rendered
// numbers, never the run time.
const failoverTTL = 3 * time.Second

// failoverTick is the virtual lease-poll cadence after the primary dies:
// a tenth of the TTL, mirroring the daemon's heartbeatEvery fraction.
const failoverTick = failoverTTL / 10

// FailoverResult is the replicated-control-plane chaos experiment: a
// primary journals the restart experiment's task mix while shipping
// every WAL record to a warm standby over the real replication wire
// (snapshot bootstrap, append batches, lease heartbeats), then dies
// hard. The standby's lease expires in virtual time, it promotes —
// bumping the epoch durably, which fences the resumed stale primary —
// and re-admits the live tasks through boot recovery's exact path. The
// promoted plane's plans must be byte-identical to what the dead
// primary's own reboot would have computed.
type FailoverResult struct {
	Profile Profile
	// Before is the primary's task table at death; After is the promoted
	// standby's after its recovery reconcile.
	Before, After []RestartRow
	// WALSeq is the primary's last durable sequence; FollowerApplied is
	// the standby's applied sequence at that moment (equal = zero lag).
	WALSeq, FollowerApplied uint64
	// EpochBefore is the dead primary's leadership term, EpochAfter the
	// promoted standby's (must be exactly one higher).
	EpochBefore, EpochAfter uint64
	// PromoteMillis is the virtual time from the last heartbeat to the
	// promotion decision; LeaseTTLMillis the lease it was judged against.
	PromoteMillis, LeaseTTLMillis float64
	// StaleRejected reports that the resumed old primary's append at its
	// stale epoch was refused over the wire with the typed fencing error.
	StaleRejected bool
	// PlansIdentical reports that the promoted standby's scheduling plans
	// serialize byte-identically to a ghost plane rebooted from the dead
	// primary's own state directory.
	PlansIdentical bool
	// RecoveredLive is how many live tasks the replica handed promotion.
	RecoveredLive int
	// IdleID and EndedID name the parked and terminated tasks.
	IdleID, EndedID int
}

// vclock is the follower's injected time source.
type vclock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *vclock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *vclock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// RunFailover executes the kill/promote cycle against two throwaway
// state directories joined by an in-memory replication wire. Everything
// is synchronous and the lease runs on a virtual clock, so the timeline
// is deterministic and golden-checkable.
func RunFailover(ctx context.Context, p Profile) (*FailoverResult, error) {
	pdir, err := os.MkdirTemp("", "surfos-failover-p-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(pdir)
	sdir, err := os.MkdirTemp("", "surfos-failover-s-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(sdir)

	out := &FailoverResult{Profile: p, LeaseTTLMillis: float64(failoverTTL / time.Millisecond)}

	// --- primary: journal + leadership epoch ---
	pl, err := newRestartPlane(p)
	if err != nil {
		return nil, err
	}
	defer pl.unsub()
	st, state, err := store.Open(pdir)
	if err != nil {
		return nil, err
	}
	journal := store.NewJournal(st, state)
	if _, err := journal.BecomeLeader("primary", failoverTTL); err != nil {
		return nil, err
	}

	// --- standby: warm store on a virtual clock, lease armed ---
	fol, err := store.OpenFollower(sdir)
	if err != nil {
		return nil, err
	}
	vc := &vclock{t: time.Unix(1_700_000_000, 0)}
	fol.SetClock(vc.now)
	fol.StartLease(failoverTTL)

	// --- replication wire: the real framed protocol over an in-memory
	// pipe, served exactly as the daemon's control agent routes it ---
	srvConn, cliConn := net.Pipe()
	defer srvConn.Close()
	recv := &ctrlproto.ReplReceiver{F: fol}
	go func() {
		for {
			f, err := ctrlproto.ReadFrame(srvConn)
			if err != nil {
				return
			}
			if err := ctrlproto.WriteFrame(srvConn, recv.Handle(f)); err != nil {
				return
			}
		}
	}()
	sender := ctrlproto.NewReplSender(cliConn)
	defer sender.Close()

	var pmu sync.Mutex
	var pending []store.Record
	epoch, seq, snap, detach, err := journal.AttachReplica(func(rec store.Record) {
		pmu.Lock()
		pending = append(pending, rec)
		pmu.Unlock()
	})
	if err != nil {
		return nil, err
	}
	defer detach()
	out.EpochBefore = epoch
	if _, err := sender.Snapshot(epoch, seq, snap); err != nil {
		return nil, err
	}
	ship := func() error {
		pmu.Lock()
		batch := pending
		pending = nil
		pmu.Unlock()
		if len(batch) == 0 {
			return nil
		}
		_, err := sender.Append(epoch, batch)
		return err
	}

	// --- workload: the restart experiment's mix (two running, one idled,
	// one ended), every record shipped as it is journaled ---
	if _, err := pl.orch.EnhanceLink(ctx, orchestrator.LinkGoal{
		Endpoint: "tv", Pos: geom.V(2.5, 5.5, scene.EvalHeight),
	}, 1); err != nil {
		return nil, err
	}
	if _, err := pl.orch.OptimizeCoverage(ctx, orchestrator.CoverageGoal{
		Region: scene.RegionTargetRoom,
	}, 1); err != nil {
		return nil, err
	}
	idleTask, err := pl.orch.EnhanceLink(ctx, orchestrator.LinkGoal{
		Endpoint: "laptop", Pos: geom.V(3.0, 5.0, scene.EvalHeight),
	}, 1)
	if err != nil {
		return nil, err
	}
	endedTask, err := pl.orch.EnhanceLink(ctx, orchestrator.LinkGoal{
		Endpoint: "phone", Pos: geom.V(5.0, 6.0, scene.EvalHeight),
	}, 2)
	if err != nil {
		return nil, err
	}
	out.IdleID, out.EndedID = idleTask.ID, endedTask.ID
	if err := pl.orch.Reconcile(ctx); err != nil {
		return nil, err
	}
	if err := pl.orch.SetIdle(idleTask.ID, true); err != nil {
		return nil, err
	}
	if err := pl.orch.EndTask(endedTask.ID); err != nil {
		return nil, err
	}
	if err := pl.orch.Reconcile(ctx); err != nil {
		return nil, err
	}
	if err := pl.drainInto(journal); err != nil {
		return nil, err
	}
	if err := ship(); err != nil {
		return nil, err
	}
	if _, err := sender.Heartbeat(epoch, "primary", failoverTTL, st.Seq()); err != nil {
		return nil, err
	}
	out.Before = pl.rows()
	out.WALSeq = st.Seq()
	out.FollowerApplied = fol.Applied()

	// --- hard kill: the primary stops mid-flight; no snapshot, no
	// goodbye. The standby only notices through lease silence. ---
	if err := st.Close(); err != nil {
		return nil, err
	}

	// --- lease countdown in virtual time ---
	ticks := 0
	for !fol.LeaseExpired() {
		vc.advance(failoverTick)
		if ticks++; ticks > 100 {
			return nil, fmt.Errorf("lease never expired after %d virtual ticks", ticks)
		}
	}
	out.PromoteMillis = float64(time.Duration(ticks) * failoverTick / time.Millisecond)

	_, newEpoch, err := fol.Promote("standby")
	if err != nil {
		return nil, err
	}
	out.EpochAfter = newEpoch

	// --- fencing: the old primary resumes and tries to ship its next
	// record at the dead epoch; the wire must refuse it with the typed
	// stale-epoch error ---
	_, staleErr := sender.Append(epoch, []store.Record{{Seq: out.WALSeq + 1, Kind: store.KindEpoch, Data: []byte(`{}`)}})
	out.StaleRejected = errors.Is(staleErr, store.ErrStaleEpoch)

	// --- promotion recovery: the exact boot path against the replica ---
	st2, state2 := fol.Handoff()
	defer st2.Close()
	live := state2.Live()
	out.RecoveredLive = len(live)
	pl2, err := newRestartPlane(p)
	if err != nil {
		return nil, err
	}
	defer pl2.unsub()
	journal2 := store.NewJournal(st2, state2)
	for _, tr := range live {
		if _, err := pl2.orch.RestoreTask(tr.Spec, tr.State); err != nil {
			return nil, fmt.Errorf("restore task %d: %w", tr.ID, err)
		}
	}
	if err := pl2.orch.Reconcile(ctx); err != nil {
		return nil, err
	}
	if err := pl2.drainInto(journal2); err != nil {
		return nil, err
	}
	if err := journal2.Snapshot(); err != nil {
		return nil, err
	}
	out.After = pl2.rows()

	// --- determinism: a ghost plane rebooted from the dead primary's own
	// directory must compute byte-identical plans ---
	pl3, err := newRestartPlane(p)
	if err != nil {
		return nil, err
	}
	defer pl3.unsub()
	st3, state3, err := store.Open(pdir)
	if err != nil {
		return nil, err
	}
	defer st3.Close()
	for _, tr := range state3.Live() {
		if _, err := pl3.orch.RestoreTask(tr.Spec, tr.State); err != nil {
			return nil, fmt.Errorf("ghost restore task %d: %w", tr.ID, err)
		}
	}
	if err := pl3.orch.Reconcile(ctx); err != nil {
		return nil, err
	}
	promoted, err := json.Marshal(pl2.orch.Plans())
	if err != nil {
		return nil, err
	}
	ghost, err := json.Marshal(pl3.orch.Plans())
	if err != nil {
		return nil, err
	}
	out.PlansIdentical = bytes.Equal(promoted, ghost)
	return out, nil
}

// ShapeCheck verifies the failover claims: zero replication lag at
// death, promotion within one poll tick of the lease TTL, a durable
// epoch bump, the stale primary fenced, every live task re-admitted with
// its SNR restored, and plans byte-identical to a primary reboot.
// Returns "" when all hold.
func (r *FailoverResult) ShapeCheck() string {
	var probs []string
	if r.FollowerApplied != r.WALSeq {
		probs = append(probs, fmt.Sprintf("follower applied seq %d at kill, primary was at %d", r.FollowerApplied, r.WALSeq))
	}
	if r.PromoteMillis < r.LeaseTTLMillis {
		probs = append(probs, fmt.Sprintf("promoted %.0fms after last heartbeat, before the %.0fms lease expired", r.PromoteMillis, r.LeaseTTLMillis))
	}
	tick := float64(failoverTick / time.Millisecond)
	if r.PromoteMillis > r.LeaseTTLMillis+tick {
		probs = append(probs, fmt.Sprintf("promoted %.0fms after last heartbeat, want within %.0fms lease + %.0fms poll tick", r.PromoteMillis, r.LeaseTTLMillis, tick))
	}
	if r.EpochAfter != r.EpochBefore+1 {
		probs = append(probs, fmt.Sprintf("promotion moved epoch %d -> %d, want +1", r.EpochBefore, r.EpochAfter))
	}
	if !r.StaleRejected {
		probs = append(probs, "resumed stale primary's append was not rejected")
	}
	if !r.PlansIdentical {
		probs = append(probs, "promoted plans differ from the dead primary's reboot")
	}
	before := map[int]RestartRow{}
	liveBefore := 0
	for _, row := range r.Before {
		before[row.ID] = row
		if row.State != "done" && row.State != "failed" {
			liveBefore++
		}
	}
	if r.RecoveredLive != liveBefore {
		probs = append(probs, fmt.Sprintf("replica handed promotion %d live task(s), want %d", r.RecoveredLive, liveBefore))
	}
	after := map[int]RestartRow{}
	for _, row := range r.After {
		after[row.ID] = row
	}
	if _, ok := after[r.EndedID]; ok {
		probs = append(probs, fmt.Sprintf("ended task %d was resurrected", r.EndedID))
	}
	if row, ok := after[r.IdleID]; !ok {
		probs = append(probs, fmt.Sprintf("idled task %d was not restored", r.IdleID))
	} else if row.State != "idle" {
		probs = append(probs, fmt.Sprintf("idled task %d restored as %q, want idle", r.IdleID, row.State))
	}
	for id, b := range before {
		if id == r.EndedID || id == r.IdleID || b.State != "running" {
			continue
		}
		a, ok := after[id]
		if !ok {
			probs = append(probs, fmt.Sprintf("running task %d was lost in failover", id))
			continue
		}
		if a.State != "running" {
			probs = append(probs, fmt.Sprintf("task %d restored as %q, want running", id, a.State))
			continue
		}
		if d := a.Metric - b.Metric; d > 0.01 || d < -0.01 {
			probs = append(probs, fmt.Sprintf("task %d %s %.2f after failover, was %.2f", id, a.Name, a.Metric, b.Metric))
		}
	}
	return strings.Join(probs, "; ")
}

// Render prints the failover timeline and before/after tables.
func (r *FailoverResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Failover: a warm standby promotes and loses nothing (%s profile)\n\n", r.Profile)
	table := func(title string, rows []RestartRow) {
		fmt.Fprintf(&b, "%s\n", title)
		t := &Table{Header: []string{"task", "kind", "state", "metric", "surfaces"}}
		for _, row := range rows {
			metric := "-"
			if row.Name != "" {
				metric = fmt.Sprintf("%s=%.2f", row.Name, row.Metric)
			}
			t.Add(fmt.Sprintf("%d", row.ID), row.Kind, row.State, metric, strings.Join(row.Surfaces, "+"))
		}
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	table(fmt.Sprintf("primary at death (epoch %d, %d WAL record(s) shipped, follower applied %d):",
		r.EpochBefore, r.WALSeq, r.FollowerApplied), r.Before)
	fmt.Fprintf(&b, "hard kill; lease silent; standby promoted %.0fms after last heartbeat (ttl %.0fms) at epoch %d\n",
		r.PromoteMillis, r.LeaseTTLMillis, r.EpochAfter)
	if r.StaleRejected {
		fmt.Fprintf(&b, "resumed stale primary (epoch %d) fenced: append rejected with stale-epoch\n\n", r.EpochBefore)
	} else {
		b.WriteString("FENCING FAILED: stale primary's append was accepted\n\n")
	}
	table(fmt.Sprintf("promoted standby (%d live task(s) re-admitted):", r.RecoveredLive), r.After)
	if r.PlansIdentical {
		b.WriteString("plans: byte-identical to the dead primary's own reboot\n")
	} else {
		b.WriteString("PLANS DIVERGED from the dead primary's reboot\n")
	}
	if s := r.ShapeCheck(); s != "" {
		fmt.Fprintf(&b, "SHAPE CHECK FAILED: %s\n", s)
	} else {
		b.WriteString("shape check: zero lag at death, promotion within ttl+tick, epoch +1, stale primary fenced, SNR restored\n")
	}
	return b.String()
}
