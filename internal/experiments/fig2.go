package experiments

import (
	"context"
	"fmt"
	"strings"

	"surfos/internal/engine"
	"surfos/internal/optimize"
	"surfos/internal/scene"
)

// Fig2Result reproduces Figure 2: with a single surface configured to
// maximize coverage, (a) the RSS heatmap over the target room is strong,
// but (b) the localization error heatmap shows the same configuration
// disrupting localization across much of the room — the multi-service
// conflict motivating a central orchestrator.
type Fig2Result struct {
	Profile Profile
	// Coverage is the RSS (dBm) heatmap under the coverage-optimal config.
	Coverage *Heatmap
	// LocErr is the localization error (m) heatmap under the same config.
	LocErr *Heatmap
	// LocErrSensingOpt is the reference error heatmap under a
	// localization-optimal config (what the room loses to the conflict).
	LocErrSensingOpt *Heatmap
}

// RunFig2 executes the experiment on the shared multitasking rig. The rig
// and its single-task optima are cached per profile, so running Fig2 after
// Fig5 (or vice versa) re-traces nothing.
func RunFig2(ctx context.Context, p Profile) (*Fig2Result, error) {
	rig, err := sharedRig(ctx, p)
	if err != nil {
		return nil, err
	}
	covCfg := rig.quantize(rig.cachedRaw(ctx, &rig.covRaw, rig.covObj))
	locCfg := rig.quantize(rig.cachedRaw(ctx, &rig.locRaw, rig.locObj))

	// Heatmaps are computed on the rig's grid (row-major over the target
	// room footprint).
	step := rigFor(p).gridStep
	reg := rig.apt.Regions[scene.RegionTargetRoom]
	cols := 0
	firstX := rig.grid[0].X
	// GridPoints iterates x-major: count rows per x by detecting x change.
	rows := 0
	for _, pt := range rig.grid {
		if pt.X == firstX {
			rows++
		}
	}
	cols = len(rig.grid) / rows

	mk := func(vals []float64, unit string) *Heatmap {
		// rig.grid is x-major (x outer, y inner); Heatmap is row-major in y.
		h := &Heatmap{
			X0: reg.Box.Min.X, Y0: reg.Box.Min.Y, Step: step,
			Cols: cols, Rows: rows, Unit: unit,
			Values: make([]float64, len(vals)),
		}
		for i, v := range vals {
			c := i / rows // x index
			r := i % rows // y index
			h.Values[r*cols+c] = v
		}
		return h
	}

	covCfgs := optimize.PhasesToConfigs(covCfg)
	rss := make([]float64, len(rig.grid))
	if err := engine.Default().ForEach(ctx, len(rig.chans), func(i int) {
		h, _ := rig.chans[i].Eval(covCfgs)
		rss[i] = rig.budget.RxPowerDBm(h)
	}); err != nil {
		return nil, err
	}

	covErrs, err := rig.locErrPerLocation(ctx, covCfg)
	if err != nil {
		return nil, err
	}
	locErrs, err := rig.locErrPerLocation(ctx, locCfg)
	if err != nil {
		return nil, err
	}
	out := &Fig2Result{
		Profile:          p,
		Coverage:         mk(rss, "dBm"),
		LocErr:           mk(covErrs, "m"),
		LocErrSensingOpt: mk(locErrs, "m"),
	}
	return out, nil
}

// ShapeCheck verifies the conflict: the coverage-optimal configuration
// must localize clearly worse (median over the room) than the
// localization-optimal one.
func (r *Fig2Result) ShapeCheck() string {
	_, covMed, _ := r.LocErr.Stats()
	_, locMed, _ := r.LocErrSensingOpt.Stats()
	if covMed <= locMed*1.3 {
		return fmt.Sprintf("no conflict: coverage-config median loc err %.2f m vs sensing-config %.2f m", covMed, locMed)
	}
	return ""
}

// Render prints both heatmaps with summary statistics.
func (r *Fig2Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2: one coverage-optimized configuration, two services (%s profile)\n\n", r.Profile)
	cmin, cmed, cmax := r.Coverage.Stats()
	fmt.Fprintf(&b, "(a) Coverage heatmap, RSS dBm (min %.1f / med %.1f / max %.1f)\n%s\n",
		cmin, cmed, cmax, r.Coverage.Render())
	lmin, lmed, lmax := r.LocErr.Stats()
	fmt.Fprintf(&b, "(b) Localization error heatmap under the SAME config, m (min %.2f / med %.2f / max %.2f)\n%s\n",
		lmin, lmed, lmax, r.LocErr.Render())
	smin, smed, smax := r.LocErrSensingOpt.Stats()
	fmt.Fprintf(&b, "(reference) Localization error under a sensing-optimized config, m (min %.2f / med %.2f / max %.2f)\n%s\n",
		smin, smed, smax, r.LocErrSensingOpt.Render())
	if s := r.ShapeCheck(); s != "" {
		fmt.Fprintf(&b, "SHAPE CHECK FAILED: %s\n", s)
	} else {
		fmt.Fprintf(&b, "shape check: coverage-optimal config disrupts localization (median %.2f m vs %.2f m)\n", lmed, smed)
	}
	return b.String()
}
