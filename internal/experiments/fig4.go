package experiments

import (
	"context"
	"fmt"
	"math"
	"math/cmplx"
	"strings"
	"sync"

	"surfos/internal/broker"
	"surfos/internal/driver"
	"surfos/internal/em"
	"surfos/internal/engine"
	"surfos/internal/geom"
	"surfos/internal/optimize"
	"surfos/internal/rfsim"
	"surfos/internal/scene"
	"surfos/internal/surface"
)

// passiveSheet is the datasheet for the low-cost passive reflective
// mmWave surface used by Figure 4, fed through the driver generator — the
// same automation path a new vendor design would take (paper §3.4).
const passiveSheet = `
model: PassiveMirror24
reference: synthetic AutoMS-class 24 GHz passive reflector
band: 23-25 GHz
control: phase
mode: reflective
granularity: fixed
bits: 2
cost_per_element: 0.01
fixed_cost: 15
efficiency: 0.7
`

// Fig4Point is one sweep sample of an approach.
type Fig4Point struct {
	Label       string
	Elements    int
	CostUSD     float64
	AreaM2      float64
	MedianSNRdB float64
}

// Fig4Result reproduces Figure 4: extending mmWave coverage into the
// target room with (i) a passive-only surface, (ii) a programmable-only
// surface with dynamic steering, and (iii) the hybrid deployment where a
// passive panel relays a narrow backhaul beam to a small programmable
// panel that re-steers it over the room. Panels (b) and (c) are the cost
// and size needed to reach a median SNR.
type Fig4Result struct {
	Profile      Profile
	BaselineSNR  float64 // no surfaces at all
	Passive      []Fig4Point
	Programmable []Fig4Point
	Hybrid       []Fig4Point
	// HybridRSS is the Figure 4(a.ii)-style RSS heatmap of the largest
	// hybrid deployment (per-point dynamic steering).
	HybridRSS *Heatmap
}

// fig4Params scales the sweep.
type fig4Params struct {
	gridStep       float64 // fabrication/training grid
	evalStep       float64 // evaluation grid (deliberately off the training points)
	iters          int
	passiveSizes   []int // square side in elements
	progSizes      []int
	hybridProgRows int // hybrid programmable panel rows
	hybridProgCols int // hybrid programmable panel cols
	hybridPas      []int
}

func fig4For(p Profile) fig4Params {
	if p == Full {
		return fig4Params{
			gridStep:       0.6,
			evalStep:       0.55,
			iters:          120,
			passiveSizes:   []int{16, 24, 32, 48, 64, 96, 128},
			progSizes:      []int{8, 16, 24, 32, 48, 64},
			hybridProgRows: 8,
			hybridProgCols: 32,
			hybridPas:      []int{16, 24, 32, 48, 64, 96},
		}
	}
	return fig4Params{
		gridStep:       1.0,
		evalStep:       0.9,
		iters:          60,
		passiveSizes:   []int{16, 24, 32, 48, 72, 96},
		progSizes:      []int{8, 16, 24, 32, 48},
		hybridProgRows: 8,
		hybridProgCols: 32,
		hybridPas:      []int{16, 24, 32, 48, 64},
	}
}

// fig4Budget is the 24 GHz link budget for the coverage-extension study.
// The AP's 20 dB array gain is modeled as a beam pattern aimed at its
// serving surface (see apBeam); the budget carries only the client-side
// antenna gain.
func fig4Budget() rfsim.LinkBudget {
	return rfsim.LinkBudget{TxPowerDBm: 10, AntennaGainDB: 5, NoiseFigureDB: 7, BandwidthHz: 400e6}
}

// apBeam is the AP's beamforming pattern: 20 dB within ±12° of the target,
// -5 dB elsewhere.
func apBeam(from, toward geom.Vec3) func(geom.Vec3) float64 {
	return rfsim.ConeBeam(toward.Sub(from), 12*math.Pi/180, 20, -5)
}

// elevationBias returns the fabricated vertical phase profile for a
// column-wise panel: the residual of a nominal feed→room-center steering
// after column sharing. Real column-wise designs (mmWall, NR-Surface) bake
// exactly this elevation focusing into the element geometry; without it a
// column-wise panel cannot form beams at receiver height.
func elevationBias(s *surface.Surface, feed, target geom.Vec3) []float64 {
	nominal := s.SteeringConfig(feed, target, em.Band24G)
	shared := nominal.ProjectGranularity(surface.ColumnWise, s.Layout)
	bias := make([]float64, len(nominal.Values))
	for i := range bias {
		bias[i] = nominal.Values[i] - shared.Values[i]
	}
	return bias
}

// matchedConfig returns the per-element matched-filter phases for a
// single-surface channel — the ideal dynamic steering configuration for
// one receiver: every term aligned with the static component.
func matchedConfig(ch *rfsim.Channel, sIdx int) surface.Config {
	ref := cmplx.Phase(ch.Direct)
	vals := make([]float64, len(ch.Single[sIdx]))
	for k, c := range ch.Single[sIdx] {
		if c == 0 {
			continue
		}
		vals[k] = ref - cmplx.Phase(c)
	}
	return surface.Config{Property: surface.Phase, Values: vals}
}

// buildSurface places a square panel of a spec at a mount with λ/2 pitch.
func buildSurface(spec driver.Spec, mount scene.MountSpot, name string, side int) (*surface.Surface, *driver.Driver, error) {
	return buildSurfaceRC(spec, mount, name, side, side)
}

// buildSurfaceRC places a rows×cols panel. A column-wise programmable
// panel used for dynamic steering should be wide and short: columns share
// their phase vertically, so panel height adds little beyond the fixed
// elevation profile while width buys azimuth aperture.
func buildSurfaceRC(spec driver.Spec, mount scene.MountSpot, name string, rows, cols int) (*surface.Surface, *driver.Driver, error) {
	pitch := em.Wavelength(em.Band24G) / 2
	panel := mount.Panel(float64(cols)*pitch+0.02, float64(rows)*pitch+0.02)
	mode := spec.OpMode
	if mode == surface.Transflective {
		mode = surface.Reflective
	}
	s, err := surface.New(name, panel, surface.Layout{
		Rows: rows, Cols: cols, PitchU: pitch, PitchV: pitch,
	}, mode, em.CosinePattern{Q: 0.5})
	if err != nil {
		return nil, nil, err
	}
	d, err := driver.New(spec, s)
	if err != nil {
		return nil, nil, err
	}
	return s, d, nil
}

// RunFig4 executes the sweep. Channel batches route through the shared
// engine: each sweep entry's training and evaluation grids reuse one
// memoized ray trace (keyed by a per-entry TxPatternID, since the AP beam
// aims differently at every panel), and per-point evaluation fans out
// over the engine's worker pool.
func RunFig4(ctx context.Context, p Profile) (*Fig4Result, error) {
	eng := engine.Default()
	par := fig4For(p)
	apt := scene.NewApartment()
	budget := fig4Budget()
	// The training grid is what a fabrication-time optimizer can know; the
	// evaluation grid is where users actually stand (deliberately offset).
	// Re-configurable approaches adapt per user and are insensitive to the
	// distinction; a passive pattern is fixed at fabrication — this is the
	// re-configurability trade-off the paper's Figure 4 prices out.
	grid := apt.TargetGrid(par.gridStep)
	evalGrid := apt.TargetGrid(par.evalStep)
	if len(grid) == 0 || len(evalGrid) == 0 {
		return nil, fmt.Errorf("experiments: empty fig4 grid")
	}

	passiveSpec, err := broker.GenerateSpec(passiveSheet)
	if err != nil {
		return nil, err
	}
	progSpec, err := driver.Lookup(driver.ModelNRSurface)
	if err != nil {
		return nil, err
	}

	out := &Fig4Result{Profile: p}

	// Baseline: the bare environment; the AP does its best alone by
	// beaming at the doorway.
	{
		door := geom.V((scene.DoorX0+scene.DoorX1)/2, scene.DividerY, 1.5)
		spec := engine.Spec{
			Scene:       apt.Scene,
			FreqHz:      em.Band24G,
			TxPattern:   apBeam(apt.AP, door),
			TxPatternID: "fig4-baseline",
		}
		chans, err := eng.Channels(ctx, spec, apt.AP, evalGrid)
		if err != nil {
			return nil, err
		}
		snrs := make([]float64, len(evalGrid))
		for i, ch := range chans {
			snrs[i] = budget.SNRdB(ch.Direct)
		}
		out.BaselineSNR = rfsim.Median(snrs)
	}

	east := apt.Mounts[scene.MountEastWall]
	north := apt.Mounts[scene.MountNorthWall]

	// (i) Passive-only: one fabrication-time coverage-optimized pattern.
	for _, side := range par.passiveSizes {
		s, d, err := buildSurface(passiveSpec, east, fmt.Sprintf("passive-%d", side), side)
		if err != nil {
			return nil, err
		}
		spec := engine.Spec{
			Scene:             apt.Scene,
			FreqHz:            em.Band24G,
			Surfaces:          []*surface.Surface{s},
			ElementEfficiency: passiveSpec.ElementEfficiency,
			TxPattern:         apBeam(apt.AP, s.Panel.Center()),
			TxPatternID:       fmt.Sprintf("fig4-passive-%d", side),
		}
		// Both grids share the single memoized trace for this panel.
		chans, err := eng.Channels(ctx, spec, apt.AP, grid)
		if err != nil {
			return nil, err
		}
		evalChans, err := eng.Channels(ctx, spec, apt.AP, evalGrid)
		if err != nil {
			return nil, err
		}
		obj, err := optimize.NewCoverageObjective(chans, budget)
		if err != nil {
			return nil, err
		}
		res := optimize.Adam(ctx, obj, optimize.ZeroPhases(obj.Shape()), optimize.Options{MaxIters: par.iters})
		cfg := d.Project(surface.Config{Property: surface.Phase, Values: res.Phases[0]})
		snrs := make([]float64, len(evalGrid))
		if err := eng.ForEach(ctx, len(evalChans), func(i int) {
			h, _ := evalChans[i].Eval([]surface.Config{cfg})
			snrs[i] = budget.SNRdB(h)
		}); err != nil {
			return nil, err
		}
		out.Passive = append(out.Passive, Fig4Point{
			Label:       fmt.Sprintf("%dx%d", side, side),
			Elements:    side * side,
			CostUSD:     d.CostUSD(),
			AreaM2:      s.AreaM2(),
			MedianSNRdB: rfsim.Median(snrs),
		})
	}

	// (ii) Programmable-only: dynamic per-user steering (each location is
	// served by its own matched codebook entry, projected onto the
	// hardware's column-wise 2-bit constraints).
	for _, side := range par.progSizes {
		s, d, err := buildSurface(progSpec, east, fmt.Sprintf("prog-%d", side), side)
		if err != nil {
			return nil, err
		}
		if err := d.SetBias(elevationBias(s, apt.AP, geom.V(3.5, 5.2, scene.EvalHeight))); err != nil {
			return nil, err
		}
		spec := engine.Spec{
			Scene:             apt.Scene,
			FreqHz:            em.Band24G,
			Surfaces:          []*surface.Surface{s},
			ElementEfficiency: progSpec.ElementEfficiency,
			TxPattern:         apBeam(apt.AP, s.Panel.Center()),
			TxPatternID:       fmt.Sprintf("fig4-prog-%d", side),
		}
		chans, err := eng.Channels(ctx, spec, apt.AP, evalGrid)
		if err != nil {
			return nil, err
		}
		snrs := make([]float64, len(evalGrid))
		if err := eng.ForEach(ctx, len(chans), func(i int) {
			cfg := d.Project(matchedConfig(chans[i], 0))
			h, _ := chans[i].Eval([]surface.Config{cfg})
			snrs[i] = budget.SNRdB(h)
		}); err != nil {
			return nil, err
		}
		out.Programmable = append(out.Programmable, Fig4Point{
			Label:       fmt.Sprintf("%dx%d", side, side),
			Elements:    side * side,
			CostUSD:     d.CostUSD(),
			AreaM2:      s.AreaM2(),
			MedianSNRdB: rfsim.Median(snrs),
		})
	}

	// (iii) Hybrid: passive backhaul focused on the programmable panel,
	// small programmable re-steering dynamically into the room.
	for _, side := range par.hybridPas {
		ps, pd, err := buildSurface(passiveSpec, east, fmt.Sprintf("hyb-passive-%d", side), side)
		if err != nil {
			return nil, err
		}
		qs, qd, err := buildSurfaceRC(progSpec, north, "hyb-prog", par.hybridProgRows, par.hybridProgCols)
		if err != nil {
			return nil, err
		}
		// The programmable panel is fed by the passive backhaul; its
		// fabricated elevation profile focuses that feed at room height.
		if err := qd.SetBias(elevationBias(qs, ps.Panel.Center(), geom.V(3.5, 5.2, scene.EvalHeight))); err != nil {
			return nil, err
		}
		spec := engine.Spec{
			Scene:             apt.Scene,
			FreqHz:            em.Band24G,
			Surfaces:          []*surface.Surface{ps, qs},
			Cascade:           true,
			ElementEfficiency: math.Min(passiveSpec.ElementEfficiency, progSpec.ElementEfficiency),
			TxPattern:         apBeam(apt.AP, ps.Panel.Center()),
			TxPatternID:       fmt.Sprintf("fig4-hybrid-%d", side),
		}

		// Backhaul: the passive panel focuses the AP beam on the
		// programmable panel's center (fixed at fabrication).
		backhaul := pd.Project(ps.SteeringConfig(apt.AP, qs.Panel.Center(), em.Band24G))

		chans, err := eng.Channels(ctx, spec, apt.AP, evalGrid)
		if err != nil {
			return nil, err
		}
		snrs := make([]float64, len(evalGrid))
		var evalErr error
		var evalErrMu sync.Mutex
		if err := eng.ForEach(ctx, len(chans), func(i int) {
			frozen, err := chans[i].Freeze(0, backhaul)
			if err != nil {
				evalErrMu.Lock()
				if evalErr == nil {
					evalErr = err
				}
				evalErrMu.Unlock()
				return
			}
			cfg := qd.Project(matchedConfig(frozen, 1))
			h, _ := frozen.Eval([]surface.Config{{Property: surface.Phase}, cfg})
			snrs[i] = budget.SNRdB(h)
		}); err != nil {
			return nil, err
		}
		if evalErr != nil {
			return nil, evalErr
		}
		out.Hybrid = append(out.Hybrid, Fig4Point{
			Label:       fmt.Sprintf("%dx%d + %dx%d", side, side, par.hybridProgRows, par.hybridProgCols),
			Elements:    side*side + par.hybridProgRows*par.hybridProgCols,
			CostUSD:     pd.CostUSD() + qd.CostUSD(),
			AreaM2:      ps.AreaM2() + qs.AreaM2(),
			MedianSNRdB: rfsim.Median(snrs),
		})

		// Figure 4(a.ii): RSS heatmap of the largest hybrid on a fine grid.
		if side == par.hybridPas[len(par.hybridPas)-1] {
			hm, err := hybridHeatmap(ctx, eng, apt, spec, qd, backhaul, budget, par.evalStep/2)
			if err != nil {
				return nil, err
			}
			out.HybridRSS = hm
		}
	}
	return out, nil
}

// hybridHeatmap evaluates the deployed hybrid's RSS over a fine grid with
// per-point dynamic steering of the programmable panel. Points are
// evaluated in parallel on the engine's worker pool; the memoized trace
// for spec is shared with the sweep that deployed the hybrid.
func hybridHeatmap(ctx context.Context, eng *engine.Engine, apt *scene.Apartment, spec engine.Spec, qd *driver.Driver, backhaul surface.Config, budget rfsim.LinkBudget, step float64) (*Heatmap, error) {
	reg := apt.Regions[scene.RegionTargetRoom]
	pts := reg.GridPoints(step, scene.EvalHeight)
	if len(pts) == 0 {
		return nil, fmt.Errorf("experiments: empty heatmap grid")
	}
	rows := 0
	firstX := pts[0].X
	for _, pt := range pts {
		if pt.X == firstX {
			rows++
		}
	}
	cols := len(pts) / rows
	hm := &Heatmap{
		X0: reg.Box.Min.X, Y0: reg.Box.Min.Y, Step: step,
		Cols: cols, Rows: rows, Unit: "dBm",
		Values: make([]float64, rows*cols),
	}
	chans, err := eng.Channels(ctx, spec, apt.AP, pts)
	if err != nil {
		return nil, err
	}
	var evalErr error
	var evalErrMu sync.Mutex
	if err := eng.ForEach(ctx, len(chans), func(i int) {
		frozen, err := chans[i].Freeze(0, backhaul)
		if err != nil {
			evalErrMu.Lock()
			if evalErr == nil {
				evalErr = err
			}
			evalErrMu.Unlock()
			return
		}
		cfg := qd.Project(matchedConfig(frozen, 1))
		h, _ := frozen.Eval([]surface.Config{{Property: surface.Phase}, cfg})
		c := i / rows
		r := i % rows
		hm.Values[r*cols+c] = budget.RxPowerDBm(h)
	}); err != nil {
		return nil, err
	}
	if evalErr != nil {
		return nil, evalErr
	}
	return hm, nil
}

// costAt interpolates an approach's cost (or area) needed to reach a
// median SNR; +Inf when the approach never reaches it.
func costAt(points []Fig4Point, snr float64, area bool) float64 {
	best := math.Inf(1)
	for i := range points {
		v := points[i].CostUSD
		if area {
			v = points[i].AreaM2
		}
		if points[i].MedianSNRdB >= snr && v < best {
			best = v
		}
		if i > 0 && (points[i-1].MedianSNRdB < snr) != (points[i].MedianSNRdB < snr) {
			a, b := points[i-1], points[i]
			t := (snr - a.MedianSNRdB) / (b.MedianSNRdB - a.MedianSNRdB)
			va, vb := a.CostUSD, b.CostUSD
			if area {
				va, vb = a.AreaM2, b.AreaM2
			}
			if v := va + t*(vb-va); v < best {
				best = v
			}
		}
	}
	return best
}

// TargetSNR picks the comparison level: just below the hybrid's best
// median SNR — the high-coverage regime the deployment is built for.
// Approaches that cannot reach it report unreachable (infinite cost/size),
// which is itself the paper's point about pure approaches.
func (r *Fig4Result) TargetSNR() float64 {
	m := math.Inf(-1)
	for _, p := range r.Hybrid {
		if p.MedianSNRdB > m {
			m = p.MedianSNRdB
		}
	}
	return m - 0.5
}

// ShapeCheck verifies the paper's claims: the bare room has essentially no
// coverage, and at a common target SNR the hybrid needs a fraction of the
// cost AND of the size of either pure approach.
func (r *Fig4Result) ShapeCheck() string {
	var probs []string
	if r.BaselineSNR > 3 {
		probs = append(probs, fmt.Sprintf("baseline SNR %.1f dB is not 'basically no coverage'", r.BaselineSNR))
	}
	t := r.TargetSNR()
	// The hybrid must beat each pure approach on that approach's weak
	// axis: programmable-only on cost, passive-only on size.
	hc := costAt(r.Hybrid, t, false)
	qc := costAt(r.Programmable, t, false)
	if !(hc < 0.7*qc) {
		probs = append(probs, fmt.Sprintf("hybrid cost %.0f$ not a fraction of programmable-only %.0f$ at %.1f dB", hc, qc, t))
	}
	ha := costAt(r.Hybrid, t, true)
	pa := costAt(r.Passive, t, true)
	if !(ha < pa) {
		probs = append(probs, fmt.Sprintf("hybrid size %.3f m² not below passive-only %.3f m² at %.1f dB", ha, pa, t))
	}
	return strings.Join(probs, "; ")
}

func fig4Table(name string, pts []Fig4Point) string {
	t := &Table{Header: []string{name, "elements", "cost ($)", "size (m²)", "median SNR (dB)"}}
	for _, p := range pts {
		t.Add(p.Label, fmt.Sprintf("%d", p.Elements), fmt.Sprintf("%.0f", p.CostUSD),
			fmt.Sprintf("%.4f", p.AreaM2), fmt.Sprintf("%.1f", p.MedianSNRdB))
	}
	return t.String()
}

// Render prints the sweep tables and the cost/size comparison at the
// common target SNR (panels b and c).
func (r *Fig4Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4: leveraging hardware heterogeneity (%s profile)\n", r.Profile)
	fmt.Fprintf(&b, "baseline (no surfaces) median SNR in target room: %.1f dB\n\n", r.BaselineSNR)
	b.WriteString(fig4Table("passive-only", r.Passive))
	b.WriteByte('\n')
	b.WriteString(fig4Table("programmable-only", r.Programmable))
	b.WriteByte('\n')
	b.WriteString(fig4Table("hybrid", r.Hybrid))
	b.WriteByte('\n')

	t := r.TargetSNR()
	if r.HybridRSS != nil {
		_, med, _ := r.HybridRSS.Stats()
		fmt.Fprintf(&b, "(a.ii) RSS heatmap of the largest hybrid (median %.1f dBm):\n%s\n", med, r.HybridRSS.Render())
	}
	fmt.Fprintf(&b, "(b)+(c) to reach median SNR %.1f dB:\n", t)
	cmp := &Table{Header: []string{"approach", "cost ($)", "size (m²)"}}
	row := func(name string, pts []Fig4Point) {
		c := costAt(pts, t, false)
		a := costAt(pts, t, true)
		cs, as := "unreachable", "unreachable"
		if !math.IsInf(c, 1) {
			cs = fmt.Sprintf("%.0f", c)
		}
		if !math.IsInf(a, 1) {
			as = fmt.Sprintf("%.4f", a)
		}
		cmp.Add(name, cs, as)
	}
	row("passive-only", r.Passive)
	row("programmable-only", r.Programmable)
	row("hybrid", r.Hybrid)
	b.WriteString(cmp.String())

	if s := r.ShapeCheck(); s != "" {
		fmt.Fprintf(&b, "\nSHAPE CHECK FAILED: %s\n", s)
	} else {
		b.WriteString("\nshape check: hybrid needs a fraction of the cost and size of either pure approach\n")
	}
	return b.String()
}
