package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"
	"sync"

	"surfos/internal/em"
	"surfos/internal/engine"
	"surfos/internal/geom"
	"surfos/internal/optimize"
	"surfos/internal/rfsim"
	"surfos/internal/scene"
	"surfos/internal/sensing"
	"surfos/internal/surface"
)

// Config names used across Figures 2 and 5.
const (
	CfgCoverageOpt = "Coverage Opt"
	CfgLocOpt      = "Localization Opt"
	CfgMultitask   = "Multi-tasking"
)

// sensingRig is the shared §4 multitasking setup: a 60 GHz AP in the
// living room, one static phase surface on the bedroom's east wall, and an
// evaluation grid over the target room. 60 GHz (with 802.11ad-class
// sounding bandwidth) is required for single-configuration wideband AoA:
// the aperture's differential delays must exceed the delay resolution
// c/BW (see package sensing).
type sensingRig struct {
	apt    *scene.Apartment
	surf   *surface.Surface
	sim    *rfsim.Simulator
	budget rfsim.LinkBudget
	est    *sensing.Estimator
	grid   []geom.Vec3
	meas   []*sensing.Measurement
	chans  []*rfsim.Channel

	covObj *optimize.CoverageObjective
	locObj *sensing.LocalizationObjective

	iters      int
	phaseBits  int
	noiseAmp   float64
	noiseDraws int

	// cfgMu guards the memoized single-task optimizations shared by
	// Figures 2 and 5 (both need the same coverage- and
	// localization-optimal configurations of the same rig).
	cfgMu  sync.Mutex
	covRaw [][]float64
	locRaw [][]float64
}

// rigCache shares one fully traced rig per profile across experiment runs:
// Figures 2 and 5 use the identical scene/surface/grid, so the ray trace
// and sensing measurement sweep happen once per process. The rig is
// read-only after construction (the memoized configs have their own lock).
var (
	rigMu    sync.Mutex
	rigCache = map[Profile]*sensingRig{}
)

// sharedRig returns the cached rig for a profile, building it on first
// use. A build aborted by ctx cancellation is not cached.
func sharedRig(ctx context.Context, p Profile) (*sensingRig, error) {
	rigMu.Lock()
	defer rigMu.Unlock()
	if r, ok := rigCache[p]; ok {
		return r, nil
	}
	r, err := newSensingRig(ctx, p)
	if err != nil {
		return nil, err
	}
	rigCache[p] = r
	return r, nil
}

type rigParams struct {
	rows, cols  int
	pitchLambda float64 // element pitch in wavelengths (sparse aperture)
	gridStep    float64
	bins        int
	subcarriers int
	ants        int
	iters       int
	noiseDraws  int
}

// medianOf is a small helper over rfsim.Median.
func medianOf(v []float64) float64 { return rfsim.Median(v) }

func rigFor(p Profile) rigParams {
	if p == Full {
		return rigParams{
			rows: 12, cols: 36, pitchLambda: 2,
			gridStep: 0.6, bins: 81, subcarriers: 8, ants: 10,
			iters: 150, noiseDraws: 5,
		}
	}
	return rigParams{
		rows: 8, cols: 24, pitchLambda: 2,
		gridStep: 1.0, bins: 41, subcarriers: 6, ants: 6,
		iters: 80, noiseDraws: 3,
	}
}

// newSensingRig builds the rig and both single-task objectives. Channel
// and measurement grids are evaluated through the shared engine: the ray
// trace is memoized and grid points fan out over the worker pool.
func newSensingRig(ctx context.Context, p Profile) (*sensingRig, error) {
	par := rigFor(p)
	apt := scene.NewApartment()
	freq := em.Band60G
	pitch := par.pitchLambda * em.Wavelength(freq)

	mount := apt.Mounts[scene.MountEastWall]
	panel := mount.Panel(float64(par.cols)*pitch+0.02, float64(par.rows)*pitch+0.02)
	s, err := surface.New("east60", panel, surface.Layout{
		Rows: par.rows, Cols: par.cols, PitchU: pitch, PitchV: pitch,
	}, surface.Reflective, em.CosinePattern{Q: 0.5})
	if err != nil {
		return nil, err
	}
	eng := engine.Default()
	spec := engine.Spec{
		Scene: apt.Scene, FreqHz: freq, Surfaces: []*surface.Surface{s},
		// Passive 60 GHz element efficiency (AutoMS-class).
		ElementEfficiency: 0.7,
	}
	sim, err := eng.Simulator(spec)
	if err != nil {
		return nil, err
	}

	budget := rfsim.LinkBudget{TxPowerDBm: 10, AntennaGainDB: 25, NoiseFigureDB: 7, BandwidthHz: 2.16e9}

	rig := &sensingRig{
		apt: apt, surf: s, sim: sim, budget: budget,
		grid:       apt.TargetGrid(par.gridStep),
		iters:      par.iters,
		phaseBits:  2,
		noiseDraws: par.noiseDraws,
	}
	if len(rig.grid) == 0 {
		return nil, fmt.Errorf("experiments: empty evaluation grid")
	}

	// Coverage objective: capacity across the grid.
	rig.chans, err = eng.Channels(ctx, spec, apt.AP, rig.grid)
	if err != nil {
		return nil, err
	}
	rig.covObj, err = optimize.NewCoverageObjective(rig.chans, budget)
	if err != nil {
		return nil, err
	}

	// Localization objective: cross-entropy of the AoA spectrum.
	ants := sensing.ULA(apt.AP, geom.V(1, 0, 0), par.ants, em.Wavelength(freq)/2)
	bins := sensing.DefaultBins(par.bins, 60*math.Pi/180)
	subs := sensing.DefaultSubcarriers(freq, 1.8e9, par.subcarriers)
	rig.est, err = sensing.NewEstimator(sim, 0, ants, bins, subs)
	if err != nil {
		return nil, err
	}
	rig.noiseAmp = sensing.NoiseAmplitude(budget)
	rig.est.NoisePower = rig.noiseAmp * rig.noiseAmp
	rig.meas = make([]*sensing.Measurement, len(rig.grid))
	if err := eng.ForEach(ctx, len(rig.grid), func(i int) {
		rig.meas[i] = rig.est.Measure(rig.grid[i])
	}); err != nil {
		return nil, err
	}
	rig.locObj, err = sensing.NewLocalizationObjective(rig.est, rig.meas, 0)
	if err != nil {
		return nil, err
	}
	return rig, nil
}

// quantize projects phases onto the static surface's fabrication states.
func (r *sensingRig) quantize(phases [][]float64) [][]float64 {
	out := make([][]float64, len(phases))
	for i, p := range phases {
		cfg := surface.Config{Property: surface.Phase, Values: p}
		out[i] = cfg.Quantize(r.phaseBits).Values
	}
	return out
}

// optimizeRaw runs Adam from an initial point, returning continuous phases.
func (r *sensingRig) optimizeRaw(ctx context.Context, obj optimize.Objective, init [][]float64) [][]float64 {
	if init == nil {
		init = optimize.ZeroPhases(obj.Shape())
	}
	res := optimize.Adam(ctx, obj, init, optimize.Options{MaxIters: r.iters})
	return res.Phases
}

// cachedRaw memoizes a single-task optimization on the shared rig so
// Figures 2 and 5 don't redo identical Adam runs. Results from canceled
// runs are returned (best-so-far) but not cached.
func (r *sensingRig) cachedRaw(ctx context.Context, slot *[][]float64, obj optimize.Objective) [][]float64 {
	r.cfgMu.Lock()
	defer r.cfgMu.Unlock()
	if *slot != nil {
		return *slot
	}
	res := optimize.Adam(ctx, obj, optimize.ZeroPhases(obj.Shape()), optimize.Options{MaxIters: r.iters})
	if !res.Stopped {
		*slot = res.Phases
	}
	return res.Phases
}

// jointObjective is the paper's multitask loss at one scalarization
// weight: localization cross-entropy plus coverage loss. The coverage term
// is normalized per location; the localization weight w rebalances the sum
// (cross-entropy saturates at a few nats while per-location spectral
// efficiency reaches ~10 bits/s/Hz).
func (r *sensingRig) jointObjective(w float64) (optimize.Objective, error) {
	return optimize.NewWeightedSum(
		[]optimize.Objective{r.covObj, r.locObj},
		[]float64{1 / float64(len(r.chans)), w},
	)
}

// jointWeights is the scalarization sweep: under coarse phase quantization
// the Pareto frontier is jumpy in the weight, so the multitask
// configuration is chosen as the best-balanced point across a few weights
// rather than trusting a single scalarization.
var jointWeights = []float64{1.0, 1.5, 2.25}

// snrPerLocation evaluates link SNR at every grid point, fanning out over
// the engine's worker pool (per-index writes: identical to serial).
func (r *sensingRig) snrPerLocation(ctx context.Context, phases [][]float64) ([]float64, error) {
	cfgs := optimize.PhasesToConfigs(phases)
	out := make([]float64, len(r.chans))
	err := engine.Default().ForEach(ctx, len(r.chans), func(i int) {
		h, _ := r.chans[i].Eval(cfgs)
		out[i] = r.budget.SNRdB(h)
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// locErrPerLocation evaluates noisy localization error at every grid
// point, averaging noiseDraws independent soundings. Each point draws from
// its own deterministically seeded RNG, so the parallel fan-out produces
// exactly the serial result.
func (r *sensingRig) locErrPerLocation(ctx context.Context, phases [][]float64) ([]float64, error) {
	out := make([]float64, len(r.meas))
	err := engine.Default().ForEach(ctx, len(r.meas), func(i int) {
		var sum float64
		for d := 0; d < r.noiseDraws; d++ {
			rng := seededRng(int64(1000*i + d))
			_, e := r.est.Estimate(r.meas[i], phases, r.noiseAmp, rng)
			sum += e
		}
		out[i] = sum / float64(r.noiseDraws)
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Fig5Result reproduces Figure 5: CDFs over target-room locations of
// localization error and SNR for three configurations of one shared
// surface — coverage-optimized, localization-optimized, and the joint
// multitask configuration.
type Fig5Result struct {
	Profile Profile
	// LocErr and SNR map config name → CDF series.
	LocErr map[string]Series
	SNR    map[string]Series
	// Grid size for reporting.
	Locations int
}

// RunFig5 executes the experiment. The shared rig (ray trace, sensing
// sweep, single-task optima) is cached per profile and reused by RunFig2.
func RunFig5(ctx context.Context, p Profile) (*Fig5Result, error) {
	rig, err := sharedRig(ctx, p)
	if err != nil {
		return nil, err
	}
	covRaw := rig.cachedRaw(ctx, &rig.covRaw, rig.covObj)
	locRaw := rig.cachedRaw(ctx, &rig.locRaw, rig.locObj)
	covCfg := rig.quantize(covRaw)
	locCfg := rig.quantize(locRaw)

	// Single-task medians anchor the balance score of the sweep.
	covLocs, err := rig.locErrPerLocation(ctx, covCfg)
	if err != nil {
		return nil, err
	}
	locLocs, err := rig.locErrPerLocation(ctx, locCfg)
	if err != nil {
		return nil, err
	}
	covSNRs, err := rig.snrPerLocation(ctx, covCfg)
	if err != nil {
		return nil, err
	}
	locSNRs, err := rig.snrPerLocation(ctx, locCfg)
	if err != nil {
		return nil, err
	}
	covLocMed := medianOf(covLocs)
	locLocMed := medianOf(locLocs)
	covSNRMed := medianOf(covSNRs)
	locSNRMed := medianOf(locSNRs)

	// The joint search warm-starts from the coverage solution so the
	// multitask configuration keeps coverage quality while the sensing
	// term restores angular diversity; the weight sweep picks the
	// best-balanced Pareto point (max-min retention of both single-task
	// advantages).
	var multiCfg [][]float64
	bestScore := math.Inf(-1)
	for _, w := range jointWeights {
		joint, err := rig.jointObjective(w)
		if err != nil {
			return nil, err
		}
		cand := rig.quantize(rig.optimizeRaw(ctx, joint, covRaw))
		candLocs, err := rig.locErrPerLocation(ctx, cand)
		if err != nil {
			return nil, err
		}
		candSNRs, err := rig.snrPerLocation(ctx, cand)
		if err != nil {
			return nil, err
		}
		locMed := medianOf(candLocs)
		snrMed := medianOf(candSNRs)
		locRet, snrRet := 1.0, 1.0
		if d := covLocMed - locLocMed; d > 0 {
			locRet = (covLocMed - locMed) / d
		}
		if d := covSNRMed - locSNRMed; d > 0 {
			snrRet = (snrMed - locSNRMed) / d
		}
		if score := math.Min(locRet, snrRet); score > bestScore {
			bestScore = score
			multiCfg = cand
		}
	}

	configs := map[string][][]float64{
		CfgCoverageOpt: covCfg,
		CfgLocOpt:      locCfg,
		CfgMultitask:   multiCfg,
	}
	out := &Fig5Result{
		Profile: p, Locations: len(rig.grid),
		LocErr: map[string]Series{}, SNR: map[string]Series{},
	}
	for name, phases := range configs {
		snrs, err := rig.snrPerLocation(ctx, phases)
		if err != nil {
			return nil, err
		}
		locs, err := rig.locErrPerLocation(ctx, phases)
		if err != nil {
			return nil, err
		}
		out.SNR[name] = CDFOf(name, snrs)
		out.LocErr[name] = CDFOf(name, locs)
	}
	return out, nil
}

// ShapeCheck verifies the paper's qualitative claims: (1) each single-task
// configuration wins its own metric, (2) the multitask configuration stays
// close to both single-task optima ("little performance loss"), and (3)
// the cross-metric penalty of single-task configs is visible. Returns ""
// when all hold.
func (r *Fig5Result) ShapeCheck() string {
	var probs []string
	medLoc := func(n string) float64 { return r.LocErr[n].Quantile(0.5) }
	medSNR := func(n string) float64 { return r.SNR[n].Quantile(0.5) }

	// (1) single-task wins own metric (weak inequality with slack).
	if medLoc(CfgLocOpt) > medLoc(CfgCoverageOpt)+0.05 {
		probs = append(probs, fmt.Sprintf("loc-opt median loc err %.2f worse than coverage-opt %.2f",
			medLoc(CfgLocOpt), medLoc(CfgCoverageOpt)))
	}
	if medSNR(CfgCoverageOpt) < medSNR(CfgLocOpt)-1 {
		probs = append(probs, fmt.Sprintf("coverage-opt median SNR %.1f below loc-opt %.1f",
			medSNR(CfgCoverageOpt), medSNR(CfgLocOpt)))
	}
	// (2) multitask sits in the interior of the Pareto segment: it retains
	// at least 40% of each single-task config's advantage on that config's
	// own metric. (The paper reports "little performance loss"; the
	// measured Pareto trade for a 2-bit static surface of this size is
	// larger and is recorded as measured in EXPERIMENTS.md.)
	dLoc := medLoc(CfgCoverageOpt) - medLoc(CfgLocOpt)
	dSNR := medSNR(CfgCoverageOpt) - medSNR(CfgLocOpt)
	if dLoc > 0 && medLoc(CfgMultitask) > medLoc(CfgLocOpt)+0.6*dLoc {
		probs = append(probs, fmt.Sprintf("multitask median loc err %.2f retains <40%% of the sensing advantage (%.2f..%.2f)",
			medLoc(CfgMultitask), medLoc(CfgLocOpt), medLoc(CfgCoverageOpt)))
	}
	if dSNR > 0 && medSNR(CfgMultitask) < medSNR(CfgCoverageOpt)-0.6*dSNR {
		probs = append(probs, fmt.Sprintf("multitask median SNR %.1f retains <40%% of the coverage advantage (%.1f..%.1f)",
			medSNR(CfgMultitask), medSNR(CfgLocOpt), medSNR(CfgCoverageOpt)))
	}
	return strings.Join(probs, "; ")
}

// Render prints quantile tables for both CDF families.
func (r *Fig5Result) Render() string {
	names := []string{CfgMultitask, CfgLocOpt, CfgCoverageOpt}
	loc := make([]Series, 0, 3)
	snr := make([]Series, 0, 3)
	for _, n := range names {
		loc = append(loc, r.LocErr[n])
		snr = append(snr, r.SNR[n])
	}
	q := []float64{0.1, 0.25, 0.5, 0.75, 0.9}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5: multitasking for joint localization and coverage (%s profile, %d locations)\n\n",
		r.Profile, r.Locations)
	b.WriteString(renderSeries("CDF of localization error over locations", loc, q, "m"))
	b.WriteByte('\n')
	b.WriteString(renderSeries("CDF of SNR over locations", snr, q, "dB"))
	if s := r.ShapeCheck(); s != "" {
		fmt.Fprintf(&b, "\nSHAPE CHECK FAILED: %s\n", s)
	} else {
		b.WriteString("\nshape check: multitask ≈ both single-task optima; single-task configs win their own metric\n")
	}
	return b.String()
}
