package experiments

import (
	"fmt"
	"math"
	"strings"

	"surfos/internal/em"
	"surfos/internal/geom"
	"surfos/internal/optimize"
	"surfos/internal/rfsim"
	"surfos/internal/scene"
	"surfos/internal/sensing"
	"surfos/internal/surface"
)

// Config names used across Figures 2 and 5.
const (
	CfgCoverageOpt = "Coverage Opt"
	CfgLocOpt      = "Localization Opt"
	CfgMultitask   = "Multi-tasking"
)

// sensingRig is the shared §4 multitasking setup: a 60 GHz AP in the
// living room, one static phase surface on the bedroom's east wall, and an
// evaluation grid over the target room. 60 GHz (with 802.11ad-class
// sounding bandwidth) is required for single-configuration wideband AoA:
// the aperture's differential delays must exceed the delay resolution
// c/BW (see package sensing).
type sensingRig struct {
	apt    *scene.Apartment
	surf   *surface.Surface
	sim    *rfsim.Simulator
	budget rfsim.LinkBudget
	est    *sensing.Estimator
	grid   []geom.Vec3
	meas   []*sensing.Measurement
	chans  []*rfsim.Channel

	covObj *optimize.CoverageObjective
	locObj *sensing.LocalizationObjective

	iters      int
	phaseBits  int
	noiseAmp   float64
	noiseDraws int
}

type rigParams struct {
	rows, cols  int
	pitchLambda float64 // element pitch in wavelengths (sparse aperture)
	gridStep    float64
	bins        int
	subcarriers int
	ants        int
	iters       int
	noiseDraws  int
}

// medianOf is a small helper over rfsim.Median.
func medianOf(v []float64) float64 { return rfsim.Median(v) }

func rigFor(p Profile) rigParams {
	if p == Full {
		return rigParams{
			rows: 12, cols: 36, pitchLambda: 2,
			gridStep: 0.6, bins: 81, subcarriers: 8, ants: 10,
			iters: 150, noiseDraws: 5,
		}
	}
	return rigParams{
		rows: 8, cols: 24, pitchLambda: 2,
		gridStep: 1.0, bins: 41, subcarriers: 6, ants: 6,
		iters: 80, noiseDraws: 3,
	}
}

// newSensingRig builds the rig and both single-task objectives.
func newSensingRig(p Profile) (*sensingRig, error) {
	par := rigFor(p)
	apt := scene.NewApartment()
	freq := em.Band60G
	pitch := par.pitchLambda * em.Wavelength(freq)

	mount := apt.Mounts[scene.MountEastWall]
	panel := mount.Panel(float64(par.cols)*pitch+0.02, float64(par.rows)*pitch+0.02)
	s, err := surface.New("east60", panel, surface.Layout{
		Rows: par.rows, Cols: par.cols, PitchU: pitch, PitchV: pitch,
	}, surface.Reflective, em.CosinePattern{Q: 0.5})
	if err != nil {
		return nil, err
	}
	sim, err := rfsim.New(apt.Scene, freq, s)
	if err != nil {
		return nil, err
	}
	sim.ElementEfficiency = 0.7 // passive 60 GHz element efficiency (AutoMS-class)

	budget := rfsim.LinkBudget{TxPowerDBm: 10, AntennaGainDB: 25, NoiseFigureDB: 7, BandwidthHz: 2.16e9}

	rig := &sensingRig{
		apt: apt, surf: s, sim: sim, budget: budget,
		grid:       apt.TargetGrid(par.gridStep),
		iters:      par.iters,
		phaseBits:  2,
		noiseDraws: par.noiseDraws,
	}
	if len(rig.grid) == 0 {
		return nil, fmt.Errorf("experiments: empty evaluation grid")
	}

	// Coverage objective: capacity across the grid.
	tc := sim.NewTx(apt.AP)
	rig.chans = make([]*rfsim.Channel, len(rig.grid))
	for i, pt := range rig.grid {
		rig.chans[i] = tc.Channel(pt)
	}
	rig.covObj, err = optimize.NewCoverageObjective(rig.chans, budget)
	if err != nil {
		return nil, err
	}

	// Localization objective: cross-entropy of the AoA spectrum.
	ants := sensing.ULA(apt.AP, geom.V(1, 0, 0), par.ants, em.Wavelength(freq)/2)
	bins := sensing.DefaultBins(par.bins, 60*math.Pi/180)
	subs := sensing.DefaultSubcarriers(freq, 1.8e9, par.subcarriers)
	rig.est, err = sensing.NewEstimator(sim, 0, ants, bins, subs)
	if err != nil {
		return nil, err
	}
	rig.noiseAmp = sensing.NoiseAmplitude(budget)
	rig.est.NoisePower = rig.noiseAmp * rig.noiseAmp
	rig.meas = make([]*sensing.Measurement, len(rig.grid))
	for i, pt := range rig.grid {
		rig.meas[i] = rig.est.Measure(pt)
	}
	rig.locObj, err = sensing.NewLocalizationObjective(rig.est, rig.meas, 0)
	if err != nil {
		return nil, err
	}
	return rig, nil
}

// quantize projects phases onto the static surface's fabrication states.
func (r *sensingRig) quantize(phases [][]float64) [][]float64 {
	out := make([][]float64, len(phases))
	for i, p := range phases {
		cfg := surface.Config{Property: surface.Phase, Values: p}
		out[i] = cfg.Quantize(r.phaseBits).Values
	}
	return out
}

// optimizeRaw runs Adam from an initial point, returning continuous phases.
func (r *sensingRig) optimizeRaw(obj optimize.Objective, init [][]float64) [][]float64 {
	if init == nil {
		init = optimize.ZeroPhases(obj.Shape())
	}
	res := optimize.Adam(obj, init, optimize.Options{MaxIters: r.iters})
	return res.Phases
}

// jointObjective is the paper's multitask loss at one scalarization
// weight: localization cross-entropy plus coverage loss. The coverage term
// is normalized per location; the localization weight w rebalances the sum
// (cross-entropy saturates at a few nats while per-location spectral
// efficiency reaches ~10 bits/s/Hz).
func (r *sensingRig) jointObjective(w float64) (optimize.Objective, error) {
	return optimize.NewWeightedSum(
		[]optimize.Objective{r.covObj, r.locObj},
		[]float64{1 / float64(len(r.chans)), w},
	)
}

// jointWeights is the scalarization sweep: under coarse phase quantization
// the Pareto frontier is jumpy in the weight, so the multitask
// configuration is chosen as the best-balanced point across a few weights
// rather than trusting a single scalarization.
var jointWeights = []float64{1.0, 1.5, 2.25}

// snrPerLocation evaluates link SNR at every grid point.
func (r *sensingRig) snrPerLocation(phases [][]float64) []float64 {
	cfgs := optimize.PhasesToConfigs(phases)
	out := make([]float64, len(r.chans))
	for i, ch := range r.chans {
		h, _ := ch.Eval(cfgs)
		out[i] = r.budget.SNRdB(h)
	}
	return out
}

// locErrPerLocation evaluates noisy localization error at every grid
// point, averaging noiseDraws independent soundings.
func (r *sensingRig) locErrPerLocation(phases [][]float64) []float64 {
	out := make([]float64, len(r.meas))
	for i, m := range r.meas {
		var sum float64
		for d := 0; d < r.noiseDraws; d++ {
			rng := seededRng(int64(1000*i + d))
			_, e := r.est.Estimate(m, phases, r.noiseAmp, rng)
			sum += e
		}
		out[i] = sum / float64(r.noiseDraws)
	}
	return out
}

// Fig5Result reproduces Figure 5: CDFs over target-room locations of
// localization error and SNR for three configurations of one shared
// surface — coverage-optimized, localization-optimized, and the joint
// multitask configuration.
type Fig5Result struct {
	Profile Profile
	// LocErr and SNR map config name → CDF series.
	LocErr map[string]Series
	SNR    map[string]Series
	// Grid size for reporting.
	Locations int
}

// RunFig5 executes the experiment.
func RunFig5(p Profile) (*Fig5Result, error) {
	rig, err := newSensingRig(p)
	if err != nil {
		return nil, err
	}
	covRaw := rig.optimizeRaw(rig.covObj, nil)
	locRaw := rig.optimizeRaw(rig.locObj, nil)
	covCfg := rig.quantize(covRaw)
	locCfg := rig.quantize(locRaw)

	// Single-task medians anchor the balance score of the sweep.
	covLocMed := medianOf(rig.locErrPerLocation(covCfg))
	locLocMed := medianOf(rig.locErrPerLocation(locCfg))
	covSNRMed := medianOf(rig.snrPerLocation(covCfg))
	locSNRMed := medianOf(rig.snrPerLocation(locCfg))

	// The joint search warm-starts from the coverage solution so the
	// multitask configuration keeps coverage quality while the sensing
	// term restores angular diversity; the weight sweep picks the
	// best-balanced Pareto point (max-min retention of both single-task
	// advantages).
	var multiCfg [][]float64
	bestScore := math.Inf(-1)
	for _, w := range jointWeights {
		joint, err := rig.jointObjective(w)
		if err != nil {
			return nil, err
		}
		cand := rig.quantize(rig.optimizeRaw(joint, covRaw))
		locMed := medianOf(rig.locErrPerLocation(cand))
		snrMed := medianOf(rig.snrPerLocation(cand))
		locRet, snrRet := 1.0, 1.0
		if d := covLocMed - locLocMed; d > 0 {
			locRet = (covLocMed - locMed) / d
		}
		if d := covSNRMed - locSNRMed; d > 0 {
			snrRet = (snrMed - locSNRMed) / d
		}
		if score := math.Min(locRet, snrRet); score > bestScore {
			bestScore = score
			multiCfg = cand
		}
	}

	configs := map[string][][]float64{
		CfgCoverageOpt: covCfg,
		CfgLocOpt:      locCfg,
		CfgMultitask:   multiCfg,
	}
	out := &Fig5Result{
		Profile: p, Locations: len(rig.grid),
		LocErr: map[string]Series{}, SNR: map[string]Series{},
	}
	for name, phases := range configs {
		out.SNR[name] = CDFOf(name, rig.snrPerLocation(phases))
		out.LocErr[name] = CDFOf(name, rig.locErrPerLocation(phases))
	}
	return out, nil
}

// ShapeCheck verifies the paper's qualitative claims: (1) each single-task
// configuration wins its own metric, (2) the multitask configuration stays
// close to both single-task optima ("little performance loss"), and (3)
// the cross-metric penalty of single-task configs is visible. Returns ""
// when all hold.
func (r *Fig5Result) ShapeCheck() string {
	var probs []string
	medLoc := func(n string) float64 { return r.LocErr[n].Quantile(0.5) }
	medSNR := func(n string) float64 { return r.SNR[n].Quantile(0.5) }

	// (1) single-task wins own metric (weak inequality with slack).
	if medLoc(CfgLocOpt) > medLoc(CfgCoverageOpt)+0.05 {
		probs = append(probs, fmt.Sprintf("loc-opt median loc err %.2f worse than coverage-opt %.2f",
			medLoc(CfgLocOpt), medLoc(CfgCoverageOpt)))
	}
	if medSNR(CfgCoverageOpt) < medSNR(CfgLocOpt)-1 {
		probs = append(probs, fmt.Sprintf("coverage-opt median SNR %.1f below loc-opt %.1f",
			medSNR(CfgCoverageOpt), medSNR(CfgLocOpt)))
	}
	// (2) multitask sits in the interior of the Pareto segment: it retains
	// at least 40% of each single-task config's advantage on that config's
	// own metric. (The paper reports "little performance loss"; the
	// measured Pareto trade for a 2-bit static surface of this size is
	// larger and is recorded as measured in EXPERIMENTS.md.)
	dLoc := medLoc(CfgCoverageOpt) - medLoc(CfgLocOpt)
	dSNR := medSNR(CfgCoverageOpt) - medSNR(CfgLocOpt)
	if dLoc > 0 && medLoc(CfgMultitask) > medLoc(CfgLocOpt)+0.6*dLoc {
		probs = append(probs, fmt.Sprintf("multitask median loc err %.2f retains <40%% of the sensing advantage (%.2f..%.2f)",
			medLoc(CfgMultitask), medLoc(CfgLocOpt), medLoc(CfgCoverageOpt)))
	}
	if dSNR > 0 && medSNR(CfgMultitask) < medSNR(CfgCoverageOpt)-0.6*dSNR {
		probs = append(probs, fmt.Sprintf("multitask median SNR %.1f retains <40%% of the coverage advantage (%.1f..%.1f)",
			medSNR(CfgMultitask), medSNR(CfgLocOpt), medSNR(CfgCoverageOpt)))
	}
	return strings.Join(probs, "; ")
}

// Render prints quantile tables for both CDF families.
func (r *Fig5Result) Render() string {
	names := []string{CfgMultitask, CfgLocOpt, CfgCoverageOpt}
	loc := make([]Series, 0, 3)
	snr := make([]Series, 0, 3)
	for _, n := range names {
		loc = append(loc, r.LocErr[n])
		snr = append(snr, r.SNR[n])
	}
	q := []float64{0.1, 0.25, 0.5, 0.75, 0.9}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5: multitasking for joint localization and coverage (%s profile, %d locations)\n\n",
		r.Profile, r.Locations)
	b.WriteString(renderSeries("CDF of localization error over locations", loc, q, "m"))
	b.WriteByte('\n')
	b.WriteString(renderSeries("CDF of SNR over locations", snr, q, "dB"))
	if s := r.ShapeCheck(); s != "" {
		fmt.Fprintf(&b, "\nSHAPE CHECK FAILED: %s\n", s)
	} else {
		b.WriteString("\nshape check: multitask ≈ both single-task optima; single-task configs win their own metric\n")
	}
	return b.String()
}
