package experiments

import (
	"fmt"
	"strings"

	"surfos/internal/broker"
)

// Fig6Case is one user utterance and its translated service calls.
type Fig6Case struct {
	Utterance string
	Calls     []broker.Call
	Err       error
}

// Fig6Result reproduces Figure 6: translating user demands into SurfOS
// service API calls. The paper uses GPT-4o; this repository substitutes a
// deterministic intent translator hitting the identical typed service API
// (see DESIGN.md), and the two utterances from the figure must reproduce
// its calls exactly.
type Fig6Result struct {
	Cases []Fig6Case
}

// fig6Corpus holds the paper's two examples first, then additional demands
// exercising the rest of the service surface.
var fig6Corpus = []string{
	"I want to start VR gaming in this room.",
	"I want to have an online meeting while charging my phone.",
	"the wifi is a dead zone in the bedroom",
	"please stream a movie on the tv tonight",
	"watch for motion while we are away",
	"I need to send sensitive documents to the office",
}

// RunFig6 translates the corpus.
func RunFig6() *Fig6Result {
	tr := broker.NewTranslator()
	tr.Rooms["bedroom"] = "target_room"
	out := &Fig6Result{}
	for _, u := range fig6Corpus {
		calls, err := tr.Translate(u)
		out.Cases = append(out.Cases, Fig6Case{Utterance: u, Calls: calls, Err: err})
	}
	return out
}

// PaperParity verifies the two Figure 6 examples translate to the calls
// printed in the paper, returning a diff description ("" when exact).
func (r *Fig6Result) PaperParity() string {
	want := [][]string{
		{
			`enhance_link("VR_headset", snr=30.0, latency=10.0)`,
			`enable_sensing("room_id", type="tracking", duration=3600)`,
			`optimize_coverage("room_id", median_snr=25)`,
		},
		{
			`enhance_link("laptop", snr=20.0, latency=50.0)`,
			`enable_sensing("meeting_room", type="tracking", duration=3600)`,
			`init_powering("phone", duration=3600)`,
		},
	}
	var diffs []string
	for i, w := range want {
		if i >= len(r.Cases) {
			diffs = append(diffs, fmt.Sprintf("case %d missing", i))
			continue
		}
		got := map[string]bool{}
		for _, c := range r.Cases[i].Calls {
			got[c.String()] = true
		}
		for _, call := range w {
			if !got[call] {
				diffs = append(diffs, fmt.Sprintf("case %d missing call %s", i, call))
			}
		}
		if len(r.Cases[i].Calls) != len(w) {
			diffs = append(diffs, fmt.Sprintf("case %d has %d calls, paper shows %d",
				i, len(r.Cases[i].Calls), len(w)))
		}
	}
	return strings.Join(diffs, "; ")
}

// Render prints each utterance and its calls, Figure 6 style.
func (r *Fig6Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 6: translating user demands to SurfOS service calls\n")
	b.WriteString("(deterministic intent translator standing in for the paper's GPT-4o)\n\n")
	for _, c := range r.Cases {
		fmt.Fprintf(&b, "User Input: %s\n", c.Utterance)
		if c.Err != nil {
			fmt.Fprintf(&b, "  error: %v\n\n", c.Err)
			continue
		}
		for _, call := range c.Calls {
			fmt.Fprintf(&b, "  %s\n", call)
		}
		b.WriteByte('\n')
	}
	if d := r.PaperParity(); d != "" {
		fmt.Fprintf(&b, "PAPER PARITY FAILED: %s\n", d)
	} else {
		b.WriteString("paper parity: both Figure 6 examples reproduce exactly\n")
	}
	return b.String()
}
