package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"surfos/internal/driver"
	"surfos/internal/em"
	"surfos/internal/engine"
	"surfos/internal/geom"
	"surfos/internal/hwmgr"
	"surfos/internal/orchestrator"
	"surfos/internal/rfsim"
	"surfos/internal/scenario"
	"surfos/internal/scene"
	"surfos/internal/surface"
	"surfos/internal/telemetry"
)

// Mobility governor tuning: a one-replan burst with a slow refill, so
// the scripted churn storm is deliberately over budget, and a tight
// staleness deadline that bounds how stale any plan may get. All virtual
// time.
const (
	mobilityBurst     = 1
	mobilityRefill    = 2 * time.Second
	mobilityStaleness = 1200 * time.Millisecond
)

// MobilityResult is the churn-hardening experiment: a three-room strip
// (one interference domain per room, AP in room 0) driven by a seeded
// discrete-event scenario — Poisson task arrivals and departures, a
// screen wall thrashing in room 1, and a user walking their link task
// across the room-0/room-1 boundary — with every re-plan flowing through
// the rate-limiting governor and warm-started from the previous plan.
//
// The claims it demonstrates: churn beyond the re-plan budget coalesces
// (suppressed re-plans counted, staleness bounded by the deadline, not
// by churn rate); a wall edit in room 1 re-keys rooms 0/2's cached
// traces instead of evicting them (per-region invalidation); and the
// walker crosses shards through an explicit handoff with zero task loss.
type MobilityResult struct {
	Profile Profile `json:"-"`
	Seed    int64   `json:"seed"`
	// ProfileName is the profile as text for the JSON record.
	ProfileName string `json:"profile"`
	// Timeline is the executed event log on the virtual clock.
	Timeline []string `json:"timeline"`
	// Workload counts.
	Arrivals   int `json:"arrivals"`
	Departures int `json:"departures"`
	Walks      int `json:"walks"`
	Toggles    int `json:"wall_toggles"`
	// Handoffs is how many walks crossed an interference-domain boundary.
	Handoffs int `json:"handoffs"`
	// Governor counters: re-plans run, churn events coalesced into a
	// pending re-plan, re-plans forced by the staleness deadline.
	Replans    uint64 `json:"replans"`
	Suppressed uint64 `json:"replans_suppressed"`
	Forced     uint64 `json:"replans_forced"`
	// MaxStalenessMillis is the worst observed dirty-to-replan latency
	// (virtual); StalenessBoundMillis the configured deadline.
	MaxStalenessMillis   float64 `json:"max_staleness_ms"`
	StalenessBoundMillis float64 `json:"staleness_bound_ms"`
	// TxMisses/TxCarried are the channel engine's trace re-builds vs.
	// traces carried across scene revisions without re-tracing.
	TxMisses  uint64 `json:"tx_misses"`
	TxCarried uint64 `json:"tx_carried"`
	// AnchorMigrations counts migrations of the anchor tasks in the rooms
	// the churn never touched (must be 0); FailedTasks counts task
	// failures anywhere (must be 0).
	AnchorMigrations int `json:"anchor_migrations"`
	FailedTasks      int `json:"failed_tasks"`
	// RunningAtEnd/DoneAtEnd partition the submitted tasks after the
	// final flush.
	RunningAtEnd int `json:"running_at_end"`
	DoneAtEnd    int `json:"done_at_end"`
	// WallMillis is the real time the scenario took; ReplanMeanMillis the
	// mean wall cost per governor re-plan. Benchmark fields: they vary run
	// to run and are excluded from the rendered (golden) output.
	WallMillis       float64 `json:"wall_ms"`
	ReplanMeanMillis float64 `json:"replan_mean_ms"`
}

// mobilityParams scales the experiment.
type mobilityParams struct {
	rows, cols int
	iters      int
}

func mobilityFor(p Profile) mobilityParams {
	if p == Full {
		return mobilityParams{rows: 16, cols: 16, iters: 120}
	}
	return mobilityParams{rows: 8, cols: 8, iters: 40}
}

// mobilityDeploy mounts one NR-Surface panel per room of the strip.
func mobilityDeploy(strip *scene.RoomStrip, hw *hwmgr.Manager, room, rows, cols int) error {
	spec, err := driver.Lookup(driver.ModelNRSurface)
	if err != nil {
		return err
	}
	id := scene.RoomMountNorth(room)
	pitch := em.Wavelength(spec.FreqLowHz+(spec.FreqHighHz-spec.FreqLowHz)/2) / 2
	m := strip.Mounts[id]
	panel := m.Panel(float64(cols)*pitch+0.02, float64(rows)*pitch+0.02)
	s, err := surface.New(id, panel, surface.Layout{Rows: rows, Cols: cols, PitchU: pitch, PitchV: pitch}, spec.OpMode, nil)
	if err != nil {
		return err
	}
	d, err := driver.New(spec, s)
	if err != nil {
		return err
	}
	return hw.AddSurface(id, id, d)
}

// mobilityScreen is the drywall screen that thrashes inside room 1.
func mobilityScreen(off float64) *geom.Quad {
	x := scene.RoomW + 1.5 + off
	return geom.RectXY(geom.V(x, 1.5, 0), geom.V(0, 1, 0), geom.V(0, 0, 1), 2, 2.2)
}

// RunMobility executes the seeded churn scenario. The event loop is
// single-threaded on a virtual clock and every random draw comes from
// the scenario RNG, so the same seed replays the identical timeline —
// the rendering is golden-checkable per seed.
func RunMobility(ctx context.Context, p Profile, seed int64) (*MobilityResult, error) {
	par := mobilityFor(p)
	strip := scene.NewRoomStrip(3)
	hw := hwmgr.New()
	for room := 0; room < 3; room++ {
		if err := mobilityDeploy(strip, hw, room, par.rows, par.cols); err != nil {
			return nil, err
		}
	}
	if err := hw.AddAP(&hwmgr.AccessPoint{
		ID: "ap0", Pos: strip.AP, FreqHz: 24e9,
		Budget: rfsim.DefaultBudget(), Antennas: 4,
	}); err != nil {
		return nil, err
	}
	// A dedicated engine so the trace-cache counters below belong to this
	// run alone.
	eng := engine.New(engine.Options{})
	orch, err := orchestrator.New(strip.Scene, hw, orchestrator.Options{
		OptIters: par.iters, GridStep: 1.2, Engine: eng, WarmStart: true,
	})
	if err != nil {
		return nil, err
	}
	bus := telemetry.NewEventBus()
	events, unsub := bus.Subscribe(8192)
	defer unsub()
	orch.SetEventBus(bus)

	gov := orchestrator.NewGovernor(orch, orchestrator.GovernorOptions{
		Burst: mobilityBurst, Refill: mobilityRefill, MaxStaleness: mobilityStaleness,
	})
	sc := scenario.New(seed)
	drv := scenario.NewDriver(sc, orch, gov)

	out := &MobilityResult{
		Profile: p, ProfileName: p.String(), Seed: seed,
		StalenessBoundMillis: float64(mobilityStaleness / time.Millisecond),
	}

	// Anchors: one long-lived link per room. Rooms 0 and 2 never see an
	// edit or a walker — their tasks must neither migrate nor re-trace.
	for room := 0; room < 3; room++ {
		drv.Arrive(0, fmt.Sprintf("anchor%d", room), orchestrator.ServiceLink,
			orchestrator.LinkGoal{Endpoint: fmt.Sprintf("anchor%d", room), Pos: scene.RoomCenter(room)}, 2)
	}
	out.Arrivals += 3

	// Poisson arrivals in the untouched rooms, each departing 700ms
	// later. Pre-drawn at schedule time: the draw count never depends on
	// what the scenario does at run time.
	for i, at := range scenario.PoissonTimes(sc.Rand(), 500*time.Millisecond, 2500*time.Millisecond) {
		name := fmt.Sprintf("poisson%d", i)
		room := 2 * (i % 2)
		drv.Arrive(200*time.Millisecond+at, name, orchestrator.ServiceLink,
			orchestrator.LinkGoal{Endpoint: name, Pos: scene.RoomCenter(room)}, 1)
		drv.Depart(200*time.Millisecond+at+700*time.Millisecond, name)
		out.Arrivals++
		out.Departures++
	}

	// Room-1 wall churn: six screen toggles 100ms apart — far over the
	// one-replan budget with its 2s refill, so the governor must coalesce.
	const toggles = 6
	for i := 0; i < toggles; i++ {
		off := 0.3 * float64(i%3)
		fn := func(s *scene.Scene) error { return s.MoveWall("screen_1", mobilityScreen(off)) }
		if i == 0 {
			fn = func(s *scene.Scene) error {
				s.AddWall("screen_1", mobilityScreen(off), em.Drywall)
				return nil
			}
		}
		drv.Edit(time.Second+time.Duration(i)*100*time.Millisecond,
			fmt.Sprintf("toggle wall #%d", i), []int{1}, fn)
	}
	out.Toggles = toggles

	// The walker: a link task whose user strolls from room 0's center to
	// room 1's, crossing the domain boundary mid-path.
	drv.Arrive(1800*time.Millisecond, "walker", orchestrator.ServiceLink,
		orchestrator.LinkGoal{Endpoint: "walker", Pos: scene.RoomCenter(0)}, 1)
	out.Arrivals++
	const steps = 5
	from, to := scene.RoomCenter(0), scene.RoomCenter(1)
	for i := 1; i <= steps; i++ {
		pos := from.Add(to.Sub(from).Scale(float64(i) / steps))
		drv.Walk(2*time.Second+time.Duration(i-1)*250*time.Millisecond, "walker", pos)
	}
	out.Walks = steps

	// Epilogue: flush every pending re-plan so the final table is settled.
	drv.Flush(4200 * time.Millisecond)

	start := time.Now()
	if err := sc.Run(ctx); err != nil {
		return nil, err
	}
	out.WallMillis = float64(time.Since(start)) / float64(time.Millisecond)

	for _, rec := range sc.Timeline() {
		out.Timeline = append(out.Timeline, rec.String())
	}
	out.Handoffs = drv.Handoffs()
	st := gov.Stats()
	out.Replans, out.Suppressed, out.Forced = st.Replans, st.Suppressed, st.Forced
	out.MaxStalenessMillis = float64(st.MaxStaleness) / float64(time.Millisecond)
	if st.Replans > 0 {
		out.ReplanMeanMillis = out.WallMillis / float64(st.Replans)
	}
	cs := eng.CacheStats()
	out.TxMisses, out.TxCarried = cs.TxMisses, cs.TxCarried

	// Drain the event trail: anchor tasks in the untouched rooms must
	// never migrate, and nothing may fail.
	unsub()
	anchorIDs := map[int]bool{}
	for _, room := range []int{0, 2} {
		if id, ok := drv.TaskID(fmt.Sprintf("anchor%d", room)); ok {
			anchorIDs[id] = true
		}
	}
	for ev := range events {
		switch ev.State {
		case telemetry.TaskMigrated:
			if anchorIDs[ev.TaskID] {
				out.AnchorMigrations++
			}
		case telemetry.TaskFailed:
			out.FailedTasks++
		}
	}
	for _, t := range orch.Tasks() {
		switch t.State {
		case orchestrator.TaskRunning:
			out.RunningAtEnd++
		case orchestrator.TaskDone:
			out.DoneAtEnd++
		}
	}
	return out, nil
}

// ShapeCheck verifies the churn-hardening claims. Returns "" when all
// hold.
func (r *MobilityResult) ShapeCheck() string {
	var probs []string
	if r.Suppressed == 0 {
		probs = append(probs, "over-budget churn produced no suppressed re-plans")
	}
	if r.Forced == 0 {
		probs = append(probs, "staleness deadline never forced a re-plan")
	}
	// The deadline bounds staleness up to the gap until the next event
	// gives the governor a chance to act (events are ≤500ms apart here).
	if r.MaxStalenessMillis > r.StalenessBoundMillis+500 {
		probs = append(probs, fmt.Sprintf("staleness %.0fms exceeds the %.0fms deadline beyond the event gap", r.MaxStalenessMillis, r.StalenessBoundMillis))
	}
	if r.Handoffs == 0 {
		probs = append(probs, "walker crossed the domain boundary without a handoff")
	}
	if r.AnchorMigrations != 0 {
		probs = append(probs, fmt.Sprintf("%d migration(s) of anchors in untouched rooms", r.AnchorMigrations))
	}
	if r.FailedTasks != 0 {
		probs = append(probs, fmt.Sprintf("%d task(s) failed under churn", r.FailedTasks))
	}
	if r.TxCarried == 0 {
		probs = append(probs, "no traces carried across revisions — room-1 edits re-traced everything")
	}
	// Every re-trace the churn can justify: one per (domain, revision)
	// the edits actually touched, plus the initial traces. Carried
	// revisions must dominate re-traces for the untouched rooms.
	if r.TxMisses > uint64(3+r.Toggles+2*r.Walks+10) {
		probs = append(probs, fmt.Sprintf("%d trace rebuilds for %d toggles — per-region invalidation not holding", r.TxMisses, r.Toggles))
	}
	if want := r.Arrivals - r.Departures; r.RunningAtEnd != want {
		probs = append(probs, fmt.Sprintf("%d task(s) running at end, want %d — tasks lost", r.RunningAtEnd, want))
	}
	if r.DoneAtEnd != r.Departures {
		probs = append(probs, fmt.Sprintf("%d task(s) done, want %d departures", r.DoneAtEnd, r.Departures))
	}
	return strings.Join(probs, "; ")
}

// Render prints the virtual-time timeline and the churn summary. No
// wall-clock values appear: the output is byte-identical per seed.
func (r *MobilityResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Mobility: governed re-plans under scripted churn (%s profile, seed %d)\n\n", r.Profile, r.Seed)
	b.WriteString("timeline (virtual):\n")
	for _, line := range r.Timeline {
		fmt.Fprintf(&b, "  %s\n", line)
	}
	b.WriteByte('\n')
	t := &Table{Header: []string{"metric", "value"}}
	t.Add("arrivals / departures", fmt.Sprintf("%d / %d", r.Arrivals, r.Departures))
	t.Add("wall toggles (room 1)", fmt.Sprintf("%d", r.Toggles))
	t.Add("walker steps / handoffs", fmt.Sprintf("%d / %d", r.Walks, r.Handoffs))
	t.Add("re-plans run", fmt.Sprintf("%d", r.Replans))
	t.Add("re-plans suppressed", fmt.Sprintf("%d", r.Suppressed))
	t.Add("re-plans forced (deadline)", fmt.Sprintf("%d", r.Forced))
	t.Add("max staleness", fmt.Sprintf("%.0f ms (bound %.0f ms)", r.MaxStalenessMillis, r.StalenessBoundMillis))
	t.Add("traces rebuilt / carried", fmt.Sprintf("%d / %d", r.TxMisses, r.TxCarried))
	t.Add("anchor migrations (rooms 0/2)", fmt.Sprintf("%d", r.AnchorMigrations))
	t.Add("tasks running / done at end", fmt.Sprintf("%d / %d", r.RunningAtEnd, r.DoneAtEnd))
	b.WriteString(t.String())
	if s := r.ShapeCheck(); s != "" {
		fmt.Fprintf(&b, "\nSHAPE CHECK FAILED: %s\n", s)
	} else {
		b.WriteString("\nshape check: churn coalesced, staleness bounded, untouched rooms stayed hot, handoff lost nothing\n")
	}
	return b.String()
}
