package experiments

import (
	"context"
	"os"
	"strconv"
	"testing"
)

// mobilitySeed honors the fault-suite seed plumbing: make test-mobility
// replays the scenario at each FAULT_SEED, and the assertions below are
// seed-robust by construction.
func mobilitySeed(t *testing.T) int64 {
	t.Helper()
	if s := os.Getenv("SURFOS_FAULT_SEED"); s != "" {
		seed, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("SURFOS_FAULT_SEED=%q: %v", s, err)
		}
		return seed
	}
	return 1
}

// TestMobilityShape runs the churn scenario and checks every hardening
// claim: coalescing under over-budget churn, bounded staleness, forced
// deadline re-plans, per-region trace survival, handoff with zero loss.
func TestMobilityShape(t *testing.T) {
	seed := mobilitySeed(t)
	r, err := RunMobility(context.Background(), Quick, seed)
	if err != nil {
		t.Fatal(err)
	}
	if s := r.ShapeCheck(); s != "" {
		t.Fatalf("seed %d: %s\n%s", seed, s, r.Render())
	}
	if r.Replans == 0 || len(r.Timeline) == 0 {
		t.Fatalf("seed %d: empty run: %+v", seed, r)
	}
}

// TestMobilityGoldenPerSeed pins determinism: the same seed must replay
// a byte-identical rendered timeline, and a different seed must not.
func TestMobilityGoldenPerSeed(t *testing.T) {
	seed := mobilitySeed(t)
	ctx := context.Background()
	a, err := RunMobility(ctx, Quick, seed)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunMobility(ctx, Quick, seed)
	if err != nil {
		t.Fatal(err)
	}
	if a.Render() != b.Render() {
		t.Fatalf("seed %d replay diverged:\n--- first ---\n%s\n--- second ---\n%s", seed, a.Render(), b.Render())
	}
	c, err := RunMobility(ctx, Quick, seed+100)
	if err != nil {
		t.Fatal(err)
	}
	if a.Render() == c.Render() {
		t.Fatalf("seeds %d and %d produced identical timelines — RNG not wired through", seed, seed+100)
	}
}
