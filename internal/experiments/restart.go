package experiments

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"surfos/internal/geom"
	"surfos/internal/hwmgr"
	"surfos/internal/orchestrator"
	"surfos/internal/rfsim"
	"surfos/internal/scene"
	"surfos/internal/store"
	"surfos/internal/telemetry"
)

// RestartRow is one task's snapshot in the restart experiment's before/
// after tables.
type RestartRow struct {
	ID       int
	Kind     string
	State    string
	Metric   float64
	Name     string // metric name ("" when the task carries no result)
	Surfaces []string
}

// RestartResult is the durability experiment: a control plane journals
// four tasks (two running, one idled, one ended), is killed hard — no
// final snapshot, and a torn half-record appended to the WAL to simulate
// a crash mid-write — and a brand-new control plane recovers from the
// state directory alone. The recovered epoch must re-admit exactly the
// submitted-but-not-ended tasks under their original IDs, re-plan them
// from scratch, and land the same SNR (the scene did not change, and the
// optimizer is deterministic).
type RestartResult struct {
	Profile Profile
	// Before is every task just before the kill; After is the task table of
	// the recovered epoch after its recovery reconcile.
	Before, After []RestartRow
	// WALSeq is the journal's last durable sequence number at kill time.
	WALSeq uint64
	// RecoveredLive is how many live (submitted-and-not-ended) tasks the
	// store handed the new epoch.
	RecoveredLive int
	// IdleID and EndedID name the parked and terminated tasks, so the
	// shape check can assert their fates by ID.
	IdleID, EndedID int
}

// restartPlane is one control-plane epoch of the experiment.
type restartPlane struct {
	hw    *hwmgr.Manager
	orch  *orchestrator.Orchestrator
	bus   *telemetry.EventBus
	ch    <-chan telemetry.TaskEvent
	unsub func()
}

// newRestartPlane builds a fresh two-surface control plane over the
// reference apartment, identically for both epochs.
func newRestartPlane(p Profile) (*restartPlane, error) {
	par := chaosFor(p)
	apt := scene.NewApartment()
	hw := hwmgr.New()
	if _, err := chaosDeploy(apt, hw, "east", scene.MountEastWall, par.rows, par.cols); err != nil {
		return nil, err
	}
	if _, err := chaosDeploy(apt, hw, "north", scene.MountNorthWall, par.rows, par.cols); err != nil {
		return nil, err
	}
	if err := hw.AddAP(&hwmgr.AccessPoint{
		ID: "ap0", Pos: apt.AP, FreqHz: 24e9,
		Budget: rfsim.DefaultBudget(), Antennas: 4,
	}); err != nil {
		return nil, err
	}
	orch, err := orchestrator.New(apt.Scene, hw, orchestrator.Options{
		OptIters: par.iters, GridStep: 1.2,
	})
	if err != nil {
		return nil, err
	}
	bus := telemetry.NewEventBus()
	orch.SetEventBus(bus)
	hw.SetEventBus(bus)
	ch, unsub := bus.Subscribe(256)
	return &restartPlane{hw: hw, orch: orch, bus: bus, ch: ch, unsub: unsub}, nil
}

// drainInto feeds every pending bus event to the journal, synchronously —
// the daemon does the same through Journal.Run, but the experiment keeps
// the timeline deterministic by never letting events queue across steps.
func (pl *restartPlane) drainInto(j *store.Journal) error {
	for {
		select {
		case ev := <-pl.ch:
			if err := j.Consume(ev); err != nil {
				return err
			}
		default:
			return nil
		}
	}
}

// rows snapshots the task table, sorted by ID (Tasks already sorts).
func (pl *restartPlane) rows() []RestartRow {
	var out []RestartRow
	for _, t := range pl.orch.Tasks() {
		r := RestartRow{ID: t.ID, Kind: t.Kind.String(), State: t.State.String()}
		if t.Result != nil {
			r.Metric = t.Result.Metric
			r.Name = t.Result.MetricName
			r.Surfaces = t.Result.Surfaces
		}
		out = append(out, r)
	}
	return out
}

// RunRestart executes the kill/recover cycle against a throwaway state
// directory. Everything is synchronous and seeded, so the before/after
// tables are deterministic and golden-checkable (the state directory path
// never appears in the rendering).
func RunRestart(ctx context.Context, p Profile) (*RestartResult, error) {
	dir, err := os.MkdirTemp("", "surfos-restart-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	// --- epoch 1: journal a working task mix, then die without warning ---
	pl, err := newRestartPlane(p)
	if err != nil {
		return nil, err
	}
	defer pl.unsub()
	st, state, err := store.Open(dir)
	if err != nil {
		return nil, err
	}
	journal := store.NewJournal(st, state)

	out := &RestartResult{Profile: p}
	link1, err := pl.orch.EnhanceLink(ctx, orchestrator.LinkGoal{
		Endpoint: "tv", Pos: geom.V(2.5, 5.5, scene.EvalHeight),
	}, 1)
	if err != nil {
		return nil, err
	}
	_ = link1
	if _, err := pl.orch.OptimizeCoverage(ctx, orchestrator.CoverageGoal{
		Region: scene.RegionTargetRoom,
	}, 1); err != nil {
		return nil, err
	}
	idleTask, err := pl.orch.EnhanceLink(ctx, orchestrator.LinkGoal{
		Endpoint: "laptop", Pos: geom.V(3.0, 5.0, scene.EvalHeight),
	}, 1)
	if err != nil {
		return nil, err
	}
	endedTask, err := pl.orch.EnhanceLink(ctx, orchestrator.LinkGoal{
		Endpoint: "phone", Pos: geom.V(5.0, 6.0, scene.EvalHeight),
	}, 2)
	if err != nil {
		return nil, err
	}
	out.IdleID, out.EndedID = idleTask.ID, endedTask.ID
	if err := pl.orch.Reconcile(ctx); err != nil {
		return nil, err
	}
	if err := pl.orch.SetIdle(idleTask.ID, true); err != nil {
		return nil, err
	}
	if err := pl.orch.EndTask(endedTask.ID); err != nil {
		return nil, err
	}
	if err := pl.orch.Reconcile(ctx); err != nil {
		return nil, err
	}
	if err := pl.drainInto(journal); err != nil {
		return nil, err
	}
	out.Before = pl.rows()
	out.WALSeq = st.Seq()

	// Hard kill: no Journal.Snapshot, no graceful close — and a torn
	// half-record appended to the WAL, exactly what a crash mid-write
	// leaves behind. Recovery must discard it silently.
	if err := st.Close(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(filepath.Join(dir, "wal.jsonl"), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.WriteString(`{"seq":9999,"kind":"task_state","da`); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}

	// --- epoch 2: a brand-new control plane recovers from the directory ---
	pl2, err := newRestartPlane(p)
	if err != nil {
		return nil, err
	}
	defer pl2.unsub()
	st2, state2, err := store.Open(dir)
	if err != nil {
		return nil, err
	}
	defer st2.Close()
	live := state2.Live()
	out.RecoveredLive = len(live)
	journal2 := store.NewJournal(st2, state2)
	for _, tr := range live {
		if _, err := pl2.orch.RestoreTask(tr.Spec, tr.State); err != nil {
			return nil, fmt.Errorf("restore task %d: %w", tr.ID, err)
		}
	}
	if err := pl2.orch.Reconcile(ctx); err != nil {
		return nil, err
	}
	if err := pl2.drainInto(journal2); err != nil {
		return nil, err
	}
	if err := journal2.Snapshot(); err != nil {
		return nil, err
	}
	out.After = pl2.rows()
	return out, nil
}

// ShapeCheck verifies the durability claims: the ended task stays dead,
// the idled task comes back parked, every other task comes back running
// under its original ID with its pre-crash SNR. Returns "" when all hold.
func (r *RestartResult) ShapeCheck() string {
	var probs []string
	before := map[int]RestartRow{}
	liveBefore := 0
	for _, row := range r.Before {
		before[row.ID] = row
		if row.State != "done" && row.State != "failed" {
			liveBefore++
		}
	}
	if r.RecoveredLive != liveBefore {
		probs = append(probs, fmt.Sprintf("recovered %d live task(s), want %d", r.RecoveredLive, liveBefore))
	}
	after := map[int]RestartRow{}
	for _, row := range r.After {
		after[row.ID] = row
	}
	if _, ok := after[r.EndedID]; ok {
		probs = append(probs, fmt.Sprintf("ended task %d was resurrected", r.EndedID))
	}
	if row, ok := after[r.IdleID]; !ok {
		probs = append(probs, fmt.Sprintf("idled task %d was not restored", r.IdleID))
	} else if row.State != "idle" {
		probs = append(probs, fmt.Sprintf("idled task %d restored as %q, want idle", r.IdleID, row.State))
	}
	for id, b := range before {
		if id == r.EndedID || id == r.IdleID || b.State != "running" {
			continue
		}
		a, ok := after[id]
		if !ok {
			probs = append(probs, fmt.Sprintf("running task %d was not restored", id))
			continue
		}
		if a.State != "running" {
			probs = append(probs, fmt.Sprintf("task %d restored as %q, want running", id, a.State))
			continue
		}
		if d := a.Metric - b.Metric; d > 0.01 || d < -0.01 {
			probs = append(probs, fmt.Sprintf("task %d %s %.2f after restart, was %.2f", id, a.Name, a.Metric, b.Metric))
		}
	}
	return strings.Join(probs, "; ")
}

// Render prints the kill/recover tables.
func (r *RestartResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Restart: journaled tasks survive a hard daemon kill (%s profile)\n\n", r.Profile)
	table := func(title string, rows []RestartRow) {
		fmt.Fprintf(&b, "%s\n", title)
		t := &Table{Header: []string{"task", "kind", "state", "metric", "surfaces"}}
		for _, row := range rows {
			metric := "-"
			if row.Name != "" {
				metric = fmt.Sprintf("%s=%.2f", row.Name, row.Metric)
			}
			t.Add(fmt.Sprintf("%d", row.ID), row.Kind, row.State, metric, strings.Join(row.Surfaces, "+"))
		}
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	table("before kill (journaled):", r.Before)
	fmt.Fprintf(&b, "hard kill: %d WAL record(s) durable, torn half-record appended, no final snapshot\n\n", r.WALSeq)
	table(fmt.Sprintf("after recovery (%d live task(s) replayed):", r.RecoveredLive), r.After)
	if s := r.ShapeCheck(); s != "" {
		fmt.Fprintf(&b, "SHAPE CHECK FAILED: %s\n", s)
	} else {
		b.WriteString("shape check: ended stays ended, idle stays idle, running tasks re-planned to the same SNR\n")
	}
	return b.String()
}
