package experiments

import "math/rand"

// seededRng returns a deterministic RNG so experiment outputs are
// reproducible run to run.
func seededRng(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
