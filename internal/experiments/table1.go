package experiments

import (
	"fmt"
	"strings"

	"surfos/internal/driver"
)

// Table1Result reproduces the paper's Table 1: the diverse hardware
// designs SurfOS's hardware manager masks, as read back from the live
// driver registry (not a static copy — every row is a registered,
// instantiable driver).
type Table1Result struct {
	Specs []driver.Spec
}

// RunTable1 reads the driver catalog.
func RunTable1() *Table1Result {
	return &Table1Result{Specs: driver.Catalog()}
}

// bandLabel compresses a band to the paper's notation.
func bandLabel(lo, hi float64) string {
	g := func(f float64) string {
		v := f / 1e9
		if v == float64(int(v)) {
			return fmt.Sprintf("%.0f", v)
		}
		return fmt.Sprintf("%.1f", v)
	}
	if hi <= lo*1.15 {
		mid := (lo + hi) / 2
		return g(mid) + " GHz"
	}
	return g(lo) + "-" + g(hi) + " GHz"
}

// reconfLabel matches the paper's check/cross plus granularity annotation.
func reconfLabel(s driver.Spec) string {
	if !s.Reconfigurable {
		return "no"
	}
	switch s.Granularity.String() {
	case "column-wise":
		return "yes (column-wise)"
	case "row-wise":
		return "yes (row-wise)"
	}
	return "yes"
}

// Render prints the table.
func (r *Table1Result) Render() string {
	t := &Table{Header: []string{
		"Surface System", "Freq Band", "Signal Control Mode", "T/R",
		"Re-configurable", "Cost ($/elem)", "Example Panel ($, 32x32)",
	}}
	for _, s := range r.Specs {
		t.Add(
			s.Model,
			bandLabel(s.FreqLowHz, s.FreqHighHz),
			strings.Title(s.Control.String()),
			s.OpMode.String(),
			reconfLabel(s),
			fmt.Sprintf("%.5g", s.CostPerElementUSD),
			fmt.Sprintf("%.0f", s.CostUSD(32*32)),
		)
	}
	return "Table 1: diverse hardware designs under one driver registry\n" + t.String()
}
