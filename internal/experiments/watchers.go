package experiments

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"surfos/internal/ctrlproto"
	"surfos/internal/hwmgr"
	"surfos/internal/metrics"
	"surfos/internal/orchestrator"
	"surfos/internal/rfsim"
	"surfos/internal/scene"
	"surfos/internal/telemetry"
)

// The watchers experiment stress-tests the framed northbound fan-out
// path: many clients each multiplex many task-event streams over one
// connection, a burst of events is published before and after a hard
// control-agent restart, and the run asserts that (a) every event
// reaches every stream — the per-stream drop-oldest rings are sized
// above the burst, so nothing may legitimately shed — and (b) the
// publish-to-receive latency tail stays bounded.

// watchersParams scales the watcher fleet per profile.
type watchersParams struct {
	conns          int
	streamsPerConn int
	// events per publish phase; must stay below the agent-side ring
	// buffer (256) so a zero-drop run is structurally guaranteed.
	events int
	// p99Bound is the latency ceiling the shape check enforces.
	p99Bound time.Duration
	// drainTimeout bounds the wait for full delivery of one phase.
	drainTimeout time.Duration
}

func watchersFor(p Profile) watchersParams {
	if p == Full {
		// 100 connections x 100 streams = 10k concurrent watchers.
		return watchersParams{conns: 100, streamsPerConn: 100, events: 50,
			p99Bound: 60 * time.Second, drainTimeout: 10 * time.Minute}
	}
	return watchersParams{conns: 20, streamsPerConn: 10, events: 20,
		p99Bound: 10 * time.Second, drainTimeout: 2 * time.Minute}
}

// WatchersResult is the northbound fan-out benchmark record; the field
// names are stable because BENCH_northbound.json archives a marshalled
// run.
type WatchersResult struct {
	Profile        string  `json:"profile"`
	Conns          int     `json:"conns"`
	StreamsPerConn int     `json:"streams_per_conn"`
	Streams        int     `json:"streams"`
	EventsPerPhase int     `json:"events_per_phase"`
	OpenMillis     float64 `json:"open_all_streams_ms"`
	// ReconnectMillis spans the hard agent restart: old epoch closed, new
	// agent listening on the same address, every stream reopened.
	ReconnectMillis float64 `json:"restart_reconnect_ms"`
	Phase1Expected  uint64  `json:"phase1_expected"`
	Phase1Received  uint64  `json:"phase1_received"`
	Phase2Expected  uint64  `json:"phase2_expected"`
	Phase2Received  uint64  `json:"phase2_received"`
	// BusDropped is the bus's aggregate shed count over the whole run
	// (must be zero: the rings are sized above the burst).
	BusDropped     uint64  `json:"bus_dropped"`
	P50Millis      float64 `json:"event_latency_p50_ms"`
	P99Millis      float64 `json:"event_latency_p99_ms"`
	P99BoundMillis float64 `json:"event_latency_p99_bound_ms"`
}

// listenWatchCtrl starts a control agent wired to the bus on addr.
func listenWatchCtrl(orch *orchestrator.Orchestrator, bus *telemetry.EventBus, addr string) (*ctrlproto.CtrlAgent, string, error) {
	a, err := ctrlproto.NewCtrlAgent(orch)
	if err != nil {
		return nil, "", err
	}
	a.Events = bus
	got, err := a.Listen(addr)
	if err != nil {
		return nil, "", err
	}
	return a, got.String(), nil
}

// openWatchers dials the client fleet and opens every stream, attaching
// a drain goroutine per stream that stamps receive latency and bumps the
// shared delivery counter. Stream channels (client 256) and agent rings
// (256) both exceed the phase burst, so a drained stream loses nothing.
func openWatchers(ctx context.Context, addr string, par watchersParams, hist *metrics.Histogram, received *atomic.Uint64) ([]*ctrlproto.Client, error) {
	clients := make([]*ctrlproto.Client, 0, par.conns)
	for i := 0; i < par.conns; i++ {
		c, err := ctrlproto.Dial(addr)
		if err != nil {
			closeClients(clients)
			return nil, fmt.Errorf("dial conn %d: %w", i, err)
		}
		clients = append(clients, c)
		for j := 0; j < par.streamsPerConn; j++ {
			s, err := c.OpenStream(ctx, ctrlproto.StreamTasks, "")
			if err != nil {
				closeClients(clients)
				return nil, fmt.Errorf("conn %d stream %d: %w", i, j, err)
			}
			go func(s *ctrlproto.Stream) {
				for m := range s.C {
					hist.Observe(time.Since(time.Unix(0, m.UnixNanos)).Seconds())
					received.Add(1)
				}
			}(s)
		}
	}
	return clients, nil
}

func closeClients(cs []*ctrlproto.Client) {
	for _, c := range cs {
		c.Close()
	}
}

// publishBurst stamps and publishes one phase of task events.
func publishBurst(bus *telemetry.EventBus, phase, n int) {
	for i := 0; i < n; i++ {
		bus.Publish(telemetry.TaskEvent{
			Time:   time.Now(),
			TaskID: phase*1000 + i,
			Kind:   "watchers",
			State:  telemetry.TaskRunning,
			Tenant: "default",
		})
	}
}

// awaitDelivery waits until the fleet has received want events in total.
func awaitDelivery(ctx context.Context, received *atomic.Uint64, want uint64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for received.Load() < want {
		if err := ctx.Err(); err != nil {
			return err
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("delivery stalled: %d/%d events received", received.Load(), want)
		}
		time.Sleep(5 * time.Millisecond)
	}
	return nil
}

// relistenWatchCtrl brings a new agent epoch up on the old address,
// retrying briefly while the kernel releases the port.
func relistenWatchCtrl(orch *orchestrator.Orchestrator, bus *telemetry.EventBus, addr string) (*ctrlproto.CtrlAgent, error) {
	var lastErr error
	for i := 0; i < 50; i++ {
		a, _, err := listenWatchCtrl(orch, bus, addr)
		if err == nil {
			return a, nil
		}
		lastErr = err
		time.Sleep(20 * time.Millisecond)
	}
	return nil, fmt.Errorf("relisten %s: %w", addr, lastErr)
}

// RunWatchers executes the fan-out benchmark: open the fleet, burst,
// verify complete delivery, hard-restart the agent, reopen every stream,
// burst again, verify again.
func RunWatchers(ctx context.Context, p Profile) (*WatchersResult, error) {
	par := watchersFor(p)
	apt := scene.NewApartment()
	hw := hwmgr.New()
	if _, err := chaosDeploy(apt, hw, "east", scene.MountEastWall, 8, 8); err != nil {
		return nil, err
	}
	if err := hw.AddAP(&hwmgr.AccessPoint{
		ID: "ap0", Pos: apt.AP, FreqHz: 24e9,
		Budget: rfsim.DefaultBudget(), Antennas: 4,
	}); err != nil {
		return nil, err
	}
	orch, err := orchestrator.New(apt.Scene, hw, orchestrator.Options{OptIters: 30, GridStep: 1.5})
	if err != nil {
		return nil, err
	}
	bus := telemetry.NewEventBus()
	orch.SetEventBus(bus)

	// Latency histogram: the shared DurationBuckets ladder extended so a
	// loaded tail is still measured rather than saturating at +Inf.
	reg := metrics.NewRegistry()
	bounds := append(append([]float64{}, metrics.DurationBuckets...), 30, 60, 120)
	hist := reg.Histogram("surfos_watch_event_latency_seconds",
		"Publish-to-receive latency across every watch stream.", bounds)

	out := &WatchersResult{
		Profile: p.String(), Conns: par.conns, StreamsPerConn: par.streamsPerConn,
		Streams: par.conns * par.streamsPerConn, EventsPerPhase: par.events,
		P99BoundMillis: float64(par.p99Bound) / float64(time.Millisecond),
	}
	perPhase := uint64(out.Streams) * uint64(par.events)
	out.Phase1Expected, out.Phase2Expected = perPhase, perPhase

	// --- epoch 1: open the fleet and burst ---
	agent, addr, err := listenWatchCtrl(orch, bus, "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	var received atomic.Uint64
	t0 := time.Now()
	clients, err := openWatchers(ctx, addr, par, hist, &received)
	if err != nil {
		agent.Close()
		return nil, err
	}
	out.OpenMillis = float64(time.Since(t0)) / float64(time.Millisecond)

	publishBurst(bus, 1, par.events)
	if err := awaitDelivery(ctx, &received, perPhase, par.drainTimeout); err != nil {
		closeClients(clients)
		agent.Close()
		return nil, fmt.Errorf("phase 1: %w", err)
	}
	out.Phase1Received = received.Load()

	// --- hard restart: kill the agent, every connection drops ---
	t1 := time.Now()
	agent.Close()
	closeClients(clients)
	agent2, err := relistenWatchCtrl(orch, bus, addr)
	if err != nil {
		return nil, err
	}
	defer agent2.Close()
	clients2, err := openWatchers(ctx, addr, par, hist, &received)
	if err != nil {
		return nil, err
	}
	defer closeClients(clients2)
	out.ReconnectMillis = float64(time.Since(t1)) / float64(time.Millisecond)

	// --- epoch 2: the reopened fleet must again lose nothing ---
	publishBurst(bus, 2, par.events)
	if err := awaitDelivery(ctx, &received, 2*perPhase, par.drainTimeout); err != nil {
		return nil, fmt.Errorf("phase 2: %w", err)
	}
	out.Phase2Received = received.Load() - out.Phase1Received
	out.BusDropped = bus.Dropped()
	out.P50Millis = hist.Quantile(0.50) * 1000
	out.P99Millis = hist.Quantile(0.99) * 1000
	return out, nil
}

// ShapeCheck verifies the fan-out claims: complete delivery in both
// epochs, zero shed events, and a bounded latency tail. Returns "" when
// all hold.
func (r *WatchersResult) ShapeCheck() string {
	var probs []string
	if r.Phase1Received != r.Phase1Expected {
		probs = append(probs, fmt.Sprintf("lost %d event(s) before restart", r.Phase1Expected-r.Phase1Received))
	}
	if r.Phase2Received != r.Phase2Expected {
		probs = append(probs, fmt.Sprintf("lost %d event(s) after restart", r.Phase2Expected-r.Phase2Received))
	}
	if r.BusDropped != 0 {
		probs = append(probs, fmt.Sprintf("bus shed %d event(s) though rings exceed the burst", r.BusDropped))
	}
	if r.P99Millis > r.P99BoundMillis {
		probs = append(probs, fmt.Sprintf("p99 latency %.0fms exceeds the %.0fms bound", r.P99Millis, r.P99BoundMillis))
	}
	return strings.Join(probs, "; ")
}

// Render prints the fan-out benchmark.
func (r *WatchersResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Watchers: %d multiplexed streams over %d connections (%s profile)\n\n",
		r.Streams, r.Conns, r.Profile)
	t := &Table{Header: []string{"phase", "expected", "received", "lost"}}
	t.Add("before restart", fmt.Sprintf("%d", r.Phase1Expected), fmt.Sprintf("%d", r.Phase1Received),
		fmt.Sprintf("%d", r.Phase1Expected-r.Phase1Received))
	t.Add("after restart", fmt.Sprintf("%d", r.Phase2Expected), fmt.Sprintf("%d", r.Phase2Received),
		fmt.Sprintf("%d", r.Phase2Expected-r.Phase2Received))
	b.WriteString(t.String())
	fmt.Fprintf(&b, "\nopen all streams: %.0fms; restart-to-reopened: %.0fms\n", r.OpenMillis, r.ReconnectMillis)
	fmt.Fprintf(&b, "event latency: p50=%.1fms p99=%.1fms (bound %.0fms); bus dropped=%d\n",
		r.P50Millis, r.P99Millis, r.P99BoundMillis, r.BusDropped)
	if s := r.ShapeCheck(); s != "" {
		fmt.Fprintf(&b, "SHAPE CHECK FAILED: %s\n", s)
	} else {
		b.WriteString("shape check: zero lost non-dropped events across restart, p99 within bound\n")
	}
	return b.String()
}
