package geom

import (
	"errors"
	"math"
)

// Quad is a planar convex quadrilateral, the shape of every wall panel and
// metasurface in a SurfOS scene. Corners are listed counter-clockwise when
// viewed from the side the normal points toward.
type Quad struct {
	corners [4]Vec3
	plane   Plane
	// Cached edge data for point-in-quad tests.
	edges [4]Vec3
}

// ErrDegenerateQuad is returned when the four corners are not a usable
// planar convex quadrilateral.
var ErrDegenerateQuad = errors.New("geom: degenerate or non-planar quad")

// NewQuad validates the four corners and returns the quad. The corners must
// be coplanar (within Eps scaled by size) and form a convex polygon.
func NewQuad(a, b, c, d Vec3) (*Quad, error) {
	n := b.Sub(a).Cross(c.Sub(a))
	if n.Len() < Eps {
		return nil, ErrDegenerateQuad
	}
	n = n.Normalize()
	pl := PlaneFromPoint(n, a)
	scale := a.Dist(c) + b.Dist(d)
	if math.Abs(pl.SignedDist(d)) > 1e-6*(1+scale) {
		return nil, ErrDegenerateQuad
	}
	q := &Quad{corners: [4]Vec3{a, b, c, d}, plane: pl}
	for i := range q.corners {
		q.edges[i] = q.corners[(i+1)%4].Sub(q.corners[i])
	}
	// Convexity: all edge-cross-normal consistency checks must agree.
	for i := range q.corners {
		next := q.edges[(i+1)%4]
		if q.edges[i].Cross(next).Dot(n) < -Eps {
			return nil, ErrDegenerateQuad
		}
	}
	return q, nil
}

// MustQuad is NewQuad for statically-known-good geometry; it panics on error.
func MustQuad(a, b, c, d Vec3) *Quad {
	q, err := NewQuad(a, b, c, d)
	if err != nil {
		panic(err)
	}
	return q
}

// RectXY builds an axis-aligned vertical rectangle convenience constructor:
// a rectangle spanning from corner 'origin' along direction u by width w and
// along direction v by height h. u and v must be orthogonal unit vectors.
func RectXY(origin, u, v Vec3, w, h float64) *Quad {
	a := origin
	b := origin.Add(u.Scale(w))
	c := b.Add(v.Scale(h))
	d := origin.Add(v.Scale(h))
	return MustQuad(a, b, c, d)
}

// Corners returns the four corners in order.
func (q *Quad) Corners() [4]Vec3 { return q.corners }

// Plane returns the supporting plane.
func (q *Quad) Plane() Plane { return q.plane }

// Normal returns the unit normal.
func (q *Quad) Normal() Vec3 { return q.plane.Normal }

// Center returns the centroid.
func (q *Quad) Center() Vec3 {
	s := q.corners[0].Add(q.corners[1]).Add(q.corners[2]).Add(q.corners[3])
	return s.Scale(0.25)
}

// Area returns the quad's area.
func (q *Quad) Area() float64 {
	// Split into two triangles (0,1,2) and (0,2,3).
	t1 := q.corners[1].Sub(q.corners[0]).Cross(q.corners[2].Sub(q.corners[0])).Len() / 2
	t2 := q.corners[2].Sub(q.corners[0]).Cross(q.corners[3].Sub(q.corners[0])).Len() / 2
	return t1 + t2
}

// ContainsPoint reports whether a point already on the quad's plane lies
// within the quad boundary.
func (q *Quad) ContainsPoint(p Vec3) bool {
	n := q.plane.Normal
	for i := range q.corners {
		toP := p.Sub(q.corners[i])
		if q.edges[i].Cross(toP).Dot(n) < -1e-9 {
			return false
		}
	}
	return true
}

// IntersectRay returns the ray parameter t and hit point where r strikes the
// quad, or ok=false if it misses or the hit is farther than maxT.
func (q *Quad) IntersectRay(r Ray, maxT float64) (t float64, p Vec3, ok bool) {
	t, ok = q.plane.IntersectRay(r)
	if !ok || t > maxT {
		return 0, Vec3{}, false
	}
	p = r.At(t)
	if !q.ContainsPoint(p) {
		return 0, Vec3{}, false
	}
	return t, p, true
}

// Bounds returns the quad's axis-aligned bounding box.
func (q *Quad) Bounds() AABB {
	min, max := q.corners[0], q.corners[0]
	for _, c := range q.corners[1:] {
		min = V(math.Min(min.X, c.X), math.Min(min.Y, c.Y), math.Min(min.Z, c.Z))
		max = V(math.Max(max.X, c.X), math.Max(max.Y, c.Y), math.Max(max.Z, c.Z))
	}
	return AABB{Min: min, Max: max}
}

// SampleGrid returns nu×nv points uniformly tiling the quad (cell centers).
// Only valid for parallelogram quads (all our panels are rectangles);
// the grid interpolates corners[0]→corners[1] and corners[0]→corners[3].
func (q *Quad) SampleGrid(nu, nv int) []Vec3 {
	if nu <= 0 || nv <= 0 {
		return nil
	}
	pts := make([]Vec3, 0, nu*nv)
	e1 := q.corners[1].Sub(q.corners[0])
	e2 := q.corners[3].Sub(q.corners[0])
	for j := 0; j < nv; j++ {
		fv := (float64(j) + 0.5) / float64(nv)
		for i := 0; i < nu; i++ {
			fu := (float64(i) + 0.5) / float64(nu)
			pts = append(pts, q.corners[0].Add(e1.Scale(fu)).Add(e2.Scale(fv)))
		}
	}
	return pts
}
