package geom

import "math"

// Eps is the tolerance used for intersection tests. Scene dimensions are a
// few meters, so 1e-9 m is far below any physical feature size while staying
// well above float64 rounding error at that scale.
const Eps = 1e-9

// Ray is a half-line from Origin in unit direction Dir.
type Ray struct {
	Origin Vec3
	Dir    Vec3 // unit length
}

// NewRay builds a ray from origin toward target. The direction is normalized.
func NewRay(origin, target Vec3) Ray {
	return Ray{Origin: origin, Dir: target.Sub(origin).Normalize()}
}

// At returns the point at parameter t along the ray.
func (r Ray) At(t float64) Vec3 { return r.Origin.Add(r.Dir.Scale(t)) }

// Plane is an infinite plane with unit Normal and signed offset D such that
// points p on the plane satisfy Normal·p = D.
type Plane struct {
	Normal Vec3
	D      float64
}

// PlaneFromPoint builds the plane through point p with unit normal n.
func PlaneFromPoint(n, p Vec3) Plane {
	n = n.Normalize()
	return Plane{Normal: n, D: n.Dot(p)}
}

// SignedDist returns the signed distance from p to the plane (positive on
// the normal side).
func (pl Plane) SignedDist(p Vec3) float64 { return pl.Normal.Dot(p) - pl.D }

// IntersectRay returns the ray parameter t at which r crosses the plane and
// ok=true, or ok=false if the ray is parallel to the plane or the crossing
// is behind the origin (t < Eps).
func (pl Plane) IntersectRay(r Ray) (t float64, ok bool) {
	denom := pl.Normal.Dot(r.Dir)
	if math.Abs(denom) < Eps {
		return 0, false
	}
	t = (pl.D - pl.Normal.Dot(r.Origin)) / denom
	if t < Eps {
		return 0, false
	}
	return t, true
}

// Mirror returns the mirror image of point p across the plane. Used by the
// image method for specular reflection paths.
func (pl Plane) Mirror(p Vec3) Vec3 {
	return p.Sub(pl.Normal.Scale(2 * pl.SignedDist(p)))
}

// AABB is an axis-aligned bounding box.
type AABB struct {
	Min, Max Vec3
}

// Contains reports whether p lies inside the box (inclusive).
func (b AABB) Contains(p Vec3) bool {
	return p.X >= b.Min.X && p.X <= b.Max.X &&
		p.Y >= b.Min.Y && p.Y <= b.Max.Y &&
		p.Z >= b.Min.Z && p.Z <= b.Max.Z
}

// Expand grows the box by m in every direction.
func (b AABB) Expand(m float64) AABB {
	d := V(m, m, m)
	return AABB{Min: b.Min.Sub(d), Max: b.Max.Add(d)}
}

// Center returns the box center.
func (b AABB) Center() Vec3 { return b.Min.Add(b.Max).Scale(0.5) }

// IntersectRay reports whether r hits the box within (Eps, maxT) using the
// slab method, returning the entry parameter.
func (b AABB) IntersectRay(r Ray, maxT float64) (float64, bool) {
	tmin, tmax := Eps, maxT
	for _, ax := range [3]struct{ o, d, lo, hi float64 }{
		{r.Origin.X, r.Dir.X, b.Min.X, b.Max.X},
		{r.Origin.Y, r.Dir.Y, b.Min.Y, b.Max.Y},
		{r.Origin.Z, r.Dir.Z, b.Min.Z, b.Max.Z},
	} {
		if math.Abs(ax.d) < Eps {
			if ax.o < ax.lo || ax.o > ax.hi {
				return 0, false
			}
			continue
		}
		t1 := (ax.lo - ax.o) / ax.d
		t2 := (ax.hi - ax.o) / ax.d
		if t1 > t2 {
			t1, t2 = t2, t1
		}
		if t1 > tmin {
			tmin = t1
		}
		if t2 < tmax {
			tmax = t2
		}
		if tmin > tmax {
			return 0, false
		}
	}
	return tmin, true
}
