package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestPlaneSignedDist(t *testing.T) {
	pl := PlaneFromPoint(V(0, 0, 1), V(0, 0, 2)) // z = 2
	if got := pl.SignedDist(V(5, 5, 3)); math.Abs(got-1) > 1e-12 {
		t.Errorf("dist above = %v, want 1", got)
	}
	if got := pl.SignedDist(V(0, 0, 0)); math.Abs(got+2) > 1e-12 {
		t.Errorf("dist below = %v, want -2", got)
	}
}

func TestPlaneIntersectRay(t *testing.T) {
	pl := PlaneFromPoint(V(0, 0, 1), V(0, 0, 5))
	r := Ray{Origin: V(0, 0, 0), Dir: V(0, 0, 1)}
	tt, ok := pl.IntersectRay(r)
	if !ok || math.Abs(tt-5) > 1e-12 {
		t.Errorf("intersect = %v,%v want 5,true", tt, ok)
	}
	// Ray pointing away misses.
	if _, ok := pl.IntersectRay(Ray{Origin: V(0, 0, 0), Dir: V(0, 0, -1)}); ok {
		t.Error("ray pointing away should miss")
	}
	// Parallel ray misses.
	if _, ok := pl.IntersectRay(Ray{Origin: V(0, 0, 0), Dir: V(1, 0, 0)}); ok {
		t.Error("parallel ray should miss")
	}
}

func TestPlaneMirror(t *testing.T) {
	pl := PlaneFromPoint(V(0, 0, 1), V(0, 0, 1)) // z = 1
	got := pl.Mirror(V(2, 3, 4))
	want := V(2, 3, -2)
	if !got.ApproxEqual(want, 1e-12) {
		t.Errorf("mirror = %v, want %v", got, want)
	}
}

func TestPlaneMirrorInvolution(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		n := boundedVec(r).Normalize()
		if n.IsZero() {
			continue
		}
		pl := PlaneFromPoint(n, boundedVec(r))
		p := boundedVec(r)
		if got := pl.Mirror(pl.Mirror(p)); !got.ApproxEqual(p, 1e-9) {
			t.Fatalf("mirror twice: got %v want %v", got, p)
		}
		// Mirrored point is equidistant on the other side.
		d1, d2 := pl.SignedDist(p), pl.SignedDist(pl.Mirror(p))
		if math.Abs(d1+d2) > 1e-9*(1+math.Abs(d1)) {
			t.Fatalf("mirror distances not opposite: %v vs %v", d1, d2)
		}
	}
}

func TestAABBContains(t *testing.T) {
	b := AABB{Min: V(0, 0, 0), Max: V(1, 2, 3)}
	if !b.Contains(V(0.5, 1, 1.5)) {
		t.Error("interior point not contained")
	}
	if !b.Contains(V(0, 0, 0)) || !b.Contains(V(1, 2, 3)) {
		t.Error("boundary points should be contained")
	}
	if b.Contains(V(1.1, 1, 1)) {
		t.Error("exterior point contained")
	}
}

func TestAABBIntersectRay(t *testing.T) {
	b := AABB{Min: V(1, -1, -1), Max: V(2, 1, 1)}
	r := Ray{Origin: V(0, 0, 0), Dir: V(1, 0, 0)}
	tt, ok := b.IntersectRay(r, 10)
	if !ok || math.Abs(tt-1) > 1e-12 {
		t.Errorf("aabb hit = %v,%v want 1,true", tt, ok)
	}
	// maxT closer than the box.
	if _, ok := b.IntersectRay(r, 0.5); ok {
		t.Error("hit beyond maxT should miss")
	}
	// Ray offset misses.
	if _, ok := b.IntersectRay(Ray{Origin: V(0, 5, 0), Dir: V(1, 0, 0)}, 10); ok {
		t.Error("offset ray should miss")
	}
	// Axis-parallel ray inside slab bounds.
	r2 := Ray{Origin: V(0, 0.5, 0.5), Dir: V(1, 0, 0)}
	if _, ok := b.IntersectRay(r2, 10); !ok {
		t.Error("inside-slab ray should hit")
	}
}

func TestQuadIntersect(t *testing.T) {
	// Unit square in the y=0 plane facing +y.
	q := MustQuad(V(0, 0, 0), V(0, 0, 1), V(1, 0, 1), V(1, 0, 0))
	r := Ray{Origin: V(0.5, -1, 0.5), Dir: V(0, 1, 0)}
	tt, p, ok := q.IntersectRay(r, 10)
	if !ok {
		t.Fatal("expected hit")
	}
	if math.Abs(tt-1) > 1e-12 || !p.ApproxEqual(V(0.5, 0, 0.5), 1e-12) {
		t.Errorf("hit t=%v p=%v", tt, p)
	}
	// Miss outside boundary.
	r2 := Ray{Origin: V(1.5, -1, 0.5), Dir: V(0, 1, 0)}
	if _, _, ok := q.IntersectRay(r2, 10); ok {
		t.Error("should miss outside the quad")
	}
}

func TestQuadAreaCenterNormal(t *testing.T) {
	q := MustQuad(V(0, 0, 0), V(2, 0, 0), V(2, 3, 0), V(0, 3, 0))
	if got := q.Area(); math.Abs(got-6) > 1e-12 {
		t.Errorf("area = %v, want 6", got)
	}
	if got := q.Center(); !got.ApproxEqual(V(1, 1.5, 0), 1e-12) {
		t.Errorf("center = %v", got)
	}
	if got := q.Normal(); !got.ApproxEqual(V(0, 0, 1), 1e-12) {
		t.Errorf("normal = %v", got)
	}
}

func TestNewQuadRejectsDegenerate(t *testing.T) {
	// Collinear points.
	if _, err := NewQuad(V(0, 0, 0), V(1, 0, 0), V(2, 0, 0), V(3, 0, 0)); err == nil {
		t.Error("collinear corners accepted")
	}
	// Non-planar.
	if _, err := NewQuad(V(0, 0, 0), V(1, 0, 0), V(1, 1, 0), V(0, 1, 5)); err == nil {
		t.Error("non-planar corners accepted")
	}
	// Non-convex (bowtie).
	if _, err := NewQuad(V(0, 0, 0), V(1, 1, 0), V(1, 0, 0), V(0, 1, 0)); err == nil {
		t.Error("bowtie accepted")
	}
}

func TestQuadSampleGrid(t *testing.T) {
	q := MustQuad(V(0, 0, 0), V(4, 0, 0), V(4, 2, 0), V(0, 2, 0))
	pts := q.SampleGrid(4, 2)
	if len(pts) != 8 {
		t.Fatalf("got %d points, want 8", len(pts))
	}
	// First cell center.
	if !pts[0].ApproxEqual(V(0.5, 0.5, 0), 1e-12) {
		t.Errorf("first point = %v", pts[0])
	}
	// Last cell center.
	if !pts[7].ApproxEqual(V(3.5, 1.5, 0), 1e-12) {
		t.Errorf("last point = %v", pts[7])
	}
	// All on the quad.
	for _, p := range pts {
		if !q.ContainsPoint(p) {
			t.Errorf("sample %v outside quad", p)
		}
	}
	if q.SampleGrid(0, 5) != nil {
		t.Error("zero-dim grid should be nil")
	}
}

func TestQuadBounds(t *testing.T) {
	q := MustQuad(V(0, 0, 0), V(2, 0, 0), V(2, 3, 1), V(0, 3, 1))
	b := q.Bounds()
	if !b.Min.ApproxEqual(V(0, 0, 0), 1e-12) || !b.Max.ApproxEqual(V(2, 3, 1), 1e-12) {
		t.Errorf("bounds = %v..%v", b.Min, b.Max)
	}
}

func TestRectXY(t *testing.T) {
	q := RectXY(V(1, 1, 0), V(1, 0, 0), V(0, 0, 1), 2, 3)
	c := q.Corners()
	want := [4]Vec3{V(1, 1, 0), V(3, 1, 0), V(3, 1, 3), V(1, 1, 3)}
	for i := range c {
		if !c[i].ApproxEqual(want[i], 1e-12) {
			t.Errorf("corner %d = %v, want %v", i, c[i], want[i])
		}
	}
}
