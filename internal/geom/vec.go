// Package geom provides the 3D geometric primitives used by the SurfOS
// channel simulator: vectors, rays, planes, axis-aligned boxes, and convex
// planar polygons (wall and surface panels).
//
// Conventions: right-handed coordinates, +Z up, distances in meters, angles
// in radians unless a function name says otherwise.
package geom

import (
	"fmt"
	"math"
)

// Vec3 is a 3-component vector (point or direction) in meters.
type Vec3 struct {
	X, Y, Z float64
}

// V is shorthand for constructing a Vec3.
func V(x, y, z float64) Vec3 { return Vec3{X: x, Y: y, Z: z} }

// Add returns a + b.
func (a Vec3) Add(b Vec3) Vec3 { return Vec3{a.X + b.X, a.Y + b.Y, a.Z + b.Z} }

// Sub returns a - b.
func (a Vec3) Sub(b Vec3) Vec3 { return Vec3{a.X - b.X, a.Y - b.Y, a.Z - b.Z} }

// Scale returns a scaled by s.
func (a Vec3) Scale(s float64) Vec3 { return Vec3{a.X * s, a.Y * s, a.Z * s} }

// Neg returns -a.
func (a Vec3) Neg() Vec3 { return Vec3{-a.X, -a.Y, -a.Z} }

// Dot returns the dot product a·b.
func (a Vec3) Dot(b Vec3) float64 { return a.X*b.X + a.Y*b.Y + a.Z*b.Z }

// Cross returns the cross product a×b.
func (a Vec3) Cross(b Vec3) Vec3 {
	return Vec3{
		a.Y*b.Z - a.Z*b.Y,
		a.Z*b.X - a.X*b.Z,
		a.X*b.Y - a.Y*b.X,
	}
}

// Len returns the Euclidean norm |a|.
func (a Vec3) Len() float64 { return math.Sqrt(a.Dot(a)) }

// Len2 returns the squared norm |a|², avoiding a sqrt where possible.
func (a Vec3) Len2() float64 { return a.Dot(a) }

// Dist returns the distance between points a and b.
func (a Vec3) Dist(b Vec3) float64 { return a.Sub(b).Len() }

// Normalize returns a unit vector in the direction of a. The zero vector is
// returned unchanged (callers that care must check IsZero first).
func (a Vec3) Normalize() Vec3 {
	l := a.Len()
	if l == 0 {
		return a
	}
	return a.Scale(1 / l)
}

// IsZero reports whether all components are exactly zero.
func (a Vec3) IsZero() bool { return a.X == 0 && a.Y == 0 && a.Z == 0 }

// IsFinite reports whether all components are finite (no NaN/Inf).
func (a Vec3) IsFinite() bool {
	return !math.IsNaN(a.X) && !math.IsInf(a.X, 0) &&
		!math.IsNaN(a.Y) && !math.IsInf(a.Y, 0) &&
		!math.IsNaN(a.Z) && !math.IsInf(a.Z, 0)
}

// Lerp linearly interpolates between a (t=0) and b (t=1).
func (a Vec3) Lerp(b Vec3, t float64) Vec3 {
	return a.Add(b.Sub(a).Scale(t))
}

// Reflect returns the reflection of direction a about the unit normal n,
// i.e. a - 2(a·n)n. n must be unit length.
func (a Vec3) Reflect(n Vec3) Vec3 {
	return a.Sub(n.Scale(2 * a.Dot(n)))
}

// AngleTo returns the angle in radians between a and b, in [0, π].
// Returns 0 if either vector is zero.
func (a Vec3) AngleTo(b Vec3) float64 {
	la, lb := a.Len(), b.Len()
	if la == 0 || lb == 0 {
		return 0
	}
	c := a.Dot(b) / (la * lb)
	// Clamp against floating-point drift before acos.
	if c > 1 {
		c = 1
	} else if c < -1 {
		c = -1
	}
	return math.Acos(c)
}

// String implements fmt.Stringer.
func (a Vec3) String() string {
	return fmt.Sprintf("(%.3f, %.3f, %.3f)", a.X, a.Y, a.Z)
}

// ApproxEqual reports whether a and b differ by at most eps per component.
func (a Vec3) ApproxEqual(b Vec3, eps float64) bool {
	return math.Abs(a.X-b.X) <= eps &&
		math.Abs(a.Y-b.Y) <= eps &&
		math.Abs(a.Z-b.Z) <= eps
}

// Basis returns two unit vectors u, v such that (u, v, n) forms a
// right-handed orthonormal basis with the unit vector n. Useful for laying
// out grids of surface elements on a plane.
func Basis(n Vec3) (u, v Vec3) {
	// Pick the axis least aligned with n to avoid degeneracy.
	ref := V(1, 0, 0)
	if math.Abs(n.X) > 0.9 {
		ref = V(0, 1, 0)
	}
	u = ref.Cross(n).Normalize()
	v = n.Cross(u)
	return u, v
}
