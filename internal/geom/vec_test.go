package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// boundedVec produces a random vector with components in [-10, 10), matching
// room-scale geometry and avoiding overflow in products.
func boundedVec(r *rand.Rand) Vec3 {
	return V(r.Float64()*20-10, r.Float64()*20-10, r.Float64()*20-10)
}

func TestVecBasicOps(t *testing.T) {
	a, b := V(1, 2, 3), V(4, -5, 6)
	if got := a.Add(b); got != V(5, -3, 9) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != V(-3, 7, -3) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(2); got != V(2, 4, 6) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Neg(); got != V(-1, -2, -3) {
		t.Errorf("Neg = %v", got)
	}
	if got := a.Dot(b); got != 1*4+2*(-5)+3*6 {
		t.Errorf("Dot = %v", got)
	}
}

func TestCrossRightHanded(t *testing.T) {
	x, y, z := V(1, 0, 0), V(0, 1, 0), V(0, 0, 1)
	if got := x.Cross(y); !got.ApproxEqual(z, 1e-12) {
		t.Errorf("x×y = %v, want z", got)
	}
	if got := y.Cross(z); !got.ApproxEqual(x, 1e-12) {
		t.Errorf("y×z = %v, want x", got)
	}
	if got := z.Cross(x); !got.ApproxEqual(y, 1e-12) {
		t.Errorf("z×x = %v, want y", got)
	}
}

func TestCrossOrthogonalProperty(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a := V(math.Mod(ax, 10), math.Mod(ay, 10), math.Mod(az, 10))
		b := V(math.Mod(bx, 10), math.Mod(by, 10), math.Mod(bz, 10))
		c := a.Cross(b)
		scale := a.Len() * b.Len()
		return math.Abs(c.Dot(a)) <= 1e-9*(1+scale) && math.Abs(c.Dot(b)) <= 1e-9*(1+scale)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLagrangeIdentity(t *testing.T) {
	// |a×b|² + (a·b)² == |a|²|b|²
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a := V(math.Mod(ax, 10), math.Mod(ay, 10), math.Mod(az, 10))
		b := V(math.Mod(bx, 10), math.Mod(by, 10), math.Mod(bz, 10))
		lhs := a.Cross(b).Len2() + a.Dot(b)*a.Dot(b)
		rhs := a.Len2() * b.Len2()
		return math.Abs(lhs-rhs) <= 1e-6*(1+rhs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalize(t *testing.T) {
	v := V(3, 4, 0).Normalize()
	if math.Abs(v.Len()-1) > 1e-12 {
		t.Errorf("|normalize| = %v, want 1", v.Len())
	}
	if !V(0, 0, 0).Normalize().IsZero() {
		t.Error("normalize of zero should stay zero")
	}
}

func TestReflectInvolution(t *testing.T) {
	// Reflecting twice about the same unit normal restores the vector.
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		n := boundedVec(r).Normalize()
		if n.IsZero() {
			continue
		}
		v := boundedVec(r)
		got := v.Reflect(n).Reflect(n)
		if !got.ApproxEqual(v, 1e-9) {
			t.Fatalf("reflect twice: got %v want %v (n=%v)", got, v, n)
		}
	}
}

func TestReflectPreservesLength(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		n := boundedVec(r).Normalize()
		if n.IsZero() {
			continue
		}
		v := boundedVec(r)
		if math.Abs(v.Reflect(n).Len()-v.Len()) > 1e-9*(1+v.Len()) {
			t.Fatalf("reflection changed length for v=%v n=%v", v, n)
		}
	}
}

func TestAngleTo(t *testing.T) {
	if got := V(1, 0, 0).AngleTo(V(0, 1, 0)); math.Abs(got-math.Pi/2) > 1e-12 {
		t.Errorf("angle = %v, want π/2", got)
	}
	if got := V(1, 0, 0).AngleTo(V(-1, 0, 0)); math.Abs(got-math.Pi) > 1e-12 {
		t.Errorf("angle = %v, want π", got)
	}
	if got := V(1, 1, 0).AngleTo(V(2, 2, 0)); got > 1e-7 {
		t.Errorf("angle of parallel = %v, want 0", got)
	}
	if got := V(0, 0, 0).AngleTo(V(1, 0, 0)); got != 0 {
		t.Errorf("angle with zero vector = %v, want 0", got)
	}
}

func TestLerp(t *testing.T) {
	a, b := V(0, 0, 0), V(10, -10, 2)
	if got := a.Lerp(b, 0); !got.ApproxEqual(a, 0) {
		t.Errorf("lerp 0 = %v", got)
	}
	if got := a.Lerp(b, 1); !got.ApproxEqual(b, 1e-12) {
		t.Errorf("lerp 1 = %v", got)
	}
	if got := a.Lerp(b, 0.5); !got.ApproxEqual(V(5, -5, 1), 1e-12) {
		t.Errorf("lerp 0.5 = %v", got)
	}
}

func TestBasisOrthonormal(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 300; i++ {
		n := boundedVec(r).Normalize()
		if n.IsZero() {
			continue
		}
		u, v := Basis(n)
		checks := []struct {
			name string
			got  float64
			want float64
		}{
			{"|u|", u.Len(), 1},
			{"|v|", v.Len(), 1},
			{"u·n", u.Dot(n), 0},
			{"v·n", v.Dot(n), 0},
			{"u·v", u.Dot(v), 0},
			{"(u×v)·n", u.Cross(v).Dot(n), 1}, // right-handed
		}
		for _, c := range checks {
			if math.Abs(c.got-c.want) > 1e-9 {
				t.Fatalf("basis %s = %v want %v (n=%v)", c.name, c.got, c.want, n)
			}
		}
	}
}

func TestIsFinite(t *testing.T) {
	if !V(1, 2, 3).IsFinite() {
		t.Error("finite vector reported non-finite")
	}
	if V(math.NaN(), 0, 0).IsFinite() {
		t.Error("NaN vector reported finite")
	}
	if V(0, math.Inf(1), 0).IsFinite() {
		t.Error("Inf vector reported finite")
	}
}
