package hwmgr

import "errors"

// Sentinel errors for the hardware inventory. Call sites wrap these with
// the offending identifier, so callers categorize failures with errors.Is
// — including across the ctrlproto wire, which maps them to status codes.
var (
	// ErrUnknownDevice reports a surface/AP/sensor ID absent from the
	// inventory.
	ErrUnknownDevice = errors.New("hwmgr: unknown device")
	// ErrDuplicateDevice reports a registration under an ID already taken.
	ErrDuplicateDevice = errors.New("hwmgr: duplicate device")
	// ErrInvalidDevice reports a registration missing required fields.
	ErrInvalidDevice = errors.New("hwmgr: invalid device registration")
	// ErrNoCodebook reports an adaptation request against a surface with
	// no stored configurations.
	ErrNoCodebook = errors.New("hwmgr: no codebook")
)
