package hwmgr

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"surfos/internal/driver"
	"surfos/internal/telemetry"
)

// HealthState classifies a managed device's ability to serve tasks.
type HealthState int

const (
	// Healthy devices are fully schedulable.
	Healthy HealthState = iota
	// Degraded devices still accept control writes but with reduced
	// capability: stuck elements (reported as the element mask, folded
	// into the optimizer projector) or recent transient control failures.
	Degraded
	// Dead devices have lost their control heartbeat; the scheduler plans
	// around them until they recover.
	Dead
)

func (s HealthState) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Dead:
		return "dead"
	}
	return fmt.Sprintf("HealthState(%d)", int(s))
}

// DefaultDeadThreshold is how many consecutive control/probe failures
// promote a device from degraded to dead when no explicit threshold is set.
const DefaultDeadThreshold = 3

// DeviceHealth is one device's health snapshot.
type DeviceHealth struct {
	ID    string
	State HealthState
	// StuckElements is the per-device element mask: indices frozen by
	// actuator faults, ascending.
	StuckElements []int
	// ConsecutiveFailures counts control/probe failures since the last
	// success; DeadThreshold of them mark the device dead.
	ConsecutiveFailures int
	// TotalFailures counts every recorded failure over the device's life.
	TotalFailures int
	// LastErr is the most recent failure's text ("" after a success).
	LastErr string
	// LastProbe is when the heartbeat loop last examined the device.
	LastProbe time.Time
}

// healthRecord is the mutable per-device health state, guarded by
// healthTracker.mu.
type healthRecord struct {
	state       HealthState
	stuck       []int
	consecFails int
	totalFails  int
	lastErr     string
	lastProbe   time.Time
}

// healthTracker holds the manager's health bookkeeping, separate from the
// inventory lock so health updates (driven from the scheduler's apply path)
// never contend with device lookups.
type healthTracker struct {
	mu      sync.Mutex
	records map[string]*healthRecord
	// deadThreshold overrides DefaultDeadThreshold when > 0.
	deadThreshold int
	events        *telemetry.EventBus
}

// SetEventBus attaches the task-event bus health transitions are published
// on (DeviceDegraded/DeviceDead/DeviceRecovered with DeviceID set).
func (m *Manager) SetEventBus(b *telemetry.EventBus) {
	m.health.mu.Lock()
	m.health.events = b
	m.health.mu.Unlock()
}

// SetDeadThreshold overrides how many consecutive failures mark a device
// dead (values < 1 restore the default).
func (m *Manager) SetDeadThreshold(n int) {
	m.health.mu.Lock()
	m.health.deadThreshold = n
	m.health.mu.Unlock()
}

func (t *healthTracker) threshold() int {
	if t.deadThreshold > 0 {
		return t.deadThreshold
	}
	return DefaultDeadThreshold
}

// record returns (creating if needed) the health record for id. Caller
// holds t.mu.
func (t *healthTracker) record(id string) *healthRecord {
	if t.records == nil {
		t.records = make(map[string]*healthRecord)
	}
	r, ok := t.records[id]
	if !ok {
		r = &healthRecord{}
		t.records[id] = r
	}
	return r
}

// publish emits a health transition event outside t.mu.
func publishHealth(b *telemetry.EventBus, id, state, errText string) {
	if b == nil {
		return
	}
	b.Publish(telemetry.TaskEvent{
		Time:     time.Now(),
		State:    state,
		DeviceID: id,
		Err:      errText,
	})
}

// RecordSuccess notes a successful control operation or probe against a
// device. It resets the consecutive-failure count and, if the device was
// dead or degraded only by failures, restores it (stuck elements keep it
// degraded). Emits DeviceRecovered when a dead device comes back.
func (m *Manager) RecordSuccess(id string) {
	t := &m.health
	t.mu.Lock()
	r := t.record(id)
	r.consecFails = 0
	r.lastErr = ""
	was := r.state
	if len(r.stuck) > 0 {
		r.state = Degraded
	} else {
		r.state = Healthy
	}
	now := r.state
	bus := t.events
	t.mu.Unlock()
	if was == Dead && now != Dead {
		publishHealth(bus, id, telemetry.DeviceRecovered, "")
	}
}

// RecordFailure notes a failed control operation or probe. driver
// ErrDeviceDead marks the device dead immediately; other errors count
// toward the dead threshold, degrading the device in the meantime. Emits
// DeviceDegraded/DeviceDead on transitions.
func (m *Manager) RecordFailure(id string, err error) {
	t := &m.health
	t.mu.Lock()
	r := t.record(id)
	r.consecFails++
	r.totalFails++
	if err != nil {
		r.lastErr = err.Error()
	}
	was := r.state
	if errors.Is(err, driver.ErrDeviceDead) || r.consecFails >= t.threshold() {
		r.state = Dead
	} else if r.state != Dead {
		r.state = Degraded
	}
	now := r.state
	errText := r.lastErr
	bus := t.events
	t.mu.Unlock()
	if now == was {
		return
	}
	switch now {
	case Degraded:
		publishHealth(bus, id, telemetry.DeviceDegraded, errText)
	case Dead:
		publishHealth(bus, id, telemetry.DeviceDead, errText)
	}
}

// setStuck refreshes the device's element mask, degrading/restoring as
// needed. Emits DeviceDegraded when a healthy device picks up stuck
// elements and DeviceRecovered when the last stuck element is repaired.
func (m *Manager) setStuck(id string, stuck []int) {
	t := &m.health
	t.mu.Lock()
	r := t.record(id)
	was := r.state
	r.stuck = append(r.stuck[:0:0], stuck...)
	if r.state != Dead {
		if len(r.stuck) > 0 {
			r.state = Degraded
		} else if r.consecFails == 0 {
			r.state = Healthy
		}
	}
	now := r.state
	bus := t.events
	t.mu.Unlock()
	if now == was {
		return
	}
	if now == Degraded {
		publishHealth(bus, id, telemetry.DeviceDegraded,
			fmt.Sprintf("%d stuck elements", len(stuck)))
	} else if was == Degraded && now == Healthy {
		publishHealth(bus, id, telemetry.DeviceRecovered, "")
	}
}

// RehydrateHealth restores a device's persisted health state after a
// control-plane restart, without emitting transition events (the
// transition already happened, before the crash; replaying it would
// trigger a spurious self-heal storm). A device rehydrated as Dead is
// seeded at the dead threshold, so a single successful probe — not a
// counter reset — is what brings it back, exactly as for a live death.
// Unknown device IDs are ignored: the surface inventory may have changed
// while the daemon was down.
func (m *Manager) RehydrateHealth(id string, state HealthState, lastErr string) {
	if _, err := m.Surface(id); err != nil {
		return
	}
	t := &m.health
	t.mu.Lock()
	r := t.record(id)
	r.state = state
	r.lastErr = lastErr
	if state == Dead {
		r.consecFails = t.threshold()
	} else {
		r.consecFails = 0
	}
	t.mu.Unlock()
}

// Health returns one device's health snapshot. Devices never probed or
// recorded report Healthy.
func (m *Manager) Health(id string) (DeviceHealth, error) {
	if _, err := m.Surface(id); err != nil {
		return DeviceHealth{}, err
	}
	t := &m.health
	t.mu.Lock()
	defer t.mu.Unlock()
	h := DeviceHealth{ID: id}
	if r, ok := t.records[id]; ok {
		h.State = r.state
		h.StuckElements = append([]int(nil), r.stuck...)
		h.ConsecutiveFailures = r.consecFails
		h.TotalFailures = r.totalFails
		h.LastErr = r.lastErr
		h.LastProbe = r.lastProbe
	}
	return h, nil
}

// HealthAll returns every device's health snapshot, sorted by ID.
func (m *Manager) HealthAll() []DeviceHealth {
	devs := m.Surfaces()
	out := make([]DeviceHealth, 0, len(devs))
	for _, d := range devs {
		if h, err := m.Health(d.ID); err == nil {
			out = append(out, h)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ProbeAll runs one synchronous heartbeat pass: every device is probed,
// its stuck-element mask refreshed, and its health record updated. The
// health loop calls this periodically; tests call it directly for
// deterministic fault timelines. Returns the post-probe snapshots.
func (m *Manager) ProbeAll() []DeviceHealth {
	for _, d := range m.Surfaces() {
		err := d.Drv.Probe()
		m.health.mu.Lock()
		m.health.record(d.ID).lastProbe = time.Now()
		m.health.mu.Unlock()
		if err != nil {
			m.RecordFailure(d.ID, err)
			continue
		}
		m.RecordSuccess(d.ID)
		m.setStuck(d.ID, d.Drv.StuckElements())
	}
	return m.HealthAll()
}

// RunHealth runs the heartbeat loop until ctx is cancelled, probing all
// devices every interval. Run it in its own goroutine.
func (m *Manager) RunHealth(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = time.Second
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			m.ProbeAll()
		}
	}
}
