package hwmgr

import (
	"errors"
	"testing"

	"surfos/internal/driver"
	"surfos/internal/surface"
	"surfos/internal/telemetry"
)

// drainStates collects the device-event states currently buffered on ch.
func drainStates(ch <-chan telemetry.TaskEvent) []string {
	var out []string
	for {
		select {
		case ev := <-ch:
			out = append(out, ev.State)
		default:
			return out
		}
	}
}

func healthFixture(t *testing.T) (*Manager, *driver.FaultModel, <-chan telemetry.TaskEvent) {
	t.Helper()
	m := New()
	d := newDevice(t, driver.ModelNRSurface, surface.Reflective)
	fm := driver.NewFaultModel(1)
	d.SetFaults(fm)
	if err := m.AddSurface("s1", "east_wall", d); err != nil {
		t.Fatal(err)
	}
	bus := telemetry.NewEventBus()
	m.SetEventBus(bus)
	ch, cancel := bus.Subscribe(16)
	t.Cleanup(cancel)
	return m, fm, ch
}

func TestHealthDeadViaProbeAndRecovery(t *testing.T) {
	m, fm, ch := healthFixture(t)

	if h, err := m.Health("s1"); err != nil || h.State != Healthy {
		t.Fatalf("initial health: %+v %v", h, err)
	}

	fm.SetDead(true)
	snaps := m.ProbeAll()
	if len(snaps) != 1 || snaps[0].State != Dead {
		t.Fatalf("after dead probe: %+v", snaps)
	}
	if got := drainStates(ch); len(got) != 1 || got[0] != telemetry.DeviceDead {
		t.Fatalf("events after death: %v", got)
	}
	// Dead devices are excluded from the scheduler's capability query.
	freq := m.Surfaces()[0].Drv.Spec().FreqLowHz
	if devs := m.SurfacesForBand(freq); len(devs) != 0 {
		t.Fatalf("dead device still schedulable: %v", devs)
	}

	fm.SetDead(false)
	m.ProbeAll()
	if h, _ := m.Health("s1"); h.State != Healthy || h.ConsecutiveFailures != 0 {
		t.Fatalf("after revival: %+v", h)
	}
	if got := drainStates(ch); len(got) != 1 || got[0] != telemetry.DeviceRecovered {
		t.Fatalf("events after revival: %v", got)
	}
	if devs := m.SurfacesForBand(freq); len(devs) != 1 {
		t.Fatalf("revived device not schedulable: %v", devs)
	}
}

func TestHealthConsecutiveFailuresEscalate(t *testing.T) {
	m, _, ch := healthFixture(t)
	transient := errors.New("flaky link")

	m.RecordFailure("s1", transient)
	if h, _ := m.Health("s1"); h.State != Degraded || h.ConsecutiveFailures != 1 {
		t.Fatalf("after 1 failure: %+v", h)
	}
	m.RecordFailure("s1", transient)
	if h, _ := m.Health("s1"); h.State != Degraded {
		t.Fatalf("after 2 failures: %+v", h)
	}
	// Third consecutive failure crosses DefaultDeadThreshold.
	m.RecordFailure("s1", transient)
	if h, _ := m.Health("s1"); h.State != Dead || h.TotalFailures != 3 {
		t.Fatalf("after 3 failures: %+v", h)
	}
	want := []string{telemetry.DeviceDegraded, telemetry.DeviceDead}
	got := drainStates(ch)
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("events = %v, want %v", got, want)
	}

	// One success fully restores the device.
	m.RecordSuccess("s1")
	if h, _ := m.Health("s1"); h.State != Healthy || h.ConsecutiveFailures != 0 || h.LastErr != "" {
		t.Fatalf("after success: %+v", h)
	}
}

func TestHealthDeadErrorIsImmediate(t *testing.T) {
	m, _, _ := healthFixture(t)
	m.RecordFailure("s1", driver.ErrDeviceDead)
	if h, _ := m.Health("s1"); h.State != Dead {
		t.Fatalf("ErrDeviceDead should kill immediately: %+v", h)
	}
}

func TestHealthStuckElementMask(t *testing.T) {
	m, fm, ch := healthFixture(t)
	fm.StickElement(4, 1.0)
	fm.StickElement(2, 0.5)

	m.ProbeAll()
	h, _ := m.Health("s1")
	if h.State != Degraded {
		t.Fatalf("stuck elements should degrade: %+v", h)
	}
	if len(h.StuckElements) != 2 || h.StuckElements[0] != 2 || h.StuckElements[1] != 4 {
		t.Fatalf("element mask = %v, want [2 4]", h.StuckElements)
	}
	// Degraded (not dead) devices stay schedulable.
	freq := m.Surfaces()[0].Drv.Spec().FreqLowHz
	if devs := m.SurfacesForBand(freq); len(devs) != 1 {
		t.Fatal("degraded device must remain schedulable")
	}
	if got := drainStates(ch); len(got) != 1 || got[0] != telemetry.DeviceDegraded {
		t.Fatalf("events = %v", got)
	}

	fm.RepairElement(2)
	fm.RepairElement(4)
	m.ProbeAll()
	if h, _ := m.Health("s1"); h.State != Healthy || len(h.StuckElements) != 0 {
		t.Fatalf("after repair: %+v", h)
	}
	if got := drainStates(ch); len(got) != 1 || got[0] != telemetry.DeviceRecovered {
		t.Fatalf("repair events = %v", got)
	}
}

func TestHealthCustomThreshold(t *testing.T) {
	m, _, _ := healthFixture(t)
	m.SetDeadThreshold(1)
	m.RecordFailure("s1", errors.New("flaky"))
	if h, _ := m.Health("s1"); h.State != Dead {
		t.Fatalf("threshold 1 should kill on first failure: %+v", h)
	}
}

func TestHealthUnknownDevice(t *testing.T) {
	m := New()
	if _, err := m.Health("ghost"); !errors.Is(err, ErrUnknownDevice) {
		t.Fatalf("want ErrUnknownDevice, got %v", err)
	}
}
