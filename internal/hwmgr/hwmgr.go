// Package hwmgr implements the SurfOS hardware manager (paper §3.1): the
// inventory of managed surface devices and non-surface hardware (APs,
// sensors), addressed by stable IDs, with the unified configuration
// primitives routed to the right driver and the device-local
// feedback-driven codebook adaptation that decouples real-time actuation
// from control-plane management.
package hwmgr

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"surfos/internal/driver"
	"surfos/internal/geom"
	"surfos/internal/rfsim"
	"surfos/internal/surface"
	"surfos/internal/telemetry"
)

// Device is one managed surface: a driver plus deployment identity.
type Device struct {
	ID    string
	Mount string // deployment location name, e.g. "east_wall"
	Drv   *driver.Driver
}

// AccessPoint is managed non-surface radio infrastructure. SurfOS interacts
// with APs for channel feedback and link budgets (§3.1 "non-surface
// hardware").
type AccessPoint struct {
	ID       string
	Pos      geom.Vec3
	FreqHz   float64
	Budget   rfsim.LinkBudget
	Antennas int // array size for sensing-capable APs
}

// Sensor is an external measurement device reporting to SurfOS (power
// detectors, Lidar, cameras, radars — §3.1).
type Sensor struct {
	ID   string
	Kind string // e.g. "power-detector", "lidar"
	Pos  geom.Vec3
}

// Manager is the hardware manager. It is safe for concurrent use.
type Manager struct {
	mu      sync.RWMutex
	devices map[string]*Device
	aps     map[string]*AccessPoint
	sensors map[string]*Sensor

	// health tracks per-device health (heartbeats, error counts, stuck
	// masks) under its own lock; see health.go.
	health healthTracker
}

// New creates an empty manager.
func New() *Manager {
	return &Manager{
		devices: make(map[string]*Device),
		aps:     make(map[string]*AccessPoint),
		sensors: make(map[string]*Sensor),
	}
}

// AddSurface registers a surface device under a unique ID.
func (m *Manager) AddSurface(id, mount string, d *driver.Driver) error {
	if id == "" || d == nil {
		return fmt.Errorf("%w: surface needs an id and a driver", ErrInvalidDevice)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.devices[id]; dup {
		return fmt.Errorf("%w: surface id %q", ErrDuplicateDevice, id)
	}
	m.devices[id] = &Device{ID: id, Mount: mount, Drv: d}
	return nil
}

// RemoveSurface unregisters a device (e.g. hardware decommissioned).
func (m *Manager) RemoveSurface(id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.devices[id]; !ok {
		return fmt.Errorf("%w: surface %q", ErrUnknownDevice, id)
	}
	delete(m.devices, id)
	return nil
}

// Surface looks up a device.
func (m *Manager) Surface(id string) (*Device, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	d, ok := m.devices[id]
	if !ok {
		return nil, fmt.Errorf("%w: surface %q", ErrUnknownDevice, id)
	}
	return d, nil
}

// Surfaces returns all devices sorted by ID.
func (m *Manager) Surfaces() []*Device {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]*Device, 0, len(m.devices))
	for _, d := range m.devices {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// SurfacesForBand returns the devices whose designs operate at freqHz,
// sorted by ID — the orchestrator's capability query. Dead devices are
// excluded: the scheduler must plan around hardware whose control
// heartbeat is lost, and re-include it once the health loop sees it back.
func (m *Manager) SurfacesForBand(freqHz float64) []*Device {
	all := m.Surfaces()
	out := all[:0:0]
	for _, d := range all {
		if d.Drv.Spec().SupportsFreq(freqHz) && !m.isDead(d.ID) {
			out = append(out, d)
		}
	}
	return out
}

// isDead reports whether the health tracker currently marks id dead.
func (m *Manager) isDead(id string) bool {
	m.health.mu.Lock()
	defer m.health.mu.Unlock()
	r, ok := m.health.records[id]
	return ok && r.state == Dead
}

// AddAP registers an access point.
func (m *Manager) AddAP(ap *AccessPoint) error {
	if ap == nil || ap.ID == "" {
		return fmt.Errorf("%w: AP needs an id", ErrInvalidDevice)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.aps[ap.ID]; dup {
		return fmt.Errorf("%w: AP id %q", ErrDuplicateDevice, ap.ID)
	}
	m.aps[ap.ID] = ap
	return nil
}

// AP looks up an access point.
func (m *Manager) AP(id string) (*AccessPoint, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	ap, ok := m.aps[id]
	if !ok {
		return nil, fmt.Errorf("%w: AP %q", ErrUnknownDevice, id)
	}
	return ap, nil
}

// APs returns all registered access points sorted by ID.
func (m *Manager) APs() []*AccessPoint {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]*AccessPoint, 0, len(m.aps))
	for _, ap := range m.aps {
		out = append(out, ap)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// AddSensor registers an external sensor.
func (m *Manager) AddSensor(s *Sensor) error {
	if s == nil || s.ID == "" {
		return fmt.Errorf("%w: sensor needs an id", ErrInvalidDevice)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.sensors[s.ID]; dup {
		return fmt.Errorf("%w: sensor id %q", ErrDuplicateDevice, s.ID)
	}
	m.sensors[s.ID] = s
	return nil
}

// Sensors returns all sensors sorted by ID.
func (m *Manager) Sensors() []*Sensor {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]*Sensor, 0, len(m.sensors))
	for _, s := range m.sensors {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ShiftPhase routes the unified phase primitive to a device.
func (m *Manager) ShiftPhase(id string, cfg surface.Config) error {
	d, err := m.Surface(id)
	if err != nil {
		return err
	}
	return d.Drv.ShiftPhase(cfg)
}

// SetAmplitude routes the unified amplitude primitive to a device.
func (m *Manager) SetAmplitude(id string, cfg surface.Config) error {
	d, err := m.Surface(id)
	if err != nil {
		return err
	}
	return d.Drv.SetAmplitude(cfg)
}

// StoreCodebook pushes a codebook to a device (the asynchronous
// control-plane path; real-time selection happens locally via feedback).
func (m *Manager) StoreCodebook(id string, labels []string, cfgs []surface.Config) error {
	d, err := m.Surface(id)
	if err != nil {
		return err
	}
	return d.Drv.StoreCodebook(labels, cfgs)
}

// ApplyLatency returns how long a configuration update takes to reach the
// device — the driver-exposed control delay the scheduler must plan around.
// Passive devices report ok=false ("infinite control delay", like ROM).
func (m *Manager) ApplyLatency(id string) (time.Duration, bool, error) {
	d, err := m.Surface(id)
	if err != nil {
		return 0, false, err
	}
	spec := d.Drv.Spec()
	return spec.ControlDelay, spec.Reconfigurable, nil
}

// AdaptFromFeedback performs the device-local real-time reaction: given one
// link metric per stored codebook entry (e.g. SNR reported by the endpoint
// under each entry during a beacon sweep), it activates the best entry and
// returns its index.
func (m *Manager) AdaptFromFeedback(id string, metricPerEntry []float64) (int, error) {
	d, err := m.Surface(id)
	if err != nil {
		return 0, err
	}
	n := d.Drv.CodebookLen()
	if n == 0 {
		return 0, fmt.Errorf("%w: surface %q", ErrNoCodebook, id)
	}
	if len(metricPerEntry) != n {
		return 0, fmt.Errorf("hwmgr: %d metrics for %d codebook entries", len(metricPerEntry), n)
	}
	best := 0
	for i, v := range metricPerEntry {
		if v > metricPerEntry[best] {
			best = i
		}
	}
	if err := d.Drv.Select(best); err != nil {
		return 0, err
	}
	return best, nil
}

// TotalCostUSD sums the hardware cost of all managed surfaces — the
// quantity the paper's Figure 4(b) trades against performance.
func (m *Manager) TotalCostUSD() float64 {
	var sum float64
	for _, d := range m.Surfaces() {
		sum += d.Drv.CostUSD()
	}
	return sum
}

// TotalAreaM2 sums the physical surface area — Figure 4(c)'s axis.
func (m *Manager) TotalAreaM2() float64 {
	var sum float64
	for _, d := range m.Surfaces() {
		sum += d.Drv.Surface().AreaM2()
	}
	return sum
}

// CrossBandBlockers returns devices whose panels significantly attenuate a
// frequency outside their design band — the §2.1 hazard ("surfaces
// designed for 2.4 GHz may block 3 GHz cellular and 5 GHz Wi-Fi").
// threshold is the one-pass penetration loss in dB above which a panel
// counts as a blocker.
func (m *Manager) CrossBandBlockers(freqHz, thresholdDB float64) []*Device {
	var out []*Device
	for _, d := range m.Surfaces() {
		spec := d.Drv.Spec()
		if spec.SupportsFreq(freqHz) {
			continue // in-band interaction is intended, not a hazard
		}
		if spec.Response == nil {
			continue // no wideband response on file: cannot assess
		}
		if spec.Response.PenetrationLossDB(freqHz) >= thresholdDB {
			out = append(out, d)
		}
	}
	return out
}

// AdaptAll runs the device-local codebook selection for every surface that
// has stored entries, using the smoothed per-entry link metrics from the
// telemetry aggregator. Devices without any feedback keep their current
// selection. Returns the devices that switched entries.
func (m *Manager) AdaptAll(agg *telemetry.Aggregator) []string {
	var switched []string
	for _, d := range m.Surfaces() {
		n := d.Drv.CodebookLen()
		if n < 2 || agg.Samples(d.ID) == 0 {
			continue
		}
		_, before, hadActive := d.Drv.Active()
		metrics := agg.Metrics(d.ID, n, math.Inf(-1))
		idx, err := m.AdaptFromFeedback(d.ID, metrics)
		if err != nil {
			continue
		}
		_, after, _ := d.Drv.Active()
		if hadActive && after != before {
			switched = append(switched, d.ID)
		}
		_ = idx
	}
	return switched
}
