package hwmgr

import (
	"math"
	"testing"

	"surfos/internal/driver"
	"surfos/internal/em"
	"surfos/internal/geom"
	"surfos/internal/surface"
	"surfos/internal/telemetry"
)

func newDevice(t *testing.T, model string, mode surface.OpMode) *driver.Driver {
	t.Helper()
	panel := geom.RectXY(geom.V(0, 0, 1), geom.V(-1, 0, 0), geom.V(0, 0, 1), 0.3, 0.3)
	s, err := surface.New("p", panel, surface.Layout{Rows: 3, Cols: 3, PitchU: 0.00625, PitchV: 0.00625}, mode, nil)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := driver.Lookup(model)
	if err != nil {
		t.Fatal(err)
	}
	d, err := driver.New(spec, s)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestAddLookupRemove(t *testing.T) {
	m := New()
	d := newDevice(t, driver.ModelNRSurface, surface.Reflective)
	if err := m.AddSurface("s1", "east_wall", d); err != nil {
		t.Fatal(err)
	}
	if err := m.AddSurface("s1", "east_wall", d); err == nil {
		t.Error("duplicate id accepted")
	}
	if err := m.AddSurface("", "x", d); err == nil {
		t.Error("empty id accepted")
	}
	dev, err := m.Surface("s1")
	if err != nil || dev.Mount != "east_wall" {
		t.Fatalf("lookup: %v %v", dev, err)
	}
	if _, err := m.Surface("nope"); err == nil {
		t.Error("unknown id accepted")
	}
	if err := m.RemoveSurface("s1"); err != nil {
		t.Fatal(err)
	}
	if err := m.RemoveSurface("s1"); err == nil {
		t.Error("double remove accepted")
	}
}

func TestSurfacesSortedAndBandQuery(t *testing.T) {
	m := New()
	if err := m.AddSurface("b", "m1", newDevice(t, driver.ModelNRSurface, surface.Reflective)); err != nil {
		t.Fatal(err)
	}
	if err := m.AddSurface("a", "m2", newDevice(t, driver.ModelScatterMIMO, surface.Reflective)); err != nil {
		t.Fatal(err)
	}
	all := m.Surfaces()
	if len(all) != 2 || all[0].ID != "a" || all[1].ID != "b" {
		t.Fatalf("unsorted surfaces: %v", all)
	}
	at24 := m.SurfacesForBand(24e9)
	if len(at24) != 1 || at24[0].ID != "b" {
		t.Errorf("band query returned %v", at24)
	}
	if got := m.SurfacesForBand(100e9); len(got) != 0 {
		t.Errorf("no device should support 100 GHz: %v", got)
	}
}

func TestAPsAndSensors(t *testing.T) {
	m := New()
	if err := m.AddAP(&AccessPoint{ID: "ap1", FreqHz: em.Band24G}); err != nil {
		t.Fatal(err)
	}
	if err := m.AddAP(&AccessPoint{ID: "ap1"}); err == nil {
		t.Error("duplicate AP accepted")
	}
	if err := m.AddAP(nil); err == nil {
		t.Error("nil AP accepted")
	}
	if _, err := m.AP("ap1"); err != nil {
		t.Error(err)
	}
	if _, err := m.AP("zz"); err == nil {
		t.Error("unknown AP accepted")
	}
	if err := m.AddSensor(&Sensor{ID: "lidar0", Kind: "lidar"}); err != nil {
		t.Fatal(err)
	}
	if err := m.AddSensor(&Sensor{ID: "lidar0"}); err == nil {
		t.Error("duplicate sensor accepted")
	}
	if got := len(m.Sensors()); got != 1 {
		t.Errorf("sensors = %d", got)
	}
	if got := len(m.APs()); got != 1 {
		t.Errorf("aps = %d", got)
	}
}

func TestUnifiedPrimitivesRoute(t *testing.T) {
	m := New()
	if err := m.AddSurface("s1", "w", newDevice(t, driver.ModelNRSurface, surface.Reflective)); err != nil {
		t.Fatal(err)
	}
	cfg := surface.Config{Property: surface.Phase, Values: make([]float64, 9)}
	if err := m.ShiftPhase("s1", cfg); err != nil {
		t.Fatal(err)
	}
	if err := m.ShiftPhase("zz", cfg); err == nil {
		t.Error("unknown device accepted")
	}
	if err := m.SetAmplitude("s1", surface.Config{Property: surface.Amplitude, Values: make([]float64, 9)}); err == nil {
		t.Error("amplitude on a phase design should fail")
	}
}

func TestCodebookAndFeedbackAdaptation(t *testing.T) {
	m := New()
	if err := m.AddSurface("s1", "w", newDevice(t, driver.ModelNRSurface, surface.Reflective)); err != nil {
		t.Fatal(err)
	}
	mk := func(v float64) surface.Config {
		vals := make([]float64, 9)
		for i := range vals {
			vals[i] = v
		}
		return surface.Config{Property: surface.Phase, Values: vals}
	}
	if err := m.StoreCodebook("s1", []string{"b0", "b1", "b2"},
		[]surface.Config{mk(0), mk(1), mk(2)}); err != nil {
		t.Fatal(err)
	}
	best, err := m.AdaptFromFeedback("s1", []float64{3.0, 9.5, 7.1})
	if err != nil || best != 1 {
		t.Fatalf("adapt: best=%d err=%v, want 1", best, err)
	}
	dev, _ := m.Surface("s1")
	_, label, _ := dev.Drv.Active()
	if label != "b1" {
		t.Errorf("active after adapt = %q", label)
	}
	if _, err := m.AdaptFromFeedback("s1", []float64{1}); err == nil {
		t.Error("metric count mismatch accepted")
	}
	if _, err := m.AdaptFromFeedback("zz", nil); err == nil {
		t.Error("unknown device accepted")
	}
	// Device without a codebook.
	if err := m.AddSurface("s2", "w", newDevice(t, driver.ModelNRSurface, surface.Reflective)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AdaptFromFeedback("s2", []float64{}); err == nil {
		t.Error("empty codebook accepted")
	}
}

func TestApplyLatency(t *testing.T) {
	m := New()
	if err := m.AddSurface("prog", "w", newDevice(t, driver.ModelNRSurface, surface.Reflective)); err != nil {
		t.Fatal(err)
	}
	if err := m.AddSurface("pass", "w", newDevice(t, driver.ModelAutoMS, surface.Reflective)); err != nil {
		t.Fatal(err)
	}
	d, reconf, err := m.ApplyLatency("prog")
	if err != nil || !reconf || d <= 0 {
		t.Errorf("programmable latency: %v %v %v", d, reconf, err)
	}
	_, reconf, err = m.ApplyLatency("pass")
	if err != nil || reconf {
		t.Errorf("passive should report non-reconfigurable: %v %v", reconf, err)
	}
	if _, _, err := m.ApplyLatency("zz"); err == nil {
		t.Error("unknown device accepted")
	}
}

func TestCostAndArea(t *testing.T) {
	m := New()
	d1 := newDevice(t, driver.ModelNRSurface, surface.Reflective)
	d2 := newDevice(t, driver.ModelAutoMS, surface.Reflective)
	if err := m.AddSurface("a", "w", d1); err != nil {
		t.Fatal(err)
	}
	if err := m.AddSurface("b", "w", d2); err != nil {
		t.Fatal(err)
	}
	want := d1.CostUSD() + d2.CostUSD()
	if got := m.TotalCostUSD(); math.Abs(got-want) > 1e-9 {
		t.Errorf("cost = %v, want %v", got, want)
	}
	wantA := d1.Surface().AreaM2() + d2.Surface().AreaM2()
	if got := m.TotalAreaM2(); math.Abs(got-wantA) > 1e-12 {
		t.Errorf("area = %v, want %v", got, wantA)
	}
}

func TestCrossBandBlockers(t *testing.T) {
	m := New()
	// A 2.4 GHz transmissive surface (LAIA) blocks 5 GHz Wi-Fi noticeably.
	if err := m.AddSurface("wifi24", "wall", newDevice(t, driver.ModelLAIA, surface.Transmissive)); err != nil {
		t.Fatal(err)
	}
	blockers := m.CrossBandBlockers(5.5e9, 3)
	if len(blockers) != 1 || blockers[0].ID != "wifi24" {
		t.Errorf("expected LAIA panel to block 5.5 GHz: %v", blockers)
	}
	// In its own band it is not counted as a hazard.
	if got := m.CrossBandBlockers(2.4e9, 3); len(got) != 0 {
		t.Errorf("in-band device flagged as blocker: %v", got)
	}
	// Far below band it is transparent.
	if got := m.CrossBandBlockers(0.4e9, 3); len(got) != 0 {
		t.Errorf("sub-band transparent panel flagged: %v", got)
	}
}

func TestAdaptAllFromAggregator(t *testing.T) {
	m := New()
	if err := m.AddSurface("s1", "w", newDevice(t, driver.ModelNRSurface, surface.Reflective)); err != nil {
		t.Fatal(err)
	}
	mk := func(v float64) surface.Config {
		vals := make([]float64, 9)
		for i := range vals {
			vals[i] = v
		}
		return surface.Config{Property: surface.Phase, Values: vals}
	}
	if err := m.StoreCodebook("s1", []string{"b0", "b1"}, []surface.Config{mk(0), mk(1)}); err != nil {
		t.Fatal(err)
	}
	agg := telemetry.NewAggregator()

	// No feedback yet: nothing switches.
	if got := m.AdaptAll(agg); len(got) != 0 {
		t.Errorf("switched without feedback: %v", got)
	}

	// Entry 1 reports better SNR: the device switches to it.
	agg.Observe(telemetry.Report{DeviceID: "s1", ConfigIdx: 0, SNRdB: 5})
	agg.Observe(telemetry.Report{DeviceID: "s1", ConfigIdx: 1, SNRdB: 19})
	switched := m.AdaptAll(agg)
	if len(switched) != 1 || switched[0] != "s1" {
		t.Fatalf("switched = %v", switched)
	}
	dev, _ := m.Surface("s1")
	if _, label, _ := dev.Drv.Active(); label != "b1" {
		t.Errorf("active = %q, want b1", label)
	}
	// Re-adapting with the same feedback is a no-op.
	if got := m.AdaptAll(agg); len(got) != 0 {
		t.Errorf("re-adapt switched: %v", got)
	}
}
