package hwmgr

import "surfos/internal/metrics"

// RegisterMetrics exposes per-device health on a metrics registry. Each
// device emits its current state as a one-hot gauge (the Prometheus idiom
// for enums) plus failure and stuck-element counts, all read from the
// health tracker at scrape time so the label set follows the inventory.
func (m *Manager) RegisterMetrics(r *metrics.Registry) {
	r.RegisterCollector(func() []metrics.Family {
		stateF := metrics.Family{Name: "surfos_device_health_state", Help: "Device health state (1 on the current state's series).", Type: "gauge"}
		stuckF := metrics.Family{Name: "surfos_device_stuck_elements", Help: "Elements frozen by actuator faults.", Type: "gauge"}
		failsF := metrics.Family{Name: "surfos_device_failures_total", Help: "Control/probe failures over the device's life.", Type: "counter"}
		states := []HealthState{Healthy, Degraded, Dead}
		for _, h := range m.HealthAll() {
			for _, s := range states {
				v := 0.0
				if h.State == s {
					v = 1
				}
				stateF.Samples = append(stateF.Samples, metrics.Sample{
					Labels: []metrics.Label{{Name: "device", Value: h.ID}, {Name: "state", Value: s.String()}},
					Value:  v,
				})
			}
			lbl := []metrics.Label{{Name: "device", Value: h.ID}}
			stuckF.Samples = append(stuckF.Samples, metrics.Sample{Labels: lbl, Value: float64(len(h.StuckElements))})
			failsF.Samples = append(failsF.Samples, metrics.Sample{Labels: lbl, Value: float64(h.TotalFailures)})
		}
		return []metrics.Family{stateF, stuckF, failsF}
	})
}
