package hwmgr

import (
	"testing"
)

// TestRehydrateHealth covers the recovery path: a restarted control plane
// restores journaled health silently (no transition events — replaying
// them would trigger a spurious self-heal storm), and a rehydrated-dead
// device recovers on its first successful probe, exactly like a live
// death would.
func TestRehydrateHealth(t *testing.T) {
	m, _, ch := healthFixture(t)

	m.RehydrateHealth("s1", Dead, "heartbeat lost")
	if evs := drainStates(ch); len(evs) != 0 {
		t.Errorf("rehydration emitted events: %v", evs)
	}
	h, err := m.Health("s1")
	if err != nil {
		t.Fatal(err)
	}
	if h.State != Dead || h.LastErr != "heartbeat lost" {
		t.Errorf("health = %+v", h)
	}
	if h.ConsecutiveFailures != DefaultDeadThreshold {
		t.Errorf("dead rehydration seeds %d consecutive failures, want the threshold %d",
			h.ConsecutiveFailures, DefaultDeadThreshold)
	}

	// One successful probe brings the device back — and that recovery IS a
	// fresh transition, so it is published.
	m.ProbeAll()
	h, _ = m.Health("s1")
	if h.State != Healthy {
		t.Errorf("state after probe = %v, want healthy", h.State)
	}
	found := false
	for _, ev := range drainStates(ch) {
		if ev == "device_recovered" {
			found = true
		}
	}
	if !found {
		t.Error("recovery after rehydrated death not published")
	}

	// Degraded rehydration does not pin a failure count.
	m.RehydrateHealth("s1", Degraded, "2 stuck elements")
	h, _ = m.Health("s1")
	if h.State != Degraded || h.ConsecutiveFailures != 0 {
		t.Errorf("degraded rehydration = %+v", h)
	}

	// Unknown devices are ignored: the inventory may have changed while
	// the daemon was down.
	m.RehydrateHealth("ghost", Dead, "")
	if _, err := m.Health("ghost"); err == nil {
		t.Error("ghost device materialized")
	}
}
