// Package metrics is a dependency-free Prometheus text-format (0.0.4)
// exposition registry. SurfOS components register instruments — counters,
// gauges, histograms — or scrape-time collectors for families whose label
// sets are dynamic (per-device, per-tenant, per-subscriber), and the
// daemon serves one registry over HTTP at /metrics.
//
// The package implements only what the daemon needs: no label cardinality
// tracking, no metric expiry, no protobuf exposition. Instruments are safe
// for concurrent use; collectors run on the scraping goroutine.
package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name="value" pair on a sample.
type Label struct {
	Name  string
	Value string
}

// Sample is one exposition line within a family: an optional name suffix
// (e.g. "_bucket"), labels, and a value.
type Sample struct {
	Suffix string
	Labels []Label
	Value  float64
}

// Family is one metric family: a # HELP/# TYPE header plus samples.
type Family struct {
	Name    string
	Help    string
	Type    string // "counter", "gauge", "histogram", "untyped"
	Samples []Sample
}

// Collector produces families at scrape time — the hook for metrics whose
// label sets change at runtime.
type Collector func() []Family

// Registry holds instruments and collectors and renders them as
// Prometheus text.
type Registry struct {
	mu         sync.Mutex
	families   []*instrumentFamily
	collectors []Collector
}

// instrumentFamily is a statically-registered family backed by one
// instrument.
type instrumentFamily struct {
	name, help, typ string
	collect         func() []Sample
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry { return &Registry{} }

func (r *Registry) add(name, help, typ string, collect func() []Sample) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.families = append(r.families, &instrumentFamily{name: name, help: help, typ: typ, collect: collect})
}

// RegisterCollector adds a scrape-time family producer.
func (r *Registry) RegisterCollector(c Collector) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, c)
}

// Counter is a monotonically increasing integer metric.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increases the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Counter registers and returns a counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.add(name, help, "counter", func() []Sample {
		return []Sample{{Value: float64(c.Value())}}
	})
	return c
}

// Gauge is a metric that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Gauge registers and returns a gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.add(name, help, "gauge", func() []Sample {
		return []Sample{{Value: g.Value()}}
	})
	return g
}

// GaugeFunc registers a gauge whose value is read at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.add(name, help, "gauge", func() []Sample {
		return []Sample{{Value: fn()}}
	})
}

// CounterFunc registers a counter whose monotonic value is read at scrape
// time — for totals maintained elsewhere (bus drop counts, rejected
// submissions).
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.add(name, help, "counter", func() []Sample {
		return []Sample{{Value: fn()}}
	})
}

// Histogram accumulates observations into cumulative buckets.
type Histogram struct {
	mu      sync.Mutex
	bounds  []float64 // ascending upper bounds, +Inf implicit
	counts  []uint64  // per-bucket (non-cumulative) counts, len(bounds)+1
	sum     float64
	samples uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	h.sum += v
	h.samples++
	h.mu.Unlock()
}

// Count returns how many values have been observed.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.samples
}

// Quantile returns an upper-bound estimate of the q-quantile (0..1): the
// smallest bucket bound whose cumulative count covers q. Observations
// beyond the last bound report +Inf.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.samples == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(h.samples)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, n := range h.counts {
		cum += n
		if cum >= rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return math.Inf(1)
		}
	}
	return math.Inf(1)
}

// DurationBuckets is a latency bucket ladder in seconds suitable for
// reconcile and RPC timings (0.5ms .. 10s).
var DurationBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram registers and returns a histogram with the given ascending
// bucket upper bounds (a trailing +Inf bucket is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	h := &Histogram{bounds: append([]float64(nil), buckets...), counts: make([]uint64, len(buckets)+1)}
	r.add(name, help, "histogram", func() []Sample {
		h.mu.Lock()
		defer h.mu.Unlock()
		out := make([]Sample, 0, len(h.bounds)+3)
		var cum uint64
		for i, b := range h.bounds {
			cum += h.counts[i]
			out = append(out, Sample{
				Suffix: "_bucket",
				Labels: []Label{{Name: "le", Value: formatFloat(b)}},
				Value:  float64(cum),
			})
		}
		cum += h.counts[len(h.bounds)]
		out = append(out,
			Sample{Suffix: "_bucket", Labels: []Label{{Name: "le", Value: "+Inf"}}, Value: float64(cum)},
			Sample{Suffix: "_sum", Value: h.sum},
			Sample{Suffix: "_count", Value: float64(h.samples)},
		)
		return out
	})
	return h
}

// WriteText renders every family in Prometheus text exposition format.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	families := append([]*instrumentFamily(nil), r.families...)
	collectors := append([]Collector(nil), r.collectors...)
	r.mu.Unlock()

	var all []Family
	for _, f := range families {
		all = append(all, Family{Name: f.name, Help: f.help, Type: f.typ, Samples: f.collect()})
	}
	for _, c := range collectors {
		all = append(all, c()...)
	}
	for i := range all {
		if err := writeFamily(w, &all[i]); err != nil {
			return err
		}
	}
	return nil
}

func writeFamily(w io.Writer, f *Family) error {
	typ := f.Type
	if typ == "" {
		typ = "untyped"
	}
	if f.Help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.Name, escapeHelp(f.Help)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.Name, typ); err != nil {
		return err
	}
	for _, s := range f.Samples {
		var sb strings.Builder
		sb.WriteString(f.Name)
		sb.WriteString(s.Suffix)
		if len(s.Labels) > 0 {
			sb.WriteByte('{')
			for i, l := range s.Labels {
				if i > 0 {
					sb.WriteByte(',')
				}
				sb.WriteString(l.Name)
				sb.WriteString(`="`)
				sb.WriteString(escapeLabel(l.Value))
				sb.WriteByte('"')
			}
			sb.WriteByte('}')
		}
		sb.WriteByte(' ')
		sb.WriteString(formatFloat(s.Value))
		sb.WriteByte('\n')
		if _, err := io.WriteString(w, sb.String()); err != nil {
			return err
		}
	}
	return nil
}

// Handler serves the registry in text exposition format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeLabel(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
	return r.Replace(s)
}

func escapeHelp(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}
