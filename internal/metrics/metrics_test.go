package metrics

import (
	"math"
	"net/http/httptest"
	"strings"
	"testing"
)

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("surfos_things_total", "Things that happened.")
	g := r.Gauge("surfos_level", "Current level.")
	r.GaugeFunc("surfos_live", "Scrape-time value.", func() float64 { return 7 })
	c.Inc()
	c.Add(2)
	g.Set(-1.5)

	out := render(t, r)
	for _, want := range []string{
		"# HELP surfos_things_total Things that happened.\n",
		"# TYPE surfos_things_total counter\n",
		"surfos_things_total 3\n",
		"# TYPE surfos_level gauge\n",
		"surfos_level -1.5\n",
		"surfos_live 7\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestHistogramBucketsAreCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("surfos_lat_seconds", "Latency.", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	out := render(t, r)
	for _, want := range []string{
		`surfos_lat_seconds_bucket{le="0.01"} 1` + "\n",
		`surfos_lat_seconds_bucket{le="0.1"} 3` + "\n",
		`surfos_lat_seconds_bucket{le="1"} 4` + "\n",
		`surfos_lat_seconds_bucket{le="+Inf"} 5` + "\n",
		"surfos_lat_seconds_count 5\n",
		"surfos_lat_seconds_sum 5.605\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d", h.Count())
	}
	// An observation exactly on a bound falls in that bound's bucket.
	h2 := r.Histogram("surfos_edge", "", []float64{1})
	h2.Observe(1)
	if got := h2.Quantile(1); got != 1 {
		t.Fatalf("on-bound observation quantile = %v", got)
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q", "", []float64{1, 10, 100})
	if h.Quantile(0.99) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
	for i := 0; i < 90; i++ {
		h.Observe(0.5)
	}
	for i := 0; i < 9; i++ {
		h.Observe(5)
	}
	h.Observe(50)
	if got := h.Quantile(0.5); got != 1 {
		t.Fatalf("p50 = %v, want 1", got)
	}
	if got := h.Quantile(0.99); got != 10 {
		t.Fatalf("p99 = %v, want 10", got)
	}
	if got := h.Quantile(1); got != 100 {
		t.Fatalf("p100 = %v, want 100", got)
	}
	h.Observe(1e6)
	if got := h.Quantile(1); !math.IsInf(got, 1) {
		t.Fatalf("beyond-last-bound quantile = %v, want +Inf", got)
	}
}

func TestCollectorAndLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.RegisterCollector(func() []Family {
		return []Family{{
			Name: "surfos_device_health",
			Help: "Device health (1 = current state).",
			Type: "gauge",
			Samples: []Sample{
				{Labels: []Label{{Name: "device", Value: `rm "a"` + "\n"}, {Name: "state", Value: "dead"}}, Value: 1},
			},
		}}
	})
	out := render(t, r)
	want := `surfos_device_health{device="rm \"a\"\n",state="dead"} 1` + "\n"
	if !strings.Contains(out, want) {
		t.Fatalf("missing %q in:\n%s", want, out)
	}
}

func TestHandlerContentType(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "").Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
}
