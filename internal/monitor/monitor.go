// Package monitor implements SurfOS's network monitoring and diagnosis
// service (paper Figure 1 and §5: the centralized control plane "can
// enable new features, such as network monitoring, diagnosis"). It
// compares what the channel simulator predicts endpoints should measure
// against what telemetry actually reports, and classifies persistent
// divergence: a device whose endpoints all underperform suggests a surface
// fault or misconfiguration; a single endpoint underperforming suggests
// local blockage (the paper's furniture-moved / person-walking dynamics).
package monitor

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"surfos/internal/telemetry"
)

// Verdict classifies a diagnosis finding.
type Verdict uint8

// Verdicts.
const (
	// Healthy: reports track predictions.
	Healthy Verdict = iota
	// EndpointBlocked: one endpoint persistently underperforms its
	// prediction while its device's other endpoints are fine — local
	// blockage or mobility; the orchestrator should re-optimize or the
	// device should switch codebook entries.
	EndpointBlocked
	// DeviceDegraded: all of a device's endpoints underperform — surface
	// fault, stale configuration, or environmental change at the panel.
	DeviceDegraded
	// Stale: no recent reports for an expectation.
	Stale
	// DeviceDead: the hardware manager reported the device's control
	// heartbeat lost. All of the device's expectations resolve to this one
	// finding instead of lingering as per-endpoint stale EWMA state.
	DeviceDead
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case Healthy:
		return "healthy"
	case EndpointBlocked:
		return "endpoint-blocked"
	case DeviceDegraded:
		return "device-degraded"
	case Stale:
		return "stale"
	case DeviceDead:
		return "device-dead"
	}
	return fmt.Sprintf("verdict(%d)", uint8(v))
}

// Expectation is the simulator-predicted SNR for one endpoint through one
// device under the currently deployed configuration.
type Expectation struct {
	DeviceID   string
	EndpointID string
	SNRdB      float64
}

// Finding is one diagnosis result.
type Finding struct {
	DeviceID   string
	EndpointID string // empty for device-level findings
	Verdict    Verdict
	// ExpectedSNRdB and ObservedSNRdB document the divergence.
	ExpectedSNRdB float64
	ObservedSNRdB float64
	// Samples is how many reports backed the observation.
	Samples int
}

// Monitor accumulates telemetry against expectations. Safe for concurrent
// use.
type Monitor struct {
	// ToleranceDB is how far below prediction a smoothed observation may
	// sit before it is flagged (default 6 dB).
	ToleranceDB float64
	// MinSamples is how many reports an endpoint needs before diagnosis
	// (default 3).
	MinSamples int
	// StaleAfter marks expectations without reports as stale (default 1
	// minute, against report timestamps).
	StaleAfter time.Duration

	mu   sync.Mutex
	exp  map[string]map[string]float64 // device → endpoint → expected SNR
	obs  map[string]map[string]*ewma   // device → endpoint → smoothed observation
	dead map[string]string             // device → last health error text
}

type ewma struct {
	value   float64
	samples int
	last    time.Time
}

// New creates a monitor with defaults applied.
func New() *Monitor {
	return &Monitor{
		ToleranceDB: 6,
		MinSamples:  3,
		StaleAfter:  time.Minute,
		exp:         make(map[string]map[string]float64),
		obs:         make(map[string]map[string]*ewma),
		dead:        make(map[string]string),
	}
}

// Expect installs (or replaces) the predicted SNR for an endpoint through
// a device. The orchestrator calls this after each Reconcile with the
// simulator's predictions for the deployed configurations.
func (m *Monitor) Expect(e Expectation) {
	m.mu.Lock()
	defer m.mu.Unlock()
	per, ok := m.exp[e.DeviceID]
	if !ok {
		per = make(map[string]float64)
		m.exp[e.DeviceID] = per
	}
	per[e.EndpointID] = e.SNRdB
}

// ClearDevice drops expectations and observations for a device (e.g. after
// re-planning).
func (m *Monitor) ClearDevice(deviceID string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.exp, deviceID)
	delete(m.obs, deviceID)
	delete(m.dead, deviceID)
}

// Observe folds one telemetry report into the smoothed per-endpoint
// observation.
func (m *Monitor) Observe(r telemetry.Report) {
	if r.DeviceID == "" || r.EndpointID == "" {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	per, ok := m.obs[r.DeviceID]
	if !ok {
		per = make(map[string]*ewma)
		m.obs[r.DeviceID] = per
	}
	e, ok := per[r.EndpointID]
	if !ok {
		e = &ewma{value: r.SNRdB}
		per[r.EndpointID] = e
	} else {
		e.value += 0.3 * (r.SNRdB - e.value)
	}
	e.samples++
	if r.Time.After(e.last) {
		e.last = r.Time
	}
}

// Run subscribes the monitor to a telemetry bus until ctx is canceled or
// the returned cancel function is called, whichever comes first. The
// cancel function is idempotent, safe to call after ctx cancellation, and
// blocks until the observer goroutine has drained out (no leaks).
func (m *Monitor) Run(ctx context.Context, bus *telemetry.Bus) (cancel func()) {
	ch, unsub := bus.SubscribeOpts(telemetry.SubOptions[telemetry.Report]{Name: "monitor-reports", Buffer: 256})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for r := range ch {
			m.Observe(r)
		}
	}()
	if ctx != nil {
		go func() {
			select {
			case <-ctx.Done():
				unsub() // closes ch, draining the observer goroutine
			case <-done:
			}
		}()
	}
	return func() {
		unsub()
		<-done
	}
}

// HandleTaskEvent folds one orchestrator lifecycle event into the
// expectation table. A task entering the running state with an SNR metric
// installs the predicted SNR for its endpoint through every surface
// serving it — the event-driven replacement for hand-installing
// expectations after each demand. Terminal states (done/failed) retire
// the endpoint's expectations so a finished task cannot be diagnosed as
// stale forever.
func (m *Monitor) HandleTaskEvent(ev telemetry.TaskEvent) {
	// Device health transitions arrive on the same bus with no endpoint.
	switch ev.State {
	case telemetry.DeviceDead:
		if ev.DeviceID != "" {
			m.mu.Lock()
			m.dead[ev.DeviceID] = ev.Err
			m.mu.Unlock()
		}
		return
	case telemetry.DeviceRecovered:
		if ev.DeviceID != "" {
			m.mu.Lock()
			delete(m.dead, ev.DeviceID)
			m.mu.Unlock()
		}
		return
	}
	if ev.Endpoint == "" {
		return
	}
	switch ev.State {
	case telemetry.TaskRunning:
		if ev.MetricName != "snr_db" {
			return
		}
		for _, dev := range ev.Surfaces {
			m.Expect(Expectation{DeviceID: dev, EndpointID: ev.Endpoint, SNRdB: ev.Metric})
		}
	case telemetry.TaskDone, telemetry.TaskFailed, telemetry.TaskHandoff:
		// A handoff retires the endpoint's expectations like a terminal
		// state: the stale predictions belong to the old shard's surfaces,
		// and the re-plan at the new shard re-installs fresh ones via its
		// running event.
		m.mu.Lock()
		for dev, per := range m.exp {
			delete(per, ev.Endpoint)
			if len(per) == 0 {
				delete(m.exp, dev)
			}
			if perObs := m.obs[dev]; perObs != nil {
				delete(perObs, ev.Endpoint)
				if len(perObs) == 0 {
					delete(m.obs, dev)
				}
			}
		}
		m.mu.Unlock()
	}
}

// RunTaskEvents subscribes the monitor to the orchestrator's task
// lifecycle bus, mirroring Run for telemetry reports. The returned cancel
// function is idempotent and blocks until the consumer goroutine drains.
func (m *Monitor) RunTaskEvents(ctx context.Context, bus *telemetry.EventBus) (cancel func()) {
	ch, unsub := bus.SubscribeOpts(telemetry.SubOptions[telemetry.TaskEvent]{Name: "monitor-events", Buffer: 256})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for ev := range ch {
			m.HandleTaskEvent(ev)
		}
	}()
	if ctx != nil {
		go func() {
			select {
			case <-ctx.Done():
				unsub()
			case <-done:
			}
		}()
	}
	return func() {
		unsub()
		<-done
	}
}

// Diagnose compares observations against expectations as of time now and
// returns findings sorted by device then endpoint. Healthy endpoints are
// included so operators can see coverage of the monitoring itself.
func (m *Monitor) Diagnose(now time.Time) []Finding {
	m.mu.Lock()
	defer m.mu.Unlock()

	var out []Finding
	// Dead devices resolve to a single device-level finding: their
	// endpoints stop reporting the moment the panel dies, and diagnosing
	// that silence as per-endpoint staleness would hide the root cause.
	for dev := range m.dead {
		f := Finding{DeviceID: dev, Verdict: DeviceDead}
		if per, ok := m.exp[dev]; ok {
			var sum float64
			for _, want := range per {
				sum += want
			}
			if len(per) > 0 {
				f.ExpectedSNRdB = sum / float64(len(per))
			}
		}
		out = append(out, f)
	}
	for dev, endpoints := range m.exp {
		if _, isDead := m.dead[dev]; isDead {
			continue
		}
		perObs := m.obs[dev]
		var under, measured int
		var findings []Finding
		for ep, want := range endpoints {
			f := Finding{DeviceID: dev, EndpointID: ep, ExpectedSNRdB: want}
			o := perObs[ep]
			switch {
			case o == nil || o.samples < m.MinSamples:
				f.Verdict = Stale
				if o != nil {
					f.Samples = o.samples
					f.ObservedSNRdB = o.value
				}
			case m.StaleAfter > 0 && now.Sub(o.last) > m.StaleAfter:
				f.Verdict = Stale
				f.Samples = o.samples
				f.ObservedSNRdB = o.value
			default:
				measured++
				f.Samples = o.samples
				f.ObservedSNRdB = o.value
				if o.value < want-m.ToleranceDB {
					f.Verdict = EndpointBlocked
					under++
				} else {
					f.Verdict = Healthy
				}
			}
			findings = append(findings, f)
		}
		// Escalate: every measured endpoint of the device underperforms.
		if measured >= 2 && under == measured {
			var sumExp, sumObs float64
			for _, f := range findings {
				if f.Verdict == EndpointBlocked {
					sumExp += f.ExpectedSNRdB
					sumObs += f.ObservedSNRdB
				}
			}
			out = append(out, Finding{
				DeviceID:      dev,
				Verdict:       DeviceDegraded,
				ExpectedSNRdB: sumExp / float64(under),
				ObservedSNRdB: sumObs / float64(under),
				Samples:       under,
			})
		}
		out = append(out, findings...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].DeviceID != out[j].DeviceID {
			return out[i].DeviceID < out[j].DeviceID
		}
		return out[i].EndpointID < out[j].EndpointID
	})
	return out
}

// Problems filters Diagnose down to actionable findings (everything except
// Healthy).
func (m *Monitor) Problems(now time.Time) []Finding {
	all := m.Diagnose(now)
	out := all[:0:0]
	for _, f := range all {
		if f.Verdict != Healthy {
			out = append(out, f)
		}
	}
	return out
}
