package monitor

import (
	"context"
	"testing"
	"time"

	"surfos/internal/telemetry"
)

var t0 = time.Date(2026, 7, 5, 12, 0, 0, 0, time.UTC)

func feed(m *Monitor, dev, ep string, snr float64, n int, at time.Time) {
	for i := 0; i < n; i++ {
		m.Observe(telemetry.Report{DeviceID: dev, EndpointID: ep, ConfigIdx: 0, SNRdB: snr, Time: at})
	}
}

func findingFor(fs []Finding, dev, ep string) (Finding, bool) {
	for _, f := range fs {
		if f.DeviceID == dev && f.EndpointID == ep {
			return f, true
		}
	}
	return Finding{}, false
}

func TestHealthyWhenReportsTrackPredictions(t *testing.T) {
	m := New()
	m.Expect(Expectation{DeviceID: "s0", EndpointID: "phone", SNRdB: 20})
	feed(m, "s0", "phone", 19, 5, t0)

	fs := m.Diagnose(t0.Add(time.Second))
	f, ok := findingFor(fs, "s0", "phone")
	if !ok || f.Verdict != Healthy {
		t.Fatalf("finding: %+v ok=%v", f, ok)
	}
	if len(m.Problems(t0.Add(time.Second))) != 0 {
		t.Error("healthy system reported problems")
	}
}

func TestEndpointBlockage(t *testing.T) {
	m := New()
	m.Expect(Expectation{DeviceID: "s0", EndpointID: "phone", SNRdB: 20})
	m.Expect(Expectation{DeviceID: "s0", EndpointID: "laptop", SNRdB: 18})
	feed(m, "s0", "phone", 5, 5, t0) // 15 dB under prediction
	feed(m, "s0", "laptop", 17, 5, t0)

	fs := m.Problems(t0.Add(time.Second))
	if len(fs) != 1 {
		t.Fatalf("problems: %+v", fs)
	}
	if fs[0].Verdict != EndpointBlocked || fs[0].EndpointID != "phone" {
		t.Errorf("finding: %+v", fs[0])
	}
	if fs[0].ObservedSNRdB > fs[0].ExpectedSNRdB-6 {
		t.Errorf("divergence not recorded: %+v", fs[0])
	}
}

func TestDeviceDegradedWhenAllEndpointsUnder(t *testing.T) {
	m := New()
	m.Expect(Expectation{DeviceID: "s0", EndpointID: "a", SNRdB: 20})
	m.Expect(Expectation{DeviceID: "s0", EndpointID: "b", SNRdB: 22})
	feed(m, "s0", "a", 4, 4, t0)
	feed(m, "s0", "b", 6, 4, t0)

	fs := m.Problems(t0.Add(time.Second))
	var dev *Finding
	for i := range fs {
		if fs[i].Verdict == DeviceDegraded {
			dev = &fs[i]
		}
	}
	if dev == nil {
		t.Fatalf("no device-degraded finding in %+v", fs)
	}
	if dev.DeviceID != "s0" || dev.EndpointID != "" || dev.Samples != 2 {
		t.Errorf("device finding: %+v", dev)
	}
}

func TestStaleWithoutReports(t *testing.T) {
	m := New()
	m.Expect(Expectation{DeviceID: "s0", EndpointID: "ghost", SNRdB: 20})
	fs := m.Problems(t0)
	if len(fs) != 1 || fs[0].Verdict != Stale {
		t.Fatalf("findings: %+v", fs)
	}

	// Too few samples is also stale.
	feed(m, "s0", "ghost", 19, 1, t0)
	fs = m.Problems(t0.Add(time.Second))
	if len(fs) != 1 || fs[0].Verdict != Stale || fs[0].Samples != 1 {
		t.Fatalf("findings after 1 sample: %+v", fs)
	}

	// Old reports age out.
	feed(m, "s0", "ghost", 19, 5, t0)
	fs = m.Problems(t0.Add(10 * time.Minute))
	if len(fs) != 1 || fs[0].Verdict != Stale {
		t.Fatalf("findings after aging: %+v", fs)
	}
}

func TestClearDevice(t *testing.T) {
	m := New()
	m.Expect(Expectation{DeviceID: "s0", EndpointID: "a", SNRdB: 20})
	feed(m, "s0", "a", 3, 5, t0)
	if len(m.Problems(t0.Add(time.Second))) == 0 {
		t.Fatal("expected a problem before clear")
	}
	m.ClearDevice("s0")
	if got := m.Diagnose(t0.Add(time.Second)); len(got) != 0 {
		t.Errorf("findings after clear: %+v", got)
	}
}

func TestObserveIgnoresUnattributed(t *testing.T) {
	m := New()
	m.Expect(Expectation{DeviceID: "s0", EndpointID: "a", SNRdB: 20})
	m.Observe(telemetry.Report{DeviceID: "", EndpointID: "a", SNRdB: 1, Time: t0})
	m.Observe(telemetry.Report{DeviceID: "s0", EndpointID: "", SNRdB: 1, Time: t0})
	fs := m.Diagnose(t0)
	if fs[0].Samples != 0 {
		t.Errorf("unattributed reports counted: %+v", fs[0])
	}
}

func TestRunOverTelemetryBus(t *testing.T) {
	m := New()
	m.MinSamples = 2
	m.Expect(Expectation{DeviceID: "s0", EndpointID: "a", SNRdB: 20})

	bus := telemetry.NewBus()
	cancel := m.Run(context.Background(), bus)
	for i := 0; i < 4; i++ {
		bus.Publish(telemetry.Report{DeviceID: "s0", EndpointID: "a", SNRdB: 19.5, Time: t0})
	}
	// Drain: cancel waits for the consumer goroutine to finish processing.
	deadline := time.Now().Add(2 * time.Second)
	for {
		fs := m.Diagnose(t0.Add(time.Second))
		if len(fs) == 1 && fs[0].Verdict == Healthy {
			break
		}
		if time.Now().After(deadline) {
			cancel()
			t.Fatalf("bus reports never arrived: %+v", fs)
		}
		time.Sleep(2 * time.Millisecond)
	}
	cancel()
	// After cancel, publishing is a no-op for this monitor.
	bus.Publish(telemetry.Report{DeviceID: "s0", EndpointID: "a", SNRdB: -50, Time: t0})
	fs := m.Diagnose(t0.Add(time.Second))
	if fs[0].Verdict != Healthy {
		t.Errorf("report after cancel changed state: %+v", fs[0])
	}
}

func TestVerdictStrings(t *testing.T) {
	if Healthy.String() != "healthy" || DeviceDegraded.String() != "device-degraded" ||
		EndpointBlocked.String() != "endpoint-blocked" || Stale.String() != "stale" {
		t.Error("verdict names wrong")
	}
	if Verdict(99).String() == "" {
		t.Error("unknown verdict should stringify")
	}
}

func TestHandleTaskEventInstallsExpectations(t *testing.T) {
	m := New()
	m.HandleTaskEvent(telemetry.TaskEvent{
		State: telemetry.TaskRunning, Endpoint: "laptop",
		Surfaces: []string{"s0", "s1"}, Metric: 22, MetricName: "snr_db",
	})
	feed(m, "s0", "laptop", 22, 3, t0)
	feed(m, "s1", "laptop", 21, 3, t0)
	for _, dev := range []string{"s0", "s1"} {
		f, ok := findingFor(m.Diagnose(t0), dev, "laptop")
		if !ok || f.Verdict != Healthy || f.ExpectedSNRdB != 22 {
			t.Errorf("%s/laptop finding = %+v ok=%v", dev, f, ok)
		}
	}

	// Non-SNR metrics and endpoint-less events install nothing.
	m2 := New()
	m2.HandleTaskEvent(telemetry.TaskEvent{State: telemetry.TaskRunning, Endpoint: "e", Surfaces: []string{"sX"}, Metric: 1, MetricName: "mean_loc_err_m"})
	m2.HandleTaskEvent(telemetry.TaskEvent{State: telemetry.TaskRunning, Surfaces: []string{"sX"}, Metric: 1, MetricName: "snr_db"})
	if got := m2.Diagnose(t0); len(got) != 0 {
		t.Errorf("unexpected expectations: %+v", got)
	}
}

func TestHandleTaskEventRetiresOnTerminal(t *testing.T) {
	m := New()
	run := telemetry.TaskEvent{State: telemetry.TaskRunning, Endpoint: "laptop", Surfaces: []string{"s0"}, Metric: 20, MetricName: "snr_db"}
	m.HandleTaskEvent(run)
	feed(m, "s0", "laptop", 20, 3, t0)
	if _, ok := findingFor(m.Diagnose(t0), "s0", "laptop"); !ok {
		t.Fatal("expectation missing before terminal event")
	}
	m.HandleTaskEvent(telemetry.TaskEvent{State: telemetry.TaskDone, Endpoint: "laptop"})
	if got := m.Diagnose(t0); len(got) != 0 {
		t.Errorf("expectations survive task completion: %+v", got)
	}
}

// TestHandleTaskEventRetiresOnHandoff: a cross-domain handoff retires the
// endpoint's expectations like a terminal event — the old shard's SNR
// predictions are stale — and the new shard's running event re-installs.
func TestHandleTaskEventRetiresOnHandoff(t *testing.T) {
	m := New()
	m.HandleTaskEvent(telemetry.TaskEvent{State: telemetry.TaskRunning, Endpoint: "walker", Surfaces: []string{"s0"}, Metric: 20, MetricName: "snr_db"})
	feed(m, "s0", "walker", 20, 3, t0)
	if _, ok := findingFor(m.Diagnose(t0), "s0", "walker"); !ok {
		t.Fatal("expectation missing before handoff")
	}
	m.HandleTaskEvent(telemetry.TaskEvent{State: telemetry.TaskHandoff, Endpoint: "walker"})
	if got := m.Diagnose(t0); len(got) != 0 {
		t.Errorf("expectations survive handoff: %+v", got)
	}
	// The new domain's scheduler re-installs at the new surface.
	m.HandleTaskEvent(telemetry.TaskEvent{State: telemetry.TaskRunning, Endpoint: "walker", Surfaces: []string{"s1"}, Metric: 18, MetricName: "snr_db"})
	feed(m, "s1", "walker", 18, 3, t0)
	f, ok := findingFor(m.Diagnose(t0), "s1", "walker")
	if !ok || f.ExpectedSNRdB != 18 {
		t.Errorf("post-handoff finding = %+v ok=%v", f, ok)
	}
}

func TestRunTaskEventsOverBus(t *testing.T) {
	m := New()
	bus := telemetry.NewEventBus()
	cancel := m.RunTaskEvents(context.Background(), bus)
	bus.Publish(telemetry.TaskEvent{
		State: telemetry.TaskRunning, Endpoint: "laptop",
		Surfaces: []string{"s0"}, Metric: 19, MetricName: "snr_db",
	})
	deadline := time.Now().Add(5 * time.Second)
	for {
		if f, ok := findingFor(m.Diagnose(t0), "s0", "laptop"); ok && f.ExpectedSNRdB == 19 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("bus event never reached the monitor")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	cancel() // idempotent
	if n := bus.Subscribers(); n != 0 {
		t.Errorf("subscribers after cancel = %d", n)
	}
}

func TestDeviceDeathResolvesToFinding(t *testing.T) {
	m := New()
	m.Expect(Expectation{DeviceID: "s0", EndpointID: "phone", SNRdB: 20})
	m.Expect(Expectation{DeviceID: "s0", EndpointID: "laptop", SNRdB: 18})
	m.Expect(Expectation{DeviceID: "s1", EndpointID: "tv", SNRdB: 15})
	feed(m, "s0", "phone", 19, 5, t0)
	feed(m, "s1", "tv", 14, 5, t0)

	// The hardware manager reports s0's heartbeat lost. Its endpoints stop
	// reporting, but the diagnosis must name the dead device, not drown the
	// root cause in per-endpoint stale findings.
	m.HandleTaskEvent(telemetry.TaskEvent{State: telemetry.DeviceDead, DeviceID: "s0", Err: "device dead"})

	later := t0.Add(5 * time.Minute) // long past StaleAfter
	probs := m.Problems(later)
	var deadFindings, staleS0 int
	for _, f := range probs {
		if f.DeviceID == "s0" {
			switch f.Verdict {
			case DeviceDead:
				deadFindings++
				if f.EndpointID != "" {
					t.Errorf("device-level finding carries endpoint %q", f.EndpointID)
				}
				if f.ExpectedSNRdB != 19 { // mean of 20 and 18
					t.Errorf("dead finding expected SNR = %v", f.ExpectedSNRdB)
				}
			case Stale:
				staleS0++
			}
		}
	}
	if deadFindings != 1 {
		t.Fatalf("want exactly one device-dead finding, got %d in %+v", deadFindings, probs)
	}
	if staleS0 != 0 {
		t.Fatalf("dead device still diagnosed endpoint-by-endpoint: %+v", probs)
	}
	// The living device is still diagnosed normally (stale by now).
	if f, ok := findingFor(m.Diagnose(later), "s1", "tv"); !ok || f.Verdict != Stale {
		t.Errorf("s1 finding: %+v ok=%v", f, ok)
	}

	// Recovery clears the death; expectations survive and resume normal
	// endpoint-level diagnosis.
	m.HandleTaskEvent(telemetry.TaskEvent{State: telemetry.DeviceRecovered, DeviceID: "s0"})
	feed(m, "s0", "phone", 19, 5, later)
	fs := m.Diagnose(later.Add(time.Second))
	for _, f := range fs {
		if f.Verdict == DeviceDead {
			t.Fatalf("recovered device still reported dead: %+v", f)
		}
	}
	if f, ok := findingFor(fs, "s0", "phone"); !ok || f.Verdict != Healthy {
		t.Errorf("recovered endpoint finding: %+v ok=%v", f, ok)
	}
	if DeviceDead.String() != "device-dead" {
		t.Error("verdict string wrong")
	}
}

func TestClearDeviceDropsDeathMark(t *testing.T) {
	m := New()
	m.HandleTaskEvent(telemetry.TaskEvent{State: telemetry.DeviceDead, DeviceID: "s0"})
	if len(m.Problems(t0)) != 1 {
		t.Fatal("death without expectations should still be a problem")
	}
	m.ClearDevice("s0")
	if len(m.Problems(t0)) != 0 {
		t.Error("cleared device still diagnosed")
	}
}
