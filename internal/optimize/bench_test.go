package optimize

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"surfos/internal/engine"
	"surfos/internal/rfsim"
)

// benchOpaque hides delta support so a benchmark can force the full-Eval
// path on the same objective.
type benchOpaque struct{ inner Objective }

func (o benchOpaque) Shape() []int { return o.inner.Shape() }
func (o benchOpaque) Eval(p [][]float64, g bool) (float64, [][]float64) {
	return o.inner.Eval(p, g)
}

// benchFixture is the recorded BENCH_optimize.json workload: a 24×24
// single-surface coverage objective over nChans receiver locations.
func benchFixture(nChans int) (*CoverageObjective, [][]float64) {
	r := rand.New(rand.NewSource(42))
	shape := []int{576}
	chans := make([]*rfsim.Channel, nChans)
	for i := range chans {
		chans[i] = randChannel(r, shape, false)
	}
	obj, err := NewCoverageObjective(chans, testBudget())
	if err != nil {
		panic(err)
	}
	return obj, randPhases(r, shape)
}

func BenchmarkObjectiveEval(b *testing.B) {
	obj, phases := benchFixture(8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		obj.Eval(phases, true)
	}
}

var benchCandidates = []float64{0, math.Pi}

// BenchmarkCoordinateDescentFull prices one 1-bit sweep with every candidate
// paid as a full objective evaluation.
func BenchmarkCoordinateDescentFull(b *testing.B) {
	obj, init := benchFixture(4)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CoordinateDescent(ctx, benchOpaque{obj}, init, benchCandidates, Options{MaxIters: 1})
	}
}

// BenchmarkCoordinateDescentDelta is the same sweep through the delta
// evaluation path.
func BenchmarkCoordinateDescentDelta(b *testing.B) {
	obj, init := benchFixture(4)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CoordinateDescent(ctx, obj, init, benchCandidates, Options{MaxIters: 1})
	}
}

// BenchmarkParallelSweep measures one delta coordinate-descent sweep fanned
// across engine pools of increasing width. Workers=1 is the serial baseline
// (no scope is ever acquired); wider pools speculate candidate blocks on
// per-worker evaluator clones. Every width produces bit-identical results,
// so the curve is purely a throughput measurement. Recorded by
// `make bench-parallel` into BENCH_parallel.json.
func BenchmarkParallelSweep(b *testing.B) {
	obj, init := benchFixture(4)
	ctx := context.Background()
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			eng := engine.New(engine.Options{Workers: w})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				CoordinateDescent(ctx, obj, init, benchCandidates, Options{
					MaxIters: 1, Engine: eng, Workers: w,
				})
			}
		})
	}
}

// BenchmarkAnnealDelta measures annealing proposals priced as deltas.
func BenchmarkAnnealDelta(b *testing.B) {
	obj, init := benchFixture(4)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Anneal(ctx, obj, init, Options{MaxIters: 512, Seed: 7})
	}
}
