package optimize

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"surfos/internal/rfsim"
)

// opaqueObjective hides an objective's DeltaObjective extension so the
// optimizers must take the full-Eval fallback path.
type opaqueObjective struct{ inner Objective }

func (o opaqueObjective) Shape() []int { return o.inner.Shape() }
func (o opaqueObjective) Eval(p [][]float64, g bool) (float64, [][]float64) {
	return o.inner.Eval(p, g)
}

// countingObjective counts full Eval calls while keeping the embedded
// objective's delta capability (NewDeltaEvaluator is promoted).
type countingObjective struct {
	*CoverageObjective
	fullEvals int
}

func (c *countingObjective) Eval(p [][]float64, g bool) (float64, [][]float64) {
	c.fullEvals++
	return c.CoverageObjective.Eval(p, g)
}

// TestDeltaParity mutates random single elements and checks every delta
// trial, commit, and revert against a from-scratch Eval, for every delta
// objective kind — including a WeightedSum of mixed terms and channels with
// cross blocks.
func TestDeltaParity(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	shape := []int{6, 5}
	cover, err := NewCoverageObjective([]*rfsim.Channel{
		randChannel(r, shape, true),
		randChannel(r, shape, false),
		randChannel(r, shape, true),
	}, testBudget())
	if err != nil {
		t.Fatal(err)
	}
	power, err := NewPowerObjective([]*rfsim.Channel{
		randChannel(r, shape, false),
		randChannel(r, shape, true),
	})
	if err != nil {
		t.Fatal(err)
	}
	sec, err := NewSecurityObjective(randChannel(r, shape, true), randChannel(r, shape, true), 0.5, testBudget())
	if err != nil {
		t.Fatal(err)
	}
	ws, err := NewWeightedSum([]Objective{cover, power, sec}, []float64{1, 0.7, 1.3})
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		obj  DeltaObjective
	}{
		{"coverage", cover},
		{"power", power},
		{"security", sec},
		{"weighted-sum", ws},
	}
	const tol = 1e-9
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			phases := randPhases(r, shape)
			ev := tc.obj.NewDeltaEvaluator(phases)
			if ev == nil {
				t.Fatal("NewDeltaEvaluator returned nil for a delta-capable objective")
			}
			full, _ := tc.obj.Eval(phases, false)
			if d := math.Abs(ev.Loss() - full); d > tol {
				t.Fatalf("initial loss off by %g", d)
			}
			for i := 0; i < 80; i++ {
				s := r.Intn(len(shape))
				k := r.Intn(shape[s])
				phi := r.Float64() * 2 * math.Pi
				got := ev.TryDelta(s, k, phi)

				old := phases[s][k]
				phases[s][k] = phi
				want, _ := tc.obj.Eval(phases, false)
				if d := math.Abs(got - want); d > tol {
					t.Fatalf("step %d: trial loss off by %g (delta %v, full %v)", i, d, got, want)
				}
				if r.Intn(2) == 0 {
					ev.Commit()
					if d := math.Abs(ev.Loss() - want); d > tol {
						t.Fatalf("step %d: committed loss off by %g", i, d)
					}
				} else {
					ev.Revert()
					phases[s][k] = old
					prev, _ := tc.obj.Eval(phases, false)
					if d := math.Abs(ev.Loss() - prev); d > tol {
						t.Fatalf("step %d: reverted loss off by %g", i, d)
					}
				}
			}
		})
	}
}

// TestWeightedSumDeltaNilForOpaqueTerm: a sum containing a term without
// delta support must decline to open a session.
func TestWeightedSumDeltaNilForOpaqueTerm(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	shape := []int{4, 3}
	cover, err := NewCoverageObjective([]*rfsim.Channel{randChannel(r, shape, false)}, testBudget())
	if err != nil {
		t.Fatal(err)
	}
	ws, err := NewWeightedSum([]Objective{cover, opaqueObjective{cover}}, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if ev := ws.NewDeltaEvaluator(randPhases(r, shape)); ev != nil {
		t.Error("weighted sum with an opaque term opened a delta session")
	}
}

// TestCoordinateDescentFallbackEquivalence runs the same search through the
// delta path and through the full-Eval fallback (the delta capability
// hidden) and requires the same trajectory and result.
func TestCoordinateDescentFallbackEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	shape := []int{5, 4}
	obj, err := NewCoverageObjective([]*rfsim.Channel{
		randChannel(r, shape, true),
		randChannel(r, shape, false),
	}, testBudget())
	if err != nil {
		t.Fatal(err)
	}
	init := randPhases(r, shape)
	cands := []float64{0, math.Pi / 2, math.Pi, 3 * math.Pi / 2}
	opt := Options{MaxIters: 6}

	a := CoordinateDescent(context.Background(), obj, init, cands, opt)
	b := CoordinateDescent(context.Background(), opaqueObjective{obj}, init, cands, opt)

	if a.Iterations != b.Iterations {
		t.Errorf("sweeps: delta %d, fallback %d", a.Iterations, b.Iterations)
	}
	if d := math.Abs(a.Loss - b.Loss); d > 1e-9 {
		t.Errorf("loss differs by %g", d)
	}
	for s := range a.Phases {
		for k := range a.Phases[s] {
			if a.Phases[s][k] != b.Phases[s][k] {
				t.Fatalf("phases diverge at s=%d k=%d: %v vs %v", s, k, a.Phases[s][k], b.Phases[s][k])
			}
		}
	}
	if len(a.History) != len(b.History) {
		t.Fatalf("history length: delta %d, fallback %d", len(a.History), len(b.History))
	}
	for i := range a.History {
		if d := math.Abs(a.History[i] - b.History[i]); d > 1e-9 {
			t.Errorf("history[%d] differs by %g", i, d)
		}
	}
}

// TestDeltaPathRouting proves which path each optimizer takes by counting
// full Eval calls: the delta path needs only the final re-evaluation
// (CoordinateDescent) or none at all (Anneal), while the fallback pays one
// Eval per candidate or proposal.
func TestDeltaPathRouting(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	shape := []int{4, 3}
	mk := func() *countingObjective {
		obj, err := NewCoverageObjective([]*rfsim.Channel{randChannel(r, shape, true)}, testBudget())
		if err != nil {
			t.Fatal(err)
		}
		return &countingObjective{CoverageObjective: obj}
	}
	init := randPhases(r, shape)
	ctx := context.Background()

	c := mk()
	CoordinateDescent(ctx, c, init, []float64{0, math.Pi}, Options{MaxIters: 3})
	if c.fullEvals != 1 {
		t.Errorf("delta CoordinateDescent made %d full Evals, want 1 (final only)", c.fullEvals)
	}

	c = mk()
	CoordinateDescent(ctx, opaqueObjective{c}, init, []float64{0, math.Pi}, Options{MaxIters: 3})
	if c.fullEvals <= 1 {
		t.Errorf("fallback CoordinateDescent made %d full Evals, want many", c.fullEvals)
	}

	c = mk()
	Anneal(ctx, c, init, Options{MaxIters: 20, Seed: 5})
	if c.fullEvals != 0 {
		t.Errorf("delta Anneal made %d full Evals, want 0", c.fullEvals)
	}

	// A projector may rewrite the whole vector, so it must force the full
	// path even for a delta-capable objective.
	c = mk()
	Anneal(ctx, c, init, Options{MaxIters: 20, Seed: 5, Project: func(p [][]float64) [][]float64 { return p }})
	if c.fullEvals == 0 {
		t.Error("projected Anneal used the delta path")
	}
}

// TestAnnealAllSurfacesEmpty: with nothing to perturb, Anneal must return
// the evaluated initial state immediately instead of looping on no-ops.
func TestAnnealAllSurfacesEmpty(t *testing.T) {
	ch := &rfsim.Channel{Direct: 1e-6, Single: [][]complex128{{}, {}}}
	obj, err := NewCoverageObjective([]*rfsim.Channel{ch}, testBudget())
	if err != nil {
		t.Fatal(err)
	}
	init := ZeroPhases(obj.Shape())
	res := Anneal(context.Background(), obj, init, Options{MaxIters: 50, Seed: 1})
	if res.Iterations != 0 {
		t.Errorf("Iterations = %d, want 0", res.Iterations)
	}
	if res.Evals != 1 {
		t.Errorf("Evals = %d, want 1", res.Evals)
	}
	want, _ := obj.Eval(init, false)
	if res.Loss != want {
		t.Errorf("Loss = %v, want %v", res.Loss, want)
	}
	if len(res.History) != 1 {
		t.Errorf("history length %d, want 1", len(res.History))
	}
}

// TestAnnealSkipsEmptySurfaces: proposals must land only on surfaces that
// have elements.
func TestAnnealSkipsEmptySurfaces(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	shape := []int{0, 6}
	obj, err := NewCoverageObjective([]*rfsim.Channel{randChannel(r, shape, false)}, testBudget())
	if err != nil {
		t.Fatal(err)
	}
	init := ZeroPhases(shape)
	res := Anneal(context.Background(), obj, init, Options{MaxIters: 80, Seed: 2})
	if res.Iterations != 80 {
		t.Errorf("Iterations = %d, want 80 (no proposals wasted on the empty surface)", res.Iterations)
	}
	if len(res.Phases[0]) != 0 {
		t.Errorf("empty surface grew phases: %v", res.Phases[0])
	}
	start, _ := obj.Eval(init, false)
	if res.Loss > start {
		t.Errorf("best loss %v worse than initial %v", res.Loss, start)
	}
}

// TestResultEvalsAccounting pins the Evals/Iterations bookkeeping of all
// four methods.
func TestResultEvalsAccounting(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	shape := []int{4, 3}
	obj, err := NewCoverageObjective([]*rfsim.Channel{randChannel(r, shape, true)}, testBudget())
	if err != nil {
		t.Fatal(err)
	}
	init := randPhases(r, shape)
	ctx := context.Background()

	adam := Adam(ctx, obj, init, Options{MaxIters: 30})
	if adam.Evals != adam.Iterations+1 {
		t.Errorf("Adam: Evals=%d Iterations=%d, want Evals=Iterations+1", adam.Evals, adam.Iterations)
	}
	rs := RandomSearch(ctx, obj, Options{MaxIters: 25, Seed: 3})
	if rs.Evals != rs.Iterations+1 {
		t.Errorf("RandomSearch: Evals=%d Iterations=%d", rs.Evals, rs.Iterations)
	}
	an := Anneal(ctx, obj, init, Options{MaxIters: 40, Seed: 4})
	if an.Evals != an.Iterations+1 {
		t.Errorf("Anneal: Evals=%d Iterations=%d", an.Evals, an.Iterations)
	}
	cd := CoordinateDescent(ctx, obj, init, []float64{0, math.Pi}, Options{MaxIters: 5})
	if cd.Iterations != len(cd.History)-1 {
		t.Errorf("CoordinateDescent: Iterations=%d (sweeps), history has %d entries", cd.Iterations, len(cd.History))
	}
	if cd.Iterations > 5 {
		t.Errorf("CoordinateDescent ran %d sweeps, cap was 5", cd.Iterations)
	}
	nElem := 0
	for _, n := range shape {
		nElem += n
	}
	// At least one trial per element per sweep, plus the initial and final
	// full evaluations.
	if min := 1 + cd.Iterations*nElem + 1; cd.Evals < min {
		t.Errorf("CoordinateDescent: Evals=%d, want ≥ %d", cd.Evals, min)
	}
}
