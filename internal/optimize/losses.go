package optimize

import (
	"fmt"
	"math"

	"surfos/internal/em"
	"surfos/internal/rfsim"
)

// CoverageObjective maximizes total link capacity across a set of receiver
// locations — the paper's coverage task loss ("the negative sum of link
// capacity across different locations", §4). Minimizing it is maximizing
// Σ capacity.
type CoverageObjective struct {
	// Channels holds one channel decomposition per evaluation location.
	Channels []*rfsim.Channel
	Budget   rfsim.LinkBudget

	shape []int
	// snrScale converts |h|² to linear SNR: snr = snrScale·|h|².
	snrScale float64

	// Reused evaluation scratch (see Objective for the aliasing contract).
	pbuf  em.PhasorBuf
	grad  [][]float64
	parts [][]complex128
}

// NewCoverageObjective validates inputs and precomputes the link-budget
// constant.
func NewCoverageObjective(chans []*rfsim.Channel, lb rfsim.LinkBudget) (*CoverageObjective, error) {
	if len(chans) == 0 {
		return nil, fmt.Errorf("optimize: coverage objective needs at least one channel")
	}
	shape := chans[0].NumElements()
	for i, ch := range chans[1:] {
		s := ch.NumElements()
		if len(s) != len(shape) {
			return nil, fmt.Errorf("optimize: channel %d surface count mismatch", i+1)
		}
		for j := range s {
			if s[j] != shape[j] {
				return nil, fmt.Errorf("optimize: channel %d surface %d has %d elements, want %d", i+1, j, s[j], shape[j])
			}
		}
	}
	// SNR_linear = 10^((TxPower+Gain-Noise)/10) · |h|².
	c := em.FromDB(lb.TxPowerDBm + lb.AntennaGainDB - lb.NoiseFloorDBm())
	return &CoverageObjective{Channels: chans, Budget: lb, shape: shape, snrScale: c}, nil
}

// Shape implements Objective.
func (o *CoverageObjective) Shape() []int { return o.shape }

// se returns the spectral-efficiency term of one channel value.
func (o *CoverageObjective) se(h complex128) float64 {
	p := real(h)*real(h) + imag(h)*imag(h)
	return math.Log2(1 + o.snrScale*p)
}

// Eval implements Objective. Loss = -Σ_i B·log2(1 + S0·|h_i|²). Capacity is
// normalized by bandwidth (bits/s/Hz) to keep losses O(10) regardless of
// channel width.
func (o *CoverageObjective) Eval(phases [][]float64, wantGrad bool) (float64, [][]float64) {
	if err := shapeMatches(o.shape, phases); err != nil {
		panic(err)
	}
	x := o.pbuf.Phasors(phases)
	var loss float64
	var grad [][]float64
	if wantGrad {
		o.grad = gradScratch(o.grad, o.shape)
		grad = o.grad
	}
	ln2 := math.Ln2
	for _, ch := range o.Channels {
		h := ch.EvalPhasors(x)
		p := real(h)*real(h) + imag(h)*imag(h)
		se := math.Log2(1 + o.snrScale*p) // spectral efficiency
		loss -= se
		if !wantGrad {
			continue
		}
		// d(-se)/dp = -S0 / ((1+S0 p)·ln2); dp/dφ = 2·Re(conj(h)·dh/dφ).
		dp := -o.snrScale / ((1 + o.snrScale*p) * ln2)
		o.parts = ch.PartialsInto(x, o.parts)
		parts := o.parts
		for s := range parts {
			for k, d := range parts[s] {
				re := real(h)*real(d) + imag(h)*imag(d) // Re(conj(h)·d)
				grad[s][k] += dp * 2 * re
			}
		}
	}
	return loss, grad
}

// coverageEvaluator caches one channel session per location; a trial prices
// every location at the moved element in O(#channels).
type coverageEvaluator struct {
	o     *CoverageObjective
	evals []*rfsim.Evaluator
	loss  float64
	trial float64
}

// NewDeltaEvaluator implements DeltaObjective.
func (o *CoverageObjective) NewDeltaEvaluator(phases [][]float64) DeltaEvaluator {
	if err := shapeMatches(o.shape, phases); err != nil {
		panic(err)
	}
	e := &coverageEvaluator{o: o, evals: make([]*rfsim.Evaluator, len(o.Channels))}
	for i, ch := range o.Channels {
		ev, err := ch.NewEvaluator(phases)
		if err != nil {
			panic(err) // unreachable: shape checked above
		}
		e.evals[i] = ev
		e.loss -= o.se(ev.H())
	}
	return e
}

func (e *coverageEvaluator) Loss() float64 { return e.loss }

func (e *coverageEvaluator) TryDelta(s, k int, newPhase float64) float64 {
	var loss float64
	for _, ev := range e.evals {
		loss -= e.o.se(ev.TryDelta(s, k, newPhase))
	}
	e.trial = loss
	return loss
}

func (e *coverageEvaluator) Commit() {
	for _, ev := range e.evals {
		ev.Commit()
	}
	e.loss = e.trial
}

func (e *coverageEvaluator) Revert() {
	for _, ev := range e.evals {
		ev.Revert()
	}
}

// Clone implements ParallelDeltaEvaluator: each location session is cloned
// with its own phasor cache, so the clone prices moves with no shared state.
func (e *coverageEvaluator) Clone() DeltaEvaluator {
	evals := make([]*rfsim.Evaluator, len(e.evals))
	for i, ev := range e.evals {
		evals[i] = ev.Clone()
	}
	return &coverageEvaluator{o: e.o, evals: evals, loss: e.loss}
}

// IndependentElements implements ParallelDeltaEvaluator: true when every
// location channel is single-bounce only.
func (e *coverageEvaluator) IndependentElements() bool {
	for _, ev := range e.evals {
		if !ev.Independent() {
			return false
		}
	}
	return true
}

// CloneForWorker implements ParallelObjective: the clone shares the channel
// decompositions and link budget (immutable) but owns fresh Eval scratch.
func (o *CoverageObjective) CloneForWorker() Objective {
	return &CoverageObjective{Channels: o.Channels, Budget: o.Budget, shape: o.shape, snrScale: o.snrScale}
}

// MeanSpectralEfficiency reports the average bits/s/Hz across the
// objective's locations at the given phases (positive form of the loss).
func (o *CoverageObjective) MeanSpectralEfficiency(phases [][]float64) float64 {
	l, _ := o.Eval(phases, false)
	return -l / float64(len(o.Channels))
}

// PowerObjective maximizes delivered RF power at target devices (the
// wireless powering service): loss = -Σ |h_i|², scaled to O(1) magnitudes
// by the coherent upper bound so optimizer step sizes are portable.
type PowerObjective struct {
	Channels []*rfsim.Channel
	shape    []int
	scale    float64

	pbuf  em.PhasorBuf
	grad  [][]float64
	parts [][]complex128
}

// NewPowerObjective builds the objective; scale is derived from the first
// channel's maximum coherent gain.
func NewPowerObjective(chans []*rfsim.Channel) (*PowerObjective, error) {
	if len(chans) == 0 {
		return nil, fmt.Errorf("optimize: power objective needs at least one channel")
	}
	shape := chans[0].NumElements()
	var bound float64
	for _, ch := range chans {
		b := cohBound(ch)
		if b > bound {
			bound = b
		}
	}
	if bound == 0 {
		bound = 1
	}
	return &PowerObjective{Channels: chans, shape: shape, scale: 1 / (bound * bound)}, nil
}

// cohBound returns |Direct| + Σ|Single| — an upper bound on |h|.
func cohBound(ch *rfsim.Channel) float64 {
	b := cabs(ch.Direct)
	for _, s := range ch.Single {
		for _, c := range s {
			b += cabs(c)
		}
	}
	return b
}

func cabs(c complex128) float64 { return math.Hypot(real(c), imag(c)) }

// Shape implements Objective.
func (o *PowerObjective) Shape() []int { return o.shape }

// Eval implements Objective.
func (o *PowerObjective) Eval(phases [][]float64, wantGrad bool) (float64, [][]float64) {
	if err := shapeMatches(o.shape, phases); err != nil {
		panic(err)
	}
	x := o.pbuf.Phasors(phases)
	var loss float64
	var grad [][]float64
	if wantGrad {
		o.grad = gradScratch(o.grad, o.shape)
		grad = o.grad
	}
	for _, ch := range o.Channels {
		h := ch.EvalPhasors(x)
		p := real(h)*real(h) + imag(h)*imag(h)
		loss -= p * o.scale
		if !wantGrad {
			continue
		}
		o.parts = ch.PartialsInto(x, o.parts)
		parts := o.parts
		for s := range parts {
			for k, d := range parts[s] {
				re := real(h)*real(d) + imag(h)*imag(d)
				grad[s][k] -= 2 * re * o.scale
			}
		}
	}
	return loss, grad
}

// powerEvaluator is the delta session of PowerObjective.
type powerEvaluator struct {
	o     *PowerObjective
	evals []*rfsim.Evaluator
	loss  float64
	trial float64
}

// NewDeltaEvaluator implements DeltaObjective.
func (o *PowerObjective) NewDeltaEvaluator(phases [][]float64) DeltaEvaluator {
	if err := shapeMatches(o.shape, phases); err != nil {
		panic(err)
	}
	e := &powerEvaluator{o: o, evals: make([]*rfsim.Evaluator, len(o.Channels))}
	for i, ch := range o.Channels {
		ev, err := ch.NewEvaluator(phases)
		if err != nil {
			panic(err) // unreachable: shape checked above
		}
		e.evals[i] = ev
		h := ev.H()
		e.loss -= (real(h)*real(h) + imag(h)*imag(h)) * o.scale
	}
	return e
}

func (e *powerEvaluator) Loss() float64 { return e.loss }

func (e *powerEvaluator) TryDelta(s, k int, newPhase float64) float64 {
	var loss float64
	for _, ev := range e.evals {
		h := ev.TryDelta(s, k, newPhase)
		loss -= (real(h)*real(h) + imag(h)*imag(h)) * e.o.scale
	}
	e.trial = loss
	return loss
}

func (e *powerEvaluator) Commit() {
	for _, ev := range e.evals {
		ev.Commit()
	}
	e.loss = e.trial
}

func (e *powerEvaluator) Revert() {
	for _, ev := range e.evals {
		ev.Revert()
	}
}

// Clone implements ParallelDeltaEvaluator.
func (e *powerEvaluator) Clone() DeltaEvaluator {
	evals := make([]*rfsim.Evaluator, len(e.evals))
	for i, ev := range e.evals {
		evals[i] = ev.Clone()
	}
	return &powerEvaluator{o: e.o, evals: evals, loss: e.loss}
}

// IndependentElements implements ParallelDeltaEvaluator.
func (e *powerEvaluator) IndependentElements() bool {
	for _, ev := range e.evals {
		if !ev.Independent() {
			return false
		}
	}
	return true
}

// CloneForWorker implements ParallelObjective.
func (o *PowerObjective) CloneForWorker() Objective {
	return &PowerObjective{Channels: o.Channels, shape: o.shape, scale: o.scale}
}

// SecurityObjective protects a link by steering energy away from an
// eavesdropper location while preserving the legitimate user's signal
// (the security service): loss = |h_eve|²/bound² − w·SE_user.
type SecurityObjective struct {
	User *rfsim.Channel
	Eve  *rfsim.Channel
	// UserWeight trades user capacity against eavesdropper suppression.
	UserWeight float64
	Budget     rfsim.LinkBudget

	shape    []int
	snrScale float64
	eveScale float64

	pbuf   em.PhasorBuf
	grad   [][]float64
	partsU [][]complex128
	partsE [][]complex128
}

// NewSecurityObjective builds the objective.
func NewSecurityObjective(user, eve *rfsim.Channel, userWeight float64, lb rfsim.LinkBudget) (*SecurityObjective, error) {
	if user == nil || eve == nil {
		return nil, fmt.Errorf("optimize: security objective needs user and eve channels")
	}
	su, se := user.NumElements(), eve.NumElements()
	if len(su) != len(se) {
		return nil, fmt.Errorf("optimize: user/eve surface count mismatch")
	}
	for i := range su {
		if su[i] != se[i] {
			return nil, fmt.Errorf("optimize: user/eve surface %d element mismatch", i)
		}
	}
	b := cohBound(eve)
	if b == 0 {
		b = 1
	}
	return &SecurityObjective{
		User: user, Eve: eve, UserWeight: userWeight, Budget: lb,
		shape:    su,
		snrScale: em.FromDB(lb.TxPowerDBm + lb.AntennaGainDB - lb.NoiseFloorDBm()),
		eveScale: 1 / (b * b),
	}, nil
}

// Shape implements Objective.
func (o *SecurityObjective) Shape() []int { return o.shape }

// secLoss combines the two channel values into the security loss.
func (o *SecurityObjective) secLoss(hu, he complex128) float64 {
	pu := real(hu)*real(hu) + imag(hu)*imag(hu)
	pe := real(he)*real(he) + imag(he)*imag(he)
	return pe*o.eveScale - o.UserWeight*math.Log2(1+o.snrScale*pu)
}

// Eval implements Objective.
func (o *SecurityObjective) Eval(phases [][]float64, wantGrad bool) (float64, [][]float64) {
	if err := shapeMatches(o.shape, phases); err != nil {
		panic(err)
	}
	x := o.pbuf.Phasors(phases)
	hu := o.User.EvalPhasors(x)
	he := o.Eve.EvalPhasors(x)
	pu := real(hu)*real(hu) + imag(hu)*imag(hu)
	pe := real(he)*real(he) + imag(he)*imag(he)
	seUser := math.Log2(1 + o.snrScale*pu)
	loss := pe*o.eveScale - o.UserWeight*seUser
	if !wantGrad {
		return loss, nil
	}
	o.grad = gradScratch(o.grad, o.shape)
	grad := o.grad
	o.partsE = o.Eve.PartialsInto(x, o.partsE)
	o.partsU = o.User.PartialsInto(x, o.partsU)
	pe2, pu2 := o.partsE, o.partsU
	dSE := o.UserWeight * o.snrScale / ((1 + o.snrScale*pu) * math.Ln2)
	for s := range grad {
		for k := range grad[s] {
			reE := real(he)*real(pe2[s][k]) + imag(he)*imag(pe2[s][k])
			reU := real(hu)*real(pu2[s][k]) + imag(hu)*imag(pu2[s][k])
			grad[s][k] = 2*reE*o.eveScale - dSE*2*reU
		}
	}
	return loss, grad
}

// securityEvaluator is the delta session of SecurityObjective.
type securityEvaluator struct {
	o        *SecurityObjective
	user, ev *rfsim.Evaluator
	loss     float64
	trial    float64
}

// NewDeltaEvaluator implements DeltaObjective.
func (o *SecurityObjective) NewDeltaEvaluator(phases [][]float64) DeltaEvaluator {
	if err := shapeMatches(o.shape, phases); err != nil {
		panic(err)
	}
	user, err := o.User.NewEvaluator(phases)
	if err != nil {
		panic(err) // unreachable: shape checked above
	}
	eve, err := o.Eve.NewEvaluator(phases)
	if err != nil {
		panic(err)
	}
	return &securityEvaluator{o: o, user: user, ev: eve, loss: o.secLoss(user.H(), eve.H())}
}

func (e *securityEvaluator) Loss() float64 { return e.loss }

func (e *securityEvaluator) TryDelta(s, k int, newPhase float64) float64 {
	e.trial = e.o.secLoss(e.user.TryDelta(s, k, newPhase), e.ev.TryDelta(s, k, newPhase))
	return e.trial
}

func (e *securityEvaluator) Commit() {
	e.user.Commit()
	e.ev.Commit()
	e.loss = e.trial
}

func (e *securityEvaluator) Revert() {
	e.user.Revert()
	e.ev.Revert()
}

// Clone implements ParallelDeltaEvaluator.
func (e *securityEvaluator) Clone() DeltaEvaluator {
	return &securityEvaluator{o: e.o, user: e.user.Clone(), ev: e.ev.Clone(), loss: e.loss}
}

// IndependentElements implements ParallelDeltaEvaluator.
func (e *securityEvaluator) IndependentElements() bool {
	return e.user.Independent() && e.ev.Independent()
}

// CloneForWorker implements ParallelObjective.
func (o *SecurityObjective) CloneForWorker() Objective {
	return &SecurityObjective{
		User: o.User, Eve: o.Eve, UserWeight: o.UserWeight, Budget: o.Budget,
		shape: o.shape, snrScale: o.snrScale, eveScale: o.eveScale,
	}
}
