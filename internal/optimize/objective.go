// Package optimize searches surface configurations for service objectives.
// It is the "optimizer" of the paper's surface orchestrator (§3.2): given
// channel decompositions from the simulator, it minimizes task losses —
// coverage, sensing, powering, security — individually or jointly
// ("multitasking with joint optimization").
//
// Objectives expose analytic gradients with respect to per-element phase
// shifts, which the gradient optimizers exploit; derivative-free optimizers
// (random search, simulated annealing) only use Eval and work for any
// hardware constraint set.
package optimize

import (
	"fmt"
	"math/cmplx"

	"surfos/internal/surface"
)

// Objective is a differentiable scalar loss over per-surface phase vectors.
// Implementations must be safe for repeated calls with different inputs.
type Objective interface {
	// Shape returns the element count per surface; phases passed to Eval
	// must match.
	Shape() []int
	// Eval returns the loss and, when wantGrad is true, ∂loss/∂φ for every
	// element (same shape as phases). Implementations may return a nil
	// gradient when wantGrad is false.
	Eval(phases [][]float64, wantGrad bool) (float64, [][]float64)
}

// Phasors converts phase values to unit phasors e^{jφ}, shaped like the
// input.
func Phasors(phases [][]float64) [][]complex128 {
	x := make([][]complex128, len(phases))
	for s, ps := range phases {
		xs := make([]complex128, len(ps))
		for k, phi := range ps {
			xs[k] = cmplx.Rect(1, phi)
		}
		x[s] = xs
	}
	return x
}

// ZeroPhases allocates an all-zero phase set for a shape.
func ZeroPhases(shape []int) [][]float64 {
	p := make([][]float64, len(shape))
	for i, n := range shape {
		p[i] = make([]float64, n)
	}
	return p
}

// ClonePhases deep-copies a phase set.
func ClonePhases(p [][]float64) [][]float64 {
	out := make([][]float64, len(p))
	for i, v := range p {
		c := make([]float64, len(v))
		copy(c, v)
		out[i] = c
	}
	return out
}

// PhasesToConfigs wraps phase vectors as surface configurations.
func PhasesToConfigs(phases [][]float64) []surface.Config {
	cfgs := make([]surface.Config, len(phases))
	for i, p := range phases {
		v := make([]float64, len(p))
		copy(v, p)
		cfgs[i] = surface.Config{Property: surface.Phase, Values: v}
	}
	return cfgs
}

// ConfigsToPhases extracts phase vectors from configurations.
func ConfigsToPhases(cfgs []surface.Config) ([][]float64, error) {
	out := make([][]float64, len(cfgs))
	for i, c := range cfgs {
		if c.Property != surface.Phase {
			return nil, fmt.Errorf("optimize: config %d has property %v, want phase", i, c.Property)
		}
		v := make([]float64, len(c.Values))
		copy(v, c.Values)
		out[i] = v
	}
	return out, nil
}

// shapeMatches verifies phases fit a shape.
func shapeMatches(shape []int, phases [][]float64) error {
	if len(phases) != len(shape) {
		return fmt.Errorf("optimize: %d phase vectors for %d surfaces", len(phases), len(shape))
	}
	for i, n := range shape {
		if len(phases[i]) != n {
			return fmt.Errorf("optimize: surface %d has %d phases, want %d", i, len(phases[i]), n)
		}
	}
	return nil
}

// WeightedSum combines objectives with weights; this realizes the paper's
// joint multitask loss ("we minimize the sum of localization loss and
// coverage loss", §4). All terms must share one shape.
type WeightedSum struct {
	Terms   []Objective
	Weights []float64
}

// NewWeightedSum validates shapes and builds the combination.
func NewWeightedSum(terms []Objective, weights []float64) (*WeightedSum, error) {
	if len(terms) == 0 {
		return nil, fmt.Errorf("optimize: weighted sum needs at least one term")
	}
	if len(weights) != len(terms) {
		return nil, fmt.Errorf("optimize: %d weights for %d terms", len(weights), len(terms))
	}
	shape := terms[0].Shape()
	for i, t := range terms[1:] {
		s := t.Shape()
		if len(s) != len(shape) {
			return nil, fmt.Errorf("optimize: term %d shape mismatch", i+1)
		}
		for j := range s {
			if s[j] != shape[j] {
				return nil, fmt.Errorf("optimize: term %d surface %d has %d elements, want %d", i+1, j, s[j], shape[j])
			}
		}
	}
	return &WeightedSum{Terms: terms, Weights: weights}, nil
}

// Shape implements Objective.
func (w *WeightedSum) Shape() []int { return w.Terms[0].Shape() }

// Eval implements Objective.
func (w *WeightedSum) Eval(phases [][]float64, wantGrad bool) (float64, [][]float64) {
	var loss float64
	var grad [][]float64
	if wantGrad {
		grad = ZeroPhases(w.Shape())
	}
	for i, t := range w.Terms {
		l, g := t.Eval(phases, wantGrad)
		loss += w.Weights[i] * l
		if wantGrad {
			for s := range g {
				for k := range g[s] {
					grad[s][k] += w.Weights[i] * g[s][k]
				}
			}
		}
	}
	return loss, grad
}
