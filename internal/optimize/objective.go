// Package optimize searches surface configurations for service objectives.
// It is the "optimizer" of the paper's surface orchestrator (§3.2): given
// channel decompositions from the simulator, it minimizes task losses —
// coverage, sensing, powering, security — individually or jointly
// ("multitasking with joint optimization").
//
// Objectives expose analytic gradients with respect to per-element phase
// shifts, which the gradient optimizers exploit; derivative-free optimizers
// (random search, simulated annealing) only use Eval and work for any
// hardware constraint set.
package optimize

import (
	"context"
	"fmt"

	"surfos/internal/em"
	"surfos/internal/engine"
	"surfos/internal/surface"
)

// Objective is a differentiable scalar loss over per-surface phase vectors.
// Implementations must be safe for repeated sequential calls with different
// inputs, but may reuse internal scratch between calls: the gradient
// returned by Eval is valid only until the next Eval call on the same
// objective, and a single objective instance must not be evaluated from
// multiple goroutines concurrently.
type Objective interface {
	// Shape returns the element count per surface; phases passed to Eval
	// must match.
	Shape() []int
	// Eval returns the loss and, when wantGrad is true, ∂loss/∂φ for every
	// element (same shape as phases). Implementations may return a nil
	// gradient when wantGrad is false.
	Eval(phases [][]float64, wantGrad bool) (float64, [][]float64)
}

// DeltaEvaluator is a stateful evaluation session positioned at a committed
// phase set. TryDelta prices moving a single element to a new phase and
// makes that move pending; Commit applies the pending move, Revert discards
// it. Only one move may be pending at a time — a later TryDelta replaces the
// pending one. Sessions are not safe for concurrent use.
//
// For objectives built on channel decompositions a trial is O(#channels)
// instead of O(#channels × #elements), which is what makes coordinate
// descent and annealing sweeps O(N) instead of O(N²).
type DeltaEvaluator interface {
	// Loss returns the loss at the committed state.
	Loss() float64
	// TryDelta returns the loss with element k of surface s at newPhase.
	TryDelta(s, k int, newPhase float64) float64
	// Commit applies the pending trial.
	Commit()
	// Revert discards the pending trial.
	Revert()
}

// DeltaObjective is the optional extension of Objective for losses that
// support single-element delta evaluation. NewDeltaEvaluator opens a session
// at the given phases; it returns nil when the objective cannot provide one
// (e.g. a WeightedSum containing a non-delta term), in which case callers
// must fall back to full Eval.
type DeltaObjective interface {
	Objective
	NewDeltaEvaluator(phases [][]float64) DeltaEvaluator
}

// ParallelDeltaEvaluator is the optional extension of DeltaEvaluator for
// sessions that can be cloned once per worker so a sweep prices candidate
// batches concurrently.
//
// Clone semantics: the clone is positioned at the receiver's committed
// state and owns every piece of cached state (phasors, measurement
// vectors, scratch arenas) — no sharing, no locks on the pricing path. A
// pending trial is never carried into a clone. Replaying an identical
// TryDelta/Commit sequence on a clone reproduces the committed state of
// the original bit-for-bit; the parallel optimizers rely on this to keep
// per-worker sessions synchronized through a shared move log instead of
// re-cloning. Clone may return nil when a session cannot be cloned (a
// composed session with a non-cloneable child); callers then fall back to
// the serial path.
type ParallelDeltaEvaluator interface {
	DeltaEvaluator
	Clone() DeltaEvaluator
	// IndependentElements reports whether single-element moves perturb
	// disjoint cached state (single-bounce channel terms: h is affine with
	// constant per-element coefficients). It is a speculation-batching
	// hint, never a correctness requirement — parallel sweeps stay exact
	// either way, coupled sessions just speculate in smaller blocks.
	IndependentElements() bool
}

// ParallelObjective is the optional extension of Objective for losses
// whose full Eval can run on per-worker clones. CloneForWorker returns an
// independent Objective sharing the immutable problem inputs (channel
// decompositions, budgets) but owning its own evaluation scratch, so
// distinct clones may Eval concurrently. It may return nil when the
// objective cannot provide one; callers then fall back to serial Eval.
type ParallelObjective interface {
	Objective
	CloneForWorker() Objective
}

// Phasors converts phase values to unit phasors e^{jφ}, shaped like the
// input.
func Phasors(phases [][]float64) [][]complex128 {
	return em.Phasors(phases)
}

// ZeroPhases allocates an all-zero phase set for a shape.
func ZeroPhases(shape []int) [][]float64 {
	p := make([][]float64, len(shape))
	for i, n := range shape {
		p[i] = make([]float64, n)
	}
	return p
}

// ClonePhases deep-copies a phase set.
func ClonePhases(p [][]float64) [][]float64 {
	out := make([][]float64, len(p))
	for i, v := range p {
		c := make([]float64, len(v))
		copy(c, v)
		out[i] = c
	}
	return out
}

// copyPhases copies src into dst, which must share src's shape.
func copyPhases(dst, src [][]float64) {
	for s := range src {
		copy(dst[s], src[s])
	}
}

// gradScratch returns a zeroed gradient buffer for shape, reusing buf's
// storage when it already matches.
func gradScratch(buf [][]float64, shape []int) [][]float64 {
	if len(buf) != len(shape) {
		return ZeroPhases(shape)
	}
	for s, n := range shape {
		if len(buf[s]) != n {
			return ZeroPhases(shape)
		}
		for k := range buf[s] {
			buf[s][k] = 0
		}
	}
	return buf
}

// PhasesToConfigs wraps phase vectors as surface configurations.
func PhasesToConfigs(phases [][]float64) []surface.Config {
	cfgs := make([]surface.Config, len(phases))
	for i, p := range phases {
		v := make([]float64, len(p))
		copy(v, p)
		cfgs[i] = surface.Config{Property: surface.Phase, Values: v}
	}
	return cfgs
}

// ConfigsToPhases extracts phase vectors from configurations.
func ConfigsToPhases(cfgs []surface.Config) ([][]float64, error) {
	out := make([][]float64, len(cfgs))
	for i, c := range cfgs {
		if c.Property != surface.Phase {
			return nil, fmt.Errorf("optimize: config %d has property %v, want phase", i, c.Property)
		}
		v := make([]float64, len(c.Values))
		copy(v, c.Values)
		out[i] = v
	}
	return out, nil
}

// shapeMatches verifies phases fit a shape.
func shapeMatches(shape []int, phases [][]float64) error {
	if len(phases) != len(shape) {
		return fmt.Errorf("optimize: %d phase vectors for %d surfaces", len(phases), len(shape))
	}
	for i, n := range shape {
		if len(phases[i]) != n {
			return fmt.Errorf("optimize: surface %d has %d phases, want %d", i, len(phases[i]), n)
		}
	}
	return nil
}

// WeightedSum combines objectives with weights; this realizes the paper's
// joint multitask loss ("we minimize the sum of localization loss and
// coverage loss", §4). All terms must share one shape.
type WeightedSum struct {
	Terms   []Objective
	Weights []float64

	grad [][]float64 // gradient scratch, reused across Eval calls

	// Pool configuration from UsePool: when set, Eval fans the terms
	// across the engine's workers (each term instance owns its scratch, so
	// distinct terms evaluate concurrently) and reduces in term order.
	pool        *engine.Engine
	poolWorkers int
	termLoss    []float64     // per-term losses, reduced in term order
	termGrad    [][][]float64 // per-term gradients (term-owned buffers)
}

// UsePool makes Eval fan its terms across the engine's worker pool:
// each term evaluates on its own goroutine (every term instance already
// owns its scratch), and the per-term losses and gradients are reduced
// serially in term order afterwards. The reduction performs exactly one
// addition per term per element — the same operation sequence as the
// serial loop — so pooled evaluation is bit-identical to serial and safe
// under golden-output checks. workers follows the engine convention: 0
// means the engine's width, 1 forces the serial path. A nil engine
// disables pooling.
func (w *WeightedSum) UsePool(eng *engine.Engine, workers int) {
	w.pool = eng
	w.poolWorkers = workers
}

// NewWeightedSum validates shapes and builds the combination.
func NewWeightedSum(terms []Objective, weights []float64) (*WeightedSum, error) {
	if len(terms) == 0 {
		return nil, fmt.Errorf("optimize: weighted sum needs at least one term")
	}
	if len(weights) != len(terms) {
		return nil, fmt.Errorf("optimize: %d weights for %d terms", len(weights), len(terms))
	}
	shape := terms[0].Shape()
	for i, t := range terms[1:] {
		s := t.Shape()
		if len(s) != len(shape) {
			return nil, fmt.Errorf("optimize: term %d shape mismatch", i+1)
		}
		for j := range s {
			if s[j] != shape[j] {
				return nil, fmt.Errorf("optimize: term %d surface %d has %d elements, want %d", i+1, j, s[j], shape[j])
			}
		}
	}
	return &WeightedSum{Terms: terms, Weights: weights}, nil
}

// Shape implements Objective.
func (w *WeightedSum) Shape() []int { return w.Terms[0].Shape() }

// Eval implements Objective. Each term's gradient is accumulated into the
// sum's reusable scratch immediately after the term evaluates, so terms may
// themselves return reused buffers. With a pool configured (UsePool) and
// more than one term, the terms evaluate concurrently and the accumulation
// happens afterwards in term order — the identical operation sequence, so
// the result is bit-for-bit the same either way.
func (w *WeightedSum) Eval(phases [][]float64, wantGrad bool) (float64, [][]float64) {
	var loss float64
	var grad [][]float64
	if wantGrad {
		w.grad = gradScratch(w.grad, w.Shape())
		grad = w.grad
	}
	if w.pool != nil && w.poolWorkers != 1 && len(w.Terms) > 1 {
		if l, ok := w.evalPooled(phases, wantGrad, grad); ok {
			return l, grad
		}
	}
	for i, t := range w.Terms {
		l, g := t.Eval(phases, wantGrad)
		loss += w.Weights[i] * l
		if wantGrad {
			for s := range g {
				for k := range g[s] {
					grad[s][k] += w.Weights[i] * g[s][k]
				}
			}
		}
	}
	return loss, grad
}

// evalPooled fans the terms across the engine pool and reduces in term
// order. It reports false (leaving grad untouched) when the pool has no
// spare workers right now, in which case the caller runs the serial loop.
func (w *WeightedSum) evalPooled(phases [][]float64, wantGrad bool, grad [][]float64) (float64, bool) {
	sc := w.pool.Acquire(w.poolWorkers)
	defer sc.Release()
	if sc.Workers() <= 1 {
		return 0, false
	}
	if len(w.termLoss) != len(w.Terms) {
		w.termLoss = make([]float64, len(w.Terms))
		w.termGrad = make([][][]float64, len(w.Terms))
	}
	_ = sc.ForEach(context.Background(), len(w.Terms), func(_, i int) {
		w.termLoss[i], w.termGrad[i] = w.Terms[i].Eval(phases, wantGrad)
	})
	var loss float64
	for i := range w.Terms {
		loss += w.Weights[i] * w.termLoss[i]
		if wantGrad {
			g := w.termGrad[i]
			for s := range g {
				for k := range g[s] {
					grad[s][k] += w.Weights[i] * g[s][k]
				}
			}
		}
		w.termGrad[i] = nil
	}
	return loss, true
}

// CloneForWorker implements ParallelObjective: the clone carries per-worker
// clones of every term (and no pool — clones evaluate on the worker that
// owns them). Returns nil when any term is not cloneable.
func (w *WeightedSum) CloneForWorker() Objective {
	terms := make([]Objective, len(w.Terms))
	for i, t := range w.Terms {
		p, ok := t.(ParallelObjective)
		if !ok {
			return nil
		}
		c := p.CloneForWorker()
		if c == nil {
			return nil
		}
		terms[i] = c
	}
	return &WeightedSum{Terms: terms, Weights: w.Weights}
}

// weightedSumEvaluator composes the child sessions of a WeightedSum: every
// trial, commit, and revert fans out to each term's own evaluator.
type weightedSumEvaluator struct {
	children []DeltaEvaluator
	weights  []float64
	loss     float64
	trial    float64
}

// NewDeltaEvaluator implements DeltaObjective. It returns nil when any term
// does not support delta evaluation.
func (w *WeightedSum) NewDeltaEvaluator(phases [][]float64) DeltaEvaluator {
	children := make([]DeltaEvaluator, len(w.Terms))
	var loss float64
	for i, t := range w.Terms {
		d, ok := t.(DeltaObjective)
		if !ok {
			return nil
		}
		ev := d.NewDeltaEvaluator(phases)
		if ev == nil {
			return nil
		}
		children[i] = ev
		loss += w.Weights[i] * ev.Loss()
	}
	return &weightedSumEvaluator{children: children, weights: w.Weights, loss: loss}
}

func (e *weightedSumEvaluator) Loss() float64 { return e.loss }

func (e *weightedSumEvaluator) TryDelta(s, k int, newPhase float64) float64 {
	var loss float64
	for i, c := range e.children {
		loss += e.weights[i] * c.TryDelta(s, k, newPhase)
	}
	e.trial = loss
	return loss
}

func (e *weightedSumEvaluator) Commit() {
	for _, c := range e.children {
		c.Commit()
	}
	e.loss = e.trial
}

func (e *weightedSumEvaluator) Revert() {
	for _, c := range e.children {
		c.Revert()
	}
}

// Clone implements ParallelDeltaEvaluator by cloning every child session.
// Returns nil when any child is not cloneable, so composed sweeps fall
// back to the serial path as a unit.
func (e *weightedSumEvaluator) Clone() DeltaEvaluator {
	children := make([]DeltaEvaluator, len(e.children))
	for i, c := range e.children {
		p, ok := c.(ParallelDeltaEvaluator)
		if !ok {
			return nil
		}
		cc := p.Clone()
		if cc == nil {
			return nil
		}
		children[i] = cc
	}
	return &weightedSumEvaluator{children: children, weights: e.weights, loss: e.loss}
}

// IndependentElements reports independence only when every child declares
// it — one coupled term makes the whole sum coupled.
func (e *weightedSumEvaluator) IndependentElements() bool {
	for _, c := range e.children {
		p, ok := c.(ParallelDeltaEvaluator)
		if !ok || !p.IndependentElements() {
			return false
		}
	}
	return true
}
