package optimize

import (
	"context"
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"surfos/internal/rfsim"
	"surfos/internal/surface"
)

// randChannel builds a synthetic channel decomposition with the given
// per-surface element counts and optional cross blocks.
func randChannel(r *rand.Rand, shape []int, cross bool) *rfsim.Channel {
	ch := &rfsim.Channel{Freq: 24e9, Direct: complex(r.NormFloat64(), r.NormFloat64()) * 1e-6}
	ch.Single = make([][]complex128, len(shape))
	for s, n := range shape {
		v := make([]complex128, n)
		for k := range v {
			v[k] = complex(r.NormFloat64(), r.NormFloat64()) * 1e-5
		}
		ch.Single[s] = v
	}
	if cross && len(shape) >= 2 {
		m := make([][]complex128, shape[0])
		for k := range m {
			row := make([]complex128, shape[1])
			for j := range row {
				row[j] = complex(r.NormFloat64(), r.NormFloat64()) * 1e-7
			}
			m[k] = row
		}
		ch.Cross = []rfsim.CrossBlock{{A: 0, B: 1, M: m}}
	}
	return ch
}

func randPhases(r *rand.Rand, shape []int) [][]float64 {
	p := ZeroPhases(shape)
	for s := range p {
		for k := range p[s] {
			p[s][k] = r.Float64() * 2 * math.Pi
		}
	}
	return p
}

// checkGradient compares an objective's analytic gradient against central
// differences.
func checkGradient(t *testing.T, obj Objective, phases [][]float64, tol float64) {
	t.Helper()
	_, grad := obj.Eval(phases, true)
	const eps = 1e-6
	for s := range phases {
		for k := range phases[s] {
			p := ClonePhases(phases)
			p[s][k] += eps
			lp, _ := obj.Eval(p, false)
			p[s][k] -= 2 * eps
			lm, _ := obj.Eval(p, false)
			num := (lp - lm) / (2 * eps)
			if math.Abs(num-grad[s][k]) > tol*(1+math.Abs(num)) {
				t.Fatalf("grad s=%d k=%d: analytic %v numeric %v", s, k, grad[s][k], num)
			}
		}
	}
}

func testBudget() rfsim.LinkBudget {
	return rfsim.LinkBudget{TxPowerDBm: 10, AntennaGainDB: 20, NoiseFigureDB: 7, BandwidthHz: 400e6}
}

func TestCoverageGradient(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	shape := []int{4, 3}
	chans := []*rfsim.Channel{
		randChannel(r, shape, true),
		randChannel(r, shape, false),
		randChannel(r, shape, true),
	}
	obj, err := NewCoverageObjective(chans, testBudget())
	if err != nil {
		t.Fatal(err)
	}
	checkGradient(t, obj, randPhases(r, shape), 1e-4)
}

func TestPowerGradient(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	shape := []int{5}
	chans := []*rfsim.Channel{randChannel(r, shape, false), randChannel(r, shape, false)}
	obj, err := NewPowerObjective(chans)
	if err != nil {
		t.Fatal(err)
	}
	checkGradient(t, obj, randPhases(r, shape), 1e-5)
}

func TestSecurityGradient(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	shape := []int{4, 2}
	obj, err := NewSecurityObjective(randChannel(r, shape, true), randChannel(r, shape, true), 0.5, testBudget())
	if err != nil {
		t.Fatal(err)
	}
	checkGradient(t, obj, randPhases(r, shape), 1e-4)
}

func TestWeightedSumGradient(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	shape := []int{3, 3}
	cov, _ := NewCoverageObjective([]*rfsim.Channel{randChannel(r, shape, false)}, testBudget())
	pow, _ := NewPowerObjective([]*rfsim.Channel{randChannel(r, shape, true)})
	ws, err := NewWeightedSum([]Objective{cov, pow}, []float64{1.0, 2.5})
	if err != nil {
		t.Fatal(err)
	}
	checkGradient(t, ws, randPhases(r, shape), 1e-4)

	// Weighted sum value equals the weighted combination.
	p := randPhases(r, shape)
	lc, _ := cov.Eval(p, false)
	lp, _ := pow.Eval(p, false)
	lw, _ := ws.Eval(p, false)
	if math.Abs(lw-(lc+2.5*lp)) > 1e-12*(1+math.Abs(lw)) {
		t.Errorf("weighted sum %v != %v", lw, lc+2.5*lp)
	}
}

func TestWeightedSumValidation(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	a, _ := NewPowerObjective([]*rfsim.Channel{randChannel(r, []int{3}, false)})
	b, _ := NewPowerObjective([]*rfsim.Channel{randChannel(r, []int{4}, false)})
	if _, err := NewWeightedSum([]Objective{a, b}, []float64{1, 1}); err == nil {
		t.Error("mismatched shapes accepted")
	}
	if _, err := NewWeightedSum(nil, nil); err == nil {
		t.Error("empty terms accepted")
	}
	if _, err := NewWeightedSum([]Objective{a}, []float64{1, 2}); err == nil {
		t.Error("weight count mismatch accepted")
	}
}

func TestObjectiveConstructorsValidate(t *testing.T) {
	if _, err := NewCoverageObjective(nil, testBudget()); err == nil {
		t.Error("empty coverage accepted")
	}
	if _, err := NewPowerObjective(nil); err == nil {
		t.Error("empty power accepted")
	}
	if _, err := NewSecurityObjective(nil, nil, 1, testBudget()); err == nil {
		t.Error("nil security channels accepted")
	}
	r := rand.New(rand.NewSource(6))
	chans := []*rfsim.Channel{randChannel(r, []int{3}, false), randChannel(r, []int{4}, false)}
	if _, err := NewCoverageObjective(chans, testBudget()); err == nil {
		t.Error("mismatched channel shapes accepted")
	}
}

// TestAdamReachesCoherentOptimum: for a single channel and a single
// surface, the optimal |h| is |Direct| + Σ|c_k| and the optimal phases are
// known in closed form; Adam must get very close.
func TestAdamReachesCoherentOptimum(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	ch := randChannel(r, []int{12}, false)
	obj, _ := NewPowerObjective([]*rfsim.Channel{ch})

	res := Adam(context.Background(), obj, ZeroPhases(obj.Shape()), Options{MaxIters: 500, LR: 0.2})

	// Optimal: every term aligned with Direct.
	bound := cabs(ch.Direct)
	for _, c := range ch.Single[0] {
		bound += cabs(c)
	}
	x := Phasors(res.Phases)
	h := ch.EvalPhasors(x)
	if got := cmplx.Abs(h); got < 0.995*bound {
		t.Errorf("Adam |h| = %v, coherent bound %v", got, bound)
	}
	if res.Iterations == 0 || len(res.History) == 0 {
		t.Error("missing iteration bookkeeping")
	}
}

func TestAdamBeatsRandomSearch(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	shape := []int{16}
	chans := []*rfsim.Channel{randChannel(r, shape, false), randChannel(r, shape, false)}
	obj, _ := NewCoverageObjective(chans, testBudget())

	adam := Adam(context.Background(), obj, ZeroPhases(shape), Options{MaxIters: 300})
	rs := RandomSearch(context.Background(), obj, Options{MaxIters: 300, Seed: 1})
	if adam.Loss >= rs.Loss {
		t.Errorf("Adam loss %v not better than random search %v", adam.Loss, rs.Loss)
	}
}

func TestRandomSearchImproves(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	obj, _ := NewPowerObjective([]*rfsim.Channel{randChannel(r, []int{8}, false)})
	zero, _ := obj.Eval(ZeroPhases(obj.Shape()), false)
	res := RandomSearch(context.Background(), obj, Options{MaxIters: 200, Seed: 2})
	if res.Loss > zero {
		t.Errorf("random search %v worse than zero init %v", res.Loss, zero)
	}
}

func TestAnnealImproves(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	obj, _ := NewPowerObjective([]*rfsim.Channel{randChannel(r, []int{8}, false)})
	init := ZeroPhases(obj.Shape())
	start, _ := obj.Eval(init, false)
	res := Anneal(context.Background(), obj, init, Options{MaxIters: 2000, Seed: 3})
	if res.Loss >= start {
		t.Errorf("anneal %v did not improve on %v", res.Loss, start)
	}
}

func TestCoordinateDescent1Bit(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	obj, _ := NewPowerObjective([]*rfsim.Channel{randChannel(r, []int{10}, false)})
	init := ZeroPhases(obj.Shape())
	start, _ := obj.Eval(init, false)
	res := CoordinateDescent(context.Background(), obj, init, []float64{0, math.Pi}, Options{MaxIters: 20})
	if res.Loss >= start {
		t.Errorf("coordinate descent %v did not improve on %v", res.Loss, start)
	}
	for _, v := range res.Phases[0] {
		if v != 0 && v != math.Pi {
			t.Errorf("phase %v outside 1-bit candidate set", v)
		}
	}
}

func TestProjectorApplied(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	obj, _ := NewPowerObjective([]*rfsim.Channel{randChannel(r, []int{8}, false)})
	quant := func(p [][]float64) [][]float64 {
		out := ClonePhases(p)
		for s := range out {
			cfg := surface.Config{Property: surface.Phase, Values: out[s]}
			q := cfg.Quantize(2)
			out[s] = q.Values
		}
		return out
	}
	res := Adam(context.Background(), obj, ZeroPhases(obj.Shape()), Options{MaxIters: 100, Project: quant})
	step := math.Pi / 2
	for _, v := range res.Phases[0] {
		snapped := math.Round(v/step) * step
		if math.Abs(v-snapped) > 1e-9 {
			t.Errorf("phase %v not on 2-bit grid", v)
		}
	}
}

func TestPhasesConfigsRoundTrip(t *testing.T) {
	p := [][]float64{{0.1, 0.2}, {0.3}}
	cfgs := PhasesToConfigs(p)
	back, err := ConfigsToPhases(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	for s := range p {
		for k := range p[s] {
			if back[s][k] != p[s][k] {
				t.Fatalf("round trip mismatch at %d,%d", s, k)
			}
		}
	}
	// Mutating the config must not affect the original.
	cfgs[0].Values[0] = 99
	if p[0][0] == 99 {
		t.Error("PhasesToConfigs aliases input")
	}
	if _, err := ConfigsToPhases([]surface.Config{{Property: surface.Amplitude}}); err == nil {
		t.Error("non-phase config accepted")
	}
}

func TestMeanSpectralEfficiency(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	chans := []*rfsim.Channel{randChannel(r, []int{4}, false), randChannel(r, []int{4}, false)}
	obj, _ := NewCoverageObjective(chans, testBudget())
	p := ZeroPhases(obj.Shape())
	se := obj.MeanSpectralEfficiency(p)
	l, _ := obj.Eval(p, false)
	if math.Abs(se-(-l/2)) > 1e-12 {
		t.Errorf("mean SE %v inconsistent with loss %v", se, l)
	}
}

func TestCoordinateDescentDefaultCandidates(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	obj, _ := NewPowerObjective([]*rfsim.Channel{randChannel(r, []int{6}, false)})
	init := ZeroPhases(obj.Shape())
	start, _ := obj.Eval(init, false)
	res := CoordinateDescent(context.Background(), obj, init, nil, Options{MaxIters: 10})
	if res.Loss >= start {
		t.Errorf("default-candidate CD %v did not improve on %v", res.Loss, start)
	}
	// Default grid is 2-bit.
	for _, v := range res.Phases[0] {
		snapped := math.Round(v/(math.Pi/2)) * (math.Pi / 2)
		if math.Abs(v-snapped) > 1e-9 {
			t.Errorf("phase %v off the default 2-bit grid", v)
		}
	}
}
