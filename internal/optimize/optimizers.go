package optimize

import (
	"context"
	"math"
	"math/rand"

	"surfos/internal/engine"
)

// Projector maps a phase set onto the feasible set of the hardware
// (quantized states, column-wise sharing, …). It must be idempotent.
// Drivers provide projectors from their specs.
type Projector func([][]float64) [][]float64

// Options tunes an optimization run. Zero or negative values select sane
// defaults, so a partially filled Options can never produce an infinite
// (MaxIters ≤ 0 with no other stop) or diverging (LR ≤ 0) loop.
//
// Seed seeds the stochastic methods' RNG. Seed 0 is a fixed deterministic
// seed like any other value — runs are never time-seeded, so repeated
// invocations with identical inputs produce identical results.
type Options struct {
	MaxIters  int     // default 200; values ≤ 0 use the default
	LR        float64 // Adam learning rate (radians), default 0.3; ≤ 0 uses the default
	Tolerance float64 // stop when |Δloss| < Tolerance for 10 iters, default 1e-9; ≤ 0 uses the default
	Seed      int64   // RNG seed for stochastic methods; 0 is deterministic, not time-seeded
	Project   Projector

	// Engine provides the worker pool for parallel sweeps
	// (CoordinateDescent and Anneal). Nil keeps every method serial. The
	// pool is shared: sweeps borrow workers through a scope, so optimizer
	// fan-outs and concurrent engine jobs (heatmaps, shard reconciles)
	// never oversubscribe the machine. Parallel sweeps are bit-identical
	// to serial ones — same trajectory, same Result.Evals — because
	// candidates are priced speculatively on per-worker evaluator clones
	// and reduced serially in candidate order (see DESIGN.md §13).
	Engine *engine.Engine
	// Workers caps how many pool workers one sweep may borrow: 0 means
	// the engine's full width, 1 forces serial — the engine.Engine
	// convention. When Workers > 1, Project (if set) must be safe for
	// concurrent calls; the driver-backed projectors are.
	Workers int
}

func (o Options) withDefaults() Options {
	if o.MaxIters <= 0 {
		o.MaxIters = 200
	}
	if o.LR <= 0 {
		o.LR = 0.3
	}
	if o.Tolerance <= 0 {
		o.Tolerance = 1e-9
	}
	return o
}

// Result is the outcome of an optimization run.
type Result struct {
	Phases [][]float64
	Loss   float64
	// Iterations counts optimizer iterations in each method's natural unit:
	// gradient steps (Adam), samples drawn (RandomSearch), proposals
	// (Anneal), and full element sweeps (CoordinateDescent).
	Iterations int
	// Evals counts objective evaluations performed during the run — full
	// Eval calls and single-element delta evaluations alike — so the cost
	// of methods with different per-iteration eval counts stays comparable.
	// Parallel sweeps count each candidate exactly once, exactly as the
	// serial path would: speculative evaluations that are discarded when an
	// earlier element commits are excluded here and reported in
	// WastedEvals instead.
	Evals int
	// WastedEvals counts speculative evaluations discarded by parallel
	// sweeps (candidates priced against a state that a preceding commit
	// invalidated). Always zero on serial runs. Evals+WastedEvals is the
	// total work performed; Evals alone matches the serial run bit-for-bit.
	WastedEvals int
	// Stopped is true when the run ended early because its context was
	// canceled or its deadline expired. Phases/Loss still hold the best
	// feasible candidate found up to that point.
	Stopped bool
	// History records the loss after each iteration (gradient methods and
	// coordinate sweeps) or each improvement (stochastic methods).
	History []float64
}

func project(p Projector, phases [][]float64) [][]float64 {
	if p == nil {
		return phases
	}
	return p(phases)
}

// canceled tolerates nil contexts so internal callers can pass the zero
// value without crashing.
func canceled(ctx context.Context) bool {
	return ctx != nil && ctx.Err() != nil
}

// deltaSession opens a delta-evaluation session when the objective supports
// one, or returns nil to select the full-recompute path.
func deltaSession(obj Objective, phases [][]float64) DeltaEvaluator {
	d, ok := obj.(DeltaObjective)
	if !ok {
		return nil
	}
	return d.NewDeltaEvaluator(phases)
}

// Adam minimizes the objective with the Adam gradient method starting at
// init. The paper's prototype uses gradient descent for the orchestrator's
// optimizer; Adam is the standard robust variant. The projector, when set,
// is applied after every step (projected gradient descent) and to the
// returned phases.
//
// The context is checked once per iteration: cancellation or deadline
// expiry stops the loop and returns the best-so-far feasible result with
// Stopped set and Iterations < MaxIters.
func Adam(ctx context.Context, obj Objective, init [][]float64, opt Options) Result {
	opt = opt.withDefaults()
	phases := project(opt.Project, ClonePhases(init))

	m := ZeroPhases(obj.Shape())
	v := ZeroPhases(obj.Shape())
	const beta1, beta2, eps = 0.9, 0.999, 1e-8

	best := ClonePhases(phases)
	bestLoss := math.Inf(1)
	var history []float64
	flat := 0
	prev := math.Inf(1)
	stopped := false
	evals := 0

	var it int
	for it = 1; it <= opt.MaxIters; it++ {
		if canceled(ctx) {
			stopped = true
			it-- // this iteration did not run
			break
		}
		loss, grad := obj.Eval(phases, true)
		evals++
		if loss < bestLoss {
			bestLoss = loss
			copyPhases(best, phases)
		}
		history = append(history, loss)

		if math.Abs(prev-loss) < opt.Tolerance {
			flat++
			if flat >= 10 {
				break
			}
		} else {
			flat = 0
		}
		prev = loss

		b1t := 1 - math.Pow(beta1, float64(it))
		b2t := 1 - math.Pow(beta2, float64(it))
		for s := range phases {
			for k := range phases[s] {
				g := grad[s][k]
				m[s][k] = beta1*m[s][k] + (1-beta1)*g
				v[s][k] = beta2*v[s][k] + (1-beta2)*g*g
				mh := m[s][k] / b1t
				vh := v[s][k] / b2t
				phases[s][k] -= opt.LR * mh / (math.Sqrt(vh) + eps)
			}
		}
		phases = project(opt.Project, phases)
	}
	if it > opt.MaxIters {
		it = opt.MaxIters
	}

	// Re-evaluate the best candidate after projection so the reported loss
	// matches the returned feasible phases.
	best = project(opt.Project, best)
	finalLoss, _ := obj.Eval(best, false)
	evals++
	return Result{Phases: best, Loss: finalLoss, Iterations: it, Evals: evals, Stopped: stopped, History: history}
}

// RandomSearch samples uniformly random feasible phase sets and keeps the
// best — the baseline every gradient method must beat, and the only method
// available for non-differentiable constraint sets. Cancellation via ctx
// returns the best sample drawn so far.
func RandomSearch(ctx context.Context, obj Objective, opt Options) Result {
	opt = opt.withDefaults()
	rng := rand.New(rand.NewSource(opt.Seed))
	shape := obj.Shape()

	best := project(opt.Project, ZeroPhases(shape))
	bestLoss, _ := obj.Eval(best, false)
	history := []float64{bestLoss}
	stopped := false
	evals := 1

	cand := ZeroPhases(shape)
	it := 0
	for ; it < opt.MaxIters; it++ {
		if canceled(ctx) {
			stopped = true
			break
		}
		for s := range cand {
			for k := range cand[s] {
				cand[s][k] = rng.Float64() * 2 * math.Pi
			}
		}
		c := project(opt.Project, cand)
		l, _ := obj.Eval(c, false)
		evals++
		if l < bestLoss {
			bestLoss = l
			// Keep the winner and recycle the displaced buffer as the next
			// sample's scratch (a projector may have returned a fresh slice,
			// in which case cand is reused as-is).
			best, cand = c, best
			history = append(history, l)
		}
	}
	return Result{Phases: best, Loss: bestLoss, Iterations: it, Evals: evals, Stopped: stopped, History: history}
}

// nonEmptySurfaces lists the surfaces that have at least one element.
func nonEmptySurfaces(phases [][]float64) []int {
	out := make([]int, 0, len(phases))
	for s := range phases {
		if len(phases[s]) > 0 {
			out = append(out, s)
		}
	}
	return out
}

// annealDraw is one iteration's pre-drawn randomness: target element,
// phase offset, and acceptance variate.
type annealDraw struct {
	s, k int
	off  float64
	u    float64
}

// annealDraws pre-draws the full proposal stream — four values per
// iteration (surface, element, offset, acceptance) regardless of outcome —
// so the RNG stream never depends on acceptance decisions. This is what
// lets parallel batches speculate on future proposals and discard them
// without perturbing the sequence: a discarded proposal is re-priced
// against the new state with the *same* draw.
func annealDraws(rng *rand.Rand, surfs []int, cur [][]float64, n int) []annealDraw {
	draws := make([]annealDraw, n)
	for i := range draws {
		s := surfs[rng.Intn(len(surfs))]
		draws[i] = annealDraw{
			s:   s,
			k:   rng.Intn(len(cur[s])),
			off: (rng.Float64() - 0.5) * math.Pi,
			u:   rng.Float64(),
		}
	}
	return draws
}

// annealTemp is the cooling schedule at global iteration it.
func annealTemp(t0 float64, it, maxIters int) float64 {
	return t0 * math.Exp(-4*float64(it)/float64(maxIters))
}

// Anneal runs simulated annealing with single-element perturbations —
// effective for coarse quantized hardware (1-bit surfaces) where gradients
// mislead. Cancellation via ctx returns the best state reached so far.
//
// When the objective implements DeltaObjective and no projector is set,
// each proposal is priced as a single-element delta (O(#channels) instead
// of a full recompute); a projector forces the full path because it may
// move every element. Surfaces with zero elements are never sampled; if
// every surface is empty there is nothing to perturb and the run returns
// immediately with the evaluated initial state and zero iterations.
//
// Proposal randomness is drawn up front, four variates per iteration
// whether or not the proposal is accepted, so the stream is independent of
// acceptance outcomes; with Options.Engine set, proposals are priced
// speculatively on per-worker session clones and reduced in iteration
// order, which reproduces the serial trajectory bit-for-bit.
func Anneal(ctx context.Context, obj Objective, init [][]float64, opt Options) Result {
	opt = opt.withDefaults()
	rng := rand.New(rand.NewSource(opt.Seed))

	cur := project(opt.Project, ClonePhases(init))

	var ev DeltaEvaluator
	if opt.Project == nil {
		ev = deltaSession(obj, cur)
	}
	var curLoss float64
	if ev != nil {
		curLoss = ev.Loss()
	} else {
		curLoss, _ = obj.Eval(cur, false)
	}
	evals := 1
	best := ClonePhases(cur)
	bestLoss := curLoss
	history := []float64{curLoss}

	surfs := nonEmptySurfaces(cur)
	if len(surfs) == 0 {
		return Result{Phases: best, Loss: bestLoss, Iterations: 0, Evals: evals, History: history}
	}
	stopped := false

	t0 := math.Abs(curLoss)*0.1 + 1e-3
	draws := annealDraws(rng, surfs, cur, opt.MaxIters)

	if sc := acquireScope(opt); sc != nil {
		res, ok := annealParallel(ctx, obj, cur, ev, draws, curLoss, t0, opt, sc)
		sc.Release()
		if ok {
			return res
		}
	}

	it := 0
	for ; it < opt.MaxIters; it++ {
		if canceled(ctx) {
			stopped = true
			break
		}
		temp := annealTemp(t0, it, opt.MaxIters)
		d := draws[it]
		newPhase := cur[d.s][d.k] + d.off

		if ev != nil {
			l := ev.TryDelta(d.s, d.k, newPhase)
			evals++
			if l < curLoss || d.u < math.Exp((curLoss-l)/temp) {
				ev.Commit()
				cur[d.s][d.k] = newPhase
				curLoss = l
				if l < bestLoss {
					copyPhases(best, cur)
					bestLoss = l
					history = append(history, l)
				}
			} else {
				ev.Revert()
			}
			continue
		}

		cand := ClonePhases(cur)
		cand[d.s][d.k] = newPhase
		cand = project(opt.Project, cand)
		l, _ := obj.Eval(cand, false)
		evals++
		if l < curLoss || d.u < math.Exp((curLoss-l)/temp) {
			cur, curLoss = cand, l
			if l < bestLoss {
				best, bestLoss = ClonePhases(cand), l
				history = append(history, l)
			}
		}
	}
	return Result{Phases: best, Loss: bestLoss, Iterations: it, Evals: evals, Stopped: stopped, History: history}
}

// CoordinateDescent cycles through elements, line-searching each phase over
// a fixed grid of candidate values while holding the rest. With a 2-state
// grid this is the classic greedy 1-bit RIS tuning algorithm. Cancellation
// via ctx stops between element updates and returns the current state.
//
// When the objective implements DeltaObjective, each candidate is priced as
// a single-element delta against the committed state, making a sweep O(N)
// in the element count instead of O(N²); otherwise every candidate costs a
// full Eval. The two paths search the identical candidate sequence. The
// projector (applied to the initial point and the final result, never
// inside a sweep — candidate grids are feasible by construction) does not
// affect path selection.
//
// With Options.Engine set, candidate batches are priced concurrently on
// per-worker evaluator clones (or per-worker objective clones on the
// full-Eval path) and reduced serially in element and candidate order:
// lowest loss wins, ties broken by lowest candidate index — exactly the
// serial comparison sequence, so the parallel trajectory, Result.Evals,
// and the returned phases are bit-identical to a serial run.
//
// Result.Iterations reports completed sweeps; Result.Evals reports
// objective evaluations.
func CoordinateDescent(ctx context.Context, obj Objective, init [][]float64, candidates []float64, opt Options) Result {
	opt = opt.withDefaults()
	if len(candidates) == 0 {
		candidates = []float64{0, math.Pi / 2, math.Pi, 3 * math.Pi / 2}
	}
	cur := project(opt.Project, ClonePhases(init))

	ev := deltaSession(obj, cur)
	if sc := acquireScope(opt); sc != nil {
		res, ok := cdParallel(ctx, obj, cur, candidates, opt, sc, ev)
		sc.Release()
		if ok {
			return res
		}
	}
	var curLoss float64
	if ev != nil {
		curLoss = ev.Loss()
	} else {
		curLoss, _ = obj.Eval(cur, false)
	}
	evals := 1
	history := []float64{curLoss}
	stopped := false

	sweeps := 0
sweeps:
	for sweep := 0; sweep < opt.MaxIters; sweep++ {
		improved := false
		for s := range cur {
			for k := range cur[s] {
				if canceled(ctx) {
					stopped = true
					break sweeps
				}
				orig := cur[s][k]
				bestV, bestL := orig, curLoss
				for _, c := range candidates {
					if c == orig {
						continue
					}
					var l float64
					if ev != nil {
						l = ev.TryDelta(s, k, c)
					} else {
						cur[s][k] = c
						l, _ = obj.Eval(cur, false)
					}
					evals++
					if l < bestL {
						bestV, bestL = c, l
					}
				}
				cur[s][k] = bestV
				if ev != nil {
					if bestV != orig {
						// Re-price the winning candidate so it becomes the
						// pending trial, then commit it.
						ev.TryDelta(s, k, bestV)
						evals++
						ev.Commit()
					} else {
						ev.Revert()
					}
				}
				if bestL < curLoss {
					curLoss = bestL
					improved = true
				}
			}
		}
		sweeps++
		history = append(history, curLoss)
		if !improved {
			break
		}
	}
	cur = project(opt.Project, cur)
	finalLoss, _ := obj.Eval(cur, false)
	evals++
	return Result{Phases: cur, Loss: finalLoss, Iterations: sweeps, Evals: evals, Stopped: stopped, History: history}
}
