package optimize

import (
	"context"
	"math"
	"math/rand"
)

// Projector maps a phase set onto the feasible set of the hardware
// (quantized states, column-wise sharing, …). It must be idempotent.
// Drivers provide projectors from their specs.
type Projector func([][]float64) [][]float64

// Options tunes an optimization run. Zero or negative values select sane
// defaults, so a partially filled Options can never produce an infinite
// (MaxIters ≤ 0 with no other stop) or diverging (LR ≤ 0) loop.
//
// Seed seeds the stochastic methods' RNG. Seed 0 is a fixed deterministic
// seed like any other value — runs are never time-seeded, so repeated
// invocations with identical inputs produce identical results.
type Options struct {
	MaxIters  int     // default 200; values ≤ 0 use the default
	LR        float64 // Adam learning rate (radians), default 0.3; ≤ 0 uses the default
	Tolerance float64 // stop when |Δloss| < Tolerance for 10 iters, default 1e-9; ≤ 0 uses the default
	Seed      int64   // RNG seed for stochastic methods; 0 is deterministic, not time-seeded
	Project   Projector
}

func (o Options) withDefaults() Options {
	if o.MaxIters <= 0 {
		o.MaxIters = 200
	}
	if o.LR <= 0 {
		o.LR = 0.3
	}
	if o.Tolerance <= 0 {
		o.Tolerance = 1e-9
	}
	return o
}

// Result is the outcome of an optimization run.
type Result struct {
	Phases     [][]float64
	Loss       float64
	Iterations int
	// Stopped is true when the run ended early because its context was
	// canceled or its deadline expired. Phases/Loss still hold the best
	// feasible candidate found up to that point.
	Stopped bool
	// History records the loss after each iteration (gradient methods) or
	// each improvement (stochastic methods).
	History []float64
}

func project(p Projector, phases [][]float64) [][]float64 {
	if p == nil {
		return phases
	}
	return p(phases)
}

// canceled tolerates nil contexts so internal callers can pass the zero
// value without crashing.
func canceled(ctx context.Context) bool {
	return ctx != nil && ctx.Err() != nil
}

// Adam minimizes the objective with the Adam gradient method starting at
// init. The paper's prototype uses gradient descent for the orchestrator's
// optimizer; Adam is the standard robust variant. The projector, when set,
// is applied after every step (projected gradient descent) and to the
// returned phases.
//
// The context is checked once per iteration: cancellation or deadline
// expiry stops the loop and returns the best-so-far feasible result with
// Stopped set and Iterations < MaxIters.
func Adam(ctx context.Context, obj Objective, init [][]float64, opt Options) Result {
	opt = opt.withDefaults()
	phases := project(opt.Project, ClonePhases(init))

	m := ZeroPhases(obj.Shape())
	v := ZeroPhases(obj.Shape())
	const beta1, beta2, eps = 0.9, 0.999, 1e-8

	best := ClonePhases(phases)
	bestLoss := math.Inf(1)
	var history []float64
	flat := 0
	prev := math.Inf(1)
	stopped := false

	var it int
	for it = 1; it <= opt.MaxIters; it++ {
		if canceled(ctx) {
			stopped = true
			it-- // this iteration did not run
			break
		}
		loss, grad := obj.Eval(phases, true)
		if loss < bestLoss {
			bestLoss = loss
			best = ClonePhases(phases)
		}
		history = append(history, loss)

		if math.Abs(prev-loss) < opt.Tolerance {
			flat++
			if flat >= 10 {
				break
			}
		} else {
			flat = 0
		}
		prev = loss

		b1t := 1 - math.Pow(beta1, float64(it))
		b2t := 1 - math.Pow(beta2, float64(it))
		for s := range phases {
			for k := range phases[s] {
				g := grad[s][k]
				m[s][k] = beta1*m[s][k] + (1-beta1)*g
				v[s][k] = beta2*v[s][k] + (1-beta2)*g*g
				mh := m[s][k] / b1t
				vh := v[s][k] / b2t
				phases[s][k] -= opt.LR * mh / (math.Sqrt(vh) + eps)
			}
		}
		phases = project(opt.Project, phases)
	}
	if it > opt.MaxIters {
		it = opt.MaxIters
	}

	// Re-evaluate the best candidate after projection so the reported loss
	// matches the returned feasible phases.
	best = project(opt.Project, best)
	finalLoss, _ := obj.Eval(best, false)
	return Result{Phases: best, Loss: finalLoss, Iterations: it, Stopped: stopped, History: history}
}

// RandomSearch samples uniformly random feasible phase sets and keeps the
// best — the baseline every gradient method must beat, and the only method
// available for non-differentiable constraint sets. Cancellation via ctx
// returns the best sample drawn so far.
func RandomSearch(ctx context.Context, obj Objective, opt Options) Result {
	opt = opt.withDefaults()
	rng := rand.New(rand.NewSource(opt.Seed))
	shape := obj.Shape()

	best := project(opt.Project, ZeroPhases(shape))
	bestLoss, _ := obj.Eval(best, false)
	history := []float64{bestLoss}
	stopped := false

	it := 0
	for ; it < opt.MaxIters; it++ {
		if canceled(ctx) {
			stopped = true
			break
		}
		cand := ZeroPhases(shape)
		for s := range cand {
			for k := range cand[s] {
				cand[s][k] = rng.Float64() * 2 * math.Pi
			}
		}
		cand = project(opt.Project, cand)
		l, _ := obj.Eval(cand, false)
		if l < bestLoss {
			bestLoss = l
			best = cand
			history = append(history, l)
		}
	}
	return Result{Phases: best, Loss: bestLoss, Iterations: it, Stopped: stopped, History: history}
}

// Anneal runs simulated annealing with single-element perturbations —
// effective for coarse quantized hardware (1-bit surfaces) where gradients
// mislead. Cancellation via ctx returns the best state reached so far.
func Anneal(ctx context.Context, obj Objective, init [][]float64, opt Options) Result {
	opt = opt.withDefaults()
	rng := rand.New(rand.NewSource(opt.Seed))

	cur := project(opt.Project, ClonePhases(init))
	curLoss, _ := obj.Eval(cur, false)
	best := ClonePhases(cur)
	bestLoss := curLoss
	history := []float64{curLoss}
	stopped := false

	t0 := math.Abs(curLoss)*0.1 + 1e-3
	it := 0
	for ; it < opt.MaxIters; it++ {
		if canceled(ctx) {
			stopped = true
			break
		}
		temp := t0 * math.Exp(-4*float64(it)/float64(opt.MaxIters))
		cand := ClonePhases(cur)
		// Perturb a random element by a random phase offset.
		s := rng.Intn(len(cand))
		if len(cand[s]) == 0 {
			continue
		}
		k := rng.Intn(len(cand[s]))
		cand[s][k] += (rng.Float64() - 0.5) * math.Pi
		cand = project(opt.Project, cand)
		l, _ := obj.Eval(cand, false)
		if l < curLoss || rng.Float64() < math.Exp((curLoss-l)/temp) {
			cur, curLoss = cand, l
			if l < bestLoss {
				best, bestLoss = ClonePhases(cand), l
				history = append(history, l)
			}
		}
	}
	return Result{Phases: best, Loss: bestLoss, Iterations: it, Stopped: stopped, History: history}
}

// CoordinateDescent cycles through elements, line-searching each phase over
// a fixed grid of candidate values while holding the rest. With a 2-state
// grid this is the classic greedy 1-bit RIS tuning algorithm. Cancellation
// via ctx stops between element updates and returns the current state.
func CoordinateDescent(ctx context.Context, obj Objective, init [][]float64, candidates []float64, opt Options) Result {
	opt = opt.withDefaults()
	if len(candidates) == 0 {
		candidates = []float64{0, math.Pi / 2, math.Pi, 3 * math.Pi / 2}
	}
	cur := project(opt.Project, ClonePhases(init))
	curLoss, _ := obj.Eval(cur, false)
	history := []float64{curLoss}
	stopped := false

	evals := 0
sweeps:
	for sweep := 0; sweep < opt.MaxIters; sweep++ {
		improved := false
		for s := range cur {
			for k := range cur[s] {
				if canceled(ctx) {
					stopped = true
					break sweeps
				}
				bestV, bestL := cur[s][k], curLoss
				orig := cur[s][k]
				for _, c := range candidates {
					if c == orig {
						continue
					}
					cur[s][k] = c
					l, _ := obj.Eval(cur, false)
					evals++
					if l < bestL {
						bestV, bestL = c, l
					}
				}
				cur[s][k] = bestV
				if bestL < curLoss {
					curLoss = bestL
					improved = true
				}
			}
		}
		history = append(history, curLoss)
		if !improved {
			break
		}
	}
	cur = project(opt.Project, cur)
	finalLoss, _ := obj.Eval(cur, false)
	return Result{Phases: cur, Loss: finalLoss, Iterations: evals, Stopped: stopped, History: history}
}
