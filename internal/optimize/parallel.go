// Parallel sweep scheduling for the derivative-free optimizers.
//
// The design goal is bit-for-bit equivalence with the serial loops, not
// merely numerical closeness. Three mechanisms make that possible:
//
//   - Per-worker session clones (ParallelDeltaEvaluator.Clone /
//     ParallelObjective.CloneForWorker): every worker owns all of its
//     cached state, so pricing never shares memory and never locks.
//   - Speculative blocks: candidates for a run of upcoming elements are
//     priced concurrently against the committed state at block start. The
//     serial reduction walks the block in element order; the first commit
//     invalidates the rest of the block, which is discarded (counted in
//     Result.WastedEvals) and re-priced against the new state. Work that
//     survives is exactly the work the serial loop would have done, with
//     identical inputs — and identical floating-point outputs, because no
//     sum is reassociated anywhere.
//   - A shared move log: instead of re-cloning after every commit, each
//     clone lazily replays the committed moves it has not yet seen before
//     pricing its next batch. Replaying a move costs the same as one delta
//     evaluation, and the clone invariant (identical TryDelta/Commit
//     sequence ⇒ identical state) keeps clones bit-equal to the primary.
package optimize

import (
	"context"
	"math"

	"surfos/internal/engine"
)

// acquireScope borrows workers from the configured pool, or returns nil
// when the run must be serial (no pool, Workers==1, or no spare workers
// right now). The caller releases the scope.
func acquireScope(opt Options) *engine.Scope {
	if opt.Engine == nil || opt.Workers == 1 {
		return nil
	}
	sc := opt.Engine.Acquire(opt.Workers)
	if sc.Workers() <= 1 {
		sc.Release()
		return nil
	}
	return sc
}

// move is one committed single-element change, the unit of the shared
// move log that keeps worker clones synchronized with the primary session.
type move struct {
	s, k  int
	phase float64
}

// workerClones holds one delta-session clone per worker slot plus the
// shared move log. The log is appended only between fan-outs (during the
// serial reduction) and each slot's cursor is touched only by the
// goroutine occupying that slot, so no locking is needed.
type workerClones struct {
	clones []DeltaEvaluator
	cursor []int
	log    []move
}

// newWorkerClones clones the primary once per slot; nil when the session
// is not cloneable all the way down.
func newWorkerClones(primary ParallelDeltaEvaluator, n int) *workerClones {
	w := &workerClones{clones: make([]DeltaEvaluator, n), cursor: make([]int, n)}
	for i := range w.clones {
		c := primary.Clone()
		if c == nil {
			return nil
		}
		w.clones[i] = c
	}
	return w
}

// committed records a move applied to the primary session.
func (w *workerClones) committed(m move) { w.log = append(w.log, m) }

// at returns slot's clone, first replaying any committed moves the clone
// has not seen yet.
func (w *workerClones) at(slot int) DeltaEvaluator {
	c := w.clones[slot]
	for w.cursor[slot] < len(w.log) {
		m := w.log[w.cursor[slot]]
		c.TryDelta(m.s, m.k, m.phase)
		c.Commit()
		w.cursor[slot]++
	}
	return c
}

// elemRef is one element in sweep order.
type elemRef struct{ s, k int }

// flattenElems lists every element of every surface in sweep order.
func flattenElems(shape [][]float64) []elemRef {
	var out []elemRef
	for s := range shape {
		for k := range shape[s] {
			out = append(out, elemRef{s, k})
		}
	}
	return out
}

// cdItem is one speculative (element, candidate) pricing within a block.
type cdItem struct {
	e    int     // element index within the block
	cand float64 // candidate phase value
	loss float64 // filled by the worker
}

// cdParallel runs the parallel coordinate-descent loop. It reports ok=false
// — before touching cur or the session — when the objective does not
// support cloning, in which case the caller falls back to the serial loop.
func cdParallel(ctx context.Context, obj Objective, cur [][]float64, candidates []float64, opt Options, sc *engine.Scope, ev DeltaEvaluator) (Result, bool) {
	if ev != nil {
		pev, ok := ev.(ParallelDeltaEvaluator)
		if !ok {
			return Result{}, false
		}
		wc := newWorkerClones(pev, sc.Workers())
		if wc == nil {
			return Result{}, false
		}
		return cdParallelDelta(ctx, obj, cur, candidates, opt, sc, ev, pev, wc), true
	}
	objs := cloneObjectives(obj, sc.Workers())
	if objs == nil {
		return Result{}, false
	}
	return cdParallelFull(ctx, obj, objs, cur, candidates, opt, sc), true
}

// cdParallelDelta is the delta-session variant: candidates are priced on
// clones, the winning move is re-priced and committed on the primary
// session (one counted eval, exactly like the serial loop's re-price).
func cdParallelDelta(ctx context.Context, obj Objective, cur [][]float64, candidates []float64, opt Options, sc *engine.Scope, ev DeltaEvaluator, pev ParallelDeltaEvaluator, wc *workerClones) Result {
	curLoss := ev.Loss()
	evals, wasted := 1, 0
	history := []float64{curLoss}
	stopped := false

	elems := flattenElems(cur)
	// Independent elements commit rarely relative to block size early on
	// and their replay cost is minimal, so speculate deeper; coupled
	// sessions keep blocks at pool width.
	blockElems := sc.Workers()
	if pev.IndependentElements() {
		blockElems *= 4
	}
	var items []cdItem
	var starts []int

	sweeps := 0
sweeps:
	for sweep := 0; sweep < opt.MaxIters; sweep++ {
		improved := false
		pos := 0
		for pos < len(elems) {
			if canceled(ctx) {
				stopped = true
				break sweeps
			}
			n := min(blockElems, len(elems)-pos)
			block := elems[pos : pos+n]
			items, starts = buildBlock(block, cur, candidates, items, starts)
			if err := sc.ForEach(ctx, len(items), func(slot, i int) {
				cl := wc.at(slot)
				it := &items[i]
				ref := block[it.e]
				it.loss = cl.TryDelta(ref.s, ref.k, it.cand)
				cl.Revert()
			}); err != nil {
				stopped = true
				break sweeps
			}
			consumed := n
			for e := 0; e < n; e++ {
				ref := block[e]
				orig := cur[ref.s][ref.k]
				bestV, bestL := orig, curLoss
				for i := starts[e]; i < starts[e+1]; i++ {
					if items[i].loss < bestL {
						bestV, bestL = items[i].cand, items[i].loss
					}
				}
				evals += starts[e+1] - starts[e]
				if bestV != orig {
					// Re-price the winner so it becomes the primary's
					// pending trial, then commit. The re-price is a counted
					// eval exactly as in the serial loop; everything priced
					// beyond this element is now stale and discarded.
					ev.TryDelta(ref.s, ref.k, bestV)
					evals++
					ev.Commit()
					wc.committed(move{ref.s, ref.k, bestV})
					cur[ref.s][ref.k] = bestV
					curLoss = bestL
					improved = true
					consumed = e + 1
					wasted += starts[n] - starts[e+1]
					break
				}
			}
			pos += consumed
		}
		sweeps++
		history = append(history, curLoss)
		if !improved {
			break
		}
	}
	cur = project(opt.Project, cur)
	finalLoss, _ := obj.Eval(cur, false)
	evals++
	return Result{Phases: cur, Loss: finalLoss, Iterations: sweeps, Evals: evals, WastedEvals: wasted, Stopped: stopped, History: history}
}

// buildBlock lays out the speculative items for a block: per element, one
// item per candidate that differs from the element's current value, in
// candidate order. starts[e]..starts[e+1] index element e's items.
func buildBlock(block []elemRef, cur [][]float64, candidates []float64, items []cdItem, starts []int) ([]cdItem, []int) {
	items, starts = items[:0], starts[:0]
	for e, ref := range block {
		starts = append(starts, len(items))
		orig := cur[ref.s][ref.k]
		for _, c := range candidates {
			if c == orig {
				continue
			}
			items = append(items, cdItem{e: e, cand: c})
		}
	}
	starts = append(starts, len(items))
	return items, starts
}

// cloneObjectives builds one objective clone per worker slot, or nil when
// the objective is not cloneable.
func cloneObjectives(obj Objective, n int) []Objective {
	po, ok := obj.(ParallelObjective)
	if !ok {
		return nil
	}
	objs := make([]Objective, n)
	for i := range objs {
		if objs[i] = po.CloneForWorker(); objs[i] == nil {
			return nil
		}
	}
	return objs
}

// workerPhases lends each worker slot a private phase buffer kept in sync
// with the committed phases by an epoch counter: the owner bumps the epoch
// after every commit, and a stale buffer re-copies before its next use.
type workerPhases struct {
	cur   [][]float64
	bufs  [][][]float64
	epoch []int
	cur1  int
}

func newWorkerPhases(cur [][]float64, n int) *workerPhases {
	return &workerPhases{cur: cur, bufs: make([][][]float64, n), epoch: make([]int, n), cur1: 1}
}

// invalidate marks every worker buffer stale after a commit to cur.
func (w *workerPhases) invalidate() { w.cur1++ }

// at returns slot's buffer synced to the committed phases.
func (w *workerPhases) at(slot int) [][]float64 {
	if w.bufs[slot] == nil {
		w.bufs[slot] = ClonePhases(w.cur)
		w.epoch[slot] = w.cur1
	} else if w.epoch[slot] != w.cur1 {
		copyPhases(w.bufs[slot], w.cur)
		w.epoch[slot] = w.cur1
	}
	return w.bufs[slot]
}

// cdParallelFull is the full-Eval variant for objectives without delta
// support: each worker owns an objective clone (its own scratch — the
// per-worker replacement for the old single-scratch contract) and a phase
// buffer. The serial fallback performs no re-price on commit, so neither
// does this path.
func cdParallelFull(ctx context.Context, obj Objective, objs []Objective, cur [][]float64, candidates []float64, opt Options, sc *engine.Scope) Result {
	curLoss, _ := obj.Eval(cur, false)
	evals, wasted := 1, 0
	history := []float64{curLoss}
	stopped := false

	elems := flattenElems(cur)
	wp := newWorkerPhases(cur, sc.Workers())
	blockElems := sc.Workers()
	var items []cdItem
	var starts []int

	sweeps := 0
sweeps:
	for sweep := 0; sweep < opt.MaxIters; sweep++ {
		improved := false
		pos := 0
		for pos < len(elems) {
			if canceled(ctx) {
				stopped = true
				break sweeps
			}
			n := min(blockElems, len(elems)-pos)
			block := elems[pos : pos+n]
			items, starts = buildBlock(block, cur, candidates, items, starts)
			if err := sc.ForEach(ctx, len(items), func(slot, i int) {
				buf := wp.at(slot)
				it := &items[i]
				ref := block[it.e]
				orig := buf[ref.s][ref.k]
				buf[ref.s][ref.k] = it.cand
				it.loss, _ = objs[slot].Eval(buf, false)
				buf[ref.s][ref.k] = orig
			}); err != nil {
				stopped = true
				break sweeps
			}
			consumed := n
			for e := 0; e < n; e++ {
				ref := block[e]
				orig := cur[ref.s][ref.k]
				bestV, bestL := orig, curLoss
				for i := starts[e]; i < starts[e+1]; i++ {
					if items[i].loss < bestL {
						bestV, bestL = items[i].cand, items[i].loss
					}
				}
				evals += starts[e+1] - starts[e]
				if bestV != orig {
					cur[ref.s][ref.k] = bestV
					wp.invalidate()
					curLoss = bestL
					improved = true
					consumed = e + 1
					wasted += starts[n] - starts[e+1]
					break
				}
			}
			pos += consumed
		}
		sweeps++
		history = append(history, curLoss)
		if !improved {
			break
		}
	}
	cur = project(opt.Project, cur)
	finalLoss, _ := obj.Eval(cur, false)
	evals++
	return Result{Phases: cur, Loss: finalLoss, Iterations: sweeps, Evals: evals, WastedEvals: wasted, Stopped: stopped, History: history}
}

// annealProp is one speculative proposal within an annealing batch.
type annealProp struct {
	newPhase float64
	loss     float64
	cand     [][]float64 // full-Eval path only: the projected candidate
}

// annealParallel prices proposal batches speculatively: the batch assumes
// every earlier proposal in it is rejected, and the serial reduction —
// which replays the pre-drawn acceptance variates in iteration order —
// discards everything after the first acceptance. Discarded proposals are
// re-priced in the next batch against the new state with their original
// draws, so the trajectory is exactly the serial one. Reports ok=false
// before touching any state when the session/objective is not cloneable.
func annealParallel(ctx context.Context, obj Objective, cur [][]float64, ev DeltaEvaluator, draws []annealDraw, curLoss, t0 float64, opt Options, sc *engine.Scope) (Result, bool) {
	var wc *workerClones
	var objs []Objective
	if ev != nil {
		pev, ok := ev.(ParallelDeltaEvaluator)
		if !ok {
			return Result{}, false
		}
		if wc = newWorkerClones(pev, sc.Workers()); wc == nil {
			return Result{}, false
		}
	} else if objs = cloneObjectives(obj, sc.Workers()); objs == nil {
		return Result{}, false
	}

	evals, wasted := 1, 0
	best := ClonePhases(cur)
	bestLoss := curLoss
	history := []float64{curLoss}
	stopped := false

	batchN := sc.Workers()
	props := make([]annealProp, batchN)

	it := 0
	for it < opt.MaxIters {
		if canceled(ctx) {
			stopped = true
			break
		}
		n := min(batchN, opt.MaxIters-it)
		for j := 0; j < n; j++ {
			d := draws[it+j]
			props[j] = annealProp{newPhase: cur[d.s][d.k] + d.off}
		}
		var err error
		if wc != nil {
			err = sc.ForEach(ctx, n, func(slot, j int) {
				cl := wc.at(slot)
				d := draws[it+j]
				props[j].loss = cl.TryDelta(d.s, d.k, props[j].newPhase)
				cl.Revert()
			})
		} else {
			// cur is only written between fan-outs, so workers may read it
			// directly; each proposal builds its own candidate exactly as
			// the serial loop does (clone, perturb, project, evaluate).
			err = sc.ForEach(ctx, n, func(slot, j int) {
				d := draws[it+j]
				cand := ClonePhases(cur)
				cand[d.s][d.k] = props[j].newPhase
				cand = project(opt.Project, cand)
				props[j].loss, _ = objs[slot].Eval(cand, false)
				props[j].cand = cand
			})
		}
		if err != nil {
			stopped = true
			break
		}
		consumed := n
		for j := 0; j < n; j++ {
			d := draws[it+j]
			temp := annealTemp(t0, it+j, opt.MaxIters)
			l := props[j].loss
			evals++
			if l < curLoss || d.u < math.Exp((curLoss-l)/temp) {
				if wc != nil {
					// Apply the accepted move to the primary session. This
					// re-prices the same candidate the clone already priced,
					// so it is not a counted eval.
					ev.TryDelta(d.s, d.k, props[j].newPhase)
					ev.Commit()
					wc.committed(move{d.s, d.k, props[j].newPhase})
					cur[d.s][d.k] = props[j].newPhase
				} else {
					cur = props[j].cand
				}
				curLoss = l
				if l < bestLoss {
					copyPhases(best, cur)
					bestLoss = l
					history = append(history, l)
				}
				consumed = j + 1
				wasted += n - consumed
				break
			}
		}
		it += consumed
	}
	return Result{Phases: best, Loss: bestLoss, Iterations: it, Evals: evals, WastedEvals: wasted, Stopped: stopped, History: history}, true
}
