package optimize

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"testing"

	"surfos/internal/engine"
	"surfos/internal/rfsim"
)

// opaqueCloneable hides delta support (forcing the full-Eval path) while
// keeping per-worker cloneability, so the parallel fallback is reachable.
type opaqueCloneable struct{ inner ParallelObjective }

func (o opaqueCloneable) Shape() []int { return o.inner.Shape() }
func (o opaqueCloneable) Eval(p [][]float64, g bool) (float64, [][]float64) {
	return o.inner.Eval(p, g)
}
func (o opaqueCloneable) CloneForWorker() Objective { return o.inner.CloneForWorker() }

// parityObjectives builds one instance of every delta-capable objective
// kind over the same element shape, mixing cross-coupled and single-bounce
// channels so both speculation block sizes are exercised.
func parityObjectives(t *testing.T, r *rand.Rand, shape []int) map[string]DeltaObjective {
	t.Helper()
	cover, err := NewCoverageObjective([]*rfsim.Channel{
		randChannel(r, shape, true),
		randChannel(r, shape, false),
	}, testBudget())
	if err != nil {
		t.Fatal(err)
	}
	coverInd, err := NewCoverageObjective([]*rfsim.Channel{
		randChannel(r, shape, false),
		randChannel(r, shape, false),
	}, testBudget())
	if err != nil {
		t.Fatal(err)
	}
	power, err := NewPowerObjective([]*rfsim.Channel{
		randChannel(r, shape, false),
		randChannel(r, shape, true),
	})
	if err != nil {
		t.Fatal(err)
	}
	sec, err := NewSecurityObjective(randChannel(r, shape, true), randChannel(r, shape, true), 0.5, testBudget())
	if err != nil {
		t.Fatal(err)
	}
	ws, err := NewWeightedSum([]Objective{cover, power, sec}, []float64{1, 0.7, 1.3})
	if err != nil {
		t.Fatal(err)
	}
	return map[string]DeltaObjective{
		"coverage":             cover,
		"coverage-independent": coverInd,
		"power":                power,
		"security":             sec,
		"weighted-sum":         ws,
	}
}

// requireIdentical asserts two results are bit-for-bit equal — not merely
// within tolerance. Parallel sweeps never reassociate a floating-point sum,
// so anything short of exact equality is a scheduling bug.
func requireIdentical(t *testing.T, serial, par Result) {
	t.Helper()
	if par.Loss != serial.Loss {
		t.Errorf("Loss: serial %.17g, parallel %.17g", serial.Loss, par.Loss)
	}
	if par.Iterations != serial.Iterations {
		t.Errorf("Iterations: serial %d, parallel %d", serial.Iterations, par.Iterations)
	}
	if par.Evals != serial.Evals {
		t.Errorf("Evals: serial %d, parallel %d (speculative work must not be counted)", serial.Evals, par.Evals)
	}
	if serial.WastedEvals != 0 {
		t.Errorf("serial run reported %d wasted evals", serial.WastedEvals)
	}
	for s := range serial.Phases {
		for k := range serial.Phases[s] {
			if par.Phases[s][k] != serial.Phases[s][k] {
				t.Fatalf("phases diverge at s=%d k=%d: serial %.17g, parallel %.17g",
					s, k, serial.Phases[s][k], par.Phases[s][k])
			}
		}
	}
	if len(par.History) != len(serial.History) {
		t.Fatalf("history length: serial %d, parallel %d", len(serial.History), len(par.History))
	}
	for i := range serial.History {
		if par.History[i] != serial.History[i] {
			t.Errorf("history[%d]: serial %.17g, parallel %.17g", i, serial.History[i], par.History[i])
		}
	}
}

// TestParallelCoordinateDescentParity: the parallel delta sweep reproduces
// the serial trajectory bit-for-bit on every objective kind, at several
// pool widths.
func TestParallelCoordinateDescentParity(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	shape := []int{6, 5}
	objs := parityObjectives(t, r, shape)
	init := randPhases(r, shape)
	ctx := context.Background()

	for name, obj := range objs {
		t.Run(name, func(t *testing.T) {
			serial := CoordinateDescent(ctx, obj, init, nil, Options{MaxIters: 6})
			for _, w := range []int{2, 4, 8} {
				eng := engine.New(engine.Options{Workers: w})
				par := CoordinateDescent(ctx, obj, init, nil, Options{MaxIters: 6, Engine: eng, Workers: w})
				requireIdentical(t, serial, par)
			}
		})
	}
}

// TestParallelAnnealParity: same guarantee for annealing — the pre-drawn
// proposal stream plus discard-on-accept speculation reproduces the serial
// chain exactly.
func TestParallelAnnealParity(t *testing.T) {
	r := rand.New(rand.NewSource(37))
	shape := []int{6, 5}
	objs := parityObjectives(t, r, shape)
	init := randPhases(r, shape)
	ctx := context.Background()

	for name, obj := range objs {
		t.Run(name, func(t *testing.T) {
			for _, seed := range []int64{1, 9} {
				serial := Anneal(ctx, obj, init, Options{MaxIters: 150, Seed: seed})
				for _, w := range []int{2, 4, 8} {
					eng := engine.New(engine.Options{Workers: w})
					par := Anneal(ctx, obj, init, Options{MaxIters: 150, Seed: seed, Engine: eng, Workers: w})
					requireIdentical(t, serial, par)
				}
			}
		})
	}
}

// TestParallelFullEvalFallbackParity drives the per-worker-objective path
// (delta support hidden, cloneability kept) for both optimizers, plus
// projected annealing where the projector forces the full path.
func TestParallelFullEvalFallbackParity(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	shape := []int{5, 4}
	obj, err := NewCoverageObjective([]*rfsim.Channel{
		randChannel(r, shape, true),
		randChannel(r, shape, false),
	}, testBudget())
	if err != nil {
		t.Fatal(err)
	}
	opaque := opaqueCloneable{inner: obj}
	init := randPhases(r, shape)
	ctx := context.Background()

	quantize := func(p [][]float64) [][]float64 {
		out := make([][]float64, len(p))
		for i, v := range p {
			q := make([]float64, len(v))
			for k, x := range v {
				q[k] = math.Round(x/(math.Pi/2)) * (math.Pi / 2)
			}
			out[i] = q
		}
		return out
	}

	serialCD := CoordinateDescent(ctx, opaque, init, nil, Options{MaxIters: 4})
	serialAn := Anneal(ctx, opaque, init, Options{MaxIters: 100, Seed: 3})
	serialProj := Anneal(ctx, obj, init, Options{MaxIters: 60, Seed: 3, Project: quantize})
	for _, w := range []int{2, 4} {
		eng := engine.New(engine.Options{Workers: w})
		parCD := CoordinateDescent(ctx, opaque, init, nil, Options{MaxIters: 4, Engine: eng, Workers: w})
		requireIdentical(t, serialCD, parCD)
		parAn := Anneal(ctx, opaque, init, Options{MaxIters: 100, Seed: 3, Engine: eng, Workers: w})
		requireIdentical(t, serialAn, parAn)
		parProj := Anneal(ctx, obj, init, Options{MaxIters: 60, Seed: 3, Engine: eng, Workers: w, Project: quantize})
		requireIdentical(t, serialProj, parProj)
	}
}

// TestParallelEvalsCountedOncePerCandidate pins the accounting fix: a
// parallel run reports exactly the serial Evals — every candidate counted
// once — with discarded speculative work segregated into WastedEvals.
func TestParallelEvalsCountedOncePerCandidate(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	shape := []int{8, 7}
	obj, err := NewCoverageObjective([]*rfsim.Channel{randChannel(r, shape, false)}, testBudget())
	if err != nil {
		t.Fatal(err)
	}
	init := randPhases(r, shape)
	ctx := context.Background()
	eng := engine.New(engine.Options{Workers: 4})

	serial := CoordinateDescent(ctx, obj, init, nil, Options{MaxIters: 5})
	par := CoordinateDescent(ctx, obj, init, nil, Options{MaxIters: 5, Engine: eng, Workers: 4})
	if par.Evals != serial.Evals {
		t.Errorf("CD Evals: serial %d, parallel %d", serial.Evals, par.Evals)
	}
	// A descent from a random start improves on early elements, so blocks
	// are discarded and speculative work must show up as waste — proving
	// the counters are actually separated rather than both zero.
	if par.WastedEvals == 0 {
		t.Error("CD: no wasted evals recorded; speculation accounting suspect")
	}

	serialAn := Anneal(ctx, obj, init, Options{MaxIters: 120, Seed: 7})
	parAn := Anneal(ctx, obj, init, Options{MaxIters: 120, Seed: 7, Engine: eng, Workers: 4})
	if parAn.Evals != serialAn.Evals {
		t.Errorf("Anneal Evals: serial %d, parallel %d", serialAn.Evals, parAn.Evals)
	}
	if parAn.Evals != parAn.Iterations+1 {
		t.Errorf("Anneal: Evals=%d, want Iterations+1=%d", parAn.Evals, parAn.Iterations+1)
	}
	if parAn.WastedEvals == 0 {
		t.Error("Anneal: no wasted evals recorded; speculation accounting suspect")
	}
}

// TestWeightedSumPooledEvalBitIdentical: fanning the sum's terms across a
// pool must not change the loss or the gradient by a single bit, because
// the reduction replays the serial accumulation order.
func TestWeightedSumPooledEvalBitIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(47))
	shape := []int{6, 5}
	objs := parityObjectives(t, r, shape)
	ws := objs["weighted-sum"].(*WeightedSum)
	phases := randPhases(r, shape)

	serialLoss, serialGradRef := ws.Eval(phases, true)
	serialGrad := ClonePhases(serialGradRef)

	eng := engine.New(engine.Options{Workers: 4})
	ws.UsePool(eng, 0)
	defer ws.UsePool(nil, 0)
	pooledLoss, pooledGrad := ws.Eval(phases, true)

	if pooledLoss != serialLoss {
		t.Errorf("loss: serial %.17g, pooled %.17g", serialLoss, pooledLoss)
	}
	for s := range serialGrad {
		for k := range serialGrad[s] {
			if pooledGrad[s][k] != serialGrad[s][k] {
				t.Fatalf("grad[%d][%d]: serial %.17g, pooled %.17g", s, k, serialGrad[s][k], pooledGrad[s][k])
			}
		}
	}
}

// TestParallelSweepSharesPoolUnderLoad hammers a parallel sweep while the
// same engine pool runs unrelated fan-out jobs: no data race (-race), no
// re-entrancy deadlock, and the sweep result still matches serial exactly
// even when the pool is contended (contention only narrows scopes).
func TestParallelSweepSharesPoolUnderLoad(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	shape := []int{6, 5}
	obj, err := NewCoverageObjective([]*rfsim.Channel{
		randChannel(r, shape, true),
		randChannel(r, shape, false),
	}, testBudget())
	if err != nil {
		t.Fatal(err)
	}
	init := randPhases(r, shape)
	ctx := context.Background()
	serial := CoordinateDescent(ctx, obj, init, nil, Options{MaxIters: 5})

	eng := engine.New(engine.Options{Workers: 8})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		sink := make([]float64, 64)
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = eng.ForEach(ctx, len(sink), func(i int) {
				sink[i] = math.Sqrt(float64(i + 1))
			})
		}
	}()

	for i := 0; i < 10; i++ {
		par := CoordinateDescent(ctx, obj, init, nil, Options{MaxIters: 5, Engine: eng, Workers: 0})
		requireIdentical(t, serial, par)
	}
	close(stop)
	wg.Wait()
}
