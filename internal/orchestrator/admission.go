package orchestrator

import (
	"context"
	"fmt"
	"math"
	"sort"
)

// Admission control: a front end ahead of the task table that enforces
// per-tenant quotas and a global live-task cap. Every task belongs to a
// tenant; legacy single-tenant callers land on DefaultTenant, whose
// unlimited default quota keeps all existing behavior (and goldens)
// bit-identical. Rejections are typed (ErrAdmissionRejected) so they
// survive the ctrlproto wire hop into a distinct surfctl exit code.

// DefaultTenant is the tenant legacy submissions are accounted to.
const DefaultTenant = "default"

// TenantQuota bounds one tenant's admission. Zero values are unlimited.
type TenantQuota struct {
	// MaxActive caps the tenant's live (pending/running/idle) tasks.
	MaxActive int
	// Weight is the tenant's fair-share weight when a global admission
	// limit is set (0 behaves as 1). With limit L and total weight W, a
	// priority-1 submission is rejected once the tenant holds at least
	// ceil(L * weight/W) live tasks; higher-priority submissions bypass
	// the fair-share check (but never the hard caps).
	Weight float64
}

// TenantStat is one tenant's admission bookkeeping for health output.
type TenantStat struct {
	Tenant   string
	Active   int // live tasks currently admitted
	Rejected uint64
	Quota    TenantQuota
}

// SetTenantQuota configures (or, with a zero quota, clears) a tenant's
// admission quota.
func (o *Orchestrator) SetTenantQuota(tenant string, q TenantQuota) {
	if tenant == "" {
		tenant = DefaultTenant
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.quotas == nil {
		o.quotas = make(map[string]TenantQuota)
	}
	if q == (TenantQuota{}) {
		delete(o.quotas, tenant)
		return
	}
	o.quotas[tenant] = q
}

// SetAdmissionLimit caps the global live task count across all tenants
// (0 disables the cap and fair-share enforcement).
func (o *Orchestrator) SetAdmissionLimit(max int) {
	o.mu.Lock()
	o.admitMax = max
	o.mu.Unlock()
}

// TenantStats returns per-tenant admission state sorted by tenant name.
func (o *Orchestrator) TenantStats() []TenantStat {
	o.mu.Lock()
	defer o.mu.Unlock()
	stats := make(map[string]*TenantStat)
	get := func(name string) *TenantStat {
		s, ok := stats[name]
		if !ok {
			s = &TenantStat{Tenant: name, Quota: o.quotas[name]}
			stats[name] = s
		}
		return s
	}
	for name := range o.quotas {
		get(name)
	}
	for name, n := range o.rejected {
		get(name).Rejected = n
	}
	for _, t := range o.tasks {
		if t.State == TaskDone || t.State == TaskFailed {
			continue
		}
		get(t.Tenant).Active++
	}
	out := make([]TenantStat, 0, len(stats))
	for _, s := range stats {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}

// liveCountsLocked tallies live tasks per tenant and in total. Caller
// holds o.mu.
func (o *Orchestrator) liveCountsLocked() (perTenant map[string]int, total int) {
	perTenant = make(map[string]int)
	for _, t := range o.tasks {
		if t.State == TaskDone || t.State == TaskFailed {
			continue
		}
		perTenant[t.Tenant]++
		total++
	}
	return perTenant, total
}

// fairShareLocked is the tenant's live-task allowance under the global
// limit: ceil(limit * weight / total weight), where the denominator sums
// the weights of every tenant with a configured quota or a live task.
// Caller holds o.mu.
func (o *Orchestrator) fairShareLocked(tenant string, perTenant map[string]int) int {
	weight := func(name string) float64 {
		if w := o.quotas[name].Weight; w > 0 {
			return w
		}
		return 1
	}
	seen := map[string]struct{}{tenant: {}}
	totalW := weight(tenant)
	for name := range o.quotas {
		if _, ok := seen[name]; !ok {
			seen[name] = struct{}{}
			totalW += weight(name)
		}
	}
	for name := range perTenant {
		if _, ok := seen[name]; !ok {
			seen[name] = struct{}{}
			totalW += weight(name)
		}
	}
	return int(math.Ceil(float64(o.admitMax) * weight(tenant) / totalW))
}

// admitLocked decides one submission. Caller holds o.mu; a non-nil
// return wraps ErrAdmissionRejected and the task must not be inserted.
func (o *Orchestrator) admitLocked(tenant string, priority int) error {
	reject := func(format string, args ...any) error {
		if o.rejected == nil {
			o.rejected = make(map[string]uint64)
		}
		o.rejected[tenant]++
		return fmt.Errorf("%w: "+format, append([]any{ErrAdmissionRejected}, args...)...)
	}
	perTenant, total := o.liveCountsLocked()
	if q, ok := o.quotas[tenant]; ok && q.MaxActive > 0 && perTenant[tenant] >= q.MaxActive {
		return reject("tenant %q at max-active %d", tenant, q.MaxActive)
	}
	if o.admitMax > 0 {
		if total >= o.admitMax {
			return reject("admission limit %d reached", o.admitMax)
		}
		if priority <= 1 {
			if share := o.fairShareLocked(tenant, perTenant); perTenant[tenant] >= share {
				return reject("tenant %q over fair share %d of limit %d", tenant, share, o.admitMax)
			}
		}
	}
	return nil
}

// SubmitFor is Submit on behalf of a tenant: the multi-tenant entry
// point behind the ctrlproto agent. An empty tenant means DefaultTenant.
func (o *Orchestrator) SubmitFor(ctx context.Context, tenant string, kind ServiceKind, goal any, priority int) (*Task, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	svc, err := serviceFor(kind)
	if err != nil {
		return nil, err
	}
	if err := svc.Validate(o, goal); err != nil {
		return nil, err
	}
	if tenant == "" {
		tenant = DefaultTenant
	}
	return o.submit(svc, tenant, goal, priority, svc.Duration(goal))
}
