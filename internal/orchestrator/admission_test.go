package orchestrator

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"surfos/internal/driver"
	"surfos/internal/geom"
)

func admitGoal(name string) LinkGoal {
	return LinkGoal{Endpoint: name, Pos: bedroomPoint()}
}

func TestAdmissionTenantMaxActive(t *testing.T) {
	r := newRig(t, fastOpts(), driver.ModelNRSurface)
	r.o.SetTenantQuota("acme", TenantQuota{MaxActive: 1})
	ctx := context.Background()

	t1, err := r.o.SubmitFor(ctx, "acme", ServiceLink, admitGoal("a"), 1)
	if err != nil {
		t.Fatal(err)
	}
	if t1.Tenant != "acme" {
		t.Fatalf("tenant = %q, want acme", t1.Tenant)
	}
	if _, err := r.o.SubmitFor(ctx, "acme", ServiceLink, admitGoal("b"), 3); !errors.Is(err, ErrAdmissionRejected) {
		t.Fatalf("over-quota submit: err = %v, want ErrAdmissionRejected", err)
	}
	// A tenant quota never touches other tenants: the legacy single-tenant
	// path keeps submitting freely.
	if _, err := r.o.EnhanceLink(ctx, admitGoal("c"), 1); err != nil {
		t.Fatalf("default tenant rejected: %v", err)
	}

	var acme *TenantStat
	for _, s := range r.o.TenantStats() {
		if s.Tenant == "acme" {
			st := s
			acme = &st
		}
	}
	if acme == nil {
		t.Fatal("acme missing from TenantStats")
	}
	if acme.Active != 1 || acme.Rejected != 1 || acme.Quota.MaxActive != 1 {
		t.Fatalf("acme stats = %+v, want active=1 rejected=1 max=1", *acme)
	}

	// Ending the live task frees quota headroom.
	if err := r.o.EndTask(t1.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := r.o.SubmitFor(ctx, "acme", ServiceLink, admitGoal("d"), 1); err != nil {
		t.Fatalf("submit after EndTask: %v", err)
	}
}

func TestAdmissionGlobalCapAndFairShare(t *testing.T) {
	r := newRig(t, fastOpts(), driver.ModelNRSurface)
	r.o.SetAdmissionLimit(4)
	r.o.SetTenantQuota("a", TenantQuota{Weight: 1})
	r.o.SetTenantQuota("b", TenantQuota{Weight: 1})
	ctx := context.Background()

	// Fair share under limit 4 with two weight-1 tenants: 2 tasks each.
	for i := 0; i < 2; i++ {
		if _, err := r.o.SubmitFor(ctx, "a", ServiceLink, admitGoal("a"), 1); err != nil {
			t.Fatalf("a within share: %v", err)
		}
	}
	if _, err := r.o.SubmitFor(ctx, "a", ServiceLink, admitGoal("a"), 1); !errors.Is(err, ErrAdmissionRejected) {
		t.Fatalf("a over fair share at priority 1: err = %v", err)
	}
	// Higher priority bypasses fair share (but not the hard cap below).
	if _, err := r.o.SubmitFor(ctx, "a", ServiceLink, admitGoal("a"), 2); err != nil {
		t.Fatalf("a priority-2 bypass: %v", err)
	}
	if _, err := r.o.SubmitFor(ctx, "b", ServiceLink, admitGoal("b"), 1); err != nil {
		t.Fatalf("b within share: %v", err)
	}
	// The global limit is a hard cap regardless of tenant or priority.
	if _, err := r.o.SubmitFor(ctx, "b", ServiceLink, admitGoal("b"), 5); !errors.Is(err, ErrAdmissionRejected) {
		t.Fatalf("over global cap: err = %v", err)
	}

	// Clearing the limit re-opens admission.
	r.o.SetAdmissionLimit(0)
	if _, err := r.o.SubmitFor(ctx, "b", ServiceLink, admitGoal("b"), 1); err != nil {
		t.Fatalf("after clearing limit: %v", err)
	}
}

func TestTaskSpecTenantRoundTrip(t *testing.T) {
	r := newRig(t, fastOpts(), driver.ModelNRSurface)
	ctx := context.Background()

	ta1, err := r.o.SubmitFor(ctx, "acme", ServiceLink, admitGoal("a1"), 1)
	if err != nil {
		t.Fatal(err)
	}
	ta2, err := r.o.SubmitFor(ctx, "acme", ServiceLink, LinkGoal{Endpoint: "a2", Pos: geom.V(5.5, 6.0, 1.2)}, 1)
	if err != nil {
		t.Fatal(err)
	}
	td, err := r.o.EnhanceLink(ctx, admitGoal("d"), 1)
	if err != nil {
		t.Fatal(err)
	}

	specOf := func(task *Task) []byte {
		r.o.mu.Lock()
		defer r.o.mu.Unlock()
		spec, ok := r.o.specLocked(r.o.tasks[task.ID])
		if !ok {
			t.Fatalf("task %d has no durable spec", task.ID)
		}
		return spec
	}
	specA1, specA2, specD := specOf(ta1), specOf(ta2), specOf(td)
	if !bytes.Contains(specA1, []byte(`"tenant":"acme"`)) {
		t.Fatalf("acme spec lacks tenant field: %s", specA1)
	}
	// DefaultTenant is omitted so pre-multi-tenant journals stay
	// byte-identical.
	if bytes.Contains(specD, []byte(`"tenant"`)) {
		t.Fatalf("default-tenant spec leaks tenant field: %s", specD)
	}

	// Restore into a fresh control plane with a 1-task quota: recovery
	// bypasses admission (the journal is the source of truth), but new
	// submissions see the restored tenant population.
	r2 := newRig(t, fastOpts(), driver.ModelNRSurface)
	r2.o.SetTenantQuota("acme", TenantQuota{MaxActive: 1})
	for _, spec := range [][]byte{specA1, specA2, specD} {
		if _, err := r2.o.RestoreTask(spec, "running"); err != nil {
			t.Fatalf("restore: %v", err)
		}
	}
	got, err := r2.o.Task(ta1.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tenant != "acme" {
		t.Fatalf("restored tenant = %q, want acme", got.Tenant)
	}
	gotD, err := r2.o.Task(td.ID)
	if err != nil {
		t.Fatal(err)
	}
	if gotD.Tenant != DefaultTenant {
		t.Fatalf("restored default tenant = %q", gotD.Tenant)
	}
	if _, err := r2.o.SubmitFor(ctx, "acme", ServiceLink, admitGoal("post"), 1); !errors.Is(err, ErrAdmissionRejected) {
		t.Fatalf("quota ignored after restore: err = %v", err)
	}
}
