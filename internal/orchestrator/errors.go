package orchestrator

import "errors"

// Sentinel errors for the orchestrator's typed error model. Call sites
// wrap these with context via fmt.Errorf("...: %w", Err...), so callers
// test categories with errors.Is across layers — including after a
// ctrlproto wire hop, where the agent maps sentinels to status codes and
// the client decodes them back.
var (
	// ErrUnknownTask reports a task ID absent from the task table.
	ErrUnknownTask = errors.New("orchestrator: unknown task")
	// ErrUnknownService reports a service kind with no registered module.
	ErrUnknownService = errors.New("orchestrator: unknown service")
	// ErrGoalInvalid reports a service goal that failed validation.
	ErrGoalInvalid = errors.New("orchestrator: invalid goal")
	// ErrNoAccessPoint reports that no registered AP serves a requested
	// frequency (or none is registered at all).
	ErrNoAccessPoint = errors.New("orchestrator: no access point")
	// ErrNoActiveSurfaces reports that no surface hardware is available
	// for a band or task.
	ErrNoActiveSurfaces = errors.New("orchestrator: no active surfaces")
	// ErrNoSchedulableTasks reports a frequency group whose every task
	// failed objective construction.
	ErrNoSchedulableTasks = errors.New("orchestrator: no schedulable tasks")
	// ErrOptimizeStopped reports a Reconcile cut short by context
	// cancellation; the best-so-far configurations remain applied.
	ErrOptimizeStopped = errors.New("orchestrator: optimization stopped")
	// ErrAdmissionRejected reports a submission refused by admission
	// control (tenant quota exhausted, global cap reached, or fair share
	// exceeded). The task was never admitted to the table.
	ErrAdmissionRejected = errors.New("orchestrator: admission rejected")
)
