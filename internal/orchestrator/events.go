package orchestrator

import (
	"surfos/internal/telemetry"
)

// SetEventBus attaches a task lifecycle event bus; nil detaches it. Events
// are stamped with the orchestrator's virtual clock and carry the task's
// placement and result metrics, so monitors can key expectations and CLIs
// can stream progress without polling the task table.
func (o *Orchestrator) SetEventBus(b *telemetry.EventBus) {
	o.mu.Lock()
	o.events = b
	o.mu.Unlock()
}

// emitLocked publishes one lifecycle transition; the caller holds o.mu.
// Publishing under the lock is safe — the bus never blocks (drop-on-full)
// and never calls back into the orchestrator.
func (o *Orchestrator) emitLocked(t *Task, state string) {
	if o.events == nil {
		return
	}
	ev := telemetry.TaskEvent{
		Time:     o.now,
		TaskID:   t.ID,
		Kind:     t.Kind.String(),
		State:    state,
		FreqHz:   t.FreqHz,
		Endpoint: t.endpoint(),
		Tenant:   t.Tenant,
		Domain:   t.Domain,
	}
	if r := t.Result; r != nil {
		ev.Strategy = r.Strategy
		ev.Surfaces = append([]string(nil), r.Surfaces...)
		ev.Share = r.Share
		if state == telemetry.TaskRunning {
			ev.Metric = r.Metric
			ev.MetricName = r.MetricName
		}
	}
	if t.Err != nil {
		ev.Err = t.Err.Error()
	}
	if state == telemetry.TaskSubmitted {
		// Submission events carry the durable spec so journal subscribers
		// can persist the task without reaching into the orchestrator.
		if spec, ok := o.specLocked(t); ok {
			ev.Spec = spec
		}
	}
	o.events.Publish(ev)
}
