package orchestrator

import (
	"context"
	"testing"

	"surfos/internal/driver"
	"surfos/internal/telemetry"
)

// drainEvents empties whatever the bus has delivered so far. Emission is
// synchronous with the orchestrator call, so everything published before
// drainEvents runs is already in the buffered channel.
func drainEvents(ch <-chan telemetry.TaskEvent) []telemetry.TaskEvent {
	var out []telemetry.TaskEvent
	for {
		select {
		case ev := <-ch:
			out = append(out, ev)
		default:
			return out
		}
	}
}

func states(evs []telemetry.TaskEvent) []string {
	out := make([]string, len(evs))
	for i, ev := range evs {
		out[i] = ev.State
	}
	return out
}

func TestTaskLifecycleEvents(t *testing.T) {
	r := newRig(t, fastOpts(), driver.ModelNRSurface)
	bus := telemetry.NewEventBus()
	ch, cancel := bus.Subscribe(64)
	defer cancel()
	r.o.SetEventBus(bus)

	task, err := r.o.EnhanceLink(context.Background(), LinkGoal{Endpoint: "laptop", Pos: bedroomPoint()}, 1)
	if err != nil {
		t.Fatal(err)
	}
	evs := drainEvents(ch)
	if len(evs) != 1 || evs[0].State != telemetry.TaskSubmitted {
		t.Fatalf("after submit: %v", states(evs))
	}
	if evs[0].TaskID != task.ID || evs[0].Kind != "link" || evs[0].Endpoint != "laptop" {
		t.Errorf("submit event = %+v", evs[0])
	}

	if err := r.o.Reconcile(context.Background()); err != nil {
		t.Fatal(err)
	}
	evs = drainEvents(ch)
	if got := states(evs); len(got) != 2 || got[0] != telemetry.TaskScheduled || got[1] != telemetry.TaskRunning {
		t.Fatalf("after reconcile: %v", got)
	}
	run := evs[1]
	if run.MetricName != "snr_db" || len(run.Surfaces) == 0 || run.Strategy != StrategySolo {
		t.Errorf("running event = %+v", run)
	}

	if err := r.o.SetIdle(task.ID, true); err != nil {
		t.Fatal(err)
	}
	if err := r.o.SetIdle(task.ID, false); err != nil {
		t.Fatal(err)
	}
	if got := states(drainEvents(ch)); len(got) != 2 || got[0] != telemetry.TaskIdle || got[1] != telemetry.TaskResumed {
		t.Fatalf("after idle/resume: %v", got)
	}

	if err := r.o.EndTask(task.ID); err != nil {
		t.Fatal(err)
	}
	if got := states(drainEvents(ch)); len(got) != 1 || got[0] != telemetry.TaskDone {
		t.Fatalf("after end: %v", got)
	}
	// Terminal EndTask is idempotent and silent.
	if err := r.o.EndTask(task.ID); err != nil {
		t.Fatal(err)
	}
	if got := drainEvents(ch); len(got) != 0 {
		t.Fatalf("second end emitted %v", states(got))
	}
}

func TestTaskFailureEmitsEvent(t *testing.T) {
	r := newRig(t, fastOpts(), driver.ModelNRSurface)
	bus := telemetry.NewEventBus()
	ch, cancel := bus.Subscribe(64)
	defer cancel()
	r.o.SetEventBus(bus)

	// 2.4 GHz: no AP serves it, so scheduling fails the task.
	task, err := r.o.EnhanceLink(context.Background(), LinkGoal{Endpoint: "laptop", Pos: bedroomPoint(), FreqHz: 2.4e9}, 1)
	if err != nil {
		t.Fatal(err)
	}
	_ = r.o.Reconcile(context.Background())
	var failed bool
	for _, ev := range drainEvents(ch) {
		if ev.State == telemetry.TaskFailed && ev.TaskID == task.ID {
			failed = true
			if ev.Err == "" {
				t.Error("failed event carries no error text")
			}
		}
	}
	if !failed {
		t.Fatal("no failed event observed")
	}
}

func TestTickDeadlineEmitsDone(t *testing.T) {
	r := newRig(t, fastOpts(), driver.ModelNRSurface)
	bus := telemetry.NewEventBus()
	ch, cancel := bus.Subscribe(64)
	defer cancel()
	r.o.SetEventBus(bus)

	task, err := r.o.InitPowering(context.Background(), PowerGoal{Device: "sensor", Pos: bedroomPoint(), Duration: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.o.Reconcile(context.Background()); err != nil {
		t.Fatal(err)
	}
	drainEvents(ch)
	if err := r.o.Tick(context.Background(), 10); err != nil {
		t.Fatal(err)
	}
	var done bool
	for _, ev := range drainEvents(ch) {
		if ev.State == telemetry.TaskDone && ev.TaskID == task.ID {
			done = true
		}
	}
	if !done {
		t.Fatal("deadline expiry emitted no done event")
	}
}
