package orchestrator

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"surfos/internal/metrics"
)

// Replan governor: churn events (wall toggles, moving endpoints, task
// arrivals) request re-plans far faster than the optimizer can serve
// them. The governor coalesces requests per interference domain behind a
// token bucket — bursts within the budget re-plan immediately, overload
// degrades to serving the stale plan while the requests coalesce into
// one pending re-plan per domain — and a max-staleness deadline forces
// the pending re-plan even with an empty bucket, so staleness is bounded
// by configuration, not by churn rate.
//
// The governor is clock-agnostic: every entry point takes an explicit
// now, so the scenario engine drives it on virtual time and the daemon
// on wall time, with identical semantics.

// GovernorOptions tunes a replan governor. Zero values select defaults.
type GovernorOptions struct {
	// Burst is the token bucket capacity per domain: how many re-plans a
	// domain may run back-to-back before rate limiting (default 2).
	Burst int
	// Refill is the time to earn one token back (default 500ms).
	Refill time.Duration
	// MaxStaleness bounds how long a dirty domain may serve its stale
	// plan before a re-plan is forced regardless of tokens (default 2s).
	MaxStaleness time.Duration
}

func (g GovernorOptions) withDefaults() GovernorOptions {
	if g.Burst <= 0 {
		g.Burst = 2
	}
	if g.Refill <= 0 {
		g.Refill = 500 * time.Millisecond
	}
	if g.MaxStaleness <= 0 {
		g.MaxStaleness = 2 * time.Second
	}
	return g
}

// GovernorStats is a governor's observable state.
type GovernorStats struct {
	// Replans counts governor-driven incremental re-plans (including
	// forced ones).
	Replans uint64
	// Suppressed counts churn events that were absorbed into an already
	// pending re-plan instead of getting their own.
	Suppressed uint64
	// Forced counts re-plans triggered by the max-staleness deadline
	// with an empty token bucket.
	Forced uint64
	// Dirty is the number of domains currently awaiting a re-plan.
	Dirty int
	// MaxStaleness is the largest observed dirty-to-replan latency.
	MaxStaleness time.Duration
}

// domainGov is one domain's bucket and dirty state.
type domainGov struct {
	tokens     float64
	lastRefill time.Time
	dirty      bool
	dirtySince time.Time
}

// Governor rate-limits incremental re-plans per interference domain. It
// is safe for concurrent use; re-plans themselves run outside its lock.
type Governor struct {
	orch *Orchestrator
	opts GovernorOptions

	mu   sync.Mutex
	doms map[int]*domainGov

	replans    atomic.Uint64
	suppressed atomic.Uint64
	forced     atomic.Uint64
	maxStale   atomic.Int64 // nanoseconds

	hist *metrics.Histogram // replan duration, set via RegisterMetrics
}

// NewGovernor wraps an orchestrator with a replan governor.
func NewGovernor(o *Orchestrator, opts GovernorOptions) *Governor {
	return &Governor{orch: o, opts: opts.withDefaults(), doms: make(map[int]*domainGov)}
}

// Options returns the governor's effective (defaulted) options.
func (g *Governor) Options() GovernorOptions { return g.opts }

func (g *Governor) domLocked(domain int, now time.Time) *domainGov {
	dg, ok := g.doms[domain]
	if !ok {
		dg = &domainGov{tokens: float64(g.opts.Burst), lastRefill: now}
		g.doms[domain] = dg
	}
	return dg
}

func (g *Governor) refillLocked(dg *domainGov, now time.Time) {
	if now.After(dg.lastRefill) {
		dg.tokens += now.Sub(dg.lastRefill).Seconds() / g.opts.Refill.Seconds()
		if max := float64(g.opts.Burst); dg.tokens > max {
			dg.tokens = max
		}
		dg.lastRefill = now
	}
}

// Mark records one churn event against a domain. The first mark on a
// clean domain starts its staleness clock; further marks before the
// re-plan coalesce into it and count as suppressed.
func (g *Governor) Mark(domain int, now time.Time) {
	g.mu.Lock()
	dg := g.domLocked(domain, now)
	g.refillLocked(dg, now)
	if dg.dirty {
		g.suppressed.Add(1)
	} else {
		dg.dirty = true
		dg.dirtySince = now
	}
	g.mu.Unlock()
}

// MarkTask marks the domain owning a task (the whole plant for unknown
// tasks, mirroring ReconcileTask's fallback contract).
func (g *Governor) MarkTask(taskID int, now time.Time) {
	g.orch.mu.Lock()
	t, ok := g.orch.tasks[taskID]
	var domain int
	if ok {
		domain = t.Domain
	}
	g.orch.mu.Unlock()
	if !ok {
		g.MarkAll(now)
		return
	}
	g.Mark(domain, now)
}

// MarkAll marks every current interference domain dirty.
func (g *Governor) MarkAll(now time.Time) {
	for _, sh := range g.orch.ShardStats() {
		g.Mark(sh.Domain, now)
	}
}

// Poll releases every eligible pending re-plan: dirty domains with a
// token available, or past their staleness deadline (forced). Domains
// re-plan in ascending order; marks landing during a re-plan re-dirty
// the domain for the next poll. Returns the domains re-planned and the
// first re-plan error.
func (g *Governor) Poll(ctx context.Context, now time.Time) ([]int, error) {
	g.mu.Lock()
	var due []int
	stale := make(map[int]time.Duration)
	for d, dg := range g.doms {
		if !dg.dirty {
			continue
		}
		g.refillLocked(dg, now)
		staleness := now.Sub(dg.dirtySince)
		switch {
		case dg.tokens >= 1:
			dg.tokens--
		case staleness >= g.opts.MaxStaleness:
			g.forced.Add(1)
		default:
			continue // keep serving the stale plan
		}
		dg.dirty = false
		due = append(due, d)
		stale[d] = staleness
	}
	g.mu.Unlock()
	if len(due) == 0 {
		return nil, nil
	}
	sort.Ints(due)

	var firstErr error
	for _, d := range due {
		if s := stale[d]; s.Nanoseconds() > g.maxStale.Load() {
			g.maxStale.Store(s.Nanoseconds())
		}
		start := time.Now()
		err := g.orch.ReconcileDomain(ctx, d)
		g.observeReplan(time.Since(start))
		g.replans.Add(1)
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return due, firstErr
}

// Flush force-replans every dirty domain regardless of tokens or
// deadlines — the shutdown/epilogue path that leaves no churn pending.
func (g *Governor) Flush(ctx context.Context, now time.Time) error {
	g.mu.Lock()
	for _, dg := range g.doms {
		if dg.dirty {
			dg.dirtySince = now.Add(-g.opts.MaxStaleness)
		}
	}
	g.mu.Unlock()
	_, err := g.Poll(ctx, now)
	return err
}

func (g *Governor) observeReplan(d time.Duration) {
	g.mu.Lock()
	h := g.hist
	g.mu.Unlock()
	if h != nil {
		h.Observe(d.Seconds())
	}
}

// Stats snapshots the governor's counters.
func (g *Governor) Stats() GovernorStats {
	g.mu.Lock()
	dirty := 0
	for _, dg := range g.doms {
		if dg.dirty {
			dirty++
		}
	}
	g.mu.Unlock()
	return GovernorStats{
		Replans:      g.replans.Load(),
		Suppressed:   g.suppressed.Load(),
		Forced:       g.forced.Load(),
		Dirty:        dirty,
		MaxStaleness: time.Duration(g.maxStale.Load()),
	}
}

// RegisterMetrics exposes the governor on a metrics registry: the replan
// duration histogram plus total/suppressed/forced counters and a dirty-
// domain gauge.
func (g *Governor) RegisterMetrics(r *metrics.Registry) {
	h := r.Histogram("surfos_replan_duration_seconds",
		"Wall-clock duration of one governor-driven incremental re-plan.",
		metrics.DurationBuckets)
	g.mu.Lock()
	g.hist = h
	g.mu.Unlock()

	r.CounterFunc("surfos_replans_total",
		"Governor-driven incremental re-plans completed.",
		func() float64 { return float64(g.replans.Load()) })
	r.CounterFunc("surfos_replans_suppressed_total",
		"Churn events coalesced into an already pending re-plan.",
		func() float64 { return float64(g.suppressed.Load()) })
	r.CounterFunc("surfos_replans_forced_total",
		"Re-plans forced by the max-staleness deadline with an empty token bucket.",
		func() float64 { return float64(g.forced.Load()) })
	r.RegisterCollector(func() []metrics.Family {
		st := g.Stats()
		return []metrics.Family{{
			Name: "surfos_replan_dirty_domains", Help: "Domains currently awaiting a governed re-plan.", Type: "gauge",
			Samples: []metrics.Sample{{Value: float64(st.Dirty)}},
		}}
	})
}
