package orchestrator

import (
	"context"
	"testing"
	"time"
)

// govRig is a two-room strip with one running task per room and a
// governor with fully explicit options, driven on a virtual clock.
func govRig(t *testing.T, opts GovernorOptions) (*stripRig, *Governor) {
	t.Helper()
	r := newStripRig(t, 2, fastOpts())
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, err := r.o.EnhanceLink(ctx, roomLink(i, "ue"+string(rune('0'+i))), 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.o.Reconcile(ctx); err != nil {
		t.Fatal(err)
	}
	return r, NewGovernor(r.o, opts)
}

func TestGovernorBurstThenRateLimit(t *testing.T) {
	_, gov := govRig(t, GovernorOptions{Burst: 2, Refill: time.Second, MaxStaleness: time.Hour})
	ctx := context.Background()
	t0 := time.Unix(0, 0)

	// Two back-to-back marks spend the burst.
	for i := 0; i < 2; i++ {
		gov.Mark(0, t0)
		due, err := gov.Poll(ctx, t0)
		if err != nil {
			t.Fatal(err)
		}
		if len(due) != 1 || due[0] != 0 {
			t.Fatalf("poll %d: due = %v, want [0]", i, due)
		}
	}

	// Bucket empty: the next mark stays pending through early polls.
	gov.Mark(0, t0)
	for _, at := range []time.Duration{0, 500 * time.Millisecond, 999 * time.Millisecond} {
		due, err := gov.Poll(ctx, t0.Add(at))
		if err != nil {
			t.Fatal(err)
		}
		if len(due) != 0 {
			t.Fatalf("poll at +%v released %v before a token refilled", at, due)
		}
	}
	if st := gov.Stats(); st.Dirty != 1 || st.Replans != 2 {
		t.Fatalf("mid-limit stats = %+v, want dirty=1 replans=2", st)
	}

	// One refill period later the token is back and the re-plan runs.
	due, err := gov.Poll(ctx, t0.Add(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if len(due) != 1 || due[0] != 0 {
		t.Fatalf("post-refill due = %v, want [0]", due)
	}
	st := gov.Stats()
	if st.Replans != 3 || st.Forced != 0 || st.Dirty != 0 {
		t.Fatalf("final stats = %+v, want replans=3 forced=0 dirty=0", st)
	}
}

func TestGovernorCoalescesBurstIntoOneReplan(t *testing.T) {
	_, gov := govRig(t, GovernorOptions{Burst: 1, Refill: time.Hour, MaxStaleness: time.Hour})
	ctx := context.Background()
	t0 := time.Unix(0, 0)

	gov.Mark(1, t0) // consumes the sole token at the next poll
	if _, err := gov.Poll(ctx, t0); err != nil {
		t.Fatal(err)
	}
	// A churn burst lands while the bucket is empty: one pending re-plan,
	// the rest suppressed.
	const burst = 7
	for i := 0; i < burst; i++ {
		gov.Mark(1, t0.Add(time.Duration(i)*time.Millisecond))
	}
	st := gov.Stats()
	if st.Suppressed != burst-1 || st.Dirty != 1 {
		t.Fatalf("stats after burst = %+v, want suppressed=%d dirty=1", st, burst-1)
	}
	if due, _ := gov.Poll(ctx, t0.Add(time.Millisecond*10)); len(due) != 0 {
		t.Fatalf("rate-limited poll released %v", due)
	}
}

func TestGovernorForcesReplanAtMaxStaleness(t *testing.T) {
	_, gov := govRig(t, GovernorOptions{Burst: 1, Refill: time.Hour, MaxStaleness: 2 * time.Second})
	ctx := context.Background()
	t0 := time.Unix(0, 0)

	gov.Mark(0, t0)
	if _, err := gov.Poll(ctx, t0); err != nil { // spends the only token
		t.Fatal(err)
	}
	gov.Mark(0, t0)
	if due, _ := gov.Poll(ctx, t0.Add(time.Second)); len(due) != 0 {
		t.Fatalf("poll inside staleness bound released %v", due)
	}
	due, err := gov.Poll(ctx, t0.Add(2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if len(due) != 1 || due[0] != 0 {
		t.Fatalf("deadline poll due = %v, want [0]", due)
	}
	st := gov.Stats()
	if st.Forced != 1 || st.Replans != 2 {
		t.Fatalf("stats = %+v, want forced=1 replans=2", st)
	}
	if st.MaxStaleness < 2*time.Second {
		t.Fatalf("observed max staleness %v < forced deadline 2s", st.MaxStaleness)
	}
}

func TestGovernorFlushDrainsAllDirtyDomains(t *testing.T) {
	_, gov := govRig(t, GovernorOptions{Burst: 1, Refill: time.Hour, MaxStaleness: time.Hour})
	ctx := context.Background()
	t0 := time.Unix(0, 0)

	// Drain both buckets, then dirty both domains with no tokens left.
	gov.Mark(0, t0)
	gov.Mark(1, t0)
	if _, err := gov.Poll(ctx, t0); err != nil {
		t.Fatal(err)
	}
	gov.Mark(0, t0)
	gov.Mark(1, t0)
	if due, _ := gov.Poll(ctx, t0); len(due) != 0 {
		t.Fatalf("tokenless poll released %v", due)
	}
	if err := gov.Flush(ctx, t0); err != nil {
		t.Fatal(err)
	}
	st := gov.Stats()
	if st.Dirty != 0 || st.Replans != 4 {
		t.Fatalf("post-flush stats = %+v, want dirty=0 replans=4", st)
	}
}

func TestGovernorMarkTask(t *testing.T) {
	r, gov := govRig(t, GovernorOptions{Burst: 4, Refill: time.Hour, MaxStaleness: time.Hour})
	t0 := time.Unix(0, 0)

	// A known task dirties exactly its owning domain.
	task, err := r.o.EnhanceLink(context.Background(), roomLink(1, "walker"), 1)
	if err != nil {
		t.Fatal(err)
	}
	gov.MarkTask(task.ID, t0)
	if st := gov.Stats(); st.Dirty != 1 {
		t.Fatalf("known-task mark dirty = %d, want 1", st.Dirty)
	}
	// An unknown task falls back to marking the whole plant.
	gov.MarkTask(99999, t0)
	if st := gov.Stats(); st.Dirty != 2 {
		t.Fatalf("unknown-task mark dirty = %d, want 2 (all domains)", st.Dirty)
	}
}
