package orchestrator

import (
	"strconv"

	"surfos/internal/metrics"
)

// RegisterMetrics exposes the orchestrator's scheduling and admission
// state on a metrics registry: a reconcile-latency histogram fed from
// every per-shard reconcile, and scrape-time collectors over the dynamic
// shard and tenant sets.
func (o *Orchestrator) RegisterMetrics(r *metrics.Registry) {
	h := r.Histogram("surfos_reconcile_duration_seconds",
		"Wall-clock duration of one interference-domain shard reconcile.",
		metrics.DurationBuckets)
	sw := r.Histogram("surfos_optimize_sweep_duration_seconds",
		"Wall-clock duration of one configuration-optimizer run.",
		metrics.DurationBuckets)
	o.mu.Lock()
	o.latHist = h
	o.sweepHist = sw
	o.mu.Unlock()

	r.CounterFunc("surfos_optimize_runs_total",
		"Configuration-optimizer runs completed across all reconciles.",
		func() float64 { return float64(o.optRuns.Load()) })
	r.CounterFunc("surfos_optimize_evals_total",
		"Objective evaluations counted by the optimizer (each candidate once, as in a serial run).",
		func() float64 { return float64(o.optEvals.Load()) })
	r.CounterFunc("surfos_optimize_wasted_evals_total",
		"Speculative parallel evaluations discarded by commit invalidation.",
		func() float64 { return float64(o.optWasted.Load()) })

	r.RegisterCollector(func() []metrics.Family {
		shards := o.ShardStats()
		tasksF := metrics.Family{Name: "surfos_shard_tasks", Help: "Live tasks routed to the shard.", Type: "gauge"}
		runningF := metrics.Family{Name: "surfos_shard_running", Help: "Tasks currently holding resources in the shard.", Type: "gauge"}
		surfacesF := metrics.Family{Name: "surfos_shard_surfaces", Help: "Member surfaces of the shard.", Type: "gauge"}
		reconcilesF := metrics.Family{Name: "surfos_shard_reconciles_total", Help: "Completed reconciles of the shard.", Type: "counter"}
		for _, sh := range shards {
			lbl := []metrics.Label{{Name: "domain", Value: strconv.Itoa(sh.Domain)}}
			tasksF.Samples = append(tasksF.Samples, metrics.Sample{Labels: lbl, Value: float64(sh.Tasks)})
			runningF.Samples = append(runningF.Samples, metrics.Sample{Labels: lbl, Value: float64(sh.Running)})
			surfacesF.Samples = append(surfacesF.Samples, metrics.Sample{Labels: lbl, Value: float64(len(sh.Surfaces))})
			reconcilesF.Samples = append(reconcilesF.Samples, metrics.Sample{Labels: lbl, Value: float64(sh.Reconciles)})
		}

		tenants := o.TenantStats()
		activeF := metrics.Family{Name: "surfos_tenant_active_tasks", Help: "Live tasks admitted for the tenant.", Type: "gauge"}
		rejectedF := metrics.Family{Name: "surfos_admission_rejected_total", Help: "Task submissions rejected by admission control.", Type: "counter"}
		for _, tn := range tenants {
			lbl := []metrics.Label{{Name: "tenant", Value: tn.Tenant}}
			activeF.Samples = append(activeF.Samples, metrics.Sample{Labels: lbl, Value: float64(tn.Active)})
			rejectedF.Samples = append(rejectedF.Samples, metrics.Sample{Labels: lbl, Value: float64(tn.Rejected)})
		}
		return []metrics.Family{tasksF, runningF, surfacesF, reconcilesF, activeF, rejectedF}
	})
}
