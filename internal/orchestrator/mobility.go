package orchestrator

import (
	"errors"
	"fmt"

	"surfos/internal/geom"
	"surfos/internal/hwmgr"
	"surfos/internal/scene"
	"surfos/internal/telemetry"
)

// Mobility: endpoints move and geometry changes while tasks run. MoveTask
// re-targets a live task's goal and hands it off between interference
// domains when its best-serving surfaces change; EditScene serializes
// scene mutations against in-flight planning so a scripted wall toggle
// can never race a reconcile's ray traces.

// ErrNotMovable rejects MoveTask on goals without a spatial target or on
// tasks that already went terminal.
var ErrNotMovable = errors.New("orchestrator: task is not movable")

// RelocatableGoal is implemented by goal types whose spatial target can
// move at runtime (a user walking with their device). Relocated returns
// a copy of the goal re-targeted at pos; the original is never mutated,
// so snapshots handed out before the move stay consistent.
type RelocatableGoal interface {
	Relocated(pos geom.Vec3) any
}

// Relocated implements RelocatableGoal for link goals (value receiver:
// the returned goal is an independent copy).
func (g LinkGoal) Relocated(pos geom.Vec3) any { g.Pos = pos; return g }

// Relocated implements RelocatableGoal for powering goals.
func (g PowerGoal) Relocated(pos geom.Vec3) any { g.Pos = pos; return g }

// Relocated implements RelocatableGoal for security goals (the protected
// user moves; the eavesdropper estimate stays).
func (g SecurityGoal) Relocated(pos geom.Vec3) any { g.UserPos = pos; return g }

// MoveResult reports what a MoveTask did.
type MoveResult struct {
	TaskID int
	// From and To are the owning interference domains before and after
	// the move.
	From, To int
	// HandedOff is true when the task crossed a domain boundary: its old
	// shard's plan entries were released and a handoff event was emitted.
	HandedOff bool
}

// MoveTask re-targets a live task at a new position. When the new
// position is best served by a different interference domain, the task
// is handed off: its plan entries in the old shard are released (and the
// shrunken codebooks re-applied), the task re-homes to the new domain in
// the pending state, and a "handoff" lifecycle event fires — the task is
// never dropped. Within-domain moves just update the goal; either way
// the serving plan is stale until the next re-plan, which the caller
// (typically a replan governor) schedules.
func (o *Orchestrator) MoveTask(id int, pos geom.Vec3) (MoveResult, error) {
	res, changed, err := o.moveTask(id, pos)
	if err != nil {
		return MoveResult{}, err
	}

	for _, p := range changed {
		devs := make([]*hwmgr.Device, 0, len(p.Surfaces))
		for _, sid := range p.Surfaces {
			if d, err := o.HW.Surface(sid); err == nil {
				devs = append(devs, d)
			}
		}
		_ = o.applyEntries(devs, p.Entries)
	}
	return res, nil
}

// moveTask does MoveTask's bookkeeping under the geometry *write* lock:
// an in-flight reconcile reads task goals while optimizing — outside
// o.mu, under the geometry read lock — so re-targeting a goal must
// exclude planning for its (brief) duration exactly like a scene edit.
// The southbound re-apply of shrunken plans happens in the caller, after
// both locks drop.
func (o *Orchestrator) moveTask(id int, pos geom.Vec3) (MoveResult, []*Plan, error) {
	o.geoMu.Lock()
	defer o.geoMu.Unlock()
	o.mu.Lock()
	defer o.mu.Unlock()
	t, ok := o.tasks[id]
	if !ok {
		return MoveResult{}, nil, fmt.Errorf("%w %d", ErrUnknownTask, id)
	}
	if t.State == TaskDone || t.State == TaskFailed {
		return MoveResult{}, nil, fmt.Errorf("%w: task %d is %s", ErrNotMovable, id, t.State)
	}
	rg, ok := t.Goal.(RelocatableGoal)
	if !ok {
		return MoveResult{}, nil, fmt.Errorf("%w: task %d goal %T has no relocatable target", ErrNotMovable, id, t.Goal)
	}
	o.ensureShardsLocked()
	t.Goal = rg.Relocated(pos)
	from := t.Domain
	to := o.routeLocked(t, o.apFreqs())
	res := MoveResult{TaskID: id, From: from, To: to, HandedOff: to != from}
	var changed []*Plan
	if res.HandedOff {
		// Release the old shard's entries while the task still belongs
		// to it (entry release never crosses shards), then re-home. A
		// running task drops to pending: its configurations live on the
		// old domain's surfaces and the new domain must schedule it.
		changed = o.releaseTaskLocked(id)
		t.Domain = to
		if t.State == TaskRunning {
			t.State = TaskPending
		}
		o.emitLocked(t, telemetry.TaskHandoff)
	}
	return res, changed, nil
}

// EditScene runs fn against the orchestrator's scene with every
// orchestrator-driven scene reader excluded: reconciles, routing, and
// partition rebuilds hold the geometry read-lock for their duration, so
// a wall toggled mid-optimization cannot tear a ray trace. fn runs
// inside scene.Edit, so however many walls it touches commit as one
// revision bump. Callers that share the scene with readers outside this
// orchestrator must still synchronize those separately.
func (o *Orchestrator) EditScene(fn func(*scene.Scene) error) error {
	o.geoMu.Lock()
	defer o.geoMu.Unlock()
	return o.Scene.Edit(fn)
}
