package orchestrator

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"surfos/internal/em"
	"surfos/internal/engine"
	"surfos/internal/geom"
	"surfos/internal/scene"
	"surfos/internal/telemetry"
)

// screenQuad is a drywall screen standing in the middle of room i — a
// churn edit confined to one interference domain.
func screenQuad(room int, off float64) *geom.Quad {
	x := float64(room)*scene.RoomW + 1.5 + off
	return geom.RectXY(geom.V(x, 1.5, 0), geom.V(0, 1, 0), geom.V(0, 0, 1), 2, 2.2)
}

func TestMoveTaskWithinDomain(t *testing.T) {
	r := newStripRig(t, 2, fastOpts())
	ctx := context.Background()

	task, err := r.o.EnhanceLink(ctx, roomLink(0, "ue"), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.o.Reconcile(ctx); err != nil {
		t.Fatal(err)
	}

	dest := scene.RoomCenter(0).Add(geom.V(1, 0.5, 0))
	res, err := r.o.MoveTask(task.ID, dest)
	if err != nil {
		t.Fatal(err)
	}
	if res.HandedOff || res.From != 0 || res.To != 0 {
		t.Fatalf("within-domain move = %+v, want from=to=0 no handoff", res)
	}
	got, err := r.o.Task(task.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != TaskRunning {
		t.Fatalf("state after within-domain move = %v, want running (plan stays live)", got.State)
	}
	if g := got.Goal.(LinkGoal); g.Pos != dest {
		t.Fatalf("goal pos = %v, want %v", g.Pos, dest)
	}
}

func TestMoveTaskHandsOffAcrossDomains(t *testing.T) {
	r := newStripRig(t, 2, fastOpts())
	ctx := context.Background()

	bus := telemetry.NewEventBus()
	events, cancel := bus.Subscribe(64)
	defer cancel()
	r.o.SetEventBus(bus)

	task, err := r.o.EnhanceLink(ctx, roomLink(0, "walker"), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.o.Reconcile(ctx); err != nil {
		t.Fatal(err)
	}

	res, err := r.o.MoveTask(task.ID, scene.RoomCenter(1))
	if err != nil {
		t.Fatal(err)
	}
	if !res.HandedOff || res.From != 0 || res.To != 1 {
		t.Fatalf("cross-domain move = %+v, want handoff 0→1", res)
	}
	got, err := r.o.Task(task.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != TaskPending || got.Domain != 1 {
		t.Fatalf("after handoff state=%v domain=%d, want pending in domain 1", got.State, got.Domain)
	}
	// The old shard's plan entries are gone before the next re-plan.
	for _, p := range r.o.Plans() {
		for _, e := range p.Entries {
			for _, id := range e.TaskIDs {
				if id == task.ID {
					t.Fatalf("handed-off task %d still holds plan entry %q", id, e.Label)
				}
			}
		}
	}
	// The new domain schedules it back to running — the task survived.
	if err := r.o.ReconcileDomain(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if got, _ = r.o.Task(task.ID); got.State != TaskRunning || got.Domain != 1 {
		t.Fatalf("after re-plan state=%v domain=%d, want running in domain 1", got.State, got.Domain)
	}

	cancel()
	want := []string{
		telemetry.TaskSubmitted,
		telemetry.TaskScheduled, telemetry.TaskRunning,
		telemetry.TaskHandoff,
		telemetry.TaskScheduled, telemetry.TaskRunning,
	}
	var trail []string
	for ev := range events {
		if ev.TaskID == task.ID {
			trail = append(trail, ev.State)
		}
	}
	if len(trail) != len(want) {
		t.Fatalf("trail = %v, want %v", trail, want)
	}
	for i := range want {
		if trail[i] != want[i] {
			t.Fatalf("trail = %v, want %v", trail, want)
		}
	}
}

func TestMoveTaskRejections(t *testing.T) {
	r := newStripRig(t, 2, fastOpts())
	ctx := context.Background()

	if _, err := r.o.MoveTask(9999, scene.RoomCenter(0)); !errors.Is(err, ErrUnknownTask) {
		t.Fatalf("unknown task: %v, want ErrUnknownTask", err)
	}

	// A coverage goal has no point target to relocate.
	cov, err := r.o.Submit(ctx, ServiceCoverage, CoverageGoal{Region: "room_0", MedianSNRdB: 5, FreqHz: 24e9}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.o.MoveTask(cov.ID, scene.RoomCenter(1)); !errors.Is(err, ErrNotMovable) {
		t.Fatalf("coverage goal: %v, want ErrNotMovable", err)
	}

	// Terminal tasks are not movable.
	task, err := r.o.EnhanceLink(ctx, roomLink(0, "ue"), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.o.EndTask(task.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := r.o.MoveTask(task.ID, scene.RoomCenter(1)); !errors.Is(err, ErrNotMovable) {
		t.Fatalf("ended task: %v, want ErrNotMovable", err)
	}
}

// TestWallThrashKeepsUntouchedDomainsHot is the partition-cache-thrash
// pin: rapid wall toggling in one room, with live tasks everywhere, must
// neither migrate tasks in untouched domains nor evict their ray traces
// (they carry to each new revision instead of re-tracing).
func TestWallThrashKeepsUntouchedDomainsHot(t *testing.T) {
	eng := engine.New(engine.Options{})
	opts := Options{OptIters: 6, GridStep: 2.0, SensingGridStep: 2.5, SensingBins: 9, SensingSubcarriers: 2, Engine: eng}
	r := newStripRig(t, 3, opts)
	ctx := context.Background()

	bus := telemetry.NewEventBus()
	events, cancel := bus.Subscribe(2048)
	defer cancel()
	r.o.SetEventBus(bus)

	anchors := make([]*Task, 3)
	for i := range anchors {
		task, err := r.o.EnhanceLink(ctx, roomLink(i, fmt.Sprintf("anchor%d", i)), 2)
		if err != nil {
			t.Fatal(err)
		}
		anchors[i] = task
	}
	if err := r.o.Reconcile(ctx); err != nil {
		t.Fatal(err)
	}

	// Deterministic phase: one screen toggle in room 1, then re-plan every
	// domain. Only room 1 re-traces; rooms 0 and 2 carry their contexts to
	// the new scene revision.
	base := eng.CacheStats()
	if err := r.o.EditScene(func(s *scene.Scene) error {
		s.AddWall("screen_1", screenQuad(1, 0), em.Drywall)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for d := 0; d < 3; d++ {
		if err := r.o.ReconcileDomain(ctx, d); err != nil {
			t.Fatal(err)
		}
	}
	st := eng.CacheStats()
	if miss := st.TxMisses - base.TxMisses; miss != 1 {
		t.Fatalf("room-1 edit caused %d re-traces, want 1 (room 1 only); stats %+v base %+v", miss, st, base)
	}
	if carried := st.TxCarried - base.TxCarried; carried != 2 {
		t.Fatalf("rooms 0/2 carried %d traces, want 2; stats %+v base %+v", carried, st, base)
	}

	// Thrash phase under the race detector: wall toggles + governed
	// re-plans vs. task churn in the untouched rooms vs. a walker handing
	// off between rooms 0 and 1.
	walker, err := r.o.EnhanceLink(ctx, LinkGoal{Endpoint: "walker", Pos: scene.RoomCenter(0)}, 1)
	if err != nil {
		t.Fatal(err)
	}
	gov := NewGovernor(r.o, GovernorOptions{Burst: 2, Refill: 20 * time.Millisecond, MaxStaleness: 100 * time.Millisecond})

	const toggles = 12
	preRace := eng.CacheStats()
	var wg sync.WaitGroup
	wg.Add(3)
	go func() { // room-1 churn: move the screen back and forth
		defer wg.Done()
		for i := 0; i < toggles; i++ {
			if err := r.o.EditScene(func(s *scene.Scene) error {
				return s.MoveWall("screen_1", screenQuad(1, float64(i%4)*0.3))
			}); err != nil {
				t.Errorf("toggle %d: %v", i, err)
				return
			}
			gov.Mark(1, time.Now())
			if _, err := gov.Poll(ctx, time.Now()); err != nil {
				t.Errorf("poll %d: %v", i, err)
				return
			}
		}
	}()
	go func() { // task churn confined to the untouched rooms
		defer wg.Done()
		for i := 0; i < 10; i++ {
			room := 2 * (i % 2) // rooms 0 and 2
			task, err := r.o.EnhanceLink(ctx, roomLink(room, fmt.Sprintf("churn%d", i)), 1)
			if err != nil {
				t.Errorf("churn submit: %v", err)
				return
			}
			if err := r.o.ReconcileDomain(ctx, room); err != nil {
				t.Errorf("churn reconcile: %v", err)
				return
			}
			if err := r.o.EndTask(task.ID); err != nil {
				t.Errorf("churn end: %v", err)
				return
			}
		}
	}()
	go func() { // walker bouncing across the 0/1 domain boundary
		defer wg.Done()
		for i := 1; i <= 6; i++ {
			if _, err := r.o.MoveTask(walker.ID, scene.RoomCenter(i%2)); err != nil {
				t.Errorf("walk %d: %v", i, err)
				return
			}
			gov.MarkTask(walker.ID, time.Now())
			if _, err := gov.Poll(ctx, time.Now()); err != nil {
				t.Errorf("walker poll: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	if err := gov.Flush(ctx, time.Now()); err != nil {
		t.Fatal(err)
	}
	if err := r.o.Reconcile(ctx); err != nil {
		t.Fatal(err)
	}
	cancel()

	// Untouched-domain traces stayed hot: every new revision can cost at
	// most one re-trace (room 1's own), never rooms 0/2's.
	post := eng.CacheStats()
	if miss := post.TxMisses - preRace.TxMisses; miss > toggles+1 {
		t.Fatalf("thrash caused %d re-traces for %d toggles — untouched domains re-traced; %+v", miss, toggles, post)
	}
	if post.TxCarried <= preRace.TxCarried {
		t.Fatalf("no traces carried during thrash: %+v (pre %+v)", post, preRace)
	}

	// Zero loss, zero spurious migration.
	handoffs := 0
	for ev := range events {
		switch ev.State {
		case telemetry.TaskMigrated:
			if ev.TaskID == anchors[0].ID || ev.TaskID == anchors[2].ID {
				t.Fatalf("untouched-domain anchor %d migrated", ev.TaskID)
			}
		case telemetry.TaskHandoff:
			handoffs++
		case telemetry.TaskFailed:
			t.Fatalf("task %d failed during thrash: %s", ev.TaskID, ev.Err)
		}
	}
	if handoffs == 0 {
		t.Fatal("walker crossed domains without a handoff event")
	}
	for i, a := range []*Task{anchors[0], anchors[2]} {
		got, err := r.o.Task(a.ID)
		if err != nil {
			t.Fatal(err)
		}
		if got.State != TaskRunning || got.Domain != 2*i {
			t.Fatalf("anchor in room %d: state=%v domain=%d, want running in %d", 2*i, got.State, got.Domain, 2*i)
		}
	}
	if got, _ := r.o.Task(walker.ID); got.State == TaskFailed {
		t.Fatal("walker lost during thrash")
	}
}
