package orchestrator

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"surfos/internal/driver"
	"surfos/internal/em"
	"surfos/internal/engine"
	"surfos/internal/geom"
	"surfos/internal/hwmgr"
	"surfos/internal/optimize"
	"surfos/internal/rfsim"
	"surfos/internal/scene"
	"surfos/internal/sensing"
	"surfos/internal/surface"
)

// Options tunes the orchestrator. Zero values select defaults.
type Options struct {
	// Policy selects the multiplexing strategy (default PolicyAuto).
	Policy MultiplexPolicy
	// OptIters bounds the configuration optimizer (default 150).
	OptIters int
	// GridStep is the default coverage evaluation spacing in meters (0.5).
	GridStep float64
	// SensingGridStep is the sensing training grid spacing (1.0).
	SensingGridStep float64
	// SensingBins is the AoA grid size (default 61).
	SensingBins int
	// SensingSubcarriers is the wideband sounding tone count (default 8).
	SensingSubcarriers int
	// SensingBandwidth is the sounding bandwidth in Hz (default 1.8 GHz).
	SensingBandwidth float64
	// SensingWeight scales the localization term in joint optimization
	// (default 1.0, the paper's plain sum).
	SensingWeight float64
	// Cascade enables surface-to-surface interaction modeling when a group
	// has multiple surfaces.
	Cascade bool
	// ReflOrder is the environment reflection order (default 1).
	ReflOrder int
	// Engine is the shared channel-evaluation engine. Nil selects the
	// process-wide engine.Default(), maximizing ray-trace cache reuse with
	// the deployment planner and experiment rigs.
	Engine *engine.Engine
}

func (o Options) withDefaults() Options {
	if o.OptIters == 0 {
		o.OptIters = 150
	}
	if o.GridStep == 0 {
		o.GridStep = 0.5
	}
	if o.SensingGridStep == 0 {
		o.SensingGridStep = 1.0
	}
	if o.SensingBins == 0 {
		o.SensingBins = 61
	}
	if o.SensingSubcarriers == 0 {
		o.SensingSubcarriers = 8
	}
	if o.SensingBandwidth == 0 {
		o.SensingBandwidth = 1.8e9
	}
	if o.SensingWeight == 0 {
		o.SensingWeight = 1.0
	}
	if o.ReflOrder == 0 {
		o.ReflOrder = 1
	}
	return o
}

// Orchestrator is the central control plane instance for one environment.
type Orchestrator struct {
	Scene *scene.Scene
	HW    *hwmgr.Manager
	Opts  Options

	eng *engine.Engine

	mu     sync.Mutex
	tasks  map[int]*Task
	nextID int
	plans  []*Plan
	now    time.Time
}

// New builds an orchestrator over a scene and hardware inventory.
func New(sc *scene.Scene, hw *hwmgr.Manager, opts Options) (*Orchestrator, error) {
	if sc == nil || hw == nil {
		return nil, errors.New("orchestrator: needs a scene and a hardware manager")
	}
	opts = opts.withDefaults()
	eng := opts.Engine
	if eng == nil {
		eng = engine.Default()
	}
	return &Orchestrator{
		Scene:  sc,
		HW:     hw,
		Opts:   opts,
		eng:    eng,
		tasks:  make(map[int]*Task),
		nextID: 1,
		now:    time.Unix(0, 0),
	}, nil
}

// Engine returns the channel-evaluation engine this orchestrator computes
// through.
func (o *Orchestrator) Engine() *engine.Engine { return o.eng }

// --- service request APIs (paper §3.2, Figure 6) ---
//
// Every service call takes a context: submission itself is cheap, but the
// ctx is checked up front so callers with expired deadlines fail fast, and
// the same ctx convention carries through Reconcile into the optimizer
// loops.

// ctxErr tolerates nil contexts from legacy callers.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// EnhanceLink requests connectivity enhancement for one endpoint.
func (o *Orchestrator) EnhanceLink(ctx context.Context, g LinkGoal, priority int) (*Task, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	if g.Endpoint == "" {
		return nil, errors.New("orchestrator: link goal needs an endpoint")
	}
	return o.submit(ServiceLink, g, priority, 0)
}

// OptimizeCoverage requests region-wide coverage.
func (o *Orchestrator) OptimizeCoverage(ctx context.Context, g CoverageGoal, priority int) (*Task, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	if _, err := o.Scene.Region(g.Region); err != nil {
		return nil, err
	}
	return o.submit(ServiceCoverage, g, priority, 0)
}

// EnableSensing requests localization service over a region.
func (o *Orchestrator) EnableSensing(ctx context.Context, g SensingGoal, priority int) (*Task, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	if _, err := o.Scene.Region(g.Region); err != nil {
		return nil, err
	}
	return o.submit(ServiceSensing, g, priority, g.Duration)
}

// InitPowering requests wireless power delivery.
func (o *Orchestrator) InitPowering(ctx context.Context, g PowerGoal, priority int) (*Task, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	if g.Device == "" {
		return nil, errors.New("orchestrator: power goal needs a device")
	}
	return o.submit(ServicePowering, g, priority, g.Duration)
}

// SecureLink requests eavesdropper suppression for an endpoint.
func (o *Orchestrator) SecureLink(ctx context.Context, g SecurityGoal, priority int) (*Task, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	if g.Endpoint == "" {
		return nil, errors.New("orchestrator: security goal needs an endpoint")
	}
	return o.submit(ServiceSecurity, g, priority, 0)
}

func (o *Orchestrator) submit(kind ServiceKind, goal any, priority int, duration time.Duration) (*Task, error) {
	if priority <= 0 {
		priority = 1
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	t := &Task{
		ID:       o.nextID,
		Kind:     kind,
		Priority: priority,
		State:    TaskPending,
		Created:  o.now,
		Goal:     goal,
	}
	if duration > 0 {
		t.Deadline = o.now.Add(duration)
	}
	o.nextID++
	o.tasks[t.ID] = t
	return t, nil
}

// Task returns a task by ID.
func (o *Orchestrator) Task(id int) (*Task, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	t, ok := o.tasks[id]
	if !ok {
		return nil, fmt.Errorf("orchestrator: unknown task %d", id)
	}
	return t, nil
}

// Tasks returns all tasks sorted by ID.
func (o *Orchestrator) Tasks() []*Task {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]*Task, 0, len(o.tasks))
	for _, t := range o.tasks {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// EndTask terminates a task and releases its resources on the next
// Reconcile.
func (o *Orchestrator) EndTask(id int) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	t, ok := o.tasks[id]
	if !ok {
		return fmt.Errorf("orchestrator: unknown task %d", id)
	}
	if t.State != TaskDone && t.State != TaskFailed {
		t.State = TaskDone
	}
	return nil
}

// SetIdle parks a running task without destroying it; idle tasks release
// hardware until resumed.
func (o *Orchestrator) SetIdle(id int, idle bool) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	t, ok := o.tasks[id]
	if !ok {
		return fmt.Errorf("orchestrator: unknown task %d", id)
	}
	switch {
	case idle && (t.State == TaskRunning || t.State == TaskPending):
		t.State = TaskIdle
	case !idle && t.State == TaskIdle:
		t.State = TaskPending
	}
	return nil
}

// Plans returns the current scheduling plans.
func (o *Orchestrator) Plans() []*Plan {
	o.mu.Lock()
	defer o.mu.Unlock()
	return append([]*Plan(nil), o.plans...)
}

// Now returns the orchestrator's virtual clock.
func (o *Orchestrator) Now() time.Time {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.now
}

// Tick advances the virtual clock: deadline-expired tasks complete, TDM
// frames rotate device codebook selections, and the hardware plan is
// re-reconciled (under ctx) when the active task set changed.
func (o *Orchestrator) Tick(ctx context.Context, dt time.Duration) error {
	if err := ctxErr(ctx); err != nil {
		return err
	}
	o.mu.Lock()
	o.now = o.now.Add(dt)
	changed := false
	for _, t := range o.tasks {
		if t.active() && !t.Deadline.IsZero() && !o.now.Before(t.Deadline) {
			t.State = TaskDone
			changed = true
		}
	}
	// Rotate TDM selections while still holding the lock: plan rotation
	// state is shared, and Tick may be called from concurrent northbound
	// sessions. Device selection uses the drivers' own locks.
	type sel struct {
		id  string
		idx int
	}
	var sels []sel
	if !changed {
		for _, p := range o.plans {
			if len(p.Entries) < 2 {
				continue
			}
			if idx := p.nextSlot(); idx >= 0 {
				for _, id := range p.Surfaces {
					sels = append(sels, sel{id: id, idx: idx})
				}
			}
		}
	}
	o.mu.Unlock()

	if changed {
		return o.Reconcile(ctx)
	}
	for _, sl := range sels {
		dev, err := o.HW.Surface(sl.id)
		if err != nil {
			continue
		}
		if dev.Drv.CodebookLen() > sl.idx {
			_ = dev.Drv.Select(sl.idx)
		}
	}
	return nil
}

// --- scheduling and optimization ---

// group is one frequency-band scheduling domain.
type group struct {
	ap    *hwmgr.AccessPoint
	freq  float64
	tasks []*Task
	devs  []*hwmgr.Device
}

// Reconcile runs the scheduler: it groups active tasks by frequency,
// chooses a multiplexing strategy per group, optimizes configurations,
// pushes them to devices, and fills in task results. It is the
// orchestrator's "schedule all surface hardware globally" step.
//
// Cancellation semantics: the ctx is checked between groups and inside the
// optimizer loops. A cancel mid-optimization applies the best-so-far
// configuration for the group being scheduled (bounded degradation, not
// half-written state), skips remaining groups, and returns the ctx error.
func (o *Orchestrator) Reconcile(ctx context.Context) error {
	if err := ctxErr(ctx); err != nil {
		return err
	}
	o.mu.Lock()
	var act []*Task
	for _, t := range o.tasks {
		if t.State == TaskPending || t.State == TaskRunning {
			act = append(act, t)
		}
	}
	sort.Slice(act, func(i, j int) bool { return act[i].ID < act[j].ID })
	o.mu.Unlock()

	groups, err := o.groupTasks(act)
	if err != nil {
		return err
	}

	var plans []*Plan
	var firstErr error
	for _, g := range groups {
		if err := ctxErr(ctx); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			break
		}
		p, err := o.scheduleGroup(ctx, g)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		plans = append(plans, p...)
	}

	o.mu.Lock()
	o.plans = plans
	o.mu.Unlock()
	return firstErr
}

// groupTasks resolves each task's AP and frequency and buckets tasks.
func (o *Orchestrator) groupTasks(act []*Task) ([]*group, error) {
	aps := o.HW.APs()
	if len(aps) == 0 && len(act) > 0 {
		return nil, errors.New("orchestrator: no access points registered")
	}
	byFreq := make(map[float64]*group)
	var order []float64
	for _, t := range act {
		f := goalFreq(t.Goal)
		var ap *hwmgr.AccessPoint
		if f == 0 {
			ap = aps[0]
			f = ap.FreqHz
		} else {
			for _, a := range aps {
				if a.FreqHz == f {
					ap = a
					break
				}
			}
			if ap == nil {
				o.failTask(t, fmt.Errorf("orchestrator: no AP serves %g Hz", f))
				continue
			}
		}
		g, ok := byFreq[f]
		if !ok {
			devs := o.HW.SurfacesForBand(f)
			g = &group{ap: ap, freq: f, devs: devs}
			byFreq[f] = g
			order = append(order, f)
		}
		if len(g.devs) == 0 {
			o.failTask(t, fmt.Errorf("orchestrator: no surface hardware supports %g Hz", f))
			continue
		}
		t.FreqHz = f
		g.tasks = append(g.tasks, t)
	}
	sort.Float64s(order)
	out := make([]*group, 0, len(order))
	for _, f := range order {
		if len(byFreq[f].tasks) > 0 {
			out = append(out, byFreq[f])
		}
	}
	return out, nil
}

func (o *Orchestrator) failTask(t *Task, err error) {
	o.mu.Lock()
	t.State = TaskFailed
	t.Err = err
	o.mu.Unlock()
}

// pickStrategy implements the policy decision.
func (o *Orchestrator) pickStrategy(g *group) string {
	switch o.Opts.Policy {
	case PolicyTDM:
		if len(g.tasks) == 1 {
			return StrategySolo
		}
		return StrategyTDM
	case PolicyJoint:
		if len(g.tasks) == 1 {
			return StrategySolo
		}
		return StrategyJoint
	case PolicySDM:
		if len(g.tasks) == 1 {
			return StrategySolo
		}
		return StrategySDM
	}
	// Auto.
	if len(g.tasks) == 1 {
		return StrategySolo
	}
	anyPassive := false
	for _, d := range g.devs {
		if !d.Drv.Spec().Reconfigurable {
			anyPassive = true
		}
	}
	if anyPassive {
		// A passive surface holds exactly one configuration: joint
		// configuration multiplexing is its only sharing mechanism.
		return StrategyJoint
	}
	if len(g.devs) >= len(g.tasks) {
		return StrategySDM
	}
	if len(g.tasks) <= 3 {
		return StrategyJoint
	}
	return StrategyTDM
}

// scheduleGroup plans one frequency group.
func (o *Orchestrator) scheduleGroup(ctx context.Context, g *group) ([]*Plan, error) {
	strategy := o.pickStrategy(g)
	switch strategy {
	case StrategySDM:
		return o.scheduleSDM(ctx, g)
	case StrategyTDM:
		return o.scheduleTDM(ctx, g)
	default: // solo, joint
		return o.scheduleJoint(ctx, g, strategy)
	}
}

// deviceIDs lists a device set's IDs.
func deviceIDs(devs []*hwmgr.Device) []string {
	out := make([]string, len(devs))
	for i, d := range devs {
		out[i] = d.ID
	}
	return out
}

// specFor describes the engine simulator configuration for a device
// subset. Identical device subsets (the common case across successive
// Reconciles) share the engine's cached simulator and ray traces.
func (o *Orchestrator) specFor(freq float64, devs []*hwmgr.Device) engine.Spec {
	surfs := make([]*surface.Surface, len(devs))
	eff := 1.0
	for i, d := range devs {
		surfs[i] = d.Drv.Surface()
		if e := d.Drv.Spec().ElementEfficiency; e > 0 && e < eff {
			eff = e
		}
	}
	return engine.Spec{
		Scene:             o.Scene,
		FreqHz:            freq,
		Surfaces:          surfs,
		ReflOrder:         o.Opts.ReflOrder,
		Cascade:           o.Opts.Cascade && len(devs) > 1,
		ElementEfficiency: eff,
	}
}

// projectorFor combines device constraint projections.
func projectorFor(devs []*hwmgr.Device) optimize.Projector {
	return func(phases [][]float64) [][]float64 {
		out := make([][]float64, len(phases))
		for i, p := range phases {
			if i < len(devs) {
				cfg := surface.Config{Property: surface.Phase, Values: p}
				out[i] = devs[i].Drv.Project(cfg).Values
			} else {
				cp := make([]float64, len(p))
				copy(cp, p)
				out[i] = cp
			}
		}
		return out
	}
}

// taskObjective builds the optimization objective for one task over an
// engine spec, returning the objective and an evaluator that computes the
// task's headline metric for a final phase set. Channel state comes from
// the engine: the transmitter trace for a group is computed once and
// shared by every task in it (and by later Reconciles, until the scene
// geometry changes).
func (o *Orchestrator) taskObjective(ctx context.Context, t *Task, g *group, spec engine.Spec) (optimize.Objective, func([][]float64) *Result, error) {
	lb := g.ap.Budget
	switch goal := t.Goal.(type) {
	case LinkGoal:
		tc, err := o.eng.Tx(ctx, spec, g.ap.Pos)
		if err != nil {
			return nil, nil, err
		}
		ch := tc.Channel(goal.Pos)
		obj, err := optimize.NewCoverageObjective([]*rfsim.Channel{ch}, lb)
		if err != nil {
			return nil, nil, err
		}
		eval := func(ph [][]float64) *Result {
			h, _ := ch.Eval(optimize.PhasesToConfigs(ph))
			snr := lb.SNRdB(h)
			return &Result{Metric: snr, MetricName: "snr_db", Satisfied: snr >= goal.MinSNRdB}
		}
		return obj, eval, nil

	case CoverageGoal:
		step := goal.GridStep
		if step == 0 {
			step = o.Opts.GridStep
		}
		reg, err := o.Scene.Region(goal.Region)
		if err != nil {
			return nil, nil, err
		}
		pts := reg.GridPoints(step, scene.EvalHeight)
		if len(pts) == 0 {
			return nil, nil, fmt.Errorf("orchestrator: region %q has no grid points", goal.Region)
		}
		chans, err := o.eng.Channels(ctx, spec, g.ap.Pos, pts)
		if err != nil {
			return nil, nil, err
		}
		obj, err := optimize.NewCoverageObjective(chans, lb)
		if err != nil {
			return nil, nil, err
		}
		eval := func(ph [][]float64) *Result {
			cfgs := optimize.PhasesToConfigs(ph)
			snrs := make([]float64, len(chans))
			for i, ch := range chans {
				h, _ := ch.Eval(cfgs)
				snrs[i] = lb.SNRdB(h)
			}
			med := rfsim.Median(snrs)
			return &Result{Metric: med, MetricName: "median_snr_db", Satisfied: med >= goal.MedianSNRdB}
		}
		return obj, eval, nil

	case SensingGoal:
		step := goal.GridStep
		if step == 0 {
			step = o.Opts.SensingGridStep
		}
		reg, err := o.Scene.Region(goal.Region)
		if err != nil {
			return nil, nil, err
		}
		pts := reg.GridPoints(step, scene.EvalHeight)
		if len(pts) == 0 {
			return nil, nil, fmt.Errorf("orchestrator: region %q has no grid points", goal.Region)
		}
		sim, err := o.eng.Simulator(spec)
		if err != nil {
			return nil, nil, err
		}
		est, err := o.estimatorFor(g, sim)
		if err != nil {
			return nil, nil, err
		}
		meas := make([]*sensing.Measurement, len(pts))
		if err := o.eng.ForEach(ctx, len(pts), func(i int) {
			meas[i] = est.Measure(pts[i])
		}); err != nil {
			return nil, nil, err
		}
		obj, err := sensing.NewLocalizationObjective(est, meas, 0)
		if err != nil {
			return nil, nil, err
		}
		noiseAmp := sensing.NoiseAmplitude(lb)
		eval := func(ph [][]float64) *Result {
			errM := obj.MeanLocalizationError(ph, noiseAmp, 1)
			return &Result{Metric: errM, MetricName: "mean_loc_err_m", Satisfied: true}
		}
		return obj, eval, nil

	case PowerGoal:
		tc, err := o.eng.Tx(ctx, spec, g.ap.Pos)
		if err != nil {
			return nil, nil, err
		}
		ch := tc.Channel(goal.Pos)
		obj, err := optimize.NewPowerObjective([]*rfsim.Channel{ch})
		if err != nil {
			return nil, nil, err
		}
		eval := func(ph [][]float64) *Result {
			h, _ := ch.Eval(optimize.PhasesToConfigs(ph))
			return &Result{Metric: lb.RxPowerDBm(h), MetricName: "rx_power_dbm", Satisfied: true}
		}
		return obj, eval, nil

	case SecurityGoal:
		tc, err := o.eng.Tx(ctx, spec, g.ap.Pos)
		if err != nil {
			return nil, nil, err
		}
		user := tc.Channel(goal.UserPos)
		eve := tc.Channel(goal.EvePos)
		obj, err := optimize.NewSecurityObjective(user, eve, 1.0, lb)
		if err != nil {
			return nil, nil, err
		}
		eval := func(ph [][]float64) *Result {
			cfgs := optimize.PhasesToConfigs(ph)
			hu, _ := user.Eval(cfgs)
			he, _ := eve.Eval(cfgs)
			gap := lb.SNRdB(hu) - lb.SNRdB(he)
			return &Result{Metric: gap, MetricName: "user_eve_snr_gap_db", Satisfied: gap > 0}
		}
		return obj, eval, nil
	}
	return nil, nil, fmt.Errorf("orchestrator: task %d has unknown goal type %T", t.ID, t.Goal)
}

// estimatorFor builds the sensing estimator for a group: the AP's antenna
// array observes the group's first sensing-capable surface.
func (o *Orchestrator) estimatorFor(g *group, sim *rfsim.Simulator) (*sensing.Estimator, error) {
	n := g.ap.Antennas
	if n <= 0 {
		n = 16
	}
	lambda := em.Wavelength(g.freq)
	ants := sensing.ULA(g.ap.Pos, geom.V(1, 0, 0), n, lambda/2)
	bins := sensing.DefaultBins(o.Opts.SensingBins, 60*math.Pi/180)
	subs := sensing.DefaultSubcarriers(g.freq, o.Opts.SensingBandwidth, o.Opts.SensingSubcarriers)
	est, err := sensing.NewEstimator(sim, 0, ants, bins, subs)
	if err != nil {
		return nil, err
	}
	amp := sensing.NoiseAmplitude(g.ap.Budget)
	est.NoisePower = amp * amp
	return est, nil
}

// optimizeConfigs runs the configuration optimizer for an objective over a
// device set. Optimization runs in the continuous element-wise space and
// projects onto the hardware constraint set (granularity sharing, phase
// quantization) once at the end: projecting every gradient step would snap
// small steps back to the quantization grid and stall (the constraint set
// is discrete), while a single final projection costs only the usual
// quantization loss.
func (o *Orchestrator) optimizeConfigs(ctx context.Context, obj optimize.Objective, devs []*hwmgr.Device) optimize.Result {
	init := optimize.ZeroPhases(obj.Shape())
	res := optimize.Adam(ctx, obj, init, optimize.Options{MaxIters: o.Opts.OptIters})
	res.Phases = projectorFor(devs)(res.Phases)
	res.Loss, _ = obj.Eval(res.Phases, false)
	return res
}

// applyEntry pushes one entry's configs to the devices as a codebook write.
// Passive devices that are already fabricated are left untouched.
func (o *Orchestrator) applyEntries(devs []*hwmgr.Device, entries []PlanEntry) error {
	var firstErr error
	for _, d := range devs {
		labels := make([]string, 0, len(entries))
		cfgs := make([]surface.Config, 0, len(entries))
		for _, e := range entries {
			cfg, ok := e.Configs[d.ID]
			if !ok {
				continue
			}
			labels = append(labels, e.Label)
			cfgs = append(cfgs, cfg)
		}
		if len(cfgs) == 0 {
			continue
		}
		err := d.Drv.StoreCodebook(labels, cfgs)
		if errors.Is(err, driver.ErrFixed) {
			continue // passive device keeps its burned-in pattern
		}
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("orchestrator: device %s: %w", d.ID, err)
		}
	}
	return firstErr
}

// markRunning finalizes task state and results.
func (o *Orchestrator) markRunning(t *Task, res *Result) {
	o.mu.Lock()
	t.State = TaskRunning
	t.Result = res
	o.mu.Unlock()
}

// scheduleJoint handles solo and joint configuration multiplexing: one
// shared configuration optimized for the (weighted) sum of task losses —
// the paper's §4 "surface multitasking".
func (o *Orchestrator) scheduleJoint(ctx context.Context, g *group, strategy string) ([]*Plan, error) {
	spec := o.specFor(g.freq, g.devs)
	var terms []optimize.Objective
	var weights []float64
	evals := make([]func([][]float64) *Result, 0, len(g.tasks))
	var scheduled []*Task
	for _, t := range g.tasks {
		obj, eval, err := o.taskObjective(ctx, t, g, spec)
		if err != nil {
			o.failTask(t, err)
			continue
		}
		terms = append(terms, obj)
		weights = append(weights, o.objectiveWeight(t, obj))
		evals = append(evals, eval)
		scheduled = append(scheduled, t)
	}
	if len(terms) == 0 {
		return nil, fmt.Errorf("orchestrator: no schedulable tasks at %g Hz", g.freq)
	}
	var obj optimize.Objective
	if len(terms) == 1 {
		obj = terms[0]
	} else {
		ws, err := optimize.NewWeightedSum(terms, weights)
		if err != nil {
			return nil, err
		}
		obj = ws
	}
	res := o.optimizeConfigs(ctx, obj, g.devs)
	cfgs := optimize.PhasesToConfigs(res.Phases)

	entry := PlanEntry{Label: strategy, Share: 1, Configs: map[string]surface.Config{}}
	for i, d := range g.devs {
		entry.Configs[d.ID] = cfgs[i]
	}
	for _, t := range scheduled {
		entry.TaskIDs = append(entry.TaskIDs, t.ID)
	}
	p := &Plan{
		FreqHz:   g.freq,
		APID:     g.ap.ID,
		Surfaces: deviceIDs(g.devs),
		Strategy: strategy,
		Entries:  []PlanEntry{entry},
	}
	p.buildFrame()
	if err := o.applyEntries(g.devs, p.Entries); err != nil {
		return nil, err
	}
	for i, t := range scheduled {
		r := evals[i](res.Phases)
		r.Share = 1
		r.Surfaces = p.Surfaces
		r.Strategy = strategy
		o.markRunning(t, r)
	}
	return []*Plan{p}, nil
}

// scheduleTDM gives each task its own optimized configuration and rotates
// them as time slices weighted by priority.
func (o *Orchestrator) scheduleTDM(ctx context.Context, g *group) ([]*Plan, error) {
	spec := o.specFor(g.freq, g.devs)
	p := &Plan{
		FreqHz:   g.freq,
		APID:     g.ap.ID,
		Surfaces: deviceIDs(g.devs),
		Strategy: StrategyTDM,
	}
	var scheduled []*Task
	var evals []func([][]float64) *Result
	var phases [][][]float64
	var totalPrio float64
	for _, t := range g.tasks {
		obj, eval, err := o.taskObjective(ctx, t, g, spec)
		if err != nil {
			o.failTask(t, err)
			continue
		}
		res := o.optimizeConfigs(ctx, obj, g.devs)
		cfgs := optimize.PhasesToConfigs(res.Phases)
		entry := PlanEntry{
			Label:   fmt.Sprintf("task-%d", t.ID),
			TaskIDs: []int{t.ID},
			Share:   float64(t.Priority),
			Configs: map[string]surface.Config{},
		}
		for i, d := range g.devs {
			entry.Configs[d.ID] = cfgs[i]
		}
		p.Entries = append(p.Entries, entry)
		scheduled = append(scheduled, t)
		evals = append(evals, eval)
		phases = append(phases, res.Phases)
		totalPrio += float64(t.Priority)
	}
	if len(p.Entries) == 0 {
		return nil, fmt.Errorf("orchestrator: no schedulable tasks at %g Hz", g.freq)
	}
	p.buildFrame()
	if err := o.applyEntries(g.devs, p.Entries); err != nil {
		return nil, err
	}
	for i, t := range scheduled {
		r := evals[i](phases[i])
		r.Share = p.shareOf(i)
		r.Surfaces = p.Surfaces
		r.Strategy = StrategyTDM
		o.markRunning(t, r)
	}
	return []*Plan{p}, nil
}

// scheduleSDM partitions surfaces among tasks by proximity to the task's
// spatial target and optimizes each partition independently.
func (o *Orchestrator) scheduleSDM(ctx context.Context, g *group) ([]*Plan, error) {
	assign := o.assignSurfaces(g)
	var plans []*Plan
	var firstErr error
	for ti, t := range g.tasks {
		devs := assign[ti]
		if len(devs) == 0 {
			o.failTask(t, fmt.Errorf("orchestrator: no surface available for task %d under SDM", t.ID))
			continue
		}
		sub := &group{ap: g.ap, freq: g.freq, tasks: []*Task{t}, devs: devs}
		ps, err := o.scheduleJoint(ctx, sub, StrategySDM)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			o.failTask(t, err)
			continue
		}
		plans = append(plans, ps...)
	}
	if len(plans) == 0 && firstErr != nil {
		return nil, firstErr
	}
	return plans, nil
}

// assignSurfaces greedily gives each task its nearest unassigned surface
// (by target centroid), then distributes leftovers to the nearest task.
func (o *Orchestrator) assignSurfaces(g *group) [][]*hwmgr.Device {
	target := make([]geom.Vec3, len(g.tasks))
	for i, t := range g.tasks {
		target[i] = o.taskTarget(t)
	}
	assign := make([][]*hwmgr.Device, len(g.tasks))
	used := make([]bool, len(g.devs))
	// Tasks in priority order pick their nearest free surface.
	order := make([]int, len(g.tasks))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ta, tb := g.tasks[order[a]], g.tasks[order[b]]
		if ta.Priority != tb.Priority {
			return ta.Priority > tb.Priority
		}
		return ta.ID < tb.ID
	})
	for _, ti := range order {
		best, bestD := -1, math.Inf(1)
		for di, d := range g.devs {
			if used[di] {
				continue
			}
			if dist := d.Drv.Surface().Panel.Center().Dist(target[ti]); dist < bestD {
				best, bestD = di, dist
			}
		}
		if best >= 0 {
			assign[ti] = append(assign[ti], g.devs[best])
			used[best] = true
		}
	}
	// Leftover surfaces reinforce their nearest task.
	for di, d := range g.devs {
		if used[di] {
			continue
		}
		best, bestD := 0, math.Inf(1)
		for ti := range g.tasks {
			if dist := d.Drv.Surface().Panel.Center().Dist(target[ti]); dist < bestD {
				best, bestD = ti, dist
			}
		}
		assign[best] = append(assign[best], d)
	}
	return assign
}

// taskTarget returns a task's spatial focus for SDM assignment.
func (o *Orchestrator) taskTarget(t *Task) geom.Vec3 {
	switch g := t.Goal.(type) {
	case LinkGoal:
		return g.Pos
	case CoverageGoal:
		if r, err := o.Scene.Region(g.Region); err == nil {
			return r.Box.Center()
		}
	case SensingGoal:
		if r, err := o.Scene.Region(g.Region); err == nil {
			return r.Box.Center()
		}
	case PowerGoal:
		return g.Pos
	case SecurityGoal:
		return g.UserPos
	}
	return geom.Vec3{}
}

// objectiveWeight normalizes task losses so a plain sum is balanced: the
// coverage/link losses scale with location count, so they are divided by
// it; sensing gets the configured weight.
func (o *Orchestrator) objectiveWeight(t *Task, obj optimize.Objective) float64 {
	switch t.Kind {
	case ServiceCoverage, ServiceLink:
		if c, ok := obj.(*optimize.CoverageObjective); ok && len(c.Channels) > 0 {
			return 1 / float64(len(c.Channels))
		}
	case ServiceSensing:
		return o.Opts.SensingWeight
	}
	return 1
}
