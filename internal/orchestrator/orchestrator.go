package orchestrator

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"surfos/internal/engine"
	"surfos/internal/hwmgr"
	"surfos/internal/metrics"
	"surfos/internal/scene"
	"surfos/internal/telemetry"
)

// Options tunes the orchestrator. Zero values select defaults.
type Options struct {
	// Policy selects the multiplexing strategy (default PolicyAuto).
	Policy MultiplexPolicy
	// OptIters bounds the configuration optimizer (default 150).
	OptIters int
	// OptWorkers caps the engine workers one optimizer run may borrow:
	// 0 means the engine's full width, 1 forces serial sweeps (the
	// engine.Engine convention). Parallel runs stay bit-identical to
	// serial ones, so this is purely a resource-contention knob.
	OptWorkers int
	// GridStep is the default coverage evaluation spacing in meters (0.5).
	GridStep float64
	// SensingGridStep is the sensing training grid spacing (1.0).
	SensingGridStep float64
	// SensingBins is the AoA grid size (default 61).
	SensingBins int
	// SensingSubcarriers is the wideband sounding tone count (default 8).
	SensingSubcarriers int
	// SensingBandwidth is the sounding bandwidth in Hz (default 1.8 GHz).
	SensingBandwidth float64
	// SensingWeight scales the localization term in joint optimization
	// (default 1.0, the paper's plain sum).
	SensingWeight float64
	// Cascade enables surface-to-surface interaction modeling when a group
	// has multiple surfaces.
	Cascade bool
	// ReflOrder is the environment reflection order (default 1).
	ReflOrder int
	// WarmStart seeds each optimizer run from the previous committed
	// plan's configurations (same frequency, device set, and plan-entry
	// label) instead of from scratch — the incremental re-plan path for
	// churn workloads. Off by default: warm-started runs converge to
	// (slightly) different optima than cold ones, so enabling it changes
	// plan bytes.
	WarmStart bool
	// DisableSharding forces a single monolithic scheduler shard holding
	// every surface, regardless of the scene's interference-domain
	// structure. For benchmarks and A/B comparison; single-domain scenes
	// behave identically either way.
	DisableSharding bool
	// MinCouplingDB is the interference-domain reachability threshold in
	// power dB (0 selects engine.DefaultMinCouplingDB, -40).
	MinCouplingDB float64
	// DomainProbeStep is the partition's region probe spacing in meters
	// (0 selects engine.DefaultProbeStep, 1.0).
	DomainProbeStep float64
	// Engine is the shared channel-evaluation engine. Nil selects the
	// process-wide engine.Default(), maximizing ray-trace cache reuse with
	// the deployment planner and experiment rigs.
	Engine *engine.Engine
}

func (o Options) withDefaults() Options {
	if o.OptIters == 0 {
		o.OptIters = 150
	}
	if o.GridStep == 0 {
		o.GridStep = 0.5
	}
	if o.SensingGridStep == 0 {
		o.SensingGridStep = 1.0
	}
	if o.SensingBins == 0 {
		o.SensingBins = 61
	}
	if o.SensingSubcarriers == 0 {
		o.SensingSubcarriers = 8
	}
	if o.SensingBandwidth == 0 {
		o.SensingBandwidth = 1.8e9
	}
	if o.SensingWeight == 0 {
		o.SensingWeight = 1.0
	}
	if o.ReflOrder == 0 {
		o.ReflOrder = 1
	}
	return o
}

// Orchestrator is the central control plane instance for one environment.
type Orchestrator struct {
	Scene *scene.Scene
	HW    *hwmgr.Manager
	Opts  Options

	eng *engine.Engine

	// geoMu serializes scene geometry edits (EditScene, write lock)
	// against the orchestrator's scene readers (reconciles, routing,
	// partition rebuilds — read lock). It is always acquired before mu
	// and never while holding it.
	geoMu sync.RWMutex

	mu     sync.Mutex
	tasks  map[int]*Task
	nextID int
	now    time.Time
	events *telemetry.EventBus

	// Interference-domain sharding (shard.go). shards is rebuilt lazily
	// whenever the scene revision or the device set changes; partRev and
	// partSig record what the current build was computed against.
	shards  []*shard
	shardOf map[string]int // device ID -> domain index
	partRev uint64
	partSig string

	// Admission control (admission.go).
	quotas   map[string]TenantQuota
	admitMax int
	rejected map[string]uint64

	// latHist, when set via RegisterMetrics, observes every per-shard
	// reconcile duration (metrics.go).
	latHist *metrics.Histogram
	// sweepHist observes every optimizer run's wall-clock duration;
	// optRuns/optEvals/optWasted accumulate run and evaluation counts.
	// Shards optimize concurrently, so the counters are atomic.
	sweepHist *metrics.Histogram
	optRuns   atomic.Uint64
	optEvals  atomic.Uint64
	optWasted atomic.Uint64
}

// New builds an orchestrator over a scene and hardware inventory.
func New(sc *scene.Scene, hw *hwmgr.Manager, opts Options) (*Orchestrator, error) {
	if sc == nil || hw == nil {
		return nil, errors.New("orchestrator: needs a scene and a hardware manager")
	}
	opts = opts.withDefaults()
	eng := opts.Engine
	if eng == nil {
		eng = engine.Default()
	}
	return &Orchestrator{
		Scene:  sc,
		HW:     hw,
		Opts:   opts,
		eng:    eng,
		tasks:  make(map[int]*Task),
		nextID: 1,
		now:    time.Unix(0, 0),
	}, nil
}

// Engine returns the channel-evaluation engine this orchestrator computes
// through.
func (o *Orchestrator) Engine() *engine.Engine { return o.eng }

// --- service request APIs (paper §3.2, Figure 6) ---
//
// Every service call takes a context: submission itself is cheap, but the
// ctx is checked up front so callers with expired deadlines fail fast, and
// the same ctx convention carries through Reconcile into the optimizer
// loops. Each convenience API delegates to the generic Submit, which
// dispatches through the service registry.

// ctxErr tolerates nil contexts from legacy callers.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// EnhanceLink requests connectivity enhancement for one endpoint.
func (o *Orchestrator) EnhanceLink(ctx context.Context, g LinkGoal, priority int) (*Task, error) {
	return o.Submit(ctx, ServiceLink, g, priority)
}

// OptimizeCoverage requests region-wide coverage.
func (o *Orchestrator) OptimizeCoverage(ctx context.Context, g CoverageGoal, priority int) (*Task, error) {
	return o.Submit(ctx, ServiceCoverage, g, priority)
}

// EnableSensing requests localization service over a region.
func (o *Orchestrator) EnableSensing(ctx context.Context, g SensingGoal, priority int) (*Task, error) {
	return o.Submit(ctx, ServiceSensing, g, priority)
}

// InitPowering requests wireless power delivery.
func (o *Orchestrator) InitPowering(ctx context.Context, g PowerGoal, priority int) (*Task, error) {
	return o.Submit(ctx, ServicePowering, g, priority)
}

// SecureLink requests eavesdropper suppression for an endpoint.
func (o *Orchestrator) SecureLink(ctx context.Context, g SecurityGoal, priority int) (*Task, error) {
	return o.Submit(ctx, ServiceSecurity, g, priority)
}

// submit files a validated goal into the task table and emits the
// Submitted lifecycle event. The returned task is a snapshot. Admission
// control runs first — a rejected submission never enters the table —
// and the accepted task is routed to its interference-domain shard
// before the event fires, so the submitted event carries the domain.
func (o *Orchestrator) submit(svc Service, tenant string, goal any, priority int, duration time.Duration) (*Task, error) {
	if priority <= 0 {
		priority = 1
	}
	if tenant == "" {
		tenant = DefaultTenant
	}
	o.geoMu.RLock()
	defer o.geoMu.RUnlock()
	o.mu.Lock()
	defer o.mu.Unlock()
	if err := o.admitLocked(tenant, priority); err != nil {
		return nil, err
	}
	o.ensureShardsLocked()
	t := &Task{
		ID:       o.nextID,
		Kind:     svc.Kind(),
		Priority: priority,
		State:    TaskPending,
		Created:  o.now,
		Goal:     goal,
		Tenant:   tenant,
		svc:      svc,
	}
	if duration > 0 {
		t.Deadline = o.now.Add(duration)
	}
	t.Domain = o.routeLocked(t, o.apFreqs())
	o.nextID++
	o.tasks[t.ID] = t
	o.emitLocked(t, telemetry.TaskSubmitted)
	return t.clone(), nil
}

// Task returns a snapshot of a task by ID. Live task fields mutate under
// the orchestrator lock during Tick/Reconcile, so accessors always copy.
func (o *Orchestrator) Task(id int) (*Task, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	t, ok := o.tasks[id]
	if !ok {
		return nil, fmt.Errorf("%w %d", ErrUnknownTask, id)
	}
	return t.clone(), nil
}

// Tasks returns snapshots of all tasks sorted by ID.
func (o *Orchestrator) Tasks() []*Task {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]*Task, 0, len(o.tasks))
	for _, t := range o.tasks {
		out = append(out, t.clone())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// EndTask terminates a task, emits the lifecycle event at the transition,
// and eagerly releases its plan entries and codebook claims; remaining
// co-scheduled entries are re-applied to the devices immediately rather
// than waiting for the next Reconcile.
func (o *Orchestrator) EndTask(id int) error {
	o.mu.Lock()
	t, ok := o.tasks[id]
	if !ok {
		o.mu.Unlock()
		return fmt.Errorf("%w %d", ErrUnknownTask, id)
	}
	if t.State == TaskDone || t.State == TaskFailed {
		o.mu.Unlock()
		return nil
	}
	t.State = TaskDone
	o.emitLocked(t, telemetry.TaskDone)
	changed := o.releaseTaskLocked(id)
	o.mu.Unlock()

	// Re-apply shrunken codebooks outside the lock: device drivers have
	// their own locking and the writes may be slow (remote agents).
	for _, p := range changed {
		devs := make([]*hwmgr.Device, 0, len(p.Surfaces))
		for _, sid := range p.Surfaces {
			if d, err := o.HW.Surface(sid); err == nil {
				devs = append(devs, d)
			}
		}
		_ = o.applyEntries(devs, p.Entries)
	}
	return nil
}

// releaseTaskLocked prunes a task from the committed plans: entries
// serving only this task are dropped (plans left empty dissolve, freeing
// their surfaces), shared joint entries lose the task from their roster.
// Only the owning shard's plans are touched — plan-entry release never
// crosses shards. Returns the plans whose entry set shrank and need
// re-application; the caller holds o.mu.
func (o *Orchestrator) releaseTaskLocked(id int) []*Plan {
	t, ok := o.tasks[id]
	if !ok {
		return nil
	}
	sh := o.shardByDomainLocked(t.Domain)
	if sh == nil {
		// No shard structure yet (task never reconciled): nothing to prune.
		return nil
	}
	var keep, changed []*Plan
	for _, p := range sh.plans {
		entries := p.Entries[:0:0]
		shrank := false
		for _, e := range p.Entries {
			ids := e.TaskIDs[:0:0]
			for _, tid := range e.TaskIDs {
				if tid != id {
					ids = append(ids, tid)
				}
			}
			if len(ids) == len(e.TaskIDs) {
				entries = append(entries, e)
				continue
			}
			if len(ids) == 0 {
				shrank = true
				continue // entry served only the ended task
			}
			e.TaskIDs = ids
			entries = append(entries, e)
		}
		if len(entries) == 0 {
			continue // plan dissolved, surfaces freed
		}
		if shrank {
			p.Entries = entries
			p.buildFrame()
			changed = append(changed, p)
		}
		keep = append(keep, p)
	}
	sh.plans = keep
	return changed
}

// SetIdle parks a running task without destroying it; idle tasks release
// hardware until resumed.
func (o *Orchestrator) SetIdle(id int, idle bool) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	t, ok := o.tasks[id]
	if !ok {
		return fmt.Errorf("%w %d", ErrUnknownTask, id)
	}
	switch {
	case idle && (t.State == TaskRunning || t.State == TaskPending):
		t.State = TaskIdle
		o.emitLocked(t, telemetry.TaskIdle)
	case !idle && t.State == TaskIdle:
		t.State = TaskPending
		o.emitLocked(t, telemetry.TaskResumed)
	}
	return nil
}

// Plans returns the current scheduling plans, concatenated across shards
// in domain order (deterministic merge).
func (o *Orchestrator) Plans() []*Plan {
	o.mu.Lock()
	defer o.mu.Unlock()
	var out []*Plan
	for _, sh := range o.shards {
		out = append(out, sh.plans...)
	}
	return out
}

// Now returns the orchestrator's virtual clock.
func (o *Orchestrator) Now() time.Time {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.now
}

// Tick advances the virtual clock: deadline-expired tasks complete, TDM
// frames rotate device codebook selections, and the hardware plan is
// re-reconciled (under ctx) when the active task set changed.
func (o *Orchestrator) Tick(ctx context.Context, dt time.Duration) error {
	if err := ctxErr(ctx); err != nil {
		return err
	}
	o.mu.Lock()
	o.now = o.now.Add(dt)
	// Deadline expiry is routed to the owning shards: an expired task in
	// one room re-plans that room, not the building.
	expired := make(map[int]struct{})
	for _, t := range o.tasks {
		if t.active() && !t.Deadline.IsZero() && !o.now.Before(t.Deadline) {
			t.State = TaskDone
			o.emitLocked(t, telemetry.TaskDone)
			expired[t.Domain] = struct{}{}
		}
	}
	changed := len(expired) > 0
	// Rotate TDM selections while still holding the lock: plan rotation
	// state is shared, and Tick may be called from concurrent northbound
	// sessions. Device selection uses the drivers' own locks.
	type sel struct {
		id  string
		idx int
	}
	var sels []sel
	if !changed {
		for _, sh := range o.shards {
			for _, p := range sh.plans {
				if len(p.Entries) < 2 {
					continue
				}
				if idx := p.nextSlot(); idx >= 0 {
					for _, id := range p.Surfaces {
						sels = append(sels, sel{id: id, idx: idx})
					}
				}
			}
		}
	}
	o.mu.Unlock()

	if changed {
		domains := make([]int, 0, len(expired))
		for d := range expired {
			domains = append(domains, d)
		}
		sort.Ints(domains)
		return o.reconcileDomains(ctx, domains)
	}
	for _, sl := range sels {
		dev, err := o.HW.Surface(sl.id)
		if err != nil {
			continue
		}
		if dev.Drv.CodebookLen() > sl.idx {
			// TDM rotation doubles as a cheap heartbeat: selection
			// failures feed the health tracker, whose transitions drive
			// the self-healing re-plan.
			if err := dev.Drv.Select(sl.idx); err != nil {
				o.HW.RecordFailure(dev.ID, err)
			} else {
				o.HW.RecordSuccess(dev.ID)
			}
		}
	}
	return nil
}
