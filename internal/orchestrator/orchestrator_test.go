package orchestrator

import (
	"context"
	"math"
	"testing"
	"testing/quick"
	"time"

	"surfos/internal/driver"
	"surfos/internal/em"
	"surfos/internal/geom"
	"surfos/internal/hwmgr"
	"surfos/internal/rfsim"
	"surfos/internal/scene"
	"surfos/internal/surface"
)

// rig is an apartment with an AP and surfaces at the standard mounts.
type rig struct {
	apt *scene.Apartment
	hw  *hwmgr.Manager
	o   *Orchestrator
}

func fastOpts() Options {
	return Options{
		OptIters:           60,
		GridStep:           1.2,
		SensingGridStep:    2.0,
		SensingBins:        15,
		SensingSubcarriers: 4,
	}
}

// addSurface mounts a model at a named apartment mount.
func addSurface(t *testing.T, apt *scene.Apartment, hw *hwmgr.Manager, id, model, mount string, rows, cols int) {
	t.Helper()
	spec, err := driver.Lookup(model)
	if err != nil {
		t.Fatal(err)
	}
	pitch := em.Wavelength(spec.FreqLowHz+(spec.FreqHighHz-spec.FreqLowHz)/2) / 2
	m := apt.Mounts[mount]
	panel := m.Panel(float64(cols)*pitch+0.02, float64(rows)*pitch+0.02)
	mode := spec.OpMode
	if mode == surface.Transflective {
		mode = surface.Reflective
	}
	s, err := surface.New(id, panel, surface.Layout{Rows: rows, Cols: cols, PitchU: pitch, PitchV: pitch}, mode, nil)
	if err != nil {
		t.Fatal(err)
	}
	d, err := driver.New(spec, s)
	if err != nil {
		t.Fatal(err)
	}
	if err := hw.AddSurface(id, mount, d); err != nil {
		t.Fatal(err)
	}
}

func newRig(t *testing.T, opts Options, models ...string) *rig {
	t.Helper()
	apt := scene.NewApartment()
	hw := hwmgr.New()
	mounts := []string{scene.MountEastWall, scene.MountNorthWall}
	for i, model := range models {
		addSurface(t, apt, hw, model+"-"+mounts[i%2], model, mounts[i%2], 24, 24)
	}
	if err := hw.AddAP(&hwmgr.AccessPoint{
		ID: "ap0", Pos: apt.AP, FreqHz: 24e9,
		Budget:   rfsim.DefaultBudget(),
		Antennas: 4,
	}); err != nil {
		t.Fatal(err)
	}
	o, err := New(apt.Scene, hw, opts)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{apt: apt, hw: hw, o: o}
}

func bedroomPoint() geom.Vec3 { return geom.V(2.5, 5.5, scene.EvalHeight) }

func TestSubmitValidation(t *testing.T) {
	r := newRig(t, fastOpts(), driver.ModelNRSurface)
	if _, err := r.o.EnhanceLink(context.Background(), LinkGoal{}, 1); err == nil {
		t.Error("empty endpoint accepted")
	}
	if _, err := r.o.OptimizeCoverage(context.Background(), CoverageGoal{Region: "nope"}, 1); err == nil {
		t.Error("unknown region accepted")
	}
	if _, err := r.o.EnableSensing(context.Background(), SensingGoal{Region: "nope"}, 1); err == nil {
		t.Error("unknown sensing region accepted")
	}
	if _, err := r.o.InitPowering(context.Background(), PowerGoal{}, 1); err == nil {
		t.Error("empty power device accepted")
	}
	if _, err := r.o.SecureLink(context.Background(), SecurityGoal{}, 1); err == nil {
		t.Error("empty security endpoint accepted")
	}
	if _, err := New(nil, nil, Options{}); err == nil {
		t.Error("nil scene/hw accepted")
	}
}

func TestSoloLinkTask(t *testing.T) {
	r := newRig(t, fastOpts(), driver.ModelNRSurface)
	task, err := r.o.EnhanceLink(context.Background(), LinkGoal{Endpoint: "laptop", Pos: bedroomPoint(), MinSNRdB: 0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.o.Reconcile(context.Background()); err != nil {
		t.Fatal(err)
	}
	got, _ := r.o.Task(task.ID)
	if got.State != TaskRunning {
		t.Fatalf("task state = %v (err %v)", got.State, got.Err)
	}
	if got.Result == nil || got.Result.MetricName != "snr_db" {
		t.Fatalf("result = %+v", got.Result)
	}
	if got.Result.Strategy != StrategySolo || got.Result.Share != 1 {
		t.Errorf("solo result: %+v", got.Result)
	}
	// The surface must now hold an active configuration.
	dev, _ := r.o.HW.Surface(driver.ModelNRSurface + "-" + scene.MountEastWall)
	if _, _, ok := dev.Drv.Active(); !ok {
		t.Error("device has no active config after reconcile")
	}
	// Optimized SNR must comfortably beat the all-zero (mirror) config.
	plans := r.o.Plans()
	if len(plans) != 1 || plans[0].Strategy != StrategySolo {
		t.Fatalf("plans = %+v", plans)
	}
}

func TestLinkBeatsOffConfig(t *testing.T) {
	r := newRig(t, fastOpts(), driver.ModelNRSurface)
	pos := bedroomPoint()
	task, _ := r.o.EnhanceLink(context.Background(), LinkGoal{Endpoint: "e", Pos: pos}, 1)
	if err := r.o.Reconcile(context.Background()); err != nil {
		t.Fatal(err)
	}
	got, _ := r.o.Task(task.ID)

	// Baseline: same sim, off config.
	dev, _ := r.o.HW.Surface(driver.ModelNRSurface + "-" + scene.MountEastWall)
	sim, err := rfsim.New(r.apt.Scene, 24e9, dev.Drv.Surface())
	if err != nil {
		t.Fatal(err)
	}
	ap, _ := r.o.HW.AP("ap0")
	h, err := sim.NewTx(ap.Pos).Channel(pos).Eval([]surface.Config{dev.Drv.Surface().Off()})
	if err != nil {
		t.Fatal(err)
	}
	off := ap.Budget.SNRdB(h)
	// Reference: the classic steering codebook entry, projected onto the
	// same hardware constraints (column-wise, 2-bit). The optimizer must
	// at least match it, and both must clearly beat the mirror config.
	steer := dev.Drv.Project(dev.Drv.Surface().SteeringConfig(ap.Pos, pos, 24e9))
	hs, err := sim.NewTx(ap.Pos).Channel(pos).Eval([]surface.Config{steer})
	if err != nil {
		t.Fatal(err)
	}
	ref := ap.Budget.SNRdB(hs)
	if got.Result.Metric < ref-1 {
		t.Errorf("optimized SNR %.1f dB below projected steering %.1f dB", got.Result.Metric, ref)
	}
	if got.Result.Metric < off+3 {
		t.Errorf("optimized SNR %.1f dB not above off-config %.1f dB", got.Result.Metric, off)
	}
}

func TestTDMSharesFollowPriority(t *testing.T) {
	opts := fastOpts()
	opts.Policy = PolicyTDM
	r := newRig(t, opts, driver.ModelNRSurface)
	t1, _ := r.o.EnhanceLink(context.Background(), LinkGoal{Endpoint: "a", Pos: geom.V(1.5, 5.0, 1.2)}, 2)
	t2, _ := r.o.EnhanceLink(context.Background(), LinkGoal{Endpoint: "b", Pos: geom.V(5.5, 6.0, 1.2)}, 1)
	if err := r.o.Reconcile(context.Background()); err != nil {
		t.Fatal(err)
	}
	g1, _ := r.o.Task(t1.ID)
	g2, _ := r.o.Task(t2.ID)
	if g1.State != TaskRunning || g2.State != TaskRunning {
		t.Fatalf("states: %v %v", g1.State, g2.State)
	}
	if g1.Result.Strategy != StrategyTDM {
		t.Errorf("strategy = %v", g1.Result.Strategy)
	}
	// Priority 2 task gets roughly twice the share.
	if g1.Result.Share <= g2.Result.Share {
		t.Errorf("shares: high-prio %v <= low-prio %v", g1.Result.Share, g2.Result.Share)
	}
	if math.Abs(g1.Result.Share+g2.Result.Share-1) > 1e-9 {
		t.Errorf("shares do not sum to 1: %v + %v", g1.Result.Share, g2.Result.Share)
	}
	// The device stores one codebook entry per task.
	dev, _ := r.o.HW.Surface(driver.ModelNRSurface + "-" + scene.MountEastWall)
	if dev.Drv.CodebookLen() != 2 {
		t.Errorf("codebook = %d entries", dev.Drv.CodebookLen())
	}
}

func TestTickRotatesTDM(t *testing.T) {
	opts := fastOpts()
	opts.Policy = PolicyTDM
	r := newRig(t, opts, driver.ModelNRSurface)
	r.o.EnhanceLink(context.Background(), LinkGoal{Endpoint: "a", Pos: geom.V(1.5, 5.0, 1.2)}, 1)
	r.o.EnhanceLink(context.Background(), LinkGoal{Endpoint: "b", Pos: geom.V(5.5, 6.0, 1.2)}, 1)
	if err := r.o.Reconcile(context.Background()); err != nil {
		t.Fatal(err)
	}
	dev, _ := r.o.HW.Surface(driver.ModelNRSurface + "-" + scene.MountEastWall)
	seen := map[string]bool{}
	for i := 0; i < 6; i++ {
		if err := r.o.Tick(context.Background(), 10*time.Millisecond); err != nil {
			t.Fatal(err)
		}
		_, label, ok := dev.Drv.Active()
		if !ok {
			t.Fatal("no active config during rotation")
		}
		seen[label] = true
	}
	if len(seen) < 2 {
		t.Errorf("TDM rotation never switched entries: %v", seen)
	}
}

func TestJointMultitasking(t *testing.T) {
	opts := fastOpts()
	opts.Policy = PolicyJoint
	r := newRig(t, opts, driver.ModelNRSurface)
	tc, _ := r.o.OptimizeCoverage(context.Background(), CoverageGoal{Region: scene.RegionTargetRoom}, 1)
	tp, _ := r.o.InitPowering(context.Background(), PowerGoal{Device: "tag0", Pos: geom.V(5.0, 5.0, 1.2)}, 1)
	if err := r.o.Reconcile(context.Background()); err != nil {
		t.Fatal(err)
	}
	gc, _ := r.o.Task(tc.ID)
	gp, _ := r.o.Task(tp.ID)
	if gc.State != TaskRunning || gp.State != TaskRunning {
		t.Fatalf("states: %v(%v) %v(%v)", gc.State, gc.Err, gp.State, gp.Err)
	}
	if gc.Result.Strategy != StrategyJoint || gc.Result.Share != 1 || gp.Result.Share != 1 {
		t.Errorf("joint results: %+v %+v", gc.Result, gp.Result)
	}
	plans := r.o.Plans()
	if len(plans) != 1 || len(plans[0].Entries) != 1 {
		t.Fatalf("joint should produce one single-entry plan: %+v", plans)
	}
	if len(plans[0].Entries[0].TaskIDs) != 2 {
		t.Errorf("entry tasks = %v", plans[0].Entries[0].TaskIDs)
	}
}

func TestSDMAssignsNearestSurface(t *testing.T) {
	opts := fastOpts()
	opts.Policy = PolicySDM
	r := newRig(t, opts, driver.ModelNRSurface, driver.ModelNRSurface)
	// Task A near the east wall, task B near the north wall.
	ta, _ := r.o.EnhanceLink(context.Background(), LinkGoal{Endpoint: "a", Pos: geom.V(6.5, 5.5, 1.2)}, 1)
	tb, _ := r.o.EnhanceLink(context.Background(), LinkGoal{Endpoint: "b", Pos: geom.V(2.2, 6.5, 1.2)}, 1)
	if err := r.o.Reconcile(context.Background()); err != nil {
		t.Fatal(err)
	}
	ga, _ := r.o.Task(ta.ID)
	gb, _ := r.o.Task(tb.ID)
	if ga.State != TaskRunning || gb.State != TaskRunning {
		t.Fatalf("states: %v %v", ga.State, gb.State)
	}
	if len(ga.Result.Surfaces) != 1 || len(gb.Result.Surfaces) != 1 {
		t.Fatalf("SDM surfaces: %v %v", ga.Result.Surfaces, gb.Result.Surfaces)
	}
	eastID := driver.ModelNRSurface + "-" + scene.MountEastWall
	northID := driver.ModelNRSurface + "-" + scene.MountNorthWall
	if ga.Result.Surfaces[0] != eastID {
		t.Errorf("task a got %v, want east wall", ga.Result.Surfaces)
	}
	if gb.Result.Surfaces[0] != northID {
		t.Errorf("task b got %v, want north wall", gb.Result.Surfaces)
	}
	if ga.Result.Strategy != StrategySDM {
		t.Errorf("strategy = %v", ga.Result.Strategy)
	}
}

func TestAutoPolicyPassiveForcesJoint(t *testing.T) {
	opts := fastOpts()
	r := newRig(t, opts, driver.ModelNRSurface)
	// Add a passive 24 GHz surface (PMSat, transmissive band 20-30 GHz) on
	// the north mount.
	addSurface(t, r.apt, r.hw, "passive0", driver.ModelPMSat, scene.MountNorthWall, 24, 24)
	r.o.EnhanceLink(context.Background(), LinkGoal{Endpoint: "a", Pos: geom.V(1.5, 5.0, 1.2)}, 1)
	r.o.EnhanceLink(context.Background(), LinkGoal{Endpoint: "b", Pos: geom.V(5.5, 6.0, 1.2)}, 1)
	r.o.InitPowering(context.Background(), PowerGoal{Device: "tag", Pos: geom.V(4.0, 5.0, 1.2)}, 1)
	if err := r.o.Reconcile(context.Background()); err != nil {
		t.Fatal(err)
	}
	plans := r.o.Plans()
	if len(plans) != 1 || plans[0].Strategy != StrategyJoint {
		t.Fatalf("passive hardware should force joint multiplexing: %+v", plans)
	}
}

func TestSensingTaskLifecycle(t *testing.T) {
	r := newRig(t, fastOpts(), driver.ModelNRSurface)
	task, err := r.o.EnableSensing(context.Background(), SensingGoal{
		Region: scene.RegionTargetRoom, Type: "tracking", Duration: time.Hour,
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.o.Reconcile(context.Background()); err != nil {
		t.Fatal(err)
	}
	got, _ := r.o.Task(task.ID)
	if got.State != TaskRunning {
		t.Fatalf("state = %v err=%v", got.State, got.Err)
	}
	if got.Result.MetricName != "mean_loc_err_m" || math.IsNaN(got.Result.Metric) {
		t.Errorf("sensing result: %+v", got.Result)
	}
	// Advance past the deadline: the task completes and resources free.
	if err := r.o.Tick(context.Background(), 2*time.Hour); err != nil {
		t.Fatal(err)
	}
	got, _ = r.o.Task(task.ID)
	if got.State != TaskDone {
		t.Errorf("state after expiry = %v", got.State)
	}
	if plans := r.o.Plans(); len(plans) != 0 {
		t.Errorf("plans not released after task expiry: %+v", plans)
	}
}

func TestIdleReleasesResources(t *testing.T) {
	r := newRig(t, fastOpts(), driver.ModelNRSurface)
	task, _ := r.o.EnhanceLink(context.Background(), LinkGoal{Endpoint: "a", Pos: bedroomPoint()}, 1)
	if err := r.o.Reconcile(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(r.o.Plans()) != 1 {
		t.Fatal("expected one plan")
	}
	if err := r.o.SetIdle(task.ID, true); err != nil {
		t.Fatal(err)
	}
	if err := r.o.Reconcile(context.Background()); err != nil {
		t.Fatal(err)
	}
	if plans := r.o.Plans(); len(plans) != 0 {
		t.Errorf("idle task still holds plans: %+v", plans)
	}
	// Resume.
	if err := r.o.SetIdle(task.ID, false); err != nil {
		t.Fatal(err)
	}
	if err := r.o.Reconcile(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(r.o.Plans()) != 1 {
		t.Error("resumed task got no plan")
	}
}

func TestEndTaskReleasesPlan(t *testing.T) {
	r := newRig(t, fastOpts(), driver.ModelNRSurface)
	task, _ := r.o.EnhanceLink(context.Background(), LinkGoal{Endpoint: "a", Pos: bedroomPoint()}, 1)
	if err := r.o.Reconcile(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := r.o.EndTask(task.ID); err != nil {
		t.Fatal(err)
	}
	if err := r.o.Reconcile(context.Background()); err != nil {
		t.Fatal(err)
	}
	if plans := r.o.Plans(); len(plans) != 0 {
		t.Errorf("ended task still scheduled: %+v", plans)
	}
	if err := r.o.EndTask(999); err == nil {
		t.Error("unknown task end accepted")
	}
}

func TestNoAPFails(t *testing.T) {
	apt := scene.NewApartment()
	hw := hwmgr.New()
	o, _ := New(apt.Scene, hw, fastOpts())
	o.EnhanceLink(context.Background(), LinkGoal{Endpoint: "a", Pos: bedroomPoint()}, 1)
	if err := o.Reconcile(context.Background()); err == nil {
		t.Error("reconcile without APs should fail")
	}
}

func TestNoSurfaceForBandFailsTask(t *testing.T) {
	r := newRig(t, fastOpts(), driver.ModelNRSurface)
	// Ask for 60 GHz: the NR-Surface cannot serve it and no AP carries it.
	task, _ := r.o.EnhanceLink(context.Background(), LinkGoal{Endpoint: "a", Pos: bedroomPoint(), FreqHz: 60e9}, 1)
	_ = r.o.Reconcile(context.Background())
	got, _ := r.o.Task(task.ID)
	if got.State != TaskFailed {
		t.Errorf("state = %v, want failed", got.State)
	}
}

func TestSecurityTask(t *testing.T) {
	r := newRig(t, fastOpts(), driver.ModelNRSurface)
	task, err := r.o.SecureLink(context.Background(), SecurityGoal{
		Endpoint: "laptop",
		UserPos:  geom.V(2.5, 5.5, 1.2),
		EvePos:   geom.V(5.5, 4.5, 1.2),
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.o.Reconcile(context.Background()); err != nil {
		t.Fatal(err)
	}
	got, _ := r.o.Task(task.ID)
	if got.State != TaskRunning {
		t.Fatalf("state = %v err=%v", got.State, got.Err)
	}
	if got.Result.MetricName != "user_eve_snr_gap_db" {
		t.Errorf("result = %+v", got.Result)
	}
	// Security optimization should improve the user-eve gap well beyond the
	// unconfigured surface (the surface cannot cancel the eavesdropper's
	// environment paths, so the absolute gap depends on geometry; the
	// service's job is shifting the balance).
	dev, _ := r.o.HW.Surface(driver.ModelNRSurface + "-" + scene.MountEastWall)
	sim, err := rfsim.New(r.apt.Scene, 24e9, dev.Drv.Surface())
	if err != nil {
		t.Fatal(err)
	}
	ap, _ := r.o.HW.AP("ap0")
	tc := sim.NewTx(ap.Pos)
	off := []surface.Config{dev.Drv.Surface().Off()}
	hu, _ := tc.Channel(geom.V(2.5, 5.5, 1.2)).Eval(off)
	he, _ := tc.Channel(geom.V(5.5, 4.5, 1.2)).Eval(off)
	baseGap := ap.Budget.SNRdB(hu) - ap.Budget.SNRdB(he)
	if got.Result.Metric < baseGap+5 {
		t.Errorf("optimized gap %.1f dB not >> baseline %.1f dB", got.Result.Metric, baseGap)
	}
}

func TestTaskAndStateStrings(t *testing.T) {
	if ServiceLink.String() != "link" || ServiceSensing.String() != "sensing" {
		t.Error("service names wrong")
	}
	if TaskPending.String() != "pending" || TaskFailed.String() != "failed" {
		t.Error("state names wrong")
	}
	if ServiceKind(99).String() == "" || TaskState(99).String() == "" {
		t.Error("unknown values should stringify")
	}
	if PolicyAuto.String() != "auto" || PolicyJoint.String() != "joint" {
		t.Error("policy names wrong")
	}
}

func TestPlanFrameApportionment(t *testing.T) {
	p := &Plan{Entries: []PlanEntry{{Share: 2}, {Share: 1}}}
	p.buildFrame()
	if len(p.frame) != frameSlots {
		t.Fatalf("frame = %v", p.frame)
	}
	if math.Abs(p.shareOf(0)-2.0/3) > 0.1 || math.Abs(p.shareOf(1)-1.0/3) > 0.1 {
		t.Errorf("shares: %v %v", p.shareOf(0), p.shareOf(1))
	}
	// Rotation covers both entries.
	seen := map[int]bool{}
	for i := 0; i < frameSlots; i++ {
		seen[p.nextSlot()] = true
	}
	if !seen[0] || !seen[1] {
		t.Errorf("rotation missed entries: %v", seen)
	}
	// Single entry short-circuits.
	p1 := &Plan{Entries: []PlanEntry{{Share: 1}}}
	p1.buildFrame()
	if p1.nextSlot() != 0 {
		t.Error("single-entry frame broken")
	}
	// Empty plan.
	p0 := &Plan{}
	p0.buildFrame()
	if p0.nextSlot() != -1 {
		t.Error("empty frame should return -1")
	}
	if p0.shareOf(0) != 0 {
		t.Error("empty shareOf should be 0")
	}
}

func TestPlanFrameProperties(t *testing.T) {
	// Property: for any positive share vector, the frame has exactly
	// frameSlots entries, every entry with positive share appears, and
	// realized shares sum to 1.
	f := func(raw []uint8) bool {
		if len(raw) == 0 || len(raw) > 8 {
			return true
		}
		p := &Plan{}
		for _, r := range raw {
			p.Entries = append(p.Entries, PlanEntry{Share: float64(r%9) + 1})
		}
		p.buildFrame()
		if len(p.Entries) == 1 {
			return len(p.frame) == 1
		}
		if len(p.frame) != frameSlots {
			return false
		}
		var total float64
		seen := make([]bool, len(p.Entries))
		for _, idx := range p.frame {
			if idx < 0 || idx >= len(p.Entries) {
				return false
			}
			seen[idx] = true
		}
		for i := range p.Entries {
			total += p.shareOf(i)
		}
		if math.Abs(total-1) > 1e-9 {
			return false
		}
		// Entries with the max share always appear.
		maxShare := 0.0
		for _, e := range p.Entries {
			if e.Share > maxShare {
				maxShare = e.Share
			}
		}
		for i, e := range p.Entries {
			if e.Share == maxShare && !seen[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestReconcileSurvivesPrefabricatedPassive(t *testing.T) {
	// Failure injection: a passive surface that was already fabricated
	// with some pattern cannot accept the orchestrator's configuration;
	// scheduling must proceed (the device keeps its burned-in pattern)
	// rather than failing the task.
	r := newRig(t, fastOpts(), driver.ModelNRSurface)
	addSurface(t, r.apt, r.hw, "prefab", driver.ModelPMSat, scene.MountNorthWall, 8, 8)
	dev, _ := r.hw.Surface("prefab")
	burned := surface.Config{Property: surface.Phase, Values: make([]float64, 64)}
	if err := dev.Drv.ShiftPhase(burned); err != nil {
		t.Fatal(err)
	}

	task, _ := r.o.EnhanceLink(context.Background(), LinkGoal{Endpoint: "a", Pos: bedroomPoint()}, 1)
	if err := r.o.Reconcile(context.Background()); err != nil {
		t.Fatalf("reconcile with prefabricated passive: %v", err)
	}
	got, _ := r.o.Task(task.ID)
	if got.State != TaskRunning {
		t.Fatalf("task state %v err=%v", got.State, got.Err)
	}
	// The passive kept its original pattern.
	cfg, _, ok := dev.Drv.Active()
	if !ok {
		t.Fatal("passive lost its configuration")
	}
	for i, v := range cfg.Values {
		if v != 0 {
			t.Fatalf("passive pattern changed at %d: %v", i, v)
		}
	}
	if dev.Drv.Updates() != 1 {
		t.Errorf("passive accepted %d updates, want 1", dev.Drv.Updates())
	}
}

func TestTickWithoutPlansIsSafe(t *testing.T) {
	r := newRig(t, fastOpts(), driver.ModelNRSurface)
	if err := r.o.Tick(context.Background(), time.Second); err != nil {
		t.Fatalf("tick on empty orchestrator: %v", err)
	}
	if r.o.Now().IsZero() {
		t.Error("clock did not advance")
	}
}

func TestTaskLookupErrors(t *testing.T) {
	r := newRig(t, fastOpts(), driver.ModelNRSurface)
	if _, err := r.o.Task(42); err == nil {
		t.Error("unknown task id accepted")
	}
	if err := r.o.SetIdle(42, true); err == nil {
		t.Error("idle on unknown task accepted")
	}
}

func TestFrequencyDivisionAcrossBands(t *testing.T) {
	// Two APs on different bands, band-matched surfaces: tasks at each
	// frequency schedule into independent plans — frequency-division
	// multiplexing across the shared environment.
	r := newRig(t, fastOpts(), driver.ModelNRSurface) // 24 GHz on east wall
	addSurface(t, r.apt, r.hw, "wifi5", driver.ModelScatterMIMO, scene.MountNorthWall, 12, 12)
	if err := r.hw.AddAP(&hwmgr.AccessPoint{
		ID: "ap5", Pos: geom.V(1.0, 1.0, 2.2), FreqHz: 5.5e9,
		Budget: rfsim.LinkBudget{TxPowerDBm: 15, AntennaGainDB: 6, NoiseFigureDB: 6, BandwidthHz: 80e6},
	}); err != nil {
		t.Fatal(err)
	}

	t24, _ := r.o.EnhanceLink(context.Background(), LinkGoal{Endpoint: "mm", Pos: bedroomPoint(), FreqHz: 24e9}, 1)
	t5, _ := r.o.EnhanceLink(context.Background(), LinkGoal{Endpoint: "wifi", Pos: geom.V(4.5, 6.0, 1.2), FreqHz: 5.5e9}, 1)
	if err := r.o.Reconcile(context.Background()); err != nil {
		t.Fatal(err)
	}

	g24, _ := r.o.Task(t24.ID)
	g5, _ := r.o.Task(t5.ID)
	if g24.State != TaskRunning || g5.State != TaskRunning {
		t.Fatalf("states: %v(%v) %v(%v)", g24.State, g24.Err, g5.State, g5.Err)
	}
	plans := r.o.Plans()
	if len(plans) != 2 {
		t.Fatalf("want 2 frequency plans, got %+v", plans)
	}
	freqs := map[float64]string{}
	for _, p := range plans {
		freqs[p.FreqHz] = p.APID
	}
	if freqs[24e9] != "ap0" || freqs[5.5e9] != "ap5" {
		t.Errorf("plan frequencies: %v", freqs)
	}
	// Each task's surfaces match its band.
	if g24.Result.Surfaces[0] == g5.Result.Surfaces[0] {
		t.Errorf("bands share a surface: %v vs %v", g24.Result.Surfaces, g5.Result.Surfaces)
	}
}

func TestRuntimeAdaptationToEnvironmentChange(t *testing.T) {
	// The paper's OS-vs-library argument (§5): "events such as furniture
	// movement ... can require dynamic reconfiguration of surface states."
	// A wardrobe appears in the beam path; re-reconciling re-optimizes the
	// configuration against the changed environment.
	r := newRig(t, fastOpts(), driver.ModelNRSurface)
	pos := bedroomPoint()
	task, _ := r.o.EnhanceLink(context.Background(), LinkGoal{Endpoint: "a", Pos: pos}, 1)
	if err := r.o.Reconcile(context.Background()); err != nil {
		t.Fatal(err)
	}
	before, _ := r.o.Task(task.ID)
	snrBefore := before.Result.Metric

	dev, _ := r.o.HW.Surface(driver.ModelNRSurface + "-" + scene.MountEastWall)
	updatesBefore := dev.Drv.Updates()
	cfgBefore, _, _ := dev.Drv.Active()

	// Someone parks a metal cabinet between the surface and the endpoint,
	// perpendicular to the beam path.
	mid := dev.Drv.Surface().Panel.Center().Lerp(pos, 0.5)
	r.apt.AddWall("new-cabinet", geom.RectXY(
		geom.V(mid.X, mid.Y-0.6, 0), geom.V(0, 1, 0), geom.V(0, 0, 1), 1.2, 2.2), em.Metal)

	if err := r.o.Reconcile(context.Background()); err != nil {
		t.Fatal(err)
	}
	after, _ := r.o.Task(task.ID)
	if after.State != TaskRunning {
		t.Fatalf("task state after change: %v (%v)", after.State, after.Err)
	}
	// The environment got worse; the achieved SNR reflects reality.
	if after.Result.Metric >= snrBefore {
		t.Errorf("blockage did not reduce SNR: %.1f -> %.1f", snrBefore, after.Result.Metric)
	}
	// The control plane pushed a new configuration in response.
	if dev.Drv.Updates() <= updatesBefore {
		t.Error("no reconfiguration after the environment changed")
	}
	cfgAfter, _, _ := dev.Drv.Active()
	same := true
	for i := range cfgBefore.Values {
		if math.Abs(cfgBefore.Values[i]-cfgAfter.Values[i]) > 1e-9 {
			same = false
			break
		}
	}
	if same {
		t.Error("configuration unchanged despite blockage")
	}
}
