package orchestrator

import (
	"surfos/internal/surface"
)

// Multiplexing strategies (paper §3.2 "task multiplexing"): the minimal
// resource unit is a slice of time, frequency and space; joint
// configuration multiplexing is the fourth axis the paper highlights.
const (
	StrategySolo  = "solo"  // one task owns the band's surfaces
	StrategySDM   = "sdm"   // space division: surfaces partitioned by task
	StrategyTDM   = "tdm"   // time division: codebook slots rotate by share
	StrategyJoint = "joint" // configuration multiplexing: one shared config
)

// MultiplexPolicy selects how same-band tasks share hardware.
type MultiplexPolicy uint8

// Policies. PolicyAuto picks SDM when surfaces outnumber tasks, joint
// multiplexing for small differentiable task sets or whenever a passive
// surface is involved (a passive surface has exactly one configuration, so
// configuration multiplexing is its only sharing mechanism), and TDM
// otherwise.
const (
	PolicyAuto MultiplexPolicy = iota
	PolicyTDM
	PolicyJoint
	PolicySDM
)

// String implements fmt.Stringer.
func (p MultiplexPolicy) String() string {
	switch p {
	case PolicyAuto:
		return "auto"
	case PolicyTDM:
		return "tdm"
	case PolicyJoint:
		return "joint"
	case PolicySDM:
		return "sdm"
	}
	return "policy(?)"
}

// PlanEntry is one time slot's worth of configurations: which tasks it
// serves, its time share, and the per-device configs.
type PlanEntry struct {
	Label   string
	TaskIDs []int
	Share   float64
	Configs map[string]surface.Config
}

// Plan is the scheduler's output for one frequency group.
type Plan struct {
	FreqHz   float64
	APID     string
	Surfaces []string
	Strategy string
	Entries  []PlanEntry

	frame []int // expanded TDM frame of entry indices
	pos   int
}

// frameSlots is the TDM frame length; shares are realized by
// largest-remainder apportionment over this many slots.
const frameSlots = 10

// buildFrame expands entry shares into a deterministic rotation frame.
func (p *Plan) buildFrame() {
	p.frame = p.frame[:0]
	if len(p.Entries) == 0 {
		return
	}
	if len(p.Entries) == 1 {
		p.frame = append(p.frame, 0)
		return
	}
	var total float64
	for _, e := range p.Entries {
		total += e.Share
	}
	if total <= 0 {
		total = float64(len(p.Entries))
	}
	// Largest-remainder apportionment.
	counts := make([]int, len(p.Entries))
	remainders := make([]float64, len(p.Entries))
	used := 0
	for i, e := range p.Entries {
		exact := e.Share / total * frameSlots
		counts[i] = int(exact)
		remainders[i] = exact - float64(counts[i])
		used += counts[i]
	}
	for used < frameSlots {
		best := 0
		for i := 1; i < len(remainders); i++ {
			if remainders[i] > remainders[best] {
				best = i
			}
		}
		counts[best]++
		remainders[best] = -1
		used++
	}
	// Interleave entries round-robin by remaining counts so no task starves
	// within a frame.
	for len(p.frame) < frameSlots {
		for i := range counts {
			if counts[i] > 0 {
				p.frame = append(p.frame, i)
				counts[i]--
			}
		}
	}
}

// nextSlot advances the TDM rotation and returns the entry index to
// activate.
func (p *Plan) nextSlot() int {
	if len(p.frame) == 0 {
		return -1
	}
	idx := p.frame[p.pos%len(p.frame)]
	p.pos++
	return idx
}

// shareOf returns the realized frame share of entry i.
func (p *Plan) shareOf(i int) float64 {
	if len(p.frame) == 0 {
		return 0
	}
	n := 0
	for _, e := range p.frame {
		if e == i {
			n++
		}
	}
	return float64(n) / float64(len(p.frame))
}
