package orchestrator

// Readmission: the one sequence that turns journaled state back into a
// running task table. Boot recovery, standby promotion after a failover,
// and the failover experiment all call the same hook, so a promoted
// standby re-admits live tasks *exactly* as a rebooted primary would —
// and because planning is deterministic, computes the identical plans.

// RestoreSpec is one journaled live task to re-admit: its original ID,
// the opaque spec JSON the journal preserved, and the last lifecycle
// state it was seen in (so a parked task is restored parked).
type RestoreSpec struct {
	ID        int
	Spec      []byte
	LastState string
}

// ReadmitResult reports what a Readmit pass did.
type ReadmitResult struct {
	// Restored counts tasks re-admitted under their original IDs.
	Restored int
	// Dropped lists task IDs whose specs no longer validate (renamed
	// region, changed scene); the caller should purge them from its
	// journal state so they are not retried forever.
	Dropped []int
}

// Readmit re-admits every spec under its original ID and burns IDs
// through maxID so compacted-away tasks' IDs are never reused. Per-spec
// failures are logged through logf and collected in Dropped rather than
// aborting the pass: one stale spec must not block the rest of a recovery
// or promotion. The caller reconciles afterwards (when Restored > 0) —
// after attaching its journal, so the recovery re-plan's transitions are
// journaled like any other.
func (o *Orchestrator) Readmit(specs []RestoreSpec, maxID int, logf func(format string, args ...any)) ReadmitResult {
	var res ReadmitResult
	for _, sp := range specs {
		if _, err := o.RestoreTask(sp.Spec, sp.LastState); err != nil {
			if logf != nil {
				logf("state: task %d not restored: %v", sp.ID, err)
			}
			res.Dropped = append(res.Dropped, sp.ID)
			continue
		}
		res.Restored++
	}
	o.ReserveIDs(maxID)
	return res
}
