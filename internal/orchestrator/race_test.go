package orchestrator

import (
	"context"
	"sync"
	"testing"
	"time"

	"surfos/internal/driver"
	"surfos/internal/telemetry"
)

// TestSnapshotReadersRaceReconcile hammers the snapshot accessors while
// Reconcile and Tick mutate live task state. Run with -race: the defensive
// copies in Task/Tasks/Plans are the system under test — a reader must
// never observe a live task mid-write.
func TestSnapshotReadersRaceReconcile(t *testing.T) {
	opts := fastOpts()
	opts.OptIters = 10 // keep each Reconcile short so many interleave
	r := newRig(t, opts, driver.ModelNRSurface, driver.ModelNRSurface)
	bus := telemetry.NewEventBus()
	_, cancel := bus.Subscribe(16) // exercise emission concurrently too
	defer cancel()
	r.o.SetEventBus(bus)

	ids := make([]int, 0, 3)
	for _, ep := range []string{"laptop", "phone", "tv"} {
		task, err := r.o.EnhanceLink(context.Background(), LinkGoal{Endpoint: ep, Pos: bedroomPoint()}, 1)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, task.ID)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	reader := func(f func()) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					f()
				}
			}
		}()
	}
	reader(func() {
		for _, task := range r.o.Tasks() {
			if task.Result != nil {
				_ = task.Result.Surfaces // deep-copied slice
			}
		}
	})
	reader(func() {
		for _, id := range ids {
			if task, err := r.o.Task(id); err == nil && task.Result != nil {
				_ = task.Result.Metric
			}
		}
	})
	reader(func() { _ = r.o.Plans() })
	reader(func() { _ = r.o.Now() })

	for i := 0; i < 4; i++ {
		if err := r.o.Reconcile(context.Background()); err != nil {
			t.Errorf("reconcile %d: %v", i, err)
		}
		if err := r.o.Tick(context.Background(), 50*time.Millisecond); err != nil {
			t.Errorf("tick %d: %v", i, err)
		}
	}
	// Mutate the task set while readers run, then reconcile again.
	if err := r.o.SetIdle(ids[0], true); err != nil {
		t.Fatal(err)
	}
	if err := r.o.EndTask(ids[1]); err != nil {
		t.Fatal(err)
	}
	if err := r.o.Reconcile(context.Background()); err != nil {
		t.Errorf("final reconcile: %v", err)
	}
	close(stop)
	wg.Wait()
}
