package orchestrator

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"surfos/internal/driver"
	"surfos/internal/engine"
	"surfos/internal/geom"
	"surfos/internal/hwmgr"
	"surfos/internal/optimize"
	"surfos/internal/surface"
	"surfos/internal/telemetry"
)

// This file is the service-agnostic scheduler core: grouping, strategy
// selection, joint/TDM/SDM planning, optimization, and commit. It consumes
// tasks purely through the Service interface — per-service objective
// construction and result extraction live in the service_*.go modules, so
// registering a new service never requires edits here.

// group is one frequency-band scheduling domain.
type group struct {
	band  Band
	tasks []*Task
	devs  []*hwmgr.Device
}

// Reconcile runs the scheduler over every interference-domain shard:
// each shard groups its active tasks by frequency, chooses a
// multiplexing strategy per group, optimizes configurations, pushes them
// to devices, and fills in task results. Shards are independent
// scheduling problems, so they run concurrently on the engine's worker
// pool; results commit in domain order, so the merged plan set is
// deterministic. Single-domain scenes (and 1-worker engines) take the
// exact serial path the monolithic scheduler did.
//
// Cancellation semantics: the ctx is checked between shards and groups
// and inside the optimizer loops. A cancel mid-optimization applies the
// best-so-far configuration for the group being scheduled (bounded
// degradation, not half-written state), skips remaining work, and
// returns the ctx error wrapped in ErrOptimizeStopped.
func (o *Orchestrator) Reconcile(ctx context.Context) error {
	return o.reconcileDomains(ctx, nil)
}

// ReconcileDomain re-plans a single interference domain, leaving every
// other shard's plans untouched — the locality win behind event-routed
// self-healing and admission.
func (o *Orchestrator) ReconcileDomain(ctx context.Context, domain int) error {
	return o.reconcileDomains(ctx, []int{domain})
}

// ReconcileTask re-plans only the shard owning the given task (a full
// Reconcile for unknown tasks, preserving the legacy contract).
func (o *Orchestrator) ReconcileTask(ctx context.Context, taskID int) error {
	o.mu.Lock()
	t, ok := o.tasks[taskID]
	var domain int
	if ok {
		domain = t.Domain
	}
	o.mu.Unlock()
	if !ok {
		return o.Reconcile(ctx)
	}
	return o.ReconcileDomain(ctx, domain)
}

// reconcileDomains schedules the selected shards (nil = all). Shards run
// concurrently via the engine's worker pool, writing results by index;
// commit happens under the lock in domain order.
func (o *Orchestrator) reconcileDomains(ctx context.Context, domains []int) error {
	if err := ctxErr(ctx); err != nil {
		return err
	}
	// Exclude geometry edits for the whole pass: the ray traces and
	// partition below read the scene, and EditScene writers wait until
	// the plan commits.
	o.geoMu.RLock()
	defer o.geoMu.RUnlock()
	o.mu.Lock()
	o.ensureShardsLocked()
	var sel []*shard
	if domains == nil {
		sel = append(sel, o.shards...)
	} else {
		for _, d := range domains {
			if sh := o.shardByDomainLocked(d); sh != nil {
				sel = append(sel, sh)
			}
		}
		if len(sel) == 0 {
			// Stale domain IDs (topology changed underfoot): fall back to
			// a full pass rather than silently planning nothing.
			sel = append(sel, o.shards...)
		}
	}
	work := make([][]*Task, len(sel))
	warms := make([]map[string][][]float64, len(sel))
	for i, sh := range sel {
		var act []*Task
		for _, t := range o.tasks {
			if t.Domain == sh.id && (t.State == TaskPending || t.State == TaskRunning) {
				act = append(act, t)
			}
		}
		sort.Slice(act, func(a, b int) bool { return act[a].ID < act[b].ID })
		work[i] = act
		if o.Opts.WarmStart {
			warms[i] = warmFromPlansLocked(sh.plans)
		}
	}
	o.mu.Unlock()

	results := make([][]*Plan, len(sel))
	errs := make([]error, len(sel))
	commit := make([]bool, len(sel))
	durs := make([]time.Duration, len(sel))
	ferr := o.eng.ForEach(ctx, len(sel), func(i int) {
		start := time.Now()
		results[i], commit[i], errs[i] = o.scheduleShard(ctx, sel[i], work[i], warms[i])
		durs[i] = time.Since(start)
	})

	o.mu.Lock()
	for i, sh := range sel {
		if !commit[i] {
			continue
		}
		sh.plans = o.pruneTerminalLocked(results[i])
		sh.lastReconcile = durs[i]
		sh.reconciles++
		if o.latHist != nil {
			o.latHist.Observe(durs[i].Seconds())
		}
	}
	o.mu.Unlock()

	var firstErr error
	for _, err := range errs {
		if err != nil {
			firstErr = err
			break
		}
	}
	if firstErr == nil && ferr != nil {
		firstErr = fmt.Errorf("%w: %w", ErrOptimizeStopped, ferr)
	}
	return firstErr
}

// scheduleShard plans one shard's active task set. The returned commit
// flag mirrors the monolithic scheduler's contract: grouping failures
// (no AP registered) leave the previous plans standing, while scheduling
// failures commit whatever was planned.
func (o *Orchestrator) scheduleShard(ctx context.Context, sh *shard, act []*Task, warm map[string][][]float64) ([]*Plan, bool, error) {
	groups, err := o.groupTasksIn(act, sh)
	if err != nil {
		return nil, false, err
	}
	var plans []*Plan
	var firstErr error
	for _, g := range groups {
		if err := ctxErr(ctx); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("%w: %w", ErrOptimizeStopped, err)
			}
			break
		}
		p, err := o.scheduleGroup(ctx, g, warm)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		plans = append(plans, p...)
	}
	return plans, true, firstErr
}

// pruneTerminalLocked drops plan entries referencing tasks that went
// terminal between the reconcile snapshot and this commit (a concurrent
// EndTask), mirroring releaseTaskLocked so committed shard plans only
// ever reference live tasks of their own shard. Caller holds o.mu.
func (o *Orchestrator) pruneTerminalLocked(plans []*Plan) []*Plan {
	var keep []*Plan
	for _, p := range plans {
		entries := p.Entries[:0:0]
		changed := false
		for _, e := range p.Entries {
			ids := e.TaskIDs[:0:0]
			for _, tid := range e.TaskIDs {
				if t, ok := o.tasks[tid]; ok && (t.State == TaskDone || t.State == TaskFailed) {
					changed = true
					continue
				}
				ids = append(ids, tid)
			}
			if len(ids) == 0 {
				changed = true
				continue
			}
			e.TaskIDs = ids
			entries = append(entries, e)
		}
		if len(entries) == 0 {
			continue // plan dissolved
		}
		if changed {
			p.Entries = entries
			p.buildFrame()
		}
		keep = append(keep, p)
	}
	return keep
}

// groupTasksIn resolves each task's AP and frequency and buckets tasks
// within one shard: band device sets are intersected with the shard's
// member surfaces, so a group never schedules across domains. Task
// mutations (frequency resolution, failure marking) happen under the
// orchestrator lock so concurrent snapshot readers never observe them
// mid-write.
func (o *Orchestrator) groupTasksIn(act []*Task, sh *shard) ([]*group, error) {
	aps := o.HW.APs()
	if len(aps) == 0 && len(act) > 0 {
		return nil, fmt.Errorf("%w registered", ErrNoAccessPoint)
	}
	byFreq := make(map[float64]*group)
	var order []float64
	o.mu.Lock()
	defer o.mu.Unlock()
	for _, t := range act {
		svc, err := t.service()
		if err != nil {
			o.failLocked(t, err)
			continue
		}
		f := svc.Freq(t.Goal)
		var ap *hwmgr.AccessPoint
		if f == 0 {
			ap = aps[0]
			f = ap.FreqHz
		} else {
			for _, a := range aps {
				if a.FreqHz == f {
					ap = a
					break
				}
			}
			if ap == nil {
				o.failLocked(t, fmt.Errorf("%w serves %g Hz", ErrNoAccessPoint, f))
				continue
			}
		}
		g, ok := byFreq[f]
		if !ok {
			devs := o.HW.SurfacesForBand(f)
			if sh != nil {
				in := devs[:0:0]
				for _, d := range devs {
					if sh.owns(d.ID) {
						in = append(in, d)
					}
				}
				devs = in
			}
			g = &group{band: Band{AP: ap, FreqHz: f}, devs: devs}
			byFreq[f] = g
			order = append(order, f)
		}
		if len(g.devs) == 0 {
			o.failLocked(t, fmt.Errorf("%w support %g Hz", ErrNoActiveSurfaces, f))
			continue
		}
		t.FreqHz = f
		g.tasks = append(g.tasks, t)
	}
	sort.Float64s(order)
	out := make([]*group, 0, len(order))
	for _, f := range order {
		if len(byFreq[f].tasks) > 0 {
			out = append(out, byFreq[f])
		}
	}
	return out, nil
}

func (o *Orchestrator) failTask(t *Task, err error) {
	o.mu.Lock()
	o.failLocked(t, err)
	o.mu.Unlock()
}

// failLocked marks a task failed and emits the lifecycle event; the caller
// holds o.mu.
func (o *Orchestrator) failLocked(t *Task, err error) {
	t.State = TaskFailed
	t.Err = err
	o.emitLocked(t, telemetry.TaskFailed)
}

// pickStrategy implements the policy decision.
func (o *Orchestrator) pickStrategy(g *group) string {
	switch o.Opts.Policy {
	case PolicyTDM:
		if len(g.tasks) == 1 {
			return StrategySolo
		}
		return StrategyTDM
	case PolicyJoint:
		if len(g.tasks) == 1 {
			return StrategySolo
		}
		return StrategyJoint
	case PolicySDM:
		if len(g.tasks) == 1 {
			return StrategySolo
		}
		return StrategySDM
	}
	// Auto.
	if len(g.tasks) == 1 {
		return StrategySolo
	}
	anyPassive := false
	for _, d := range g.devs {
		if !d.Drv.Spec().Reconfigurable {
			anyPassive = true
		}
	}
	if anyPassive {
		// A passive surface holds exactly one configuration: joint
		// configuration multiplexing is its only sharing mechanism.
		return StrategyJoint
	}
	if len(g.devs) >= len(g.tasks) {
		return StrategySDM
	}
	if len(g.tasks) <= 3 {
		return StrategyJoint
	}
	return StrategyTDM
}

// scheduleGroup plans one frequency group.
func (o *Orchestrator) scheduleGroup(ctx context.Context, g *group, warm map[string][][]float64) ([]*Plan, error) {
	strategy := o.pickStrategy(g)
	switch strategy {
	case StrategySDM:
		return o.scheduleSDM(ctx, g, warm)
	case StrategyTDM:
		return o.scheduleTDM(ctx, g, warm)
	default: // solo, joint
		return o.scheduleJoint(ctx, g, strategy, warm)
	}
}

// deviceIDs lists a device set's IDs.
func deviceIDs(devs []*hwmgr.Device) []string {
	out := make([]string, len(devs))
	for i, d := range devs {
		out[i] = d.ID
	}
	return out
}

// specFor describes the engine simulator configuration for a device
// subset. Identical device subsets (the common case across successive
// Reconciles) share the engine's cached simulator and ray traces.
func (o *Orchestrator) specFor(freq float64, devs []*hwmgr.Device) engine.Spec {
	surfs := make([]*surface.Surface, len(devs))
	eff := 1.0
	for i, d := range devs {
		surfs[i] = d.Drv.Surface()
		if e := d.Drv.Spec().ElementEfficiency; e > 0 && e < eff {
			eff = e
		}
	}
	return engine.Spec{
		Scene:             o.Scene,
		FreqHz:            freq,
		Surfaces:          surfs,
		ReflOrder:         o.Opts.ReflOrder,
		Cascade:           o.Opts.Cascade && len(devs) > 1,
		ElementEfficiency: eff,
	}
}

// projectorFor combines device constraint projections.
func projectorFor(devs []*hwmgr.Device) optimize.Projector {
	return func(phases [][]float64) [][]float64 {
		out := make([][]float64, len(phases))
		for i, p := range phases {
			if i < len(devs) {
				cfg := surface.Config{Property: surface.Phase, Values: p}
				out[i] = devs[i].Drv.Project(cfg).Values
			} else {
				cp := make([]float64, len(p))
				copy(cp, p)
				out[i] = cp
			}
		}
		return out
	}
}

// buildObjective dispatches objective construction to the task's service
// module.
func (o *Orchestrator) buildObjective(ctx context.Context, t *Task, g *group, spec engine.Spec) (optimize.Objective, Evaluator, error) {
	svc, err := t.service()
	if err != nil {
		return nil, nil, err
	}
	return svc.BuildObjective(ctx, o, t, g.band, spec)
}

// taskWeight dispatches joint-sum weighting to the task's service module.
func (o *Orchestrator) taskWeight(t *Task, obj optimize.Objective) float64 {
	svc, err := t.service()
	if err != nil {
		return 1
	}
	return svc.Weight(o, t, obj)
}

// optimizeConfigs runs the configuration optimizer for an objective over a
// device set. Optimization runs in the continuous element-wise space and
// projects onto the hardware constraint set (granularity sharing, phase
// quantization) once at the end: projecting every gradient step would snap
// small steps back to the quantization grid and stall (the constraint set
// is discrete), while a single final projection costs only the usual
// quantization loss.
// init seeds the run: nil means zero phases (cold start); a warm seed
// from the previous plan makes churn re-plans incremental.
func (o *Orchestrator) optimizeConfigs(ctx context.Context, obj optimize.Objective, devs []*hwmgr.Device, init [][]float64) optimize.Result {
	if init == nil {
		init = optimize.ZeroPhases(obj.Shape())
	}
	if ws, ok := obj.(*optimize.WeightedSum); ok {
		// Fan the joint sum's terms across the engine pool for the
		// duration of this run; the ordered reduction keeps pooled
		// evaluation bit-identical to serial, so plans do not depend on
		// the worker count.
		ws.UsePool(o.eng, o.Opts.OptWorkers)
		defer ws.UsePool(nil, 0)
	}
	start := time.Now()
	res := optimize.Adam(ctx, obj, init, optimize.Options{
		MaxIters: o.Opts.OptIters,
		Engine:   o.eng,
		Workers:  o.Opts.OptWorkers,
	})
	o.observeOptimize(time.Since(start), res)
	res.Phases = projectorFor(devs)(res.Phases)
	res.Loss, _ = obj.Eval(res.Phases, false)
	return res
}

// observeOptimize feeds one optimizer run into the observability surface:
// the sweep-latency histogram and the per-run eval counters exported by
// RegisterMetrics. Safe from concurrent shard reconciles.
func (o *Orchestrator) observeOptimize(d time.Duration, res optimize.Result) {
	o.mu.Lock()
	h := o.sweepHist
	o.mu.Unlock()
	if h != nil {
		h.Observe(d.Seconds())
	}
	o.optRuns.Add(1)
	o.optEvals.Add(uint64(res.Evals))
	o.optWasted.Add(uint64(res.WastedEvals))
}

// applyEntries pushes each entry's configs to the devices as a codebook
// write. Passive devices that are already fabricated are left untouched.
func (o *Orchestrator) applyEntries(devs []*hwmgr.Device, entries []PlanEntry) error {
	var firstErr error
	for _, d := range devs {
		labels := make([]string, 0, len(entries))
		cfgs := make([]surface.Config, 0, len(entries))
		for _, e := range entries {
			cfg, ok := e.Configs[d.ID]
			if !ok {
				continue
			}
			labels = append(labels, e.Label)
			cfgs = append(cfgs, cfg)
		}
		if len(cfgs) == 0 {
			continue
		}
		err := d.Drv.StoreCodebook(labels, cfgs)
		if errors.Is(err, driver.ErrFixed) {
			continue // passive device keeps its burned-in pattern
		}
		if err != nil {
			o.HW.RecordFailure(d.ID, err)
			if errors.Is(err, driver.ErrDeviceDead) {
				// A device that died between planning and apply is a
				// health event, not a plan failure: the transition just
				// recorded triggers a re-plan around it, and failing the
				// whole group here would take down tasks the surviving
				// surfaces can still serve.
				continue
			}
			if firstErr == nil {
				firstErr = fmt.Errorf("orchestrator: device %s: %w", d.ID, err)
			}
			continue
		}
		o.HW.RecordSuccess(d.ID)
	}
	return firstErr
}

// markRunning finalizes task state and results, emitting the scheduled and
// running lifecycle events.
func (o *Orchestrator) markRunning(t *Task, res *Result) {
	o.mu.Lock()
	t.State = TaskRunning
	t.Result = res
	o.emitLocked(t, telemetry.TaskScheduled)
	o.emitLocked(t, telemetry.TaskRunning)
	o.mu.Unlock()
}

// scheduleJoint handles solo and joint configuration multiplexing: one
// shared configuration optimized for the (weighted) sum of task losses —
// the paper's §4 "surface multitasking".
func (o *Orchestrator) scheduleJoint(ctx context.Context, g *group, strategy string, warm map[string][][]float64) ([]*Plan, error) {
	spec := o.specFor(g.band.FreqHz, g.devs)
	var terms []optimize.Objective
	var weights []float64
	evals := make([]Evaluator, 0, len(g.tasks))
	var scheduled []*Task
	for _, t := range g.tasks {
		obj, eval, err := o.buildObjective(ctx, t, g, spec)
		if err != nil {
			o.failTask(t, err)
			continue
		}
		terms = append(terms, obj)
		weights = append(weights, o.taskWeight(t, obj))
		evals = append(evals, eval)
		scheduled = append(scheduled, t)
	}
	if len(terms) == 0 {
		return nil, fmt.Errorf("%w at %g Hz", ErrNoSchedulableTasks, g.band.FreqHz)
	}
	var obj optimize.Objective
	if len(terms) == 1 {
		obj = terms[0]
	} else {
		ws, err := optimize.NewWeightedSum(terms, weights)
		if err != nil {
			return nil, err
		}
		obj = ws
	}
	init := warmLookup(warm, g.band.FreqHz, deviceIDs(g.devs), strategy, obj.Shape())
	res := o.optimizeConfigs(ctx, obj, g.devs, init)
	cfgs := optimize.PhasesToConfigs(res.Phases)

	entry := PlanEntry{Label: strategy, Share: 1, Configs: map[string]surface.Config{}}
	for i, d := range g.devs {
		entry.Configs[d.ID] = cfgs[i]
	}
	for _, t := range scheduled {
		entry.TaskIDs = append(entry.TaskIDs, t.ID)
	}
	p := &Plan{
		FreqHz:   g.band.FreqHz,
		APID:     g.band.AP.ID,
		Surfaces: deviceIDs(g.devs),
		Strategy: strategy,
		Entries:  []PlanEntry{entry},
	}
	p.buildFrame()
	if err := o.applyEntries(g.devs, p.Entries); err != nil {
		return nil, err
	}
	for i, t := range scheduled {
		r := evals[i](res.Phases)
		r.Share = 1
		r.Surfaces = p.Surfaces
		r.Strategy = strategy
		o.markRunning(t, r)
	}
	return []*Plan{p}, nil
}

// scheduleTDM gives each task its own optimized configuration and rotates
// them as time slices weighted by priority.
func (o *Orchestrator) scheduleTDM(ctx context.Context, g *group, warm map[string][][]float64) ([]*Plan, error) {
	spec := o.specFor(g.band.FreqHz, g.devs)
	p := &Plan{
		FreqHz:   g.band.FreqHz,
		APID:     g.band.AP.ID,
		Surfaces: deviceIDs(g.devs),
		Strategy: StrategyTDM,
	}
	var scheduled []*Task
	var evals []Evaluator
	var phases [][][]float64
	for _, t := range g.tasks {
		obj, eval, err := o.buildObjective(ctx, t, g, spec)
		if err != nil {
			o.failTask(t, err)
			continue
		}
		init := warmLookup(warm, g.band.FreqHz, p.Surfaces, fmt.Sprintf("task-%d", t.ID), obj.Shape())
		res := o.optimizeConfigs(ctx, obj, g.devs, init)
		cfgs := optimize.PhasesToConfigs(res.Phases)
		entry := PlanEntry{
			Label:   fmt.Sprintf("task-%d", t.ID),
			TaskIDs: []int{t.ID},
			Share:   float64(t.Priority),
			Configs: map[string]surface.Config{},
		}
		for i, d := range g.devs {
			entry.Configs[d.ID] = cfgs[i]
		}
		p.Entries = append(p.Entries, entry)
		scheduled = append(scheduled, t)
		evals = append(evals, eval)
		phases = append(phases, res.Phases)
	}
	if len(p.Entries) == 0 {
		return nil, fmt.Errorf("%w at %g Hz", ErrNoSchedulableTasks, g.band.FreqHz)
	}
	p.buildFrame()
	if err := o.applyEntries(g.devs, p.Entries); err != nil {
		return nil, err
	}
	for i, t := range scheduled {
		r := evals[i](phases[i])
		r.Share = p.shareOf(i)
		r.Surfaces = p.Surfaces
		r.Strategy = StrategyTDM
		o.markRunning(t, r)
	}
	return []*Plan{p}, nil
}

// scheduleSDM partitions surfaces among tasks by proximity to the task's
// spatial target and optimizes each partition independently.
func (o *Orchestrator) scheduleSDM(ctx context.Context, g *group, warm map[string][][]float64) ([]*Plan, error) {
	assign := o.assignSurfaces(g)
	var plans []*Plan
	var firstErr error
	for ti, t := range g.tasks {
		devs := assign[ti]
		if len(devs) == 0 {
			o.failTask(t, fmt.Errorf("%w for task %d under SDM", ErrNoActiveSurfaces, t.ID))
			continue
		}
		sub := &group{band: g.band, tasks: []*Task{t}, devs: devs}
		ps, err := o.scheduleJoint(ctx, sub, StrategySDM, warm)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			o.failTask(t, err)
			continue
		}
		plans = append(plans, ps...)
	}
	if len(plans) == 0 && firstErr != nil {
		return nil, firstErr
	}
	return plans, nil
}

// assignSurfaces greedily gives each task its nearest unassigned surface
// (by target centroid), then distributes leftovers to the nearest task.
func (o *Orchestrator) assignSurfaces(g *group) [][]*hwmgr.Device {
	target := make([]geom.Vec3, len(g.tasks))
	for i, t := range g.tasks {
		target[i] = o.taskTarget(t)
	}
	assign := make([][]*hwmgr.Device, len(g.tasks))
	used := make([]bool, len(g.devs))
	// Tasks in priority order pick their nearest free surface.
	order := make([]int, len(g.tasks))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ta, tb := g.tasks[order[a]], g.tasks[order[b]]
		if ta.Priority != tb.Priority {
			return ta.Priority > tb.Priority
		}
		return ta.ID < tb.ID
	})
	for _, ti := range order {
		best, bestD := -1, math.Inf(1)
		for di, d := range g.devs {
			if used[di] {
				continue
			}
			if dist := d.Drv.Surface().Panel.Center().Dist(target[ti]); dist < bestD {
				best, bestD = di, dist
			}
		}
		if best >= 0 {
			assign[ti] = append(assign[ti], g.devs[best])
			used[best] = true
		}
	}
	// Leftover surfaces reinforce their nearest task.
	for di, d := range g.devs {
		if used[di] {
			continue
		}
		best, bestD := 0, math.Inf(1)
		for ti := range g.tasks {
			if dist := d.Drv.Surface().Panel.Center().Dist(target[ti]); dist < bestD {
				best, bestD = ti, dist
			}
		}
		assign[best] = append(assign[best], d)
	}
	return assign
}

// taskTarget returns a task's spatial focus for SDM assignment via its
// service module.
func (o *Orchestrator) taskTarget(t *Task) geom.Vec3 {
	svc, err := t.service()
	if err != nil {
		return geom.Vec3{}
	}
	return svc.Target(o, t.Goal)
}
