package orchestrator

import (
	"context"
	"errors"
	"math"
	"testing"

	"surfos/internal/driver"
	"surfos/internal/engine"
	"surfos/internal/geom"
	"surfos/internal/optimize"
)

// liveGroup builds a scheduling group over the rig's live tasks (not
// snapshots), the way groupTasks would, for driving the per-strategy
// schedulers directly.
func liveGroup(t *testing.T, r *rig, ids ...int) *group {
	t.Helper()
	aps := r.o.HW.APs()
	if len(aps) == 0 {
		t.Fatal("rig has no AP")
	}
	ap := aps[0]
	g := &group{band: Band{AP: ap, FreqHz: ap.FreqHz}, devs: r.o.HW.SurfacesForBand(ap.FreqHz)}
	r.o.mu.Lock()
	for _, id := range ids {
		task, ok := r.o.tasks[id]
		if !ok {
			r.o.mu.Unlock()
			t.Fatalf("no live task %d", id)
		}
		task.FreqHz = ap.FreqHz
		g.tasks = append(g.tasks, task)
	}
	r.o.mu.Unlock()
	return g
}

func TestScheduleTDMSingleTask(t *testing.T) {
	r := newRig(t, fastOpts(), driver.ModelNRSurface)
	task, err := r.o.EnhanceLink(context.Background(), LinkGoal{Endpoint: "laptop", Pos: bedroomPoint()}, 1)
	if err != nil {
		t.Fatal(err)
	}
	g := liveGroup(t, r, task.ID)
	plans, err := r.o.scheduleTDM(context.Background(), g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 1 || len(plans[0].Entries) != 1 {
		t.Fatalf("plans = %+v", plans)
	}
	if s := plans[0].shareOf(0); s != 1 {
		t.Errorf("single-entry share = %v, want 1", s)
	}
	got, _ := r.o.Task(task.ID)
	if got.State != TaskRunning || got.Result == nil || got.Result.Share != 1 {
		t.Errorf("task = state %v result %+v", got.State, got.Result)
	}
}

func TestScheduleSDMSingleTask(t *testing.T) {
	r := newRig(t, fastOpts(), driver.ModelNRSurface)
	task, err := r.o.EnhanceLink(context.Background(), LinkGoal{Endpoint: "laptop", Pos: bedroomPoint()}, 1)
	if err != nil {
		t.Fatal(err)
	}
	g := liveGroup(t, r, task.ID)
	plans, err := r.o.scheduleSDM(context.Background(), g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 1 || plans[0].Strategy != StrategySDM {
		t.Fatalf("plans = %+v", plans)
	}
	got, _ := r.o.Task(task.ID)
	if got.State != TaskRunning || got.Result == nil || got.Result.Share != 1 {
		t.Errorf("task = state %v result %+v", got.State, got.Result)
	}
}

func TestScheduleTDMEmptyGroup(t *testing.T) {
	r := newRig(t, fastOpts(), driver.ModelNRSurface)
	g := liveGroup(t, r)
	if _, err := r.o.scheduleTDM(context.Background(), g, nil); !errors.Is(err, ErrNoSchedulableTasks) {
		t.Errorf("empty TDM group err = %v, want ErrNoSchedulableTasks", err)
	}
	if _, err := r.o.scheduleJoint(context.Background(), g, StrategyJoint, nil); !errors.Is(err, ErrNoSchedulableTasks) {
		t.Errorf("empty joint group err = %v, want ErrNoSchedulableTasks", err)
	}
}

func TestAllIdleGroupProducesNoPlans(t *testing.T) {
	r := newRig(t, fastOpts(), driver.ModelNRSurface)
	for _, ep := range []string{"laptop", "phone"} {
		task, err := r.o.EnhanceLink(context.Background(), LinkGoal{Endpoint: ep, Pos: bedroomPoint()}, 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.o.SetIdle(task.ID, true); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.o.Reconcile(context.Background()); err != nil {
		t.Fatalf("all-idle reconcile err = %v", err)
	}
	if plans := r.o.Plans(); len(plans) != 0 {
		t.Errorf("all-idle plans = %+v", plans)
	}
	for _, task := range r.o.Tasks() {
		if task.State != TaskIdle {
			t.Errorf("task %d state = %v, want idle", task.ID, task.State)
		}
	}
}

func TestSDMEmptySurfaceAssignmentFailsTyped(t *testing.T) {
	// One surface, two tasks, forced SDM: the lower-priority task gets no
	// surface and must fail with the typed sentinel, not panic.
	opts := fastOpts()
	opts.Policy = PolicySDM
	r := newRig(t, opts, driver.ModelNRSurface)
	hi, err := r.o.EnhanceLink(context.Background(), LinkGoal{Endpoint: "laptop", Pos: bedroomPoint()}, 5)
	if err != nil {
		t.Fatal(err)
	}
	lo, err := r.o.EnhanceLink(context.Background(), LinkGoal{Endpoint: "phone", Pos: geom.V(5.0, 6.0, 1.0)}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.o.Reconcile(context.Background()); err != nil {
		t.Fatal(err)
	}
	gotHi, _ := r.o.Task(hi.ID)
	if gotHi.State != TaskRunning {
		t.Errorf("high-priority task state = %v (err %v)", gotHi.State, gotHi.Err)
	}
	gotLo, _ := r.o.Task(lo.ID)
	if gotLo.State != TaskFailed || !errors.Is(gotLo.Err, ErrNoActiveSurfaces) {
		t.Errorf("starved task: state=%v err=%v, want failed/ErrNoActiveSurfaces", gotLo.State, gotLo.Err)
	}
	if plans := r.o.Plans(); len(plans) != 1 {
		t.Errorf("plans = %+v", plans)
	}
}

func TestTDMSharesSumToOne(t *testing.T) {
	opts := fastOpts()
	opts.Policy = PolicyTDM
	r := newRig(t, opts, driver.ModelNRSurface)
	endpoints := []string{"laptop", "phone", "tv"}
	for i, ep := range endpoints {
		if _, err := r.o.EnhanceLink(context.Background(), LinkGoal{Endpoint: ep, Pos: bedroomPoint()}, i+1); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.o.Reconcile(context.Background()); err != nil {
		t.Fatal(err)
	}
	plans := r.o.Plans()
	if len(plans) != 1 || plans[0].Strategy != StrategyTDM {
		t.Fatalf("plans = %+v", plans)
	}
	p := plans[0]
	var frameSum float64
	for i := range p.Entries {
		frameSum += p.shareOf(i)
	}
	if math.Abs(frameSum-1) > 1e-9 {
		t.Errorf("shareOf sum = %v, want 1", frameSum)
	}
	var resultSum float64
	for _, task := range r.o.Tasks() {
		if task.State != TaskRunning || task.Result == nil {
			t.Fatalf("task %d: state %v result %+v", task.ID, task.State, task.Result)
		}
		resultSum += task.Result.Share
	}
	if math.Abs(resultSum-1) > 1e-9 {
		t.Errorf("result share sum = %v, want 1", resultSum)
	}
}

func TestEndTaskEagerlyReleasesEntries(t *testing.T) {
	// Two TDM tasks share one plan; ending one must shrink the plan and
	// the device codebooks immediately, before any Reconcile.
	opts := fastOpts()
	opts.Policy = PolicyTDM
	r := newRig(t, opts, driver.ModelNRSurface)
	a, err := r.o.EnhanceLink(context.Background(), LinkGoal{Endpoint: "laptop", Pos: bedroomPoint()}, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.o.EnhanceLink(context.Background(), LinkGoal{Endpoint: "phone", Pos: geom.V(5.0, 6.0, 1.0)}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.o.Reconcile(context.Background()); err != nil {
		t.Fatal(err)
	}
	plans := r.o.Plans()
	if len(plans) != 1 || len(plans[0].Entries) != 2 {
		t.Fatalf("plans before end = %+v", plans)
	}
	dev, err := r.o.HW.Surface(plans[0].Surfaces[0])
	if err != nil {
		t.Fatal(err)
	}
	if n := dev.Drv.CodebookLen(); n != 2 {
		t.Fatalf("codebook before end = %d entries", n)
	}

	if err := r.o.EndTask(a.ID); err != nil {
		t.Fatal(err)
	}
	// No Reconcile: the release must already be visible.
	plans = r.o.Plans()
	if len(plans) != 1 || len(plans[0].Entries) != 1 {
		t.Fatalf("plans after end = %+v", plans)
	}
	if got := plans[0].Entries[0].TaskIDs; len(got) != 1 || got[0] != b.ID {
		t.Errorf("surviving entry tasks = %v, want [%d]", got, b.ID)
	}
	if s := plans[0].shareOf(0); s != 1 {
		t.Errorf("surviving share = %v, want 1", s)
	}
	if n := dev.Drv.CodebookLen(); n != 1 {
		t.Errorf("codebook after end = %d entries, want 1", n)
	}

	// Ending the survivor dissolves the plan entirely.
	if err := r.o.EndTask(b.ID); err != nil {
		t.Fatal(err)
	}
	if plans := r.o.Plans(); len(plans) != 0 {
		t.Errorf("plans after ending all = %+v", plans)
	}
}

// zeroService exercises the zero-weight objective edge: a registered
// service whose joint-sum weight is 0 must not panic or poison the shared
// optimization.
const zeroKind = ServiceKind(43)

type zeroService struct{ echoService }

func (zeroService) Kind() ServiceKind { return zeroKind }
func (zeroService) Name() string      { return "zeroweight" }
func (zeroService) BuildObjective(ctx context.Context, o *Orchestrator, t *Task, band Band, spec engine.Spec) (optimize.Objective, Evaluator, error) {
	return echoService{}.BuildObjective(ctx, o, t, band, spec)
}
func (zeroService) Weight(*Orchestrator, *Task, optimize.Objective) float64 { return 0 }

func TestZeroWeightObjectiveSchedules(t *testing.T) {
	registerEcho(t)
	registerZeroOnce(t)
	opts := fastOpts()
	opts.Policy = PolicyJoint
	r := newRig(t, opts, driver.ModelNRSurface)
	link, err := r.o.EnhanceLink(context.Background(), LinkGoal{Endpoint: "laptop", Pos: bedroomPoint()}, 1)
	if err != nil {
		t.Fatal(err)
	}
	zero, err := r.o.Submit(context.Background(), zeroKind, echoGoal{Endpoint: "ghost", Pos: bedroomPoint()}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.o.Reconcile(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, id := range []int{link.ID, zero.ID} {
		got, _ := r.o.Task(id)
		if got.State != TaskRunning || got.Result == nil {
			t.Fatalf("task %d: state %v err %v", id, got.State, got.Err)
		}
		if math.IsNaN(got.Result.Metric) || math.IsInf(got.Result.Metric, 0) {
			t.Errorf("task %d metric = %v", id, got.Result.Metric)
		}
	}
}

var zeroRegistered = false

func registerZeroOnce(t *testing.T) {
	t.Helper()
	if zeroRegistered {
		return
	}
	if err := RegisterService(zeroService{}); err != nil {
		t.Fatal(err)
	}
	zeroRegistered = true
}

// Validate on zeroService delegates through the embedded echoService, whose
// goal type is echoGoal — confirm the delegation compiles into a usable
// service at submit time (regression guard for interface embedding).
var _ Service = zeroService{}
