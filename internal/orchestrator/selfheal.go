package orchestrator

import (
	"context"
	"errors"

	"surfos/internal/telemetry"
)

// Self-healing: the orchestrator consumes device health transitions (from
// the hardware manager's heartbeat loop or the scheduler's own apply path)
// and re-plans around them. A dead device's tasks migrate to surviving
// surfaces on the next reconcile; a recovered device is folded back in and
// tasks starved of hardware while it was down are resubmitted.

// HandleDeviceEvent reacts to one device health transition by re-planning
// the interference domain owning the device — a dead device re-plans its
// room, not the building (unknown devices fall back to a full pass).
// Non-health events are ignored, so the handler can safely consume a mixed
// task/device event stream. After the re-plan it emits a Replanned event
// naming the device that triggered it, so watchers see the healing step
// itself, not just its task-level consequences.
func (o *Orchestrator) HandleDeviceEvent(ctx context.Context, ev telemetry.TaskEvent) error {
	switch ev.State {
	case telemetry.DeviceDead, telemetry.DeviceDegraded, telemetry.DeviceRecovered:
	default:
		return nil
	}
	domain, known := o.DomainForDevice(ev.DeviceID)
	if ev.State == telemetry.DeviceRecovered {
		if known {
			o.requeueStarved(domain)
		} else {
			o.requeueStarved(-1)
		}
	}
	var err error
	if known {
		err = o.ReconcileDomain(ctx, domain)
	} else {
		err = o.Reconcile(ctx)
	}
	o.emitReplanned(ev.DeviceID)
	return err
}

// RunDeviceEvents consumes a bus subscription until ctx is cancelled or the
// channel closes, self-healing on every device health transition. Run it in
// its own goroutine; subscribe with enough buffer that a reconcile-burst of
// task events does not drown the health transitions.
func (o *Orchestrator) RunDeviceEvents(ctx context.Context, ch <-chan telemetry.TaskEvent) {
	for {
		select {
		case <-ctx.Done():
			return
		case ev, ok := <-ch:
			if !ok {
				return
			}
			_ = o.HandleDeviceEvent(ctx, ev)
		}
	}
}

// requeueStarved resubmits tasks that failed only because no surface could
// serve their band — the one task failure a recovered device can cure.
// domain restricts the requeue to the recovered device's shard (a device
// coming back in one room cannot cure starvation in another); pass -1
// for all domains.
func (o *Orchestrator) requeueStarved(domain int) {
	o.mu.Lock()
	for _, t := range o.tasks {
		if domain >= 0 && t.Domain != domain {
			continue
		}
		if t.State == TaskFailed && errors.Is(t.Err, ErrNoActiveSurfaces) {
			t.State = TaskPending
			t.Err = nil
			o.emitLocked(t, telemetry.TaskResumed)
		}
	}
	o.mu.Unlock()
}

// emitReplanned publishes the healing marker event.
func (o *Orchestrator) emitReplanned(deviceID string) {
	o.mu.Lock()
	if o.events != nil {
		o.events.Publish(telemetry.TaskEvent{
			Time:     o.now,
			State:    telemetry.Replanned,
			DeviceID: deviceID,
		})
	}
	o.mu.Unlock()
}
